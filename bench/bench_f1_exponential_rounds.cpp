// Experiment F1 (DESIGN.md): the §3/§4 headline — against the split-keeper
// strongly adaptive adversary with split inputs, the reset-agreement
// algorithm's windows-to-decision grows EXPONENTIALLY in n.
//
// Columns:
//   measured mean/median/p90 windows over seeds,
//   theory:   expected rounds 1/q with q = 2·P[Bin(n,1/2) ≤ t] (the
//             per-round probability that the coin flips are too skewed for
//             the adversary to balance below T3),
//   Thm5 E:   the absolute lower bound C·e^{αn} with c = t/n (log10).
// The fit line at the bottom is least squares of log10(mean) vs n.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "prob/binomial.hpp"

using namespace aa;

int main() {
  std::printf("F1: exponential windows-to-decision vs n "
              "(reset-agreement, split inputs, split-keeper adversary)\n\n");

  Table table({"n", "t", "T1/T2/T3", "trials", "mean", "median", "p90", "max",
               "theory 1/q", "Thm5 log10(E)"});

  std::vector<double> xs;
  std::vector<double> ys;
  struct Row {
    int n;
    int trials;
  };
  const Row rows[] = {{8, 30}, {10, 30}, {12, 25}, {14, 25},
                      {16, 20}, {18, 15}, {20, 10}, {22, 10}, {24, 8}};
  for (const Row& row : rows) {
    const int n = row.n;
    const int t = std::max(1, n / 7);
    const auto th = protocols::canonical_thresholds(n, t);
    RunningStats stats;
    std::vector<double> samples;
    for (int trial = 0; trial < row.trials; ++trial) {
      adversary::SplitKeeperAdversary keeper;
      const auto r = core::run_window_experiment(
          protocols::ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
          keeper, 2'000'000, 1000 + static_cast<std::uint64_t>(trial));
      stats.add(static_cast<double>(r.windows_to_first));
      samples.push_back(static_cast<double>(r.windows_to_first));
    }
    // Per-round escape: the adversary fails to balance exactly when the
    // minority coin count is ≤ t (see SplitKeeperAdversary docs).
    const double q =
        std::min(1.0, 2.0 * prob::binom_cdf(n, t, 0.5));
    const auto tc = core::theorem5_constants(n, static_cast<double>(t) / n);
    table.add_row({Table::fmt_int(n), Table::fmt_int(t),
                   std::to_string(th.t1) + "/" + std::to_string(th.t2) + "/" +
                       std::to_string(th.t3),
                   Table::fmt_int(row.trials), Table::fmt(stats.mean(), 1),
                   Table::fmt(median(samples), 1),
                   Table::fmt(percentile(samples, 0.9), 1),
                   Table::fmt(stats.max(), 0),
                   Table::fmt(prob::expected_rounds_until(q), 1),
                   Table::fmt(tc.log10_e, 3)});
    xs.push_back(n);
    ys.push_back(std::log10(std::max(1.0, stats.mean())));
  }
  table.print(std::cout, "F1 windows-to-first-decision");

  const LinearFit fit = least_squares(xs, ys);
  std::printf("log10(mean windows) ~ %.3f + %.4f * n   (r2 = %.3f)\n",
              fit.intercept, fit.slope, fit.r2);
  std::printf("positive slope == exponential growth in n; the paper's Theorem "
              "5 says any measure-one algorithm must show this shape.\n");
  return 0;
}
