// Experiment F2 (DESIGN.md): Theorem 4's fast path and its decay.
// At fixed n, sweep the fraction of 1-inputs from 0 (unanimous) to 1/2
// (maximally split) against both the fair and split-keeper adversaries.
// Unanimity decides in window 1 regardless of the adversary; the
// adversary's leverage grows as the inputs approach an even split.
#include <cstdio>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

namespace {

double mean_windows(sim::WindowAdversary& (*make)(), int n, int t, int ones,
                    int trials) {
  RunningStats stats;
  for (int trial = 0; trial < trials; ++trial) {
    sim::WindowAdversary& adv = make();
    std::vector<int> inputs(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < ones; ++i) inputs[static_cast<std::size_t>(i)] = 1;
    const auto r = core::run_window_experiment(
        protocols::ProtocolKind::Reset, inputs, t, adv, 500000,
        4000 + static_cast<std::uint64_t>(trial) * 7 +
            static_cast<std::uint64_t>(ones) * 1009);
    stats.add(static_cast<double>(r.windows_to_first));
  }
  return stats.mean();
}

sim::WindowAdversary& fair_instance() {
  static adversary::FairWindowAdversary fair;
  return fair;
}
sim::WindowAdversary& keeper_instance() {
  static adversary::SplitKeeperAdversary keeper;
  return keeper;
}

}  // namespace

int main() {
  const int n = 16;
  const int t = 2;
  const int trials = 20;
  std::printf("F2: windows-to-decision vs input imbalance "
              "(reset-agreement, n=%d, t=%d, %d trials/point)\n\n",
              n, t, trials);

  Table table({"#ones", "fair mean", "split-keeper mean", "keeper/fair"});
  for (int ones = 0; ones <= n / 2; ++ones) {
    const double fair = mean_windows(&fair_instance, n, t, ones, trials);
    const double keeper = mean_windows(&keeper_instance, n, t, ones, trials);
    table.add_row({Table::fmt_int(ones), Table::fmt(fair, 2),
                   Table::fmt(keeper, 2),
                   Table::fmt(keeper / std::max(1.0, fair), 1)});
  }
  table.print(std::cout, "F2 windows-to-first-decision by #ones");
  std::printf(
      "Row 0 (unanimous) decides in window 1 under BOTH adversaries (Theorem\n"
      "4 fast path); tiny minorities (#ones <= T1 - T3 = %d here) are\n"
      "absorbed deterministically in window 2. Beyond that the first round\n"
      "re-randomizes every estimate, so the mean plateaus at the split-input\n"
      "level and only the adversary (ordering) matters — a ~10x slowdown at\n"
      "n = 16 that grows exponentially with n (see F1).\n",
      protocols::canonical_thresholds(n, t).t1 -
          protocols::canonical_thresholds(n, t).t3);
  return 0;
}
