// Experiment F3 (DESIGN.md): Lemma 9 — Talagrand's inequality
//     P[A]·(1 − P[B(A,d)]) ≤ e^{−d²/4n}
// three ways:
//  (a) exact enumeration over random small product spaces with random sets
//      (worst observed tightness per (n, d));
//  (b) closed-form Hamming balls over the uniform n-cube at large n, where
//      P[A] and P[B(A,d)] are binomial CDFs — exact at n = 128;
//  (c) Monte-Carlo spot checks.
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "prob/binomial.hpp"

using namespace aa;

int main() {
  std::printf("F3: Talagrand inequality (Lemma 9) tightness\n\n");

  // (a) exact over random spaces/sets.
  {
    Table table({"n", "d", "spaces", "worst lhs", "bound", "max tightness",
                 "violations"});
    Rng rng(2024);
    for (int n : {6, 8, 10}) {
      for (int d : {1, 2, 3, n / 2}) {
        double worst_lhs = 0.0;
        double worst_tight = 0.0;
        int violations = 0;
        const int spaces = 40;
        for (int s = 0; s < spaces; ++s) {
          std::vector<prob::FiniteDist> coords;
          for (int i = 0; i < n; ++i)
            coords.push_back(prob::FiniteDist::random(2, rng));
          const prob::ProductSpace space{coords};
          std::vector<prob::Point> A;
          space.enumerate([&](const prob::Point& x, double) {
            if (rng.bernoulli(0.25)) A.push_back(x);
          });
          if (A.empty()) continue;
          const auto c = prob::check_exact(space, A, d);
          if (!c.holds) ++violations;
          worst_lhs = std::max(worst_lhs, c.lhs);
          worst_tight = std::max(worst_tight, c.tightness);
        }
        table.add_row({Table::fmt_int(n), Table::fmt_int(d),
                       Table::fmt_int(spaces), Table::fmt(worst_lhs, 4),
                       Table::fmt(prob::talagrand_bound(d, n), 4),
                       Table::fmt(worst_tight, 3),
                       Table::fmt_int(violations)});
      }
    }
    table.print(std::cout, "F3a exact (random spaces & sets)");
  }

  // (b) closed form: A = Hamming ball of radius r around 0 over uniform
  // n-cube. P[A] = P[Bin(n) ≤ r]; B(A, d) = ball radius r + d.
  {
    Table table({"n", "r", "d", "P[A]", "1-P[B]", "lhs", "bound", "tightness"});
    for (int n : {64, 128}) {
      for (int r : {n / 4, n / 2 - 2}) {
        for (int d : {2, 4, 8, 16}) {
          const double pa = prob::binom_cdf(n, r, 0.5);
          const double pball = prob::binom_cdf(n, r + d, 0.5);
          const double lhs = pa * (1.0 - pball);
          const double bound = prob::talagrand_bound(d, n);
          table.add_row({Table::fmt_int(n), Table::fmt_int(r),
                         Table::fmt_int(d), Table::fmt_sci(pa, 2),
                         Table::fmt_sci(1.0 - pball, 2),
                         Table::fmt_sci(lhs, 3), Table::fmt_sci(bound, 3),
                         Table::fmt(bound > 0 ? lhs / bound : 0.0, 4)});
        }
      }
    }
    table.print(std::cout, "F3b closed-form Hamming balls (uniform cube)");
  }

  // (c) Monte-Carlo spot check at n = 16 against the exact value: A is the
  // weight ≤ 3 Hamming ball (an enumerable, samplable set).
  {
    Table table({"n", "d", "samples", "lhs(mc)", "lhs(exact)", "bound",
                 "holds"});
    const int n = 16;
    const prob::ProductSpace space =
        prob::ProductSpace::iid(prob::FiniteDist::uniform(2), n);
    std::vector<prob::Point> A;
    space.enumerate([&](const prob::Point& x, double) {
      int w = 0;
      for (int xi : x) w += xi;
      if (w <= 3) A.push_back(x);
    });
    Rng rng(5);
    for (int d : {2, 4, 6}) {
      const auto mc = prob::check_mc(space, A, d, 100000, rng);
      const double pa = prob::binom_cdf(n, 3, 0.5);
      const double pball = prob::binom_cdf(n, 3 + d, 0.5);
      const double exact_lhs = pa * (1.0 - pball);
      table.add_row({Table::fmt_int(n), Table::fmt_int(d),
                     Table::fmt_int(100000), Table::fmt_sci(mc.lhs, 3),
                     Table::fmt_sci(exact_lhs, 3),
                     Table::fmt_sci(mc.bound, 3), mc.holds ? "yes" : "NO"});
    }
    table.print(std::cout, "F3c Monte-Carlo vs exact");
  }

  std::printf("Expected: zero violations everywhere; tightness < 1 (the "
              "constant 1/4 in the exponent is not saturated by these "
              "families).\n");
  return 0;
}
