// Experiment F4 (DESIGN.md): the §1 contrast with Kapron et al. [16].
// Committee-election agreement is polylog-fast against NON-adaptive
// corruption, pays a nonzero intrinsic failure probability, and collapses
// completely against an ADAPTIVE adversary that waits for the final
// committee — which is why Theorem 5 (adaptive ⇒ exponential) does not
// contradict its existence.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

int main() {
  std::printf("F4: committee agreement (Kapron-style analog) vs n, t = n/4\n\n");
  Table table({"n", "t", "rounds (mean)", "log2(n)", "non-adaptive ok",
               "analytic fail", "adaptive ok"});

  Rng rng(77);
  const int trials = 300;
  for (int n : {64, 256, 1024, 4096, 16384}) {
    const int t = n / 4;
    protocols::CommitteeParams base;
    base.n = n;
    base.t = t;

    int na_ok = 0;
    int a_ok = 0;
    RunningStats rounds;
    int committee_size = 0;
    for (int trial = 0; trial < trials; ++trial) {
      protocols::CommitteeParams na = base;
      na.adaptive_adversary = false;
      const auto out_na = protocols::run_committee_agreement(
          na, protocols::split_inputs(n, 0.5), rng);
      if (out_na.success) ++na_ok;
      rounds.add(out_na.rounds);
      committee_size = out_na.final_committee_size;

      protocols::CommitteeParams ad = base;
      ad.adaptive_adversary = true;
      const auto out_a = protocols::run_committee_agreement(
          ad, protocols::split_inputs(n, 0.5), rng);
      if (out_a.success) ++a_ok;
    }
    // Intrinsic failure: final committee ≥ 1/3 corrupted (hypergeometric).
    const double analytic_fail = protocols::committee_corruption_tail(
        n, t, committee_size, (committee_size + 2) / 3);
    table.add_row(
        {Table::fmt_int(n), Table::fmt_int(t), Table::fmt(rounds.mean(), 1),
         Table::fmt(std::log2(static_cast<double>(n)), 1),
         Table::fmt(static_cast<double>(na_ok) / trials, 3),
         Table::fmt(analytic_fail, 3),
         Table::fmt(static_cast<double>(a_ok) / trials, 3)});
  }
  table.print(std::cout, "F4 committee election under both adversaries");
  std::printf(
      "Expected shape: rounds track log2(n) (polylog, vs the exponential F1\n"
      "curve); non-adaptive success is high but BELOW 1 (the intrinsic\n"
      "corrupted-committee probability — compare the analytic column);\n"
      "adaptive success is 0.000 in every row: the adversary corrupts the\n"
      "final committee after it is revealed, exactly the paper's §1 attack.\n");
  return 0;
}
