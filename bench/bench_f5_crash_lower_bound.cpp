// Experiment F5 (DESIGN.md): Theorem 17 — forgetful, fully communicative
// algorithms against a classic asynchronous crash adversary need message
// chains that grow exponentially in n, with t = cn.
//
// The adversary is the AsyncSplitKeeper: pure scheduling (zero crashes,
// trivially within any budget), balancing each processor's consumed votes.
// We report rounds and the §5 running-time metric: message-chain length at
// the first decision. The theory column is 1/q with
// q = 2·P[Bin(n) ≤ 2t] (the per-round probability the coin flips are too
// skewed to balance below T3 = n − 3t given T1 = n − t).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "prob/binomial.hpp"

using namespace aa;

int main() {
  std::printf("F5: crash-model lower bound (forgetful + fully communicative, "
              "async split-keeper, split inputs)\n\n");
  Table table({"n", "t", "trials", "mean rounds", "mean chain", "max chain",
               "theory 1/q"});

  std::vector<double> xs;
  std::vector<double> ys;
  struct Row {
    int n;
    int trials;
  };
  // t = 1 fixed: the escape event is "minority ≤ 2t", which for fixed t
  // decays exponentially in n — the cleanest slice of the theorem.
  for (const Row& row : {Row{8, 20}, Row{10, 20}, Row{12, 15}, Row{14, 10},
                         Row{16, 6}}) {
    const int n = row.n;
    const int t = 1;
    RunningStats rounds;
    RunningStats chain;
    for (int trial = 0; trial < row.trials; ++trial) {
      adversary::AsyncSplitKeeper keeper;
      const auto r = core::run_async_experiment(
          protocols::ProtocolKind::Forgetful, protocols::split_inputs(n, 0.5),
          t, keeper, 500'000'000,
          9000 + static_cast<std::uint64_t>(trial));
      if (!r.decided) continue;  // hit the (enormous) cap; skip
      // Rounds ≈ deliveries per round is n·T1; recover from chain instead:
      // each round adds 2 to the chain (vote + trigger), so chain/2 ≈ rounds.
      chain.add(static_cast<double>(r.chain_at_decision));
      rounds.add(static_cast<double>(r.chain_at_decision) / 2.0);
    }
    const double q = std::min(1.0, 2.0 * prob::binom_cdf(n, 2 * t, 0.5));
    table.add_row({Table::fmt_int(n), Table::fmt_int(t),
                   Table::fmt_int(row.trials), Table::fmt(rounds.mean(), 1),
                   Table::fmt(chain.mean(), 1), Table::fmt(chain.max(), 0),
                   Table::fmt(prob::expected_rounds_until(q), 1)});
    xs.push_back(n);
    ys.push_back(std::log10(std::max(1.0, chain.mean())));
  }
  table.print(std::cout, "F5 message-chain length at first decision");
  const LinearFit fit = least_squares(xs, ys);
  std::printf("log10(mean chain) ~ %.3f + %.4f * n   (r2 = %.3f)\n",
              fit.intercept, fit.slope, fit.r2);
  std::printf("Positive slope == exponential chain growth: Theorem 17's "
              "bound realized by a crash-free scheduling adversary.\n");
  return 0;
}
