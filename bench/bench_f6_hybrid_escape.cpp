// Experiment F6 (DESIGN.md): Lemma 14 / Lemma 21 — the hybrid
// (coordinate-interpolation) argument. Given π_0 avoiding Z_1 and π_n
// avoiding Z_0 (both with mass ≤ τ), some hybrid π_{j*} avoids BOTH with
// mass ≤ η each, so one acceptable window escapes Z_0 ∪ Z_1 with
// probability ≥ 1 − 2η.
//
// Two instantiations:
//  (a) synthetic biased product endpoints with weight-separated Z sets
//      (exact, n sweep);
//  (b) protocol-driven: per-coordinate next-state distributions of the §3
//      abstract model under two different adversary window choices.
#include <cstdio>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

namespace {

// Per-coordinate distribution over the encoded alphabet {0,1,2,3,4} of the
// abstract model after one window with delivery set S (see
// core/zsets.hpp): deterministic adopt → point mass; split → fair coin;
// decided processors → point mass on 3/4; reset → point mass on 2.
prob::ProductSpace window_product_space(const core::AbstractConfig& c,
                                        const std::vector<bool>& in_r,
                                        const std::vector<bool>& in_s,
                                        const protocols::Thresholds& th) {
  const int n = c.n();
  std::vector<int> votes;
  for (int i = 0; i < n; ++i) {
    if (in_s[static_cast<std::size_t>(i)] &&
        c.x[static_cast<std::size_t>(i)] != core::kXRejoining)
      votes.push_back(c.x[static_cast<std::size_t>(i)]);
  }
  int count[2] = {0, 0};
  const bool enough = static_cast<int>(votes.size()) >= th.t1;
  if (enough) {
    for (int i = 0; i < th.t1; ++i) ++count[votes[static_cast<std::size_t>(i)]];
  }
  std::vector<prob::FiniteDist> coords;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (in_r[idx]) {
      coords.push_back(prob::FiniteDist::point_mass(2, 5));  // reset
    } else if (c.out[idx] != -1) {
      coords.push_back(prob::FiniteDist::point_mass(3 + c.out[idx], 5));
    } else if (!enough) {
      // No progress: state persists.
      const int sym = c.x[idx] == core::kXRejoining ? 2 : c.x[idx];
      coords.push_back(prob::FiniteDist::point_mass(sym, 5));
    } else if (count[0] >= th.t2 || count[1] >= th.t2) {
      const int v = count[0] >= th.t2 ? 0 : 1;
      coords.push_back(prob::FiniteDist::point_mass(3 + v, 5));  // decides
    } else if (count[0] >= th.t3 || count[1] >= th.t3) {
      const int v = count[0] >= th.t3 ? 0 : 1;
      coords.push_back(prob::FiniteDist::point_mass(v, 5));
    } else {
      coords.push_back(prob::FiniteDist({0.5, 0.5, 0.0, 0.0, 0.0}));  // coin
    }
  }
  return prob::ProductSpace{coords};
}

}  // namespace

int main() {
  std::printf("F6: Lemma 14 hybrid escape probabilities\n\n");

  // (a) synthetic: biased endpoints, weight-separated sets.
  {
    Table table({"n", "t", "eta", "j*", "P[Z0]", "P[Z1]", "escape",
                 ">=1-2eta"});
    for (int n : {8, 10, 12}) {
      const int t = n / 2 - 1;  // separation just above t
      const prob::ProductSpace pi_n =
          prob::ProductSpace::iid(prob::FiniteDist::bernoulli(0.9), n);
      const prob::ProductSpace pi_0 =
          prob::ProductSpace::iid(prob::FiniteDist::bernoulli(0.1), n);
      std::vector<prob::Point> z0;
      std::vector<prob::Point> z1;
      pi_n.enumerate([&](const prob::Point& x, double) {
        int w = 0;
        for (int xi : x) w += xi;
        if (w <= 1) z0.push_back(x);
        if (w >= n - 1) z1.push_back(x);
      });
      const double eta = 0.2;
      const auto r = prob::find_hybrid_exact(pi_n, pi_0, z0, z1, eta);
      table.add_row({Table::fmt_int(n), Table::fmt_int(t), Table::fmt(eta, 3),
                     Table::fmt_int(r.j_star), Table::fmt(r.p_z0, 4),
                     Table::fmt(r.p_z1, 4), Table::fmt(r.escape, 4),
                     r.lemma_satisfied ? "yes" : "NO"});
    }
    table.print(std::cout, "F6a synthetic hybrid escape (exact)");
  }

  // (b) protocol-driven: a NEAR-DECIDED configuration of the §3 algorithm
  // (just enough zeros that full delivery decides 0 immediately). Window
  // choice A (deliver everyone) decides; window choice B (silence t of the
  // zero-voters, Definition 1 still satisfied) keeps the strong prefix
  // below T2. The two induced per-coordinate next-state distributions are
  // the Lemma 14/21 endpoints; Z sets are the "someone decided v"
  // half-spaces as predicates. The hybrid search finds the window the
  // adversary uses to dodge both decisions.
  {
    Table table({"n", "t", "eta", "j*", "P[Z0]", "P[Z1]", "escape", "ok"});
    for (int n : {13, 14, 16}) {
      const int t = 2;  // t = 1 degenerates eta to 1; t = 2 is the smallest
                        // budget with a meaningful Lemma 14 threshold
      const auto th = protocols::canonical_thresholds(n, t);
      // T1 zeros at the low ids: full delivery's first T1 votes are all 0.
      std::vector<int> inputs(static_cast<std::size_t>(n), 1);
      for (int i = 0; i < th.t1; ++i) inputs[static_cast<std::size_t>(i)] = 0;
      const core::AbstractConfig cfg = core::initial_config(inputs);
      const std::vector<bool> no_r(static_cast<std::size_t>(n), false);
      std::vector<bool> s_all(static_cast<std::size_t>(n), true);
      std::vector<bool> s_dodge = s_all;
      s_dodge[0] = s_dodge[1] = false;  // silence two zero-voters (|S| = n−t)
      // π_0 := full delivery (decides 0 ⇒ avoids Z1);
      // π_n := dodge window (avoids Z0).
      const prob::ProductSpace pi_0 =
          window_product_space(cfg, no_r, s_all, th);
      const prob::ProductSpace pi_n =
          window_product_space(cfg, no_r, s_dodge, th);
      const prob::SetPredicate in_z0 = [](const prob::Point& x) {
        for (int sym : x) {
          if (sym == 3) return true;
        }
        return false;
      };
      const prob::SetPredicate in_z1 = [](const prob::Point& x) {
        for (int sym : x) {
          if (sym == 4) return true;
        }
        return false;
      };
      const double eta = prob::eta_threshold(t, n);
      const auto r =
          prob::find_hybrid_exact_pred(pi_n, pi_0, in_z0, in_z1, eta);
      table.add_row({Table::fmt_int(n), Table::fmt_int(t),
                     Table::fmt(eta, 3), Table::fmt_int(r.j_star),
                     Table::fmt(r.p_z0, 4), Table::fmt(r.p_z1, 4),
                     Table::fmt(r.escape, 4),
                     r.lemma_satisfied ? "yes" : "NO"});
    }
    table.print(std::cout, "F6b protocol-driven hybrid escape (exact)");
  }

  std::printf("Expected: every row reports escape >= 1 - 2*eta — the window\n"
              "the adversary needs (Lemma 14) always exists.\n");
  return 0;
}
