// Experiment F7 (DESIGN.md): termination-probability tails, connecting to
// the related work the paper surveys in §1.1 — Attiya & Censor (2008) show
// that the probability a randomized agreement algorithm has NOT terminated
// after k(n − t) steps is at least 1/c^k: a geometric tail. Our protocols'
// per-round decision events are (approximately) independent coin-alignment
// events, so the measured survival function should be geometric in rounds —
// with a per-round rate that shrinks exponentially in n (Theorems 5/17).
//
// We measure P[still undecided after w windows] for the §3 algorithm under
// the split-keeper adversary, and report the fitted per-window survival
// rate against the analytic 1 − q, q = 2·P[Bin(n,1/2) ≤ t].
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "prob/binomial.hpp"

using namespace aa;

int main() {
  std::printf("F7: termination-probability tail (reset-agreement, split "
              "inputs, split-keeper adversary)\n\n");

  const int trials = 120;
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 1},
                                                             {12, 1},
                                                             {14, 2}}) {
    // Collect windows-to-first-decision samples.
    std::vector<double> samples;
    for (int trial = 0; trial < trials; ++trial) {
      adversary::SplitKeeperAdversary keeper;
      const auto r = core::run_window_experiment(
          protocols::ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
          keeper, 1'000'000, 7000 + static_cast<std::uint64_t>(trial));
      samples.push_back(static_cast<double>(r.windows_to_first));
    }

    // Empirical survival function at geometric checkpoints.
    Table table({"w", "P[undecided > w] measured", "geometric (1-q)^w"});
    const double q = std::min(1.0, 2.0 * prob::binom_cdf(n, t, 0.5));
    const double mean = [&] {
      RunningStats s;
      for (double x : samples) s.add(x);
      return s.mean();
    }();
    for (double frac : {0.25, 0.5, 1.0, 2.0, 3.0}) {
      const auto w = static_cast<std::int64_t>(frac * mean);
      int undecided = 0;
      for (double x : samples) {
        if (x > static_cast<double>(w)) ++undecided;
      }
      table.add_row(
          {Table::fmt_int(w),
           Table::fmt(static_cast<double>(undecided) / trials, 3),
           Table::fmt(std::pow(1.0 - q, static_cast<double>(w)), 3)});
    }
    std::printf("n=%d t=%d: mean windows %.1f, analytic 1/q = %.1f\n", n, t,
                mean, 1.0 / q);
    table.print(std::cout, "survival function");
  }
  std::printf(
      "Expected: the measured survival column tracks the geometric column —\n"
      "per-window decision events behave like independent Bernoulli(q)\n"
      "trials, the structure behind both the Attiya-Censor tail bound and\n"
      "the exponential expectation of Theorems 5/17.\n");
  return 0;
}
