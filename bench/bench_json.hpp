// Tiny JSON bench emitter: every bench writes a machine-readable
// BENCH_<name>.json next to its stdout report, so the perf trajectory can
// be tracked across PRs (CI uploads these as artifacts).
//
// Usage:
//   BenchJson j("m2_window_horizon");
//   j.set("config.n", 32);
//   j.set("arena.windows_per_sec", 1.2e6);
//   j.set("smoke", false);
//   j.write();                       // → BENCH_m2_window_horizon.json
//
// Dotted keys nest ("config.n" → {"config": {"n": ...}}). Insertion order
// is preserved. No external dependencies, header-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace aa::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void set(const std::string& dotted_key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    put(dotted_key, buf);
  }
  void set(const std::string& dotted_key, std::int64_t v) {
    put(dotted_key, std::to_string(v));
  }
  void set(const std::string& dotted_key, int v) {
    put(dotted_key, std::to_string(v));
  }
  void set(const std::string& dotted_key, std::size_t v) {
    put(dotted_key, std::to_string(v));
  }
  void set(const std::string& dotted_key, bool v) {
    put(dotted_key, v ? "true" : "false");
  }
  void set(const std::string& dotted_key, const std::string& v) {
    put(dotted_key, quote(v));
  }
  void set(const std::string& dotted_key, const char* v) {
    put(dotted_key, quote(v));
  }

  /// Serialize the whole object.
  [[nodiscard]] std::string dump() const {
    std::string out;
    root_.dump(out, 0);
    out += "\n";
    return out;
  }

  /// Write BENCH_<name>.json into the current directory (or `dir`),
  /// atomically: the full document goes to BENCH_<name>.json.tmp first and
  /// is renamed into place only after a clean flush, so a bench killed
  /// mid-write never leaves a truncated artifact at the final path.
  /// Returns the path written, or empty on I/O failure (benches should not
  /// fail because a filesystem is read-only).
  std::string write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    const std::string tmp = path + ".tmp";
    // aa-lint: write-ok(the bench atomic-write primitive itself)
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return {};
    const std::string text = dump();
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) std::remove(tmp.c_str());
    return ok ? path : std::string{};
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct Node {
    // Leaf when value non-empty; object otherwise.
    std::string value;
    std::vector<std::pair<std::string, std::unique_ptr<Node>>> children;

    Node* child(const std::string& key) {
      for (auto& [k, v] : children) {
        if (k == key) return v.get();
      }
      children.emplace_back(key, std::make_unique<Node>());
      return children.back().second.get();
    }

    void dump(std::string& out, int depth) const {
      if (!value.empty()) {
        out += value;
        return;
      }
      out += "{";
      for (std::size_t i = 0; i < children.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out.append(static_cast<std::size_t>(depth + 1) * 2, ' ');
        out += quote(children[i].first);
        out += ": ";
        children[i].second->dump(out, depth + 1);
      }
      out += "\n";
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      out += "}";
    }
  };

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  void put(const std::string& dotted_key, std::string rendered) {
    Node* node = &root_;
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = dotted_key.find('.', start);
      if (dot == std::string::npos) {
        node = node->child(dotted_key.substr(start));
        break;
      }
      node = node->child(dotted_key.substr(start, dot - start));
      start = dot + 1;
    }
    node->value = std::move(rendered);
  }

  std::string name_;
  Node root_;
};

}  // namespace aa::bench
