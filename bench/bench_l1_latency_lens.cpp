// Experiment L1: latency & accountability lens overhead + blame demo.
//
// The lens (lens/trace.hpp) streams publish/deliver/suppress/decision
// events into a flat per-worker arena; its contract is "zero cost when
// disabled, cheap when enabled". This bench measures both halves on n = 32
// reset-agreement runs:
//
//   * lens-off vs lens-on windows/s under the fair adversary, the
//     silencer, and the targeted censor (adversary/censor.hpp) wrapped
//     around fair — the overhead column is the price of tracing;
//   * a finalized accountability report for the censored configuration:
//     the censorship score and blame list the lens derives must identify
//     the injected target (printed for eyeballing; the unit tests assert
//     it).
//
// The top-level `lens_off_windows_per_sec` metric is tracked by
// scripts/bench_diff.py, so a PR that slows the lens-OFF path (i.e. makes
// the disabled lens non-free) by more than the CI tolerance fails the
// bench-smoke job.
//
// Writes BENCH_l1_latency_lens.json (see bench_json.hpp).
//
//   ./build/bench/bench_l1_latency_lens [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adversary/censor.hpp"
#include "bench_json.hpp"
#include "core/api.hpp"
#include "lens/accountability.hpp"

using namespace aa;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

enum class AdvKind { Fair, Silencer, CensorFair };

constexpr sim::ProcId kCensorTarget = 0;

std::unique_ptr<sim::WindowAdversary> make_adv(AdvKind kind, int t) {
  switch (kind) {
    case AdvKind::Fair:
      return std::make_unique<adversary::FairWindowAdversary>();
    case AdvKind::Silencer: {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    case AdvKind::CensorFair:
      return std::make_unique<adversary::TargetedCensorAdversary>(
          std::make_unique<adversary::FairWindowAdversary>(), kCensorTarget);
  }
  return nullptr;
}

struct RunStats {
  double windows_per_sec = 0;
  std::int64_t windows = 0;
};

/// `trials` seeded all-decided runs through the Runner's scratch-reuse
/// path — the same hot path the campaign checkers drive — with the lens on
/// or off. When `lat` is non-null the per-trial traces fold into it.
RunStats run_mode(AdvKind akind, bool lens, int n, int t, int trials,
                  lens::LatencyAccumulator* lat) {
  core::Experiment spec;
  spec.kind = protocols::ProtocolKind::Reset;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = t;
  spec.budget = 400;
  spec.stop = core::StopCondition::kAllDecided;
  spec.lens = lens;
  const core::Runner runner(spec);
  core::WorkerScratch scratch;
  RunStats out;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < trials; ++i) {
    auto adv = make_adv(akind, t);
    const core::WindowRunResult r =
        runner.run_window(*adv, 1000 + static_cast<std::uint64_t>(i),
                          scratch);
    out.windows += r.windows_total;
    if (lat != nullptr && scratch.trace) lat->add(*scratch.trace);
  }
  const double secs = seconds_since(start);
  if (secs > 0) out.windows_per_sec = static_cast<double>(out.windows) / secs;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int n = 32;
  const int t = 5;  // t < n/6
  const int trials = smoke ? 40 : 400;

  std::printf("L1: latency & accountability lens (n=%d, t=%d, %d trials "
              "per mode%s)\n\n",
              n, t, trials, smoke ? ", smoke" : "");

  bench::BenchJson j("l1_latency_lens");
  j.set("config.n", n);
  j.set("config.t", t);
  j.set("config.trials", trials);
  j.set("config.smoke", smoke);

  const struct {
    AdvKind kind;
    const char* name;
  } advs[] = {{AdvKind::Fair, "fair"},
              {AdvKind::Silencer, "silencer"},
              {AdvKind::CensorFair, "censor_fair"}};

  lens::LatencyAccumulator censor_lat;
  double fair_off = 0;
  double fair_on = 0;
  for (const auto& a : advs) {
    const RunStats off = run_mode(a.kind, false, n, t, trials, nullptr);
    lens::LatencyAccumulator* lat =
        a.kind == AdvKind::CensorFair ? &censor_lat : nullptr;
    const RunStats on = run_mode(a.kind, true, n, t, trials, lat);
    const double overhead_pct =
        off.windows_per_sec > 0
            ? (off.windows_per_sec / on.windows_per_sec - 1.0) * 100.0
            : 0.0;
    std::printf("%-12s lens-off %9.0f w/s | lens-on %9.0f w/s | "
                "overhead %+.1f%%\n",
                a.name, off.windows_per_sec, on.windows_per_sec,
                overhead_pct);
    j.set(std::string(a.name) + ".lens_off_windows_per_sec",
          off.windows_per_sec);
    j.set(std::string(a.name) + ".lens_on_windows_per_sec",
          on.windows_per_sec);
    j.set(std::string(a.name) + ".overhead_pct", overhead_pct);
    if (a.kind == AdvKind::Fair) {
      fair_off = off.windows_per_sec;
      fair_on = on.windows_per_sec;
    }
  }

  // The bench_diff-tracked gate: the disabled lens must stay free.
  j.set("lens_off_windows_per_sec", fair_off);
  j.set("lens_on_windows_per_sec", fair_on);

  const lens::LatencyReport rep = censor_lat.finalize(t);
  const lens::SenderLatency& victim =
      rep.senders[static_cast<std::size_t>(kCensorTarget)];
  std::printf("\ncensor_fair accountability: target %d score %.3f "
              "(delivered_share %.3f, confirmed_share %.3f), blamed_censored"
              " = [",
              kCensorTarget, victim.censorship_score, victim.delivered_share,
              victim.confirmed_share);
  for (std::size_t i = 0; i < rep.blamed_censored.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", rep.blamed_censored[i]);
  }
  std::printf("]\n");
  j.set("censor_fair.target_censorship_score", victim.censorship_score);
  j.set("censor_fair.blamed_count",
        static_cast<std::int64_t>(rep.blamed_censored.size()));

  const std::string path = j.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
