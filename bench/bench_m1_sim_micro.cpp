// Experiment M1 (DESIGN.md): engineering micro-benchmarks via
// google-benchmark — simulator substrate throughput.
//
// Unless the caller passes its own --benchmark_out, results are also
// written to BENCH_m1_sim_micro.json (google-benchmark's JSON schema) so
// the perf trajectory is machine-readable alongside the other benches.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/api.hpp"

using namespace aa;

namespace {

void BM_BufferAddDeliver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::MessageBuffer buf(n);
    sim::Message m;
    m.kind = 1;
    for (int s = 0; s < n; ++s) {
      for (int r = 0; r < n; ++r) buf.add(s, r, m, 0, 1);
    }
    for (int r = 0; r < n; ++r) {
      for (const sim::Envelope& env : buf.pending_to(r))
        buf.mark_delivered(env.id);
    }
    benchmark::DoNotOptimize(buf.delivered_count());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BufferAddDeliver)->Arg(8)->Arg(32)->Arg(128);

void BM_FairWindow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = std::max(1, n / 7);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Execution e(protocols::make_processes(
                         protocols::ProtocolKind::Reset, t,
                         protocols::split_inputs(n, 0.5)),
                     42);
    adversary::FairWindowAdversary fair;
    state.ResumeTiming();
    for (int w = 0; w < 10; ++w) sim::run_acceptable_window(e, fair, t);
    benchmark::DoNotOptimize(e.step_count());
  }
  state.SetItemsProcessed(state.iterations() * 10);
  state.SetLabel("windows");
}
BENCHMARK(BM_FairWindow)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SplitKeeperWindow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = std::max(1, n / 7);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Execution e(protocols::make_processes(
                         protocols::ProtocolKind::Reset, t,
                         protocols::split_inputs(n, 0.5)),
                     42);
    adversary::SplitKeeperAdversary keeper;
    state.ResumeTiming();
    for (int w = 0; w < 10; ++w) sim::run_acceptable_window(e, keeper, t);
    benchmark::DoNotOptimize(e.step_count());
  }
  state.SetItemsProcessed(state.iterations() * 10);
  state.SetLabel("windows");
}
BENCHMARK(BM_SplitKeeperWindow)->Arg(8)->Arg(16)->Arg(32);

void BM_AsyncDelivery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = 1;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Execution e(protocols::make_processes(
                         protocols::ProtocolKind::BenOr, t,
                         protocols::split_inputs(n, 0.5)),
                     7);
    adversary::RandomAsyncScheduler sched(Rng(5));
    state.ResumeTiming();
    const auto r = sim::run_async(e, sched, t, 2000);
    benchmark::DoNotOptimize(r.deliveries);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel("deliveries");
}
BENCHMARK(BM_AsyncDelivery)->Arg(8)->Arg(16)->Arg(32);

void BM_AbstractWindow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = std::max(1, n / 7);
  const auto th = protocols::canonical_thresholds(n, t);
  const auto cfg =
      core::initial_config(protocols::split_inputs(n, 0.5));
  const std::vector<bool> no_r(static_cast<std::size_t>(n), false);
  const std::vector<bool> all_s(static_cast<std::size_t>(n), true);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::apply_abstract_window(cfg, no_r, all_s, th, t, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbstractWindow)->Arg(16)->Arg(64)->Arg(256);

void BM_TalagrandExact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const prob::ProductSpace space =
      prob::ProductSpace::iid(prob::FiniteDist::uniform(2), n);
  std::vector<prob::Point> A;
  space.enumerate([&](const prob::Point& x, double) {
    int w = 0;
    for (int xi : x) w += xi;
    if (w <= 1) A.push_back(x);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::check_exact(space, A, 2));
  }
}
BENCHMARK(BM_TalagrandExact)->Arg(8)->Arg(12);

void BM_RngThroughput(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngThroughput);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_m1_sim_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
