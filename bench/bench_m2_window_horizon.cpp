// Experiment M2: long-horizon window throughput — the O(history) kill.
//
// Before this bench existed, every window paid costs proportional to the
// whole execution history: end_window() scanned every envelope ever sent
// and the buffer's memory grew without bound. The recycling arena makes a
// steady-state window O(live messages) with flat memory. This bench proves
// both claims on a 10k-window, n = 32 run:
//
//   1. engine runs (reset-agreement under split-keeper / fair adversaries):
//      sustained windows/sec and deliveries/sec, plus the arena high-water
//      mark sampled early and late — identical samples ⇒ flat live memory;
//   2. a buffer-level A/B against a faithful replica of the pre-PR
//      append-only MessageBuffer driven with the identical add / deliver /
//      end-of-window-drop schedule — the reported speedup is the data
//      structure delta alone.
//
// Writes BENCH_m2_window_horizon.json (see bench_json.hpp).
//
//   ./build/bench/bench_m2_window_horizon [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/api.hpp"

using namespace aa;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- faithful replica of the pre-PR append-only buffer -------------------
// Mirrors the seed's MessageBuffer: envelopes and states accumulate forever;
// pending_to scans the receiver's full id history, pending_in_window scans
// EVERY envelope ever sent. Kept here (not in the library) purely as the
// bench baseline.
class LegacyBuffer {
 public:
  explicit LegacyBuffer(int n) : by_receiver_(static_cast<std::size_t>(n)) {}

  sim::MsgId add(sim::ProcId sender, sim::ProcId receiver,
                 const sim::Message& payload, std::int64_t window,
                 std::int64_t chain) {
    const sim::MsgId id = static_cast<sim::MsgId>(all_.size());
    all_.push_back(sim::Envelope{id, sender, receiver, payload, window, chain});
    state_.push_back(State::Pending);
    by_receiver_[static_cast<std::size_t>(receiver)].push_back(id);
    ++pending_;
    return id;
  }

  void mark_delivered(sim::MsgId id) {
    state_[static_cast<std::size_t>(id)] = State::Delivered;
    --pending_;
  }

  [[nodiscard]] std::vector<sim::MsgId> pending_to(sim::ProcId receiver) const {
    std::vector<sim::MsgId> out;
    for (sim::MsgId id : by_receiver_[static_cast<std::size_t>(receiver)]) {
      if (state_[static_cast<std::size_t>(id)] == State::Pending)
        out.push_back(id);
    }
    return out;
  }

  [[nodiscard]] std::vector<sim::MsgId> pending_in_window(std::int64_t w) const {
    std::vector<sim::MsgId> out;
    for (std::size_t i = 0; i < all_.size(); ++i) {
      if (state_[i] == State::Pending && all_[i].window == w)
        out.push_back(static_cast<sim::MsgId>(i));
    }
    return out;
  }

  void drop_pending_in_window(std::int64_t w) {
    for (sim::MsgId id : pending_in_window(w)) {
      state_[static_cast<std::size_t>(id)] = State::Dropped;
      --pending_;
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t total_sent() const { return all_.size(); }
  [[nodiscard]] std::size_t dropped_count() const { return dropped_; }
  [[nodiscard]] std::size_t bytes_resident() const {
    return all_.capacity() * sizeof(sim::Envelope) + state_.capacity();
  }

 private:
  enum class State : std::uint8_t { Pending, Delivered, Dropped };
  std::vector<sim::Envelope> all_;
  std::vector<State> state_;
  std::vector<std::vector<sim::MsgId>> by_receiver_;
  std::size_t pending_ = 0;
  std::size_t dropped_ = 0;
};

/// The synthetic per-window schedule both buffers run: n² adds, deliver the
/// messages aimed at even receivers, window-drop the rest.
template <typename Buffer>
std::size_t drive_buffer(Buffer& buf, int n, std::int64_t windows) {
  sim::Message m;
  m.kind = 1;
  std::size_t delivered = 0;
  for (std::int64_t w = 0; w < windows; ++w) {
    for (int s = 0; s < n; ++s) {
      for (int r = 0; r < n; ++r) buf.add(s, r, m, w, 1);
    }
    for (int r = 0; r < n; r += 2) {
      if constexpr (std::is_same_v<Buffer, LegacyBuffer>) {
        for (sim::MsgId id : buf.pending_to(r)) {
          buf.mark_delivered(id);
          ++delivered;
        }
      } else {
        for (const sim::Envelope& env : buf.pending_to(r)) {
          buf.mark_delivered(env.id);
          ++delivered;
        }
      }
    }
    buf.drop_pending_in_window(w);
  }
  return delivered;
}

struct EngineRun {
  double seconds = 0;
  std::int64_t deliveries = 0;
  std::size_t slots_early = 0;  ///< arena high-water mark at W/10
  std::size_t slots_late = 0;   ///< ... and at W
  std::size_t total_sent = 0;
};

EngineRun run_engine(sim::WindowAdversary& adv, int n, int t,
                     std::int64_t windows) {
  sim::Execution exec(
      protocols::make_processes(protocols::ProtocolKind::Reset, t,
                                protocols::split_inputs(n, 0.5)),
      42);
  EngineRun out;
  const auto start = std::chrono::steady_clock::now();
  const std::int64_t early = windows / 10 > 0 ? windows / 10 : 1;
  for (std::int64_t w = 0; w < windows; ++w) {
    out.deliveries += sim::run_acceptable_window(exec, adv, t);
    if (w + 1 == early) out.slots_early = exec.buffer().slot_capacity();
  }
  out.seconds = seconds_since(start);
  out.slots_late = exec.buffer().slot_capacity();
  out.total_sent = exec.buffer().total_sent();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int n = 32;
  const int t = 5;  // t < n/6
  const std::int64_t windows = smoke ? 500 : 10000;

  std::printf("M2: window-horizon throughput (n=%d, t=%d, %lld windows%s)\n\n",
              n, t, static_cast<long long>(windows), smoke ? ", smoke" : "");

  bench::BenchJson j("m2_window_horizon");
  j.set("config.n", n);
  j.set("config.t", t);
  j.set("config.windows", static_cast<std::int64_t>(windows));
  j.set("config.smoke", smoke);

  // ---- engine throughput over the full horizon ---------------------------
  {
    adversary::SplitKeeperAdversary keeper;
    const EngineRun r = run_engine(keeper, n, t, windows);
    std::printf("engine/split-keeper : %9.0f windows/s, %10.0f deliveries/s "
                "(%lld sent; arena slots %zu @W/10 → %zu @W)\n",
                windows / r.seconds,
                static_cast<double>(r.deliveries) / r.seconds,
                static_cast<long long>(r.total_sent), r.slots_early,
                r.slots_late);
    j.set("engine_split_keeper.windows_per_sec", windows / r.seconds);
    j.set("engine_split_keeper.deliveries_per_sec",
          static_cast<double>(r.deliveries) / r.seconds);
    j.set("engine_split_keeper.wall_seconds", r.seconds);
    j.set("engine_split_keeper.total_messages",
          static_cast<std::int64_t>(r.total_sent));
    j.set("engine_split_keeper.arena_slots_early", r.slots_early);
    j.set("engine_split_keeper.arena_slots_late", r.slots_late);
    j.set("engine_split_keeper.live_memory_flat",
          r.slots_early == r.slots_late);
  }
  {
    adversary::FairWindowAdversary fair;
    const EngineRun r = run_engine(fair, n, t, windows);
    std::printf("engine/fair         : %9.0f windows/s, %10.0f deliveries/s "
                "(arena slots %zu @W/10 → %zu @W)\n",
                windows / r.seconds,
                static_cast<double>(r.deliveries) / r.seconds, r.slots_early,
                r.slots_late);
    j.set("engine_fair.windows_per_sec", windows / r.seconds);
    j.set("engine_fair.deliveries_per_sec",
          static_cast<double>(r.deliveries) / r.seconds);
    j.set("engine_fair.wall_seconds", r.seconds);
    j.set("engine_fair.arena_slots_early", r.slots_early);
    j.set("engine_fair.arena_slots_late", r.slots_late);
    j.set("engine_fair.live_memory_flat", r.slots_early == r.slots_late);
  }

  // ---- buffer-level A/B: arena vs pre-PR append-only baseline ------------
  double arena_s = 0;
  double legacy_s = 0;
  {
    sim::MessageBuffer buf(n);
    const auto start = std::chrono::steady_clock::now();
    const std::size_t delivered = drive_buffer(buf, n, windows);
    arena_s = seconds_since(start);
    std::printf("buffer/arena        : %9.0f windows/s (%zu delivered, "
                "%zu slots resident)\n",
                windows / arena_s, delivered, buf.slot_capacity());
    j.set("buffer_arena.windows_per_sec", windows / arena_s);
    j.set("buffer_arena.wall_seconds", arena_s);
    j.set("buffer_arena.slots_resident", buf.slot_capacity());
  }
  {
    LegacyBuffer buf(n);
    const auto start = std::chrono::steady_clock::now();
    const std::size_t delivered = drive_buffer(buf, n, windows);
    legacy_s = seconds_since(start);
    std::printf("buffer/legacy       : %9.0f windows/s (%zu delivered, "
                "%.1f MiB resident)\n",
                windows / legacy_s, delivered,
                static_cast<double>(buf.bytes_resident()) / (1024.0 * 1024.0));
    j.set("buffer_legacy.windows_per_sec", windows / legacy_s);
    j.set("buffer_legacy.wall_seconds", legacy_s);
    j.set("buffer_legacy.bytes_resident",
          static_cast<std::int64_t>(buf.bytes_resident()));
  }
  const double speedup = legacy_s / arena_s;
  std::printf("\nspeedup arena vs pre-PR buffer: %.1fx over %lld windows\n",
              speedup, static_cast<long long>(windows));
  j.set("speedup_vs_legacy", speedup);

  const std::string path = j.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
