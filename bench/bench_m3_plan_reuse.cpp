// Experiment M3: plan reuse + batched delivery — the driver-redesign A/B.
//
// The arena PR (M2) left a 2× gap between the buffer ceiling and the
// engine: every window re-filled an n² WindowPlan, re-validated it, and
// paid one virtual Process::on_receive per delivery. This bench isolates
// what the adversary-API redesign buys back, per adversary, on a 10k-window
// n = 32 run of reset-agreement:
//
//   legacy_per_id  — faithful replica of the pre-PR driver: replan + full
//                    re-validation every window, one receiving_step (and
//                    its virtual on_receive) per delivery. Runs on the
//                    current buffer, so the delta is the DRIVER redesign
//                    alone (a lower bound on the gain vs the true pre-PR
//                    engine — compare bench_m2 across commits for that).
//   replan_batched — current driver forced to replan/re-validate every
//                    window (adversary::ReplanEveryWindow): isolates the
//                    batched-delivery gain.
//   reuse_batched  — the full redesign: static adversaries reuse their
//                    plan (kReusePrevious) and deliveries run batched.
//
// Adversaries: fair and silencer (static plans — they exercise reuse) and
// split-keeper (genuinely adaptive — replans every window by nature, so
// reuse_batched degenerates to replan_batched and only the delivery delta
// shows).
//
// Writes BENCH_m3_plan_reuse.json (see bench_json.hpp).
//
//   ./build/bench/bench_m3_plan_reuse [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/api.hpp"

using namespace aa;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Scratch for the legacy driver replica (mirrors the pre-PR
/// run_acceptable_window internals, kept bench-local on purpose).
struct LegacyScratch {
  std::vector<sim::MsgId> batch;
  std::vector<std::int32_t> pair_count;
  std::vector<std::int32_t> pair_begin;
  std::vector<sim::MsgId> pair_ids;
  sim::WindowPlan plan;
  sim::WindowScratch vscratch;  ///< for validate_window_plan's stamps
};

/// Faithful pre-PR driver: replan + validate every window, a counting-sort
/// pair-index rebuild from per-id buffer lookups, and per-id
/// receiving_step deliveries. (Publication itself now always runs through
/// add_batch inside sending_step, so the delta this mode shows is the
/// driver redesign minus the publication half — a lower bound.)
int run_legacy_window(sim::Execution& exec, sim::WindowAdversary& adv, int t,
                      LegacyScratch& sc) {
  const int n = exec.n();
  exec.begin_window_batch();  // plan_window_into needs the WindowBatch view
  sc.batch.clear();
  for (sim::ProcId p = 0; p < n; ++p) {
    const auto pub = exec.sending_step(p);
    sc.batch.insert(sc.batch.end(), pub.begin(), pub.end());
  }
  adv.prepare(n, t);  // clears any static-plan cache: forces a full refill
  sc.plan.reset(n);
  adv.plan_window_into(exec, exec.window_batch(), sc.plan);
  sim::validate_window_plan(sc.plan, n, t, sc.vscratch);

  const std::size_t nn =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  sc.pair_count.assign(nn, 0);
  const sim::MessageBuffer& buf = exec.buffer();
  for (sim::MsgId id : sc.batch) {
    const sim::Envelope& env = buf.get(id);
    ++sc.pair_count[static_cast<std::size_t>(env.sender) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(env.receiver)];
  }
  sc.pair_begin.resize(nn + 1);
  std::int32_t acc = 0;
  for (std::size_t k = 0; k < nn; ++k) {
    sc.pair_begin[k] = acc;
    acc += sc.pair_count[k];
    sc.pair_count[k] = 0;
  }
  sc.pair_begin[nn] = acc;
  sc.pair_ids.resize(sc.batch.size());
  for (sim::MsgId id : sc.batch) {
    const sim::Envelope& env = buf.get(id);
    const std::size_t k = static_cast<std::size_t>(env.sender) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(env.receiver);
    sc.pair_ids[static_cast<std::size_t>(sc.pair_begin[k] +
                                         sc.pair_count[k]++)] = id;
  }

  int deliveries = 0;
  for (sim::ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    for (sim::ProcId s : sc.plan.delivery_order[static_cast<std::size_t>(i)]) {
      const std::size_t k = static_cast<std::size_t>(s) *
                                static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(i);
      for (std::int32_t j = sc.pair_begin[k]; j < sc.pair_begin[k + 1]; ++j) {
        const sim::MsgId id = sc.pair_ids[static_cast<std::size_t>(j)];
        if (!exec.buffer().is_pending(id)) continue;
        exec.receiving_step(id);
        ++deliveries;
      }
    }
  }
  for (sim::ProcId p : sc.plan.resets) exec.resetting_step(p);
  exec.end_window();
  return deliveries;
}

enum class AdvKind { Fair, Silencer, SplitKeeper };

std::unique_ptr<sim::WindowAdversary> make_adv(AdvKind kind, int t) {
  switch (kind) {
    case AdvKind::Fair:
      return std::make_unique<adversary::FairWindowAdversary>();
    case AdvKind::Silencer: {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    case AdvKind::SplitKeeper:
      return std::make_unique<adversary::SplitKeeperAdversary>();
  }
  return nullptr;
}

enum class Mode { LegacyPerId, ReplanBatched, ReuseBatched };

struct RunStats {
  double windows_per_sec = 0;
  std::int64_t deliveries = 0;
};

RunStats run_mode(AdvKind akind, Mode mode, int n, int t,
                  std::int64_t windows) {
  sim::Execution exec(
      protocols::make_processes(protocols::ProtocolKind::Reset, t,
                                protocols::split_inputs(n, 0.5)),
      42);
  std::unique_ptr<sim::WindowAdversary> adv = make_adv(akind, t);
  if (mode == Mode::ReplanBatched) {
    adv = std::make_unique<adversary::ReplanEveryWindow>(std::move(adv));
  }
  RunStats out;
  LegacyScratch legacy;
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t w = 0; w < windows; ++w) {
    out.deliveries += mode == Mode::LegacyPerId
                          ? run_legacy_window(exec, *adv, t, legacy)
                          : sim::run_acceptable_window(exec, *adv, t);
  }
  out.windows_per_sec = static_cast<double>(windows) / seconds_since(start);
  return out;
}

const char* mode_key(Mode m) {
  switch (m) {
    case Mode::LegacyPerId: return "legacy_per_id";
    case Mode::ReplanBatched: return "replan_batched";
    case Mode::ReuseBatched: return "reuse_batched";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int n = 32;
  const int t = 5;  // t < n/6
  const std::int64_t windows = smoke ? 500 : 10000;

  std::printf("M3: plan-reuse + batched-delivery A/B (n=%d, t=%d, %lld "
              "windows%s)\n\n",
              n, t, static_cast<long long>(windows), smoke ? ", smoke" : "");

  bench::BenchJson j("m3_plan_reuse");
  j.set("config.n", n);
  j.set("config.t", t);
  j.set("config.windows", static_cast<std::int64_t>(windows));
  j.set("config.smoke", smoke);

  const struct {
    AdvKind kind;
    const char* name;
  } advs[] = {{AdvKind::Fair, "fair"},
              {AdvKind::Silencer, "silencer"},
              {AdvKind::SplitKeeper, "split_keeper"}};

  for (const auto& a : advs) {
    double legacy_wps = 0;
    double reuse_wps = 0;
    for (const Mode mode :
         {Mode::LegacyPerId, Mode::ReplanBatched, Mode::ReuseBatched}) {
      const RunStats r = run_mode(a.kind, mode, n, t, windows);
      std::printf("%-12s %-15s: %9.0f windows/s (%lld deliveries)\n", a.name,
                  mode_key(mode), r.windows_per_sec,
                  static_cast<long long>(r.deliveries));
      const std::string key =
          std::string(a.name) + "." + mode_key(mode) + ".windows_per_sec";
      j.set(key, r.windows_per_sec);
      if (mode == Mode::LegacyPerId) legacy_wps = r.windows_per_sec;
      if (mode == Mode::ReuseBatched) reuse_wps = r.windows_per_sec;
    }
    const double speedup = reuse_wps / legacy_wps;
    std::printf("%-12s redesign vs legacy driver: %.2fx\n\n", a.name, speedup);
    j.set(std::string(a.name) + ".speedup_vs_legacy_driver", speedup);
  }

  const std::string path = j.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
