// Experiment M4: the bulk publication pipeline A/B.
//
// Two layers:
//
//   publication — MessageBuffer in isolation, the staging→publication hot
//     path alone: one window of n=32 broadcasts published as n² per-item
//     add() calls vs n add_batch() runs, window dropped, repeated. The
//     delta is the slot-run allocation + single window-list splice + bulk
//     id-map insert that add_batch buys.
//
//   engine — the same probe as BENCH_m3 (reset-agreement, n=32, t=5, 10k
//     windows): the full batched pipeline (add_batch publication + fused
//     pair index + deliver_plan_row whole-list fast path) vs a
//     per-message reference driver that delivers every message through
//     receiving_step (per-id id-map lookups, one virtual on_receive per
//     message) after an identical sending/planning phase. Adversaries:
//     fair (whole-list splice), silencer (filtered splice), split-keeper
//     (adversarial order → slow path; the publication + pair-index gains
//     still show).
//
// Writes BENCH_m4_send_batch.json (see bench_json.hpp).
//
//   ./build/bench/bench_m4_send_batch [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/api.hpp"

using namespace aa;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- layer 1: buffer-level publication ------------------------------------

double publication_per_item(int n, std::int64_t windows) {
  sim::MessageBuffer buf(n);
  sim::Message m;
  m.kind = 1;
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t w = 0; w < windows; ++w) {
    for (sim::ProcId s = 0; s < n; ++s) {
      for (sim::ProcId r = 0; r < n; ++r) buf.add(s, r, m, w, 1);
    }
    buf.drop_pending_in_window(w);
  }
  const double secs = seconds_since(start);
  return static_cast<double>(windows) * n * n / secs;
}

double publication_batched(int n, std::int64_t windows) {
  sim::MessageBuffer buf(n);
  sim::Message m;
  m.kind = 1;
  std::vector<sim::StagedMessage> items;
  for (sim::ProcId r = 0; r < n; ++r) items.push_back({r, m});
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t w = 0; w < windows; ++w) {
    for (sim::ProcId s = 0; s < n; ++s) buf.add_batch(s, items, w, 1);
    buf.drop_pending_in_window(w);
  }
  const double secs = seconds_since(start);
  return static_cast<double>(windows) * n * n / secs;
}

// ---- layer 2: engine windows/s --------------------------------------------

/// Per-message reference: identical sending + planning phases, but every
/// delivery is one receiving_step (per-id lookups, per-message virtual
/// dispatch) — the path deliver_plan_row replaces.
int run_reference_window(sim::Execution& exec, sim::WindowAdversary& adv,
                         int t, sim::WindowPlan& plan) {
  const int n = exec.n();
  exec.begin_window_batch();
  for (sim::ProcId p = 0; p < n; ++p) exec.sending_step(p);
  adv.prepare(n, t);
  plan.reset(n);
  adv.plan_window_into(exec, exec.window_batch(), plan);
  sim::validate_window_plan(plan, n, t);
  const sim::WindowBatch batch = exec.window_batch();
  int deliveries = 0;
  for (sim::ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    for (sim::ProcId s : plan.delivery_order[static_cast<std::size_t>(i)]) {
      for (sim::MsgId id : batch.from_to(s, i)) {
        exec.receiving_step(id);
        ++deliveries;
      }
    }
  }
  for (sim::ProcId p : plan.resets) exec.resetting_step(p);
  exec.end_window();
  return deliveries;
}

enum class AdvKind { Fair, Silencer, SplitKeeper };

std::unique_ptr<sim::WindowAdversary> make_adv(AdvKind kind, int t) {
  switch (kind) {
    case AdvKind::Fair:
      return std::make_unique<adversary::FairWindowAdversary>();
    case AdvKind::Silencer: {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    case AdvKind::SplitKeeper:
      return std::make_unique<adversary::SplitKeeperAdversary>();
  }
  return nullptr;
}

struct RunStats {
  double windows_per_sec = 0;
  std::int64_t deliveries = 0;
};

RunStats run_engine(AdvKind akind, bool per_message, int n, int t,
                    std::int64_t windows) {
  sim::Execution exec(
      protocols::make_processes(protocols::ProtocolKind::Reset, t,
                                protocols::split_inputs(n, 0.5)),
      42);
  std::unique_ptr<sim::WindowAdversary> adv = make_adv(akind, t);
  RunStats out;
  sim::WindowPlan ref_plan;
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t w = 0; w < windows; ++w) {
    out.deliveries += per_message
                          ? run_reference_window(exec, *adv, t, ref_plan)
                          : sim::run_acceptable_window(exec, *adv, t);
  }
  out.windows_per_sec = static_cast<double>(windows) / seconds_since(start);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int n = 32;
  const int t = 5;  // t < n/6
  const std::int64_t windows = smoke ? 500 : 10000;

  std::printf("M4: bulk publication pipeline A/B (n=%d, t=%d, %lld windows%s)\n\n",
              n, t, static_cast<long long>(windows), smoke ? ", smoke" : "");

  bench::BenchJson j("m4_send_batch");
  j.set("config.n", n);
  j.set("config.t", t);
  j.set("config.windows", static_cast<std::int64_t>(windows));
  j.set("config.smoke", smoke);

  const double per_item = publication_per_item(n, windows);
  const double batched = publication_batched(n, windows);
  std::printf("publication  per_item  : %12.0f msgs/s\n", per_item);
  std::printf("publication  add_batch : %12.0f msgs/s\n", batched);
  std::printf("publication  speedup   : %.2fx\n\n", batched / per_item);
  j.set("publication.per_item.msgs_per_sec", per_item);
  j.set("publication.batched.msgs_per_sec", batched);
  j.set("publication.speedup", batched / per_item);

  const struct {
    AdvKind kind;
    const char* name;
  } advs[] = {{AdvKind::Fair, "fair"},
              {AdvKind::Silencer, "silencer"},
              {AdvKind::SplitKeeper, "split_keeper"}};

  for (const auto& a : advs) {
    const RunStats ref = run_engine(a.kind, /*per_message=*/true, n, t, windows);
    const RunStats fast = run_engine(a.kind, /*per_message=*/false, n, t, windows);
    std::printf("%-12s per_message : %9.0f windows/s (%lld deliveries)\n",
                a.name, ref.windows_per_sec,
                static_cast<long long>(ref.deliveries));
    std::printf("%-12s batched     : %9.0f windows/s (%lld deliveries)\n",
                a.name, fast.windows_per_sec,
                static_cast<long long>(fast.deliveries));
    const double speedup = fast.windows_per_sec / ref.windows_per_sec;
    std::printf("%-12s speedup     : %.2fx\n\n", a.name, speedup);
    j.set(std::string(a.name) + ".per_message.windows_per_sec",
          ref.windows_per_sec);
    j.set(std::string(a.name) + ".batched.windows_per_sec",
          fast.windows_per_sec);
    j.set(std::string(a.name) + ".speedup_vs_per_message", speedup);
  }

  const std::string path = j.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
