// Experiment T1 (DESIGN.md): the Theorem 4 threshold regime.
// For a grid of (n, t), validate threshold presets against the theorem's
// constraints and measure agreement/termination/mean-windows under a
// randomized adversary. Includes the canonical preset, a relaxed-T2 preset
// (legal only when t has slack — it speeds decisions), and a deliberately
// broken preset to show the constraint is load-bearing.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_json.hpp"
#include "core/api.hpp"

using namespace aa;

namespace {

struct Preset {
  const char* label;
  protocols::Thresholds th;
};

/// All trial work in this bench runs through ONE shared campaign context:
/// one worker per hardware thread, small chunks so even the 8-trial grid
/// rows shard, and the pool + per-worker Execution scratch persist across
/// every check (no spawn/join or arena regrowth per call).
const ParallelConfig kPool{.threads = 0, .chunk_size = 2};

void run_preset(Table& table, core::CampaignContext& ctx, int n, int t,
                const Preset& preset, int trials) {
  const std::string violation =
      protocols::threshold_violation(n, t, preset.th);
  const bool valid = violation.empty();

  // Valid presets terminate quickly; broken presets may stall some
  // processor forever, so cap their horizon (violations show up early).
  const std::int64_t max_windows = valid ? 50000 : 2000;
  core::Experiment spec;
  spec.kind = protocols::ProtocolKind::Reset;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = t;
  spec.budget = max_windows;
  spec.thresholds = preset.th;
  const core::MeasureOneReport rep = core::check_measure_one_window(
      spec,
      [t](std::uint64_t seed) {
        return std::make_unique<adversary::RandomWindowAdversary>(t, 0.2,
                                                                  Rng(seed));
      },
      trials, /*seed0=*/static_cast<std::uint64_t>(n) * 100 + t, ctx);

  const double agree_rate =
      1.0 - static_cast<double>(rep.agreement_violations) / trials;
  const double term_rate =
      static_cast<double>(rep.all_decided_runs) / trials;
  table.add_row(
      {Table::fmt_int(n), Table::fmt_int(t), preset.label,
       std::to_string(preset.th.t1) + "/" + std::to_string(preset.th.t2) +
           "/" + std::to_string(preset.th.t3),
       valid ? "yes" : "NO", Table::fmt(agree_rate, 2),
       Table::fmt(term_rate, 2), Table::fmt(rep.mean_windows_to_first, 1)});
}

}  // namespace

int main() {
  std::printf("T1: threshold sweep (reset-agreement, split inputs, random "
              "adversary with resets)\n\n");
  Table table({"n", "t", "preset", "T1/T2/T3", "Thm4-ok", "agree", "term",
               "mean win"});
  // One long-lived pool + per-worker scratch for the whole bench.
  core::CampaignContext ctx(kPool);

  const int trials = 8;
  // At the resilience ceiling (t just under n/6), canonical is the ONLY
  // legal setting: T3 = n − 3t equals its floor ⌊n/2⌋ + 1 and T2 is pinned
  // to T1. With slack (smaller t), a lower (T2, T3) pair is legal and
  // decides sooner — the Theorem 4 remark about small t.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {13, 2}, {19, 3}, {25, 4}, {31, 5}}) {
    run_preset(table, ctx, n, t,
               Preset{"canonical", protocols::canonical_thresholds(n, t)},
               trials);
  }
  // Note on sizes: canonical thresholds with t far below the ceiling make
  // T2 = T1 a near-unanimity requirement, so the canonical side of the
  // comparison is itself exponentially slow (the F1 effect). (19, 2) keeps
  // both sides affordable; larger slack pairs would take hours.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{19, 2}}) {
    run_preset(table, ctx, n, t,
               Preset{"canonical", protocols::canonical_thresholds(n, t)},
               trials);
    const protocols::Thresholds relaxed{n - 2 * t, n / 2 + 1 + t, n / 2 + 1};
    run_preset(table, ctx, n, t, Preset{"relaxed-T2", relaxed}, trials);
  }
  // The cautionary rows: break 2*T3 > n (conflicting deterministic adopts
  // become possible) and T2 >= T3 + t (premature decisions vs resets).
  {
    const int n = 13;
    const int t = 2;
    const protocols::Thresholds broken_t3{n - 2 * t, n / 2 + 1, n / 2};
    run_preset(table, ctx, n, t, Preset{"BROKEN-T3", broken_t3}, 30);
    const protocols::Thresholds broken_t2{n - 2 * t, n - 3 * t, n - 3 * t};
    run_preset(table, ctx, n, t, Preset{"BROKEN-T2", broken_t2}, 30);
  }
  table.print(std::cout, "T1 threshold regime");
  std::printf("Theorem 4 rows (Thm4-ok = yes) must show agree = 1.00 and "
              "term = 1.00. BROKEN rows demonstrate the constraints are "
              "load-bearing (agreement/validity or termination degrade).\n");

  // ---- serial vs parallel throughput on one hot configuration ----------
  {
    const int n = 13;
    const int t = 2;
    const int tp_trials = 64;
    core::Experiment spec;
    spec.kind = protocols::ProtocolKind::Reset;
    spec.inputs = protocols::split_inputs(n, 0.5);
    spec.t = t;
    spec.budget = 50000;
    spec.thresholds = protocols::canonical_thresholds(n, t);
    const auto measure = [&](core::CampaignContext& run_ctx,
                             core::MeasureOneReport& rep) {
      const auto start = std::chrono::steady_clock::now();
      rep = core::check_measure_one_window(
          spec,
          [t](std::uint64_t seed) {
            return std::make_unique<adversary::RandomWindowAdversary>(
                t, 0.2, Rng(seed));
          },
          tp_trials, /*seed0=*/9000, run_ctx);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    core::MeasureOneReport serial_rep;
    core::MeasureOneReport parallel_rep;
    core::CampaignContext serial_ctx(
        ParallelConfig{.threads = 1, .chunk_size = 2});
    const double serial_s = measure(serial_ctx, serial_rep);
    // The parallel side reuses the bench-wide context: pool already up,
    // per-worker Executions already warm from the sweep above.
    const double parallel_s = measure(ctx, parallel_rep);
    const bool identical =
        serial_rep.mean_windows_to_first == parallel_rep.mean_windows_to_first &&
        serial_rep.all_decided_runs == parallel_rep.all_decided_runs &&
        serial_rep.violating_seeds == parallel_rep.violating_seeds;
    std::printf(
        "\nthroughput (n=%d, t=%d, %d trials): serial %.2f trials/s, "
        "parallel(%d threads) %.2f trials/s, speedup %.2fx, "
        "reports bit-identical: %s\n",
        n, t, tp_trials, tp_trials / serial_s, kPool.resolved_threads(),
        tp_trials / parallel_s, serial_s / parallel_s,
        identical ? "yes" : "NO");

    bench::BenchJson j("t1_threshold_sweep");
    j.set("config.n", n);
    j.set("config.t", t);
    j.set("config.trials", tp_trials);
    j.set("config.threads", kPool.resolved_threads());
    j.set("serial.trials_per_sec", tp_trials / serial_s);
    j.set("serial.wall_seconds", serial_s);
    j.set("parallel.trials_per_sec", tp_trials / parallel_s);
    j.set("parallel.wall_seconds", parallel_s);
    j.set("parallel_speedup", serial_s / parallel_s);
    j.set("reports_bit_identical", identical);
    const std::string path = j.write();
    if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
