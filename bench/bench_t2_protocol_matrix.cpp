// Experiment T2 (DESIGN.md): the protocol × adversary resilience matrix —
// the §1/§3 qualitative claims in one table.
//
// Expected shape:
//   * reset-agreement survives EVERY column (Theorem 4), including the
//     reset storm; it is merely slow vs the split-keeper.
//   * Ben-Or / Bracha handle fair/silencer schedules (their design point)
//     but stall under the reset storm (no rejoin path).
//   * forgetful handles fair/silencer and is slowed by the split-keeper
//     (Theorem 17's subject).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_json.hpp"
#include "core/api.hpp"
#include "util/thread_pool.hpp"

using namespace aa;

namespace {

enum class Adv { Fair, Silencer, Random, ResetStorm, SplitKeeper };
const char* adv_label(Adv a) {
  switch (a) {
    case Adv::Fair: return "fair";
    case Adv::Silencer: return "silencer";
    case Adv::Random: return "random+resets";
    case Adv::ResetStorm: return "reset-storm";
    case Adv::SplitKeeper: return "split-keeper";
  }
  return "?";
}

std::unique_ptr<sim::WindowAdversary> make_adv(Adv a, int t,
                                               std::uint64_t seed) {
  switch (a) {
    case Adv::Fair:
      return std::make_unique<adversary::FairWindowAdversary>();
    case Adv::Silencer: {
      std::vector<sim::ProcId> s;
      for (int i = 0; i < t; ++i) s.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(s);
    }
    case Adv::Random:
      return std::make_unique<adversary::RandomWindowAdversary>(t, 0.2,
                                                                Rng(seed));
    case Adv::ResetStorm:
      return std::make_unique<adversary::ResetStormAdversary>(t, Rng(seed));
    case Adv::SplitKeeper:
      return std::make_unique<adversary::SplitKeeperAdversary>();
  }
  return nullptr;
}

/// One matrix cell's tallies; chunk partials merge in chunk order, so the
/// cell is bit-identical at any thread count.
struct Cell {
  int decided = 0;
  int agree = 0;
  int valid = 0;
  RunningStats windows;

  void merge(const Cell& o) {
    decided += o.decided;
    agree += o.agree;
    valid += o.valid;
    windows.merge(o.windows);
  }
};

Cell run_cell(protocols::ProtocolKind kind, Adv a, int n, int t, int trials,
              std::int64_t horizon, core::CampaignContext& ctx) {
  const ParallelConfig& par = ctx.parallel();
  std::vector<Cell> parts(static_cast<std::size_t>(chunk_count(trials, par)));
  core::Experiment spec;
  spec.kind = kind;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = t;
  spec.budget = horizon;
  spec.stop = core::StopCondition::kAllDecided;
  const core::Runner runner(std::move(spec));
  const auto body = [&](int ci, std::int64_t begin, std::int64_t end) {
    Cell& p = parts[static_cast<std::size_t>(ci)];
    core::WorkerScratch& scratch = ctx.worker_scratch();
    for (std::int64_t trial = begin; trial < end; ++trial) {
      const auto seed = static_cast<std::uint64_t>(trial) + 31;
      auto adv = make_adv(a, t, seed);
      const auto r = runner.run_window(*adv, seed, scratch);
      if (r.all_decided) {
        ++p.decided;
        p.windows.add(static_cast<double>(r.windows_total));
      }
      if (r.agreement) ++p.agree;
      if (r.validity) ++p.valid;
    }
  };
  if (ctx.pool() != nullptr) parallel_for_chunks(trials, par, body, *ctx.pool());
  else parallel_for_chunks(trials, par, body);
  Cell cell;
  for (const Cell& p : parts) cell.merge(p);
  return cell;
}

}  // namespace

int main() {
  const int n = 13;
  const int t = 2;  // t < n/6 (reset), < n/3 (bracha), < n/2 (ben-or)
  const int trials = 5;
  const std::int64_t horizon = 3000;
  std::printf("T2: protocol x adversary matrix "
              "(n=%d, t=%d, split inputs, %d trials, horizon %lld windows)\n\n",
              n, t, trials, static_cast<long long>(horizon));

  const protocols::ProtocolKind kinds[] = {
      protocols::ProtocolKind::Reset, protocols::ProtocolKind::BenOr,
      protocols::ProtocolKind::Bracha, protocols::ProtocolKind::Forgetful};
  const Adv advs[] = {Adv::Fair, Adv::Silencer, Adv::Random, Adv::ResetStorm,
                      Adv::SplitKeeper};

  const auto run_matrix = [&](core::CampaignContext& ctx, Table* table) {
    const auto start = std::chrono::steady_clock::now();
    for (const auto kind : kinds) {
      for (const Adv a : advs) {
        const Cell cell = run_cell(kind, a, n, t, trials, horizon, ctx);
        if (table) {
          table->add_row(
              {protocols::protocol_kind_name(kind), adv_label(a),
               std::to_string(cell.decided) + "/" + std::to_string(trials),
               std::to_string(cell.agree) + "/" + std::to_string(trials),
               std::to_string(cell.valid) + "/" + std::to_string(trials),
               cell.decided ? Table::fmt(cell.windows.mean(), 1) : "-"});
        }
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  Table table({"protocol", "adversary", "decided", "agree", "valid",
               "mean windows"});
  const ParallelConfig pool{.threads = 0, .chunk_size = 1};
  // One context per throughput mode, each persisting across all 20 cells:
  // the pool spawn and per-worker Execution growth happen once, not per
  // cell — the overhead that used to flatten this bench's speedup.
  core::CampaignContext parallel_ctx(pool);
  core::CampaignContext serial_ctx(
      ParallelConfig{.threads = 1, .chunk_size = 1});
  const double parallel_s = run_matrix(parallel_ctx, &table);
  const double serial_s = run_matrix(serial_ctx, nullptr);
  table.print(std::cout, "T2 protocol x adversary");

  const int total = static_cast<int>(std::size(kinds)) *
                    static_cast<int>(std::size(advs)) * trials;
  std::printf("throughput (%d runs): serial %.2f runs/s, parallel(%d threads) "
              "%.2f runs/s, speedup %.2fx\n",
              total, total / serial_s, pool.resolved_threads(),
              total / parallel_s, serial_s / parallel_s);

  bench::BenchJson j("t2_protocol_matrix");
  j.set("config.n", n);
  j.set("config.t", t);
  j.set("config.trials", trials);
  j.set("config.horizon_windows", horizon);
  j.set("config.runs", total);
  j.set("config.threads", pool.resolved_threads());
  j.set("serial.runs_per_sec", total / serial_s);
  j.set("serial.wall_seconds", serial_s);
  j.set("parallel.runs_per_sec", total / parallel_s);
  j.set("parallel.wall_seconds", parallel_s);
  j.set("parallel_speedup", serial_s / parallel_s);
  const std::string json_path = j.write();
  if (!json_path.empty()) std::printf("wrote %s\n", json_path.c_str());
  std::printf(
      "Reading: reset-agreement terminates in every row (Theorem 4); the\n"
      "baselines keep SAFETY everywhere but lose liveness under the reset\n"
      "storm (no rejoin path) — the failure mode resetting faults introduce.\n");
  return 0;
}
