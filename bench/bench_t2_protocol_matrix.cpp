// Experiment T2 (DESIGN.md): the protocol × adversary resilience matrix —
// the §1/§3 qualitative claims in one table.
//
// Expected shape:
//   * reset-agreement survives EVERY column (Theorem 4), including the
//     reset storm; it is merely slow vs the split-keeper.
//   * Ben-Or / Bracha handle fair/silencer schedules (their design point)
//     but stall under the reset storm (no rejoin path).
//   * forgetful handles fair/silencer and is slowed by the split-keeper
//     (Theorem 17's subject).
#include <cstdio>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

namespace {

enum class Adv { Fair, Silencer, Random, ResetStorm, SplitKeeper };
const char* adv_label(Adv a) {
  switch (a) {
    case Adv::Fair: return "fair";
    case Adv::Silencer: return "silencer";
    case Adv::Random: return "random+resets";
    case Adv::ResetStorm: return "reset-storm";
    case Adv::SplitKeeper: return "split-keeper";
  }
  return "?";
}

std::unique_ptr<sim::WindowAdversary> make_adv(Adv a, int t,
                                               std::uint64_t seed) {
  switch (a) {
    case Adv::Fair:
      return std::make_unique<adversary::FairWindowAdversary>();
    case Adv::Silencer: {
      std::vector<sim::ProcId> s;
      for (int i = 0; i < t; ++i) s.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(s);
    }
    case Adv::Random:
      return std::make_unique<adversary::RandomWindowAdversary>(t, 0.2,
                                                                Rng(seed));
    case Adv::ResetStorm:
      return std::make_unique<adversary::ResetStormAdversary>(t, Rng(seed));
    case Adv::SplitKeeper:
      return std::make_unique<adversary::SplitKeeperAdversary>();
  }
  return nullptr;
}

}  // namespace

int main() {
  const int n = 13;
  const int t = 2;  // t < n/6 (reset), < n/3 (bracha), < n/2 (ben-or)
  const int trials = 5;
  const std::int64_t horizon = 3000;
  std::printf("T2: protocol x adversary matrix "
              "(n=%d, t=%d, split inputs, %d trials, horizon %lld windows)\n\n",
              n, t, trials, static_cast<long long>(horizon));

  Table table({"protocol", "adversary", "decided", "agree", "valid",
               "mean windows"});
  const protocols::ProtocolKind kinds[] = {
      protocols::ProtocolKind::Reset, protocols::ProtocolKind::BenOr,
      protocols::ProtocolKind::Bracha, protocols::ProtocolKind::Forgetful};
  const Adv advs[] = {Adv::Fair, Adv::Silencer, Adv::Random, Adv::ResetStorm,
                      Adv::SplitKeeper};

  for (const auto kind : kinds) {
    for (const Adv a : advs) {
      int decided = 0;
      int agree = 0;
      int valid = 0;
      RunningStats windows;
      for (int trial = 0; trial < trials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) + 31;
        auto adv = make_adv(a, t, seed);
        const auto r = core::run_window_experiment(
            kind, protocols::split_inputs(n, 0.5), t, *adv, horizon, seed,
            std::nullopt, /*until_all=*/true);
        if (r.all_decided) {
          ++decided;
          windows.add(static_cast<double>(r.windows_total));
        }
        if (r.agreement) ++agree;
        if (r.validity) ++valid;
      }
      table.add_row({protocols::protocol_kind_name(kind), adv_label(a),
                     std::to_string(decided) + "/" + std::to_string(trials),
                     std::to_string(agree) + "/" + std::to_string(trials),
                     std::to_string(valid) + "/" + std::to_string(trials),
                     decided ? Table::fmt(windows.mean(), 1) : "-"});
    }
  }
  table.print(std::cout, "T2 protocol x adversary");
  std::printf(
      "Reading: reset-agreement terminates in every row (Theorem 4); the\n"
      "baselines keep SAFETY everywhere but lose liveness under the reset\n"
      "storm (no rejoin path) — the failure mode resetting faults introduce.\n");
  return 0;
}
