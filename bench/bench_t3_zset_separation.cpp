// Experiment T3 (DESIGN.md): Lemmas 11 & 13 — the progress sets Z^k_0 and
// Z^k_1 of reachable configurations are Hamming-separated by MORE than t.
// We sample reachable configurations of the §3 algorithm (abstract model),
// bucket them by estimated Z^k membership, and report the minimum observed
// inter-bucket distance for k = 0, 1, 2, plus the paper's τ threshold.
#include <cstdio>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

int main() {
  std::printf("T3: Z-set Hamming separation (Lemma 11 / Lemma 13)\n\n");
  Table table({"n", "t", "k", "tau", "|Z_0|", "|Z_1|", "min dist", "> t"});

  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {8, 1}, {10, 1}, {12, 1}, {14, 2}}) {
    const auto th = protocols::canonical_thresholds(n, t);
    for (int k = 0; k <= 2; ++k) {
      Rng rng(static_cast<std::uint64_t>(n) * 100 + k);
      const int config_samples = k == 0 ? 600 : (k == 1 ? 200 : 80);
      const int mc_samples = k == 0 ? 1 : 40;
      const core::SeparationReport rep = core::measure_separation(
          n, t, th, k, config_samples, mc_samples, rng);
      table.add_row(
          {Table::fmt_int(n), Table::fmt_int(t), Table::fmt_int(k),
           Table::fmt(prob::tau_threshold(t, n), 3),
           Table::fmt_int(rep.z0_count), Table::fmt_int(rep.z1_count),
           rep.min_distance >= 0 ? Table::fmt_int(rep.min_distance) : "-",
           rep.satisfies_lemma ? "yes" : "NO"});
    }
  }
  table.print(std::cout, "T3 Z-set separation");
  std::printf(
      "Lemma 13 predicts min dist > t whenever both buckets are non-empty\n"
      "(empty buckets are vacuous separation). Larger k buckets shrink:\n"
      "being k windows from a forced decision is a strong condition.\n");
  return 0;
}
