// Experiment T4 (DESIGN.md): the §2 incomparability, measured.
//
// "[The strongly adaptive adversary] has the additional power to erase
//  processor memory, but it lacks the power to have corrupted processors
//  'lie' about their local random bits."
//
// We give f processors that lying power (ByzantineProcess wrappers) and
// measure honest-processor agreement/validity/termination:
//   * Bracha (designed for t < n/3 Byzantine) keeps honest agreement for
//     f ≤ t under every lying strategy;
//   * the §3 reset-agreement algorithm — built for erasure, not lies —
//     loses honest agreement or validity once liars appear;
//   * conversely T2 already showed Bracha dies under resets that
//     reset-agreement shrugs off. Neither adversary subsumes the other.
#include <cstdio>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

int main() {
  std::printf("T4: Byzantine (value-lying) processors vs protocols "
              "(fair scheduling; the lying is the only fault)\n\n");
  Table table({"protocol", "n", "t", "f", "strategy", "honest agree",
               "honest valid", "honest done"});

  const int trials = 8;
  const protocols::ByzantineStrategy strategies[] = {
      protocols::ByzantineStrategy::Equivocate,
      protocols::ByzantineStrategy::FlipAll,
      protocols::ByzantineStrategy::Silent,
      protocols::ByzantineStrategy::RandomLie};

  struct Row {
    protocols::ProtocolKind kind;
    int n;
    int t;
  };
  // Bracha at its design point t < n/3; reset-agreement at its t < n/6.
  for (const Row& row : {Row{protocols::ProtocolKind::Bracha, 10, 3},
                         Row{protocols::ProtocolKind::Reset, 13, 2}}) {
    for (int f = 1; f <= row.t; ++f) {
      for (const auto strategy : strategies) {
        int agree = 0;
        int valid = 0;
        int done = 0;
        for (int trial = 0; trial < trials; ++trial) {
          adversary::FairWindowAdversary fair;
          const auto r = core::run_byzantine_window_experiment(
              row.kind, protocols::split_inputs(row.n, 0.5), row.t, f,
              strategy, fair, /*max_windows=*/1200,
              static_cast<std::uint64_t>(trial) * 11 + 3);
          if (r.honest_agreement) ++agree;
          if (r.honest_validity) ++valid;
          if (r.honest_all_decided) ++done;
        }
        table.add_row({protocols::protocol_kind_name(row.kind),
                       Table::fmt_int(row.n), Table::fmt_int(row.t),
                       Table::fmt_int(f),
                       protocols::byzantine_strategy_name(strategy),
                       std::to_string(agree) + "/" + std::to_string(trials),
                       std::to_string(valid) + "/" + std::to_string(trials),
                       std::to_string(done) + "/" + std::to_string(trials)});
      }
    }
  }
  table.print(std::cout, "T4 lying processors");
  std::printf(
      "Reading: honest SAFETY (agree/valid) holds everywhere. Bracha also\n"
      "keeps liveness against equivocators, silencers, and random liars for\n"
      "every f <= t (per-payload RBC quorums); systematic flip-all liars\n"
      "stall its liveness — the gap Bracha's validation layer (out of scope,\n"
      "see DESIGN.md) exists to close. Reset-agreement, built for erasure\n"
      "rather than lies, loses liveness to equivocate AND flip-all: together\n"
      "with T2's reset-storm column (Bracha stalls, reset-agreement sails)\n"
      "this exhibits the paper's §2 incomparability in both directions.\n");
  return 0;
}
