// Example: adversary showdown.
//
// Pit all four message-passing protocols against the full adversary suite
// on the same split-input instance and watch who keeps which guarantee.
// A compact interactive version of experiment T2, written against the
// declarative core::Experiment / core::Runner API: one spec per protocol,
// one Runner shared across its trials, one WorkerScratch reusing the same
// Execution for every run.
//
//   ./build/examples/adversary_showdown [n] [t] [trials]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 13;
  const int t = argc > 2 ? std::atoi(argv[2]) : 2;
  const int trials = argc > 3 ? std::atoi(argv[3]) : 3;
  if (n < 7 || t < 1 || 6 * t >= n) {
    std::fprintf(stderr, "need n >= 7 and 1 <= t < n/6 (got n=%d t=%d)\n", n,
                 t);
    return 1;
  }
  std::printf("adversary showdown: n=%d t=%d, split inputs, %d trials/cell\n\n",
              n, t, trials);

  Table table({"protocol", "adversary", "all decided", "safe",
               "mean windows"});
  const protocols::ProtocolKind kinds[] = {
      protocols::ProtocolKind::Reset, protocols::ProtocolKind::BenOr,
      protocols::ProtocolKind::Bracha, protocols::ProtocolKind::Forgetful};
  core::WorkerScratch scratch;  // one reused Execution for every run
  for (const auto kind : kinds) {
    core::Experiment spec;
    spec.kind = kind;
    spec.inputs = protocols::split_inputs(n, 0.5);
    spec.t = t;
    spec.budget = 4000;
    spec.stop = core::StopCondition::kAllDecided;
    const core::Runner runner(std::move(spec));
    for (int a = 0; a < 4; ++a) {
      int done = 0;
      int safe = 0;
      RunningStats windows;
      std::string label;
      for (int trial = 0; trial < trials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(trial) * 17 + 5;
        std::unique_ptr<sim::WindowAdversary> adv;
        switch (a) {
          case 0:
            adv = std::make_unique<adversary::FairWindowAdversary>();
            break;
          case 1: {
            std::vector<sim::ProcId> s;
            for (int i = 0; i < t; ++i) s.push_back(i);
            adv = std::make_unique<adversary::SilencerWindowAdversary>(s);
            break;
          }
          case 2:
            adv = std::make_unique<adversary::ResetStormAdversary>(t,
                                                                   Rng(seed));
            break;
          default:
            adv = std::make_unique<adversary::SplitKeeperAdversary>();
        }
        label = adv->name();
        const auto r = runner.run_window(*adv, seed, scratch);
        if (r.all_decided) {
          ++done;
          windows.add(static_cast<double>(r.windows_total));
        }
        if (r.agreement && r.validity) ++safe;
      }
      table.add_row({protocols::protocol_kind_name(kind), label,
                     std::to_string(done) + "/" + std::to_string(trials),
                     std::to_string(safe) + "/" + std::to_string(trials),
                     done ? Table::fmt(windows.mean(), 1) : "-"});
    }
  }
  table.print(std::cout, "protocol x adversary");
  std::printf("Only reset-agreement finishes under the reset storm — the\n"
              "capability Theorem 4 buys. Safety holds everywhere: these\n"
              "adversaries schedule and erase, they never forge.\n");
  return 0;
}
