// Example: a guided tour of the Theorem 5 lower-bound machinery.
//
//   1. the constants α, C, E = C·e^{αn} and the thresholds τ, η;
//   2. Lemma 9 (Talagrand) on a concrete product space;
//   3. Lemma 11 empirically: decided-0 and decided-1 reachable
//      configurations are > t apart;
//   4. Lemma 14: the hybrid window that escapes both Z sets;
//   5. the empirical counterpart on the CONCRETE simulator: a
//      core::Experiment / core::Runner sweep measuring how long the
//      split-keeper adversary stalls decisions as n grows.
//
//   ./build/examples/lowerbound_explorer [n] [c_percent]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"

using namespace aa;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const double c = argc > 2 ? std::atoi(argv[2]) / 100.0 : 1.0 / 8.0;
  const int t = std::max(1, static_cast<int>(c * n));

  std::printf("== 1. Theorem 5 constants (n=%d, c=%.3f, t=%d) ==\n", n, c, t);
  const auto tc = core::theorem5_constants(n, c);
  std::printf("  alpha = c^2/9        = %.6f\n", tc.alpha);
  std::printf("  C (absolute const)   = %.3e\n", tc.big_c);
  std::printf("  E = C e^{alpha n}    = %.3f   (log10 E = %.3f)\n",
              tc.e_windows, tc.log10_e);
  std::printf("  tau = e^{-t^2/8n}    = %.4f\n", tc.tau);
  std::printf("  eta = e^{-(t-1)^2/8n}= %.4f\n", tc.eta);
  std::printf("  adversary success probability >= %.3f\n\n", tc.success_lb);
  std::printf("  (the absolute constants are tiny, so E only bites for\n"
              "   large n: with c = 1/6,\n");
  for (int big_n : {1000, 10000, 100000}) {
    const auto big = core::theorem5_constants(big_n, 1.0 / 6.0);
    std::printf("     n = %6d  ->  E = 10^%.1f windows\n", big_n,
                big.log10_e);
  }
  std::printf("   — the exponential wall.)\n\n");

  std::printf("== 2. Lemma 9 (Talagrand) on the uniform %d-cube ==\n", n);
  const prob::ProductSpace cube =
      prob::ProductSpace::iid(prob::FiniteDist::uniform(2), n);
  std::vector<prob::Point> low;
  cube.enumerate([&](const prob::Point& x, double) {
    int w = 0;
    for (int xi : x) w += xi;
    if (w <= 1) low.push_back(x);
  });
  for (int d : {1, 2, 4}) {
    const auto chk = prob::check_exact(cube, low, d);
    std::printf("  A = weight<=1 ball, d=%d: P[A](1-P[B(A,d)]) = %.5f <= "
                "e^{-d^2/4n} = %.5f  %s\n",
                d, chk.lhs, chk.bound, chk.holds ? "ok" : "VIOLATED");
  }

  std::printf("\n== 3. Lemma 11: Z^0_0 vs Z^0_1 separation ==\n");
  Rng rng(7);
  const auto th = protocols::canonical_thresholds(n, t);
  const auto rep =
      core::measure_separation(n, t, th, /*k=*/0, 500, 1, rng);
  std::printf("  sampled reachable configs: |Z0|=%d |Z1|=%d, min Hamming "
              "distance = %d (> t = %d: %s)\n",
              rep.z0_count, rep.z1_count, rep.min_distance, t,
              rep.satisfies_lemma ? "ok" : "VIOLATED");

  std::printf("\n== 4. Lemma 14: the escape hybrid ==\n");
  const prob::ProductSpace pi_n =
      prob::ProductSpace::iid(prob::FiniteDist::bernoulli(0.9), n);
  const prob::ProductSpace pi_0 =
      prob::ProductSpace::iid(prob::FiniteDist::bernoulli(0.1), n);
  std::vector<prob::Point> z0;
  std::vector<prob::Point> z1;
  pi_n.enumerate([&](const prob::Point& x, double) {
    int w = 0;
    for (int xi : x) w += xi;
    if (w <= 1) z0.push_back(x);
    if (w >= n - 1) z1.push_back(x);
  });
  const auto hy = prob::find_hybrid_exact(pi_n, pi_0, z0, z1, 0.2);
  std::printf("  pi_0 avoids Z1, pi_n avoids Z0; interpolating one\n"
              "  coordinate at a time finds j* = %d with\n"
              "  P[Z0] = %.4f, P[Z1] = %.4f -> escape = %.4f (>= 1-2eta = "
              "%.4f: %s)\n",
              hy.j_star, hy.p_z0, hy.p_z1, hy.escape, 1.0 - 2 * hy.eta,
              hy.lemma_satisfied ? "ok" : "VIOLATED");
  std::printf("\nChaining Lemma 14 E times from an input configuration\n"
              "outside Z^E_0 ∪ Z^E_1 keeps the execution undecided for E\n"
              "windows with probability >= 1/2 — Theorem 5.\n");

  std::printf("\n== 5. the wall, empirically (Experiment/Runner sweep) ==\n");
  // The abstract bound above says stalling power grows like e^{alpha n}.
  // Drive the concrete simulator at the same c = t/n ratio and watch the
  // split-keeper's stall grow with n; one Runner per instance, one reused
  // Execution (WorkerScratch) across every trial.
  {
    const int sweep_trials = 5;
    const std::int64_t budget = 2000;
    core::WorkerScratch scratch;
    for (int sweep_n : {8, 13, 19, 25}) {
      const int sweep_t =
          std::min(std::max(1, static_cast<int>(c * sweep_n)),
                   protocols::max_supported_t(sweep_n));
      core::Experiment spec;
      spec.kind = protocols::ProtocolKind::Reset;
      spec.inputs = protocols::split_inputs(sweep_n, 0.5);
      spec.t = sweep_t;
      spec.budget = budget;
      spec.stop = core::StopCondition::kAllDecided;
      const core::Runner runner(std::move(spec));
      RunningStats windows;
      int stalled = 0;
      for (int trial = 0; trial < sweep_trials; ++trial) {
        adversary::SplitKeeperAdversary adv;
        const auto r = runner.run_window(
            adv, static_cast<std::uint64_t>(trial) * 131 + 17, scratch);
        if (r.all_decided) windows.add(static_cast<double>(r.windows_total));
        else ++stalled;
      }
      std::printf("  n=%2d t=%d: mean windows to all-decided = %s%s\n",
                  sweep_n, sweep_t,
                  windows.count() ? Table::fmt(windows.mean(), 1).c_str()
                                  : "-",
                  stalled ? (" (" + std::to_string(stalled) + "/" +
                             std::to_string(sweep_trials) +
                             " still undecided at budget)")
                                .c_str()
                          : "");
    }
    std::printf("  — the same exponential shape the constants predict,\n"
                "    at simulator-affordable n.\n");
  }
  return 0;
}
