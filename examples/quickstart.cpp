// Quickstart: run the paper's §3 reset-tolerant agreement protocol on
// n = 16 processors with a t = 2 reset budget against three adversaries,
// and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/api.hpp"

using namespace aa;

namespace {

void run_one(const char* label, sim::WindowAdversary& adv,
             const std::vector<int>& inputs, int t, std::uint64_t seed) {
  const core::WindowRunResult r = core::run_window_experiment(
      protocols::ProtocolKind::Reset, inputs, t, adv,
      /*max_windows=*/100000, seed, std::nullopt, /*until_all=*/true);
  std::printf("%-14s decided=%s value=%d windows_to_first=%lld resets=%lld "
              "agreement=%s validity=%s\n",
              label, r.decided ? "yes" : "no ", r.decision,
              static_cast<long long>(r.windows_to_first),
              static_cast<long long>(r.total_resets),
              r.agreement ? "ok" : "VIOLATED",
              r.validity ? "ok" : "VIOLATED");
}

}  // namespace

int main() {
  const int n = 16;
  const int t = 2;  // < n/6
  std::printf("reset-agreement, n=%d, t=%d, canonical thresholds ", n, t);
  const auto th = protocols::canonical_thresholds(n, t);
  std::printf("(T1=%d T2=%d T3=%d)\n\n", th.t1, th.t2, th.t3);

  // Unanimous inputs: Theorem 4's fast path — decision in the very first
  // acceptable window, no matter the adversary.
  const auto unanimous = protocols::unanimous_inputs(n, 1);
  // Split inputs: the adversarially hard case.
  const auto split = protocols::split_inputs(n, 0.5);

  std::printf("[unanimous inputs]\n");
  {
    adversary::FairWindowAdversary fair;
    run_one("fair", fair, unanimous, t, 1);
    adversary::ResetStormAdversary storm(t, Rng(7));
    run_one("reset-storm", storm, unanimous, t, 2);
    adversary::SplitKeeperAdversary keeper;
    run_one("split-keeper", keeper, unanimous, t, 3);
  }

  std::printf("\n[split inputs]\n");
  {
    adversary::FairWindowAdversary fair;
    run_one("fair", fair, split, t, 4);
    adversary::ResetStormAdversary storm(t, Rng(8));
    run_one("reset-storm", storm, split, t, 5);
    adversary::SplitKeeperAdversary keeper;
    run_one("split-keeper", keeper, split, t, 6);
  }

  std::printf("\nNote how the split-keeper stretches the split-input run: "
              "that gap grows exponentially with n (Theorem 5; see "
              "bench_f1_exponential_rounds).\n");
  return 0;
}
