// Example: watch a resetting failure happen and heal.
//
// A scripted strongly adaptive adversary resets processors {0, 1} at the
// end of window 1. The timeline shows them losing their state (round = ⊥,
// rejoining), staying silent for a window, adopting the common round from
// the T1 votes they observe, and re-entering the protocol — the paper's
// "handling resets" paragraph in action.
//
//   ./build/examples/reset_recovery
#include <cstdio>

#include "core/api.hpp"

using namespace aa;

namespace {

// Split-keeper delivery ordering (so convergence takes a while and the
// rejoin is visible mid-run); resets {0,1} exactly once, in window 1.
class ScriptedResetAdversary final : public sim::WindowAdversary {
 public:
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override {
    keeper_.plan_window_into(exec, batch, plan);  // resets + refills the plan
    if (exec.window() == 1) plan.resets = {0, 1};
    return sim::PlanDecision::kUpdated;
  }
  [[nodiscard]] std::string name() const override { return "scripted-reset"; }

 private:
  adversary::SplitKeeperAdversary keeper_;
};

void print_state(const sim::Execution& e, int focus_a, int focus_b) {
  auto cell = [&](int p) {
    const auto& proc = e.process(p);
    if (proc.round() == sim::kBot) return std::string("RESET(rejoining)");
    std::string s = "r=" + std::to_string(proc.round());
    s += " x=" + std::to_string(proc.estimate());
    s += proc.output() == sim::kBot
             ? std::string(" out=_")
             : " out=" + std::to_string(proc.output());
    return s;
  };
  std::printf("  window %lld | proc%d: %-22s | proc%d: %-22s | decided %d/%d, "
              "resets so far %lld\n",
              static_cast<long long>(e.window()), focus_a,
              cell(focus_a).c_str(), focus_b, cell(focus_b).c_str(),
              e.decided_count(), e.n(),
              static_cast<long long>(e.total_resets()));
}

}  // namespace

int main() {
  const int n = 12;
  const int t = 2;
  std::printf("reset recovery timeline (n=%d, t=%d, split inputs, resets of "
              "procs 0 & 1 scripted at the end of window 1)\n\n",
              n, t);

  sim::Execution e(protocols::make_processes(protocols::ProtocolKind::Reset, t,
                                             protocols::split_inputs(n, 0.5)),
                   /*seed=*/20260612);
  ScriptedResetAdversary adv;
  print_state(e, 0, 1);
  for (int w = 0; w < 40 && !e.all_live_decided(); ++w) {
    sim::run_acceptable_window(e, adv, t);
    print_state(e, 0, 1);
  }
  std::printf("\nfinal: agreement %s, validity-relevant outputs:",
              e.outputs_agree() ? "ok" : "VIOLATED");
  for (int p = 0; p < n; ++p) std::printf(" %d", e.output(p));
  std::printf("\nNote the RESET(rejoining) entries right after window 1 and "
              "the adopted round afterwards — reset detection plus rejoin, "
              "exactly the paper's recovery path.\n");
  return 0;
}
