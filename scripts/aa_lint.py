#!/usr/bin/env python3
"""aa_lint: repo-invariant linter for the acceptable-agreement engine.

The engine's headline claim — reports bit-identical at any thread count and
across resume/chaos/replay — rests on invariants no compiler checks:

  nondeterminism       No wall-clock / ambient-randomness source
                       (std::random_device, rand, srand, time(),
                       *_clock::now) outside the allowlist (bench/ timing
                       loops, the Watchdog deadline in util/thread_pool).
                       Every random bit must come from a seeded util/rng
                       stream; every timestamp must stay out of reports.
  unordered-container  No unordered_map/unordered_set in report-affecting
                       directories (src/core, src/sim, src/adversary):
                       their iteration order depends on hashing and
                       allocation history, which leaks straight into
                       reports. Ordered containers or the arena's intrusive
                       lists only.
  banned-api           Removed/superseded APIs must not reappear:
                       plan_window( was replaced by plan_window_into(
                       (scratch-reusing planning, PR 3).
  envelope-member      No raw Envelope* stored in a data member: envelope
                       views are invalidated by publication and window
                       sweeps (the buffer.hpp contract), so a held pointer
                       is a use-after-recycle waiting to happen. Members in
                       this codebase end in '_', which is what the check
                       keys on.
  file-write           Every file-writing call site (std::ofstream,
                       std::fstream, fopen) must route through the atomic
                       writers (core::write_file_atomic / bench_json's
                       write) so a SIGKILL never leaves a torn artifact.
                       std::ifstream (read-only) is always fine.
  idmap-erase          No direct MsgIdMap::erase outside sim/buffer.cpp.
                       Since the window-mode retirement PR the straggler
                       map holds only ids below direct_base_; every retire
                       path must erase CONDITIONALLY (id < direct_base_) or
                       the map/direct-tier partition drifts and the audit
                       throws. Only the buffer's own retire helpers know
                       the watermark, so the raw erase is theirs alone.

Waivers: a finding is suppressed when its line (or the line above) carries
    // aa-lint: <rule-waiver>(<reason>)
with the rule's waiver token — ordered-ok, clock-ok, banned-ok,
envelope-ok, write-ok, erase-ok — and a non-empty reason. A waiver without
a reason is itself an error. Waive sparingly; the reason is reviewed, not
parsed.

"AST-aware where cheap": before matching, each file is lexed enough to
drop comments and string/char literals (including raw strings), so a
mention of rand() in prose or a log message never trips a rule. Everything
else is line-based on the lexed text.

Usage:
    aa_lint.py [--root DIR]          lint the repo (exit 1 on findings)
    aa_lint.py --self-test [--root]  run the tests/lint fixture suite:
                                     each trip_<rule>.* fixture must trip
                                     EXACTLY its rule; clean_* none.

stdlib-only by design — runs anywhere python3 does, no pip.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

# --------------------------------------------------------------------- rules


@dataclass(frozen=True)
class Rule:
    name: str           # rule id, also the fixture suffix (trip_<name>.*)
    waiver: str         # token accepted in an aa-lint waiver comment
    pattern: re.Pattern # matched against lexed (comment/string-free) lines
    dirs: tuple         # repo-relative dir prefixes the rule applies to
    allow: tuple        # path substrings exempt without a waiver
    why: str            # one-line rationale shown with each finding


RULES = [
    Rule(
        name="nondeterminism",
        waiver="clock-ok",
        pattern=re.compile(
            r"std\s*::\s*random_device"
            r"|\bsrand\s*\("
            r"|(?<![_\w])rand\s*\("
            r"|(?<![_\w:])time\s*\("
            r"|_clock\s*::\s*now"
        ),
        dirs=("src/", "tools/", "examples/"),
        allow=("src/util/thread_pool",),  # the Watchdog deadline
        why="ambient randomness/clock — draw from util/rng or keep it out "
            "of reports",
    ),
    Rule(
        name="unordered-container",
        waiver="ordered-ok",
        pattern=re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        dirs=("src/core/", "src/sim/", "src/adversary/", "src/lens/"),
        allow=(),
        why="hash-order iteration can leak into reports — use an ordered "
            "container or the arena lists",
    ),
    Rule(
        name="banned-api",
        waiver="banned-ok",
        pattern=re.compile(r"\bplan_window\s*\("),
        dirs=("src/", "tools/", "examples/", "bench/"),
        allow=(),
        why="plan_window( was removed in PR 3 — use plan_window_into(",
    ),
    Rule(
        name="envelope-member",
        waiver="envelope-ok",
        # An Envelope pointer (possibly inside a container template) in a
        # declaration whose declarator is a member name (trailing '_').
        pattern=re.compile(
            r"\bEnvelope\s*\*[^;(]*\b\w+_\s*(?:=[^;]*)?;"
            r"|\bEnvelope\s*\*\s*>\s*\w+_\s*(?:=[^;]*)?;"
        ),
        dirs=("src/",),
        allow=(),
        why="envelope views die at the next publication/window sweep "
            "(buffer.hpp) — store MsgId instead",
    ),
    Rule(
        name="file-write",
        waiver="write-ok",
        pattern=re.compile(
            r"std\s*::\s*ofstream"
            r"|\bofstream\s+\w"
            r"|std\s*::\s*fstream\b"
            r"|\bfopen\s*\("
        ),
        dirs=("src/", "tools/", "bench/", "examples/"),
        allow=(),
        why="file writes must go through write_file_atomic / "
            "bench_json::write (crash-safe temp+rename)",
    ),
    Rule(
        name="idmap-erase",
        waiver="erase-ok",
        # The straggler map holds only ids below direct_base_; a raw erase
        # anywhere else cannot know the watermark and desyncs the two-tier
        # id index. buffer.cpp's retire helpers are the sole owner.
        pattern=re.compile(r"\bid_map_\s*\.\s*erase\s*\("),
        dirs=("src/", "tools/", "bench/", "examples/"),
        allow=("src/sim/buffer.cpp",),
        why="MsgIdMap::erase is buffer-internal — ids >= direct_base_ are "
            "not in the map; route retirement through the buffer's "
            "mark_delivered/mark_dropped/drop_pending_in_window",
    ),
]

WAIVER_RE = re.compile(r"aa-lint:\s*([\w-]+)\s*\(([^)]*)\)")

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h", ".cxx"}

# Directories scanned in a repo run (tests/ is deliberately out: tests may
# exercise whatever they like, and the lint fixtures live there).
SCAN_DIRS = ("src", "tools", "bench", "examples")


# --------------------------------------------------------- cheap C++ lexing


def lex_lines(text):
    """The file's lines with comments and string/char literals blanked.

    A minimal C++ lexer — tracks //, /* */, "...", '...', and raw string
    literals R"delim(...)delim" — so rules never fire on prose or log
    messages. Blanked characters become spaces, which keeps every finding's
    line/column aligned with the original file.

    Returns (code_lines, comment_lines): the lexed code per line, and the
    comment text per line (waiver comments are read from the latter).
    """
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_tag = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s\\"]{0,16})\(', text[i:])
                if m:
                    raw_tag = m.group(1)
                    state = "raw"
                    cur_code.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                cur_code.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append(" ")
                i += 1
                continue
            cur_code.append(c)
            i += 1
            continue
        if state == "line_comment":
            cur_comment.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            cur_comment.append(c)
            i += 1
            continue
        if state == "string":
            if c == "\\":
                i += 2
                cur_code.append("  ")
                continue
            if c == '"':
                state = "code"
            cur_code.append(" ")
            i += 1
            continue
        if state == "char":
            if c == "\\":
                i += 2
                cur_code.append("  ")
                continue
            if c == "'":
                state = "code"
            cur_code.append(" ")
            i += 1
            continue
        if state == "raw":
            end = ')' + raw_tag + '"'
            if text.startswith(end, i):
                state = "code"
                cur_code.append(" " * len(end))
                i += len(end)
                continue
            cur_code.append(" ")
            i += 1
            continue
    if cur_code or cur_comment or (n and text[-1] != "\n"):
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
    return code, comments


# ------------------------------------------------------------------ linting


@dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    snippet: str
    why: str


def find_waivers(comment_lines):
    """{line_index: {token: reason}} for every aa-lint waiver comment."""
    waivers = {}
    for idx, comment in enumerate(comment_lines):
        for m in WAIVER_RE.finditer(comment):
            waivers.setdefault(idx, {})[m.group(1)] = m.group(2).strip()
    return waivers


def lint_text(rel_path, text, rules, errors):
    """Findings for one file. Waiver problems are appended to `errors`."""
    code_lines, comment_lines = lex_lines(text)
    waivers = find_waivers(comment_lines)
    findings = []
    for rule in rules:
        for idx, line in enumerate(code_lines):
            if not rule.pattern.search(line):
                continue
            # #include <unordered_set> is not the hazard (iterating is),
            # and <ctime>/<fstream> likewise — directives never trip rules.
            if line.lstrip().startswith("#"):
                continue
            # A waiver counts on the finding's line or the line above
            # (standalone waiver comment preceding the statement).
            waiver = None
            for widx in (idx, idx - 1):
                if widx in waivers and rule.waiver in waivers[widx]:
                    waiver = waivers[widx][rule.waiver]
                    break
            if waiver is not None:
                if not waiver:
                    errors.append(
                        f"{rel_path}:{idx + 1}: {rule.waiver} waiver has an "
                        f"empty reason — say why or remove it")
                continue
            findings.append(Finding(
                path=rel_path, line=idx + 1, rule=rule.name,
                snippet=text.splitlines()[idx].strip()[:120],
                why=rule.why))
    return findings


def rules_for(rel_path):
    active = []
    for rule in RULES:
        if not rel_path.startswith(rule.dirs):
            continue
        if any(sub in rel_path for sub in rule.allow):
            continue
        active.append(rule)
    return active


def iter_source_files(root):
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def lint_repo(root):
    findings = []
    errors = []
    for path in iter_source_files(root):
        rel = path.relative_to(root).as_posix()
        active = rules_for(rel)
        if not active:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        findings.extend(lint_text(rel, text, active, errors))
    return findings, errors


# ---------------------------------------------------------------- self-test


def self_test(root):
    """Every tests/lint fixture must behave exactly as its name promises.

    trip_<rule>.<ext>   — at least one finding, ALL of rule <rule>, and no
                          finding from any other rule (a fixture that trips
                          two rules is a bad fixture). A '__<variant>'
                          suffix after the rule name adds extra fixtures
                          for the same rule (trip_unordered_container__lens
                          still tests unordered-container).
    clean_*.<ext>       — zero findings under EVERY rule.
    """
    fixture_dir = root / "tests" / "lint"
    fixtures = sorted(p for p in fixture_dir.iterdir()
                      if p.suffix in SOURCE_SUFFIXES)
    if not fixtures:
        print(f"aa_lint --self-test: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 1
    known = {rule.name for rule in RULES}
    failures = []
    covered = set()
    for path in fixtures:
        errors = []
        # Fixtures are linted under ALL rules regardless of directory — the
        # fixture file stands in for a file in the rule's scanned dirs.
        findings = lint_text(path.name, path.read_text(encoding="utf-8"),
                             RULES, errors)
        tripped = {f.rule for f in findings}
        if path.stem.startswith("trip_"):
            expected = (
                path.stem[len("trip_"):].split("__")[0].replace("_", "-"))
            if expected not in known:
                failures.append(f"{path.name}: names unknown rule "
                                f"'{expected}'")
            elif tripped != {expected}:
                failures.append(
                    f"{path.name}: expected exactly {{{expected}}}, "
                    f"tripped {sorted(tripped) or '{}'}")
            else:
                covered.add(expected)
            if errors:
                failures.append(f"{path.name}: unexpected waiver errors: "
                                f"{errors}")
        elif path.stem.startswith("clean"):
            if tripped or errors:
                failures.append(
                    f"{path.name}: expected no findings, got "
                    f"{sorted(tripped)} + {len(errors)} waiver error(s)")
        else:
            failures.append(f"{path.name}: fixture name must start with "
                            f"trip_<rule> or clean")
    missing = known - covered
    if missing:
        failures.append(f"rules with no trip_ fixture: {sorted(missing)}")
    for f in failures:
        print(f"aa_lint --self-test FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"aa_lint --self-test: {len(fixtures)} fixtures ok, "
              f"{len(known)} rules covered")
    return 1 if failures else 0


# ------------------------------------------------------------------- driver


def main():
    ap = argparse.ArgumentParser(
        description="repo-invariant linter (see module docstring)")
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    help="repository root (default: the checkout this "
                         "script lives in)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the tests/lint fixture suite instead of "
                         "linting the repo")
    args = ap.parse_args()
    root = args.root.resolve()

    if args.self_test:
        return self_test(root)

    findings, errors = lint_repo(root)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.snippet}")
        print(f"    {f.why}; waive with "
              f"// aa-lint: {next(r.waiver for r in RULES if r.name == f.rule)}(<reason>)")
    for e in errors:
        print(e)
    total = len(findings) + len(errors)
    if total:
        print(f"aa_lint: {len(findings)} finding(s), {len(errors)} waiver "
              f"error(s)", file=sys.stderr)
        return 1
    print("aa_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
