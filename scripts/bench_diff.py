#!/usr/bin/env python3
"""Compare BENCH_*.json perf metrics against a previous run's artifacts.

Usage:
    bench_diff.py --current DIR [--previous DIR] [--tolerance 0.15]

For every BENCH_<name>.json present in BOTH directories, compares the
tracked metrics (`parallel_speedup`, and `lens_off_windows_per_sec` — the
"disabled lens is free" throughput gate from bench_l1_latency_lens) and
exits 1 if any metric regressed by more than --tolerance (relative). A missing previous
directory / file / metric is reported and tolerated — the first run on a
branch, or a bench that predates the metric, must not fail CI.

The REVERSE direction is never silent: a tracked metric (or a whole
artifact) present previously but absent from the current run means a bench
rename or removal just orphaned a gate, and is reported as a loud WARNING
listing the orphaned keys — otherwise a rename would quietly drop the
regression gate along with the metric.
"""

import argparse
import json
import pathlib
import sys

TRACKED_METRICS = ["parallel_speedup", "lens_off_windows_per_sec"]


def load_metrics(path: pathlib.Path):
    """Tracked metrics from one artifact, or {} for anything unusable.

    Truncated, unparsable, or structurally wrong artifacts (a SIGKILLed
    bench, a partial upload) must warn and be skipped, never crash the
    diff: losing one comparison beats failing the whole CI job on a file
    this script didn't write.
    """
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:  # ValueError covers JSONDecodeError
        print(f"  ! skipping unreadable {path}: {exc}")
        return {}
    if not isinstance(doc, dict):
        print(f"  ! skipping {path}: top-level JSON is not an object")
        return {}
    return {m: doc[m] for m in TRACKED_METRICS if isinstance(doc.get(m), (int, float))}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, type=pathlib.Path,
                    help="directory holding this run's BENCH_*.json")
    ap.add_argument("--previous", type=pathlib.Path, default=None,
                    help="directory holding the previous run's BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed relative regression (default 0.15)")
    args = ap.parse_args()

    current_files = sorted(args.current.glob("BENCH_*.json"))
    if not current_files:
        print(f"bench_diff: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 1

    if args.previous is None or not args.previous.is_dir():
        print("bench_diff: no previous artifact directory — nothing to compare, passing")
        return 0

    regressions = []
    orphan_warnings = []
    # Artifacts the previous run had but this run did not produce at all:
    # every tracked metric they carried is now ungated.
    current_names = {p.name for p in current_files}
    for prev_path in sorted(args.previous.glob("BENCH_*.json")):
        if prev_path.name in current_names:
            continue
        gone = sorted(load_metrics(prev_path))
        if gone:
            orphan_warnings.append((prev_path.name, gone, "artifact removed"))
    for cur_path in current_files:
        prev_path = args.previous / cur_path.name
        cur = load_metrics(cur_path)
        if not prev_path.is_file():
            if not cur:
                print(f"{cur_path.name}: no tracked metrics, skipping")
            else:
                print(f"{cur_path.name}: no previous artifact, skipping")
            continue
        prev = load_metrics(prev_path)
        # Tracked metrics the previous artifact carried that this run's
        # artifact lost — a bench rename in disguise.
        gone = sorted(set(prev) - set(cur))
        if gone:
            orphan_warnings.append((cur_path.name, gone, "metric removed"))
        if not cur:
            print(f"{cur_path.name}: no tracked metrics, skipping")
            continue
        for metric, cur_val in sorted(cur.items()):
            prev_val = prev.get(metric)
            if prev_val is None:
                print(f"{cur_path.name}: {metric} absent previously, skipping")
                continue
            if prev_val <= 0:
                print(f"{cur_path.name}: previous {metric}={prev_val} unusable, skipping")
                continue
            ratio = cur_val / prev_val
            verdict = "ok"
            if ratio < 1.0 - args.tolerance:
                verdict = "REGRESSION"
                regressions.append((cur_path.name, metric, prev_val, cur_val))
            print(f"{cur_path.name}: {metric} {prev_val:.4f} -> {cur_val:.4f} "
                  f"({(ratio - 1.0) * 100:+.1f}%) {verdict}")

    if orphan_warnings:
        print(f"\nbench_diff: WARNING: {len(orphan_warnings)} artifact(s) lost "
              f"previously tracked metrics — a bench rename/removal has "
              f"orphaned these gates:", file=sys.stderr)
        for name, keys, why in orphan_warnings:
            print(f"  {name}: {why}, orphaned keys: {', '.join(keys)}",
                  file=sys.stderr)
        print("  (rename the artifact/metric in BOTH runs, or drop it from "
              "TRACKED_METRICS deliberately)", file=sys.stderr)

    if regressions:
        print(f"\nbench_diff: {len(regressions)} metric(s) regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for name, metric, prev_val, cur_val in regressions:
            print(f"  {name}: {metric} {prev_val:.4f} -> {cur_val:.4f}",
                  file=sys.stderr)
        return 1
    print("bench_diff: all tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
