#include "adversary/async_adversaries.hpp"

#include <algorithm>

#include "protocols/reset_agreement.hpp"
#include "util/check.hpp"

namespace aa::adversary {

namespace detail {

void DeliverableSet::sync(const sim::Execution& exec) {
  const sim::MessageBuffer& buf = exec.buffer();
  const std::size_t retired = buf.delivered_count() + buf.dropped_count();
  // A wrapper (e.g. StarvingAsyncScheduler) may substitute a DIFFERENT
  // delivery for our pick: the retire count still advances by one, so the
  // count alone cannot distinguish "my pick applied" from "something else
  // was retired instead". Check the pick itself.
  const bool pick_applied =
      last_taken_ != sim::kNoMsg && !buf.is_pending(last_taken_);
  const std::size_t expected = retired_seen_ + (pick_applied ? 1u : 0u);
  if (retired != expected) {
    // Out-of-band driver retired messages behind our back: rebuild from a
    // full scan (same list, the slow way).
    ids_.clear();
    for (const sim::Envelope& env : buf.all_pending()) {
      if (!exec.crashed(env.receiver)) ids_.push_back(env.id);
    }
    ingested_upto_ = static_cast<sim::MsgId>(buf.total_sent());
    last_taken_ = sim::kNoMsg;
    crash_count_seen_ = exec.crashed_count();
    retired_seen_ = retired;
    return;
  }
  // 1. Retire the delivery we issued last call (run_async applied it).
  if (pick_applied) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), last_taken_);
    if (it != ids_.end() && *it == last_taken_) ids_.erase(it);
  }
  last_taken_ = sim::kNoMsg;
  // 2. A crash since the last sync makes some queued entries
  //    undeliverable; purge them (rare — at most t times per run).
  if (exec.crashed_count() != crash_count_seen_) {
    std::erase_if(ids_, [&exec](sim::MsgId id) {
      return exec.crashed(exec.buffer().get(id).receiver);
    });
    crash_count_seen_ = exec.crashed_count();
  }
  // 3. Ingest everything published since the last sync: ids in
  //    [ingested_upto_, total_sent) are exactly the batches the receiving
  //    steps' responses published. Appending keeps the list ascending —
  //    bit-identical, entry for entry, to a full all_pending rescan.
  const auto sent = static_cast<sim::MsgId>(buf.total_sent());
  for (sim::MsgId id = ingested_upto_; id < sent; ++id) {
    if (!exec.crashed(buf.get(id).receiver)) ids_.push_back(id);
  }
  ingested_upto_ = sent;
  retired_seen_ = retired;
}

}  // namespace detail

void RandomAsyncScheduler::prepare(int /*n*/, int /*t*/) {
  deliverable_.reset();
}

sim::AsyncAction RandomAsyncScheduler::next(const sim::Execution& exec) {
  deliverable_.sync(exec);
  if (deliverable_.empty()) return sim::StopAction{};
  return sim::DeliverAction{
      deliverable_.take(rng_.uniform_index(deliverable_.size()))};
}

void FixedCrashScheduler::prepare(int /*n*/, int t) {
  AA_REQUIRE(static_cast<int>(to_crash_.size()) <= t,
             "fixed-crash scheduler: crash list exceeds the budget t");
  crashed_so_far_ = 0;
  deliverable_.reset();
}

sim::AsyncAction FixedCrashScheduler::next(const sim::Execution& exec) {
  if (crashed_so_far_ < to_crash_.size()) {
    return sim::CrashAction{to_crash_[crashed_so_far_++]};
  }
  deliverable_.sync(exec);
  if (deliverable_.empty()) return sim::StopAction{};
  return sim::DeliverAction{
      deliverable_.take(rng_.uniform_index(deliverable_.size()))};
}

void AsyncSplitKeeper::prepare(int /*n*/, int /*t*/) { delivered_.clear(); }

sim::AsyncAction AsyncSplitKeeper::next(const sim::Execution& exec) {
  const int n = exec.n();
  // For each receiver, partition its pending CURRENT-round votes by value
  // and pick the value that keeps the receiver's consumed prefix balanced:
  // deliver the value it has seen FEWER of (tie → the value with more
  // pending, so the scarce value is stretched across the prefix). This is
  // exactly the window-model balance_votes ordering, streamed.
  //
  // Among receivers, serve the one with the most pending current-round
  // votes (keeps the system in loose lockstep).
  fallback_.clear();
  sim::MsgId best = sim::kNoMsg;
  std::size_t best_pending = 0;

  for (sim::ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    const int r = exec.process(i).round();
    if (r == sim::kBot) continue;
    byval_[0].clear();
    byval_[1].clear();
    for (const sim::Envelope& env : exec.buffer().pending_to(i)) {
      if (env.payload.kind != protocols::kVoteKind ||
          env.payload.round != r ||
          (env.payload.value != 0 && env.payload.value != 1)) {
        // Stale/future/non-vote: deliverable any time without affecting the
        // current round's balance (eventual-delivery obligation).
        fallback_.push_back(env.id);
        continue;
      }
      byval_[static_cast<std::size_t>(env.payload.value)].push_back(env.id);
    }
    const std::size_t pending_here = byval_[0].size() + byval_[1].size();
    if (pending_here == 0 || pending_here <= best_pending) continue;
    const auto& seen = delivered_[{i, r}];
    std::size_t pick;
    if (byval_[0].empty()) pick = 1;
    else if (byval_[1].empty()) pick = 0;
    else if (seen[0] != seen[1]) pick = seen[0] < seen[1] ? 0 : 1;
    else pick = byval_[0].size() >= byval_[1].size() ? 0 : 1;
    best_pending = pending_here;
    best = byval_[pick].front();
  }
  if (best != sim::kNoMsg) {
    const sim::Envelope& env = exec.buffer().get(best);
    ++delivered_[{env.receiver, env.payload.round}]
                [static_cast<std::size_t>(env.payload.value)];
    return sim::DeliverAction{best};
  }
  // No current-round votes anywhere: drain the obligations in send order.
  if (!fallback_.empty()) return sim::DeliverAction{fallback_.front()};
  for (const sim::Envelope& env : exec.buffer().all_pending()) {
    if (!exec.crashed(env.receiver)) return sim::DeliverAction{env.id};
  }
  return sim::StopAction{};
}

}  // namespace aa::adversary
