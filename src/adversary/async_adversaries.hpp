// Asynchronous (fine-grained) adversaries for the §5 crash-failure model.
//
//   RandomAsyncScheduler   — uniformly random pending delivery; no crashes.
//                            Fair with probability one (every message is
//                            eventually delivered), so measure-one
//                            termination forces a.s. decision under it.
//   FixedCrashScheduler    — crashes a fixed set up front, then schedules
//                            uniformly among messages to live processors.
//   AsyncSplitKeeper       — the Theorem 17 adversary for forgetful, fully
//                            communicative protocols: per receiver, delivers
//                            current-round votes in a value-balanced order,
//                            keeping every processor's n − t consumed votes
//                            split below the adoption threshold and forcing
//                            coin flips round after round. Crash-free (its
//                            power is pure scheduling), hence trivially
//                            within any crash budget.
//
// The two random schedulers keep their deliverable set INCREMENTALLY (the
// async half of the bulk-publication redesign): instead of re-walking every
// pending message per action, they consume each receiving step's published
// batch through the buffer's monotone id watermark (ids in
// [ingested_upto, total_sent) are exactly the newly published runs) and
// retire their own last delivery — producing bit-for-bit the same
// deliverable list, in the same ascending-id order, as the full rescan.
// AsyncSplitKeeper's policy is stateful per (receiver, round); it scans
// the allocation-free pending ranges as before.
#pragma once

#include <array>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/async.hpp"
#include "util/rng.hpp"

namespace aa::adversary {

namespace detail {

/// Incrementally maintained "pending messages addressed to live
/// processors" list, ascending id — shared by the two random schedulers.
class DeliverableSet {
 public:
  /// Forget everything (new run / new execution).
  void reset() {
    ids_.clear();
    ingested_upto_ = 0;
    last_taken_ = sim::kNoMsg;
    crash_count_seen_ = 0;
    retired_seen_ = 0;
  }

  /// Bring the list up to date with `exec`: drop the delivery this
  /// scheduler issued last call, purge crashed receivers when a crash
  /// happened since, and ingest every id published since the last call.
  /// If the buffer retired messages this scheduler did not deliver (an
  /// out-of-band driver), falls back to a full rescan — the result is the
  /// same list either way, the incremental path just never walks old
  /// pending state.
  void sync(const sim::Execution& exec);

  /// The scheduler's pick; records it so the next sync retires it.
  [[nodiscard]] sim::MsgId take(std::size_t index) {
    last_taken_ = ids_[index];
    return last_taken_;
  }

  [[nodiscard]] const std::vector<sim::MsgId>& ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

 private:
  std::vector<sim::MsgId> ids_;
  sim::MsgId ingested_upto_ = 0;
  sim::MsgId last_taken_ = sim::kNoMsg;
  int crash_count_seen_ = 0;
  std::size_t retired_seen_ = 0;  ///< buffer delivered+dropped last sync
};

}  // namespace detail

class RandomAsyncScheduler final : public sim::AsyncAdversary {
 public:
  explicit RandomAsyncScheduler(Rng rng) : rng_(rng) {}
  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override { return "random-async"; }

 private:
  Rng rng_;
  detail::DeliverableSet deliverable_;
};

class FixedCrashScheduler final : public sim::AsyncAdversary {
 public:
  /// Crashes every processor in `to_crash` (≤ t enforced by the driver)
  /// before any delivery, then behaves like RandomAsyncScheduler.
  FixedCrashScheduler(std::vector<sim::ProcId> to_crash, Rng rng)
      : to_crash_(std::move(to_crash)), rng_(rng) {}
  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override { return "fixed-crash"; }

 private:
  std::vector<sim::ProcId> to_crash_;
  std::size_t crashed_so_far_ = 0;
  Rng rng_;
  detail::DeliverableSet deliverable_;
};

/// Theorem 17's scheduling adversary (see class comment above).
/// Stateful: tracks how many votes of each value it has delivered to each
/// (receiver, round) so it can alternate strictly — the same prefix-balance
/// the window-model SplitKeeperAdversary enforces. A delivery it returns is
/// assumed applied (run_async guarantees this).
class AsyncSplitKeeper final : public sim::AsyncAdversary {
 public:
  AsyncSplitKeeper() = default;
  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override {
    return "async-split-keeper";
  }

 private:
  /// delivered[(receiver, round)] = {count of 0-votes, count of 1-votes}.
  std::map<std::pair<sim::ProcId, int>, std::array<int, 2>> delivered_;
  std::array<std::vector<sim::MsgId>, 2> byval_;  ///< reusable per receiver
  std::vector<sim::MsgId> fallback_;              ///< reusable per call
};

}  // namespace aa::adversary
