// Asynchronous (fine-grained) adversaries for the §5 crash-failure model.
//
//   RandomAsyncScheduler   — uniformly random pending delivery; no crashes.
//                            Fair with probability one (every message is
//                            eventually delivered), so measure-one
//                            termination forces a.s. decision under it.
//   FixedCrashScheduler    — crashes a fixed set up front, then schedules
//                            uniformly among messages to live processors.
//   AsyncSplitKeeper       — the Theorem 17 adversary for forgetful, fully
//                            communicative protocols: per receiver, delivers
//                            current-round votes in a value-balanced order,
//                            keeping every processor's n − t consumed votes
//                            split below the adoption threshold and forcing
//                            coin flips round after round. Crash-free (its
//                            power is pure scheduling), hence trivially
//                            within any crash budget.
//
// All three scan the buffer through its allocation-free pending ranges and
// reuse member scratch across calls.
#pragma once

#include <array>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/async.hpp"
#include "util/rng.hpp"

namespace aa::adversary {

class RandomAsyncScheduler final : public sim::AsyncAdversary {
 public:
  explicit RandomAsyncScheduler(Rng rng) : rng_(rng) {}
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override { return "random-async"; }

 private:
  Rng rng_;
  std::vector<sim::MsgId> deliverable_;  ///< reusable scan buffer
};

class FixedCrashScheduler final : public sim::AsyncAdversary {
 public:
  /// Crashes every processor in `to_crash` (≤ t enforced by the driver)
  /// before any delivery, then behaves like RandomAsyncScheduler.
  FixedCrashScheduler(std::vector<sim::ProcId> to_crash, Rng rng)
      : to_crash_(std::move(to_crash)), rng_(rng) {}
  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override { return "fixed-crash"; }

 private:
  std::vector<sim::ProcId> to_crash_;
  std::size_t crashed_so_far_ = 0;
  Rng rng_;
  std::vector<sim::MsgId> deliverable_;  ///< reusable scan buffer
};

/// Theorem 17's scheduling adversary (see class comment above).
/// Stateful: tracks how many votes of each value it has delivered to each
/// (receiver, round) so it can alternate strictly — the same prefix-balance
/// the window-model SplitKeeperAdversary enforces. A delivery it returns is
/// assumed applied (run_async guarantees this).
class AsyncSplitKeeper final : public sim::AsyncAdversary {
 public:
  AsyncSplitKeeper() = default;
  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override {
    return "async-split-keeper";
  }

 private:
  /// delivered[(receiver, round)] = {count of 0-votes, count of 1-votes}.
  std::map<std::pair<sim::ProcId, int>, std::array<int, 2>> delivered_;
  std::array<std::vector<sim::MsgId>, 2> byval_;  ///< reusable per receiver
  std::vector<sim::MsgId> fallback_;              ///< reusable per call
};

}  // namespace aa::adversary
