#include "adversary/censor.hpp"

#include <algorithm>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace aa::adversary {

// ---- TargetedCensorAdversary -----------------------------------------------

TargetedCensorAdversary::TargetedCensorAdversary(
    std::unique_ptr<sim::WindowAdversary> inner, sim::ProcId target)
    : inner_(std::move(inner)), target_(target) {
  AA_REQUIRE(inner_ != nullptr,
             "TargetedCensorAdversary: null inner adversary");
  AA_REQUIRE(target_ >= 0, "TargetedCensorAdversary: negative target");
}

void TargetedCensorAdversary::prepare(int n, int t) {
  AA_REQUIRE(target_ < n, "TargetedCensorAdversary: target out of range");
  inner_->prepare(n, t);
  n_ = n;
  t_ = t;
  inner_plan_.reset(n);
}

sim::PlanDecision TargetedCensorAdversary::plan_window_into(
    const sim::Execution& exec, const sim::WindowBatch& batch,
    sim::WindowPlan& plan) {
  const int n = n_;

  // The inner adversary plans into OUR stable plan object so its
  // kReusePrevious cache (keyed on the plan pointer) stays coherent; the
  // censored copy below never feeds back into what it sees next window.
  inner_->plan_window_into(exec, batch, inner_plan_);
  plan.reset(n);
  for (int i = 0; i < n; ++i) {
    auto& row = plan.delivery_order[static_cast<std::size_t>(i)];
    row = inner_plan_.delivery_order[static_cast<std::size_t>(i)];
    // Maximal legal censorship: erase the target wherever Definition 1
    // leaves slack. Rows already at the |S_i| ≥ n − t floor must keep it —
    // that residual delivery is the model's own guarantee.
    if (static_cast<int>(row.size()) <= n - t_) continue;
    const auto it = std::find(row.begin(), row.end(), target_);
    if (it != row.end()) row.erase(it);
  }
  plan.resets = inner_plan_.resets;

  // Always kUpdated: the driver re-validates every censored plan, so a
  // contract violation would fault the run instead of skewing a report.
  return sim::PlanDecision::kUpdated;
}

// ---- StarvingAsyncScheduler ------------------------------------------------

StarvingAsyncScheduler::StarvingAsyncScheduler(
    std::unique_ptr<sim::AsyncAdversary> inner, sim::ProcId target,
    int fairness_bound)
    : inner_(std::move(inner)), target_(target), bound_(fairness_bound) {
  AA_REQUIRE(inner_ != nullptr, "StarvingAsyncScheduler: null inner scheduler");
  AA_REQUIRE(target_ >= 0, "StarvingAsyncScheduler: negative target");
  AA_REQUIRE(bound_ >= 0, "StarvingAsyncScheduler: negative fairness bound");
}

void StarvingAsyncScheduler::prepare(int n, int t) {
  AA_REQUIRE(target_ < n, "StarvingAsyncScheduler: target out of range");
  inner_->prepare(n, t);
  streak_ = 0;
}

sim::AsyncAction StarvingAsyncScheduler::next(const sim::Execution& exec) {
  sim::AsyncAction act = inner_->next(exec);
  const auto* del = std::get_if<sim::DeliverAction>(&act);
  if (del == nullptr) return act;  // crash / stop: pass through
  if (exec.buffer().get(del->id).sender != target_) {
    streak_ = 0;
    return act;
  }
  if (streak_ >= bound_) {
    // Fairness bound reached: the target delivery goes through, which also
    // resets the starvation streak.
    streak_ = 0;
    return act;
  }
  // Substitute the oldest pending non-target delivery to a live receiver.
  // The inner scheduler's pick stays pending and will be re-offered; its
  // incremental deliverable cache detects the out-of-band delivery and
  // rescans (the documented DeliverableSet fallback), so correctness is
  // unaffected — only the target's latency.
  for (const sim::Envelope& env : exec.buffer().all_pending()) {
    if (env.sender == target_ || exec.crashed(env.receiver)) continue;
    ++streak_;
    return sim::DeliverAction{env.id};
  }
  // Nothing but target traffic left: let it through.
  streak_ = 0;
  return act;
}

}  // namespace aa::adversary
