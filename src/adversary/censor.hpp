// Censorship adversaries: target ONE sender while staying strictly inside
// the model contracts.
//
// TargetedCensorAdversary composes with ANY window adversary: wherever the
// inner plan's delivery rows have slack (|S_i| > n − t), the target sender
// is erased from the row. Definition 1 only requires |S_i| ≥ n − t, so the
// censored plan is still acceptable — the driver re-validates every window
// (the wrapper always answers kUpdated) and validate_window_plan holds by
// construction. This is maximal *legal* censorship of one sender: rows
// already at the n − t floor must keep the target, which is exactly the
// acceptable-window guarantee the paper's model grants each processor.
//
// StarvingAsyncScheduler is the async analogue: whenever the inner
// scheduler picks a delivery from the target, it substitutes the oldest
// pending non-target delivery instead — but only up to `fairness_bound`
// consecutive substitutions, so every message still gets delivered
// eventually (the async model's fairness obligation; run_async's
// termination behaviour is preserved).
//
// Both are deterministic given the inner adversary: they draw no
// randomness of their own, so the same trial seed replays bit-identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/async.hpp"
#include "sim/window.hpp"

namespace aa::adversary {

/// Erases `target`'s entries from every delivery row with slack; forwards
/// reset choices and crash requests from the inner adversary unchanged.
class TargetedCensorAdversary final : public sim::WindowAdversary {
 public:
  TargetedCensorAdversary(std::unique_ptr<sim::WindowAdversary> inner,
                          sim::ProcId target);

  void prepare(int n, int t) override;
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override;
  [[nodiscard]] std::span<const sim::ProcId> window_crashes() const override {
    return inner_->window_crashes();
  }
  [[nodiscard]] std::string name() const override {
    return "censor[" + std::to_string(target_) + "](" + inner_->name() + ")";
  }
  [[nodiscard]] sim::ProcId target() const noexcept { return target_; }

 private:
  std::unique_ptr<sim::WindowAdversary> inner_;
  sim::ProcId target_;
  sim::WindowPlan inner_plan_;  ///< inner's stable plan object (reuse cache)
  int n_ = 0;
  int t_ = 0;
};

/// Starves `target` in the async model: a target delivery picked by the
/// inner scheduler is swapped for the oldest pending non-target delivery
/// to a live receiver, at most `fairness_bound` consecutive times before
/// one target delivery is let through. Crash/stop actions pass through.
class StarvingAsyncScheduler final : public sim::AsyncAdversary {
 public:
  StarvingAsyncScheduler(std::unique_ptr<sim::AsyncAdversary> inner,
                         sim::ProcId target, int fairness_bound);

  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override {
    return "starve[" + std::to_string(target_) + "](" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<sim::AsyncAdversary> inner_;
  sim::ProcId target_;
  int bound_;
  int streak_ = 0;  ///< consecutive substitutions since the last pass-through
};

}  // namespace aa::adversary
