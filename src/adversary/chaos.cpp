#include "adversary/chaos.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace aa::adversary {

Rng chaos_rng(std::uint64_t seed, std::uint64_t chaos_seed) {
  // One SplitMix64 step over the mixed pair keeps the chaos stream
  // independent of the per-processor streams forked from the same seed.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (chaos_seed + 1)));
  return Rng(sm.next());
}

// ---- ChaosWindowAdversary --------------------------------------------------

ChaosWindowAdversary::ChaosWindowAdversary(
    std::unique_ptr<sim::WindowAdversary> inner, const sim::FaultPlan& fault,
    std::uint64_t seed)
    : inner_(std::move(inner)),
      fp_(fault),
      rng_(chaos_rng(seed, fault.chaos_seed)),
      seed_(seed) {
  AA_REQUIRE(inner_ != nullptr, "ChaosWindowAdversary: null inner adversary");
  sim::validate_fault_plan(fp_);
}

void ChaosWindowAdversary::prepare(int n, int t) {
  inner_->prepare(n, t);
  n_ = n;
  t_ = t;
  crashes_injected_ = 0;
  crashes_.clear();
  rng_ = chaos_rng(seed_, fp_.chaos_seed);
  inner_plan_.reset(n);
  reset_mark_.assign(static_cast<std::size_t>(n), 0);
}

sim::PlanDecision ChaosWindowAdversary::plan_window_into(
    const sim::Execution& exec, const sim::WindowBatch& batch,
    sim::WindowPlan& plan) {
  const int n = n_;
  crashes_.clear();

  // The inner adversary plans into OUR stable plan object: its
  // kReusePrevious cache (keyed on the plan pointer) keeps working, and the
  // perturbations below never feed back into what it sees next window.
  inner_->plan_window_into(exec, batch, inner_plan_);
  plan.reset(n);
  for (int i = 0; i < n; ++i) {
    plan.delivery_order[static_cast<std::size_t>(i)] =
        inner_plan_.delivery_order[static_cast<std::size_t>(i)];
  }
  plan.resets = inner_plan_.resets;

  // 1. Degenerate window: collapse every row to the minimal Definition-1
  // cover [0, n − t) and clear the resets — the most censored acceptable
  // window that exists.
  if (fp_.degenerate_prob > 0.0 && rng_.bernoulli(fp_.degenerate_prob)) {
    for (int i = 0; i < n; ++i) {
      auto& row = plan.delivery_order[static_cast<std::size_t>(i)];
      row.clear();
      for (sim::ProcId s = 0; s < n - t_; ++s) row.push_back(s);
    }
    plan.resets.clear();
  }

  // 2. Duplicate one receiver's row over another's (any acceptable row is
  // acceptable for any receiver).
  if (fp_.duplicate_row_prob > 0.0 && n >= 2 &&
      rng_.bernoulli(fp_.duplicate_row_prob)) {
    const auto i = rng_.uniform_index(static_cast<std::size_t>(n));
    const auto j = rng_.uniform_index(static_cast<std::size_t>(n));
    plan.delivery_order[i] = plan.delivery_order[j];
  }

  // 3. Censorship: remove the target sender from rows that have slack
  // (|S_i| > n − t keeps the row acceptable after the erase).
  if (fp_.censor_prob > 0.0 && fp_.censor_target < n) {
    for (int i = 0; i < n; ++i) {
      auto& row = plan.delivery_order[static_cast<std::size_t>(i)];
      if (static_cast<int>(row.size()) <= n - t_) continue;
      if (!rng_.bernoulli(fp_.censor_prob)) continue;
      const auto it = std::find(row.begin(), row.end(), fp_.censor_target);
      if (it != row.end()) row.erase(it);
    }
  }

  // 4. Reset top-up: exercise the full ≤ t reset budget with fresh random
  // live targets (distinct from the inner plan's, so the plan stays valid).
  if (fp_.reset_prob > 0.0 && t_ > 0 && rng_.bernoulli(fp_.reset_prob)) {
    std::fill(reset_mark_.begin(), reset_mark_.end(), std::uint8_t{0});
    for (const sim::ProcId p : plan.resets) {
      reset_mark_[static_cast<std::size_t>(p)] = 1;
    }
    int attempts = 0;
    while (static_cast<int>(plan.resets.size()) < t_ && attempts < 4 * n) {
      ++attempts;
      const auto p = static_cast<sim::ProcId>(
          rng_.uniform_index(static_cast<std::size_t>(n)));
      if (reset_mark_[static_cast<std::size_t>(p)] || exec.crashed(p)) continue;
      reset_mark_[static_cast<std::size_t>(p)] = 1;
      plan.resets.push_back(p);
    }
  }

  // 5. Crash request (applied by the driver after the resets, via
  // window_crashes): at most one per window, up to crash_budget per run,
  // always leaving at least one processor live.
  if (fp_.crash_prob > 0.0 && crashes_injected_ < fp_.crash_budget &&
      exec.crashed_count() < n - 1 && rng_.bernoulli(fp_.crash_prob)) {
    int attempts = 0;
    while (attempts < 4 * n) {
      ++attempts;
      const auto p = static_cast<sim::ProcId>(
          rng_.uniform_index(static_cast<std::size_t>(n)));
      if (exec.crashed(p)) continue;
      crashes_.push_back(p);
      ++crashes_injected_;
      break;
    }
  }

  return sim::PlanDecision::kUpdated;
}

// ---- ChaosAsyncScheduler ---------------------------------------------------

ChaosAsyncScheduler::ChaosAsyncScheduler(
    std::unique_ptr<sim::AsyncAdversary> inner, const sim::FaultPlan& fault,
    std::uint64_t seed)
    : inner_(std::move(inner)),
      fp_(fault),
      rng_(chaos_rng(seed, fault.chaos_seed)),
      seed_(seed) {
  AA_REQUIRE(inner_ != nullptr, "ChaosAsyncScheduler: null inner scheduler");
  sim::validate_fault_plan(fp_);
}

void ChaosAsyncScheduler::prepare(int n, int t) {
  inner_->prepare(n, t);
  n_ = n;
  t_ = t;
  crashes_injected_ = 0;
  rng_ = chaos_rng(seed_, fp_.chaos_seed);
}

sim::AsyncAction ChaosAsyncScheduler::next(const sim::Execution& exec) {
  // Injected crashes honour both the FaultPlan budget and the model budget
  // t that run_async enforces on every CrashAction.
  if (fp_.crash_prob > 0.0 && crashes_injected_ < fp_.crash_budget &&
      exec.crashed_count() < t_ && rng_.bernoulli(fp_.crash_prob)) {
    int attempts = 0;
    while (attempts < 4 * n_) {
      ++attempts;
      const auto p = static_cast<sim::ProcId>(
          rng_.uniform_index(static_cast<std::size_t>(n_)));
      if (exec.crashed(p)) continue;
      ++crashes_injected_;
      return sim::CrashAction{p};
    }
  }
  return inner_->next(exec);
}

}  // namespace aa::adversary
