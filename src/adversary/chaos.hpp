// Chaos wrappers: compose a sim::FaultPlan with ANY existing adversary.
//
// ChaosWindowAdversary perturbs the inner adversary's window plans —
// degenerate windows, duplicated rows, per-sender censorship, reset top-ups
// — and requests boundary crashes through the WindowAdversary::
// window_crashes hook. Every perturbation stays inside Definition 1 (the
// driver still validates the final plan), so checker semantics remain
// defined under chaos. ChaosAsyncScheduler injects crash actions into an
// async schedule while honouring the model budget t.
//
// Both wrappers draw all randomness from an Rng derived from
// (trial seed, FaultPlan::chaos_seed), so a chaos trial replays
// bit-identically; with a disabled FaultPlan they are exact pass-throughs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/async.hpp"
#include "sim/fault.hpp"
#include "sim/window.hpp"
#include "util/rng.hpp"

namespace aa::adversary {

/// Wraps a window adversary and perturbs its plans per the FaultPlan. The
/// inner adversary plans into a pristine private WindowPlan (so its
/// pointer-based reuse cache stays coherent); the driver's plan receives a
/// perturbed copy and the wrapper always answers kUpdated, forcing
/// re-validation of every chaotic plan.
class ChaosWindowAdversary final : public sim::WindowAdversary {
 public:
  /// `seed` is the trial seed (the factory argument); it is mixed with
  /// fault.chaos_seed to derive the chaos Rng stream.
  ChaosWindowAdversary(std::unique_ptr<sim::WindowAdversary> inner,
                       const sim::FaultPlan& fault, std::uint64_t seed);

  void prepare(int n, int t) override;
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override;
  [[nodiscard]] std::span<const sim::ProcId> window_crashes() const override {
    return crashes_;
  }
  [[nodiscard]] std::string name() const override {
    return "chaos(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<sim::WindowAdversary> inner_;
  sim::FaultPlan fp_;
  Rng rng_;
  std::uint64_t seed_;
  sim::WindowPlan inner_plan_;          ///< inner's stable plan object
  std::vector<sim::ProcId> crashes_;    ///< this window's crash requests
  std::vector<std::uint8_t> reset_mark_;  ///< top-up duplicate guard
  int n_ = 0;
  int t_ = 0;
  int crashes_injected_ = 0;
};

/// Wraps an async scheduler and injects CrashActions (probability
/// FaultPlan::crash_prob per action, up to min(crash_budget, the model
/// budget t)); all other actions pass through to the inner scheduler.
class ChaosAsyncScheduler final : public sim::AsyncAdversary {
 public:
  ChaosAsyncScheduler(std::unique_ptr<sim::AsyncAdversary> inner,
                      const sim::FaultPlan& fault, std::uint64_t seed);

  void prepare(int n, int t) override;
  sim::AsyncAction next(const sim::Execution& exec) override;
  [[nodiscard]] std::string name() const override {
    return "chaos(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<sim::AsyncAdversary> inner_;
  sim::FaultPlan fp_;
  Rng rng_;
  std::uint64_t seed_;
  int n_ = 0;
  int t_ = 0;
  int crashes_injected_ = 0;
};

/// The (trial seed, chaos seed) → chaos stream derivation both wrappers
/// use. Exposed so tests can reproduce a wrapper's draws.
[[nodiscard]] Rng chaos_rng(std::uint64_t seed, std::uint64_t chaos_seed);

}  // namespace aa::adversary
