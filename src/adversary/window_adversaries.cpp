#include "adversary/window_adversaries.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <tuple>

#include "protocols/reset_agreement.hpp"
#include "util/check.hpp"

namespace aa::adversary {

namespace {

std::vector<sim::ProcId> all_senders(int n) {
  std::vector<sim::ProcId> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace

// ---------------------------------------------------------------- fair ----

sim::WindowPlan FairWindowAdversary::plan_window(
    const sim::Execution& exec, const std::vector<sim::MsgId>& /*batch*/) {
  sim::WindowPlan plan;
  plan.delivery_order.assign(static_cast<std::size_t>(exec.n()),
                             all_senders(exec.n()));
  return plan;
}

// ------------------------------------------------------------ silencer ----

SilencerWindowAdversary::SilencerWindowAdversary(
    std::vector<sim::ProcId> silenced)
    : silenced_(std::move(silenced)) {}

sim::WindowPlan SilencerWindowAdversary::plan_window(
    const sim::Execution& exec, const std::vector<sim::MsgId>& /*batch*/) {
  const int n = exec.n();
  std::vector<bool> is_silenced(static_cast<std::size_t>(n), false);
  for (sim::ProcId p : silenced_) {
    AA_REQUIRE(p >= 0 && p < n, "silencer: bad processor id");
    is_silenced[static_cast<std::size_t>(p)] = true;
  }
  std::vector<sim::ProcId> order;
  for (sim::ProcId s = 0; s < n; ++s) {
    if (!is_silenced[static_cast<std::size_t>(s)]) order.push_back(s);
  }
  sim::WindowPlan plan;
  plan.delivery_order.assign(static_cast<std::size_t>(n), order);
  return plan;
}

// -------------------------------------------------------------- random ----

RandomWindowAdversary::RandomWindowAdversary(int t, double reset_prob, Rng rng)
    : t_(t), reset_prob_(reset_prob), rng_(rng) {
  AA_REQUIRE(t >= 0, "random adversary: t must be non-negative");
  AA_REQUIRE(reset_prob >= 0.0 && reset_prob <= 1.0,
             "random adversary: reset_prob out of [0,1]");
}

sim::WindowPlan RandomWindowAdversary::plan_window(
    const sim::Execution& exec, const std::vector<sim::MsgId>& /*batch*/) {
  const int n = exec.n();
  sim::WindowPlan plan;
  plan.delivery_order.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<sim::ProcId> ids = all_senders(n);
    // Fisher–Yates shuffle, then keep a random (n − t)-prefix as S_i.
    for (std::size_t j = 0; j + 1 < ids.size(); ++j) {
      const std::size_t k = j + rng_.uniform_index(ids.size() - j);
      std::swap(ids[j], ids[k]);
    }
    ids.resize(static_cast<std::size_t>(n - t_));
    plan.delivery_order.push_back(std::move(ids));
  }
  for (sim::ProcId p = 0; p < n; ++p) {
    if (static_cast<int>(plan.resets.size()) >= t_) break;
    if (!exec.crashed(p) && rng_.bernoulli(reset_prob_)) plan.resets.push_back(p);
  }
  return plan;
}

// --------------------------------------------------------- reset storm ----

ResetStormAdversary::ResetStormAdversary(int t, Rng rng) : t_(t), rng_(rng) {
  AA_REQUIRE(t >= 0, "reset storm: t must be non-negative");
}

sim::WindowPlan ResetStormAdversary::plan_window(
    const sim::Execution& exec, const std::vector<sim::MsgId>& /*batch*/) {
  const int n = exec.n();
  sim::WindowPlan plan;
  plan.delivery_order.assign(static_cast<std::size_t>(n), all_senders(n));
  std::vector<sim::ProcId> ids = all_senders(n);
  for (int i = 0; i < t_ && i < n; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        rng_.uniform_index(ids.size() - static_cast<std::size_t>(i));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
    if (!exec.crashed(ids[static_cast<std::size_t>(i)]))
      plan.resets.push_back(ids[static_cast<std::size_t>(i)]);
  }
  return plan;
}

// -------------------------------------------------------- split keeper ----

std::vector<sim::ProcId> balance_votes(
    const std::vector<std::tuple<sim::ProcId, int, int>>& votes) {
  // Group by round, ascending.
  std::map<int, std::array<std::vector<sim::ProcId>, 2>> by_round;
  for (const auto& [sender, round, value] : votes) {
    AA_CHECK(value == 0 || value == 1, "balance_votes: non-bit vote");
    by_round[round][static_cast<std::size_t>(value)].push_back(sender);
  }
  std::vector<sim::ProcId> order;
  order.reserve(votes.size());
  for (auto& [round, groups] : by_round) {
    (void)round;
    auto& zeros = groups[0];
    auto& ones = groups[1];
    // Strict alternation starting with the MAJORITY value, so that any
    // prefix of length L contains at most ⌈L/2⌉ of either value.
    std::size_t zi = 0;
    std::size_t oi = 0;
    bool turn_zero = zeros.size() >= ones.size();
    while (zi < zeros.size() || oi < ones.size()) {
      if (turn_zero && zi < zeros.size()) order.push_back(zeros[zi++]);
      else if (!turn_zero && oi < ones.size()) order.push_back(ones[oi++]);
      else if (zi < zeros.size()) order.push_back(zeros[zi++]);
      else order.push_back(ones[oi++]);
      turn_zero = !turn_zero;
    }
  }
  return order;
}

sim::WindowPlan SplitKeeperAdversary::plan_window(
    const sim::Execution& exec, const std::vector<sim::MsgId>& batch) {
  const int n = exec.n();
  sim::WindowPlan plan;
  plan.delivery_order.resize(static_cast<std::size_t>(n));

  // Collect this window's votes per receiver (full information).
  std::vector<std::vector<std::tuple<sim::ProcId, int, int>>> votes(
      static_cast<std::size_t>(n));
  std::vector<std::vector<sim::ProcId>> non_votes(static_cast<std::size_t>(n));
  for (sim::MsgId id : batch) {
    if (!exec.buffer().is_pending(id)) continue;
    const sim::Envelope& env = exec.buffer().get(id);
    if (env.payload.kind == protocols::kVoteKind &&
        (env.payload.value == 0 || env.payload.value == 1)) {
      votes[static_cast<std::size_t>(env.receiver)].emplace_back(
          env.sender, env.payload.round, env.payload.value);
    } else {
      non_votes[static_cast<std::size_t>(env.receiver)].push_back(env.sender);
    }
  }

  for (int i = 0; i < n; ++i) {
    std::vector<sim::ProcId> order =
        balance_votes(votes[static_cast<std::size_t>(i)]);
    // Append senders of non-vote messages and everyone who sent nothing so
    // that S_i = [n] (the split-keeper never silences anyone — only the
    // delivery ORDER is adversarial).
    std::vector<bool> present(static_cast<std::size_t>(n), false);
    for (sim::ProcId s : order) present[static_cast<std::size_t>(s)] = true;
    for (sim::ProcId s : non_votes[static_cast<std::size_t>(i)]) {
      if (!present[static_cast<std::size_t>(s)]) {
        present[static_cast<std::size_t>(s)] = true;
        order.push_back(s);
      }
    }
    for (sim::ProcId s = 0; s < n; ++s) {
      if (!present[static_cast<std::size_t>(s)]) order.push_back(s);
    }
    plan.delivery_order[static_cast<std::size_t>(i)] = std::move(order);
  }
  return plan;
}

}  // namespace aa::adversary
