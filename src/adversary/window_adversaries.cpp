#include "adversary/window_adversaries.hpp"

#include <utility>

#include "protocols/reset_agreement.hpp"
#include "util/check.hpp"

namespace aa::adversary {

namespace {

void fill_all_senders(int n, std::vector<sim::ProcId>& order) {
  order.clear();
  for (sim::ProcId s = 0; s < n; ++s) order.push_back(s);
}

}  // namespace

// ---------------------------------------------------------------- fair ----

void FairWindowAdversary::fill_static(int n, sim::WindowPlan& plan) {
  for (auto& order : plan.delivery_order) fill_all_senders(n, order);
}

// ------------------------------------------------------------ silencer ----

SilencerWindowAdversary::SilencerWindowAdversary(
    std::vector<sim::ProcId> silenced)
    : silenced_(std::move(silenced)) {}

void SilencerWindowAdversary::prepare_static(int n, int /*t*/) {
  is_silenced_.assign(static_cast<std::size_t>(n), false);
  for (sim::ProcId p : silenced_) {
    AA_REQUIRE(p >= 0 && p < n, "silencer: bad processor id");
    is_silenced_[static_cast<std::size_t>(p)] = true;
  }
}

void SilencerWindowAdversary::fill_static(int n, sim::WindowPlan& plan) {
  if (is_silenced_.size() != static_cast<std::size_t>(n)) {
    prepare_static(n, 0);  // driven outside run_acceptable_window
  }
  for (auto& order : plan.delivery_order) {
    order.clear();
    for (sim::ProcId s = 0; s < n; ++s) {
      if (!is_silenced_[static_cast<std::size_t>(s)]) order.push_back(s);
    }
  }
}

// -------------------------------------------------------------- random ----

RandomWindowAdversary::RandomWindowAdversary(int t, double reset_prob, Rng rng)
    : t_(t), reset_prob_(reset_prob), rng_(rng) {
  AA_REQUIRE(t >= 0, "random adversary: t must be non-negative");
  AA_REQUIRE(reset_prob >= 0.0 && reset_prob <= 1.0,
             "random adversary: reset_prob out of [0,1]");
}

sim::PlanDecision RandomWindowAdversary::plan_window_into(
    const sim::Execution& exec, const sim::WindowBatch& /*batch*/,
    sim::WindowPlan& plan) {
  const int n = exec.n();
  plan.reset(n);
  for (int i = 0; i < n; ++i) {
    std::vector<sim::ProcId>& ids =
        plan.delivery_order[static_cast<std::size_t>(i)];
    fill_all_senders(n, ids);
    // Fisher–Yates shuffle, then keep a random (n − t)-prefix as S_i.
    for (std::size_t j = 0; j + 1 < ids.size(); ++j) {
      const std::size_t k = j + rng_.uniform_index(ids.size() - j);
      std::swap(ids[j], ids[k]);
    }
    ids.resize(static_cast<std::size_t>(n - t_));
  }
  for (sim::ProcId p = 0; p < n; ++p) {
    if (static_cast<int>(plan.resets.size()) >= t_) break;
    if (!exec.crashed(p) && rng_.bernoulli(reset_prob_)) plan.resets.push_back(p);
  }
  return sim::PlanDecision::kUpdated;
}

// --------------------------------------------------------- reset storm ----

ResetStormAdversary::ResetStormAdversary(int t, Rng rng) : t_(t), rng_(rng) {
  AA_REQUIRE(t >= 0, "reset storm: t must be non-negative");
}

sim::PlanDecision ResetStormAdversary::plan_window_into(
    const sim::Execution& exec, const sim::WindowBatch& /*batch*/,
    sim::WindowPlan& plan) {
  const int n = exec.n();
  plan.reset(n);
  for (auto& order : plan.delivery_order) fill_all_senders(n, order);
  fill_all_senders(n, ids_);
  for (int i = 0; i < t_ && i < n; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        rng_.uniform_index(ids_.size() - static_cast<std::size_t>(i));
    std::swap(ids_[static_cast<std::size_t>(i)], ids_[j]);
    if (!exec.crashed(ids_[static_cast<std::size_t>(i)]))
      plan.resets.push_back(ids_[static_cast<std::size_t>(i)]);
  }
  return sim::PlanDecision::kUpdated;
}

// -------------------------------------------------------- split keeper ----

void balance_votes_into(
    const std::vector<std::tuple<sim::ProcId, int, int>>& votes,
    BalanceScratch& sc, std::vector<sim::ProcId>& out) {
  // Bucket by round as the votes stream in: each distinct round owns a
  // (zeros, ones) queue pair, filled in arrival order — exactly the
  // grouping the old sort-by-(round, arrival) produced, without the sort.
  sc.rounds.clear();
  std::uint32_t used = 0;
  for (const auto& [sender, round, value] : votes) {
    AA_CHECK(value == 0 || value == 1, "balance_votes: non-bit vote");
    // Rounds arrive mostly ascending, so scan for the insertion point from
    // the back; the distinct-round count per window is tiny.
    std::size_t k = sc.rounds.size();
    while (k > 0 && sc.rounds[k - 1].first > round) --k;
    BalanceScratch::Bucket* bucket;
    if (k > 0 && sc.rounds[k - 1].first == round) {
      bucket = &sc.buckets[sc.rounds[k - 1].second];
    } else {
      if (used == sc.buckets.size()) sc.buckets.emplace_back();
      const std::uint32_t bi = used++;
      sc.buckets[bi].zeros.clear();
      sc.buckets[bi].ones.clear();
      sc.rounds.insert(sc.rounds.begin() + static_cast<std::ptrdiff_t>(k),
                       {round, bi});
      bucket = &sc.buckets[bi];
    }
    (value == 0 ? bucket->zeros : bucket->ones).push_back(sender);
  }
  for (const auto& [round, bi] : sc.rounds) {
    (void)round;
    const BalanceScratch::Bucket& bucket = sc.buckets[bi];
    // Strict alternation starting with the MAJORITY value, so that any
    // prefix of length L contains at most ⌈L/2⌉ of either value.
    std::size_t zi = 0;
    std::size_t oi = 0;
    bool turn_zero = bucket.zeros.size() >= bucket.ones.size();
    while (zi < bucket.zeros.size() || oi < bucket.ones.size()) {
      if (turn_zero && zi < bucket.zeros.size())
        out.push_back(bucket.zeros[zi++]);
      else if (!turn_zero && oi < bucket.ones.size())
        out.push_back(bucket.ones[oi++]);
      else if (zi < bucket.zeros.size())
        out.push_back(bucket.zeros[zi++]);
      else
        out.push_back(bucket.ones[oi++]);
      turn_zero = !turn_zero;
    }
  }
}

std::vector<sim::ProcId> balance_votes(
    const std::vector<std::tuple<sim::ProcId, int, int>>& votes) {
  BalanceScratch sc;
  std::vector<sim::ProcId> order;
  order.reserve(votes.size());
  balance_votes_into(votes, sc, order);
  return order;
}

sim::PlanDecision SplitKeeperAdversary::plan_window_into(
    const sim::Execution& exec, const sim::WindowBatch& /*batch*/,
    sim::WindowPlan& plan) {
  const int n = exec.n();
  plan.reset(n);
  if (present_.size() != static_cast<std::size_t>(n)) {
    present_.assign(static_cast<std::size_t>(n), 0);
  }

  // Per receiver: walk its pending list directly (during the planning
  // phase the receiver's pending list IS this window's batch, in id
  // order — the same order the published-ids scan used to produce) and
  // split votes from everything else. No per-id buffer lookups.
  for (int i = 0; i < n; ++i) {
    votes_.clear();
    non_votes_.clear();
    for (const sim::Envelope& env : exec.buffer().pending_to(i)) {
      if (env.payload.kind == protocols::kVoteKind &&
          (env.payload.value == 0 || env.payload.value == 1)) {
        votes_.emplace_back(env.sender, env.payload.round, env.payload.value);
      } else {
        non_votes_.push_back(env.sender);
      }
    }
    std::vector<sim::ProcId>& order =
        plan.delivery_order[static_cast<std::size_t>(i)];
    balance_votes_into(votes_, balance_, order);
    // Append senders of non-vote messages and everyone who sent nothing so
    // that S_i = [n] (the split-keeper never silences anyone — only the
    // delivery ORDER is adversarial).
    const std::uint64_t epoch = ++epoch_;
    for (sim::ProcId s : order) present_[static_cast<std::size_t>(s)] = epoch;
    for (sim::ProcId s : non_votes_) {
      if (present_[static_cast<std::size_t>(s)] != epoch) {
        present_[static_cast<std::size_t>(s)] = epoch;
        order.push_back(s);
      }
    }
    for (sim::ProcId s = 0; s < n; ++s) {
      if (present_[static_cast<std::size_t>(s)] != epoch) order.push_back(s);
    }
  }
  return sim::PlanDecision::kUpdated;
}

// ------------------------------------------------- replan every window ----

ReplanEveryWindow::ReplanEveryWindow(
    std::unique_ptr<sim::WindowAdversary> inner)
    : inner_(std::move(inner)) {
  AA_REQUIRE(inner_ != nullptr, "replan-every-window: null inner adversary");
}

void ReplanEveryWindow::prepare(int n, int t) {
  t_ = t;
  inner_->prepare(n, t);
}

sim::PlanDecision ReplanEveryWindow::plan_window_into(
    const sim::Execution& exec, const sim::WindowBatch& batch,
    sim::WindowPlan& plan) {
  // Re-preparing clears the inner adversary's plan cache, so this call is
  // guaranteed to refill the plan from scratch — the pre-reuse behaviour.
  inner_->prepare(exec.n(), t_);
  inner_->plan_window_into(exec, batch, plan);
  return sim::PlanDecision::kUpdated;
}

}  // namespace aa::adversary
