// Strongly adaptive (acceptable-window) adversaries — §2/§3 of the paper.
//
// All of these obey Definition 1 (|S_i| ≥ n − t, ≤ t resets per window) and
// exercise different slices of the adversary's power:
//
//   FairWindowAdversary       — deliver everything, reset nobody (benign).
//   SilencerWindowAdversary   — permanently silence a fixed t-set: the
//                               classical "t crashed processors" schedule.
//   RandomWindowAdversary     — random S_i sets, random delivery order,
//                               optional random resets (Monte-Carlo fuzzing
//                               of the measure-one properties).
//   ResetStormAdversary       — deliver everything but reset a fresh
//                               random t-set every window (maximal use of
//                               the resetting power).
//   SplitKeeperAdversary      — the §3-end exponential-time adversary:
//                               orders each receiver's deliveries so the
//                               first T1 votes it consumes are split as
//                               evenly as possible, keeping every processor
//                               below the T3/T2 thresholds and forcing
//                               fresh coin flips every round.
//
// Fair and Silencer have plans that depend only on n, so they derive from
// sim::StaticWindowAdversary: the plan is filled once (prepare + first
// window) and every later window answers PlanDecision::kReusePrevious,
// letting the driver skip the n² fill and re-validation. The other three
// are genuinely adaptive and refill the reusable WindowPlan every window
// (kUpdated), keeping their own scratch buffers so steady-state planning
// still performs no heap allocation.
#pragma once

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "sim/window.hpp"
#include "util/rng.hpp"

namespace aa::adversary {

/// Deliver all messages (sender-id order), no resets. Static: plans once.
class FairWindowAdversary final : public sim::StaticWindowAdversary {
 public:
  [[nodiscard]] std::string name() const override { return "fair"; }

 protected:
  void fill_static(int n, sim::WindowPlan& plan) override;
};

/// Never deliver from the fixed set `silenced` (must have ≤ t elements);
/// no resets. Models t crashed/partitioned processors. Static: plans once.
class SilencerWindowAdversary final : public sim::StaticWindowAdversary {
 public:
  explicit SilencerWindowAdversary(std::vector<sim::ProcId> silenced);
  [[nodiscard]] std::string name() const override { return "silencer"; }

 protected:
  void prepare_static(int n, int t) override;
  void fill_static(int n, sim::WindowPlan& plan) override;

 private:
  std::vector<sim::ProcId> silenced_;
  std::vector<bool> is_silenced_;  ///< rebuilt whenever n changes
};

/// Per-window random S_i of size exactly n − t in random order; resets each
/// processor independently with probability `reset_prob` up to the budget t.
class RandomWindowAdversary final : public sim::WindowAdversary {
 public:
  RandomWindowAdversary(int t, double reset_prob, Rng rng);
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  int t_;
  double reset_prob_;
  Rng rng_;
};

/// Deliver everything, then reset a fresh uniformly random t-subset.
class ResetStormAdversary final : public sim::WindowAdversary {
 public:
  ResetStormAdversary(int t, Rng rng);
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override;
  [[nodiscard]] std::string name() const override { return "reset-storm"; }

 private:
  int t_;
  Rng rng_;
  std::vector<sim::ProcId> ids_;  ///< reusable shuffle buffer
};

/// Scratch buffers for balance_votes_into (contents irrelevant between
/// calls; capacity is reused). Bucketed replacement for the old
/// sort-by-(round, arrival) pass: votes are appended straight into
/// per-round (zeros, ones) queues as they stream in — arrival order is
/// preserved within each queue by construction, so no sort is ever needed.
/// `rounds` keeps the distinct rounds seen this call in ascending order
/// (protocol rounds per window are few, so the insertion scan is a handful
/// of compares); `buckets` is the pooled queue storage, reused in arrival
/// order across calls.
struct BalanceScratch {
  struct Bucket {
    std::vector<sim::ProcId> zeros;
    std::vector<sim::ProcId> ones;
  };
  std::vector<std::pair<int, std::uint32_t>> rounds;  ///< (round, bucket)
  std::vector<Bucket> buckets;
};

/// The §3 exponential-time adversary for threshold-voting protocols
/// (reset-agreement / forgetful): every receiver's deliveries are ordered
/// round-by-round with 0-votes and 1-votes strictly alternating, so the
/// first T1 votes a processor consumes contain ≤ ⌈T1/2⌉ of either value —
/// below T3 (> n/2), hence below T2 — and every processor re-randomizes its
/// estimate. Decisions only happen when the coin flips spontaneously
/// produce a strong majority: probability 2^{−Θ(n)} per round.
///
/// Needs no resets and delivers every message (S_i = [n]): only the ORDER
/// is adversarial. This makes it simultaneously a legal strongly adaptive
/// adversary and a legal crash-model adversary with zero crashes.
class SplitKeeperAdversary final : public sim::WindowAdversary {
 public:
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override;
  [[nodiscard]] std::string name() const override { return "split-keeper"; }

 private:
  // Reusable per-window scratch (cleared, never shrunk).
  std::vector<std::tuple<sim::ProcId, int, int>> votes_;
  std::vector<sim::ProcId> non_votes_;
  std::vector<std::uint64_t> present_;
  std::uint64_t epoch_ = 0;
  BalanceScratch balance_;
};

/// A/B wrapper that strips plan reuse from `inner`: its cache is
/// invalidated before every window, so every plan_window_into refills the
/// plan and returns kUpdated — the pre-reuse (replan + revalidate every
/// window) engine behaviour. Used by benches and the reuse-equivalence
/// tests; plans are bit-identical to the reusing inner adversary's.
class ReplanEveryWindow final : public sim::WindowAdversary {
 public:
  explicit ReplanEveryWindow(std::unique_ptr<sim::WindowAdversary> inner);
  void prepare(int n, int t) override;
  sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                     const sim::WindowBatch& batch,
                                     sim::WindowPlan& plan) override;
  [[nodiscard]] std::span<const sim::ProcId> window_crashes() const override {
    return inner_->window_crashes();
  }
  [[nodiscard]] std::string name() const override {
    return "replan-every-window(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<sim::WindowAdversary> inner_;
  int t_ = 0;
};

/// Helper shared with the async split-keeper: produce an ordering of the
/// given (sender, round, value) vote triples that alternates values within
/// each round, rounds ascending. Returns sender ids in delivery order.
[[nodiscard]] std::vector<sim::ProcId> balance_votes(
    const std::vector<std::tuple<sim::ProcId, int, int>>& votes);

/// Allocation-free variant: appends the balanced order to `out` using the
/// caller's scratch buffers.
void balance_votes_into(
    const std::vector<std::tuple<sim::ProcId, int, int>>& votes,
    BalanceScratch& scratch, std::vector<sim::ProcId>& out);

}  // namespace aa::adversary
