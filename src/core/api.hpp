// Umbrella header: the library's public API.
//
// #include "core/api.hpp" pulls in everything a downstream user needs:
//   * the §3 reset-tolerant agreement protocol and the baselines,
//   * the acceptable-window and async simulation engines,
//   * the adversary suite,
//   * the experiment harness and measure-one checkers,
//   * the lower-bound machinery (Talagrand, Z-sets, Theorem 5 constants).
#pragma once

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/campaign.hpp"
#include "core/checker.hpp"
#include "core/exhaustive.hpp"
#include "core/report.hpp"
#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "core/lowerbound.hpp"
#include "core/zsets.hpp"
#include "prob/binomial.hpp"
#include "prob/hybrid.hpp"
#include "prob/talagrand.hpp"
#include "protocols/byzantine.hpp"
#include "protocols/committee.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"
#include "sim/execution.hpp"
#include "sim/window.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
