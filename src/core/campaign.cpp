#include "core/campaign.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"
#include "util/check.hpp"

namespace aa::core {

namespace {

// ---------------------------------------------------------------- parsing

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(value);
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

long long parse_int(const std::string& value, int line) {
  std::size_t pos = 0;
  long long v = 0;
  bool ok = true;
  try {
    v = std::stoll(value, &pos);
  } catch (...) {
    ok = false;
  }
  AA_REQUIRE(ok && pos == value.size(),
             "campaign config line " + std::to_string(line) +
                 ": expected an integer, got '" + value + "'");
  return v;
}

std::vector<int> parse_int_list(const std::string& value, int line) {
  std::vector<int> out;
  for (const std::string& item : split_list(value)) {
    out.push_back(static_cast<int>(parse_int(item, line)));
  }
  AA_REQUIRE(!out.empty(), "campaign config line " + std::to_string(line) +
                               ": empty list");
  return out;
}

// ------------------------------------------------- axis-value resolution

protocols::ProtocolKind protocol_kind(const std::string& name) {
  if (name == "reset" || name == "reset-agreement") {
    return protocols::ProtocolKind::Reset;
  }
  if (name == "forgetful") return protocols::ProtocolKind::Forgetful;
  if (name == "benor" || name == "ben-or") return protocols::ProtocolKind::BenOr;
  if (name == "bracha") return protocols::ProtocolKind::Bracha;
  AA_REQUIRE(false, "campaign: unknown protocol '" + name +
                        "' (want reset|forgetful|benor|bracha)");
  return protocols::ProtocolKind::Reset;
}

std::optional<protocols::Thresholds> threshold_preset(const std::string& name,
                                                      int n, int t) {
  if (name == "default") return std::nullopt;
  if (name == "canonical") return protocols::canonical_thresholds(n, t);
  if (name == "relaxed") {
    return protocols::Thresholds{n - 2 * t, n / 2 + 1 + t, n / 2 + 1};
  }
  AA_REQUIRE(false, "campaign: unknown thresholds preset '" + name +
                        "' (want default|canonical|relaxed)");
  return std::nullopt;
}

/// The same named adversary menus report_probe and the examples use.
WindowAdversaryFactory window_factory(const std::string& name, int t) {
  AA_REQUIRE(name == "fair" || name == "silencer" || name == "split-keeper" ||
                 name == "reset-storm" || name == "random",
             "campaign: unknown window adversary '" + name +
                 "' (want fair|silencer|split-keeper|reset-storm|random)");
  return [name, t](std::uint64_t seed) -> std::unique_ptr<sim::WindowAdversary> {
    if (name == "fair") {
      return std::make_unique<adversary::FairWindowAdversary>();
    }
    if (name == "silencer") {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    if (name == "split-keeper") {
      return std::make_unique<adversary::SplitKeeperAdversary>();
    }
    if (name == "reset-storm") {
      return std::make_unique<adversary::ResetStormAdversary>(
          t, Rng(seed * 7 + 1));
    }
    return std::make_unique<adversary::RandomWindowAdversary>(
        t, 0.1, Rng(seed * 9 + 2));
  };
}

AsyncAdversaryFactory async_factory(const std::string& name, int t) {
  AA_REQUIRE(name == "random-async" || name == "fixed-crash" ||
                 name == "async-split",
             "campaign: unknown async adversary '" + name +
                 "' (want random-async|fixed-crash|async-split)");
  return [name, t](std::uint64_t seed) -> std::unique_ptr<sim::AsyncAdversary> {
    if (name == "random-async") {
      return std::make_unique<adversary::RandomAsyncScheduler>(
          Rng(seed * 3 + 1));
    }
    if (name == "fixed-crash") {
      std::vector<sim::ProcId> crash;
      for (int i = 0; i < t; ++i) crash.push_back(i);
      return std::make_unique<adversary::FixedCrashScheduler>(
          crash, Rng(seed * 5 + 3));
    }
    return std::make_unique<adversary::AsyncSplitKeeper>();
  };
}

// ------------------------------------------------------------- JSON bits

void json_kv(std::string& out, const char* key, const std::string& value,
             bool last = false) {
  out += "  \"";
  out += key;
  out += "\": \"";
  out += value;
  out += last ? "\"\n" : "\",\n";
}

void json_kv_int(std::string& out, const char* key, long long value,
                 bool last = false) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld", value);
  out += "  \"";
  out += key;
  out += "\": ";
  out += buf;
  out += last ? "\n" : ",\n";
}

void json_kv_double(std::string& out, const char* key, double value,
                    bool last = false) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += "  \"";
  out += key;
  out += "\": ";
  out += buf;
  out += last ? "\n" : ",\n";
}

void json_report_fields(std::string& out, const MeasureOneReport& rep) {
  json_kv_int(out, "trials", rep.trials);
  json_kv_int(out, "agreement_violations", rep.agreement_violations);
  json_kv_int(out, "validity_violations", rep.validity_violations);
  json_kv_int(out, "decided_runs", rep.decided_runs);
  json_kv_int(out, "all_decided_runs", rep.all_decided_runs);
  json_kv_double(out, "mean_windows_to_first", rep.mean_windows_to_first);
  json_kv_double(out, "mean_chain_at_decision", rep.mean_chain_at_decision);
  out += "  \"violating_seeds\": [";
  for (std::size_t i = 0; i < rep.violating_seeds.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%" PRIu64, i ? "," : "",
                  rep.violating_seeds[i]);
    out += buf;
  }
  out += "]\n";
}

}  // namespace

CampaignConfig parse_campaign_config(const std::string& text) {
  CampaignConfig cfg;
  std::stringstream ss(text);
  std::string raw;
  int line = 0;
  while (std::getline(ss, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string stripped = trim(raw);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    AA_REQUIRE(eq != std::string::npos,
               "campaign config line " + std::to_string(line) +
                   ": expected 'key = value', got '" + stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    AA_REQUIRE(!key.empty() && !value.empty(),
               "campaign config line " + std::to_string(line) +
                   ": empty key or value");

    if (key == "name") {
      cfg.name = value;
    } else if (key == "model") {
      if (value == "window") cfg.model = CampaignModel::kWindow;
      else if (value == "async") cfg.model = CampaignModel::kAsync;
      else
        AA_REQUIRE(false, "campaign config line " + std::to_string(line) +
                              ": model must be window or async");
    } else if (key == "n") {
      cfg.n = parse_int_list(value, line);
    } else if (key == "t") {
      cfg.t = parse_int_list(value, line);
    } else if (key == "protocols") {
      cfg.protocols = split_list(value);
    } else if (key == "thresholds") {
      cfg.thresholds = split_list(value);
    } else if (key == "memory_k") {
      cfg.memory_k = parse_int_list(value, line);
    } else if (key == "adversaries") {
      cfg.adversaries = split_list(value);
    } else if (key == "split") {
      try {
        cfg.split = std::stod(value);
      } catch (...) {
        AA_REQUIRE(false, "campaign config line " + std::to_string(line) +
                              ": split must be a number");
      }
    } else if (key == "trials") {
      cfg.trials = static_cast<int>(parse_int(value, line));
    } else if (key == "budget") {
      cfg.budget = parse_int(value, line);
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_int(value, line));
    } else if (key == "threads") {
      cfg.threads = static_cast<int>(parse_int(value, line));
    } else if (key == "chunk_size") {
      cfg.chunk_size = static_cast<int>(parse_int(value, line));
    } else if (key == "output_dir") {
      cfg.output_dir = value;
    } else {
      AA_REQUIRE(false, "campaign config line " + std::to_string(line) +
                            ": unknown key '" + key + "'");
    }
  }
  AA_REQUIRE(cfg.trials > 0, "campaign config: trials must be positive");
  AA_REQUIRE(cfg.budget > 0, "campaign config: budget must be positive");
  AA_REQUIRE(!cfg.n.empty() && !cfg.t.empty() && !cfg.protocols.empty() &&
                 !cfg.adversaries.empty() && !cfg.thresholds.empty() &&
                 !cfg.memory_k.empty(),
             "campaign config: every sweep axis needs at least one value");
  return cfg;
}

CampaignConfig load_campaign_config(const std::string& path) {
  std::ifstream in(path);
  AA_REQUIRE(in.good(), "campaign: cannot read config file '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_campaign_config(ss.str());
}

CampaignResult run_campaign(const CampaignConfig& config,
                            CampaignContext& ctx) {
  CampaignResult result;
  result.config = config;

  MeasureOneAccumulator summary;
  int index = 0;
  // Canonical sweep order: outermost n, innermost adversary. The per-cell
  // seed block [seed + index*trials, ...) depends only on the config, so
  // cell identities — and every report — are thread-count-independent.
  for (const int n : config.n) {
    for (const int t : config.t) {
      for (const std::string& proto : config.protocols) {
        const protocols::ProtocolKind kind = protocol_kind(proto);
        for (const std::string& th_name : config.thresholds) {
          // memory_k is Forgetful's knob; other protocols run one cell.
          const std::size_t k_count =
              kind == protocols::ProtocolKind::Forgetful
                  ? config.memory_k.size()
                  : 1;
          for (std::size_t ki = 0; ki < k_count; ++ki) {
            const int memory_k = config.memory_k[ki];
            for (const std::string& adv : config.adversaries) {
              CampaignCell cell;
              cell.index = index;
              cell.n = n;
              cell.t = t;
              cell.protocol = proto;
              cell.thresholds = th_name;
              cell.memory_k = memory_k;
              cell.adversary = adv;
              cell.seed0 = config.seed + static_cast<std::uint64_t>(index) *
                                             static_cast<std::uint64_t>(
                                                 config.trials);

              Experiment spec;
              spec.kind = kind;
              spec.inputs = protocols::split_inputs(n, config.split);
              spec.t = t;
              spec.budget = config.budget;
              spec.thresholds = threshold_preset(th_name, n, t);
              spec.memory_k = memory_k;

              if (config.model == CampaignModel::kWindow) {
                cell.report = check_measure_one_window(
                    spec, window_factory(adv, t), config.trials, cell.seed0,
                    ctx, &summary);
              } else {
                cell.report = check_measure_one_async(
                    spec, async_factory(adv, t), config.trials, cell.seed0,
                    ctx, &summary);
              }
              result.cells.push_back(std::move(cell));
              ++index;
            }
          }
        }
      }
    }
  }
  result.summary =
      summary.finalize(config.model == CampaignModel::kAsync);
  return result;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  ParallelConfig par;
  par.threads = config.threads;
  par.chunk_size = config.chunk_size;
  CampaignContext ctx(par);
  return run_campaign(config, ctx);
}

std::string campaign_cell_json(const CampaignConfig& config,
                               const CampaignCell& cell) {
  std::string out = "{\n";
  json_kv(out, "campaign", config.name);
  json_kv(out, "model",
          config.model == CampaignModel::kWindow ? "window" : "async");
  json_kv_int(out, "cell", cell.index);
  json_kv_int(out, "n", cell.n);
  json_kv_int(out, "t", cell.t);
  json_kv(out, "protocol", cell.protocol);
  json_kv(out, "thresholds", cell.thresholds);
  json_kv_int(out, "memory_k", cell.memory_k);
  json_kv(out, "adversary", cell.adversary);
  json_kv_int(out, "seed0", static_cast<long long>(cell.seed0));
  json_kv_int(out, "budget", config.budget);
  json_report_fields(out, cell.report);
  out += "}\n";
  return out;
}

std::string campaign_summary_json(const CampaignResult& result) {
  const CampaignConfig& config = result.config;
  std::string out = "{\n";
  json_kv(out, "campaign", config.name);
  json_kv(out, "model",
          config.model == CampaignModel::kWindow ? "window" : "async");
  json_kv_int(out, "cells", static_cast<long long>(result.cells.size()));
  json_kv_int(out, "trials_per_cell", config.trials);
  json_kv_int(out, "budget", config.budget);
  json_kv_int(out, "seed", static_cast<long long>(config.seed));
  json_report_fields(out, result.summary);
  out += "}\n";
  return out;
}

void write_campaign_json(const CampaignResult& result,
                         const std::string& dir) {
  namespace fs = std::filesystem;
  AA_REQUIRE(!dir.empty(), "write_campaign_json: empty output directory");
  fs::create_directories(dir);
  const auto write_file = [](const fs::path& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary);
    AA_REQUIRE(out.good(),
               "write_campaign_json: cannot write " + path.string());
    out << body;
  };
  for (const CampaignCell& cell : result.cells) {
    write_file(fs::path(dir) / (result.config.name + "_cell_" +
                                std::to_string(cell.index) + ".json"),
               campaign_cell_json(result.config, cell));
  }
  write_file(fs::path(dir) / (result.config.name + "_summary.json"),
             campaign_summary_json(result));
}

}  // namespace aa::core
