#include "core/campaign.hpp"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <system_error>
#include <utility>

#include "adversary/async_adversaries.hpp"
#include "adversary/censor.hpp"
#include "adversary/chaos.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"
#include "lens/accountability.hpp"
#include "util/check.hpp"

namespace aa::core {

namespace {

// ---------------------------------------------------------------- parsing

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(value);
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

long long parse_int(const std::string& value, int line) {
  std::size_t pos = 0;
  long long v = 0;
  bool ok = true;
  try {
    v = std::stoll(value, &pos);
  } catch (...) {
    ok = false;
  }
  AA_REQUIRE(ok && pos == value.size(),
             "campaign config line " + std::to_string(line) +
                 ": expected an integer, got '" + value + "'");
  return v;
}

double parse_double(const std::string& value, int line) {
  std::size_t pos = 0;
  double v = 0.0;
  bool ok = true;
  try {
    v = std::stod(value, &pos);
  } catch (...) {
    ok = false;
  }
  AA_REQUIRE(ok && pos == value.size(),
             "campaign config line " + std::to_string(line) +
                 ": expected a number, got '" + value + "'");
  return v;
}

bool parse_bool(const std::string& value, int line) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  AA_REQUIRE(false, "campaign config line " + std::to_string(line) +
                        ": expected true or false, got '" + value + "'");
  return false;
}

std::vector<int> parse_int_list(const std::string& value, int line) {
  std::vector<int> out;
  for (const std::string& item : split_list(value)) {
    out.push_back(static_cast<int>(parse_int(item, line)));
  }
  AA_REQUIRE(!out.empty(), "campaign config line " + std::to_string(line) +
                               ": empty list");
  return out;
}

// ------------------------------------------------- axis-value resolution

protocols::ProtocolKind protocol_kind(const std::string& name) {
  if (name == "reset" || name == "reset-agreement") {
    return protocols::ProtocolKind::Reset;
  }
  if (name == "forgetful") return protocols::ProtocolKind::Forgetful;
  if (name == "benor" || name == "ben-or") return protocols::ProtocolKind::BenOr;
  if (name == "bracha") return protocols::ProtocolKind::Bracha;
  AA_REQUIRE(false, "campaign: unknown protocol '" + name +
                        "' (want reset|forgetful|benor|bracha)");
  return protocols::ProtocolKind::Reset;
}

std::optional<protocols::Thresholds> threshold_preset(const std::string& name,
                                                      int n, int t) {
  if (name == "default") return std::nullopt;
  if (name == "canonical") return protocols::canonical_thresholds(n, t);
  if (name == "relaxed") {
    return protocols::Thresholds{n - 2 * t, n / 2 + 1 + t, n / 2 + 1};
  }
  AA_REQUIRE(false, "campaign: unknown thresholds preset '" + name +
                        "' (want default|canonical|relaxed)");
  return std::nullopt;
}

/// The same named adversary menus report_probe and the examples use.
WindowAdversaryFactory window_factory(const std::string& name, int t) {
  AA_REQUIRE(name == "fair" || name == "silencer" || name == "split-keeper" ||
                 name == "reset-storm" || name == "random",
             "campaign: unknown window adversary '" + name +
                 "' (want fair|silencer|split-keeper|reset-storm|random)");
  return [name, t](std::uint64_t seed) -> std::unique_ptr<sim::WindowAdversary> {
    if (name == "fair") {
      return std::make_unique<adversary::FairWindowAdversary>();
    }
    if (name == "silencer") {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    if (name == "split-keeper") {
      return std::make_unique<adversary::SplitKeeperAdversary>();
    }
    if (name == "reset-storm") {
      return std::make_unique<adversary::ResetStormAdversary>(
          t, Rng(seed * 7 + 1));
    }
    return std::make_unique<adversary::RandomWindowAdversary>(
        t, 0.1, Rng(seed * 9 + 2));
  };
}

AsyncAdversaryFactory async_factory(const std::string& name, int t) {
  AA_REQUIRE(name == "random-async" || name == "fixed-crash" ||
                 name == "async-split",
             "campaign: unknown async adversary '" + name +
                 "' (want random-async|fixed-crash|async-split)");
  return [name, t](std::uint64_t seed) -> std::unique_ptr<sim::AsyncAdversary> {
    if (name == "random-async") {
      return std::make_unique<adversary::RandomAsyncScheduler>(
          Rng(seed * 3 + 1));
    }
    if (name == "fixed-crash") {
      std::vector<sim::ProcId> crash;
      for (int i = 0; i < t; ++i) crash.push_back(i);
      return std::make_unique<adversary::FixedCrashScheduler>(
          crash, Rng(seed * 5 + 3));
    }
    return std::make_unique<adversary::AsyncSplitKeeper>();
  };
}

/// Chaos presets for the `chaos_plan` sweep axis. "none" resolves to the
/// config's own chaos knobs — the default axis value is exactly the
/// pre-axis behavior — and the named presets inherit the config's censor
/// target and chaos seed so `chaos_censor_target` / `chaos_seed` still
/// steer them.
sim::FaultPlan chaos_plan_preset(const CampaignConfig& config,
                                 const std::string& name) {
  if (name == "none") return config.chaos;
  sim::FaultPlan fp;
  fp.censor_target = config.chaos.censor_target;
  fp.chaos_seed = config.chaos.chaos_seed;
  if (name == "censor-light") {
    fp.censor_prob = 0.25;
  } else if (name == "censor-heavy") {
    fp.censor_prob = 0.9;
  } else if (name == "resets") {
    fp.reset_prob = 0.5;
  } else if (name == "crashy") {
    fp.crash_prob = 0.2;
    fp.crash_budget = 1;
  } else {
    AA_REQUIRE(false,
               "campaign: unknown chaos_plan preset '" + name +
                   "' (want none|censor-light|censor-heavy|resets|crashy)");
  }
  return fp;
}

/// The async censor's fairness bound: how many consecutive times the
/// starving scheduler may defer the target before it must let the inner
/// adversary's choice stand. Small enough that censored campaigns still
/// terminate, large enough that the target is demonstrably starved.
constexpr int kCampaignStarveBound = 8;

/// Cell factories with the chaos layer and (outermost) the targeted
/// censor applied. A disabled plan and no censor target return the plain
/// factory object itself — the zero-drift guarantee is structural, not
/// behavioral.
WindowAdversaryFactory cell_window_factory(const CampaignConfig& config,
                                           const sim::FaultPlan& fp,
                                           const std::string& name, int t) {
  WindowAdversaryFactory f = window_factory(name, t);
  if (fp.enabled()) {
    f = [inner = std::move(f),
         fp](std::uint64_t seed) -> std::unique_ptr<sim::WindowAdversary> {
      return std::make_unique<adversary::ChaosWindowAdversary>(inner(seed),
                                                               fp, seed);
    };
  }
  if (config.censor_target >= 0) {
    const sim::ProcId target = config.censor_target;
    f = [inner = std::move(f),
         target](std::uint64_t seed) -> std::unique_ptr<sim::WindowAdversary> {
      return std::make_unique<adversary::TargetedCensorAdversary>(inner(seed),
                                                                  target);
    };
  }
  return f;
}

AsyncAdversaryFactory cell_async_factory(const CampaignConfig& config,
                                         const sim::FaultPlan& fp,
                                         const std::string& name, int t) {
  AsyncAdversaryFactory f = async_factory(name, t);
  if (fp.enabled()) {
    f = [inner = std::move(f),
         fp](std::uint64_t seed) -> std::unique_ptr<sim::AsyncAdversary> {
      return std::make_unique<adversary::ChaosAsyncScheduler>(inner(seed), fp,
                                                              seed);
    };
  }
  if (config.censor_target >= 0) {
    const sim::ProcId target = config.censor_target;
    f = [inner = std::move(f),
         target](std::uint64_t seed) -> std::unique_ptr<sim::AsyncAdversary> {
      return std::make_unique<adversary::StarvingAsyncScheduler>(
          inner(seed), target, kCampaignStarveBound);
    };
  }
  return f;
}

// ------------------------------------------------------------- JSON bits

void json_kv(std::string& out, const char* key, const std::string& value,
             bool last = false) {
  out += "  \"";
  out += key;
  out += "\": \"";
  out += value;
  out += last ? "\"\n" : "\",\n";
}

void json_kv_int(std::string& out, const char* key, long long value,
                 bool last = false) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld", value);
  out += "  \"";
  out += key;
  out += "\": ";
  out += buf;
  out += last ? "\n" : ",\n";
}

void json_kv_double(std::string& out, const char* key, double value,
                    bool last = false) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += "  \"";
  out += key;
  out += "\": ";
  out += buf;
  out += last ? "\n" : ",\n";
}

void json_report_fields(std::string& out, const MeasureOneReport& rep) {
  json_kv_int(out, "trials", rep.trials);
  json_kv_int(out, "agreement_violations", rep.agreement_violations);
  json_kv_int(out, "validity_violations", rep.validity_violations);
  json_kv_int(out, "decided_runs", rep.decided_runs);
  json_kv_int(out, "all_decided_runs", rep.all_decided_runs);
  json_kv_double(out, "mean_windows_to_first", rep.mean_windows_to_first);
  json_kv_double(out, "mean_chain_at_decision", rep.mean_chain_at_decision);
  out += "  \"violating_seeds\": [";
  for (std::size_t i = 0; i < rep.violating_seeds.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%" PRIu64, i ? "," : "",
                  rep.violating_seeds[i]);
    out += buf;
  }
  out += "]\n";
}

// ---------------------------------------------------------------- resume

/// Locate `"key":` in a JSON artifact and parse the integer after it.
/// Returns false on a missing key or malformed number — the caller treats
/// the artifact as invalid and recomputes the cell.
bool json_find_int(const std::string& text, const char* key, long long& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const char* begin = text.c_str() + pos + needle.size();
  char* end = nullptr;
  const long long v = std::strtoll(begin, &end, 10);
  if (end == begin) return false;
  out = v;
  return true;
}

/// Parse the `violating_seeds` array. Returns false if the array is absent
/// or the file is truncated before the closing bracket.
bool json_find_seeds(const std::string& text, std::vector<std::uint64_t>& out) {
  static constexpr const char kNeedle[] = "\"violating_seeds\": [";
  const std::size_t pos = text.find(kNeedle);
  if (pos == std::string::npos) return false;
  const char* p = text.c_str() + pos + (sizeof kNeedle - 1);
  out.clear();
  while (*p != ']') {
    if (*p == '\0') return false;  // truncated artifact
    if (*p == ',') ++p;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) return false;
    out.push_back(static_cast<std::uint64_t>(v));
    p = end;
  }
  return true;
}

/// Structural validity check for a cell's lens sidecar. The lens report is
/// not resumable from its artifact (LatencyAccumulator has no restore), so
/// resume can only accept a cell whose sidecar is already complete and
/// belongs to THIS cell: the file must exist, parse far enough to yield the
/// identity keys, match the cell's (n, t) and the config's trial count, and
/// end in the closing brace latency_report_json always emits — a truncated
/// write dies on that check. Anything else forces a recompute, which
/// rewrites the sidecar before the cell artifact.
bool lens_sidecar_valid(const CampaignConfig& config, const CampaignCell& cell,
                        const std::string& lens_path) {
  std::ifstream in(lens_path, std::ios::binary);
  if (!in.good()) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::size_t end = text.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  if (end == 0 || text[end - 1] != '}') return false;  // empty or truncated
  long long n = 0;
  long long t = 0;
  long long trials = 0;
  if (!json_find_int(text, "n", n) || !json_find_int(text, "t", t) ||
      !json_find_int(text, "trials", trials)) {
    return false;
  }
  if (text.find("\"senders\"") == std::string::npos) return false;
  return n == static_cast<long long>(cell.n) &&
         t == static_cast<long long>(cell.t) &&
         trials == static_cast<long long>(config.trials);
}

/// Restore `cell` from an existing artifact at `path`. The artifact is
/// accepted iff it parses, claims exactly config.trials trials, and — after
/// rebuilding the accumulator from its exact integer tallies — the cell
/// re-serializes to the SAME bytes (this cross-checks every identity field
/// against the current config, so stale or foreign artifacts are rejected
/// and recomputed). With the lens armed (`lens_path` non-empty) the cell's
/// lens sidecar must additionally pass lens_sidecar_valid — a byte-perfect
/// cell artifact with a missing, truncated, or foreign sidecar is NOT
/// resumable, because the lens numbers cannot be rebuilt from the cell
/// tallies alone. On success the tallies land in `acc_out` (the cell's
/// slot in the end-of-sweep index-order summary merge), making the resumed
/// summary byte-identical to an uninterrupted run's.
bool try_resume_cell(const CampaignConfig& config, CampaignCell& cell,
                     const std::string& path, const std::string& lens_path,
                     MeasureOneAccumulator& acc_out) {
  if (!lens_path.empty() && !lens_sidecar_valid(config, cell, lens_path)) {
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  long long trials = 0;
  long long agreement = 0;
  long long validity = 0;
  long long decided = 0;
  long long all_decided = 0;
  long long metric_sum = 0;
  std::vector<std::uint64_t> seeds;
  if (!json_find_int(text, "trials", trials) ||
      !json_find_int(text, "agreement_violations", agreement) ||
      !json_find_int(text, "validity_violations", validity) ||
      !json_find_int(text, "decided_runs", decided) ||
      !json_find_int(text, "all_decided_runs", all_decided) ||
      !json_find_int(text, "metric_sum", metric_sum) ||
      !json_find_seeds(text, seeds)) {
    return false;
  }
  if (trials != static_cast<long long>(config.trials)) return false;

  MeasureOneAccumulator acc;
  acc.restore(trials, agreement, validity, decided, all_decided, metric_sum,
              seeds);
  cell.metric_sum = metric_sum;
  cell.report = acc.finalize(config.model == CampaignModel::kAsync);
  if (campaign_cell_json(config, cell) != text) {
    cell.report = MeasureOneReport{};
    cell.metric_sum = 0;
    return false;
  }
  acc_out = std::move(acc);
  cell.resumed = true;
  return true;
}

std::string cell_file_path(const CampaignConfig& config, int index) {
  namespace fs = std::filesystem;
  return (fs::path(config.output_dir) /
          (config.name + "_cell_" + std::to_string(index) + ".json"))
      .string();
}

std::string lens_file_path(const CampaignConfig& config, int index) {
  namespace fs = std::filesystem;
  return (fs::path(config.output_dir) /
          (config.name + "_cell_" + std::to_string(index) + "_lens.json"))
      .string();
}

}  // namespace

CampaignConfig parse_campaign_config(const std::string& text) {
  CampaignConfig cfg;
  std::stringstream ss(text);
  std::string raw;
  int line = 0;
  std::map<std::string, int> seen;  // key -> first line, for duplicate errors
  while (std::getline(ss, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string stripped = trim(raw);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    AA_REQUIRE(eq != std::string::npos,
               "campaign config line " + std::to_string(line) +
                   ": expected 'key = value', got '" + stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    AA_REQUIRE(!key.empty() && !value.empty(),
               "campaign config line " + std::to_string(line) +
                   ": empty key or value");
    const auto [it, inserted] = seen.emplace(key, line);
    AA_REQUIRE(inserted, "campaign config line " + std::to_string(line) +
                             ": duplicate key '" + key + "' (first set on line " +
                             std::to_string(it->second) + ")");

    if (key == "name") {
      cfg.name = value;
    } else if (key == "model") {
      if (value == "window") cfg.model = CampaignModel::kWindow;
      else if (value == "async") cfg.model = CampaignModel::kAsync;
      else
        AA_REQUIRE(false, "campaign config line " + std::to_string(line) +
                              ": model must be window or async");
    } else if (key == "n") {
      cfg.n = parse_int_list(value, line);
    } else if (key == "t") {
      cfg.t = parse_int_list(value, line);
    } else if (key == "protocols") {
      cfg.protocols = split_list(value);
    } else if (key == "thresholds") {
      cfg.thresholds = split_list(value);
    } else if (key == "memory_k") {
      cfg.memory_k = parse_int_list(value, line);
    } else if (key == "adversaries") {
      cfg.adversaries = split_list(value);
    } else if (key == "chaos_plan") {
      cfg.chaos_plan = split_list(value);
    } else if (key == "lens") {
      cfg.lens = parse_bool(value, line);
    } else if (key == "censor_target") {
      cfg.censor_target = static_cast<int>(parse_int(value, line));
    } else if (key == "parallel_cells") {
      cfg.parallel_cells = parse_bool(value, line);
    } else if (key == "split") {
      cfg.split = parse_double(value, line);
    } else if (key == "trials") {
      cfg.trials = static_cast<int>(parse_int(value, line));
    } else if (key == "budget") {
      cfg.budget = parse_int(value, line);
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_int(value, line));
    } else if (key == "threads") {
      cfg.threads = static_cast<int>(parse_int(value, line));
    } else if (key == "chunk_size") {
      cfg.chunk_size = static_cast<int>(parse_int(value, line));
    } else if (key == "output_dir") {
      cfg.output_dir = value;
    } else if (key == "audit") {
      cfg.audit = parse_bool(value, line);
    } else if (key == "audit_every") {
      cfg.audit_every = static_cast<int>(parse_int(value, line));
    } else if (key == "resume") {
      cfg.resume = parse_bool(value, line);
    } else if (key == "cell_timeout_ms") {
      cfg.cell_timeout_ms = parse_int(value, line);
    } else if (key == "chaos_crash_prob") {
      cfg.chaos.crash_prob = parse_double(value, line);
    } else if (key == "chaos_crash_budget") {
      cfg.chaos.crash_budget = static_cast<int>(parse_int(value, line));
    } else if (key == "chaos_reset_prob") {
      cfg.chaos.reset_prob = parse_double(value, line);
    } else if (key == "chaos_censor_prob") {
      cfg.chaos.censor_prob = parse_double(value, line);
    } else if (key == "chaos_censor_target") {
      cfg.chaos.censor_target =
          static_cast<sim::ProcId>(parse_int(value, line));
    } else if (key == "chaos_duplicate_prob") {
      cfg.chaos.duplicate_row_prob = parse_double(value, line);
    } else if (key == "chaos_degenerate_prob") {
      cfg.chaos.degenerate_prob = parse_double(value, line);
    } else if (key == "chaos_seed") {
      cfg.chaos.chaos_seed = static_cast<std::uint64_t>(parse_int(value, line));
    } else {
      AA_REQUIRE(false, "campaign config line " + std::to_string(line) +
                            ": unknown key '" + key + "'");
    }
  }
  AA_REQUIRE(cfg.trials > 0, "campaign config: trials must be positive");
  AA_REQUIRE(cfg.budget > 0, "campaign config: budget must be positive");
  AA_REQUIRE(cfg.cell_timeout_ms >= 0,
             "campaign config: cell_timeout_ms must be non-negative");
  AA_REQUIRE(cfg.audit_every >= 0,
             "campaign config: audit_every must be non-negative");
  AA_REQUIRE(!cfg.n.empty() && !cfg.t.empty() && !cfg.protocols.empty() &&
                 !cfg.adversaries.empty() && !cfg.thresholds.empty() &&
                 !cfg.memory_k.empty() && !cfg.chaos_plan.empty(),
             "campaign config: every sweep axis needs at least one value");
  sim::validate_fault_plan(cfg.chaos);
  const bool default_plan =
      cfg.chaos_plan.size() == 1 && cfg.chaos_plan[0] == "none";
  AA_REQUIRE(default_plan || !cfg.chaos.enabled(),
             "campaign config: a chaos_plan axis and enabled chaos_* knobs "
             "are mutually exclusive (the presets would silently override "
             "the knobs)");
  for (const std::string& plan : cfg.chaos_plan) {
    // Rejects unknown preset names and validates each resolved plan.
    sim::validate_fault_plan(chaos_plan_preset(cfg, plan));
  }
  AA_REQUIRE(!cfg.parallel_cells || cfg.cell_timeout_ms == 0,
             "campaign config: parallel_cells and cell_timeout_ms are "
             "mutually exclusive (one watchdog token cannot bound "
             "concurrent cells)");
  if (cfg.censor_target >= 0) {
    for (const int n : cfg.n) {
      AA_REQUIRE(cfg.censor_target < n,
                 "campaign config: censor_target must be < every swept n");
    }
  }
  return cfg;
}

CampaignConfig load_campaign_config(const std::string& path) {
  std::ifstream in(path);
  AA_REQUIRE(in.good(), "campaign: cannot read config file '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_campaign_config(ss.str());
}

namespace {

/// One enumerated sweep cell awaiting compute (or restored by resume):
/// the cell's coordinates and spec, its resolved chaos preset, its output
/// paths, and its private accumulator slot for the index-order summary
/// merge. Slots make the merge order a function of the config alone, so
/// the sequential and parallel-cells schedules produce the same summary
/// bytes.
struct CellWork {
  CampaignCell cell;
  Experiment spec;
  sim::FaultPlan chaos;
  std::string path;       ///< cell artifact ("" = not writing)
  std::string lens_path;  ///< lens artifact ("" = not writing or no lens)
  MeasureOneAccumulator acc;
  bool done = false;
};

/// Run one cell's trials on the calling thread's chunk engine and fill its
/// slot. `inline_trials` is set on the parallel-cells path, where the cell
/// IS the pool job and must not re-shard onto the pool it occupies — chunk
/// boundaries depend only on (trials, chunk_size), so the report bytes are
/// unchanged. Returns false iff the check came back partial (cancelled).
bool compute_cell(const CampaignConfig& config, CampaignContext& ctx,
                  CellWork& w, bool inline_trials) {
  MeasureOneAccumulator acc;
  lens::LatencyAccumulator lat;
  lens::LatencyAccumulator* lat_ptr = config.lens ? &lat : nullptr;
  MeasureOneReport rep;
  if (config.model == CampaignModel::kWindow) {
    rep = check_measure_one_window(
        w.spec,
        cell_window_factory(config, w.chaos, w.cell.adversary, w.cell.t),
        config.trials, w.cell.seed0, ctx, &acc, lat_ptr, inline_trials);
  } else {
    rep = check_measure_one_async(
        w.spec,
        cell_async_factory(config, w.chaos, w.cell.adversary, w.cell.t),
        config.trials, w.cell.seed0, ctx, &acc, lat_ptr, inline_trials);
  }
  if (rep.trials != config.trials) return false;  // cancelled mid-cell
  // Report the accumulator's exact-division mean (identical fresh vs
  // resumed), and persist the integer metric sum so --resume can rebuild
  // it.
  w.acc = std::move(acc);
  w.cell.metric_sum = w.acc.metric_sum();
  w.cell.report = w.acc.finalize(config.model == CampaignModel::kAsync);
  if (config.lens) {
    w.cell.lens_report = lat.finalize(w.cell.t);
    // Lens artifact FIRST: resume keys on the cell artifact, so a cell
    // artifact on disk implies its lens sidecar landed too.
    if (!w.lens_path.empty()) {
      write_file_atomic(w.lens_path,
                        latency_report_json(w.cell.lens_report));
    }
  }
  if (!w.path.empty()) {
    write_file_atomic(w.path, campaign_cell_json(config, w.cell));
  }
  return true;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config,
                            CampaignContext& ctx) {
  namespace fs = std::filesystem;
  // Re-checked here (not just in the parser) because CLI overrides and
  // programmatic configs can combine the two after parsing.
  AA_REQUIRE(!config.parallel_cells || config.cell_timeout_ms == 0,
             "run_campaign: parallel_cells and cell_timeout_ms are "
             "mutually exclusive");
  CampaignResult result;
  result.config = config;

  const bool writing = !config.output_dir.empty();
  if (writing) fs::create_directories(config.output_dir);

  // Phase 1 — enumerate the sweep serially into canonical-order slots:
  // outermost n, innermost chaos_plan. The per-cell seed block
  // [seed + index*trials, ...) depends only on the config, so cell
  // identities — and every report — are thread-count-independent.
  std::vector<CellWork> work;
  int index = 0;
  for (const int n : config.n) {
    for (const int t : config.t) {
      for (const std::string& proto : config.protocols) {
        const protocols::ProtocolKind kind = protocol_kind(proto);
        for (const std::string& th_name : config.thresholds) {
          // memory_k is Forgetful's knob; other protocols run one cell.
          const std::size_t k_count =
              kind == protocols::ProtocolKind::Forgetful
                  ? config.memory_k.size()
                  : 1;
          for (std::size_t ki = 0; ki < k_count; ++ki) {
            const int memory_k = config.memory_k[ki];
            for (const std::string& adv : config.adversaries) {
              for (const std::string& plan_name : config.chaos_plan) {
                CellWork w;
                w.cell.index = index;
                w.cell.n = n;
                w.cell.t = t;
                w.cell.protocol = proto;
                w.cell.thresholds = th_name;
                w.cell.memory_k = memory_k;
                w.cell.adversary = adv;
                w.cell.chaos_plan = plan_name;
                w.cell.seed0 =
                    config.seed + static_cast<std::uint64_t>(index) *
                                      static_cast<std::uint64_t>(
                                          config.trials);

                w.spec.kind = kind;
                w.spec.inputs = protocols::split_inputs(n, config.split);
                w.spec.t = t;
                w.spec.budget = config.budget;
                w.spec.thresholds = threshold_preset(th_name, n, t);
                w.spec.memory_k = memory_k;
                w.spec.audit = config.audit;
                w.spec.audit_every = config.audit_every;

                w.chaos = chaos_plan_preset(config, plan_name);
                if (writing) {
                  w.path = cell_file_path(config, index);
                  if (config.lens) w.lens_path = lens_file_path(config, index);
                }
                work.push_back(std::move(w));
                ++index;
              }
            }
          }
        }
      }
    }
  }

  // Phase 2 — serial resume: restore whole cells from validated artifacts
  // into their slots before any compute is scheduled.
  if (config.resume && writing) {
    for (CellWork& w : work) {
      // aa-lint: clock-ok(throughput metric, sidecar-only output)
      const auto t0 = std::chrono::steady_clock::now();
      if (try_resume_cell(config, w.cell, w.path, w.lens_path, w.acc)) {
        w.done = true;
        // aa-lint: clock-ok(throughput metric, sidecar-only output)
        const auto t1 = std::chrono::steady_clock::now();
        w.cell.wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (w.cell.wall_ms > 0.0) {
          w.cell.trials_per_s =
              static_cast<double>(config.trials) * 1000.0 / w.cell.wall_ms;
        }
      }
    }
  }

  // Phase 3 — compute the remaining cells.
  if (config.parallel_cells && ctx.pool() != nullptr) {
    // Whole cells as pool jobs: each job runs its trials inline
    // (compute_cell inline_trials), write_file_atomic targets distinct
    // paths, and every result lands in the job's own slot — nothing is
    // shared between jobs but the pool and the per-worker scratch.
    // parse_campaign_config rejects cell_timeout_ms here, so there is no
    // watchdog and a check never comes back partial.
    WorkStealingPool::TaskGroup group(*ctx.pool());
    for (CellWork& w : work) {
      if (w.done) continue;
      group.submit([&config, &ctx, &w] {
        // aa-lint: clock-ok(throughput metric, sidecar-only output)
        const auto t0 = std::chrono::steady_clock::now();
        w.done = compute_cell(config, ctx, w, /*inline_trials=*/true);
        // aa-lint: clock-ok(throughput metric, sidecar-only output)
        const auto t1 = std::chrono::steady_clock::now();
        w.cell.wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (w.done && w.cell.wall_ms > 0.0) {
          w.cell.trials_per_s =
              static_cast<double>(config.trials) * 1000.0 / w.cell.wall_ms;
        }
      });
    }
    group.wait();
  } else {
    Watchdog watchdog;
    CancelToken& cancel = ctx.cancel_token();
    for (CellWork& w : work) {
      if (w.done) continue;
      // aa-lint: clock-ok(throughput metric, sidecar-only output)
      const auto t0 = std::chrono::steady_clock::now();
      // Up to two attempts — the retry doubles the watchdog deadline, so a
      // cell that merely straddled the timeout still lands (the recompute
      // is deterministic, only the wall clock differs).
      for (int attempt = 0; attempt < 2 && !w.done; ++attempt) {
        cancel.reset();
        if (config.cell_timeout_ms > 0) {
          watchdog.arm(cancel, std::chrono::milliseconds(
                                   config.cell_timeout_ms << attempt));
        }
        w.done = compute_cell(config, ctx, w, /*inline_trials=*/false);
        if (config.cell_timeout_ms > 0) watchdog.disarm();
      }
      cancel.reset();
      // aa-lint: clock-ok(throughput metric, sidecar-only output)
      const auto t1 = std::chrono::steady_clock::now();
      w.cell.wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (w.done && w.cell.wall_ms > 0.0) {
        w.cell.trials_per_s =
            static_cast<double>(config.trials) * 1000.0 / w.cell.wall_ms;
      }
    }
  }

  // Phase 4 — merge the summary in canonical index order (the accumulator
  // is exactly associative, but fixing the order anyway keeps every
  // schedule byte-identical by construction). Failed cells are excluded.
  MeasureOneAccumulator summary;
  for (CellWork& w : work) {
    w.cell.failed = !w.done;
    if (w.done) summary.merge(w.acc);
    result.cells.push_back(std::move(w.cell));
  }
  result.summary =
      summary.finalize(config.model == CampaignModel::kAsync);
  if (writing) {
    write_file_atomic((fs::path(config.output_dir) /
                       (config.name + "_summary.json"))
                          .string(),
                      campaign_summary_json(result));
    write_file_atomic((fs::path(config.output_dir) /
                       (config.name + "_timing.json"))
                          .string(),
                      campaign_timing_json(result));
  }
  return result;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  ParallelConfig par;
  par.threads = config.threads;
  par.chunk_size = config.chunk_size;
  CampaignContext ctx(par);
  return run_campaign(config, ctx);
}

std::string campaign_cell_json(const CampaignConfig& config,
                               const CampaignCell& cell) {
  std::string out = "{\n";
  json_kv(out, "campaign", config.name);
  json_kv(out, "model",
          config.model == CampaignModel::kWindow ? "window" : "async");
  json_kv_int(out, "cell", cell.index);
  json_kv_int(out, "n", cell.n);
  json_kv_int(out, "t", cell.t);
  json_kv(out, "protocol", cell.protocol);
  json_kv(out, "thresholds", cell.thresholds);
  json_kv_int(out, "memory_k", cell.memory_k);
  json_kv(out, "adversary", cell.adversary);
  // Lens-era axes appear ONLY when non-default, so pre-axis configs keep
  // byte-identical artifacts (and resume's re-serialization check keeps
  // accepting them).
  if (cell.chaos_plan != "none") json_kv(out, "chaos_plan", cell.chaos_plan);
  if (config.censor_target >= 0) {
    json_kv_int(out, "censor_target", config.censor_target);
  }
  json_kv_int(out, "seed0", static_cast<long long>(cell.seed0));
  json_kv_int(out, "budget", config.budget);
  json_kv_int(out, "metric_sum", cell.metric_sum);
  json_report_fields(out, cell.report);
  out += "}\n";
  return out;
}

std::string campaign_summary_json(const CampaignResult& result) {
  const CampaignConfig& config = result.config;
  std::string out = "{\n";
  json_kv(out, "campaign", config.name);
  json_kv(out, "model",
          config.model == CampaignModel::kWindow ? "window" : "async");
  json_kv_int(out, "cells", static_cast<long long>(result.cells.size()));
  json_kv_int(out, "trials_per_cell", config.trials);
  json_kv_int(out, "budget", config.budget);
  json_kv_int(out, "seed", static_cast<long long>(config.seed));
  out += "  \"cells_failed\": [";
  bool first = true;
  for (const CampaignCell& cell : result.cells) {
    if (!cell.failed) continue;
    if (!first) out += ",";
    out += std::to_string(cell.index);
    first = false;
  }
  out += "],\n";
  json_report_fields(out, result.summary);
  out += "}\n";
  return out;
}

std::string campaign_timing_json(const CampaignResult& result) {
  // Deliberately a SEPARATE document from the summary/cell artifacts:
  // wall-clock differs run to run and thread count to thread count, and
  // folding it into the identity surface would break the byte-identical
  // contract (threads 1 vs N diffs, resume's canonical re-serialization
  // check). CI diffs exclude *_timing.json for the same reason.
  const CampaignConfig& config = result.config;
  std::string out = "{\n";
  json_kv(out, "campaign", config.name);
  json_kv_int(out, "trials_per_cell", config.trials);
  double total_ms = 0.0;
  for (const CampaignCell& cell : result.cells) total_ms += cell.wall_ms;
  json_kv_double(out, "wall_ms_total", total_ms);
  out += "  \"cells\": [";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CampaignCell& cell = result.cells[i];
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"cell\": %d, \"wall_ms\": %.3f, "
                  "\"trials_per_s\": %.1f, \"resumed\": %s, \"failed\": %s}",
                  i ? "," : "", cell.index, cell.wall_ms, cell.trials_per_s,
                  cell.resumed ? "true" : "false",
                  cell.failed ? "true" : "false");
    out += buf;
  }
  out += result.cells.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void write_campaign_json(const CampaignResult& result,
                         const std::string& dir) {
  namespace fs = std::filesystem;
  AA_REQUIRE(!dir.empty(), "write_campaign_json: empty output directory");
  fs::create_directories(dir);
  for (const CampaignCell& cell : result.cells) {
    if (cell.failed) continue;  // no artifact may masquerade as a result
    // Lens sidecar first (same ordering contract as run_campaign). A
    // resumed cell carries no in-memory lens report; its sidecar already
    // exists from the run that computed it.
    if (result.config.lens && cell.lens_report.n > 0) {
      write_file_atomic(
          (fs::path(dir) / (result.config.name + "_cell_" +
                            std::to_string(cell.index) + "_lens.json"))
              .string(),
          latency_report_json(cell.lens_report));
    }
    write_file_atomic((fs::path(dir) / (result.config.name + "_cell_" +
                                        std::to_string(cell.index) + ".json"))
                          .string(),
                      campaign_cell_json(result.config, cell));
  }
  write_file_atomic(
      (fs::path(dir) / (result.config.name + "_summary.json")).string(),
      campaign_summary_json(result));
  write_file_atomic(
      (fs::path(dir) / (result.config.name + "_timing.json")).string(),
      campaign_timing_json(result));
}

void write_file_atomic(const std::string& path, const std::string& body) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  bool ok = false;
  {
    // aa-lint: write-ok(the atomic-write primitive itself)
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out.good()) {
      out << body;
      out.flush();
      ok = out.good();
    }
  }
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    AA_REQUIRE(false, "write_file_atomic: cannot write " + path);
  }
}

}  // namespace aa::core
