// Campaign engine: config-file-driven sweeps over the measure-one
// checkers, sharing ONE CampaignContext (work-stealing pool + per-worker
// Execution scratch) across every cell.
//
// A campaign is a cross product of sweep axes — n × t × protocol ×
// thresholds-preset × memory-K × adversary × chaos-plan — where each cell
// runs `trials`
// seeded checker trials under one model (window or async). Cell order,
// per-cell seed blocks, and the merged summary are functions of the config
// ALONE: the same config produces byte-identical per-cell reports and
// summary JSON at --threads 1 and --threads 8 (per-cell reports via the
// checker's fixed-chunk merge, the summary via the exactly-associative
// MeasureOneAccumulator — core/report.hpp).
//
// Config files are flat `key = value` text: one key per line, lists
// comma-separated, `#` starts a comment. See CampaignConfig for the keys
// and examples/campaign_smoke.cfg for a worked example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "sim/fault.hpp"

namespace aa::core {

/// Which checker a campaign's cells run.
enum class CampaignModel {
  kWindow,  ///< window model (§2–§4): check_measure_one_window
  kAsync,   ///< async crash model (§5): check_measure_one_async
};

/// Named-field campaign specification; field = config-file key.
/// Vector-valued fields are sweep axes (the campaign runs their cross
/// product), scalar fields apply to every cell.
struct CampaignConfig {
  std::string name = "campaign";  ///< label used in output file names
  CampaignModel model = CampaignModel::kWindow;  ///< `model = window|async`

  // ---- sweep axes ----
  std::vector<int> n = {8};                         ///< ring sizes
  std::vector<int> t = {1};                         ///< fault budgets
  std::vector<std::string> protocols = {"reset"};   ///< reset|forgetful|benor|bracha
  /// Threshold presets per cell: `default` (the protocol's own defaults),
  /// `canonical` (Theorem 4's canonical_thresholds(n, t)), `relaxed`
  /// (the bench T1 relaxed-T2 preset {n−2t, n/2+1+t, n/2+1}).
  std::vector<std::string> thresholds = {"default"};
  /// Forgetful's bounded-memory horizon values. Only ProtocolKind::
  /// Forgetful sweeps this axis; other protocols run its FIRST value only
  /// (no duplicate cells for a knob they ignore).
  std::vector<int> memory_k = {0};
  /// Adversary menu, by model: window — fair, silencer, split-keeper,
  /// reset-storm, random; async — random-async, fixed-crash, async-split.
  std::vector<std::string> adversaries = {"random"};
  /// Chaos-preset sweep axis (`chaos_plan = none, censor-heavy`), the
  /// INNERMOST axis (inside adversary). Presets: `none` (the config's own
  /// chaos_* knobs — the default axis value is therefore exactly the
  /// pre-axis behavior), `censor-light` / `censor-heavy` (probabilistic
  /// censorship of chaos_censor_target at 0.25 / 0.9 per row), `resets`
  /// (reset storms at 0.5 per window), `crashy` (one crash at 0.2 per
  /// window). A non-default axis is mutually exclusive with enabled
  /// chaos_* knobs — the presets would silently override them.
  std::vector<std::string> chaos_plan = {"none"};

  // ---- per-cell scalars ----
  double split = 0.5;        ///< input pattern: fraction of 1-inputs
  int trials = 40;           ///< trials per cell
  std::int64_t budget = 600; ///< max windows (window) / deliveries (async)
  std::uint64_t seed = 1000; ///< cell c uses seeds seed + c*trials ...

  // ---- execution / output ----
  int threads = 1;        ///< pool width (0 = hardware concurrency)
  int chunk_size = 16;    ///< trials per work chunk (fixed merge grain)
  std::string output_dir; ///< JSON output directory ("" = don't write)

  // ---- robustness (chaos harness) ----
  /// Run the engine invariant auditor at every window boundary of every
  /// trial (`audit = true`). Opt-in: O(arena) per window.
  bool audit = false;
  /// Sampled auditing (`audit_every = N`): audit every Nth window boundary
  /// (0 = off). The cheap always-on variant for Release campaigns — the
  /// auditor only throws on corruption, never changes a report, and the
  /// sampled boundaries are a function of the window index alone (so the
  /// determinism contract is untouched). `audit = true` overrides.
  int audit_every = 0;
  /// Fault-injection knobs (`chaos_crash_prob`, `chaos_crash_budget`,
  /// `chaos_reset_prob`, `chaos_censor_prob`, `chaos_censor_target`,
  /// `chaos_duplicate_prob`, `chaos_degenerate_prob`, `chaos_seed`). When
  /// enabled() the cell adversaries are wrapped in the chaos layer; when
  /// disabled (the default) the factories are untouched — zero drift.
  sim::FaultPlan chaos;
  /// Per-cell wall-clock timeout in milliseconds (0 = none). A watchdog
  /// cancels the cell's remaining chunks once it elapses; the cell is
  /// retried once with a doubled timeout and marked failed if the retry
  /// also times out. Failed cells are skipped by the summary merge and
  /// listed in its `cells_failed` array.
  std::int64_t cell_timeout_ms = 0;
  /// Resume a killed sweep (`resume = true` or --resume): a cell whose
  /// output JSON exists and byte-matches its canonical re-serialization is
  /// restored (exact tallies) instead of recomputed, so the resumed
  /// summary is byte-identical to an uninterrupted run's. With the lens
  /// armed the cell's lens sidecar must ALSO be present, structurally
  /// complete, and match the cell's (n, t) and trial count — the lens
  /// numbers are not rebuildable from the cell tallies, so a cell with a
  /// missing/truncated/stale sidecar is recomputed even when its own
  /// artifact byte-matches.
  bool resume = false;

  // ---- latency & accountability lens ----
  /// Capture the per-message lens (Experiment::lens) for every cell and
  /// fold each trial's WindowTrace into a per-cell LatencyAccumulator.
  /// With output_dir set, each cell writes <name>_cell_<i>_lens.json
  /// (core::latency_report_json) BEFORE its cell artifact, so a cell
  /// artifact on disk implies its lens sidecar landed too. The lens never
  /// changes the cell/summary byte-identity surface.
  bool lens = false;
  /// Wrap every cell adversary in the targeted-censorship layer
  /// (adversary/censor.hpp): window model — TargetedCensorAdversary
  /// suppressing this sender wherever Definition 1 leaves slack; async —
  /// StarvingAsyncScheduler deferring its deliveries within a fairness
  /// bound. −1 (the default) disables. The wrapper is OUTERMOST (it
  /// censors whatever the chaos layer planned).
  int censor_target = -1;
  /// Distribute whole CELLS across the context's work-stealing pool
  /// instead of sharding each cell's trials. Cell jobs run their trials
  /// inline (checker `inline_trials`), so chunk boundaries — and every
  /// artifact byte — match the sequential order exactly. Mutually
  /// exclusive with cell_timeout_ms (one watchdog token cannot bound
  /// concurrent cells).
  bool parallel_cells = false;
};

/// Parse config text (`key = value` lines, `#` comments). Unknown keys and
/// malformed values throw with a line-numbered message.
[[nodiscard]] CampaignConfig parse_campaign_config(const std::string& text);

/// Read and parse a config file.
[[nodiscard]] CampaignConfig load_campaign_config(const std::string& path);

/// One finished sweep cell: its axis coordinates plus the checker report.
struct CampaignCell {
  int index = 0;  ///< position in canonical sweep order
  int n = 0;
  int t = 0;
  std::string protocol;
  std::string thresholds;
  int memory_k = 0;
  std::string adversary;
  /// Chaos preset this cell ran under (the `chaos_plan` axis; "none" means
  /// the config's own chaos_* knobs). Serialized into the cell JSON only
  /// when not "none", so default-axis configs keep their pre-axis bytes.
  std::string chaos_plan = "none";
  std::uint64_t seed0 = 0;  ///< first trial seed of this cell's block
  MeasureOneReport report;
  /// Exact integer decision-metric sum (MeasureOneAccumulator::metric_sum)
  /// — serialized so --resume restores the summary to identical bytes.
  std::int64_t metric_sum = 0;
  bool failed = false;   ///< timed out twice; excluded from the summary
  bool resumed = false;  ///< restored from an existing artifact
  /// Wall-clock spent computing (or restoring) this cell, and the derived
  /// trials/second throughput. Timing is intrinsically nondeterministic,
  /// so it is NEVER part of the cell/summary JSON (the byte-identity
  /// surface) — it is reported in the separate <name>_timing.json sidecar
  /// (campaign_timing_json), which resume and the cross-thread-count
  /// diffs deliberately ignore.
  double wall_ms = 0.0;
  double trials_per_s = 0.0;
  /// Finalized lens report for this cell (CampaignConfig::lens): per-sender
  /// confirmation latency, censorship scores, blame lists. Left empty for
  /// RESUMED cells — their <name>_cell_<i>_lens.json artifact was written
  /// when the cell was first computed and is not re-derived.
  lens::LatencyReport lens_report;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<CampaignCell> cells;  ///< canonical sweep order
  /// Accumulator-merged totals over every cell (finalized: seeds sorted,
  /// one exact division for the mean) — the byte-identity surface.
  MeasureOneReport summary;
};

/// Run every cell of `config`'s sweep on the shared context. Cells are
/// enumerated in canonical order (n, t, protocol, thresholds, memory_k,
/// adversary, chaos_plan nesting, outermost first); by default each cell's
/// trials shard onto ctx's pool, while config.parallel_cells instead
/// schedules whole cells as pool jobs (trials inline) — either way every
/// cell report, lens artifact, and the summary are byte-identical to the
/// serial order. With config.output_dir set, every completed cell's JSON
/// is written ATOMICALLY (temp + rename) as soon as it finishes and the
/// summary at the end — a SIGKILL mid-sweep leaves only whole-cell
/// artifacts, which config.resume restores on the next run.
/// config.cell_timeout_ms bounds each cell's wall clock via a watchdog on
/// ctx.cancel_token().
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config,
                                          CampaignContext& ctx);

/// Convenience: build a context from config.threads / config.chunk_size.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

/// The merged-summary JSON document (stable key order, %.17g doubles) —
/// what `campaign` writes to <output_dir>/<name>_summary.json.
[[nodiscard]] std::string campaign_summary_json(const CampaignResult& result);

/// One cell's JSON document (same conventions).
[[nodiscard]] std::string campaign_cell_json(const CampaignConfig& config,
                                             const CampaignCell& cell);

/// The timing sidecar document (<output_dir>/<name>_timing.json): one row
/// per cell with wall_ms and trials_per_s, plus the sweep's total
/// wall-clock. Kept OUT of the cell/summary artifacts so the byte-identity
/// surface (threads 1 vs N, fresh vs resumed) stays timing-free.
[[nodiscard]] std::string campaign_timing_json(const CampaignResult& result);

/// Write one JSON file per cell plus the merged summary under `dir`
/// (created if missing): <name>_cell_<index>.json, <name>_summary.json.
/// Every file is written atomically (write_file_atomic). Failed cells get
/// no artifact (a stale valid artifact must not mask a failed recompute).
void write_campaign_json(const CampaignResult& result, const std::string& dir);

/// Crash-safe text-file write: stream `body` to `<path>.tmp`, flush, then
/// rename over `path`. Readers never observe a torn file — they see the
/// old content or the new content, nothing in between. Throws on I/O
/// errors (the temp file is removed on failure).
void write_file_atomic(const std::string& path, const std::string& body);

}  // namespace aa::core
