#include "core/checker.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace aa::core {

namespace {

/// Verdict of one trial, stripped to what the report needs. `metric` is the
/// model's decision-cost measure (windows to first decision / chain length).
struct TrialOutcome {
  bool agreement = true;
  bool validity = true;
  bool decided = false;
  bool all_decided = false;
  double metric = 0.0;
};

/// Shared trial engine: run `trial(seed0 + i)` for i in [0, trials), sharded
/// into fixed chunks across `par` workers. Partial tallies are merged
/// serially in chunk order, so the report — including the floating-point
/// metric mean — is bit-identical at any thread count. Returns the report
/// with the merged metric mean in `mean_windows_to_first`.
template <typename RunTrial>
MeasureOneReport run_measure_one(int trials, std::uint64_t seed0,
                                 const ParallelConfig& par,
                                 const RunTrial& trial) {
  struct Partial {
    int agreement_violations = 0;
    int validity_violations = 0;
    int decided_runs = 0;
    int all_decided_runs = 0;
    RunningStats metric;
    std::vector<std::uint64_t> violating_seeds;
  };
  std::vector<Partial> parts(
      static_cast<std::size_t>(chunk_count(trials, par)));

  parallel_for_chunks(
      trials, par,
      [&](int ci, std::int64_t begin, std::int64_t end) {
        Partial& p = parts[static_cast<std::size_t>(ci)];
        for (std::int64_t i = begin; i < end; ++i) {
          const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
          const TrialOutcome o = trial(seed);
          bool bad = false;
          if (!o.agreement) {
            ++p.agreement_violations;
            bad = true;
          }
          if (!o.validity) {
            ++p.validity_violations;
            bad = true;
          }
          if (bad) p.violating_seeds.push_back(seed);
          if (o.decided) {
            ++p.decided_runs;
            p.metric.add(o.metric);
          }
          if (o.all_decided) ++p.all_decided_runs;
        }
      });

  MeasureOneReport rep;
  rep.trials = trials;
  RunningStats metric;
  for (const Partial& p : parts) {
    rep.agreement_violations += p.agreement_violations;
    rep.validity_violations += p.validity_violations;
    rep.decided_runs += p.decided_runs;
    rep.all_decided_runs += p.all_decided_runs;
    metric.merge(p.metric);
    rep.violating_seeds.insert(rep.violating_seeds.end(),
                               p.violating_seeds.begin(),
                               p.violating_seeds.end());
  }
  std::sort(rep.violating_seeds.begin(), rep.violating_seeds.end());
  rep.mean_windows_to_first = metric.mean();
  return rep;
}

}  // namespace

MeasureOneReport check_measure_one_window(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const WindowAdversaryFactory& make_adversary, int trials,
    std::int64_t max_windows, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th, const ParallelConfig& par) {
  // One spec for every trial; Runner::run_window is const and thread-safe,
  // so the workers share it.
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_windows;
  spec.thresholds = th;
  spec.stop = StopCondition::kAllDecided;
  const Runner runner(std::move(spec));
  return run_measure_one(trials, seed0, par, [&](std::uint64_t seed) {
    auto adv = make_adversary(seed);
    const WindowRunResult r = runner.run_window(*adv, seed);
    TrialOutcome o;
    o.agreement = r.agreement;
    o.validity = r.validity;
    o.decided = r.decided;
    o.all_decided = r.all_decided;
    o.metric = static_cast<double>(r.windows_to_first);
    return o;
  });
}

MeasureOneReport check_measure_one_async(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const AsyncAdversaryFactory& make_adversary, int trials,
    std::int64_t max_deliveries, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th, const ParallelConfig& par) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_deliveries;
  spec.thresholds = th;
  spec.stop = StopCondition::kAllDecided;
  const Runner runner(std::move(spec));
  MeasureOneReport rep =
      run_measure_one(trials, seed0, par, [&](std::uint64_t seed) {
        auto adv = make_adversary(seed);
        const AsyncRunOutcome r = runner.run_async(*adv, seed);
        TrialOutcome o;
        o.agreement = r.agreement;
        o.validity = r.validity;
        o.decided = r.decided;
        o.all_decided = r.all_decided;
        o.metric = static_cast<double>(r.chain_at_decision);
        return o;
      });
  // The async decision metric is the message-chain length. It also stays in
  // mean_windows_to_first, which older callers read.
  rep.mean_chain_at_decision = rep.mean_windows_to_first;
  return rep;
}

}  // namespace aa::core
