#include "core/checker.hpp"

#include "util/stats.hpp"

namespace aa::core {

MeasureOneReport check_measure_one_window(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const WindowAdversaryFactory& make_adversary, int trials,
    std::int64_t max_windows, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th) {
  MeasureOneReport rep;
  rep.trials = trials;
  RunningStats windows;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    auto adv = make_adversary(seed);
    const WindowRunResult r = run_window_experiment(
        kind, inputs, t, *adv, max_windows, seed, th, /*until_all=*/true);
    bool bad = false;
    if (!r.agreement) {
      ++rep.agreement_violations;
      bad = true;
    }
    if (!r.validity) {
      ++rep.validity_violations;
      bad = true;
    }
    if (bad) rep.violating_seeds.push_back(seed);
    if (r.decided) {
      ++rep.decided_runs;
      windows.add(static_cast<double>(r.windows_to_first));
    }
    if (r.all_decided) ++rep.all_decided_runs;
  }
  rep.mean_windows_to_first = windows.mean();
  return rep;
}

MeasureOneReport check_measure_one_async(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const AsyncAdversaryFactory& make_adversary, int trials,
    std::int64_t max_deliveries, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th) {
  MeasureOneReport rep;
  rep.trials = trials;
  RunningStats chains;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    auto adv = make_adversary(seed);
    const AsyncRunOutcome r = run_async_experiment(
        kind, inputs, t, *adv, max_deliveries, seed, th, /*until_all=*/true);
    bool bad = false;
    if (!r.agreement) {
      ++rep.agreement_violations;
      bad = true;
    }
    if (!r.validity) {
      ++rep.validity_violations;
      bad = true;
    }
    if (bad) rep.violating_seeds.push_back(seed);
    if (r.decided) {
      ++rep.decided_runs;
      chains.add(static_cast<double>(r.chain_at_decision));
    }
    if (r.all_decided) ++rep.all_decided_runs;
  }
  rep.mean_windows_to_first = chains.mean();
  return rep;
}

}  // namespace aa::core
