#include "core/checker.hpp"

#include <algorithm>
#include <utility>

#include "util/stats.hpp"

namespace aa::core {

namespace {

/// Shared trial engine: run `trial(seed0 + i, scratch)` for i in
/// [0, trials), sharded into fixed chunks across the context's pool.
/// Partial tallies are merged serially in chunk order, so the report —
/// including the floating-point metric mean, which keeps the historical
/// chunk-order RunningStats fold — is bit-identical at any thread count.
/// When `acc_out` is non-null every verdict is also folded into it (the
/// exactly-associative campaign path; see core/report.hpp for why the two
/// aggregations coexist).
template <typename RunTrial>
MeasureOneReport run_measure_one(int trials, std::uint64_t seed0,
                                 CampaignContext& ctx,
                                 MeasureOneAccumulator* acc_out,
                                 lens::LatencyAccumulator* lat_out,
                                 bool inline_trials, const RunTrial& trial) {
  struct Partial {
    RunningStats metric;
    MeasureOneAccumulator acc;
    lens::LatencyAccumulator lat;
  };
  const ParallelConfig& par = ctx.parallel();
  std::vector<Partial> parts(
      static_cast<std::size_t>(chunk_count(trials, par)));

  // Cooperative cancellation (campaign cell timeouts): once the context's
  // token is cancelled, remaining chunks are skipped entirely. Finished
  // chunks keep their tallies, so the merged (partial) report is still a
  // deterministic function of which chunks completed — and completeness is
  // detectable as rep.trials < trials.
  CancelToken& cancel = ctx.cancel_token();
  const auto body = [&](int ci, std::int64_t begin, std::int64_t end) {
    if (cancel.cancelled()) return;
    Partial& p = parts[static_cast<std::size_t>(ci)];
    WorkerScratch& scratch = ctx.worker_scratch();
    for (std::int64_t i = begin; i < end; ++i) {
      const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
      const TrialVerdict v = trial(seed, scratch);
      p.acc.add(seed, v);
      if (v.decided) p.metric.add(static_cast<double>(v.metric));
      if (lat_out != nullptr && scratch.trace) p.lat.add(*scratch.trace);
    }
  };
  if (inline_trials) {
    // The whole check is already one task on the shared pool (the
    // parallel-cells campaign path): run every chunk on THIS thread, in
    // order. Spawning a nested pool here would hand other threads the
    // same per-worker scratch this task is using. Chunk boundaries are
    // identical to the pooled schedule, so the merged bytes match.
    const std::int64_t chunk =
        std::max(1, par.chunk_size);  // chunk_count's partition
    for (int ci = 0; ci < static_cast<int>(parts.size()); ++ci) {
      const std::int64_t begin = static_cast<std::int64_t>(ci) * chunk;
      body(ci, begin, std::min<std::int64_t>(begin + chunk, trials));
    }
  } else if (ctx.pool() != nullptr) {
    parallel_for_chunks(trials, par, body, *ctx.pool());
  } else {
    parallel_for_chunks(trials, par, body);
  }

  // Chunk-order merges. The accumulator part is order-independent anyway;
  // the RunningStats part is exactly the historical reduction tree.
  MeasureOneAccumulator acc;
  RunningStats metric;
  for (const Partial& p : parts) {
    acc.merge(p.acc);
    metric.merge(p.metric);
  }
  MeasureOneReport rep = acc.finalize();
  rep.mean_windows_to_first = metric.mean();
  rep.mean_chain_at_decision = 0.0;
  if (acc_out != nullptr) acc_out->merge(acc);
  if (lat_out != nullptr) {
    for (const Partial& p : parts) lat_out->merge(p.lat);
  }
  return rep;
}

/// The checkers always run trials to the all-decided stop condition.
Experiment checker_spec(Experiment spec) {
  spec.stop = StopCondition::kAllDecided;
  return spec;
}

}  // namespace

MeasureOneReport check_measure_one_window(
    const Experiment& spec, const WindowAdversaryFactory& make_adversary,
    int trials, std::uint64_t seed0, CampaignContext& ctx,
    MeasureOneAccumulator* acc, lens::LatencyAccumulator* lat,
    bool inline_trials) {
  // One spec for every trial; Runner::run_window is const and thread-safe,
  // so the workers share it.
  Experiment s = checker_spec(spec);
  if (lat != nullptr) s.lens = true;
  const Runner runner(s);
  return run_measure_one(
      trials, seed0, ctx, acc, lat, inline_trials,
      [&](std::uint64_t seed, WorkerScratch& scratch) {
        auto adv = make_adversary(seed);
        const WindowRunResult r = runner.run_window(*adv, seed, scratch);
        TrialVerdict v;
        v.agreement = r.agreement;
        v.validity = r.validity;
        v.decided = r.decided;
        v.all_decided = r.all_decided;
        v.metric = r.windows_to_first;
        return v;
      });
}

MeasureOneReport check_measure_one_async(
    const Experiment& spec, const AsyncAdversaryFactory& make_adversary,
    int trials, std::uint64_t seed0, CampaignContext& ctx,
    MeasureOneAccumulator* acc, lens::LatencyAccumulator* lat,
    bool inline_trials) {
  Experiment s = checker_spec(spec);
  if (lat != nullptr) s.lens = true;
  const Runner runner(s);
  MeasureOneReport rep = run_measure_one(
      trials, seed0, ctx, acc, lat, inline_trials,
      [&](std::uint64_t seed, WorkerScratch& scratch) {
        auto adv = make_adversary(seed);
        const AsyncRunOutcome r = runner.run_async(*adv, seed, scratch);
        TrialVerdict v;
        v.agreement = r.agreement;
        v.validity = r.validity;
        v.decided = r.decided;
        v.all_decided = r.all_decided;
        v.metric = r.chain_at_decision;
        return v;
      });
  // The async decision metric is the message-chain length. It also stays in
  // mean_windows_to_first, which older callers read.
  rep.mean_chain_at_decision = rep.mean_windows_to_first;
  return rep;
}

MeasureOneReport check_measure_one_window(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const WindowAdversaryFactory& make_adversary, int trials,
    std::int64_t max_windows, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th, const ParallelConfig& par) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_windows;
  spec.thresholds = th;
  CampaignContext ctx(par);
  return check_measure_one_window(spec, make_adversary, trials, seed0, ctx);
}

MeasureOneReport check_measure_one_async(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const AsyncAdversaryFactory& make_adversary, int trials,
    std::int64_t max_deliveries, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th, const ParallelConfig& par) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_deliveries;
  spec.thresholds = th;
  CampaignContext ctx(par);
  return check_measure_one_async(spec, make_adversary, trials, seed0, ctx);
}

}  // namespace aa::core
