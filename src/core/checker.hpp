// Monte-Carlo measure-one checkers (Definitions 2 and 3 of the paper).
//
// Measure-one correctness and termination are probability-one statements
// over infinite executions; a simulator can falsify them (find a reachable
// violation) and can accumulate statistical evidence for them. These
// checkers run many independent seeded executions under a caller-supplied
// adversary factory and report every violation with its seed, so any
// failure is exactly reproducible.
//
// Two call shapes per checker:
//   * The CampaignContext shape is the primary engine: trials shard onto
//     the context's long-lived work-stealing pool and every worker reuses
//     its per-context Execution scratch across trials AND across checks —
//     build one context per campaign and pass it to every check.
//   * The ParallelConfig shape is the legacy convenience wrapper: it
//     builds a throwaway context per call (the pre-campaign cost model).
// Both produce bit-identical reports at any thread count: chunk boundaries
// and the partial-merge order depend only on (trials, chunk_size), see
// util/thread_pool.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "core/report.hpp"
#include "util/thread_pool.hpp"

namespace aa::core {

/// Fresh adversary per trial (adversaries may be stateful).
using WindowAdversaryFactory =
    std::function<std::unique_ptr<sim::WindowAdversary>(std::uint64_t seed)>;
using AsyncAdversaryFactory =
    std::function<std::unique_ptr<sim::AsyncAdversary>(std::uint64_t seed)>;

/// Window-model checker on a shared campaign context: `trials` runs of
/// `spec` (budget = max acceptable windows; the stop condition is forced
/// to kAllDecided), seeds seed0, seed0+1, ... Trials are sharded across
/// the context's pool per ctx.parallel(); the report is bit-identical at
/// any thread count. When `acc` is non-null the per-trial verdicts are
/// ALSO folded into it (exactly-associative campaign aggregation — the
/// report itself keeps the legacy chunk-order statistics fold).
///
/// When `lat` is non-null the lens is forced on (Experiment::lens) and
/// every trial's WindowTrace is folded into it — the same associative
/// discipline, so the latency report is bit-identical at any thread count
/// too. The MeasureOneReport NEVER depends on the lens being on.
///
/// `inline_trials` runs every chunk on the calling thread even when the
/// context has a pool: the parallel-cells campaign path schedules whole
/// cells as pool jobs, and a cell job must not re-shard onto the pool it
/// occupies. Chunk boundaries and merge order depend only on
/// (trials, chunk_size), so the report bytes do not change.
[[nodiscard]] MeasureOneReport check_measure_one_window(
    const Experiment& spec, const WindowAdversaryFactory& make_adversary,
    int trials, std::uint64_t seed0, CampaignContext& ctx,
    MeasureOneAccumulator* acc = nullptr,
    lens::LatencyAccumulator* lat = nullptr, bool inline_trials = false);

/// Async crash-model checker, same shape (spec.budget = max deliveries).
[[nodiscard]] MeasureOneReport check_measure_one_async(
    const Experiment& spec, const AsyncAdversaryFactory& make_adversary,
    int trials, std::uint64_t seed0, CampaignContext& ctx,
    MeasureOneAccumulator* acc = nullptr,
    lens::LatencyAccumulator* lat = nullptr, bool inline_trials = false);

/// Legacy wrapper: unpacked parameters, throwaway context per call.
[[nodiscard]] MeasureOneReport check_measure_one_window(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const WindowAdversaryFactory& make_adversary, int trials,
    std::int64_t max_windows, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th = std::nullopt,
    const ParallelConfig& par = {});

/// Legacy wrapper, same shape.
[[nodiscard]] MeasureOneReport check_measure_one_async(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const AsyncAdversaryFactory& make_adversary, int trials,
    std::int64_t max_deliveries, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th = std::nullopt,
    const ParallelConfig& par = {});

}  // namespace aa::core
