// Monte-Carlo measure-one checkers (Definitions 2 and 3 of the paper).
//
// Measure-one correctness and termination are probability-one statements
// over infinite executions; a simulator can falsify them (find a reachable
// violation) and can accumulate statistical evidence for them. These
// checkers run many independent seeded executions under a caller-supplied
// adversary factory and report every violation with its seed, so any
// failure is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "util/thread_pool.hpp"

namespace aa::core {

/// Fresh adversary per trial (adversaries may be stateful).
using WindowAdversaryFactory =
    std::function<std::unique_ptr<sim::WindowAdversary>(std::uint64_t seed)>;
using AsyncAdversaryFactory =
    std::function<std::unique_ptr<sim::AsyncAdversary>(std::uint64_t seed)>;

struct MeasureOneReport {
  int trials = 0;
  int agreement_violations = 0;
  int validity_violations = 0;
  int decided_runs = 0;        ///< trials where some processor decided
  int all_decided_runs = 0;    ///< trials where all live processors decided
  /// Mean windows to the first decision, over deciding runs (window model).
  /// For compatibility the async checker also stores its mean chain length
  /// here; prefer mean_chain_at_decision for async results.
  double mean_windows_to_first = 0.0;
  /// Mean message-chain length at the first decision, over deciding runs
  /// (async model; 0 for window-model reports).
  double mean_chain_at_decision = 0.0;
  std::vector<std::uint64_t> violating_seeds;  ///< ascending

  [[nodiscard]] bool clean() const noexcept {
    return agreement_violations == 0 && validity_violations == 0;
  }
};

/// Window-model checker: `trials` runs of `kind` on `inputs` with budget t,
/// each for at most `max_windows` windows, seeds seed0, seed0+1, ...
/// Trials are sharded across `par.threads` workers; the report is
/// bit-identical at any thread count (see util/thread_pool.hpp).
[[nodiscard]] MeasureOneReport check_measure_one_window(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const WindowAdversaryFactory& make_adversary, int trials,
    std::int64_t max_windows, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th = std::nullopt,
    const ParallelConfig& par = {});

/// Async crash-model checker, same shape.
[[nodiscard]] MeasureOneReport check_measure_one_async(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    const AsyncAdversaryFactory& make_adversary, int trials,
    std::int64_t max_deliveries, std::uint64_t seed0,
    std::optional<protocols::Thresholds> th = std::nullopt,
    const ParallelConfig& par = {});

}  // namespace aa::core
