#include "core/exhaustive.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <queue>
#include <set>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace aa::core {

namespace {

/// Dedup key: the encoded point plus nothing else (x/out fully determine
/// the abstract state).
using Key = std::vector<int>;

Key key_of(const AbstractConfig& c) {
  Key k;
  k.reserve(2 * c.x.size());
  k.insert(k.end(), c.x.begin(), c.x.end());
  k.insert(k.end(), c.out.begin(), c.out.end());
  return k;
}

bool check_invariants(const AbstractConfig& c,
                      const std::array<bool, 2>& valid_values,
                      ExhaustiveReport& report) {
  bool has[2] = {false, false};
  for (int o : c.out) {
    if (o == 0 || o == 1) {
      has[o] = true;
      if (!valid_values[static_cast<std::size_t>(o)]) {
        report.validity_ok = false;
      }
    }
  }
  if (has[0] && has[1]) report.agreement_ok = false;
  if (!report.clean() && !report.violation) report.violation = c;
  return report.clean();
}

/// All subset indicator vectors of [0,n) with popcount in [lo, hi].
std::vector<std::vector<bool>> subsets_with_popcount(int n, int lo, int hi) {
  AA_REQUIRE(n <= 20, "exhaustive checker: n too large to enumerate subsets");
  std::vector<std::vector<bool>> out;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int pc = __builtin_popcount(mask);
    if (pc < lo || pc > hi) continue;
    std::vector<bool> ind(static_cast<std::size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) ind[static_cast<std::size_t>(i)] = true;
    }
    out.push_back(std::move(ind));
  }
  return out;
}

/// All successors of `c` in the canonical enumeration order (delivery sets,
/// then coin vectors, then reset sets). Pure: safe to call concurrently for
/// distinct frontier configurations.
std::vector<AbstractConfig> expand_config(
    const AbstractConfig& c, int t, const protocols::Thresholds& th,
    const std::vector<std::vector<bool>>& s_choices,
    const std::vector<std::vector<bool>>& r_choices) {
  const int n = c.n();
  std::vector<AbstractConfig> out;
  for (const auto& in_s : s_choices) {
    // Which processors flip coins is a function of (c, S) only; the
    // reset set R never affects the tally. Enumerate coin vectors once
    // per (c, S) and apply every R to each outcome.
    const std::vector<bool> flips = coin_flippers(c, in_s, th);
    std::vector<int> flip_ids;
    for (int i = 0; i < n; ++i) {
      if (flips[static_cast<std::size_t>(i)]) flip_ids.push_back(i);
    }
    AA_CHECK(flip_ids.size() <= 20,
             "exhaustive checker: too many simultaneous coins");
    const std::uint32_t coin_combos = 1u
                                      << static_cast<int>(flip_ids.size());
    for (std::uint32_t coins = 0; coins < coin_combos; ++coins) {
      const auto coin_for = [&](int proc) {
        for (std::size_t j = 0; j < flip_ids.size(); ++j) {
          if (flip_ids[j] == proc)
            return (coins >> j) & 1u ? 1 : 0;
        }
        AA_CHECK(false, "coin requested for non-flipping processor");
        return 0;
      };
      for (const auto& in_r : r_choices) {
        out.push_back(
            apply_abstract_window_det(c, in_r, in_s, th, t, coin_for));
      }
    }
  }
  return out;
}

ExhaustiveReport explore(int t, const protocols::Thresholds& th,
                         const AbstractConfig& start,
                         const std::array<bool, 2>& valid_values,
                         const ExhaustiveOptions& options,
                         CampaignContext& ctx) {
  const int n = start.n();
  ExhaustiveReport report;

  const std::vector<std::vector<bool>> s_choices =
      subsets_with_popcount(n, n - t, n);
  const std::vector<std::vector<bool>> r_choices =
      subsets_with_popcount(n, 0, t);

  std::set<Key> seen;
  std::vector<AbstractConfig> frontier{start};
  seen.insert(key_of(start));
  report.configs_explored = 1;
  if (!check_invariants(start, valid_values, report)) return report;

  // Successor generation (the apply_abstract_window_det sweep) runs in
  // parallel over blocks of frontier configurations; dedup, invariant
  // checks, and the transition count happen in a serial merge pass that
  // walks candidates in exactly the order the serial loop would generate
  // them. Early exits (violation found, budget exhausted) fire at the same
  // candidate regardless of thread count, so reports are bit-identical —
  // parallelism only ever wastes a little generation work past the exit.
  // Peak memory is one block of expanded successor lists (block size =
  // worker count, the minimum that keeps every worker busy); the context's
  // long-lived pool is shared across all blocks, depths — and checks.
  ParallelConfig gen = ctx.parallel();
  gen.chunk_size = 1;  // one frontier configuration is already a big job
  const int block = gen.resolved_threads();

  for (int depth = 0; depth < options.max_depth; ++depth) {
    std::vector<AbstractConfig> next_frontier;
    const int frontier_size = static_cast<int>(frontier.size());
    for (int base = 0; base < frontier_size; base += block) {
      const int count = std::min(block, frontier_size - base);
      std::vector<std::vector<AbstractConfig>> produced(
          static_cast<std::size_t>(count));
      const auto body = [&](int, std::int64_t begin, std::int64_t end) {
        for (std::int64_t fi = begin; fi < end; ++fi) {
          produced[static_cast<std::size_t>(fi)] = expand_config(
              frontier[static_cast<std::size_t>(base + fi)], t, th,
              s_choices, r_choices);
        }
      };
      if (ctx.pool() != nullptr) {
        parallel_for_chunks(count, gen, body, *ctx.pool());
      } else {
        parallel_for_chunks(count, gen, body);
      }
      for (std::vector<AbstractConfig>& candidates : produced) {
        for (AbstractConfig& next : candidates) {
          ++report.transitions;
          Key k = key_of(next);
          if (!seen.insert(std::move(k)).second) continue;
          ++report.configs_explored;
          if (!check_invariants(next, valid_values, report)) return report;
          next_frontier.push_back(std::move(next));
          if (seen.size() >= options.max_configs) {
            report.budget_exhausted = true;
            report.depth_completed = depth;
            return report;
          }
        }
      }
    }
    frontier = std::move(next_frontier);
    report.depth_completed = depth + 1;
    if (frontier.empty()) {
      // Closed under transitions: every deeper level is explored vacuously.
      report.depth_completed = options.max_depth;
      break;
    }
  }
  return report;
}

}  // namespace

ExhaustiveReport exhaustive_check(int t, const protocols::Thresholds& th,
                                  const std::vector<int>& inputs,
                                  const ExhaustiveOptions& options,
                                  CampaignContext& ctx) {
  std::array<bool, 2> valid{false, false};
  for (int b : inputs) {
    AA_REQUIRE(b == 0 || b == 1, "exhaustive_check: inputs must be bits");
    valid[static_cast<std::size_t>(b)] = true;
  }
  return explore(t, th, initial_config(inputs), valid, options, ctx);
}

ExhaustiveReport exhaustive_check(int t, const protocols::Thresholds& th,
                                  const std::vector<int>& inputs,
                                  const ExhaustiveOptions& options) {
  CampaignContext ctx(options.parallel);
  return exhaustive_check(t, th, inputs, options, ctx);
}

ExhaustiveReport exhaustive_check_from(int t, const protocols::Thresholds& th,
                                       const AbstractConfig& start,
                                       const std::array<bool, 2>& valid_values,
                                       const ExhaustiveOptions& options,
                                       CampaignContext& ctx) {
  return explore(t, th, start, valid_values, options, ctx);
}

ExhaustiveReport exhaustive_check_from(int t, const protocols::Thresholds& th,
                                       const AbstractConfig& start,
                                       const std::array<bool, 2>& valid_values,
                                       const ExhaustiveOptions& options) {
  CampaignContext ctx(options.parallel);
  return exhaustive_check_from(t, th, start, valid_values, options, ctx);
}

}  // namespace aa::core
