// Exhaustive model checker for the §3 algorithm at small n.
//
// Monte-Carlo checkers (core/checker.hpp) accumulate statistical evidence;
// this module proves/refutes the Definition 2 safety invariants for a tiny
// instance OUTRIGHT by breadth-first exploration of EVERY execution of the
// abstract lockstep model over a bounded number of acceptable windows:
// every delivery set S (|S| ≥ n − t), every reset set R (|R| ≤ t), and
// every coin outcome — the canonical common-S window family the §4 proofs
// quantify over.
//
// Checked invariants on every reachable configuration:
//   * agreement — no configuration holds both a 0 and a 1 output;
//   * validity  — every written output equals some processor's input.
//
// A violation is returned as a concrete witness configuration. The checker
// is also the negative-testing tool: feed it broken thresholds (or a
// crafted start configuration) and it FINDS the bad execution.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/zsets.hpp"
#include "protocols/thresholds.hpp"
#include "util/thread_pool.hpp"

namespace aa::core {

class CampaignContext;  // core/experiment.hpp

struct ExhaustiveOptions {
  int max_depth = 3;                  ///< windows to unroll
  std::size_t max_configs = 200000;   ///< exploration budget (dedup'd)
  /// Successor generation (the expensive part) is sharded across these
  /// workers; dedup + invariant checking stays serial in canonical order,
  /// so the report is bit-identical at any thread count. Ignored by the
  /// CampaignContext overloads, which shard per the context's config.
  ParallelConfig parallel = {};
};

struct ExhaustiveReport {
  std::int64_t configs_explored = 0;  ///< distinct configurations visited
  std::int64_t transitions = 0;       ///< windows applied (incl. duplicates)
  int depth_completed = 0;            ///< full BFS levels finished
  bool budget_exhausted = false;      ///< hit max_configs before max_depth
  bool agreement_ok = true;
  bool validity_ok = true;
  std::optional<AbstractConfig> violation;  ///< first witness, if any

  [[nodiscard]] bool clean() const noexcept {
    return agreement_ok && validity_ok;
  }
};

/// Explore every execution from the initial configuration given by
/// `inputs`. Validity is judged against `inputs`. The CampaignContext
/// overload shards successor generation onto the context's long-lived
/// pool (the campaign path); the other builds a throwaway context from
/// options.parallel per call. Reports are bit-identical either way.
[[nodiscard]] ExhaustiveReport exhaustive_check(
    int t, const protocols::Thresholds& th, const std::vector<int>& inputs,
    const ExhaustiveOptions& options, CampaignContext& ctx);
[[nodiscard]] ExhaustiveReport exhaustive_check(
    int t, const protocols::Thresholds& th, const std::vector<int>& inputs,
    const ExhaustiveOptions& options = {});

/// Explore from an arbitrary start configuration (reachability of `start`
/// is the caller's claim). `valid_values[v]` marks output value v as
/// permitted.
[[nodiscard]] ExhaustiveReport exhaustive_check_from(
    int t, const protocols::Thresholds& th, const AbstractConfig& start,
    const std::array<bool, 2>& valid_values, const ExhaustiveOptions& options,
    CampaignContext& ctx);
[[nodiscard]] ExhaustiveReport exhaustive_check_from(
    int t, const protocols::Thresholds& th, const AbstractConfig& start,
    const std::array<bool, 2>& valid_values,
    const ExhaustiveOptions& options = {});

}  // namespace aa::core
