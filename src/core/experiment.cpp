#include "core/experiment.hpp"

#include <utility>

#include "util/check.hpp"

namespace aa::core {

bool check_agreement(const sim::Execution& exec) {
  return exec.outputs_agree();
}

bool check_validity(const sim::Execution& exec,
                    const std::vector<int>& inputs) {
  bool have[2] = {false, false};
  for (int b : inputs) {
    AA_REQUIRE(b == 0 || b == 1, "check_validity: inputs must be bits");
    have[b] = true;
  }
  for (sim::ProcId p = 0; p < exec.n(); ++p) {
    const int o = exec.output(p);
    if (o == sim::kBot) continue;
    if (!have[o]) return false;
  }
  return true;
}

CampaignContext::CampaignContext(const ParallelConfig& par) : par_(par) {
  const int threads = par_.resolved_threads();
  if (threads > 1) pool_ = std::make_unique<WorkStealingPool>(threads);
  // One slot per pool worker plus a dedicated trailing slot for the
  // (single) off-pool caller thread that helps execute in TaskGroup::wait.
  scratch_.resize(static_cast<std::size_t>(threads) + 1);
}

WorkerScratch& CampaignContext::worker_scratch() noexcept {
  const int i = pool_ ? pool_->worker_index() : -1;
  return scratch_[i >= 0 ? static_cast<std::size_t>(i) : scratch_.size() - 1];
}

Runner::Runner(Experiment spec) : spec_(std::move(spec)) {
  AA_REQUIRE(!spec_.inputs.empty(), "Runner: experiment needs inputs");
  AA_REQUIRE(spec_.t >= 0, "Runner: t must be non-negative");
  AA_REQUIRE(spec_.budget >= 0, "Runner: budget must be non-negative");
  AA_REQUIRE(spec_.memory_k >= 0, "Runner: memory_k must be non-negative");
  AA_REQUIRE(spec_.audit_every >= 0,
             "Runner: audit_every must be non-negative");
  if (spec_.byzantine) {
    const int n = static_cast<int>(spec_.inputs.size());
    AA_REQUIRE(spec_.byzantine->count >= 0 && spec_.byzantine->count <= n,
               "Runner: byzantine count out of [0, n]");
  }
}

sim::Execution& Runner::prepare(
    WorkerScratch& scratch, std::vector<std::unique_ptr<sim::Process>> procs,
    std::uint64_t seed) const {
  sim::ExecutionConfig cfg;
  cfg.audit = spec_.audit;
  cfg.audit_every = spec_.audit_every;
  if (spec_.lens) {
    // The trace lives in the scratch so it survives the run; the engine
    // re-arms it (begin_trial) for every trial.
    if (!scratch.trace) scratch.trace.emplace();
    cfg.lens = &*scratch.trace;
  }
  if (scratch.exec) {
    scratch.exec->reset(std::move(procs), seed, cfg);
  } else {
    scratch.exec.emplace(std::move(procs), seed, cfg);
  }
  return *scratch.exec;
}

WindowRunResult Runner::run_window(sim::WindowAdversary& adversary,
                                   std::uint64_t seed) const {
  WorkerScratch scratch;
  return run_window(adversary, seed, scratch);
}

WindowRunResult Runner::run_window(sim::WindowAdversary& adversary,
                                   std::uint64_t seed,
                                   WorkerScratch& scratch) const {
  AA_REQUIRE(!spec_.byzantine,
             "Runner::run_window is the honest path — use run_byzantine");
  sim::Execution& exec = prepare(
      scratch,
      protocols::make_processes(spec_.kind, spec_.t, spec_.inputs,
                                spec_.thresholds, spec_.memory_k),
      seed);
  const std::int64_t windows =
      spec_.stop == StopCondition::kAllDecided
          ? sim::run_until_all_decided(exec, adversary, spec_.t, spec_.budget)
          : sim::run_until_first_decision(exec, adversary, spec_.t,
                                          spec_.budget);

  WindowRunResult r;
  r.windows_total = windows;
  r.steps = exec.step_count();
  r.total_resets = exec.total_resets();
  r.decided = exec.decided_count() > 0;
  r.all_decided = exec.all_live_decided();
  if (const auto first = exec.first_decision()) {
    r.decision = first->value;
    r.windows_to_first = first->window + 1;  // decision inside window w ⇒ w+1 windows
  }
  r.agreement = check_agreement(exec);
  r.validity = check_validity(exec, spec_.inputs);
  return r;
}

AsyncRunOutcome Runner::run_async(sim::AsyncAdversary& adversary,
                                  std::uint64_t seed) const {
  WorkerScratch scratch;
  return run_async(adversary, seed, scratch);
}

AsyncRunOutcome Runner::run_async(sim::AsyncAdversary& adversary,
                                  std::uint64_t seed,
                                  WorkerScratch& scratch) const {
  AA_REQUIRE(!spec_.byzantine,
             "Runner::run_async is the honest path — use run_byzantine");
  sim::Execution& exec = prepare(
      scratch,
      protocols::make_processes(spec_.kind, spec_.t, spec_.inputs,
                                spec_.thresholds, spec_.memory_k),
      seed);
  const sim::AsyncRunResult rr =
      sim::run_async(exec, adversary, spec_.t, spec_.budget,
                     spec_.stop == StopCondition::kAllDecided);

  AsyncRunOutcome r;
  r.deliveries = rr.deliveries;
  r.crashes = rr.crashes;
  r.hit_limit = rr.hit_step_limit;
  r.decided = exec.decided_count() > 0;
  r.all_decided = exec.all_live_decided();
  if (const auto first = exec.first_decision()) {
    r.decision = first->value;
    r.chain_at_decision = first->chain;
  }
  r.agreement = check_agreement(exec);
  r.validity = check_validity(exec, spec_.inputs);
  return r;
}

ByzantineRunResult Runner::run_byzantine(sim::WindowAdversary& adversary,
                                         std::uint64_t seed) const {
  WorkerScratch scratch;
  return run_byzantine(adversary, seed, scratch);
}

ByzantineRunResult Runner::run_byzantine(sim::WindowAdversary& adversary,
                                         std::uint64_t seed,
                                         WorkerScratch& scratch) const {
  const ByzantineSpec byz = spec_.byzantine.value_or(ByzantineSpec{});
  const int n = static_cast<int>(spec_.inputs.size());
  sim::Execution& exec = prepare(
      scratch,
      protocols::make_byzantine_processes(spec_.kind, spec_.t, spec_.inputs,
                                          byz.count, byz.strategy,
                                          seed ^ 0xb52b52b52ULL,
                                          spec_.thresholds),
      seed);
  for (const sim::ProcId p : byz.pre_crashed) exec.crash(p);

  ByzantineRunResult r;
  auto honest_done = [&] {
    for (sim::ProcId p = byz.count; p < n; ++p) {
      if (!exec.crashed(p) && exec.output(p) == sim::kBot) return false;
    }
    return true;
  };
  std::int64_t w = 0;
  while (w < spec_.budget && !honest_done()) {
    sim::run_acceptable_window(exec, adversary, spec_.t);
    ++w;
  }
  r.windows_total = w;

  bool have[2] = {false, false};
  for (sim::ProcId p = byz.count; p < n; ++p) {
    const int b = spec_.inputs[static_cast<std::size_t>(p)];
    have[b] = true;
  }
  int seen = sim::kBot;
  r.honest_all_decided = true;
  for (sim::ProcId p = byz.count; p < n; ++p) {
    // Same exemption as honest_done(): a crashed honest processor owes no
    // output, so its kBot must not count as "not all decided".
    if (exec.crashed(p)) continue;
    const int o = exec.output(p);
    if (o == sim::kBot) {
      r.honest_all_decided = false;
      continue;
    }
    ++r.honest_decided;
    if (!have[o]) r.honest_validity = false;
    if (seen == sim::kBot) seen = o;
    else if (seen != o) r.honest_agreement = false;
  }
  return r;
}

}  // namespace aa::core
