// Experiment + Runner: the declarative experiment API.
//
// An Experiment is a named-field specification of one agreement experiment —
// protocol kind, inputs, fault budget, step/window budget, thresholds, stop
// condition, and (optionally) a Byzantine corruption — everything the old
// positional run_window_experiment / run_async_experiment /
// run_byzantine_window_experiment trio threaded through long parameter
// lists. A Runner executes the spec against an adversary, deterministically
// in the seed. One spec can be reused across many seeded runs (the Runner
// is immutable and its run methods are const and thread-safe), which is how
// the measure-one checkers shard trials across workers.
//
// The legacy run_*_experiment free functions survive in core/harness.hpp as
// thin wrappers over this API.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/byzantine.hpp"
#include "protocols/factory.hpp"
#include "protocols/thresholds.hpp"
#include "sim/async.hpp"
#include "sim/window.hpp"

namespace aa::core {

/// When a run stops (before the budget runs out).
enum class StopCondition {
  kFirstDecision,  ///< stop once some processor wrote its output
  kAllDecided,     ///< stop once every live (honest) processor has
};

/// Byzantine corruption riding on top of the adversary's budget: the first
/// `count` processors lie per `strategy`; `pre_crashed` processors are
/// crashed before the first window (crash+Byzantine hybrid schedules).
struct ByzantineSpec {
  int count = 0;
  protocols::ByzantineStrategy strategy =
      protocols::ByzantineStrategy::Equivocate;
  std::vector<sim::ProcId> pre_crashed;
};

/// Declarative experiment specification (named fields; see file comment).
/// `budget` counts acceptable windows in the window model and receiving
/// steps (deliveries) in the async crash model.
struct Experiment {
  protocols::ProtocolKind kind = protocols::ProtocolKind::Reset;
  std::vector<int> inputs;
  int t = 0;
  std::int64_t budget = 0;
  std::optional<protocols::Thresholds> thresholds;
  StopCondition stop = StopCondition::kFirstDecision;
  std::optional<ByzantineSpec> byzantine;
};

/// Outcome of one window-model run.
struct WindowRunResult {
  bool decided = false;            ///< some processor wrote its output
  bool all_decided = false;        ///< every live processor wrote its output
  int decision = sim::kBot;        ///< first decided value
  std::int64_t windows_to_first = -1;  ///< windows before the first decision
  std::int64_t windows_total = 0;  ///< windows actually run
  std::int64_t steps = 0;          ///< fine-grained steps taken
  std::int64_t total_resets = 0;
  bool agreement = true;           ///< no two outputs conflict
  bool validity = true;            ///< every output equals some input
};

/// Outcome of one async (crash-model) run.
struct AsyncRunOutcome {
  bool decided = false;
  bool all_decided = false;  ///< every live processor decided
  int decision = sim::kBot;
  std::int64_t deliveries = 0;
  std::int64_t chain_at_decision = -1;  ///< message-chain length (§5 metric)
  std::int64_t crashes = 0;
  bool hit_limit = false;
  bool agreement = true;
  bool validity = true;
};

/// Outcome of a run with Byzantine (value-lying) processors; the verdicts
/// quantify over HONEST, NON-CRASHED processors only (ids ≥ byzantine.count
/// that never crashed — a crashed processor owes no output).
struct ByzantineRunResult {
  int honest_decided = 0;        ///< live honest processors with outputs
  bool honest_all_decided = false;
  bool honest_agreement = true;  ///< no two honest outputs conflict
  bool honest_validity = true;   ///< honest outputs ∈ honest input values
  std::int64_t windows_total = 0;
};

/// Agreement / validity verdicts for a finished execution.
[[nodiscard]] bool check_agreement(const sim::Execution& exec);
[[nodiscard]] bool check_validity(const sim::Execution& exec,
                                  const std::vector<int>& inputs);

/// Executes an Experiment spec. Immutable; every run method is const,
/// deterministic in `seed`, and safe to call concurrently from multiple
/// threads (each run builds its own Execution).
class Runner {
 public:
  explicit Runner(Experiment spec);

  [[nodiscard]] const Experiment& spec() const noexcept { return spec_; }

  /// Window model (§2–§4): honest processes vs a window adversary with
  /// reset budget spec.t, for at most spec.budget acceptable windows.
  /// Requires spec.byzantine to be unset — use run_byzantine for that.
  [[nodiscard]] WindowRunResult run_window(sim::WindowAdversary& adversary,
                                           std::uint64_t seed) const;

  /// Async crash model (§5): honest processes vs an async adversary with
  /// crash budget spec.t, for at most spec.budget receiving steps.
  /// Requires spec.byzantine to be unset.
  [[nodiscard]] AsyncRunOutcome run_async(sim::AsyncAdversary& adversary,
                                          std::uint64_t seed) const;

  /// Window model with the spec's Byzantine corruption applied (treats an
  /// unset spec.byzantine as count = 0, i.e. all-honest). Always runs until
  /// every live honest processor decided or the budget elapses — the
  /// honest-verdict analogue of StopCondition::kAllDecided.
  [[nodiscard]] ByzantineRunResult run_byzantine(
      sim::WindowAdversary& adversary, std::uint64_t seed) const;

 private:
  Experiment spec_;
};

}  // namespace aa::core
