// Experiment + Runner: the declarative experiment API.
//
// An Experiment is a named-field specification of one agreement experiment —
// protocol kind, inputs, fault budget, step/window budget, thresholds, stop
// condition, and (optionally) a Byzantine corruption — everything the old
// positional run_window_experiment / run_async_experiment /
// run_byzantine_window_experiment trio threaded through long parameter
// lists. A Runner executes the spec against an adversary, deterministically
// in the seed. One spec can be reused across many seeded runs (the Runner
// is immutable and its run methods are const and thread-safe), which is how
// the measure-one checkers shard trials across workers.
//
// The legacy run_*_experiment free functions survive in core/harness.hpp as
// thin wrappers over this API.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lens/trace.hpp"
#include "protocols/byzantine.hpp"
#include "protocols/factory.hpp"
#include "protocols/thresholds.hpp"
#include "sim/async.hpp"
#include "sim/window.hpp"
#include "util/thread_pool.hpp"

namespace aa::core {

/// When a run stops (before the budget runs out).
enum class StopCondition {
  kFirstDecision,  ///< stop once some processor wrote its output
  kAllDecided,     ///< stop once every live (honest) processor has
};

/// Byzantine corruption riding on top of the adversary's budget: the first
/// `count` processors lie per `strategy`; `pre_crashed` processors are
/// crashed before the first window (crash+Byzantine hybrid schedules).
struct ByzantineSpec {
  int count = 0;
  protocols::ByzantineStrategy strategy =
      protocols::ByzantineStrategy::Equivocate;
  std::vector<sim::ProcId> pre_crashed;
};

/// Declarative experiment specification (named fields; see file comment).
/// `budget` counts acceptable windows in the window model and receiving
/// steps (deliveries) in the async crash model.
struct Experiment {
  protocols::ProtocolKind kind = protocols::ProtocolKind::Reset;
  std::vector<int> inputs;
  int t = 0;
  std::int64_t budget = 0;
  std::optional<protocols::Thresholds> thresholds;
  StopCondition stop = StopCondition::kFirstDecision;
  std::optional<ByzantineSpec> byzantine;
  /// Bounded-memory knob for ProtocolKind::Forgetful (tallied-round
  /// look-ahead horizon; 0 = unbounded). Ignored by the other protocols.
  int memory_k = 0;
  /// Run the engine invariant auditor (sim::Execution::audit) at every
  /// window boundary. Opt-in: O(arena slots) per window.
  bool audit = false;
  /// Sampled auditing: audit every Nth window boundary (0 = off). Cheap
  /// enough for always-on invariant checking in Release campaigns; `audit`
  /// overrides it to every-window. Never affects a report — the auditor
  /// only throws on corruption.
  int audit_every = 0;
  /// Latency & accountability lens (lens/trace.hpp): when set, every run
  /// streams publish/deliver/suppress/decision events into the worker's
  /// WindowTrace (WorkerScratch::trace; read it after the run returns).
  /// The scratch-free run overloads capture into a run-local scratch that
  /// dies with the call, so combine the lens with the scratch overloads.
  /// Off by default; the lens never changes a MeasureOneReport.
  bool lens = false;
};

/// Outcome of one window-model run.
struct WindowRunResult {
  bool decided = false;            ///< some processor wrote its output
  bool all_decided = false;        ///< every live processor wrote its output
  int decision = sim::kBot;        ///< first decided value
  std::int64_t windows_to_first = -1;  ///< windows before the first decision
  std::int64_t windows_total = 0;  ///< windows actually run
  std::int64_t steps = 0;          ///< fine-grained steps taken
  std::int64_t total_resets = 0;
  bool agreement = true;           ///< no two outputs conflict
  bool validity = true;            ///< every output equals some input
};

/// Outcome of one async (crash-model) run.
struct AsyncRunOutcome {
  bool decided = false;
  bool all_decided = false;  ///< every live processor decided
  int decision = sim::kBot;
  std::int64_t deliveries = 0;
  std::int64_t chain_at_decision = -1;  ///< message-chain length (§5 metric)
  std::int64_t crashes = 0;
  bool hit_limit = false;
  bool agreement = true;
  bool validity = true;
};

/// Outcome of a run with Byzantine (value-lying) processors; the verdicts
/// quantify over HONEST, NON-CRASHED processors only (ids ≥ byzantine.count
/// that never crashed — a crashed processor owes no output).
struct ByzantineRunResult {
  int honest_decided = 0;        ///< live honest processors with outputs
  bool honest_all_decided = false;
  bool honest_agreement = true;  ///< no two honest outputs conflict
  bool honest_validity = true;   ///< honest outputs ∈ honest input values
  std::int64_t windows_total = 0;
};

/// Agreement / validity verdicts for a finished execution.
[[nodiscard]] bool check_agreement(const sim::Execution& exec);
[[nodiscard]] bool check_validity(const sim::Execution& exec,
                                  const std::vector<int>& inputs);

/// Per-worker reusable run state. A Runner run method given a WorkerScratch
/// rebuilds the scratch Execution in place (sim::Execution::reset) instead
/// of constructing a fresh one, so a worker that keeps its scratch across
/// trials — and across checks — reaches a steady state where a trial
/// allocates little beyond the process objects. Not thread-safe: one
/// scratch per worker thread (see CampaignContext).
struct WorkerScratch {
  std::optional<sim::Execution> exec;
  /// Per-worker lens capture arena (Experiment::lens). Re-armed by every
  /// prepared run; read it AFTER the run returns and BEFORE the worker's
  /// next trial overwrites it.
  std::optional<lens::WindowTrace> trace;
};

/// Shared execution context for a campaign: the parallel configuration, a
/// long-lived work-stealing pool (when the config wants more than one
/// thread), and one WorkerScratch per thread that can execute work — the
/// pool's workers plus the caller (TaskGroup::wait has the calling thread
/// help run chunks). Build ONE context and thread it through every checker
/// / exhaustive / campaign call; the pool spawn/join cycle per check is
/// exactly the overhead that flattened the benches' parallel speedup.
///
/// Thread-safety: worker_scratch() hands out distinct slots to distinct
/// pool workers and a dedicated slot to off-pool callers, so at most ONE
/// off-pool thread may be executing chunks at a time (the normal case: the
/// single campaign driver thread).
class CampaignContext {
 public:
  explicit CampaignContext(const ParallelConfig& par);

  [[nodiscard]] const ParallelConfig& parallel() const noexcept {
    return par_;
  }
  /// The shared pool, or nullptr when the config resolves to one thread.
  [[nodiscard]] WorkStealingPool* pool() noexcept { return pool_.get(); }

  /// The calling thread's scratch slot: pool worker i gets slot i, any
  /// other thread the extra caller slot.
  [[nodiscard]] WorkerScratch& worker_scratch() noexcept;

  /// Cooperative cancellation flag polled by the checkers at chunk
  /// boundaries (see run_measure_one): once cancelled, remaining chunks
  /// are skipped and the check returns a partial report (trials < asked).
  /// The campaign runner arms a Watchdog against this token to bound each
  /// cell's wall-clock time; reset() it before reusing the context.
  [[nodiscard]] CancelToken& cancel_token() noexcept { return cancel_; }

 private:
  ParallelConfig par_;
  std::unique_ptr<WorkStealingPool> pool_;  ///< null when serial
  std::vector<WorkerScratch> scratch_;      ///< pool workers + 1 caller slot
  CancelToken cancel_;
};

/// Executes an Experiment spec. Immutable; every run method is const,
/// deterministic in `seed`, and safe to call concurrently from multiple
/// threads (each run builds its own Execution).
class Runner {
 public:
  explicit Runner(Experiment spec);

  [[nodiscard]] const Experiment& spec() const noexcept { return spec_; }

  /// Window model (§2–§4): honest processes vs a window adversary with
  /// reset budget spec.t, for at most spec.budget acceptable windows.
  /// Requires spec.byzantine to be unset — use run_byzantine for that.
  [[nodiscard]] WindowRunResult run_window(sim::WindowAdversary& adversary,
                                           std::uint64_t seed) const;

  /// Async crash model (§5): honest processes vs an async adversary with
  /// crash budget spec.t, for at most spec.budget receiving steps.
  /// Requires spec.byzantine to be unset.
  [[nodiscard]] AsyncRunOutcome run_async(sim::AsyncAdversary& adversary,
                                          std::uint64_t seed) const;

  /// Window model with the spec's Byzantine corruption applied (treats an
  /// unset spec.byzantine as count = 0, i.e. all-honest). Always runs until
  /// every live honest processor decided or the budget elapses — the
  /// honest-verdict analogue of StopCondition::kAllDecided.
  [[nodiscard]] ByzantineRunResult run_byzantine(
      sim::WindowAdversary& adversary, std::uint64_t seed) const;

  // ---- execution-reuse overloads (campaign hot path) ----
  //
  // Same results, bit for bit, as the overloads above — the run executes in
  // `scratch.exec`, rebuilt in place via sim::Execution::reset — but a
  // worker that passes the same scratch every trial skips the per-trial
  // arena/map/ring growth entirely once warm.

  [[nodiscard]] WindowRunResult run_window(sim::WindowAdversary& adversary,
                                           std::uint64_t seed,
                                           WorkerScratch& scratch) const;
  [[nodiscard]] AsyncRunOutcome run_async(sim::AsyncAdversary& adversary,
                                          std::uint64_t seed,
                                          WorkerScratch& scratch) const;
  [[nodiscard]] ByzantineRunResult run_byzantine(
      sim::WindowAdversary& adversary, std::uint64_t seed,
      WorkerScratch& scratch) const;

 private:
  /// Rebuild (or first-build) the scratch Execution for `seed` with this
  /// spec's processes.
  sim::Execution& prepare(WorkerScratch& scratch,
                          std::vector<std::unique_ptr<sim::Process>> procs,
                          std::uint64_t seed) const;

  Experiment spec_;
};

}  // namespace aa::core
