#include "core/harness.hpp"

namespace aa::core {

WindowRunResult run_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, std::optional<protocols::Thresholds> th,
    bool until_all_decided) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_windows;
  spec.thresholds = th;
  spec.stop = until_all_decided ? StopCondition::kAllDecided
                                : StopCondition::kFirstDecision;
  return Runner(std::move(spec)).run_window(adversary, seed);
}

AsyncRunOutcome run_async_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::AsyncAdversary& adversary, std::int64_t max_deliveries,
    std::uint64_t seed, std::optional<protocols::Thresholds> th,
    bool until_all_decided) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_deliveries;
  spec.thresholds = th;
  spec.stop = until_all_decided ? StopCondition::kAllDecided
                                : StopCondition::kFirstDecision;
  return Runner(std::move(spec)).run_async(adversary, seed);
}

ByzantineRunResult run_byzantine_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    int byz_count, protocols::ByzantineStrategy strategy,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, const std::vector<sim::ProcId>& pre_crashed) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = inputs;
  spec.t = t;
  spec.budget = max_windows;
  spec.byzantine = ByzantineSpec{byz_count, strategy, pre_crashed};
  return Runner(std::move(spec)).run_byzantine(adversary, seed);
}

}  // namespace aa::core
