#include "core/harness.hpp"

#include "util/check.hpp"

namespace aa::core {

bool check_agreement(const sim::Execution& exec) {
  return exec.outputs_agree();
}

bool check_validity(const sim::Execution& exec,
                    const std::vector<int>& inputs) {
  bool have[2] = {false, false};
  for (int b : inputs) {
    AA_REQUIRE(b == 0 || b == 1, "check_validity: inputs must be bits");
    have[b] = true;
  }
  for (sim::ProcId p = 0; p < exec.n(); ++p) {
    const int o = exec.output(p);
    if (o == sim::kBot) continue;
    if (!have[o]) return false;
  }
  return true;
}

WindowRunResult run_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, std::optional<protocols::Thresholds> th,
    bool until_all_decided) {
  sim::Execution exec(protocols::make_processes(kind, t, inputs, th), seed);
  const std::int64_t windows =
      until_all_decided
          ? sim::run_until_all_decided(exec, adversary, t, max_windows)
          : sim::run_until_first_decision(exec, adversary, t, max_windows);

  WindowRunResult r;
  r.windows_total = windows;
  r.steps = exec.step_count();
  r.total_resets = exec.total_resets();
  r.decided = exec.decided_count() > 0;
  r.all_decided = exec.all_live_decided();
  if (const auto first = exec.first_decision()) {
    r.decision = first->value;
    r.windows_to_first = first->window + 1;  // decision inside window w ⇒ w+1 windows
  }
  r.agreement = check_agreement(exec);
  r.validity = check_validity(exec, inputs);
  return r;
}

ByzantineRunResult run_byzantine_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    int byz_count, protocols::ByzantineStrategy strategy,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, const std::vector<sim::ProcId>& pre_crashed) {
  const int n = static_cast<int>(inputs.size());
  sim::Execution exec(
      protocols::make_byzantine_processes(kind, t, inputs, byz_count,
                                          strategy, seed ^ 0xb52b52b52ULL),
      seed);
  for (const sim::ProcId p : pre_crashed) exec.crash(p);

  ByzantineRunResult r;
  auto honest_done = [&] {
    for (sim::ProcId p = byz_count; p < n; ++p) {
      if (!exec.crashed(p) && exec.output(p) == sim::kBot) return false;
    }
    return true;
  };
  std::int64_t w = 0;
  while (w < max_windows && !honest_done()) {
    sim::run_acceptable_window(exec, adversary, t);
    ++w;
  }
  r.windows_total = w;

  bool have[2] = {false, false};
  for (sim::ProcId p = byz_count; p < n; ++p) {
    const int b = inputs[static_cast<std::size_t>(p)];
    have[b] = true;
  }
  int seen = sim::kBot;
  r.honest_all_decided = true;
  for (sim::ProcId p = byz_count; p < n; ++p) {
    // Same exemption as honest_done(): a crashed honest processor owes no
    // output, so its kBot must not count as "not all decided".
    if (exec.crashed(p)) continue;
    const int o = exec.output(p);
    if (o == sim::kBot) {
      r.honest_all_decided = false;
      continue;
    }
    ++r.honest_decided;
    if (!have[o]) r.honest_validity = false;
    if (seen == sim::kBot) seen = o;
    else if (seen != o) r.honest_agreement = false;
  }
  return r;
}

AsyncRunOutcome run_async_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::AsyncAdversary& adversary, std::int64_t max_deliveries,
    std::uint64_t seed, std::optional<protocols::Thresholds> th,
    bool until_all_decided) {
  sim::Execution exec(protocols::make_processes(kind, t, inputs, th), seed);
  const sim::AsyncRunResult rr =
      sim::run_async(exec, adversary, t, max_deliveries, until_all_decided);

  AsyncRunOutcome r;
  r.deliveries = rr.deliveries;
  r.crashes = rr.crashes;
  r.hit_limit = rr.hit_step_limit;
  r.decided = exec.decided_count() > 0;
  r.all_decided = exec.all_live_decided();
  if (const auto first = exec.first_decision()) {
    r.decision = first->value;
    r.chain_at_decision = first->chain;
  }
  r.agreement = check_agreement(exec);
  r.validity = check_validity(exec, inputs);
  return r;
}

}  // namespace aa::core
