// Experiment harness: one-call execution of a protocol against an adversary
// in either the acceptable-window model (§2–§4) or the fine-grained async
// crash model (§5), with the bookkeeping every experiment needs (windows to
// decision, message-chain length, agreement/validity verdicts).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/byzantine.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"
#include "sim/window.hpp"

namespace aa::core {

/// Outcome of one window-model run.
struct WindowRunResult {
  bool decided = false;            ///< some processor wrote its output
  bool all_decided = false;        ///< every live processor wrote its output
  int decision = sim::kBot;        ///< first decided value
  std::int64_t windows_to_first = -1;  ///< windows before the first decision
  std::int64_t windows_total = 0;  ///< windows actually run
  std::int64_t steps = 0;          ///< fine-grained steps taken
  std::int64_t total_resets = 0;
  bool agreement = true;           ///< no two outputs conflict
  bool validity = true;            ///< every output equals some input
};

/// Run `kind` on `inputs` against a window adversary with budget `t`,
/// for at most `max_windows` acceptable windows (stopping early once the
/// stop condition holds). Deterministic in `seed`.
[[nodiscard]] WindowRunResult run_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, std::optional<protocols::Thresholds> th = std::nullopt,
    bool until_all_decided = false);

/// Outcome of one async (crash-model) run.
struct AsyncRunOutcome {
  bool decided = false;
  bool all_decided = false;  ///< every live processor decided
  int decision = sim::kBot;
  std::int64_t deliveries = 0;
  std::int64_t chain_at_decision = -1;  ///< message-chain length (§5 metric)
  std::int64_t crashes = 0;
  bool hit_limit = false;
  bool agreement = true;
  bool validity = true;
};

/// Run `kind` on `inputs` against an async adversary with crash budget `t`
/// for at most `max_deliveries` receiving steps. Deterministic in `seed`.
[[nodiscard]] AsyncRunOutcome run_async_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::AsyncAdversary& adversary, std::int64_t max_deliveries,
    std::uint64_t seed, std::optional<protocols::Thresholds> th = std::nullopt,
    bool until_all_decided = false);

/// Agreement / validity verdicts for a finished execution.
[[nodiscard]] bool check_agreement(const sim::Execution& exec);
[[nodiscard]] bool check_validity(const sim::Execution& exec,
                                  const std::vector<int>& inputs);

/// Outcome of a run with Byzantine (value-lying) processors; the verdicts
/// quantify over HONEST, NON-CRASHED processors only (ids ≥ byz_count that
/// never crashed — a crashed processor owes no output).
struct ByzantineRunResult {
  int honest_decided = 0;        ///< live honest processors with outputs
  bool honest_all_decided = false;
  bool honest_agreement = true;  ///< no two honest outputs conflict
  bool honest_validity = true;   ///< honest outputs ∈ honest input values
  std::int64_t windows_total = 0;
};

/// Run `kind` on `inputs` where the first `byz_count` processors are
/// wrapped in protocols::ByzantineProcess with `strategy`. The adversary's
/// budget `t` applies as usual (silencing/resets); Byzantine lying comes on
/// top — this measures the §2 incomparability (experiment T4).
/// `pre_crashed` processors are crashed before the first window (a
/// crash+Byzantine hybrid schedule); crashed honest processors are exempt
/// from the honest_all_decided verdict.
[[nodiscard]] ByzantineRunResult run_byzantine_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    int byz_count, protocols::ByzantineStrategy strategy,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, const std::vector<sim::ProcId>& pre_crashed = {});

}  // namespace aa::core
