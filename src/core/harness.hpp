// Legacy experiment harness — back-compat wrappers over core::Experiment +
// core::Runner (core/experiment.hpp).
//
// The positional run_window_experiment / run_async_experiment /
// run_byzantine_window_experiment trio predates the declarative Experiment
// spec; each call below builds the equivalent spec and delegates to a
// Runner, so existing call sites keep compiling unchanged. New code should
// construct an Experiment directly — one spec, named fields, reusable
// across seeded runs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/experiment.hpp"

namespace aa::core {

/// Run `kind` on `inputs` against a window adversary with budget `t`,
/// for at most `max_windows` acceptable windows (stopping early once the
/// stop condition holds). Deterministic in `seed`.
[[nodiscard]] WindowRunResult run_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, std::optional<protocols::Thresholds> th = std::nullopt,
    bool until_all_decided = false);

/// Run `kind` on `inputs` against an async adversary with crash budget `t`
/// for at most `max_deliveries` receiving steps. Deterministic in `seed`.
[[nodiscard]] AsyncRunOutcome run_async_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    sim::AsyncAdversary& adversary, std::int64_t max_deliveries,
    std::uint64_t seed, std::optional<protocols::Thresholds> th = std::nullopt,
    bool until_all_decided = false);

/// Run `kind` on `inputs` where the first `byz_count` processors are
/// wrapped in protocols::ByzantineProcess with `strategy`. The adversary's
/// budget `t` applies as usual (silencing/resets); Byzantine lying comes on
/// top — this measures the §2 incomparability (experiment T4).
/// `pre_crashed` processors are crashed before the first window (a
/// crash+Byzantine hybrid schedule); crashed honest processors are exempt
/// from the honest_all_decided verdict.
[[nodiscard]] ByzantineRunResult run_byzantine_window_experiment(
    protocols::ProtocolKind kind, const std::vector<int>& inputs, int t,
    int byz_count, protocols::ByzantineStrategy strategy,
    sim::WindowAdversary& adversary, std::int64_t max_windows,
    std::uint64_t seed, const std::vector<sim::ProcId>& pre_crashed = {});

}  // namespace aa::core
