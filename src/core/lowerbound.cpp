#include "core/lowerbound.hpp"

#include <algorithm>
#include <cmath>

#include "prob/talagrand.hpp"
#include "util/check.hpp"

namespace aa::core {

TheoremConstants theorem5_constants(int n, double c, int max_n_scan) {
  AA_REQUIRE(n > 0, "theorem5_constants: n must be positive");
  AA_REQUIRE(c > 0.0 && c < 1.0, "theorem5_constants: c must be in (0,1)");
  AA_REQUIRE(max_n_scan >= n || max_n_scan >= 1,
             "theorem5_constants: bad scan bound");

  TheoremConstants tc;
  tc.c = c;
  tc.n = n;
  tc.t = static_cast<int>(c * n);
  tc.alpha = c * c / 9.0;

  // C := min over n' of ¼·e^{(cn'−1)²/8n' − αn'} (equation (3) rearranged).
  // The exponent (cn−1)²/8n − αn → (c²/8 − c²/9)n − c/4 + ... grows linearly
  // for large n, so the minimum is attained at small n'.
  double log_c_best = 0.0;
  bool first = true;
  for (int np = 1; np <= std::max(max_n_scan, n); ++np) {
    const double cn1 = c * np - 1.0;
    const double log_bound =
        std::log(0.25) + cn1 * cn1 / (8.0 * np) - tc.alpha * np;
    if (first || log_bound < log_c_best) {
      log_c_best = log_bound;
      first = false;
    }
  }
  tc.big_c = std::exp(log_c_best);

  const double log_e = log_c_best + tc.alpha * n;
  tc.log10_e = log_e / std::log(10.0);
  tc.e_windows = std::exp(log_e);

  tc.tau = prob::tau_threshold(tc.t, n);
  tc.eta = tc.t >= 1 ? prob::eta_threshold(tc.t, n) : 1.0;

  const double cn1 = c * n - 1.0;
  const double log_fail = std::log(2.0) + log_e - cn1 * cn1 / (8.0 * n);
  tc.success_lb = 1.0 - std::exp(log_fail);
  return tc;
}

}  // namespace aa::core
