// Theorem 5's arithmetic: the concrete constants α, C, E, τ, η, and the
// adversary's success-probability bound, computable for any (n, c).
//
//   α := c²/9                                           (§4.3)
//   C := the largest constant with C·e^{αn} ≤ ¼·e^{(cn−1)²/8n} for ALL n ≥ 1
//   E := C·e^{αn}      — the windows the adversary keeps undecided
//   τ := e^{−t²/8n},  η := e^{−(t−1)²/8n}               (Lemmas 13 & 14)
//   success ≥ 1 − 2E·e^{−(cn−1)²/8n} ≥ 1/2              (§4.3)
#pragma once

namespace aa::core {

struct TheoremConstants {
  double c = 0.0;       ///< fault fraction t = cn
  int n = 0;
  int t = 0;            ///< ⌊cn⌋
  double alpha = 0.0;   ///< c²/9
  double big_c = 0.0;   ///< the absolute constant C
  double e_windows = 0.0;  ///< E = C·e^{αn} (may overflow to inf for huge n)
  double log10_e = 0.0;    ///< log10(E) — usable at any n
  double tau = 0.0;
  double eta = 0.0;
  double success_lb = 0.0;  ///< 1 − 2E·e^{−(cn−1)²/8n}
};

/// Compute every constant of Theorem 5 for (n, c). `c` in (0, 1).
/// C is minimized numerically over n' = 1..max_n_scan (the constraint binds
/// at small n'; the default scan is far beyond the binding region).
[[nodiscard]] TheoremConstants theorem5_constants(int n, double c,
                                                  int max_n_scan = 4096);

}  // namespace aa::core
