#include "core/report.hpp"

#include <algorithm>
#include <cstdio>

namespace aa::core {

void MeasureOneAccumulator::add(std::uint64_t seed, const TrialVerdict& v) {
  ++trials_;
  bool bad = false;
  if (!v.agreement) {
    ++agreement_violations_;
    bad = true;
  }
  if (!v.validity) {
    ++validity_violations_;
    bad = true;
  }
  if (bad) violating_seeds_.push_back(seed);
  if (v.decided) {
    ++decided_runs_;
    metric_sum_ += v.metric;
  }
  if (v.all_decided) ++all_decided_runs_;
}

void MeasureOneAccumulator::merge(const MeasureOneAccumulator& other) {
  trials_ += other.trials_;
  agreement_violations_ += other.agreement_violations_;
  validity_violations_ += other.validity_violations_;
  decided_runs_ += other.decided_runs_;
  all_decided_runs_ += other.all_decided_runs_;
  metric_sum_ += other.metric_sum_;
  violating_seeds_.insert(violating_seeds_.end(),
                          other.violating_seeds_.begin(),
                          other.violating_seeds_.end());
}

void MeasureOneAccumulator::restore(
    std::int64_t trials, std::int64_t agreement_violations,
    std::int64_t validity_violations, std::int64_t decided_runs,
    std::int64_t all_decided_runs, std::int64_t metric_sum,
    std::span<const std::uint64_t> violating_seeds) {
  trials_ = trials;
  agreement_violations_ = agreement_violations;
  validity_violations_ = validity_violations;
  decided_runs_ = decided_runs;
  all_decided_runs_ = all_decided_runs;
  metric_sum_ = metric_sum;
  violating_seeds_.assign(violating_seeds.begin(), violating_seeds.end());
}

MeasureOneReport MeasureOneAccumulator::finalize(bool async_metric) const {
  MeasureOneReport rep;
  rep.trials = static_cast<int>(trials_);
  rep.agreement_violations = static_cast<int>(agreement_violations_);
  rep.validity_violations = static_cast<int>(validity_violations_);
  rep.decided_runs = static_cast<int>(decided_runs_);
  rep.all_decided_runs = static_cast<int>(all_decided_runs_);
  const double mean =
      decided_runs_ > 0
          ? static_cast<double>(metric_sum_) / static_cast<double>(decided_runs_)
          : 0.0;
  rep.mean_windows_to_first = mean;
  if (async_metric) rep.mean_chain_at_decision = mean;
  rep.violating_seeds = violating_seeds_;
  std::sort(rep.violating_seeds.begin(), rep.violating_seeds.end());
  return rep;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_hist(std::string& out, const char* key,
                 std::span<const std::int64_t> hist) {
  out += "\"";
  out += key;
  out += "\": [";
  for (std::size_t b = 0; b < hist.size(); ++b) {
    if (b != 0) out += ", ";
    out += std::to_string(hist[b]);
  }
  out += "]";
}

void append_proc_list(std::string& out, const char* key,
                      std::span<const sim::ProcId> procs) {
  out += "  \"";
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(procs[i]);
  }
  out += "]";
}

}  // namespace

std::string latency_report_json(const lens::LatencyReport& rep) {
  std::string out = "{\n";
  out += "  \"n\": " + std::to_string(rep.n) + ",\n";
  out += "  \"t\": " + std::to_string(rep.t) + ",\n";
  out += "  \"trials\": " + std::to_string(rep.trials) + ",\n";
  out += "  \"deciders\": " + std::to_string(rep.deciders) + ",\n";
  out += "  \"blame_threshold\": ";
  append_double(out, rep.blame_threshold);
  out += ",\n  \"senders\": [\n";
  for (std::size_t s = 0; s < rep.senders.size(); ++s) {
    const lens::SenderLatency& row = rep.senders[s];
    out += "    {\"sender\": " + std::to_string(s);
    out += ", \"sent\": " + std::to_string(row.sent);
    out += ", \"equivocations\": " + std::to_string(row.equivocations);
    out += ", \"delivered\": " + std::to_string(row.delivered);
    out += ", \"suppressed\": " + std::to_string(row.suppressed);
    out += ", \"confirm_count\": " + std::to_string(row.confirm_count);
    out += ", \"mean_confirm_windows\": ";
    append_double(out, row.mean_confirm_windows);
    out += ", \"mean_confirm_steps\": ";
    append_double(out, row.mean_confirm_steps);
    out += ", \"delivered_share\": ";
    append_double(out, row.delivered_share);
    out += ", \"confirmed_share\": ";
    append_double(out, row.confirmed_share);
    out += ", \"censorship_score\": ";
    append_double(out, row.censorship_score);
    out += ", ";
    append_hist(out, "delivery_hist", row.delivery_hist);
    out += ", ";
    append_hist(out, "confirm_hist", row.confirm_hist);
    out += "}";
    if (s + 1 != rep.senders.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  append_proc_list(out, "blamed_equivocators", rep.blamed_equivocators);
  out += ",\n";
  append_proc_list(out, "blamed_censored", rep.blamed_censored);
  out += "\n}\n";
  return out;
}

}  // namespace aa::core
