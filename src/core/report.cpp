#include "core/report.hpp"

#include <algorithm>

namespace aa::core {

void MeasureOneAccumulator::add(std::uint64_t seed, const TrialVerdict& v) {
  ++trials_;
  bool bad = false;
  if (!v.agreement) {
    ++agreement_violations_;
    bad = true;
  }
  if (!v.validity) {
    ++validity_violations_;
    bad = true;
  }
  if (bad) violating_seeds_.push_back(seed);
  if (v.decided) {
    ++decided_runs_;
    metric_sum_ += v.metric;
  }
  if (v.all_decided) ++all_decided_runs_;
}

void MeasureOneAccumulator::merge(const MeasureOneAccumulator& other) {
  trials_ += other.trials_;
  agreement_violations_ += other.agreement_violations_;
  validity_violations_ += other.validity_violations_;
  decided_runs_ += other.decided_runs_;
  all_decided_runs_ += other.all_decided_runs_;
  metric_sum_ += other.metric_sum_;
  violating_seeds_.insert(violating_seeds_.end(),
                          other.violating_seeds_.begin(),
                          other.violating_seeds_.end());
}

void MeasureOneAccumulator::restore(
    std::int64_t trials, std::int64_t agreement_violations,
    std::int64_t validity_violations, std::int64_t decided_runs,
    std::int64_t all_decided_runs, std::int64_t metric_sum,
    std::span<const std::uint64_t> violating_seeds) {
  trials_ = trials;
  agreement_violations_ = agreement_violations;
  validity_violations_ = validity_violations;
  decided_runs_ = decided_runs;
  all_decided_runs_ = all_decided_runs;
  metric_sum_ = metric_sum;
  violating_seeds_.assign(violating_seeds.begin(), violating_seeds.end());
}

MeasureOneReport MeasureOneAccumulator::finalize(bool async_metric) const {
  MeasureOneReport rep;
  rep.trials = static_cast<int>(trials_);
  rep.agreement_violations = static_cast<int>(agreement_violations_);
  rep.validity_violations = static_cast<int>(validity_violations_);
  rep.decided_runs = static_cast<int>(decided_runs_);
  rep.all_decided_runs = static_cast<int>(all_decided_runs_);
  const double mean =
      decided_runs_ > 0
          ? static_cast<double>(metric_sum_) / static_cast<double>(decided_runs_)
          : 0.0;
  rep.mean_windows_to_first = mean;
  if (async_metric) rep.mean_chain_at_decision = mean;
  rep.violating_seeds = violating_seeds_;
  std::sort(rep.violating_seeds.begin(), rep.violating_seeds.end());
  return rep;
}

}  // namespace aa::core
