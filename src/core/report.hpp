// Measure-one trial reports and their hierarchical, exactly-associative
// aggregation.
//
// Two aggregation paths coexist on purpose:
//
//  * The legacy checker path (core/checker.cpp) folds per-chunk
//    RunningStats partials in chunk order. Welford merging is NOT
//    associative in floating point, so that path pins one merge order
//    (chunk order) to stay bit-identical across thread counts — but it
//    cannot be re-sharded hierarchically (cell → campaign) without
//    changing bits.
//  * The campaign path below accumulates EXACT INTEGERS only: counter
//    tallies plus an int64 sum of the decision metric (both measured
//    metrics — windows-to-first-decision and chain-at-decision — are
//    integers by construction). Integer addition is associative and
//    commutative, and violating seeds are canonicalised by sorting at
//    finalize, so ANY merge tree over any sharding of the same trial set
//    finalizes to the same bytes. That is the contract the campaign
//    engine's "merged summary is byte-identical at --threads 1 and 8,
//    shards 1/4/16" tests pin down.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lens/accountability.hpp"

namespace aa::core {

/// Aggregate result of a batch of measure-one trials (Definitions 2 and 3).
struct MeasureOneReport {
  int trials = 0;
  int agreement_violations = 0;
  int validity_violations = 0;
  int decided_runs = 0;        ///< trials where some processor decided
  int all_decided_runs = 0;    ///< trials where all live processors decided
  /// Mean windows to the first decision, over deciding runs (window model).
  /// For compatibility the async checker also stores its mean chain length
  /// here; prefer mean_chain_at_decision for async results.
  double mean_windows_to_first = 0.0;
  /// Mean message-chain length at the first decision, over deciding runs
  /// (async model; 0 for window-model reports).
  double mean_chain_at_decision = 0.0;
  std::vector<std::uint64_t> violating_seeds;  ///< ascending

  [[nodiscard]] bool clean() const noexcept {
    return agreement_violations == 0 && validity_violations == 0;
  }
};

/// Verdict of one trial, stripped to what aggregation needs. `metric` is
/// the model's decision-cost measure — windows to the first decision
/// (window model) or message-chain length at decision (async model) — and
/// is only read when `decided`.
struct TrialVerdict {
  bool agreement = true;
  bool validity = true;
  bool decided = false;
  bool all_decided = false;
  std::int64_t metric = 0;
};

/// Exactly-associative accumulator over TrialVerdicts. add() and merge()
/// touch integers only; finalize() sorts the violating seeds and performs
/// the single floating-point division, so
///
///   finalize(add every trial serially)
///     == finalize(merge(shard partials, in any tree shape))
///
/// bit for bit, for every sharding of the same trial set.
class MeasureOneAccumulator {
 public:
  /// Fold in one trial (seed recorded only when the trial violated).
  void add(std::uint64_t seed, const TrialVerdict& v);

  /// Fold another accumulator's tallies into this one.
  void merge(const MeasureOneAccumulator& other);

  /// Snapshot as a report. `async_metric` mirrors the mean into
  /// mean_chain_at_decision (the async checkers' convention). Callable any
  /// number of times; does not mutate the accumulator.
  [[nodiscard]] MeasureOneReport finalize(bool async_metric = false) const;

  [[nodiscard]] std::int64_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::int64_t violations() const noexcept {
    return agreement_violations_ + validity_violations_;
  }
  /// Exact integer metric sum over deciding trials — serialized into
  /// campaign cell artifacts so a resumed cell restores to the same bits.
  [[nodiscard]] std::int64_t metric_sum() const noexcept {
    return metric_sum_;
  }

  /// Rebuild an accumulator from serialized exact tallies (the campaign
  /// --resume path). Equivalent to an accumulator that add()ed exactly the
  /// original trials: merging a restored cell into a summary yields the
  /// same bytes as merging the freshly computed cell.
  void restore(std::int64_t trials, std::int64_t agreement_violations,
               std::int64_t validity_violations, std::int64_t decided_runs,
               std::int64_t all_decided_runs, std::int64_t metric_sum,
               std::span<const std::uint64_t> violating_seeds);

 private:
  std::int64_t trials_ = 0;
  std::int64_t agreement_violations_ = 0;
  std::int64_t validity_violations_ = 0;
  std::int64_t decided_runs_ = 0;
  std::int64_t all_decided_runs_ = 0;
  std::int64_t metric_sum_ = 0;  ///< over deciding trials; exact (integers)
  std::vector<std::uint64_t> violating_seeds_;  ///< unordered until finalize
};

/// Render a finalized lens report (lens/accountability.hpp) as JSON with
/// the campaign artifacts' serialization discipline: fixed key order,
/// %.17g doubles (round-trip exact), newline-terminated. Two reports with
/// the same tallies therefore serialize to the same bytes — the string is
/// directly comparable in bit-identity tests and safe to hand to
/// write_file_atomic.
[[nodiscard]] std::string latency_report_json(const lens::LatencyReport& rep);

}  // namespace aa::core
