#include "core/zsets.hpp"

#include "prob/hamming.hpp"
#include "prob/talagrand.hpp"
#include "util/check.hpp"

namespace aa::core {

AbstractConfig initial_config(const std::vector<int>& inputs) {
  AbstractConfig c;
  c.x = inputs;
  for (int b : inputs)
    AA_REQUIRE(b == 0 || b == 1, "initial_config: inputs must be bits");
  c.out.assign(inputs.size(), -1);
  return c;
}

prob::Point encode_config(const AbstractConfig& c) {
  prob::Point p(c.x.size());
  for (std::size_t i = 0; i < c.x.size(); ++i) {
    if (c.out[i] != -1) p[i] = 3 + c.out[i];
    else if (c.x[i] == kXRejoining) p[i] = 2;
    else p[i] = c.x[i];
  }
  return p;
}

namespace {

/// The first-T1 vote tally a receiver consumes under delivery set S
/// (ascending sender order, rejoining processors send nothing). Returns
/// false when fewer than T1 votes are available (no progress this window).
bool window_tally(const AbstractConfig& c, const std::vector<bool>& in_s,
                  const protocols::Thresholds& th, int counts[2]) {
  const int n = c.n();
  counts[0] = counts[1] = 0;
  int taken = 0;
  for (int i = 0; i < n && taken < th.t1; ++i) {
    if (in_s[static_cast<std::size_t>(i)] &&
        c.x[static_cast<std::size_t>(i)] != kXRejoining) {
      ++counts[c.x[static_cast<std::size_t>(i)]];
      ++taken;
    }
  }
  return taken >= th.t1;
}

}  // namespace

std::vector<bool> coin_flippers(const AbstractConfig& c,
                                const std::vector<bool>& in_s,
                                const protocols::Thresholds& th) {
  const int n = c.n();
  std::vector<bool> flips(static_cast<std::size_t>(n), false);
  int count[2];
  if (!window_tally(c, in_s, th, count)) return flips;
  if (count[0] >= th.t3 || count[1] >= th.t3) return flips;
  flips.assign(static_cast<std::size_t>(n), true);
  return flips;
}

AbstractConfig apply_abstract_window_det(
    const AbstractConfig& c, const std::vector<bool>& in_r,
    const std::vector<bool>& in_s, const protocols::Thresholds& th, int t,
    const std::function<int(int)>& coin_for) {
  const int n = c.n();
  AA_REQUIRE(static_cast<int>(in_r.size()) == n &&
                 static_cast<int>(in_s.size()) == n,
             "apply_abstract_window: indicator size mismatch");
  int s_size = 0;
  int r_size = 0;
  for (int i = 0; i < n; ++i) {
    if (in_s[static_cast<std::size_t>(i)]) ++s_size;
    if (in_r[static_cast<std::size_t>(i)]) ++r_size;
  }
  AA_REQUIRE(s_size >= n - t, "apply_abstract_window: |S| must be >= n - t");
  AA_REQUIRE(r_size <= t, "apply_abstract_window: |R| must be <= t");

  AbstractConfig next = c;
  int count[2];
  if (window_tally(c, in_s, th, count)) {
    for (int i = 0; i < n; ++i) {
      // Step 3 for everyone — including rejoining processors, which adopt
      // the common round carried by the T1 votes and re-enter step 3.
      for (int v = 0; v <= 1; ++v) {
        if (count[v] >= th.t2 && next.out[static_cast<std::size_t>(i)] == -1)
          next.out[static_cast<std::size_t>(i)] = v;
      }
      if (count[0] >= th.t3) next.x[static_cast<std::size_t>(i)] = 0;
      else if (count[1] >= th.t3) next.x[static_cast<std::size_t>(i)] = 1;
      else next.x[static_cast<std::size_t>(i)] = coin_for(i);
    }
  }
  // else: too few senders were heard; nobody reaches T1 and states persist.

  // Resetting phase.
  for (int i = 0; i < n; ++i) {
    if (in_r[static_cast<std::size_t>(i)])
      next.x[static_cast<std::size_t>(i)] = kXRejoining;
  }
  return next;
}

AbstractConfig apply_abstract_window(const AbstractConfig& c,
                                     const std::vector<bool>& in_r,
                                     const std::vector<bool>& in_s,
                                     const protocols::Thresholds& th, int t,
                                     Rng& rng) {
  return apply_abstract_window_det(
      c, in_r, in_s, th, t,
      [&rng](int) { return rng.next_bool() ? 1 : 0; });
}

ZSetEstimator::ZSetEstimator(int n, int t, protocols::Thresholds th,
                             double tau)
    : n_(n), t_(t), th_(th) {
  AA_REQUIRE(n > 0 && t >= 0 && t < n, "ZSetEstimator: bad (n, t)");
  tau_ = tau > 0.0 ? tau : prob::tau_threshold(t, n);
  canon_r_.assign(static_cast<std::size_t>(n), false);
  canon_s_.assign(static_cast<std::size_t>(n), false);
  for (int i = 0; i < t; ++i) canon_r_[static_cast<std::size_t>(i)] = true;
  for (int i = t; i < n; ++i) canon_s_[static_cast<std::size_t>(i)] = true;
}

bool ZSetEstimator::in_z0(const AbstractConfig& c, int v) const {
  AA_REQUIRE(v == 0 || v == 1, "in_z0: v must be a bit");
  for (int o : c.out) {
    if (o == v) return true;
  }
  return false;
}

double ZSetEstimator::prob_reach_z(const AbstractConfig& c, int v, int k,
                                   int samples, Rng& rng) const {
  AA_REQUIRE(k >= 1, "prob_reach_z: k must be >= 1");
  AA_REQUIRE(samples > 0, "prob_reach_z: need samples");
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    const AbstractConfig next =
        apply_abstract_window(c, canon_r_, canon_s_, th_, t_, rng);
    const bool in_prev = (k == 1)
                             ? in_z0(next, v)
                             : in_zk(next, v, k - 1, samples, rng);
    if (in_prev) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

bool ZSetEstimator::in_zk(const AbstractConfig& c, int v, int k, int samples,
                          Rng& rng) const {
  if (k == 0) return in_z0(c, v);
  return prob_reach_z(c, v, k, samples, rng) > tau_;
}

std::vector<AbstractConfig> sample_reachable_configs(
    int n, int t, const protocols::Thresholds& th, int count, int max_windows,
    Rng& rng) {
  AA_REQUIRE(count > 0 && max_windows >= 0, "sample_reachable_configs: bad args");
  std::vector<AbstractConfig> configs;
  configs.reserve(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    // Random inputs, random walk of random canonical windows.
    std::vector<int> inputs(static_cast<std::size_t>(n));
    for (int& b : inputs) b = rng.next_bool() ? 1 : 0;
    AbstractConfig cfg = initial_config(inputs);
    const int len = static_cast<int>(rng.uniform_int(0, max_windows));
    for (int w = 0; w < len; ++w) {
      // Random S of size n − t, random R of size ≤ t.
      std::vector<int> perm(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
      for (std::size_t j = 0; j + 1 < perm.size(); ++j) {
        const std::size_t kx = j + rng.uniform_index(perm.size() - j);
        std::swap(perm[j], perm[kx]);
      }
      std::vector<bool> in_s(static_cast<std::size_t>(n), false);
      for (int i = 0; i < n - t; ++i)
        in_s[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = true;
      std::vector<bool> in_r(static_cast<std::size_t>(n), false);
      const int resets = static_cast<int>(rng.uniform_int(0, t));
      for (int i = 0; i < resets; ++i)
        in_r[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = true;
      cfg = apply_abstract_window(cfg, in_r, in_s, th, t, rng);
    }
    configs.push_back(std::move(cfg));
  }
  return configs;
}

SeparationReport measure_separation(int n, int t,
                                    const protocols::Thresholds& th, int k,
                                    int config_samples, int mc_samples,
                                    Rng& rng) {
  const ZSetEstimator est(n, t, th);
  const std::vector<AbstractConfig> configs =
      sample_reachable_configs(n, t, th, config_samples, 3 * k + 4, rng);

  std::vector<prob::Point> z0;
  std::vector<prob::Point> z1;
  for (const AbstractConfig& c : configs) {
    if (est.in_zk(c, 0, k, mc_samples, rng)) z0.push_back(encode_config(c));
    if (est.in_zk(c, 1, k, mc_samples, rng)) z1.push_back(encode_config(c));
  }

  SeparationReport rep;
  rep.k = k;
  rep.z0_count = static_cast<int>(z0.size());
  rep.z1_count = static_cast<int>(z1.size());
  if (!z0.empty() && !z1.empty()) {
    rep.min_distance = prob::hamming_between_sets(z0, z1);
    rep.satisfies_lemma = rep.min_distance > t;
  } else {
    // An empty bucket is vacuous separation — Lemma 13 is not contradicted.
    rep.satisfies_lemma = true;
  }
  return rep;
}

}  // namespace aa::core
