// The progress-set machinery of §4.2 (Definitions 10 & 12, Lemmas 11 & 13),
// made executable for the §3 threshold-voting algorithm.
//
// The paper's sets Z^k_0 / Z^k_1 live in the joint state space Σ^n. For the
// §3 algorithm running in lockstep under acceptable windows, a
// configuration is captured (up to behaviourally irrelevant detail) by each
// processor's (estimate x_i, output o_i, rejoining?) triple — the
// ABSTRACT CONFIGURATION below. The per-window transition of the algorithm
// is then an explicit function of the abstract configuration, the
// adversary's (R, S) choice, and fresh per-processor coins — a product
// distribution, exactly as Lemma 13's proof requires. This lets us:
//
//   * sample reachable configurations (random canonical windows),
//   * test Z^0 membership exactly and Z^k membership by Monte-Carlo
//     recursion over the canonical window family the proofs use
//     (R = a t-prefix, S = an (n−t)-suffix),
//   * measure the Hamming separation Lemma 13 asserts (experiment T3).
//
// Faithfulness: tests cross-validate the abstract transition against the
// real engine running ResetProcess under the same windows.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "prob/product.hpp"
#include "protocols/thresholds.hpp"
#include "util/rng.hpp"

namespace aa::core {

/// Per-processor abstract state; `x == kXRejoining` marks a processor that
/// was reset and has not yet rejoined (it sends nothing next window).
inline constexpr int kXRejoining = -1;

struct AbstractConfig {
  std::vector<int> x;    ///< estimate: 0/1, or kXRejoining
  std::vector<int> out;  ///< output bit: -1 (⊥), 0, 1

  [[nodiscard]] int n() const noexcept { return static_cast<int>(x.size()); }
  friend bool operator==(const AbstractConfig&, const AbstractConfig&) = default;
};

/// Initial configuration from input bits.
[[nodiscard]] AbstractConfig initial_config(const std::vector<int>& inputs);

/// Encode into a prob::Point for the Hamming machinery. Coordinate alphabet:
/// 0/1 = undecided with x, 2 = rejoining, 3/4 = decided 0/1 (the coordinate
/// folds the decided processor's x into its decided value — once decided,
/// x tracks the decision in every execution the lemmas consider).
[[nodiscard]] prob::Point encode_config(const AbstractConfig& c);

/// One acceptable window of the §3 algorithm in the abstract model:
/// every non-rejoining processor sends its x; every processor receives the
/// votes of senders in S (ascending id order), consumes the first T1, and
/// applies step 3 (decide at T2, adopt at T3, else coin from `rng`);
/// rejoining processors adopt the common round and re-enter step 3 the same
/// way; finally processors in R are reset (x := kXRejoining).
/// `in_s` and `in_r` are indicator vectors; |S| ≥ n − t and |R| ≤ t are the
/// caller's responsibility (validated).
[[nodiscard]] AbstractConfig apply_abstract_window(
    const AbstractConfig& c, const std::vector<bool>& in_r,
    const std::vector<bool>& in_s, const protocols::Thresholds& th, int t,
    Rng& rng);

/// Deterministic variant: `coin_for(i)` supplies the fresh bit for
/// processor i when step 3 randomizes (consulted only for coordinates that
/// actually flip, in ascending id order). The Rng overload above is
/// implemented on top of this. Used by the exhaustive checker to enumerate
/// every coin outcome.
[[nodiscard]] AbstractConfig apply_abstract_window_det(
    const AbstractConfig& c, const std::vector<bool>& in_r,
    const std::vector<bool>& in_s, const protocols::Thresholds& th, int t,
    const std::function<int(int)>& coin_for);

/// Indicator vector of which processors would flip a coin if this window
/// were applied (empty counts/deterministic adopts flip nothing).
[[nodiscard]] std::vector<bool> coin_flippers(const AbstractConfig& c,
                                              const std::vector<bool>& in_s,
                                              const protocols::Thresholds& th);

/// Z-set estimator for the abstract model.
class ZSetEstimator {
 public:
  /// `tau` defaults to the paper's e^{−t²/8n} when ≤ 0.
  ZSetEstimator(int n, int t, protocols::Thresholds th, double tau = -1.0);

  /// Z^0_v membership: some output equals v (Definition 10) — exact.
  [[nodiscard]] bool in_z0(const AbstractConfig& c, int v) const;

  /// Monte-Carlo estimate of the probability that applying the canonical
  /// window (R = first t ids, S = last n − t ids) to `c` lands in
  /// Z^{k−1}_v; recursion depth k, `samples` draws per level.
  [[nodiscard]] double prob_reach_z(const AbstractConfig& c, int v, int k,
                                    int samples, Rng& rng) const;

  /// Definition 12 membership test against the canonical window family,
  /// via prob_reach_z > tau.
  [[nodiscard]] bool in_zk(const AbstractConfig& c, int v, int k, int samples,
                           Rng& rng) const;

  [[nodiscard]] double tau() const noexcept { return tau_; }

 private:
  int n_;
  int t_;
  protocols::Thresholds th_;
  double tau_;
  std::vector<bool> canon_r_;
  std::vector<bool> canon_s_;
};

/// Sample `count` reachable configurations by running random canonical
/// windows from random-ish inputs for random lengths (≤ max_windows).
[[nodiscard]] std::vector<AbstractConfig> sample_reachable_configs(
    int n, int t, const protocols::Thresholds& th, int count, int max_windows,
    Rng& rng);

/// Experiment T3: bucket sampled reachable configurations into estimated
/// Z^k_0 and Z^k_1 and report the minimum observed Hamming distance between
/// the buckets (Lemma 13 predicts > t whenever both are non-empty).
struct SeparationReport {
  int k = 0;
  int z0_count = 0;
  int z1_count = 0;
  int min_distance = -1;  ///< -1 when a bucket is empty
  bool satisfies_lemma = false;
};
[[nodiscard]] SeparationReport measure_separation(
    int n, int t, const protocols::Thresholds& th, int k, int config_samples,
    int mc_samples, Rng& rng);

}  // namespace aa::core
