#include "lens/accountability.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aa::lens {

void LatencyAccumulator::ensure(int n) {
  if (n_ == n) return;
  AA_REQUIRE(n_ == -1,
             "LatencyAccumulator: folds with different n cannot be merged");
  AA_REQUIRE(n > 0, "LatencyAccumulator: n must be positive");
  n_ = n;
  const auto nn = static_cast<std::size_t>(n);
  sent_.assign(nn, 0);
  equivocations_.assign(nn, 0);
  delivered_.assign(nn, 0);
  suppressed_.assign(nn, 0);
  confirm_count_.assign(nn, 0);
  confirm_window_sum_.assign(nn, 0);
  confirm_step_sum_.assign(nn, 0);
  delivery_hist_.assign(nn * static_cast<std::size_t>(WindowTrace::kBuckets),
                        0);
  confirm_hist_.assign(nn * static_cast<std::size_t>(WindowTrace::kBuckets),
                       0);
}

void LatencyAccumulator::add(const WindowTrace& trace) {
  ensure(trace.n());
  ++trials_;
  deciders_ += trace.deciders();
  for (sim::ProcId s = 0; s < n_; ++s) {
    const auto si = static_cast<std::size_t>(s);
    sent_[si] += trace.sent(s);
    equivocations_[si] += trace.equivocations(s);
    delivered_[si] += trace.delivered_total(s);
    suppressed_[si] += trace.suppressed_total(s);
    confirm_count_[si] += trace.confirm_count(s);
    confirm_window_sum_[si] += trace.confirm_window_sum(s);
    confirm_step_sum_[si] += trace.confirm_step_sum(s);
    for (int b = 0; b < WindowTrace::kBuckets; ++b) {
      const std::size_t h =
          si * static_cast<std::size_t>(WindowTrace::kBuckets) +
          static_cast<std::size_t>(b);
      delivery_hist_[h] += trace.delivery_hist(s, b);
      confirm_hist_[h] += trace.confirm_hist(s, b);
    }
  }
}

void LatencyAccumulator::merge(const LatencyAccumulator& other) {
  if (other.n_ == -1) return;  // merging the identity
  ensure(other.n_);
  trials_ += other.trials_;
  deciders_ += other.deciders_;
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    sent_[i] += other.sent_[i];
    equivocations_[i] += other.equivocations_[i];
    delivered_[i] += other.delivered_[i];
    suppressed_[i] += other.suppressed_[i];
    confirm_count_[i] += other.confirm_count_[i];
    confirm_window_sum_[i] += other.confirm_window_sum_[i];
    confirm_step_sum_[i] += other.confirm_step_sum_[i];
  }
  for (std::size_t i = 0; i < delivery_hist_.size(); ++i) {
    delivery_hist_[i] += other.delivery_hist_[i];
    confirm_hist_[i] += other.confirm_hist_[i];
  }
}

LatencyReport LatencyAccumulator::finalize(int t,
                                           double blame_threshold) const {
  LatencyReport rep;
  rep.t = t;
  rep.trials = trials_;
  rep.deciders = deciders_;
  rep.blame_threshold = blame_threshold;
  if (n_ == -1) return rep;  // empty identity finalizes to an empty report
  AA_REQUIRE(t >= 0 && t < n_, "LatencyAccumulator::finalize: bad t");
  rep.n = n_;
  rep.senders.resize(static_cast<std::size_t>(n_));
  // The window contract's fair long-run share: each receiver hears at
  // least n − t senders per window (Definition 1).
  const double expected =
      static_cast<double>(n_ - t) / static_cast<double>(n_);
  for (sim::ProcId s = 0; s < n_; ++s) {
    const auto si = static_cast<std::size_t>(s);
    SenderLatency& row = rep.senders[si];
    row.sent = sent_[si];
    row.equivocations = equivocations_[si];
    row.delivered = delivered_[si];
    row.suppressed = suppressed_[si];
    row.confirm_count = confirm_count_[si];
    if (row.confirm_count > 0) {
      row.mean_confirm_windows =
          static_cast<double>(confirm_window_sum_[si]) /
          static_cast<double>(row.confirm_count);
      row.mean_confirm_steps = static_cast<double>(confirm_step_sum_[si]) /
                               static_cast<double>(row.confirm_count);
    }
    const std::int64_t fate = row.delivered + row.suppressed;
    row.delivered_share =
        fate > 0 ? static_cast<double>(row.delivered) /
                       static_cast<double>(fate)
                 : 1.0;
    row.confirmed_share =
        deciders_ > 0 ? static_cast<double>(row.confirm_count) /
                            static_cast<double>(deciders_)
                      : 1.0;
    if (row.sent > 0) {
      row.censorship_score = std::max(
          0.0,
          expected - std::min(row.delivered_share, row.confirmed_share));
    }
    for (int b = 0; b < WindowTrace::kBuckets; ++b) {
      const std::size_t h =
          si * static_cast<std::size_t>(WindowTrace::kBuckets) +
          static_cast<std::size_t>(b);
      row.delivery_hist[static_cast<std::size_t>(b)] = delivery_hist_[h];
      row.confirm_hist[static_cast<std::size_t>(b)] = confirm_hist_[h];
    }
    if (row.equivocations > 0) rep.blamed_equivocators.push_back(s);
    if (row.censorship_score > blame_threshold) {
      rep.blamed_censored.push_back(s);
    }
  }
  return rep;
}

}  // namespace aa::lens
