// LatencyAccumulator / LatencyReport — the accountability side of the lens.
//
// Aggregates WindowTrace captures across trials with the SAME bit-identity
// discipline as core::MeasureOneAccumulator: add() and merge() touch exact
// std::int64_t tallies only (integer addition is associative and
// commutative), and finalize() performs every floating-point division in
// one deterministic pass — so ANY merge tree over any sharding of the same
// trial set finalizes to the same bytes at any thread count.
//
// finalize() produces, per sender:
//   * confirmation-time statistics — mean windows / steps from a
//     receiver's FIRST delivery from the sender to that receiver's
//     decision, plus a bucketed histogram (pod-style per-sender
//     confirmation latency);
//   * a censorship score — how far the sender's observed delivery falls
//     below the share the acceptable-window contract owes it. Definition 1
//     guarantees each receiver hears ≥ n − t senders per window, so a
//     sender's fair long-run expectation is (n − t)/n of its traffic.
//     The score is max(0, (n − t)/n − min(delivered share, confirmed
//     share)); a sender that never sent is never scored;
//   * blame lists — senders whose within-batch equivocation count is
//     nonzero (the Byzantine Equivocate signature; honest protocols
//     broadcast one value per key) and senders whose censorship score
//     exceeds the blame threshold. Fault-free runs under fair scheduling
//     produce empty lists: every share is exactly 1.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "lens/trace.hpp"
#include "sim/types.hpp"

namespace aa::lens {

/// Finalized per-sender latency & accountability row.
struct SenderLatency {
  std::int64_t sent = 0;
  std::int64_t equivocations = 0;
  std::int64_t delivered = 0;
  std::int64_t suppressed = 0;
  std::int64_t confirm_count = 0;
  double mean_confirm_windows = 0.0;  ///< over confirmations; 0 if none
  double mean_confirm_steps = 0.0;
  double delivered_share = 1.0;  ///< delivered/(delivered+suppressed); 1 if no evidence
  double confirmed_share = 1.0;  ///< confirm_count/deciders; 1 if no deciders
  double censorship_score = 0.0;
  std::array<std::int64_t, WindowTrace::kBuckets> delivery_hist{};
  std::array<std::int64_t, WindowTrace::kBuckets> confirm_hist{};
};

struct LatencyReport {
  int n = 0;
  int t = 0;
  std::int64_t trials = 0;
  std::int64_t deciders = 0;  ///< decision events across all trials
  double blame_threshold = 0.0;
  std::vector<SenderLatency> senders;           ///< index = sender id
  std::vector<sim::ProcId> blamed_equivocators; ///< ascending
  std::vector<sim::ProcId> blamed_censored;     ///< ascending
};

/// Exactly-associative accumulator over WindowTrace trials. A
/// default-constructed accumulator is the merge identity (n() == -1); the
/// first add()/merge() fixes n and later folds must match it.
class LatencyAccumulator {
 public:
  /// Fold in one completed trial's trace.
  void add(const WindowTrace& trace);

  /// Fold another accumulator's tallies into this one.
  void merge(const LatencyAccumulator& other);

  /// Snapshot as a report under budget `t` and the given blame threshold.
  /// Callable any number of times; does not mutate the accumulator.
  [[nodiscard]] LatencyReport finalize(int t,
                                       double blame_threshold = 0.1) const;

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] std::int64_t trials() const noexcept { return trials_; }

 private:
  void ensure(int n);

  int n_ = -1;  ///< -1: empty identity
  std::int64_t trials_ = 0;
  std::int64_t deciders_ = 0;
  // Per-sender exact tallies (index = sender).
  std::vector<std::int64_t> sent_;
  std::vector<std::int64_t> equivocations_;
  std::vector<std::int64_t> delivered_;
  std::vector<std::int64_t> suppressed_;
  std::vector<std::int64_t> confirm_count_;
  std::vector<std::int64_t> confirm_window_sum_;
  std::vector<std::int64_t> confirm_step_sum_;
  // Per-sender histograms, WindowTrace::kBuckets wide.
  std::vector<std::int64_t> delivery_hist_;
  std::vector<std::int64_t> confirm_hist_;
};

}  // namespace aa::lens
