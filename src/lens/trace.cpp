#include "lens/trace.hpp"

namespace aa::lens {

void WindowTrace::begin_trial(int n) {
  AA_REQUIRE(n > 0, "WindowTrace: n must be positive");
  n_ = n;
  const auto nn = static_cast<std::size_t>(n);
  sent_.assign(nn, 0);
  equivocations_.assign(nn, 0);
  confirm_count_.assign(nn, 0);
  confirm_window_sum_.assign(nn, 0);
  confirm_step_sum_.assign(nn, 0);
  delivered_.assign(nn * nn, 0);
  suppressed_.assign(nn * nn, 0);
  first_window_.assign(nn * nn, -1);
  first_step_.assign(nn * nn, -1);
  decision_window_.assign(nn, -1);
  delivery_hist_.assign(nn * static_cast<std::size_t>(kBuckets), 0);
  confirm_hist_.assign(nn * static_cast<std::size_t>(kBuckets), 0);
  deciders_ = 0;
}

void WindowTrace::on_publish(sim::ProcId sender,
                             std::span<const sim::StagedMessage> items,
                             std::int64_t /*window*/) {
  const std::size_t s = idx(sender);
  sent_[s] += static_cast<std::int64_t>(items.size());
  // Within-batch equivocation scan: message i equivocates when an earlier
  // message j shares its (round, kind, aux) key but carries a different
  // bit value. Each message counts at most once. Batches are O(n); the
  // quadratic scan only runs with the lens on.
  for (std::size_t i = 1; i < items.size(); ++i) {
    const sim::Message& mi = items[i].msg;
    if (mi.value != 0 && mi.value != 1) continue;
    for (std::size_t j = 0; j < i; ++j) {
      const sim::Message& mj = items[j].msg;
      if (mj.round == mi.round && mj.kind == mi.kind && mj.aux == mi.aux &&
          (mj.value == 0 || mj.value == 1) && mj.value != mi.value) {
        ++equivocations_[s];
        break;
      }
    }
  }
}

void WindowTrace::on_deliver(const sim::Envelope& env, std::int64_t window,
                             std::int64_t step) {
  const std::size_t pr = pair(env.sender, env.receiver);
  ++delivered_[pr];
  if (first_window_[pr] < 0) {
    first_window_[pr] = window;
    first_step_[pr] = step;
  }
  ++delivery_hist_[hidx(env.sender, bucket_of(window - env.window))];
}

void WindowTrace::on_suppress(sim::ProcId sender, sim::ProcId receiver) {
  ++suppressed_[pair(sender, receiver)];
}

void WindowTrace::on_decision(sim::ProcId p, std::int64_t window,
                              std::int64_t step) {
  decision_window_[idx(p)] = window;
  ++deciders_;
  // Fold the confirmation span for every sender p has heard by now: the
  // lag between first hearing the sender and committing to an output is
  // the pod-style per-sender confirmation latency.
  for (sim::ProcId s = 0; s < n_; ++s) {
    const std::size_t pr = pair(s, p);
    if (first_window_[pr] < 0) continue;
    const std::int64_t wspan = window - first_window_[pr];
    const std::int64_t sspan = step - first_step_[pr];
    ++confirm_count_[idx(s)];
    confirm_window_sum_[idx(s)] += wspan;
    confirm_step_sum_[idx(s)] += sspan;
    ++confirm_hist_[hidx(s, bucket_of(wspan))];
  }
}

std::int64_t WindowTrace::delivered_total(sim::ProcId s) const {
  std::int64_t total = 0;
  for (sim::ProcId r = 0; r < n_; ++r) total += delivered_[pair(s, r)];
  return total;
}

std::int64_t WindowTrace::suppressed_total(sim::ProcId s) const {
  std::int64_t total = 0;
  for (sim::ProcId r = 0; r < n_; ++r) total += suppressed_[pair(s, r)];
  return total;
}

}  // namespace aa::lens
