// WindowTrace — the per-trial capture arena of the latency & accountability
// lens (pod-style confirmation tracing, PAPERS.md: arXiv 2501.14931).
//
// The checkers answer one question — measure-one agreement — but the
// acceptable-window model of §2 is fundamentally about WHICH messages the
// adversary may delay or suppress and for how long. The lens records, per
// trial:
//
//   send      — every published message, tallied per sender, with a
//               within-batch equivocation scan (two staged messages with
//               the same (round, kind, aux) key but different bit values
//               is the Byzantine Equivocate signature — honest protocols
//               broadcast one value per key per batch);
//   delivery  — per-(sender, receiver) delivered counts and the FIRST
//               window/step at which each receiver heard each sender,
//               plus a per-sender histogram of delivery lag
//               (delivery window − send window);
//   suppression — per-(sender, receiver) counts of messages the window
//               sweep (or an explicit drop) discarded undelivered;
//   decision  — each processor's decision window/step; at that moment the
//               per-sender confirmation spans (decision − first-heard, in
//               windows and in steps) are folded into per-sender sums and
//               histograms.
//
// The arena is flat std::int64_t storage indexed by sender / (sender,
// receiver) pairs; begin_trial() re-stamps it with assign(), so after the
// first trial at a given n the lens allocates nothing. Execution invokes
// the hooks only when ExecutionConfig::lens is set — a null lens costs one
// pointer test per hook site and produces bit-identical reports.
//
// Window spans serve the acceptable-window model; step spans (the engine's
// deterministic step counter) serve the async/crash model, where run_async
// never advances the window index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"
#include "util/check.hpp"

namespace aa::lens {

class WindowTrace {
 public:
  /// Histogram width for delivery-lag and confirmation-span histograms.
  /// Bucket b counts spans of exactly b windows; the last bucket absorbs
  /// everything >= kBuckets − 1.
  static constexpr int kBuckets = 16;

  /// Re-arm for a fresh trial of n processors. Allocation-free when n
  /// matches the previous trial.
  void begin_trial(int n);

  // ---- engine hooks (null-guarded at every call site) --------------------

  /// A sending step published `items` (staging order) in `window`.
  void on_publish(sim::ProcId sender,
                  std::span<const sim::StagedMessage> items,
                  std::int64_t window);

  /// A receiving step (or bulk delivery run) delivered `env` in
  /// `window` at engine step counter `step`.
  void on_deliver(const sim::Envelope& env, std::int64_t window,
                  std::int64_t step);

  /// The buffer discarded a pending (sender → receiver) message
  /// undelivered: the end-of-window sweep or an explicit drop.
  void on_suppress(sim::ProcId sender, sim::ProcId receiver);

  /// Processor `p` wrote its decision in `window` at step `step`.
  void on_decision(sim::ProcId p, std::int64_t window, std::int64_t step);

  // ---- views -------------------------------------------------------------

  [[nodiscard]] int n() const noexcept { return n_; }

  [[nodiscard]] std::int64_t sent(sim::ProcId s) const {
    return sent_[idx(s)];
  }
  /// Messages of sender s that conflicted with an earlier same-key message
  /// in the same staged batch (the equivocation signature).
  [[nodiscard]] std::int64_t equivocations(sim::ProcId s) const {
    return equivocations_[idx(s)];
  }
  [[nodiscard]] std::int64_t delivered(sim::ProcId s, sim::ProcId r) const {
    return delivered_[pair(s, r)];
  }
  [[nodiscard]] std::int64_t suppressed(sim::ProcId s, sim::ProcId r) const {
    return suppressed_[pair(s, r)];
  }
  [[nodiscard]] std::int64_t delivered_total(sim::ProcId s) const;
  [[nodiscard]] std::int64_t suppressed_total(sim::ProcId s) const;

  /// Window of r's first delivery from s, or −1 if r never heard s.
  [[nodiscard]] std::int64_t first_heard_window(sim::ProcId s,
                                                sim::ProcId r) const {
    return first_window_[pair(s, r)];
  }
  /// Step of r's first delivery from s, or −1.
  [[nodiscard]] std::int64_t first_heard_step(sim::ProcId s,
                                              sim::ProcId r) const {
    return first_step_[pair(s, r)];
  }
  /// Window in which p decided, or −1 if p has not decided.
  [[nodiscard]] std::int64_t decision_window(sim::ProcId p) const {
    return decision_window_[idx(p)];
  }
  /// Number of processors that decided this trial.
  [[nodiscard]] std::int64_t deciders() const noexcept { return deciders_; }

  /// (decider, sender) pairs where the decider had heard the sender by
  /// its decision step — the per-sender confirmation evidence.
  [[nodiscard]] std::int64_t confirm_count(sim::ProcId s) const {
    return confirm_count_[idx(s)];
  }
  [[nodiscard]] std::int64_t confirm_window_sum(sim::ProcId s) const {
    return confirm_window_sum_[idx(s)];
  }
  [[nodiscard]] std::int64_t confirm_step_sum(sim::ProcId s) const {
    return confirm_step_sum_[idx(s)];
  }
  /// Histogram of delivery lag (delivery window − send window) for s.
  [[nodiscard]] std::int64_t delivery_hist(sim::ProcId s, int bucket) const {
    return delivery_hist_[hidx(s, bucket)];
  }
  /// Histogram of confirmation spans (decision window − first-heard
  /// window) for s.
  [[nodiscard]] std::int64_t confirm_hist(sim::ProcId s, int bucket) const {
    return confirm_hist_[hidx(s, bucket)];
  }

 private:
  [[nodiscard]] std::size_t idx(sim::ProcId p) const {
    AA_CHECK(p >= 0 && p < n_, "WindowTrace: proc id out of range");
    return static_cast<std::size_t>(p);
  }
  [[nodiscard]] std::size_t pair(sim::ProcId s, sim::ProcId r) const {
    return idx(s) * static_cast<std::size_t>(n_) + idx(r);
  }
  [[nodiscard]] std::size_t hidx(sim::ProcId s, int bucket) const {
    AA_CHECK(bucket >= 0 && bucket < kBuckets,
             "WindowTrace: histogram bucket out of range");
    return idx(s) * static_cast<std::size_t>(kBuckets) +
           static_cast<std::size_t>(bucket);
  }
  static int bucket_of(std::int64_t span) {
    if (span < 0) span = 0;
    return span >= kBuckets ? kBuckets - 1 : static_cast<int>(span);
  }

  int n_ = 0;
  // Per-sender.
  std::vector<std::int64_t> sent_;
  std::vector<std::int64_t> equivocations_;
  std::vector<std::int64_t> confirm_count_;
  std::vector<std::int64_t> confirm_window_sum_;
  std::vector<std::int64_t> confirm_step_sum_;
  // Per-(sender, receiver), row-major sender-first.
  std::vector<std::int64_t> delivered_;
  std::vector<std::int64_t> suppressed_;
  std::vector<std::int64_t> first_window_;  // −1 = never heard
  std::vector<std::int64_t> first_step_;    // −1 = never heard
  // Per-processor.
  std::vector<std::int64_t> decision_window_;  // −1 = undecided
  // Per-sender histograms, kBuckets wide.
  std::vector<std::int64_t> delivery_hist_;
  std::vector<std::int64_t> confirm_hist_;
  std::int64_t deciders_ = 0;
};

}  // namespace aa::lens
