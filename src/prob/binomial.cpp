#include "prob/binomial.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace aa::prob {

double log_choose(std::int64_t n, std::int64_t k) {
  AA_REQUIRE(n >= 0, "log_choose: n must be non-negative");
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binom_pmf(std::int64_t n, std::int64_t k, double p) {
  AA_REQUIRE(p >= 0.0 && p <= 1.0, "binom_pmf: p out of [0,1]");
  if (k < 0 || k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double lg = log_choose(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lg);
}

double binom_cdf(std::int64_t n, std::int64_t k, double p) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  double total = 0.0;
  for (std::int64_t i = 0; i <= k; ++i) total += binom_pmf(n, i, p);
  return total > 1.0 ? 1.0 : total;
}

double binom_tail_ge(std::int64_t n, std::int64_t k, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the smaller side for accuracy.
  if (k > n / 2) {
    double total = 0.0;
    for (std::int64_t i = k; i <= n; ++i) total += binom_pmf(n, i, p);
    return total > 1.0 ? 1.0 : total;
  }
  return 1.0 - binom_cdf(n, k - 1, p);
}

double hoeffding_upper(std::int64_t n, double eps) {
  AA_REQUIRE(n > 0, "hoeffding_upper: n must be positive");
  AA_REQUIRE(eps >= 0.0, "hoeffding_upper: eps must be non-negative");
  return std::exp(-2.0 * static_cast<double>(n) * eps * eps);
}

double strong_majority_probability(std::int64_t n, std::int64_t k) {
  AA_REQUIRE(n > 0, "strong_majority_probability: n must be positive");
  const double tail = binom_tail_ge(n, k, 0.5);
  if (2 * k > n) return std::min(1.0, 2.0 * tail);  // disjoint events
  return 1.0;  // k ≤ n/2: some value always has ≥ k ≥ ... actually ≥ ⌈n/2⌉ ≥ k
}

double expected_rounds_until(double q) {
  AA_REQUIRE(q > 0.0 && q <= 1.0, "expected_rounds_until: q out of (0,1]");
  return 1.0 / q;
}

}  // namespace aa::prob
