// Exact binomial probabilities and tail bounds.
//
// Used to quantify the §3 running-time discussion: a decision requires a
// strong majority among ~n fair coins, which happens with probability
// exponentially small in n — the source of the algorithm's exponential
// expected running time.
#pragma once

#include <cstdint>

namespace aa::prob {

/// log(n choose k) via lgamma; exact enough for all our n.
[[nodiscard]] double log_choose(std::int64_t n, std::int64_t k);

/// P[Bin(n, p) = k].
[[nodiscard]] double binom_pmf(std::int64_t n, std::int64_t k, double p);

/// P[Bin(n, p) ≤ k] by direct summation.
[[nodiscard]] double binom_cdf(std::int64_t n, std::int64_t k, double p);

/// P[Bin(n, p) ≥ k].
[[nodiscard]] double binom_tail_ge(std::int64_t n, std::int64_t k, double p);

/// Hoeffding upper bound on P[Bin(n, p) ≥ n(p + eps)] = e^{−2 n eps²}.
[[nodiscard]] double hoeffding_upper(std::int64_t n, double eps);

/// Probability that n independent fair coins contain ≥ k of SOME common
/// value (0 or 1). For k > n/2 this is P[#1 ≥ k] + P[#0 ≥ k]. This is the
/// per-round chance that randomized votes spontaneously form the strong
/// majority the §3 algorithm needs to decide.
[[nodiscard]] double strong_majority_probability(std::int64_t n,
                                                 std::int64_t k);

/// Expected number of rounds until a geometric event of probability q
/// first occurs (1/q); convenience for the exponential-rounds discussion.
[[nodiscard]] double expected_rounds_until(double q);

}  // namespace aa::prob
