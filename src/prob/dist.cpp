#include "prob/dist.hpp"

#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace aa::prob {

FiniteDist::FiniteDist(std::vector<double> probs) : probs_(std::move(probs)) {
  AA_REQUIRE(!probs_.empty(), "FiniteDist: empty support");
  double total = 0.0;
  for (double p : probs_) {
    AA_REQUIRE(p >= 0.0, "FiniteDist: negative probability");
    total += p;
  }
  AA_REQUIRE(total > 0.0, "FiniteDist: zero total mass");
  AA_REQUIRE(std::abs(total - 1.0) < 1e-6,
             "FiniteDist: probabilities must sum to 1");
  for (double& p : probs_) p /= total;  // exact renormalization
  cdf_.resize(probs_.size());
  std::partial_sum(probs_.begin(), probs_.end(), cdf_.begin());
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

FiniteDist FiniteDist::point_mass(int symbol, int k) {
  AA_REQUIRE(k > 0 && symbol >= 0 && symbol < k,
             "point_mass: symbol out of alphabet");
  std::vector<double> p(static_cast<std::size_t>(k), 0.0);
  p[static_cast<std::size_t>(symbol)] = 1.0;
  return FiniteDist(std::move(p));
}

FiniteDist FiniteDist::uniform(int k) {
  AA_REQUIRE(k > 0, "uniform: k must be positive");
  return FiniteDist(
      std::vector<double>(static_cast<std::size_t>(k), 1.0 / k));
}

FiniteDist FiniteDist::bernoulli(double p) {
  AA_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p out of [0,1]");
  return FiniteDist({1.0 - p, p});
}

FiniteDist FiniteDist::random(int k, Rng& rng) {
  AA_REQUIRE(k > 0, "random: k must be positive");
  std::vector<double> w(static_cast<std::size_t>(k));
  double total = 0.0;
  for (double& x : w) {
    x = -std::log(1.0 - rng.next_double());  // Exp(1) variates
    total += x;
  }
  for (double& x : w) x /= total;
  return FiniteDist(std::move(w));
}

double FiniteDist::p(int symbol) const {
  AA_REQUIRE(symbol >= 0 && symbol < alphabet_size(),
             "FiniteDist::p: symbol out of alphabet");
  return probs_[static_cast<std::size_t>(symbol)];
}

int FiniteDist::sample(Rng& rng) const {
  const double u = rng.next_double();
  // Binary search the inclusive-prefix cdf for the first index with cdf > u.
  int lo = 0;
  int hi = alphabet_size() - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (cdf_[static_cast<std::size_t>(mid)] > u) hi = mid;
    else lo = mid + 1;
  }
  return lo;
}

}  // namespace aa::prob
