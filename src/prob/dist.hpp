// Finite probability distributions over the alphabet {0, 1, ..., k-1}.
//
// These are the per-coordinate factors Ω_i of the product measures in §4.1
// of the paper. Arbitrary finite supports are allowed — the lower-bound
// technique's selling point is tolerating "arbitrary use of randomness".
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace aa::prob {

class FiniteDist {
 public:
  /// Probabilities for symbols 0..k-1; must be non-negative and sum to 1
  /// within tolerance (renormalized exactly on construction).
  explicit FiniteDist(std::vector<double> probs);

  /// Point mass on `symbol` within an alphabet of size `k`.
  static FiniteDist point_mass(int symbol, int k);

  /// Uniform over an alphabet of size `k`.
  static FiniteDist uniform(int k);

  /// Bernoulli(p) on {0,1}: P[1] = p.
  static FiniteDist bernoulli(double p);

  /// Random distribution over alphabet of size `k` (Dirichlet-ish via
  /// normalized exponentials) — used by property tests and F3.
  static FiniteDist random(int k, Rng& rng);

  [[nodiscard]] int alphabet_size() const noexcept {
    return static_cast<int>(probs_.size());
  }
  [[nodiscard]] double p(int symbol) const;
  [[nodiscard]] const std::vector<double>& probs() const noexcept {
    return probs_;
  }

  /// Sample one symbol.
  [[nodiscard]] int sample(Rng& rng) const;

 private:
  std::vector<double> probs_;
  std::vector<double> cdf_;  // inclusive prefix sums for sampling
};

}  // namespace aa::prob
