#include "prob/hamming.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aa::prob {

int hamming(const Point& x, const Point& y) {
  AA_REQUIRE(x.size() == y.size(), "hamming: dimension mismatch");
  int d = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] != y[i]) ++d;
  }
  return d;
}

int hamming_to_set(const Point& x, const std::vector<Point>& A) {
  AA_REQUIRE(!A.empty(), "hamming_to_set: empty set");
  int best = static_cast<int>(x.size()) + 1;
  for (const Point& a : A) best = std::min(best, hamming(x, a));
  return best;
}

int hamming_between_sets(const std::vector<Point>& A,
                         const std::vector<Point>& B) {
  AA_REQUIRE(!A.empty() && !B.empty(), "hamming_between_sets: empty set");
  int best = static_cast<int>(A.front().size()) + 1;
  for (const Point& a : A) {
    for (const Point& b : B) best = std::min(best, hamming(a, b));
    if (best == 0) return 0;
  }
  return best;
}

bool in_ball(const Point& x, const std::vector<Point>& A, int d) {
  AA_REQUIRE(!A.empty(), "in_ball: empty set");
  for (const Point& a : A) {
    if (hamming(x, a) <= d) return true;
  }
  return false;
}

SetPredicate ball_predicate(std::vector<Point> A, int d) {
  return [A = std::move(A), d](const Point& x) { return in_ball(x, A, d); };
}

}  // namespace aa::prob
