// Hamming distances between configurations and sets of configurations —
// Definitions 6, 7, 8 of the paper.
#pragma once

#include <vector>

#include "prob/product.hpp"

namespace aa::prob {

/// ∆(x, y): number of coordinates where the points differ.
[[nodiscard]] int hamming(const Point& x, const Point& y);

/// ∆(x, A) = min_{a ∈ A} ∆(x, a) (Definition 6). A must be non-empty.
[[nodiscard]] int hamming_to_set(const Point& x, const std::vector<Point>& A);

/// ∆(A, B) = min over pairs (Definition 7). Both sets must be non-empty.
[[nodiscard]] int hamming_between_sets(const std::vector<Point>& A,
                                       const std::vector<Point>& B);

/// Membership in B(A, d) = {x : ∆(x, A) ≤ d} (Definition 8).
[[nodiscard]] bool in_ball(const Point& x, const std::vector<Point>& A, int d);

/// Predicate wrapper for B(A, d), usable with ProductSpace probabilities.
[[nodiscard]] SetPredicate ball_predicate(std::vector<Point> A, int d);

}  // namespace aa::prob
