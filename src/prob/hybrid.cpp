#include "prob/hybrid.hpp"

#include "util/check.hpp"

namespace aa::prob {

namespace {

using Evaluator = std::function<double(const ProductSpace&, const SetPredicate&)>;

HybridResult search(const ProductSpace& pi_n, const ProductSpace& pi_0,
                    const SetPredicate& in_z0, const SetPredicate& in_z1,
                    double eta, const Evaluator& prob_of) {
  AA_REQUIRE(pi_n.dimension() == pi_0.dimension(),
             "hybrid search: dimension mismatch");
  AA_REQUIRE(eta > 0.0 && eta < 1.0, "hybrid search: eta out of (0,1)");

  HybridResult r;
  r.eta = eta;
  const int n = pi_n.dimension();
  for (int j = 0; j <= n; ++j) {
    const ProductSpace pj = ProductSpace::hybrid(pi_n, pi_0, j);
    const double p0 = prob_of(pj, in_z0);
    if (p0 <= eta) {
      r.j_star = j;
      r.p_z0 = p0;
      r.p_z1 = prob_of(pj, in_z1);
      // Z0 and Z1 are disjoint whenever separated, so the union's mass is
      // the sum; clamp for MC noise.
      r.p_union = std::min(1.0, r.p_z0 + r.p_z1);
      r.escape = 1.0 - r.p_union;
      r.lemma_satisfied = r.p_union <= 2.0 * eta + 1e-9;
      return r;
    }
  }
  // Unreachable when the preconditions of Lemma 14 hold: j = n gives π_n,
  // which places ≤ τ ≤ η mass on Z0 by assumption.
  return r;
}

SetPredicate membership_of(const std::vector<Point>& set) {
  AA_REQUIRE(!set.empty(), "hybrid search: empty target set");
  return [&set](const Point& x) { return hamming_to_set(x, set) == 0; };
}

Evaluator exact_evaluator() {
  return [](const ProductSpace& s, const SetPredicate& A) {
    return s.exact_probability(A);
  };
}

Evaluator mc_evaluator(std::size_t samples, Rng& rng) {
  return [samples, &rng](const ProductSpace& s, const SetPredicate& A) {
    return s.mc_probability(A, samples, rng);
  };
}

}  // namespace

HybridResult find_hybrid_exact(const ProductSpace& pi_n,
                               const ProductSpace& pi_0,
                               const std::vector<Point>& Z0,
                               const std::vector<Point>& Z1, double eta) {
  return search(pi_n, pi_0, membership_of(Z0), membership_of(Z1), eta,
                exact_evaluator());
}

HybridResult find_hybrid_mc(const ProductSpace& pi_n, const ProductSpace& pi_0,
                            const std::vector<Point>& Z0,
                            const std::vector<Point>& Z1, double eta,
                            std::size_t samples, Rng& rng) {
  return search(pi_n, pi_0, membership_of(Z0), membership_of(Z1), eta,
                mc_evaluator(samples, rng));
}

HybridResult find_hybrid_exact_pred(const ProductSpace& pi_n,
                                    const ProductSpace& pi_0,
                                    const SetPredicate& in_z0,
                                    const SetPredicate& in_z1, double eta) {
  return search(pi_n, pi_0, in_z0, in_z1, eta, exact_evaluator());
}

HybridResult find_hybrid_mc_pred(const ProductSpace& pi_n,
                                 const ProductSpace& pi_0,
                                 const SetPredicate& in_z0,
                                 const SetPredicate& in_z1, double eta,
                                 std::size_t samples, Rng& rng) {
  return search(pi_n, pi_0, in_z0, in_z1, eta, mc_evaluator(samples, rng));
}

}  // namespace aa::prob
