// The coordinate-interpolation ("hybrid") argument of Lemma 14 / Lemma 21.
//
// Given two product distributions — π_0 that places ≤ τ mass on Z_1 and
// π_n that places ≤ τ mass on Z_0 — interpolate one coordinate at a time.
// Let j* be minimal with P_{π_{j*}}[Z_0] ≤ η. Then, because π_{j*} and
// π_{j*−1} differ in one coordinate, P_{π_{j*}}[B(Z_0, 1)] ≥ P_{π_{j*−1}}[Z_0]
// > η, and Talagrand + the ∆(Z_0, Z_1) > t separation force
// P_{π_{j*}}[Z_1] ≤ η too. One window choice therefore avoids BOTH sets with
// probability ≥ 1 − 2η.
//
// This module performs that search and verifies the escape probability,
// exactly on enumerable spaces or by Monte-Carlo (experiment F6).
#pragma once

#include <vector>

#include "prob/hamming.hpp"
#include "prob/product.hpp"

namespace aa::prob {

struct HybridResult {
  int j_star = -1;          ///< minimal j with P_{π_j}[Z0] ≤ η
  double p_z0 = 1.0;        ///< P_{π_{j*}}[Z0]
  double p_z1 = 1.0;        ///< P_{π_{j*}}[Z1]
  double p_union = 1.0;     ///< P_{π_{j*}}[Z0 ∪ Z1]
  double eta = 0.0;         ///< the threshold used
  double escape = 0.0;      ///< 1 − p_union: probability of avoiding both
  bool lemma_satisfied = false;  ///< p_union ≤ 2η (Lemma 14's guarantee)
};

/// Exact search: spaces must be enumerable. Z0/Z1 are explicit point lists
/// (membership by equality); they should be Hamming-separated by > t for the
/// lemma's guarantee to be meaningful.
[[nodiscard]] HybridResult find_hybrid_exact(const ProductSpace& pi_n,
                                             const ProductSpace& pi_0,
                                             const std::vector<Point>& Z0,
                                             const std::vector<Point>& Z1,
                                             double eta);

/// Monte-Carlo search with `samples` draws per hybrid evaluation.
[[nodiscard]] HybridResult find_hybrid_mc(const ProductSpace& pi_n,
                                          const ProductSpace& pi_0,
                                          const std::vector<Point>& Z0,
                                          const std::vector<Point>& Z1,
                                          double eta, std::size_t samples,
                                          Rng& rng);

/// Predicate-based variants: Z0/Z1 given as membership predicates instead
/// of explicit point lists (needed when the sets are half-spaces like
/// "some processor decided 0" that no finite sample covers). The caller is
/// responsible for Z0 and Z1 being disjoint.
[[nodiscard]] HybridResult find_hybrid_exact_pred(const ProductSpace& pi_n,
                                                  const ProductSpace& pi_0,
                                                  const SetPredicate& in_z0,
                                                  const SetPredicate& in_z1,
                                                  double eta);
[[nodiscard]] HybridResult find_hybrid_mc_pred(const ProductSpace& pi_n,
                                               const ProductSpace& pi_0,
                                               const SetPredicate& in_z0,
                                               const SetPredicate& in_z1,
                                               double eta,
                                               std::size_t samples, Rng& rng);

}  // namespace aa::prob
