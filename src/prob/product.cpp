#include "prob/product.hpp"

#include "util/check.hpp"

namespace aa::prob {

ProductSpace::ProductSpace(std::vector<FiniteDist> coords)
    : coords_(std::move(coords)) {
  AA_REQUIRE(!coords_.empty(), "ProductSpace: need at least one coordinate");
}

ProductSpace ProductSpace::iid(const FiniteDist& d, int n) {
  AA_REQUIRE(n > 0, "ProductSpace::iid: n must be positive");
  return ProductSpace(std::vector<FiniteDist>(static_cast<std::size_t>(n), d));
}

const FiniteDist& ProductSpace::coord(int i) const {
  AA_REQUIRE(i >= 0 && i < dimension(), "ProductSpace::coord: bad index");
  return coords_[static_cast<std::size_t>(i)];
}

double ProductSpace::point_probability(const Point& x) const {
  AA_REQUIRE(static_cast<int>(x.size()) == dimension(),
             "point_probability: dimension mismatch");
  double p = 1.0;
  for (int i = 0; i < dimension(); ++i) {
    p *= coords_[static_cast<std::size_t>(i)].p(x[static_cast<std::size_t>(i)]);
    if (p == 0.0) return 0.0;
  }
  return p;
}

std::uint64_t ProductSpace::grid_size() const {
  std::uint64_t total = 1;
  for (const auto& c : coords_) {
    const auto k = static_cast<std::uint64_t>(c.alphabet_size());
    AA_REQUIRE(total <= UINT64_MAX / k, "ProductSpace: grid size overflow");
    total *= k;
  }
  return total;
}

std::uint64_t ProductSpace::support_size() const {
  std::uint64_t total = 1;
  for (const auto& c : coords_) {
    std::uint64_t k = 0;
    for (int s = 0; s < c.alphabet_size(); ++s) {
      if (c.p(s) > 0.0) ++k;
    }
    AA_REQUIRE(k > 0 && total <= UINT64_MAX / k,
               "ProductSpace: support size overflow");
    total *= k;
  }
  return total;
}

void ProductSpace::enumerate(
    const std::function<void(const Point&, double)>& visit,
    std::uint64_t max_points) const {
  AA_REQUIRE(support_size() <= max_points,
             "ProductSpace::enumerate: support too large");
  const int n = dimension();
  // Odometer over positive-mass symbols only: point-mass coordinates
  // contribute one branch, not alphabet_size() branches.
  std::vector<std::vector<int>> support(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const FiniteDist& c = coords_[static_cast<std::size_t>(i)];
    for (int s = 0; s < c.alphabet_size(); ++s) {
      if (c.p(s) > 0.0) support[static_cast<std::size_t>(i)].push_back(s);
    }
  }
  std::vector<std::size_t> idx(static_cast<std::size_t>(n), 0);
  Point x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = support[static_cast<std::size_t>(i)][0];
  while (true) {
    visit(x, point_probability(x));
    int i = n - 1;
    while (i >= 0) {
      auto& ii = idx[static_cast<std::size_t>(i)];
      if (++ii < support[static_cast<std::size_t>(i)].size()) {
        x[static_cast<std::size_t>(i)] =
            support[static_cast<std::size_t>(i)][ii];
        break;
      }
      ii = 0;
      x[static_cast<std::size_t>(i)] = support[static_cast<std::size_t>(i)][0];
      --i;
    }
    if (i < 0) break;
  }
}

double ProductSpace::exact_probability(const SetPredicate& A,
                                       std::uint64_t max_points) const {
  double total = 0.0;
  enumerate(
      [&](const Point& x, double p) {
        if (A(x)) total += p;
      },
      max_points);
  return total;
}

double ProductSpace::mc_probability(const SetPredicate& A,
                                    std::size_t samples, Rng& rng) const {
  AA_REQUIRE(samples > 0, "mc_probability: need at least one sample");
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    if (A(sample(rng))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

Point ProductSpace::sample(Rng& rng) const {
  Point x(static_cast<std::size_t>(dimension()));
  for (int i = 0; i < dimension(); ++i) {
    x[static_cast<std::size_t>(i)] =
        coords_[static_cast<std::size_t>(i)].sample(rng);
  }
  return x;
}

ProductSpace ProductSpace::hybrid(const ProductSpace& pi_n,
                                  const ProductSpace& pi_0, int j) {
  AA_REQUIRE(pi_n.dimension() == pi_0.dimension(),
             "hybrid: dimension mismatch");
  AA_REQUIRE(j >= 0 && j <= pi_n.dimension(), "hybrid: j out of range");
  std::vector<FiniteDist> coords;
  coords.reserve(static_cast<std::size_t>(pi_n.dimension()));
  for (int i = 0; i < pi_n.dimension(); ++i) {
    coords.push_back(i < j ? pi_n.coord(i) : pi_0.coord(i));
  }
  return ProductSpace(std::move(coords));
}

}  // namespace aa::prob
