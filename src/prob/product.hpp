// Product probability spaces Ω = Ω_1 × ... × Ω_n (§4.1).
//
// Points are configurations (vectors of symbols, one per coordinate). Exact
// enumeration is available for small spaces; Monte-Carlo estimation for
// large ones. These spaces model the joint distribution of the n processor
// states after one acceptable window — which is a product measure because
// each processor samples its local randomness independently (Lemma 13's
// argument).
#pragma once

#include <functional>
#include <vector>

#include "prob/dist.hpp"
#include "util/rng.hpp"

namespace aa::prob {

/// A configuration / point of the product space.
using Point = std::vector<int>;

/// Membership predicate for an event A ⊆ Ω.
using SetPredicate = std::function<bool(const Point&)>;

class ProductSpace {
 public:
  explicit ProductSpace(std::vector<FiniteDist> coords);

  /// n i.i.d. copies of `d`.
  static ProductSpace iid(const FiniteDist& d, int n);

  [[nodiscard]] int dimension() const noexcept {
    return static_cast<int>(coords_.size());
  }
  [[nodiscard]] const FiniteDist& coord(int i) const;
  [[nodiscard]] const std::vector<FiniteDist>& coords() const noexcept {
    return coords_;
  }

  /// Probability of the single point `x` (product of coordinate masses).
  [[nodiscard]] double point_probability(const Point& x) const;

  /// Number of points in the support grid (product of alphabet sizes);
  /// throws if it would overflow the return type.
  [[nodiscard]] std::uint64_t grid_size() const;

  /// Number of positive-probability points (product of per-coordinate
  /// support sizes) — what enumeration actually visits. Point-mass
  /// coordinates contribute a factor of 1.
  [[nodiscard]] std::uint64_t support_size() const;

  /// Exact P[A] by full enumeration. Feasible only when support_size() is
  /// small; throws if it exceeds `max_points`.
  [[nodiscard]] double exact_probability(const SetPredicate& A,
                                         std::uint64_t max_points = 1u
                                             << 22) const;

  /// Enumerate all grid points with positive probability, invoking
  /// visit(point, probability). Throws if the grid exceeds `max_points`.
  void enumerate(const std::function<void(const Point&, double)>& visit,
                 std::uint64_t max_points = 1u << 22) const;

  /// Monte-Carlo estimate of P[A].
  [[nodiscard]] double mc_probability(const SetPredicate& A,
                                      std::size_t samples, Rng& rng) const;

  /// Sample one point.
  [[nodiscard]] Point sample(Rng& rng) const;

  /// The hybrid distribution π_j of Lemma 14: coordinates 1..j from `pi_n`,
  /// coordinates j+1..n from `pi_0` (1-based j as in the paper; j ranges
  /// 0..n). Requires equal dimensions.
  static ProductSpace hybrid(const ProductSpace& pi_n,
                             const ProductSpace& pi_0, int j);

 private:
  std::vector<FiniteDist> coords_;
};

}  // namespace aa::prob
