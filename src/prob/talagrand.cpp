#include "prob/talagrand.hpp"

#include <cmath>

#include "util/check.hpp"

namespace aa::prob {

namespace {
constexpr double kSlack = 1e-9;  // numerical slack for `holds`

TalagrandCheck finalize(double p_a, double p_ball, double d, int n) {
  TalagrandCheck c;
  c.p_a = p_a;
  c.p_ball = p_ball;
  c.lhs = p_a * (1.0 - p_ball);
  c.bound = talagrand_bound(d, n);
  c.holds = c.lhs <= c.bound + kSlack;
  c.tightness = (c.bound > 0.0) ? c.lhs / c.bound : 0.0;
  return c;
}
}  // namespace

double talagrand_bound(double d, int n) {
  AA_REQUIRE(n > 0, "talagrand_bound: n must be positive");
  AA_REQUIRE(d >= 0.0, "talagrand_bound: d must be non-negative");
  return std::exp(-d * d / (4.0 * static_cast<double>(n)));
}

double tau_threshold(int t, int n) {
  AA_REQUIRE(n > 0 && t >= 0, "tau_threshold: bad arguments");
  const double td = static_cast<double>(t);
  return std::exp(-td * td / (8.0 * static_cast<double>(n)));
}

double eta_threshold(int t, int n) {
  AA_REQUIRE(n > 0 && t >= 1, "eta_threshold: bad arguments");
  const double td = static_cast<double>(t - 1);
  return std::exp(-td * td / (8.0 * static_cast<double>(n)));
}

TalagrandCheck check_exact(const ProductSpace& space,
                           const std::vector<Point>& A, int d) {
  AA_REQUIRE(!A.empty(), "check_exact: A must be non-empty");
  double p_a = 0.0;
  double p_ball = 0.0;
  space.enumerate([&](const Point& x, double p) {
    if (hamming_to_set(x, A) == 0) p_a += p;
    if (in_ball(x, A, d)) p_ball += p;
  });
  return finalize(p_a, p_ball, static_cast<double>(d), space.dimension());
}

TalagrandCheck check_mc(const ProductSpace& space, const std::vector<Point>& A,
                        int d, std::size_t samples, Rng& rng) {
  AA_REQUIRE(!A.empty(), "check_mc: A must be non-empty");
  AA_REQUIRE(samples > 0, "check_mc: need samples");
  std::size_t hits_a = 0;
  std::size_t hits_ball = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const Point x = space.sample(rng);
    const int dist = hamming_to_set(x, A);
    if (dist == 0) ++hits_a;
    if (dist <= d) ++hits_ball;
  }
  const double denom = static_cast<double>(samples);
  return finalize(static_cast<double>(hits_a) / denom,
                  static_cast<double>(hits_ball) / denom,
                  static_cast<double>(d), space.dimension());
}

double separated_mass_ceiling(int d, int n) {
  AA_REQUIRE(n > 0 && d >= 0, "separated_mass_ceiling: bad arguments");
  const double dd = static_cast<double>(d);
  return std::exp(-dd * dd / (8.0 * static_cast<double>(n)));
}

}  // namespace aa::prob
