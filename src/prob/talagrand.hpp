// Talagrand's concentration inequality in the Hamming-distance form the
// paper uses (Lemma 9):
//
//     P[A] · (1 − P[B(A, d)]) ≤ e^{−d² / 4n}
//
// for any A ⊆ Ω (a product space of dimension n) and any d ≥ 0. This is the
// engine of the paper's lower bound: two Hamming-separated sets cannot both
// carry large product-measure weight.
//
// We provide the bound itself, exact verification on enumerable spaces, and
// Monte-Carlo verification on large spaces (experiment F3).
#pragma once

#include <vector>

#include "prob/hamming.hpp"
#include "prob/product.hpp"

namespace aa::prob {

/// The right-hand side e^{−d²/4n}.
[[nodiscard]] double talagrand_bound(double d, int n);

/// The separation threshold τ = e^{−t²/8n} used throughout §4, and the
/// escape threshold η = e^{−(t−1)²/8n} of Lemma 14.
[[nodiscard]] double tau_threshold(int t, int n);
[[nodiscard]] double eta_threshold(int t, int n);

/// Outcome of checking Lemma 9 for a concrete (space, A, d).
struct TalagrandCheck {
  double p_a = 0.0;      ///< P[A]
  double p_ball = 0.0;   ///< P[B(A, d)]
  double lhs = 0.0;      ///< P[A]·(1 − P[B(A,d)])
  double bound = 0.0;    ///< e^{−d²/4n}
  bool holds = false;    ///< lhs ≤ bound (with tiny numerical slack)
  /// Tightness ratio lhs / bound in [0, 1] when the bound holds.
  double tightness = 0.0;
};

/// Exact check by enumerating the space. A is given as an explicit list of
/// points (membership by equality).
[[nodiscard]] TalagrandCheck check_exact(const ProductSpace& space,
                                         const std::vector<Point>& A, int d);

/// Monte-Carlo check: estimates P[A] and P[B(A,d)] by sampling. A is given
/// as an explicit point list so that ball membership is computable.
[[nodiscard]] TalagrandCheck check_mc(const ProductSpace& space,
                                      const std::vector<Point>& A, int d,
                                      std::size_t samples, Rng& rng);

/// Corollary used by Lemma 13: if A and B are sets with ∆(A,B) > d, then
/// min(P[A], P[B])² ≤ e^{−d²/4n}; i.e. both cannot exceed e^{−d²/8n}.
/// Returns that ceiling for given d, n.
[[nodiscard]] double separated_mass_ceiling(int d, int n);

}  // namespace aa::prob
