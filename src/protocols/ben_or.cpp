#include "protocols/ben_or.hpp"

#include "util/check.hpp"

namespace aa::protocols {

sim::Message make_report(int round, int value) {
  sim::Message m;
  m.round = round;
  m.kind = kReportKind;
  m.value = value;
  return m;
}

sim::Message make_proposal(int round, int value_or_bot) {
  sim::Message m;
  m.round = round;
  m.kind = kProposalKind;
  m.value = value_or_bot;
  return m;
}

BenOrProcess::BenOrProcess(int id, int n, int t, int input)
    : id_(id), n_(n), t_(t), input_(input), x_(input) {
  AA_REQUIRE(id >= 0 && id < n, "BenOrProcess: bad id");
  AA_REQUIRE(input == 0 || input == 1, "BenOrProcess: input must be a bit");
  AA_REQUIRE(t >= 0 && 2 * t < n, "BenOrProcess: requires t < n/2");
}

void BenOrProcess::on_start(sim::Outbox& out) {
  out.broadcast(make_report(round_, x_));
}

void BenOrProcess::on_receive(const sim::Envelope& env, Rng& rng,
                              sim::Outbox& out) {
  handle(env, rng, out);
}

void BenOrProcess::on_receive_batch(std::span<const sim::Envelope* const> envs,
                                    Rng& rng, sim::Outbox& out) {
  for (const sim::Envelope* env : envs) handle(*env, rng, out);
}

void BenOrProcess::handle(const sim::Envelope& env, Rng& rng,
                          sim::Outbox& out) {
  const sim::Message& m = env.payload;
  int phase = 0;
  if (m.kind == kReportKind) phase = 1;
  else if (m.kind == kProposalKind) phase = 2;
  else return;
  if (phase == 1 && m.value != 0 && m.value != 1) return;
  if (phase == 2 && m.value != 0 && m.value != 1 && m.value != sim::kBot)
    return;
  PhaseTally& pv = votes_[{m.round, phase}];
  // Only the first n − t arrivals are ever consulted; later ones are noted
  // but never counted, so the tally stays bounded.
  if (pv.arrivals < n_ - t_ && (m.value == 0 || m.value == 1))
    ++pv.count[m.value];
  ++pv.arrivals;
  try_advance(rng, out);
}

void BenOrProcess::try_advance(Rng& rng, sim::Outbox& out) {
  // Loop: messages for future (round, phase) pairs may already be queued.
  while (true) {
    auto it = votes_.find({round_, phase_});
    if (it == votes_.end()) return;
    PhaseTally& pv = it->second;
    if (pv.acted || pv.arrivals < n_ - t_) return;
    pv.acted = true;
    if (phase_ == 1) finish_phase1(out);
    else finish_phase2(rng, out);
  }
}

void BenOrProcess::finish_phase1(sim::Outbox& out) {
  const PhaseTally& pv = votes_.at({round_, 1});
  int proposal = sim::kBot;
  // "More than n/2" — over ALL n processors, so two processors can never
  // back conflicting proposals in the same round.
  for (int v = 0; v <= 1; ++v) {
    if (2 * pv.count[v] > n_) proposal = v;
  }
  phase_ = 2;
  out.broadcast(make_proposal(round_, proposal));
}

void BenOrProcess::finish_phase2(Rng& rng, sim::Outbox& out) {
  const PhaseTally& pv = votes_.at({round_, 2});
  const std::int32_t* count = pv.count;
  // At most one value can be proposed at all in a round (see finish_phase1),
  // so these branches cannot conflict.
  for (int v = 0; v <= 1; ++v) {
    if (count[v] >= t_ + 1 && output_ == sim::kBot) output_ = v;
  }
  if (count[0] >= 1) x_ = 0;
  else if (count[1] >= 1) x_ = 1;
  else x_ = rng.next_bool() ? 1 : 0;

  ++round_;
  phase_ = 1;
  prune_old_rounds();
  out.broadcast(make_report(round_, x_));
}

void BenOrProcess::prune_old_rounds() {
  votes_.erase(votes_.begin(),
               votes_.lower_bound(std::pair<int, int>{round_, 0}));
}

void BenOrProcess::on_reset() {
  round_ = 1;
  phase_ = 1;
  x_ = input_;
  votes_.clear();
  // Note: no rejoin logic — Ben-Or is not reset-tolerant; it restarts at
  // round 1 and its round-1 reports will be ignored by peers already in
  // later rounds.
}

}  // namespace aa::protocols
