// Ben-Or's randomized agreement (PODC 1983) for the crash model, in the
// t < n/2 form whose correctness was proven by Aguilera & Toueg (Distributed
// Computing 2012) — reference [1] of the paper.
//
// Round r has two phases:
//   Phase 1 (reports):   broadcast (R, r, x). Wait for n − t reports of
//                        round r. If more than n/2 report the same v,
//                        broadcast proposal (P, r, v); else (P, r, ?).
//   Phase 2 (proposals): wait for n − t proposals of round r. If ≥ t + 1
//                        propose the same v ≠ ? → DECIDE v. Else if ≥ 1
//                        proposes v ≠ ? → x := v. Else x := fresh coin.
//                        Advance to round r + 1.
//
// This is both *forgetful* and *fully communicative* in the paper's §5
// sense — the properties Theorem 17's lower bound keys on.
#pragma once

#include <map>
#include <vector>

#include "sim/process.hpp"

namespace aa::protocols {

inline constexpr std::int32_t kReportKind = 2;
inline constexpr std::int32_t kProposalKind = 3;

[[nodiscard]] sim::Message make_report(int round, int value);
[[nodiscard]] sim::Message make_proposal(int round, int value_or_bot);

class BenOrProcess final : public sim::Process {
 public:
  BenOrProcess(int id, int n, int t, int input);

  void on_start(sim::Outbox& out) override;
  void on_receive(const sim::Envelope& env, Rng& rng,
                  sim::Outbox& out) override;
  /// Batched delivery: same per-envelope computation, devirtualized into a
  /// tight loop over the run.
  void on_receive_batch(std::span<const sim::Envelope* const> envs, Rng& rng,
                        sim::Outbox& out) override;
  /// Ben-Or predates resetting failures; a reset erases state and the
  /// processor restarts from round 1 with its input. The protocol makes no
  /// recovery promises under resets (used to demonstrate non-tolerance in
  /// the T2 matrix).
  void on_reset() override;

  [[nodiscard]] int input() const override { return input_; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override { return round_; }
  [[nodiscard]] int estimate() const override { return x_; }
  [[nodiscard]] const char* protocol_name() const override { return "ben-or"; }

 private:
  /// Bounded per-phase tally: only the first n − t arrivals are ever read,
  /// so we keep counts of 0/1 among them (plus the arrival total) instead
  /// of accumulating every vote value — per-round memory is O(1).
  struct PhaseTally {
    std::int32_t arrivals = 0;       ///< votes recorded for this phase
    std::int32_t count[2] = {0, 0};  ///< 0/1 among the first n − t arrivals
    bool acted = false;  ///< fire exactly once, at the (n−t)-th arrival
  };

  /// Non-virtual receiving-step computation shared by on_receive and the
  /// on_receive_batch loop.
  void handle(const sim::Envelope& env, Rng& rng, sim::Outbox& out);
  void try_advance(Rng& rng, sim::Outbox& out);
  void finish_phase1(sim::Outbox& out);
  void finish_phase2(Rng& rng, sim::Outbox& out);
  void prune_old_rounds();

  int id_;
  int n_;
  int t_;
  int input_;
  int output_ = sim::kBot;
  int round_ = 1;
  int x_;
  int phase_ = 1;  ///< 1 = awaiting reports, 2 = awaiting proposals
  std::map<std::pair<int, int>, PhaseTally> votes_;  ///< (round, phase) → tally
};

}  // namespace aa::protocols
