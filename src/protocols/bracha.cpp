#include "protocols/bracha.hpp"

#include "util/check.hpp"

namespace aa::protocols {

std::int32_t pack_bracha_aux(int originator, int step, bool decide_flag) {
  AA_REQUIRE(originator >= 0 && originator < (1 << 20),
             "pack_bracha_aux: originator out of range");
  AA_REQUIRE(step >= 1 && step <= 3, "pack_bracha_aux: step out of range");
  return static_cast<std::int32_t>((originator << 3) | (step << 1) |
                                   (decide_flag ? 1 : 0));
}

BrachaAux unpack_bracha_aux(std::int32_t aux) {
  BrachaAux a;
  a.decide_flag = (aux & 1) != 0;
  a.step = (aux >> 1) & 0x3;
  a.originator = aux >> 3;
  return a;
}

BrachaProcess::BrachaProcess(int id, int n, int t, int input)
    : id_(id), n_(n), t_(t), input_(input), x_(input) {
  AA_REQUIRE(id >= 0 && id < n, "BrachaProcess: bad id");
  AA_REQUIRE(input == 0 || input == 1, "BrachaProcess: input must be a bit");
  AA_REQUIRE(t >= 0 && 3 * t < n, "BrachaProcess: requires t < n/3");
}

BrachaProcess::InstanceKey BrachaProcess::key_of(int originator, int round,
                                                 int step) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(round)) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(originator))
          << 4) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(step));
}

void BrachaProcess::on_start(sim::Outbox& out) {
  rbc_broadcast(/*step=*/1, x_, /*decide_flag=*/false, out);
}

void BrachaProcess::rbc_broadcast(int step, int value, bool decide_flag,
                                  sim::Outbox& out) {
  sim::Message m;
  m.round = round_;
  m.kind = kRbcInitKind;
  m.value = value;
  m.aux = pack_bracha_aux(id_, step, decide_flag);
  out.broadcast(m);
}

void BrachaProcess::on_receive(const sim::Envelope& env, Rng& rng,
                               sim::Outbox& out) {
  const sim::Message& m = env.payload;
  if (m.kind != kRbcInitKind && m.kind != kRbcEchoKind &&
      m.kind != kRbcReadyKind)
    return;
  handle_rbc(m, env.sender, out);
  // handle_rbc marks freshly delivered instances; drain them.
  // (Delivery is recorded inside handle_rbc via on_rbc_deliver call below.)
  // We re-run the agreement advance after every RBC event because a single
  // echo/ready can complete several pending deliveries in cascade.
  try_advance(rng, out);
}

void BrachaProcess::handle_rbc(const sim::Message& m, int sender,
                               sim::Outbox& out) {
  const BrachaAux aux = unpack_bracha_aux(m.aux);
  if (aux.step < 1 || aux.step > 3) return;
  if (m.value != 0 && m.value != 1) return;
  const InstanceKey k = key_of(aux.originator, m.round, aux.step);
  RbcInstance& inst = instances_[k];
  const Payload payload{m.value, aux.decide_flag};

  auto relay = [&](std::int32_t kind) {
    sim::Message r = m;
    r.kind = kind;
    out.broadcast(r);
  };

  switch (m.kind) {
    case kRbcInitKind:
      // Only the originator's own INIT counts; the FIRST one wins — a later
      // conflicting INIT from an equivocator is ignored here, and its
      // per-payload echo counts can never both reach quorum.
      if (sender != aux.originator || inst.have_init) return;
      inst.have_init = true;
      if (!inst.sent_echo) {
        inst.sent_echo = true;
        relay(kRbcEchoKind);
      }
      break;
    case kRbcEchoKind:
      if (!inst.echo_senders[payload].insert(sender).second) return;
      break;
    case kRbcReadyKind:
      if (!inst.ready_senders[payload].insert(sender).second) return;
      break;
    default:
      return;
  }
  maybe_progress_instance(k, aux.originator, m.round, aux.step, out);
}

void BrachaProcess::maybe_progress_instance(InstanceKey k, int originator,
                                            int round, int step,
                                            sim::Outbox& out) {
  RbcInstance& inst = instances_[k];
  const int echo_threshold = (n_ + t_) / 2 + 1;  // strictly more than (n+t)/2
  // Quorums are evaluated per payload: two conflicting payloads cannot both
  // assemble > (n+t)/2 echoes from n honest-counting receivers.
  for (const auto& [payload, echoes] : inst.echo_senders) {
    if (inst.sent_ready) break;
    if (static_cast<int>(echoes.size()) >= echo_threshold) {
      inst.sent_ready = true;
      sim::Message r;
      r.round = round;
      r.kind = kRbcReadyKind;
      r.value = payload.first;
      r.aux = pack_bracha_aux(originator, step, payload.second);
      out.broadcast(r);
    }
  }
  for (const auto& [payload, readies] : inst.ready_senders) {
    if (!inst.sent_ready && static_cast<int>(readies.size()) >= t_ + 1) {
      // Ready amplification for this payload.
      inst.sent_ready = true;
      sim::Message r;
      r.round = round;
      r.kind = kRbcReadyKind;
      r.value = payload.first;
      r.aux = pack_bracha_aux(originator, step, payload.second);
      out.broadcast(r);
    }
    if (!inst.delivered && static_cast<int>(readies.size()) >= 2 * t_ + 1) {
      inst.delivered = true;
      step_votes_[{round, step}].delivered.emplace_back(payload.first,
                                                        payload.second);
    }
  }
}

void BrachaProcess::try_advance(Rng& rng, sim::Outbox& out) {
  while (true) {
    auto it = step_votes_.find({round_, step_});
    if (it == step_votes_.end()) return;
    StepVotes& sv = it->second;
    if (sv.acted || static_cast<int>(sv.delivered.size()) < n_ - t_) return;
    sv.acted = true;
    finish_step(rng, out);
  }
}

void BrachaProcess::finish_step(Rng& rng, sim::Outbox& out) {
  const auto& got = step_votes_.at({round_, step_}).delivered;
  int count[2] = {0, 0};
  int flagged[2] = {0, 0};
  for (int i = 0; i < n_ - t_; ++i) {
    const auto& [v, flag] = got[static_cast<std::size_t>(i)];
    ++count[v];
    if (flag) ++flagged[v];
  }

  switch (step_) {
    case 1:
      // x := majority of the n−t delivered values (ties keep x).
      if (count[0] > count[1]) x_ = 0;
      else if (count[1] > count[0]) x_ = 1;
      x_flag_ = false;
      step_ = 2;
      break;
    case 2:
      // Attach the decide flag if some value has more than n/2 support.
      x_flag_ = false;
      for (int v = 0; v <= 1; ++v) {
        if (2 * count[v] > n_) {
          x_ = v;
          x_flag_ = true;
        }
      }
      step_ = 3;
      break;
    case 3: {
      int winner = sim::kBot;
      // flagged[0] and flagged[1] cannot both be ≥ t+1: flags require
      // > n/2 support in step 2, and two conflicting majorities cannot
      // both exist among honest-content messages.
      for (int v = 0; v <= 1; ++v) {
        if (flagged[v] >= t_ + 1) winner = v;
      }
      if (winner != sim::kBot && flagged[winner] >= 2 * t_ + 1) {
        if (output_ == sim::kBot) output_ = winner;
        x_ = winner;
      } else if (winner != sim::kBot) {
        x_ = winner;
      } else {
        x_ = rng.next_bool() ? 1 : 0;
      }
      x_flag_ = false;
      ++round_;
      step_ = 1;
      // Prune bookkeeping from completed rounds.
      step_votes_.erase(step_votes_.begin(),
                        step_votes_.lower_bound(std::pair<int, int>{round_, 0}));
      break;
    }
    default:
      AA_CHECK(false, "invalid Bracha step");
  }
  rbc_broadcast(step_, x_, x_flag_, out);
}

void BrachaProcess::on_reset() {
  round_ = 1;
  step_ = 1;
  x_ = input_;
  x_flag_ = false;
  instances_.clear();
  step_votes_.clear();
}

}  // namespace aa::protocols
