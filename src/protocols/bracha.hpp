// Bracha's asynchronous agreement (PODC 1984): reliable broadcast plus a
// three-step voting loop, resilience t < n/3.
//
// Reliable broadcast (per broadcast instance = (originator, round, step)):
//   * originator sends INIT(v) to all;
//   * on first INIT(v): send ECHO(v) to all;
//   * on ≥ ⌈(n+t+1)/2⌉ ECHO(v) or ≥ t+1 READY(v): send READY(v) to all
//     (once);
//   * on ≥ 2t+1 READY(v): RBC-deliver v for that instance.
//
// Agreement loop (values carry an optional decide-flag "d"):
//   step 1: RBC-broadcast x. Await n−t delivered values → x := majority.
//   step 2: RBC-broadcast x. Await n−t → if some v has count > n/2,
//           attach the decide flag: x := (d, v).
//   step 3: RBC-broadcast x (+flag). Await n−t →
//             ≥ 2t+1 flagged v → DECIDE v;  ≥ t+1 flagged v → x := v;
//             else x := fresh coin. Round++, back to step 1.
//
// Reliable-broadcast bookkeeping counts echoes/readies PER PAYLOAD
// (value + decide flag): an equivocating originator that sends INIT(0) to
// half the network and INIT(1) to the other half cannot assemble an echo
// quorum for either payload, so no honest processor RBC-delivers from it —
// the classic equivocation defence (exercised by experiment T4 via
// ByzantineProcess).
//
// Scope note: we implement Bracha's broadcast and voting faithfully, but not
// his full message *validation* layer (justifying each step value against
// the previous step's deliveries). Validation defends against Byzantine
// senders lying about their protocol STATE; the adversaries in this
// repository schedule, silence, crash, reset, or equivocate values — the
// paper's strongly adaptive adversary explicitly "lacks the power to have
// corrupted processors lie about their local random bits". DESIGN.md
// records this substitution.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/process.hpp"

namespace aa::protocols {

inline constexpr std::int32_t kRbcInitKind = 4;
inline constexpr std::int32_t kRbcEchoKind = 5;
inline constexpr std::int32_t kRbcReadyKind = 6;

/// aux packing for Bracha messages: originator id, agreement step (1..3),
/// and the decide flag.
[[nodiscard]] std::int32_t pack_bracha_aux(int originator, int step,
                                           bool decide_flag);
struct BrachaAux {
  int originator;
  int step;
  bool decide_flag;
};
[[nodiscard]] BrachaAux unpack_bracha_aux(std::int32_t aux);

class BrachaProcess final : public sim::Process {
 public:
  BrachaProcess(int id, int n, int t, int input);

  void on_start(sim::Outbox& out) override;
  void on_receive(const sim::Envelope& env, Rng& rng,
                  sim::Outbox& out) override;
  /// Bracha is not reset-tolerant: a reset erases all broadcast bookkeeping
  /// and the processor restarts from round 1 (see the T2 matrix).
  void on_reset() override;

  [[nodiscard]] int input() const override { return input_; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override { return round_; }
  [[nodiscard]] int estimate() const override { return x_; }
  [[nodiscard]] const char* protocol_name() const override { return "bracha"; }

 private:
  /// A broadcast payload: the value plus Bracha's decide flag.
  using Payload = std::pair<int, bool>;

  /// One reliable-broadcast instance: (originator, round, step).
  /// Echo/ready quorums are tracked per payload so an equivocating
  /// originator cannot mix support across conflicting payloads.
  struct RbcInstance {
    bool have_init = false;
    std::map<Payload, std::set<int>> echo_senders;
    std::map<Payload, std::set<int>> ready_senders;
    bool sent_echo = false;
    bool sent_ready = false;
    bool delivered = false;
  };
  /// Votes gathered for one (round, step) of the agreement loop.
  struct StepVotes {
    std::vector<std::pair<int, bool>> delivered;  ///< (value, decide_flag)
    bool acted = false;
  };

  using InstanceKey = std::uint64_t;  ///< packed (originator, round, step)
  static InstanceKey key_of(int originator, int round, int step);

  void rbc_broadcast(int step, int value, bool decide_flag, sim::Outbox& out);
  void handle_rbc(const sim::Message& m, int sender, sim::Outbox& out);
  void maybe_progress_instance(InstanceKey k, int originator, int round,
                               int step, sim::Outbox& out);
  void try_advance(Rng& rng, sim::Outbox& out);
  void finish_step(Rng& rng, sim::Outbox& out);

  int id_;
  int n_;
  int t_;
  int input_;
  int output_ = sim::kBot;
  int round_ = 1;
  int step_ = 1;  ///< agreement step (1..3) currently awaited
  int x_;
  bool x_flag_ = false;  ///< decide flag attached to x (set in step 2)
  std::map<InstanceKey, RbcInstance> instances_;
  std::map<std::pair<int, int>, StepVotes> step_votes_;  ///< (round, step)
};

}  // namespace aa::protocols
