#include "protocols/byzantine.hpp"

#include "util/check.hpp"

namespace aa::protocols {

const char* byzantine_strategy_name(ByzantineStrategy s) {
  switch (s) {
    case ByzantineStrategy::Equivocate: return "equivocate";
    case ByzantineStrategy::FlipAll: return "flip-all";
    case ByzantineStrategy::Silent: return "silent";
    case ByzantineStrategy::RandomLie: return "random-lie";
  }
  return "?";
}

ByzantineProcess::ByzantineProcess(std::unique_ptr<sim::Process> inner,
                                   ByzantineStrategy strategy,
                                   std::uint64_t lie_seed)
    : inner_(std::move(inner)), strategy_(strategy), lie_rng_(lie_seed) {
  AA_REQUIRE(inner_ != nullptr, "ByzantineProcess: null inner process");
}

void ByzantineProcess::corrupt_and_forward(sim::Outbox& staged,
                                           sim::Outbox& out) {
  if (strategy_ == ByzantineStrategy::Silent) {
    staged.clear();
    return;
  }
  const int n = staged.n();
  out.reserve(staged.items().size());
  for (const sim::Outbox::Item& item : staged.items()) {
    sim::Message m = item.msg;
    // Only bit-valued fields are corrupted; ⊥/'?' markers pass through
    // (changing a non-message to a message is not in this wrapper's power,
    // mirroring the paper's remark that corrupting m → ∅ is permissible
    // but forging structure is a different adversary).
    if (m.value == 0 || m.value == 1) {
      switch (strategy_) {
        case ByzantineStrategy::Equivocate:
          m.value = item.to < n / 2 ? 0 : 1;
          break;
        case ByzantineStrategy::FlipAll:
          m.value = 1 - m.value;
          break;
        case ByzantineStrategy::RandomLie:
          m.value = lie_rng_.next_bool() ? 1 : 0;
          break;
        case ByzantineStrategy::Silent:
          break;  // unreachable
      }
    }
    out.send(item.to, m);
  }
  staged.clear();
}

void ByzantineProcess::on_start(sim::Outbox& out) {
  sim::Outbox staged(out.n());
  inner_->on_start(staged);
  corrupt_and_forward(staged, out);
}

void ByzantineProcess::on_receive(const sim::Envelope& env, Rng& rng,
                                  sim::Outbox& out) {
  sim::Outbox staged(out.n());
  inner_->on_receive(env, rng, staged);
  corrupt_and_forward(staged, out);
}

void ByzantineProcess::on_receive_batch(
    std::span<const sim::Envelope* const> envs, Rng& rng, sim::Outbox& out) {
  sim::Outbox staged(out.n());
  inner_->on_receive_batch(envs, rng, staged);
  corrupt_and_forward(staged, out);
}

void ByzantineProcess::on_reset() { inner_->on_reset(); }

std::vector<std::unique_ptr<sim::Process>> make_byzantine_processes(
    ProtocolKind kind, int t, const std::vector<int>& inputs, int byz_count,
    ByzantineStrategy strategy, std::uint64_t lie_seed,
    std::optional<Thresholds> th) {
  const int n = static_cast<int>(inputs.size());
  AA_REQUIRE(byz_count >= 0 && byz_count <= n,
             "make_byzantine_processes: bad byz_count");
  std::vector<std::unique_ptr<sim::Process>> procs =
      make_processes(kind, t, inputs, th);
  for (int i = 0; i < byz_count; ++i) {
    procs[static_cast<std::size_t>(i)] = std::make_unique<ByzantineProcess>(
        std::move(procs[static_cast<std::size_t>(i)]), strategy,
        lie_seed + static_cast<std::uint64_t>(i) * 7919);
  }
  return procs;
}

}  // namespace aa::protocols
