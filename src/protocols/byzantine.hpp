// ByzantineProcess: a corruption wrapper turning any protocol process into
// a value-lying Byzantine participant.
//
// §2 of the paper observes that the strongly adaptive adversary is
// INCOMPARABLE to the classical Byzantine adversary: it can erase memory
// but "lacks the power to have corrupted processors lie about their local
// random bits". This wrapper supplies the missing power, so experiment T4
// can measure the other side of that incomparability: the §3 reset-tolerant
// algorithm (built for erasure) breaks under lying, while Bracha (built for
// lying, t < n/3) shrugs it off.
//
// The wrapper intercepts every outgoing message of the inner process and
// corrupts its value field per strategy:
//   Equivocate — low-id receivers get value 0, high-id receivers get 1
//                (the classic split-the-network attack);
//   FlipAll    — every vote value inverted;
//   Silent     — all outgoing messages dropped (Byzantine crash simulation);
//   RandomLie  — fresh random value per message (from a private stream).
//
// Incoming messages and the inner state machine run unmodified, so the
// wrapped processor still *participates*; its output bit is excluded from
// honest-agreement accounting by the harness.
#pragma once

#include <memory>
#include <vector>

#include "protocols/factory.hpp"
#include "sim/process.hpp"
#include "util/rng.hpp"

namespace aa::protocols {

enum class ByzantineStrategy { Equivocate, FlipAll, Silent, RandomLie };

[[nodiscard]] const char* byzantine_strategy_name(ByzantineStrategy s);

class ByzantineProcess final : public sim::Process {
 public:
  /// Wraps `inner`; `lie_seed` feeds the RandomLie stream.
  ByzantineProcess(std::unique_ptr<sim::Process> inner,
                   ByzantineStrategy strategy, std::uint64_t lie_seed);

  void on_start(sim::Outbox& out) override;
  void on_receive(const sim::Envelope& env, Rng& rng,
                  sim::Outbox& out) override;
  /// Forward the whole run to the inner process's (possibly devirtualized)
  /// batch path, then corrupt the staged responses once. Equivalent to
  /// per-envelope interception: corruption is per staged message and the
  /// staged order is the concatenation of the per-envelope responses.
  void on_receive_batch(std::span<const sim::Envelope* const> envs, Rng& rng,
                        sim::Outbox& out) override;
  void on_reset() override;

  [[nodiscard]] int input() const override { return inner_->input(); }
  [[nodiscard]] int output() const override { return inner_->output(); }
  [[nodiscard]] int round() const override { return inner_->round(); }
  [[nodiscard]] int estimate() const override { return inner_->estimate(); }
  [[nodiscard]] const char* protocol_name() const override {
    return "byzantine-wrapper";
  }

  [[nodiscard]] ByzantineStrategy strategy() const noexcept {
    return strategy_;
  }
  [[nodiscard]] const sim::Process& inner() const noexcept { return *inner_; }

 private:
  void corrupt_and_forward(sim::Outbox& staged, sim::Outbox& out);

  std::unique_ptr<sim::Process> inner_;
  ByzantineStrategy strategy_;
  Rng lie_rng_;
};

/// Build a process vector where the FIRST `byz_count` processors are
/// Byzantine wrappers around `kind` processes and the rest are honest.
/// `th` is forwarded to make_processes (honoured by Reset/Forgetful,
/// ignored by Ben-Or/Bracha).
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>>
make_byzantine_processes(ProtocolKind kind, int t,
                         const std::vector<int>& inputs, int byz_count,
                         ByzantineStrategy strategy, std::uint64_t lie_seed,
                         std::optional<Thresholds> th = std::nullopt);

}  // namespace aa::protocols
