#include "protocols/committee.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace aa::protocols {

namespace {

int default_final_size(int n) {
  const int lg = static_cast<int>(std::ceil(std::log2(std::max(2, n))));
  return std::max(7, lg);
}

}  // namespace

CommitteeOutcome run_committee_agreement(const CommitteeParams& params,
                                         const std::vector<int>& inputs,
                                         Rng& rng) {
  const int n = params.n;
  const int t = params.t;
  AA_REQUIRE(n > 0, "committee: n must be positive");
  AA_REQUIRE(t >= 0 && t < n, "committee: need 0 <= t < n");
  AA_REQUIRE(static_cast<int>(inputs.size()) == n,
             "committee: one input per processor");
  for (int b : inputs) AA_REQUIRE(b == 0 || b == 1, "committee: inputs are bits");

  CommitteeOutcome out;
  const int target =
      params.final_committee_size > 0 ? params.final_committee_size
                                      : default_final_size(n);

  // Current committee: initially everyone.
  std::vector<int> committee(static_cast<std::size_t>(n));
  std::iota(committee.begin(), committee.end(), 0);

  // Non-adaptive corruption: a random t-subset fixed before the run.
  std::vector<bool> corrupted(static_cast<std::size_t>(n), false);
  if (!params.adaptive_adversary) {
    std::vector<int> ids(static_cast<std::size_t>(n));
    std::iota(ids.begin(), ids.end(), 0);
    for (int i = 0; i < t; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          rng.uniform_index(ids.size() - static_cast<std::size_t>(i));
      std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
      corrupted[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] =
          true;
    }
  }

  // Iterated halving elections: each round, a uniformly random half of the
  // current committee survives. Each election costs `rounds_per_election`
  // (in [16] the small groups run Bracha among themselves — constant size,
  // constant expected rounds).
  while (static_cast<int>(committee.size()) > target) {
    const std::size_t keep = (committee.size() + 1) / 2;
    for (std::size_t i = 0; i < keep; ++i) {
      const std::size_t j = i + rng.uniform_index(committee.size() - i);
      std::swap(committee[i], committee[j]);
    }
    committee.resize(keep);
    ++out.election_rounds;
    out.rounds += params.rounds_per_election;
  }
  out.final_committee_size = static_cast<int>(committee.size());

  // Adaptive corruption: NOW the adversary sees the final committee and
  // spends its budget there — the paper's §1 attack.
  if (params.adaptive_adversary) {
    int budget = t;
    for (int member : committee) {
      if (budget == 0) break;
      corrupted[static_cast<std::size_t>(member)] = true;
      --budget;
    }
  }
  for (int member : committee) {
    if (corrupted[static_cast<std::size_t>(member)]) ++out.final_corrupted;
  }

  // The final committee runs Bracha internally (resilience 1/3) and
  // announces. Charge a constant number of rounds: the committee is small
  // and [16] seeds it with a common coin. If a third or more of the final
  // committee is corrupted, the run fails (invalid output possible).
  out.rounds += 2 * params.rounds_per_election;
  if (3 * out.final_corrupted >= out.final_committee_size) {
    out.success = false;
    return out;
  }

  // Honest-majority committee: decide the majority input of its honest
  // members (valid: it equals some processor's input).
  int count[2] = {0, 0};
  for (int member : committee) {
    if (!corrupted[static_cast<std::size_t>(member)])
      ++count[inputs[static_cast<std::size_t>(member)]];
  }
  out.decision = count[1] > count[0] ? 1 : 0;
  out.success = true;
  return out;
}

double committee_corruption_tail(int n, int c, int s, int k) {
  AA_REQUIRE(n > 0 && c >= 0 && c <= n, "corruption_tail: bad c");
  AA_REQUIRE(s >= 0 && s <= n, "corruption_tail: bad s");
  if (k <= 0) return 1.0;
  if (k > s || k > c) return 0.0;
  // Hypergeometric upper tail via log-space terms.
  auto log_choose = [](int a, int b) {
    if (b < 0 || b > a) return -1e300;
    return std::lgamma(a + 1.0) - std::lgamma(b + 1.0) -
           std::lgamma(a - b + 1.0);
  };
  const double log_denom = log_choose(n, s);
  double tail = 0.0;
  for (int i = k; i <= std::min(s, c); ++i) {
    tail += std::exp(log_choose(c, i) + log_choose(n - c, s - i) - log_denom);
  }
  return std::min(1.0, tail);
}

}  // namespace aa::protocols
