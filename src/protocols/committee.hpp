// A simplified Kapron–Kempe–King–Saia–Sanwalani-style committee-election
// agreement ([16] in the paper), used as the CONTRAST baseline for §1's
// discussion: polylogarithmic running time against non-adaptive faults, at
// the cost of (a) a nonzero probability of an invalid/failed outcome and
// (b) total collapse against an adaptive adversary, which "can simply wait
// for the final committee to be determined and then cause faults".
//
// Substitution note (DESIGN.md): the real [16] protocol layers elections
// inside a full asynchronous Byzantine machinery; we reproduce its
// *structure* — iterated halving elections down to a small final committee
// that runs Bracha and announces the result — with costs charged per
// election round. The properties the paper contrasts (speed, non-adaptivity
// requirement, nonzero error) are structural and survive the
// simplification.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace aa::protocols {

struct CommitteeParams {
  int n = 0;                      ///< total processors
  int t = 0;                      ///< adversary's corruption budget
  bool adaptive_adversary = false;  ///< corrupt AFTER the final committee is known
  int final_committee_size = 0;   ///< 0 → default max(7, ⌈log2 n⌉)
  int rounds_per_election = 3;    ///< charged cost of one halving election
};

struct CommitteeOutcome {
  bool success = false;        ///< agreement reached on a valid value
  int decision = -1;           ///< decided value when successful
  int rounds = 0;              ///< total charged rounds (the running time)
  int final_committee_size = 0;
  int final_corrupted = 0;     ///< corrupted members of the final committee
  int election_rounds = 0;     ///< halving iterations performed
};

/// Run one committee-election agreement over the given inputs.
/// Non-adaptive: a uniformly random t-subset is corrupted up front.
/// Adaptive: the adversary corrupts the final committee after it is known
/// (up to its budget t), which defeats the protocol whenever
/// t ≥ committee size — exactly the paper's §1 observation.
[[nodiscard]] CommitteeOutcome run_committee_agreement(
    const CommitteeParams& params, const std::vector<int>& inputs, Rng& rng);

/// The probability that a uniformly random committee of size s drawn from n
/// processors with c corrupted members contains ≥ k corrupted ones
/// (hypergeometric tail) — the protocol's intrinsic failure probability.
[[nodiscard]] double committee_corruption_tail(int n, int c, int s, int k);

}  // namespace aa::protocols
