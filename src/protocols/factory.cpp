#include "protocols/factory.hpp"

#include "protocols/ben_or.hpp"
#include "protocols/bracha.hpp"
#include "protocols/forgetful.hpp"
#include "protocols/reset_agreement.hpp"
#include "util/check.hpp"

namespace aa::protocols {

std::string protocol_kind_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Reset: return "reset-agreement";
    case ProtocolKind::BenOr: return "ben-or";
    case ProtocolKind::Bracha: return "bracha";
    case ProtocolKind::Forgetful: return "forgetful";
  }
  return "unknown";
}

std::vector<std::unique_ptr<sim::Process>> make_processes(
    ProtocolKind kind, int t, const std::vector<int>& inputs,
    std::optional<Thresholds> th, int memory_k) {
  const int n = static_cast<int>(inputs.size());
  AA_REQUIRE(n > 0, "make_processes: need at least one input");
  AA_REQUIRE(memory_k >= 0, "make_processes: memory_k must be >= 0");
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(inputs.size());
  for (int id = 0; id < n; ++id) {
    const int input = inputs[static_cast<std::size_t>(id)];
    switch (kind) {
      case ProtocolKind::Reset:
        procs.push_back(std::make_unique<ResetProcess>(
            id, n, input, th.value_or(canonical_thresholds(n, t))));
        break;
      case ProtocolKind::BenOr:
        procs.push_back(std::make_unique<BenOrProcess>(id, n, t, input));
        break;
      case ProtocolKind::Bracha:
        procs.push_back(std::make_unique<BrachaProcess>(id, n, t, input));
        break;
      case ProtocolKind::Forgetful:
        procs.push_back(std::make_unique<ForgetfulProcess>(
            id, n, input, th.value_or(forgetful_thresholds(n, t)), memory_k));
        break;
    }
  }
  return procs;
}

std::vector<int> unanimous_inputs(int n, int value) {
  AA_REQUIRE(n > 0, "unanimous_inputs: n must be positive");
  AA_REQUIRE(value == 0 || value == 1, "unanimous_inputs: value must be a bit");
  return std::vector<int>(static_cast<std::size_t>(n), value);
}

std::vector<int> split_inputs(int n, double fraction_ones) {
  AA_REQUIRE(n > 0, "split_inputs: n must be positive");
  AA_REQUIRE(fraction_ones >= 0.0 && fraction_ones <= 1.0,
             "split_inputs: fraction out of [0,1]");
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  const int ones = static_cast<int>(fraction_ones * n);
  for (int i = n - ones; i < n; ++i) inputs[static_cast<std::size_t>(i)] = 1;
  return inputs;
}

}  // namespace aa::protocols
