// Uniform construction of process vectors for the message-passing
// protocols, so harnesses, tests, and benches can be parameterized by
// protocol kind.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "protocols/thresholds.hpp"
#include "sim/process.hpp"

namespace aa::protocols {

enum class ProtocolKind { Reset, BenOr, Bracha, Forgetful };

[[nodiscard]] std::string protocol_kind_name(ProtocolKind kind);

/// Build one process per input bit. `th` is honoured by Reset/Forgetful
/// (defaulting to canonical/forgetful thresholds when absent) and ignored by
/// Ben-Or / Bracha, which are parameterized by (n, t) alone. `memory_k`
/// bounds Forgetful's tallied-round look-ahead (0 = unbounded; see
/// ForgetfulProcess) and is ignored by the other protocols.
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_processes(
    ProtocolKind kind, int t, const std::vector<int>& inputs,
    std::optional<Thresholds> th = std::nullopt, int memory_k = 0);

/// Convenience input patterns.
[[nodiscard]] std::vector<int> unanimous_inputs(int n, int value);
/// Exactly ⌊n·fraction_ones⌋ ones, placed at the high ids.
[[nodiscard]] std::vector<int> split_inputs(int n, double fraction_ones);

}  // namespace aa::protocols
