#include "protocols/forgetful.hpp"

#include "protocols/reset_agreement.hpp"  // make_vote / kVoteKind
#include "util/check.hpp"

namespace aa::protocols {

Thresholds forgetful_thresholds(int n, int t) {
  AA_REQUIRE(n > 0 && t >= 0, "forgetful_thresholds: bad arguments");
  Thresholds th;
  th.t1 = n - t;
  if (t > 0 && 6 * t < n) {
    th.t2 = n - 2 * t;
    th.t3 = n - 3 * t;
  } else {
    th.t3 = n / 2 + 1;
    th.t2 = th.t3 + t;
  }
  return th;
}

ForgetfulProcess::ForgetfulProcess(int id, int n, int input, Thresholds th,
                                   int memory_k)
    : id_(id), n_(n), th_(th), memory_k_(memory_k), input_(input), x_(input) {
  AA_REQUIRE(id >= 0 && id < n, "ForgetfulProcess: bad id");
  AA_REQUIRE(input == 0 || input == 1, "ForgetfulProcess: input must be a bit");
  AA_REQUIRE(memory_k >= 0, "ForgetfulProcess: memory_k must be >= 0");
  AA_REQUIRE(th.t1 >= th.t2 && th.t2 >= th.t3 && th.t3 > 0,
             "ForgetfulProcess: need T1 >= T2 >= T3 > 0");
  AA_REQUIRE(2 * th.t3 > n, "ForgetfulProcess: need 2*T3 > n");
}

void ForgetfulProcess::on_start(sim::Outbox& out) {
  out.broadcast(make_vote(round_, x_));
}

void ForgetfulProcess::on_receive(const sim::Envelope& env, Rng& rng,
                                  sim::Outbox& out) {
  handle(env, rng, out);
}

void ForgetfulProcess::on_receive_batch(
    std::span<const sim::Envelope* const> envs, Rng& rng, sim::Outbox& out) {
  for (const sim::Envelope* env : envs) handle(*env, rng, out);
}

void ForgetfulProcess::handle(const sim::Envelope& env, Rng& rng,
                              sim::Outbox& out) {
  const sim::Message& m = env.payload;
  if (m.kind != kVoteKind) return;
  if (m.value != 0 && m.value != 1) return;
  if (m.round < round_) return;  // forgetful: stale rounds are invisible
  // Bounded memory: no tally cell exists for rounds past the horizon, so
  // such a vote is dropped exactly as a stale one is.
  if (memory_k_ > 0 && m.round >= round_ + memory_k_) return;
  RoundTally& rt = votes_[m.round];
  // Only the first T1 votes of a round are ever consulted.
  if (rt.arrivals < th_.t1) ++rt.count[m.value];
  ++rt.arrivals;
  try_advance(rng, out);
}

void ForgetfulProcess::try_advance(Rng& rng, sim::Outbox& out) {
  while (true) {
    const auto it = votes_.find(round_);
    if (it == votes_.end() || it->second.arrivals < th_.t1) return;
    const std::int32_t* count = it->second.count;
    for (int v = 0; v <= 1; ++v) {
      if (count[v] >= th_.t2 && output_ == sim::kBot) output_ = v;
    }
    if (count[0] >= th_.t3) x_ = 0;
    else if (count[1] >= th_.t3) x_ = 1;
    else x_ = rng.next_bool() ? 1 : 0;
    ++round_;
    // Full communication: having heard n − t, speak to all n.
    out.broadcast(make_vote(round_, x_));
    // Forgetfulness: drop every record from rounds before the new one.
    votes_.erase(votes_.begin(), votes_.lower_bound(round_));
  }
}

void ForgetfulProcess::on_reset() {
  round_ = 1;
  x_ = input_;
  votes_.clear();
}

}  // namespace aa::protocols
