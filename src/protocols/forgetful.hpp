// The §5 algorithm class: forgetful, fully communicative agreement for the
// crash model — the class Theorem 17's exponential lower bound covers.
//
//   * Forgetful (Definition 15): each message depends only on the input bit
//     and the messages received / randomness drawn since the previous
//     sending event. Our processor keeps only (round, x, input, output) and
//     the current round's arrivals; everything older is discarded.
//   * Fully communicative (Definition 16): whenever the processor has the
//     most recent messages from n − t processors, it sends to all n.
//
// The voting rule mirrors the §3 algorithm with T1 = n − t:
//   ≥ T2 matching votes → decide;  ≥ T3 → adopt;  else coin.
// Defaults mirror the §3 canonical setting where possible: for t < n/6,
// T3 = n − 3t and T2 = n − 2t (so a decision propagates: any two first-T1
// vote sets overlap in ≥ T1 − t senders, and T2 − (n − T1) ≥ T3 makes every
// peer adopt the decided value). For larger t, fall back to T3 = ⌊n/2⌋ + 1,
// T2 = T3 + t.
#pragma once

#include <map>
#include <vector>

#include "protocols/thresholds.hpp"
#include "sim/process.hpp"

namespace aa::protocols {

/// Default §5 thresholds for (n, t): T1 = n − t always; for t < n/6,
/// T2 = n − 2t and T3 = n − 3t (canonical §3 shape); otherwise
/// T3 = ⌊n/2⌋ + 1 and T2 = T3 + t.
[[nodiscard]] Thresholds forgetful_thresholds(int n, int t);

class ForgetfulProcess final : public sim::Process {
 public:
  /// `memory_k` bounds how far AHEAD of the current round the processor
  /// will tally votes: arrivals for rounds ≥ round + memory_k are
  /// discarded on receipt (the processor has no cell to put them in), so
  /// the tally map holds at most memory_k rounds at any time. 0 means
  /// unbounded look-ahead (the original behaviour). This is the
  /// bounded-memory knob the campaign engine's memory-K sweep exercises:
  /// small K trades liveness under adversarial skew for a hard state
  /// bound, K ≥ the adversary's round spread changes nothing.
  ForgetfulProcess(int id, int n, int input, Thresholds th, int memory_k = 0);

  void on_start(sim::Outbox& out) override;
  void on_receive(const sim::Envelope& env, Rng& rng,
                  sim::Outbox& out) override;
  /// Batched delivery: same per-envelope computation, devirtualized into a
  /// tight loop over the run.
  void on_receive_batch(std::span<const sim::Envelope* const> envs, Rng& rng,
                        sim::Outbox& out) override;
  /// The §5 model has no resets; if one happens anyway, restart at round 1.
  void on_reset() override;

  [[nodiscard]] int input() const override { return input_; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override { return round_; }
  [[nodiscard]] int estimate() const override { return x_; }
  [[nodiscard]] const char* protocol_name() const override {
    return "forgetful";
  }

 private:
  /// Bounded per-round tally: only the first T1 arrivals are ever read, so
  /// we count 0s/1s among them instead of storing every vote value.
  struct RoundTally {
    std::int32_t arrivals = 0;       ///< votes recorded for this round
    std::int32_t count[2] = {0, 0};  ///< 0/1 among the first T1 arrivals
  };

  /// Non-virtual receiving-step computation shared by on_receive and the
  /// on_receive_batch loop.
  void handle(const sim::Envelope& env, Rng& rng, sim::Outbox& out);
  void try_advance(Rng& rng, sim::Outbox& out);

  int id_;
  int n_;
  Thresholds th_;
  int memory_k_;  ///< tallied-round horizon; 0 = unbounded
  int input_;
  int output_ = sim::kBot;
  int round_ = 1;
  int x_;
  /// Tallies for rounds ≥ round_ only (forgetfulness: prior rounds are
  /// erased as soon as the round advances).
  std::map<int, RoundTally> votes_;
};

}  // namespace aa::protocols
