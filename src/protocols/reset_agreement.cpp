#include "protocols/reset_agreement.hpp"

#include "util/check.hpp"

namespace aa::protocols {

sim::Message make_vote(int round, int value) {
  sim::Message m;
  m.round = round;
  m.kind = kVoteKind;
  m.value = value;
  return m;
}

ResetProcess::ResetProcess(int id, int n, int input, Thresholds th)
    : id_(id), n_(n), th_(th), input_(input), x_(input) {
  AA_REQUIRE(id >= 0 && id < n, "ResetProcess: bad id");
  AA_REQUIRE(input == 0 || input == 1, "ResetProcess: input must be a bit");
  AA_REQUIRE(th.t1 >= th.t2 && th.t2 >= th.t3 && th.t3 > 0,
             "ResetProcess: thresholds must satisfy T1 >= T2 >= T3 > 0");
  AA_REQUIRE(2 * th.t3 > th.t1,
             "ResetProcess: need 2*T3 > T1 for step 3 to be unambiguous");
}

void ResetProcess::on_start(sim::Outbox& out) {
  out.broadcast(make_vote(round_, x_));
}

void ResetProcess::on_receive(const sim::Envelope& env, Rng& rng,
                              sim::Outbox& out) {
  handle(env, rng, out);
}

void ResetProcess::on_receive_batch(std::span<const sim::Envelope* const> envs,
                                    Rng& rng, sim::Outbox& out) {
  for (const sim::Envelope* env : envs) handle(*env, rng, out);
}

void ResetProcess::handle(const sim::Envelope& env, Rng& rng,
                          sim::Outbox& out) {
  const sim::Message& m = env.payload;
  if (m.kind != kVoteKind) return;
  if (m.value != 0 && m.value != 1) return;
  RoundTally& rt = votes_[m.round];
  // Only the first T1 votes of a round are ever consulted.
  if (rt.arrivals < th_.t1) ++rt.count[m.value];
  ++rt.arrivals;

  if (rejoining_) {
    // Wait for T1 votes sharing a common round, adopt it, re-enter step 3.
    if (rt.arrivals >= th_.t1) {
      round_ = m.round;
      rejoining_ = false;
      step3_and_advance(rng, out);
      try_advance(rng, out);
    }
    return;
  }
  try_advance(rng, out);
}

void ResetProcess::try_advance(Rng& rng, sim::Outbox& out) {
  while (true) {
    const auto it = votes_.find(round_);
    if (it == votes_.end() || it->second.arrivals < th_.t1) return;
    step3_and_advance(rng, out);
  }
}

void ResetProcess::step3_and_advance(Rng& rng, sim::Outbox& out) {
  const RoundTally& rt = votes_.at(round_);
  AA_CHECK(rt.arrivals >= th_.t1, "step 3 requires T1 recorded votes");
  const std::int32_t* count = rt.count;

  // Step 3. T2 >= T3 and 2*T3 > T1 make the winning value unique.
  for (int v = 0; v <= 1; ++v) {
    if (count[v] >= th_.t2 && output_ == sim::kBot) output_ = v;
  }
  if (count[0] >= th_.t3) x_ = 0;
  else if (count[1] >= th_.t3) x_ = 1;
  else x_ = rng.next_bool() ? 1 : 0;

  // Step 4.
  ++round_;
  prune_old_rounds();
  out.broadcast(make_vote(round_, x_));
}

void ResetProcess::prune_old_rounds() {
  votes_.erase(votes_.begin(), votes_.lower_bound(round_));
}

void ResetProcess::on_reset() {
  // Everything except input, output, identity (and the engine-side reset
  // counter) is erased.
  round_ = 1;  // placeholder; masked by rejoining_ until a round is adopted
  x_ = sim::kBot;
  votes_.clear();
  rejoining_ = true;
  // A freshly reset processor refrains from sending until it resumes normal
  // operation — it stages nothing here, and the engine clears any staged
  // messages at the reset step.
}

}  // namespace aa::protocols
