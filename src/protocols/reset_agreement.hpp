// The paper's §3 algorithm: randomized agreement tolerating a strongly
// adaptive (resetting) adversary for t < n/6 (Theorem 4).
//
// Per round r, every processor p broadcasts (r, x_p), waits for T1 messages
// with matching round, then:
//   * ≥ T2 of the T1 agree on v  →  write v to the output bit (write-once)
//   * ≥ T3 of the T1 agree on v  →  x_p := v
//   * otherwise                  →  x_p := fresh uniform bit
// and advances to round r + 1.
//
// Reset handling (the paper's "handling resets" paragraph): a reset is
// detectable; the processor then refrains from sending, waits until it has
// seen T1 messages (r_q, x_q) sharing a common round r, adopts r_p := r, and
// re-enters at step 3 using those T1 messages.
#pragma once

#include <map>
#include <vector>

#include "protocols/thresholds.hpp"
#include "sim/process.hpp"

namespace aa::protocols {

/// Message kind used by ResetProcess (and ForgetfulProcess): a round vote.
inline constexpr std::int32_t kVoteKind = 1;

/// Build the (r, x) vote message.
[[nodiscard]] sim::Message make_vote(int round, int value);

class ResetProcess final : public sim::Process {
 public:
  ResetProcess(int id, int n, int input, Thresholds th);

  void on_start(sim::Outbox& out) override;
  void on_receive(const sim::Envelope& env, Rng& rng,
                  sim::Outbox& out) override;
  /// Batched delivery: same per-envelope computation, devirtualized into a
  /// tight loop over the run (one virtual call per window instead of per
  /// message).
  void on_receive_batch(std::span<const sim::Envelope* const> envs, Rng& rng,
                        sim::Outbox& out) override;
  void on_reset() override;

  [[nodiscard]] int input() const override { return input_; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override {
    return rejoining_ ? sim::kBot : round_;
  }
  [[nodiscard]] int estimate() const override {
    return rejoining_ ? sim::kBot : x_;
  }
  [[nodiscard]] const char* protocol_name() const override {
    return "reset-agreement";
  }

  [[nodiscard]] bool rejoining() const noexcept { return rejoining_; }
  [[nodiscard]] const Thresholds& thresholds() const noexcept { return th_; }

 private:
  /// Bounded per-round tally. Only the first T1 votes of a round are ever
  /// consulted (the paper's "wait until T1 messages"), so we keep counts of
  /// 0s/1s among those first T1 arrivals plus the arrival total — memory
  /// per round is O(1) instead of O(n).
  struct RoundTally {
    std::int32_t arrivals = 0;       ///< votes recorded for this round
    std::int32_t count[2] = {0, 0};  ///< 0/1 among the first T1 arrivals
  };

  /// The whole receiving-step computation (non-virtual: shared by
  /// on_receive and the on_receive_batch loop).
  void handle(const sim::Envelope& env, Rng& rng, sim::Outbox& out);
  /// Step 3 + step 4 on the first T1 votes recorded for round `round_`.
  void step3_and_advance(Rng& rng, sim::Outbox& out);
  /// Run step 3 for as many consecutive rounds as already have T1 votes
  /// (messages for future rounds can arrive before we get there).
  void try_advance(Rng& rng, sim::Outbox& out);
  void prune_old_rounds();

  int id_;
  int n_;
  Thresholds th_;
  int input_;
  int output_ = sim::kBot;
  int round_ = 1;
  int x_;
  bool rejoining_ = false;
  std::map<int, RoundTally> votes_;
};

}  // namespace aa::protocols
