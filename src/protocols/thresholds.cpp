#include "protocols/thresholds.hpp"

#include <sstream>

#include "util/check.hpp"

namespace aa::protocols {

Thresholds canonical_thresholds(int n, int t) {
  AA_REQUIRE(n > 0 && t >= 0, "canonical_thresholds: bad arguments");
  return Thresholds{n - 2 * t, n - 2 * t, n - 3 * t};
}

std::string threshold_violation(int n, int t, const Thresholds& th) {
  std::ostringstream os;
  if (th.t1 <= 0 || th.t2 <= 0 || th.t3 <= 0) {
    os << "thresholds must be positive";
    return os.str();
  }
  if (!(n - 2 * t >= th.t1)) {
    os << "need n - 2t >= T1 (got n=" << n << ", t=" << t << ", T1=" << th.t1
       << ")";
    return os.str();
  }
  if (!(th.t1 >= th.t2)) {
    os << "need T1 >= T2 (got T1=" << th.t1 << ", T2=" << th.t2 << ")";
    return os.str();
  }
  if (!(th.t2 >= th.t3 + t)) {
    os << "need T2 >= T3 + t (got T2=" << th.t2 << ", T3=" << th.t3
       << ", t=" << t << ")";
    return os.str();
  }
  if (!(2 * th.t3 > n)) {
    os << "need 2*T3 > n (got T3=" << th.t3 << ", n=" << n << ")";
    return os.str();
  }
  return {};
}

bool thresholds_valid(int n, int t, const Thresholds& th) {
  return threshold_violation(n, t, th).empty();
}

int max_supported_t(int n) {
  AA_REQUIRE(n > 0, "max_supported_t: n must be positive");
  int best = 0;
  for (int t = 1; 6 * t < n; ++t) {
    if (thresholds_valid(n, t, canonical_thresholds(n, t))) best = t;
  }
  return best;
}

}  // namespace aa::protocols
