// Threshold parameters T1 ≥ T2 ≥ T3 of the §3 algorithm, and the
// constraints Theorem 4 places on them:
//
//     n − 2t ≥ T1 ≥ T2 ≥ T3 + t,   2·T3 > n,   (and 2·T3 > T1 for step 3
//     to be well-defined — implied by 2T3 > n ≥ T1).
//
// Theorem 4's canonical setting for t < n/6 is T1 = n − 2t, T2 = T1,
// T3 = n − 3t. Smaller t admits T2 < T1, which speeds decisions (ablation
// T1 in DESIGN.md).
#pragma once

#include <string>

namespace aa::protocols {

struct Thresholds {
  int t1 = 0;  ///< messages to wait for per round
  int t2 = 0;  ///< same-value count that triggers a DECISION
  int t3 = 0;  ///< same-value count that deterministically adopts x = v

  friend bool operator==(const Thresholds&, const Thresholds&) = default;
};

/// Theorem 4's canonical thresholds: T1 = T2 = n − 2t, T3 = n − 3t.
[[nodiscard]] Thresholds canonical_thresholds(int n, int t);

/// Check every Theorem 4 constraint; on failure returns a human-readable
/// explanation, on success an empty string.
[[nodiscard]] std::string threshold_violation(int n, int t,
                                              const Thresholds& th);

/// True iff threshold_violation is empty.
[[nodiscard]] bool thresholds_valid(int n, int t, const Thresholds& th);

/// Largest t for which canonical thresholds satisfy Theorem 4 at this n
/// (i.e. the resilience ceiling: the biggest t < n/6 that still admits a
/// valid setting; returns 0 if none).
[[nodiscard]] int max_supported_t(int n);

}  // namespace aa::protocols
