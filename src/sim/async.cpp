#include "sim/async.hpp"

#include "util/check.hpp"

namespace aa::sim {

AsyncRunResult run_async(Execution& exec, AsyncAdversary& adv, int t,
                         std::int64_t max_deliveries,
                         bool until_all_decided) {
  const int n = exec.n();
  adv.prepare(n, t);
  // Publish every processor's initial staged messages.
  for (ProcId p = 0; p < n; ++p) exec.sending_step(p);

  AsyncRunResult result;
  auto done = [&]() {
    return until_all_decided ? exec.all_live_decided()
                             : exec.decided_count() > 0;
  };

  while (!done() && result.deliveries < max_deliveries) {
    const AsyncAction action = adv.next(exec);
    if (std::holds_alternative<StopAction>(action)) {
      result.stopped_by_adversary = true;
      return result;
    }
    if (const auto* c = std::get_if<CrashAction>(&action)) {
      AA_REQUIRE(exec.crashed_count() < t,
                 "async adversary exceeded its crash budget t");
      exec.crash(c->p);
      ++result.crashes;
      continue;
    }
    const auto& d = std::get<DeliverAction>(action);
    AA_REQUIRE(exec.buffer().is_pending(d.id),
               "async adversary delivered a non-pending message");
    const ProcId receiver = exec.buffer().get(d.id).receiver;
    AA_REQUIRE(!exec.crashed(receiver),
               "async adversary delivered to a crashed processor");
    exec.receiving_step(d.id);
    ++result.deliveries;
    // Atomic receive+send: publish the receiver's staged response now.
    exec.sending_step(receiver);
  }
  result.hit_step_limit = !done();
  return result;
}

}  // namespace aa::sim
