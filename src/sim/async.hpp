// Fine-grained asynchronous driver for the §5 crash-failure model.
//
// Here there are no acceptable windows: the adversary schedules one delivery
// at a time and may crash up to t processors, under the classic constraint
// that every message sent to a non-crashed processor is eventually
// delivered. Running time is measured as the longest message chain before
// the first decision (§2's discussion / §5).
//
// Engine note: in this model a processor's staged messages are published
// immediately after each receiving step (receive + compute + send is one
// atomic unit) — standard for crash-model analyses and equivalent here since
// no reset can intervene between a processor's receive and its send.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "sim/execution.hpp"
#include "sim/types.hpp"

namespace aa::sim {

/// One scheduling decision by the asynchronous adversary.
struct DeliverAction {
  MsgId id;
};
struct CrashAction {
  ProcId p;
};
struct StopAction {};  ///< adversary gives up / nothing left to do
using AsyncAction = std::variant<DeliverAction, CrashAction, StopAction>;

/// Full-information asynchronous adversary with a crash budget.
class AsyncAdversary {
 public:
  virtual ~AsyncAdversary() = default;

  /// Lifecycle hook, called by run_async once before the first action —
  /// the async mirror of WindowAdversary::prepare. Stateful schedulers
  /// reset their run-scoped state here, which makes one scheduler instance
  /// safely reusable across runs. Default: no-op.
  virtual void prepare(int n, int t) {
    (void)n;
    (void)t;
  }

  virtual AsyncAction next(const Execution& exec) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Result of an async run.
struct AsyncRunResult {
  std::int64_t deliveries = 0;    ///< receiving steps taken
  std::int64_t crashes = 0;       ///< crash actions taken
  bool stopped_by_adversary = false;
  bool hit_step_limit = false;
};

/// Drive the execution: publish all initial sends, then repeatedly apply the
/// adversary's actions until the predicate holds, the adversary stops, or
/// `max_deliveries` receiving steps have occurred. Enforces the crash budget
/// `t` and that deliveries target live processors. `until_all_decided`
/// selects the stopping condition (first decision vs all live decided).
AsyncRunResult run_async(Execution& exec, AsyncAdversary& adv, int t,
                         std::int64_t max_deliveries,
                         bool until_all_decided = false);

}  // namespace aa::sim
