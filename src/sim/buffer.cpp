#include "sim/buffer.hpp"

#include "lens/trace.hpp"
#include "util/check.hpp"

namespace aa::sim {

namespace {
constexpr std::int32_t kNoSlot = -1;
}  // namespace

MessageBuffer::MessageBuffer(int n)
    : n_(n),
      rcv_head_(static_cast<std::size_t>(n), kNoSlot),
      rcv_tail_(static_cast<std::size_t>(n), kNoSlot) {
  AA_REQUIRE(n > 0, "MessageBuffer: n must be positive");
  win_ring_.assign(1, WinList{});
  win_mask_ = 0;
  win_count_ = 1;
}

void MessageBuffer::reset(int n) {
  AA_REQUIRE(n > 0, "MessageBuffer::reset: n must be positive");
  n_ = n;
  // Capacities kept everywhere; slots re-materialize allocation-free.
  links_.clear();
  meta_.clear();
  envs_.clear();
  free_head_ = kNoSlot;
  id_map_.clear();
  next_id_ = 0;
  direct_base_ = 0;
  direct_slots_.clear();
  rcv_head_.assign(static_cast<std::size_t>(n), kNoSlot);
  rcv_tail_.assign(static_cast<std::size_t>(n), kNoSlot);
  // Ring capacity (and mask) survive; only the active span is rewound.
  if (win_ring_.empty()) {
    win_ring_.assign(1, WinList{});
    win_mask_ = 0;
  }
  win_begin_ = 0;
  win_ring_[0] = WinList{};
  win_count_ = 1;
  win_base_ = 0;
  pending_ = 0;
  delivered_ = 0;
  dropped_ = 0;
}

MsgId MessageBuffer::add(ProcId sender, ProcId receiver,
                         const Message& payload, std::int64_t window,
                         std::int64_t chain) {
  const StagedMessage item{receiver, payload};
  return add_batch(sender, std::span<const StagedMessage>(&item, 1), window,
                   chain);
}

MsgId MessageBuffer::add_batch(ProcId sender,
                               std::span<const StagedMessage> items,
                               std::int64_t window, std::int64_t chain) {
  AA_REQUIRE(sender >= 0 && sender < n_, "MessageBuffer::add_batch: bad sender");
  AA_REQUIRE(window >= win_base_,
             "MessageBuffer::add_batch: window counter moved backwards");
  const MsgId first = next_id_;
  if (items.empty()) return first;
  for (const StagedMessage& item : items) {
    AA_REQUIRE(item.to >= 0 && item.to < n_,
               "MessageBuffer::add_batch: bad receiver");
  }
  if (direct_slots_.size() >= kDirectSpillLimit) spill_direct_index();
  reserve_window(window);
  // The window ring and win_list reference stay stable across the loop
  // (one window, reserved once); the slot arrays may still grow, so all
  // links go through indices.
  std::int32_t win_prev = win_list(window).tail;
  std::int32_t win_head = win_list(window).head;
  for (const StagedMessage& item : items) {
    const MsgId id = next_id_++;
    std::int32_t s;
    if (free_head_ != kNoSlot) {
      s = free_head_;
      free_head_ = links_[static_cast<std::size_t>(s)].next_rcv;
    } else {
      s = static_cast<std::int32_t>(envs_.size());
      links_.emplace_back();
      meta_.emplace_back();
      envs_.emplace_back();
    }
    const auto si = static_cast<std::size_t>(s);
    meta_[si] = Meta{id, item.to, sender};
    envs_[si] = Envelope{id, sender, item.to, item.msg, window, chain};
    Link& lk = links_[si];

    // Append to the receiver list (staging order is ascending-id order).
    lk.prev_rcv = rcv_tail_[static_cast<std::size_t>(item.to)];
    lk.next_rcv = kNoSlot;
    if (lk.prev_rcv != kNoSlot) {
      links_[static_cast<std::size_t>(lk.prev_rcv)].next_rcv = s;
    } else {
      rcv_head_[static_cast<std::size_t>(item.to)] = s;
    }
    rcv_tail_[static_cast<std::size_t>(item.to)] = s;

    // Thread the run onto the window list locally; head/tail attach once
    // after the loop.
    lk.prev_win = win_prev;
    lk.next_win = kNoSlot;
    if (win_prev != kNoSlot) {
      links_[static_cast<std::size_t>(win_prev)].next_win = s;
    } else {
      win_head = s;
    }
    win_prev = s;

    direct_slots_.push_back(s);
  }
  WinList& wl = win_list(window);
  wl.head = win_head;
  wl.tail = win_prev;
  // Extend the list's id range; interleaved publication into ANOTHER window
  // (raw buffer usage only — the engine publishes one window at a time)
  // breaks contiguity and demotes the range to a conservative bound.
  if (wl.first_id == kNoMsg) {
    wl.first_id = first;
    wl.contiguous = true;
  } else if (first != wl.last_id + 1) {
    wl.contiguous = false;
  }
  wl.last_id = next_id_ - 1;
  pending_ += items.size();
  return first;
}

std::int32_t MessageBuffer::slot_of(MsgId id) const {
  AA_REQUIRE(id >= 0 && id < next_id_, "MessageBuffer: bad id");
  if (id >= direct_base_) {
    const std::int32_t s =
        direct_slots_[static_cast<std::size_t>(id - direct_base_)];
    return meta_[static_cast<std::size_t>(s)].id == id ? s : kNoSlot;
  }
  const std::uint32_t s = id_map_.find(id);
  return s == detail::MsgIdMap::kAbsent ? kNoSlot
                                        : static_cast<std::int32_t>(s);
}

const Envelope& MessageBuffer::get(MsgId id) const {
  const std::int32_t s = slot_of(id);
  AA_CHECK(s != kNoSlot, "MessageBuffer::get: id already retired");
  return envs_[static_cast<std::size_t>(s)];
}

bool MessageBuffer::is_pending(MsgId id) const {
  return slot_of(id) != kNoSlot;
}

void MessageBuffer::unlink_receiver(std::int32_t s) {
  Link& lk = links_[static_cast<std::size_t>(s)];
  const ProcId r = meta_[static_cast<std::size_t>(s)].receiver;
  if (lk.prev_rcv != kNoSlot) {
    links_[static_cast<std::size_t>(lk.prev_rcv)].next_rcv = lk.next_rcv;
  } else {
    rcv_head_[static_cast<std::size_t>(r)] = lk.next_rcv;
  }
  if (lk.next_rcv != kNoSlot) {
    links_[static_cast<std::size_t>(lk.next_rcv)].prev_rcv = lk.prev_rcv;
  } else {
    rcv_tail_[static_cast<std::size_t>(r)] = lk.prev_rcv;
  }
}

void MessageBuffer::unlink_window(std::int32_t s) {
  Link& lk = links_[static_cast<std::size_t>(s)];
  WinList& wl = win_list(envs_[static_cast<std::size_t>(s)].window);
  if (lk.prev_win != kNoSlot) {
    links_[static_cast<std::size_t>(lk.prev_win)].next_win = lk.next_win;
  } else {
    wl.head = lk.next_win;
  }
  if (lk.next_win != kNoSlot) {
    links_[static_cast<std::size_t>(lk.next_win)].prev_win = lk.prev_win;
  } else {
    wl.tail = lk.prev_win;
  }
}

void MessageBuffer::retire(std::int32_t s) {
  const auto si = static_cast<std::size_t>(s);
  unlink_receiver(s);
  unlink_window(s);
  const MsgId id = meta_[si].id;
  if (id < direct_base_) id_map_.erase(id);
  meta_[si].id = kNoMsg;
  envs_[si].id = kNoMsg;
  links_[si].next_rcv = free_head_;
  free_head_ = s;
  trim_window_ring();
}

void MessageBuffer::trim_window_ring() {
  while (win_count_ > 1 && win_ring_[win_begin_].head == kNoSlot) {
    win_ring_[win_begin_] = WinList{};
    win_begin_ = (win_begin_ + 1) & win_mask_;
    ++win_base_;
    --win_count_;
  }
}

void MessageBuffer::reserve_window(std::int64_t w) {
  if (w < win_base_ + static_cast<std::int64_t>(win_count_)) return;
  const std::size_t need =
      static_cast<std::size_t>(w - win_base_) + 1;
  if (need > win_ring_.size()) {
    // Grow to the next power of two and linearize the ring.
    std::size_t cap = win_ring_.empty() ? 1 : win_ring_.size();
    while (cap < need) cap *= 2;
    std::vector<WinList> bigger(cap);
    for (std::size_t i = 0; i < win_count_; ++i) {
      bigger[i] = win_ring_[(win_begin_ + i) & win_mask_];
    }
    win_ring_ = std::move(bigger);
    win_begin_ = 0;
    win_mask_ = cap - 1;
  }
  while (static_cast<std::size_t>(w - win_base_) >= win_count_) {
    win_ring_[(win_begin_ + win_count_) & win_mask_] = WinList{};
    ++win_count_;
  }
}

void MessageBuffer::spill_direct_index() {
  if (!direct_slots_.empty()) {
    id_map_.reserve_extra(pending_);
    for (std::size_t i = 0; i < direct_slots_.size(); ++i) {
      const std::int32_t s = direct_slots_[i];
      const MsgId id = direct_base_ + static_cast<MsgId>(i);
      if (meta_[static_cast<std::size_t>(s)].id == id) {
        id_map_.insert_no_grow(id, static_cast<std::uint32_t>(s));
      }
    }
    direct_slots_.clear();
  }
  direct_base_ = next_id_;
}

void MessageBuffer::mark_delivered(MsgId id) {
  const std::int32_t s = slot_of(id);
  AA_CHECK(s != kNoSlot, "mark_delivered: message not pending");
  retire(s);
  --pending_;
  ++delivered_;
}

const Envelope* MessageBuffer::deliver_lazy(MsgId id, ProcId receiver) {
  const std::int32_t s = slot_of(id);
  if (s == kNoSlot) return nullptr;
  const auto si = static_cast<std::size_t>(s);
  AA_CHECK(meta_[si].receiver == receiver,
           "deliver_lazy: message addressed to a different receiver");
  unlink_receiver(s);
  if (id < direct_base_) id_map_.erase(id);
  meta_[si].id = kNoMsg;  // park: off the live index, awaiting the sweep
  --pending_;
  ++delivered_;
  return &envs_[si];
}

int MessageBuffer::deliver_window_run_to(ProcId receiver, std::int64_t w,
                                         const std::uint64_t* sender_stamp,
                                         std::uint64_t epoch,
                                         std::vector<const Envelope*>& out) {
  AA_REQUIRE(receiver >= 0 && receiver < n_,
             "deliver_window_run_to: bad receiver");
  if (w < win_base_ ||
      w >= win_base_ + static_cast<std::int64_t>(win_count_)) {
    return 0;  // no list for w, so nothing pending in it
  }
  const WinList& wl = win_list(w);
  if (wl.head == kNoSlot) return 0;
  // Window test: the list's id range when exact, the envelope field as the
  // cold fallback (only reachable through raw interleaved-window usage).
  const bool ranged = wl.contiguous;
  const MsgId lo = wl.first_id;
  const MsgId hi = wl.last_id;
  std::int32_t s = rcv_head_[static_cast<std::size_t>(receiver)];
  std::int32_t prev_kept = kNoSlot;
  std::int32_t new_head = kNoSlot;
  int delivered = 0;
  while (s != kNoSlot) {
    const auto si = static_cast<std::size_t>(s);
    Link& lk = links_[si];
    Meta& mt = meta_[si];
    const std::int32_t next = lk.next_rcv;
    const bool in_window =
        ranged ? (mt.id >= lo && mt.id <= hi) : envs_[si].window == w;
    const bool take =
        in_window &&
        (sender_stamp == nullptr ||
         sender_stamp[static_cast<std::size_t>(mt.sender)] == epoch);
    if (take) {
      // Park the slot like deliver_lazy: off the receiver list and the
      // live index now, recycled by the caller's eventual window-w sweep.
      if (mt.id < direct_base_) id_map_.erase(mt.id);
      mt.id = kNoMsg;
      out.push_back(&envs_[si]);
      ++delivered;
    } else {
      lk.prev_rcv = prev_kept;
      if (prev_kept == kNoSlot) {
        new_head = s;
      } else {
        links_[static_cast<std::size_t>(prev_kept)].next_rcv = s;
      }
      prev_kept = s;
    }
    s = next;
  }
  if (prev_kept != kNoSlot) {
    links_[static_cast<std::size_t>(prev_kept)].next_rcv = kNoSlot;
  }
  rcv_head_[static_cast<std::size_t>(receiver)] = new_head;
  rcv_tail_[static_cast<std::size_t>(receiver)] = prev_kept;
  pending_ -= static_cast<std::size_t>(delivered);
  delivered_ += static_cast<std::size_t>(delivered);
  return delivered;
}

void MessageBuffer::mark_dropped(MsgId id) {
  const std::int32_t s = slot_of(id);
  AA_CHECK(s != kNoSlot, "mark_dropped: message not pending");
  if (trace_ != nullptr) {
    const auto si = static_cast<std::size_t>(s);
    trace_->on_suppress(meta_[si].sender, meta_[si].receiver);
  }
  retire(s);
  --pending_;
  ++dropped_;
}

std::size_t MessageBuffer::drop_pending_in_window(std::int64_t w) {
  if (w < win_base_ ||
      w >= win_base_ + static_cast<std::int64_t>(win_count_)) {
    return 0;
  }
  std::size_t dropped = 0;
  std::int32_t s = win_list(w).head;
  while (s != kNoSlot) {
    const auto si = static_cast<std::size_t>(s);
    const std::int32_t next = links_[si].next_win;
    if (meta_[si].id == kNoMsg) {
      // Parked: deliver_lazy / the bulk run already unlinked and unindexed
      // it — just recycle the slot.
    } else {
      // A still-pending slot swept at the window edge is exactly the
      // model's suppression event: the adversary never let it deliver.
      if (trace_ != nullptr) {
        trace_->on_suppress(meta_[si].sender, meta_[si].receiver);
      }
      unlink_receiver(s);
      if (meta_[si].id < direct_base_) id_map_.erase(meta_[si].id);
      meta_[si].id = kNoMsg;
      ++dropped;
    }
    envs_[si].id = kNoMsg;
    links_[si].next_rcv = free_head_;
    free_head_ = s;
    s = next;
  }
  win_list(w) = WinList{};
  trim_window_ring();
  pending_ -= dropped;
  dropped_ += dropped;
  if (pending_ == 0) {
    // Range retirement: nothing is pending anywhere, so every direct-index
    // entry is stale and the straggler map is necessarily empty — the whole
    // id range [direct_base_, next_id_) retires in O(1). In the
    // acceptable-window regime this fires at EVERY window edge, which is
    // what removes the per-message hash erases from the steady state.
    direct_base_ = next_id_;
    direct_slots_.clear();
  }
  return dropped;
}

// ---- invariant auditor -----------------------------------------------------

void MessageBuffer::audit() const {
  // Per-slot lifecycle classification discovered by walking the structures:
  // 0 = unseen, 1 = on a receiver list (pending, window membership not yet
  // confirmed), 2 = parked on a window list, 3 = pending confirmed on both
  // lists, 4 = on the free list. Every slot must end in {2, 3, 4}.
  const std::size_t cap = envs_.size();
  AA_CHECK(meta_.size() == cap && links_.size() == cap,
           "audit: SoA slot arrays out of lockstep");
  AA_CHECK(direct_base_ >= 0 && direct_base_ <= next_id_,
           "audit: direct-index base outside [0, next_id]");
  AA_CHECK(direct_slots_.size() ==
               static_cast<std::size_t>(next_id_ - direct_base_),
           "audit: direct index does not cover [direct_base, next_id)");
  std::vector<std::uint8_t> state(cap, 0);

  // Receiver lists: doubly-linked, acyclic, ascending-id, field-consistent,
  // and every member resolves through its id tier back to its own slot.
  std::size_t on_rcv_lists = 0;
  std::size_t mapped_pending = 0;  // pending ids below the direct base
  for (ProcId r = 0; r < n_; ++r) {
    std::int32_t s = rcv_head_[static_cast<std::size_t>(r)];
    std::int32_t prev = kNoSlot;
    MsgId last_id = kNoMsg;
    std::size_t steps = 0;
    while (s != kNoSlot) {
      AA_CHECK(s >= 0 && static_cast<std::size_t>(s) < cap,
               "audit: receiver list points outside the slot arena");
      AA_CHECK(++steps <= cap, "audit: receiver list has a cycle");
      const auto si = static_cast<std::size_t>(s);
      const Meta& mt = meta_[si];
      const Envelope& env = envs_[si];
      AA_CHECK(links_[si].prev_rcv == prev,
               "audit: receiver list prev link disagrees with walk");
      AA_CHECK(mt.id != kNoMsg,
               "audit: parked or retired slot on a receiver list");
      AA_CHECK(mt.id < next_id_,
               "audit: slot id beyond the issued-id watermark");
      AA_CHECK(env.id == mt.id,
               "audit: slot metadata id disagrees with its envelope");
      AA_CHECK(mt.receiver == r && env.receiver == r,
               "audit: slot on the wrong receiver list");
      AA_CHECK(mt.sender == env.sender,
               "audit: slot metadata sender disagrees with its envelope");
      AA_CHECK(mt.id > last_id,
               "audit: receiver list ids not strictly ascending");
      AA_CHECK(env.window >= win_base_ &&
                   env.window <
                       win_base_ + static_cast<std::int64_t>(win_count_),
               "audit: pending slot's window outside the live ring");
      if (mt.id >= direct_base_) {
        AA_CHECK(direct_slots_[static_cast<std::size_t>(
                     mt.id - direct_base_)] == s,
                 "audit: direct index does not resolve a pending id to its "
                 "slot");
      } else {
        AA_CHECK(id_map_.find(mt.id) == static_cast<std::uint32_t>(s),
                 "audit: id map does not resolve a pending id to its slot");
        ++mapped_pending;
      }
      AA_CHECK(state[si] == 0, "audit: slot reachable from two receiver lists");
      state[si] = 1;
      last_id = mt.id;
      prev = s;
      s = links_[si].next_rcv;
    }
    AA_CHECK(rcv_tail_[static_cast<std::size_t>(r)] == prev,
             "audit: receiver tail does not match the last list element");
    on_rcv_lists += steps;
  }
  AA_CHECK(on_rcv_lists == pending_,
           "audit: pending_ counter disagrees with receiver-list population");

  // Straggler map ↔ arena agreement in the other direction: every table
  // entry is a pending id strictly below the direct base, pointing at the
  // slot we just confirmed pending under the matching id.
  AA_CHECK(id_map_.size() == mapped_pending,
           "audit: id map size disagrees with the below-base pending count");
  id_map_.for_each([&](MsgId key, std::uint32_t value) {
    AA_CHECK(static_cast<std::size_t>(value) < cap,
             "audit: id map entry points outside the slot arena");
    AA_CHECK(key < direct_base_,
             "audit: id map entry at or above the direct-index base");
    AA_CHECK(state[value] == 1,
             "audit: id map entry points at a slot not on a receiver list");
    AA_CHECK(meta_[value].id == key,
             "audit: id map key disagrees with the slot's id");
  });

  // Window lists: doubly-linked, acyclic, ascending-id, window-consistent,
  // ids inside the list's recorded range. Pending members must be exactly
  // the receiver-list population; parked members (metadata id cleared, the
  // envelope still carrying the id) must already be out of the live index.
  std::size_t pending_on_win_lists = 0;
  for (std::int64_t w = win_base_;
       w < win_base_ + static_cast<std::int64_t>(win_count_); ++w) {
    const WinList& wl = win_list(w);
    std::int32_t s = wl.head;
    std::int32_t prev = kNoSlot;
    MsgId last_id = kNoMsg;
    std::size_t steps = 0;
    while (s != kNoSlot) {
      AA_CHECK(s >= 0 && static_cast<std::size_t>(s) < cap,
               "audit: window list points outside the slot arena");
      AA_CHECK(++steps <= cap, "audit: window list has a cycle");
      const auto si = static_cast<std::size_t>(s);
      const Envelope& env = envs_[si];
      AA_CHECK(links_[si].prev_win == prev,
               "audit: window list prev link disagrees with walk");
      AA_CHECK(env.id != kNoMsg, "audit: retired slot on a window list");
      AA_CHECK(env.window == w, "audit: slot on the wrong window list");
      AA_CHECK(env.id > last_id,
               "audit: window list ids not strictly ascending");
      AA_CHECK(wl.first_id != kNoMsg && env.id >= wl.first_id &&
                   env.id <= wl.last_id,
               "audit: window list id outside the list's recorded range");
      if (meta_[si].id == kNoMsg) {
        // Parked: off the receiver lists, and its id must no longer
        // resolve (the direct tier disarms via the metadata id; the map
        // tier must have been erased explicitly).
        AA_CHECK(state[si] == 0,
                 "audit: parked slot also reachable from a receiver list");
        if (env.id < direct_base_) {
          AA_CHECK(id_map_.find(env.id) == detail::MsgIdMap::kAbsent,
                   "audit: parked slot's id still resolves in the id map");
        }
        state[si] = 2;
      } else {
        AA_CHECK(meta_[si].id == env.id,
                 "audit: slot metadata id disagrees with its envelope");
        AA_CHECK(state[si] == 1,
                 "audit: window-list slot missing from its receiver list");
        state[si] = 3;
        ++pending_on_win_lists;
      }
      last_id = env.id;
      prev = s;
      s = links_[si].next_win;
    }
    AA_CHECK(wl.tail == prev,
             "audit: window tail does not match the last list element");
  }
  AA_CHECK(pending_on_win_lists == pending_,
           "audit: window lists do not cover the pending population");

  // Free list (linked through next_rcv): acyclic, all members retired in
  // BOTH arrays (a freed slot carries no id anywhere).
  {
    std::int32_t s = free_head_;
    std::size_t steps = 0;
    while (s != kNoSlot) {
      AA_CHECK(s >= 0 && static_cast<std::size_t>(s) < cap,
               "audit: free list points outside the slot arena");
      AA_CHECK(++steps <= cap, "audit: free list has a cycle");
      const auto si = static_cast<std::size_t>(s);
      AA_CHECK(state[si] == 0,
               "audit: free-list slot also reachable from a live list");
      AA_CHECK(meta_[si].id == kNoMsg && envs_[si].id == kNoMsg,
               "audit: free-list slot still carries a live id");
      state[si] = 4;
      s = links_[si].next_rcv;
    }
  }

  // Exactly-one-home: no slot may be leaked (unreachable) or stranded on a
  // receiver list without window membership.
  for (std::size_t i = 0; i < cap; ++i) {
    AA_CHECK(state[i] == 2 || state[i] == 3 || state[i] == 4,
             "audit: slot not in exactly one of pending/parked/free");
  }

  // Lifecycle counters partition the full send history.
  AA_CHECK(pending_ + delivered_ + dropped_ ==
               static_cast<std::size_t>(next_id_),
           "audit: lifecycle counters do not sum to total_sent");
}

// ---- iteration ------------------------------------------------------------

const Envelope& MessageBuffer::PendingIterator::operator*() const {
  return buf_->envs_[static_cast<std::size_t>(cur_)];
}

void MessageBuffer::PendingIterator::skip_non_matching() {
  if (sender_ < 0) return;
  while (cur_ >= 0 &&
         buf_->meta_[static_cast<std::size_t>(cur_)].sender != sender_) {
    cur_ = buf_->links_[static_cast<std::size_t>(cur_)].next_rcv;
  }
}

void MessageBuffer::PendingIterator::prefetch() {
  if (cur_ < 0) {
    next_ = kNoSlot;
    return;
  }
  std::int32_t s = buf_->links_[static_cast<std::size_t>(cur_)].next_rcv;
  if (sender_ >= 0) {
    while (s >= 0 &&
           buf_->meta_[static_cast<std::size_t>(s)].sender != sender_) {
      s = buf_->links_[static_cast<std::size_t>(s)].next_rcv;
    }
  }
  next_ = s;
}

const Envelope& MessageBuffer::WindowIterator::operator*() const {
  return buf_->envs_[static_cast<std::size_t>(cur_)];
}

void MessageBuffer::WindowIterator::advance_to_nonempty_window() {
  const std::int64_t end =
      buf_->win_base_ + static_cast<std::int64_t>(buf_->win_count_);
  if (window_ < buf_->win_base_) window_ = buf_->win_base_ - 1;
  while (cur_ < 0 && ++window_ < end) {
    cur_ = buf_->win_list(window_).head;
    skip_lazy();  // a list of only-parked slots counts as empty
  }
}

void MessageBuffer::WindowIterator::skip_lazy() {
  while (cur_ >= 0 && buf_->meta_[static_cast<std::size_t>(cur_)].id == kNoMsg) {
    cur_ = buf_->links_[static_cast<std::size_t>(cur_)].next_win;
  }
}

void MessageBuffer::WindowIterator::prefetch() {
  std::int32_t s = cur_ < 0 ? kNoSlot
                            : buf_->links_[static_cast<std::size_t>(cur_)]
                                  .next_win;
  while (s >= 0 && buf_->meta_[static_cast<std::size_t>(s)].id == kNoMsg) {
    s = buf_->links_[static_cast<std::size_t>(s)].next_win;
  }
  next_ = s;
}

MessageBuffer::Range<MessageBuffer::PendingIterator> MessageBuffer::pending_to(
    ProcId receiver) const {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "pending_to: bad receiver");
  return {PendingIterator(this, rcv_head_[static_cast<std::size_t>(receiver)],
                          -1),
          PendingIterator(this, kNoSlot, -1)};
}

MessageBuffer::Range<MessageBuffer::PendingIterator>
MessageBuffer::pending_from_to(ProcId sender, ProcId receiver) const {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "pending_from_to: bad receiver");
  AA_REQUIRE(sender >= 0 && sender < n_, "pending_from_to: bad sender");
  return {PendingIterator(this, rcv_head_[static_cast<std::size_t>(receiver)],
                          sender),
          PendingIterator(this, kNoSlot, sender)};
}

MessageBuffer::Range<MessageBuffer::WindowIterator>
MessageBuffer::pending_in_window(std::int64_t w) const {
  std::int32_t head = kNoSlot;
  if (w >= win_base_ && w < win_base_ + static_cast<std::int64_t>(win_count_)) {
    head = win_list(w).head;
  }
  return {WindowIterator(this, head, w, /*all_windows=*/false),
          WindowIterator(this, kNoSlot, w, /*all_windows=*/false)};
}

MessageBuffer::Range<MessageBuffer::WindowIterator> MessageBuffer::all_pending()
    const {
  return {WindowIterator(this, kNoSlot, win_base_ - 1, /*all_windows=*/true),
          WindowIterator(this, kNoSlot,
                         win_base_ + static_cast<std::int64_t>(win_count_),
                         /*all_windows=*/false)};
}

// ---- allocating conveniences ----------------------------------------------

std::vector<MsgId> MessageBuffer::pending_to_ids(ProcId receiver) const {
  std::vector<MsgId> out;
  for (const Envelope& e : pending_to(receiver)) out.push_back(e.id);
  return out;
}

std::vector<MsgId> MessageBuffer::pending_from_to_ids(ProcId sender,
                                                      ProcId receiver) const {
  std::vector<MsgId> out;
  for (const Envelope& e : pending_from_to(sender, receiver))
    out.push_back(e.id);
  return out;
}

std::vector<MsgId> MessageBuffer::pending_in_window_ids(std::int64_t w) const {
  std::vector<MsgId> out;
  for (const Envelope& e : pending_in_window(w)) out.push_back(e.id);
  return out;
}

std::vector<MsgId> MessageBuffer::all_pending_ids() const {
  std::vector<MsgId> out;
  out.reserve(pending_);
  for (const Envelope& e : all_pending()) out.push_back(e.id);
  return out;
}

}  // namespace aa::sim
