#include "sim/buffer.hpp"

#include "util/check.hpp"

namespace aa::sim {

MessageBuffer::MessageBuffer(int n) : n_(n), by_receiver_(static_cast<std::size_t>(n)) {
  AA_REQUIRE(n > 0, "MessageBuffer: n must be positive");
}

MsgId MessageBuffer::add(ProcId sender, ProcId receiver,
                         const Message& payload, std::int64_t window,
                         std::int64_t chain) {
  AA_REQUIRE(sender >= 0 && sender < n_, "MessageBuffer::add: bad sender");
  AA_REQUIRE(receiver >= 0 && receiver < n_, "MessageBuffer::add: bad receiver");
  const MsgId id = static_cast<MsgId>(all_.size());
  all_.push_back(Envelope{id, sender, receiver, payload, window, chain});
  state_.push_back(State::Pending);
  by_receiver_[static_cast<std::size_t>(receiver)].push_back(id);
  ++pending_;
  return id;
}

const Envelope& MessageBuffer::get(MsgId id) const {
  AA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < all_.size(),
             "MessageBuffer::get: bad id");
  return all_[static_cast<std::size_t>(id)];
}

bool MessageBuffer::is_pending(MsgId id) const {
  AA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < all_.size(),
             "MessageBuffer: bad id");
  return state_[static_cast<std::size_t>(id)] == State::Pending;
}

bool MessageBuffer::is_delivered(MsgId id) const {
  AA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < all_.size(),
             "MessageBuffer: bad id");
  return state_[static_cast<std::size_t>(id)] == State::Delivered;
}

bool MessageBuffer::is_dropped(MsgId id) const {
  AA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < all_.size(),
             "MessageBuffer: bad id");
  return state_[static_cast<std::size_t>(id)] == State::Dropped;
}

void MessageBuffer::mark_delivered(MsgId id) {
  AA_CHECK(is_pending(id), "mark_delivered: message not pending");
  state_[static_cast<std::size_t>(id)] = State::Delivered;
  --pending_;
  ++delivered_;
}

void MessageBuffer::mark_dropped(MsgId id) {
  AA_CHECK(is_pending(id), "mark_dropped: message not pending");
  state_[static_cast<std::size_t>(id)] = State::Dropped;
  --pending_;
  ++dropped_;
}

std::vector<MsgId> MessageBuffer::pending_to(ProcId receiver) const {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "pending_to: bad receiver");
  std::vector<MsgId> out;
  for (MsgId id : by_receiver_[static_cast<std::size_t>(receiver)]) {
    if (state_[static_cast<std::size_t>(id)] == State::Pending)
      out.push_back(id);
  }
  return out;
}

std::vector<MsgId> MessageBuffer::pending_from_to(ProcId sender,
                                                  ProcId receiver) const {
  std::vector<MsgId> out;
  for (MsgId id : by_receiver_[static_cast<std::size_t>(receiver)]) {
    const auto idx = static_cast<std::size_t>(id);
    if (state_[idx] == State::Pending && all_[idx].sender == sender)
      out.push_back(id);
  }
  return out;
}

std::vector<MsgId> MessageBuffer::pending_in_window(std::int64_t w) const {
  std::vector<MsgId> out;
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (state_[i] == State::Pending && all_[i].window == w)
      out.push_back(static_cast<MsgId>(i));
  }
  return out;
}

std::vector<MsgId> MessageBuffer::all_pending() const {
  std::vector<MsgId> out;
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (state_[i] == State::Pending) out.push_back(static_cast<MsgId>(i));
  }
  return out;
}

}  // namespace aa::sim
