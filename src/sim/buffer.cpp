#include "sim/buffer.hpp"

#include "lens/trace.hpp"
#include "util/check.hpp"

namespace aa::sim {

namespace {
constexpr std::int32_t kNoSlot = -1;
}  // namespace

MessageBuffer::MessageBuffer(int n)
    : n_(n),
      rcv_head_(static_cast<std::size_t>(n), kNoSlot),
      rcv_tail_(static_cast<std::size_t>(n), kNoSlot) {
  AA_REQUIRE(n > 0, "MessageBuffer: n must be positive");
  win_ring_.assign(1, WinList{});
  win_mask_ = 0;
  win_count_ = 1;
}

void MessageBuffer::reset(int n) {
  AA_REQUIRE(n > 0, "MessageBuffer::reset: n must be positive");
  n_ = n;
  slots_.clear();  // capacity kept; slots re-materialize allocation-free
  free_head_ = kNoSlot;
  id_map_.clear();
  next_id_ = 0;
  rcv_head_.assign(static_cast<std::size_t>(n), kNoSlot);
  rcv_tail_.assign(static_cast<std::size_t>(n), kNoSlot);
  // Ring capacity (and mask) survive; only the active span is rewound.
  if (win_ring_.empty()) {
    win_ring_.assign(1, WinList{});
    win_mask_ = 0;
  }
  win_begin_ = 0;
  win_ring_[0] = WinList{};
  win_count_ = 1;
  win_base_ = 0;
  pending_ = 0;
  delivered_ = 0;
  dropped_ = 0;
}

MsgId MessageBuffer::add(ProcId sender, ProcId receiver,
                         const Message& payload, std::int64_t window,
                         std::int64_t chain) {
  const StagedMessage item{receiver, payload};
  return add_batch(sender, std::span<const StagedMessage>(&item, 1), window,
                   chain);
}

MsgId MessageBuffer::add_batch(ProcId sender,
                               std::span<const StagedMessage> items,
                               std::int64_t window, std::int64_t chain) {
  AA_REQUIRE(sender >= 0 && sender < n_, "MessageBuffer::add_batch: bad sender");
  AA_REQUIRE(window >= win_base_,
             "MessageBuffer::add_batch: window counter moved backwards");
  const MsgId first = next_id_;
  if (items.empty()) return first;
  for (const StagedMessage& item : items) {
    AA_REQUIRE(item.to >= 0 && item.to < n_,
               "MessageBuffer::add_batch: bad receiver");
  }
  id_map_.reserve_extra(items.size());
  reserve_window(window);
  // The window ring and win_list reference stay stable across the loop
  // (one window, reserved once); slots_ may still grow, so all links go
  // through indices.
  std::int32_t win_prev = win_list(window).tail;
  std::int32_t win_head = win_list(window).head;
  for (const StagedMessage& item : items) {
    const MsgId id = next_id_++;
    std::int32_t s;
    if (free_head_ != kNoSlot) {
      s = free_head_;
      free_head_ = slots_[static_cast<std::size_t>(s)].next_rcv;
    } else {
      s = static_cast<std::int32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[static_cast<std::size_t>(s)];
    slot.env = Envelope{id, sender, item.to, item.msg, window, chain};
    slot.lazy = false;

    // Append to the receiver list (staging order is ascending-id order).
    slot.prev_rcv = rcv_tail_[static_cast<std::size_t>(item.to)];
    slot.next_rcv = kNoSlot;
    if (slot.prev_rcv != kNoSlot) {
      slots_[static_cast<std::size_t>(slot.prev_rcv)].next_rcv = s;
    } else {
      rcv_head_[static_cast<std::size_t>(item.to)] = s;
    }
    rcv_tail_[static_cast<std::size_t>(item.to)] = s;

    // Thread the run onto the window list locally; head/tail attach once
    // after the loop.
    slot.prev_win = win_prev;
    slot.next_win = kNoSlot;
    if (win_prev != kNoSlot) {
      slots_[static_cast<std::size_t>(win_prev)].next_win = s;
    } else {
      win_head = s;
    }
    win_prev = s;

    id_map_.insert_no_grow(id, static_cast<std::uint32_t>(s));
  }
  WinList& wl = win_list(window);
  wl.head = win_head;
  wl.tail = win_prev;
  pending_ += items.size();
  return first;
}

std::int32_t MessageBuffer::slot_of(MsgId id) const {
  AA_REQUIRE(id >= 0 && id < next_id_, "MessageBuffer: bad id");
  const std::uint32_t s = id_map_.find(id);
  return s == detail::MsgIdMap::kAbsent ? kNoSlot
                                        : static_cast<std::int32_t>(s);
}

const Envelope& MessageBuffer::get(MsgId id) const {
  const std::int32_t s = slot_of(id);
  AA_CHECK(s != kNoSlot, "MessageBuffer::get: id already retired");
  return slots_[static_cast<std::size_t>(s)].env;
}

bool MessageBuffer::is_pending(MsgId id) const {
  return slot_of(id) != kNoSlot;
}

void MessageBuffer::unlink_receiver(std::int32_t s) {
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  const ProcId r = slot.env.receiver;
  if (slot.prev_rcv != kNoSlot) {
    slots_[static_cast<std::size_t>(slot.prev_rcv)].next_rcv = slot.next_rcv;
  } else {
    rcv_head_[static_cast<std::size_t>(r)] = slot.next_rcv;
  }
  if (slot.next_rcv != kNoSlot) {
    slots_[static_cast<std::size_t>(slot.next_rcv)].prev_rcv = slot.prev_rcv;
  } else {
    rcv_tail_[static_cast<std::size_t>(r)] = slot.prev_rcv;
  }
}

void MessageBuffer::unlink_window(std::int32_t s) {
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  WinList& wl = win_list(slot.env.window);
  if (slot.prev_win != kNoSlot) {
    slots_[static_cast<std::size_t>(slot.prev_win)].next_win = slot.next_win;
  } else {
    wl.head = slot.next_win;
  }
  if (slot.next_win != kNoSlot) {
    slots_[static_cast<std::size_t>(slot.next_win)].prev_win = slot.prev_win;
  } else {
    wl.tail = slot.prev_win;
  }
}

void MessageBuffer::retire(std::int32_t s) {
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  unlink_receiver(s);
  unlink_window(s);
  id_map_.erase(slot.env.id);
  slot.env.id = kNoMsg;
  slot.next_rcv = free_head_;
  free_head_ = s;
  trim_window_ring();
}

void MessageBuffer::trim_window_ring() {
  while (win_count_ > 1 && win_ring_[win_begin_].head == kNoSlot) {
    win_begin_ = (win_begin_ + 1) & win_mask_;
    ++win_base_;
    --win_count_;
  }
}

void MessageBuffer::reserve_window(std::int64_t w) {
  if (w < win_base_ + static_cast<std::int64_t>(win_count_)) return;
  const std::size_t need =
      static_cast<std::size_t>(w - win_base_) + 1;
  if (need > win_ring_.size()) {
    // Grow to the next power of two and linearize the ring.
    std::size_t cap = win_ring_.empty() ? 1 : win_ring_.size();
    while (cap < need) cap *= 2;
    std::vector<WinList> bigger(cap);
    for (std::size_t i = 0; i < win_count_; ++i) {
      bigger[i] = win_ring_[(win_begin_ + i) & win_mask_];
    }
    win_ring_ = std::move(bigger);
    win_begin_ = 0;
    win_mask_ = cap - 1;
  }
  while (static_cast<std::size_t>(w - win_base_) >= win_count_) {
    win_ring_[(win_begin_ + win_count_) & win_mask_] = WinList{};
    ++win_count_;
  }
}

void MessageBuffer::mark_delivered(MsgId id) {
  AA_CHECK(is_pending(id), "mark_delivered: message not pending");
  retire(slot_of(id));
  --pending_;
  ++delivered_;
}

const Envelope* MessageBuffer::deliver_lazy(MsgId id, ProcId receiver) {
  const std::int32_t s = slot_of(id);
  if (s == kNoSlot) return nullptr;
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  AA_CHECK(slot.env.receiver == receiver,
           "deliver_lazy: message addressed to a different receiver");
  unlink_receiver(s);
  id_map_.erase(id);
  slot.lazy = true;
  --pending_;
  ++delivered_;
  return &slot.env;
}

int MessageBuffer::deliver_window_run_to(ProcId receiver, std::int64_t w,
                                         const std::uint64_t* sender_stamp,
                                         std::uint64_t epoch,
                                         std::vector<const Envelope*>& out) {
  AA_REQUIRE(receiver >= 0 && receiver < n_,
             "deliver_window_run_to: bad receiver");
  std::int32_t s = rcv_head_[static_cast<std::size_t>(receiver)];
  std::int32_t prev_kept = kNoSlot;
  std::int32_t new_head = kNoSlot;
  int delivered = 0;
  while (s != kNoSlot) {
    Slot& slot = slots_[static_cast<std::size_t>(s)];
    const std::int32_t next = slot.next_rcv;
    const bool take =
        slot.env.window == w &&
        (sender_stamp == nullptr ||
         sender_stamp[static_cast<std::size_t>(slot.env.sender)] == epoch);
    if (take) {
      // Park the slot like deliver_lazy: off the receiver list and the id
      // map now, recycled by the caller's eventual window-w sweep.
      id_map_.erase(slot.env.id);
      slot.lazy = true;
      out.push_back(&slot.env);
      ++delivered;
    } else {
      slot.prev_rcv = prev_kept;
      if (prev_kept == kNoSlot) {
        new_head = s;
      } else {
        slots_[static_cast<std::size_t>(prev_kept)].next_rcv = s;
      }
      prev_kept = s;
    }
    s = next;
  }
  if (prev_kept != kNoSlot) {
    slots_[static_cast<std::size_t>(prev_kept)].next_rcv = kNoSlot;
  }
  rcv_head_[static_cast<std::size_t>(receiver)] = new_head;
  rcv_tail_[static_cast<std::size_t>(receiver)] = prev_kept;
  pending_ -= static_cast<std::size_t>(delivered);
  delivered_ += static_cast<std::size_t>(delivered);
  return delivered;
}

void MessageBuffer::mark_dropped(MsgId id) {
  AA_CHECK(is_pending(id), "mark_dropped: message not pending");
  const std::int32_t s = slot_of(id);
  if (trace_ != nullptr) {
    const Slot& slot = slots_[static_cast<std::size_t>(s)];
    trace_->on_suppress(slot.env.sender, slot.env.receiver);
  }
  retire(s);
  --pending_;
  ++dropped_;
}

std::size_t MessageBuffer::drop_pending_in_window(std::int64_t w) {
  if (w < win_base_ ||
      w >= win_base_ + static_cast<std::int64_t>(win_count_)) {
    return 0;
  }
  std::size_t dropped = 0;
  std::int32_t s = win_list(w).head;
  while (s != kNoSlot) {
    Slot& slot = slots_[static_cast<std::size_t>(s)];
    const std::int32_t next = slot.next_win;
    if (slot.lazy) {
      // deliver_lazy already unlinked/erased it — just recycle the slot.
      slot.lazy = false;
    } else {
      // A still-pending slot swept at the window edge is exactly the
      // model's suppression event: the adversary never let it deliver.
      if (trace_ != nullptr) {
        trace_->on_suppress(slot.env.sender, slot.env.receiver);
      }
      unlink_receiver(s);
      id_map_.erase(slot.env.id);
      ++dropped;
    }
    slot.env.id = kNoMsg;
    slot.next_rcv = free_head_;
    free_head_ = s;
    s = next;
  }
  win_list(w) = WinList{};
  trim_window_ring();
  pending_ -= dropped;
  dropped_ += dropped;
  return dropped;
}

// ---- invariant auditor -----------------------------------------------------

void MessageBuffer::audit() const {
  // Per-slot lifecycle classification discovered by walking the structures:
  // 0 = unseen, 1 = on a receiver list (pending, window membership not yet
  // confirmed), 2 = parked (lazy) on a window list, 3 = pending confirmed on
  // both lists, 4 = on the free list. Every slot must end in {2, 3, 4}.
  std::vector<std::uint8_t> state(slots_.size(), 0);
  const std::size_t cap = slots_.size();

  // Receiver lists: doubly-linked, acyclic, ascending-id, field-consistent,
  // and every member resolves through the id map back to its own slot.
  std::size_t on_rcv_lists = 0;
  for (ProcId r = 0; r < n_; ++r) {
    std::int32_t s = rcv_head_[static_cast<std::size_t>(r)];
    std::int32_t prev = kNoSlot;
    MsgId last_id = kNoMsg;
    std::size_t steps = 0;
    while (s != kNoSlot) {
      AA_CHECK(s >= 0 && static_cast<std::size_t>(s) < cap,
               "audit: receiver list points outside the slot arena");
      AA_CHECK(++steps <= cap, "audit: receiver list has a cycle");
      const Slot& slot = slots_[static_cast<std::size_t>(s)];
      AA_CHECK(slot.prev_rcv == prev,
               "audit: receiver list prev link disagrees with walk");
      AA_CHECK(!slot.lazy, "audit: parked (lazy) slot on a receiver list");
      AA_CHECK(slot.env.id != kNoMsg, "audit: retired slot on a receiver list");
      AA_CHECK(slot.env.id < next_id_,
               "audit: slot id beyond the issued-id watermark");
      AA_CHECK(slot.env.receiver == r,
               "audit: slot on the wrong receiver list");
      AA_CHECK(slot.env.id > last_id,
               "audit: receiver list ids not strictly ascending");
      AA_CHECK(slot.env.window >= win_base_ &&
                   slot.env.window <
                       win_base_ + static_cast<std::int64_t>(win_count_),
               "audit: pending slot's window outside the live ring");
      AA_CHECK(id_map_.find(slot.env.id) == static_cast<std::uint32_t>(s),
               "audit: id map does not resolve a pending id to its slot");
      AA_CHECK(state[static_cast<std::size_t>(s)] == 0,
               "audit: slot reachable from two receiver lists");
      state[static_cast<std::size_t>(s)] = 1;
      last_id = slot.env.id;
      prev = s;
      s = slot.next_rcv;
    }
    AA_CHECK(rcv_tail_[static_cast<std::size_t>(r)] == prev,
             "audit: receiver tail does not match the last list element");
    on_rcv_lists += steps;
  }
  AA_CHECK(on_rcv_lists == pending_,
           "audit: pending_ counter disagrees with receiver-list population");

  // Id map ↔ arena agreement in the other direction: every table entry
  // points at a slot we just confirmed pending, under the matching id.
  AA_CHECK(id_map_.size() == pending_,
           "audit: id map size disagrees with pending_ counter");
  id_map_.for_each([&](MsgId key, std::uint32_t value) {
    AA_CHECK(static_cast<std::size_t>(value) < cap,
             "audit: id map entry points outside the slot arena");
    AA_CHECK(state[value] == 1,
             "audit: id map entry points at a slot not on a receiver list");
    AA_CHECK(slots_[value].env.id == key,
             "audit: id map key disagrees with the slot's envelope id");
  });

  // Window lists: doubly-linked, acyclic, ascending-id, window-consistent.
  // Non-lazy members must be exactly the receiver-list population; lazy
  // (parked) members must already be out of the id map.
  std::size_t non_lazy_on_win_lists = 0;
  for (std::int64_t w = win_base_;
       w < win_base_ + static_cast<std::int64_t>(win_count_); ++w) {
    std::int32_t s = win_list(w).head;
    std::int32_t prev = kNoSlot;
    MsgId last_id = kNoMsg;
    std::size_t steps = 0;
    while (s != kNoSlot) {
      AA_CHECK(s >= 0 && static_cast<std::size_t>(s) < cap,
               "audit: window list points outside the slot arena");
      AA_CHECK(++steps <= cap, "audit: window list has a cycle");
      const Slot& slot = slots_[static_cast<std::size_t>(s)];
      AA_CHECK(slot.prev_win == prev,
               "audit: window list prev link disagrees with walk");
      AA_CHECK(slot.env.id != kNoMsg, "audit: retired slot on a window list");
      AA_CHECK(slot.env.window == w, "audit: slot on the wrong window list");
      AA_CHECK(slot.env.id > last_id,
               "audit: window list ids not strictly ascending");
      if (slot.lazy) {
        AA_CHECK(state[static_cast<std::size_t>(s)] == 0,
                 "audit: parked slot also reachable from a receiver list");
        AA_CHECK(id_map_.find(slot.env.id) == detail::MsgIdMap::kAbsent,
                 "audit: parked slot's id still resolves in the id map");
        state[static_cast<std::size_t>(s)] = 2;
      } else {
        AA_CHECK(state[static_cast<std::size_t>(s)] == 1,
                 "audit: window-list slot missing from its receiver list");
        state[static_cast<std::size_t>(s)] = 3;
        ++non_lazy_on_win_lists;
      }
      last_id = slot.env.id;
      prev = s;
      s = slot.next_win;
    }
    AA_CHECK(win_list(w).tail == prev,
             "audit: window tail does not match the last list element");
  }
  AA_CHECK(non_lazy_on_win_lists == pending_,
           "audit: window lists do not cover the pending population");

  // Free list (linked through next_rcv): acyclic, all members retired.
  {
    std::int32_t s = free_head_;
    std::size_t steps = 0;
    while (s != kNoSlot) {
      AA_CHECK(s >= 0 && static_cast<std::size_t>(s) < cap,
               "audit: free list points outside the slot arena");
      AA_CHECK(++steps <= cap, "audit: free list has a cycle");
      const Slot& slot = slots_[static_cast<std::size_t>(s)];
      AA_CHECK(state[static_cast<std::size_t>(s)] == 0,
               "audit: free-list slot also reachable from a live list");
      AA_CHECK(slot.env.id == kNoMsg,
               "audit: free-list slot still carries a live id");
      state[static_cast<std::size_t>(s)] = 4;
      s = slot.next_rcv;
    }
  }

  // Exactly-one-home: no slot may be leaked (unreachable) or stranded on a
  // receiver list without window membership.
  for (std::size_t i = 0; i < cap; ++i) {
    AA_CHECK(state[i] == 2 || state[i] == 3 || state[i] == 4,
             "audit: slot not in exactly one of pending/parked/free");
  }

  // Lifecycle counters partition the full send history.
  AA_CHECK(pending_ + delivered_ + dropped_ ==
               static_cast<std::size_t>(next_id_),
           "audit: lifecycle counters do not sum to total_sent");
}

// ---- iteration ------------------------------------------------------------

const Envelope& MessageBuffer::PendingIterator::operator*() const {
  return buf_->slots_[static_cast<std::size_t>(cur_)].env;
}

void MessageBuffer::PendingIterator::skip_non_matching() {
  if (sender_ < 0) return;
  while (cur_ >= 0 &&
         buf_->slots_[static_cast<std::size_t>(cur_)].env.sender != sender_) {
    cur_ = buf_->slots_[static_cast<std::size_t>(cur_)].next_rcv;
  }
}

void MessageBuffer::PendingIterator::prefetch() {
  if (cur_ < 0) {
    next_ = kNoSlot;
    return;
  }
  std::int32_t s = buf_->slots_[static_cast<std::size_t>(cur_)].next_rcv;
  if (sender_ >= 0) {
    while (s >= 0 &&
           buf_->slots_[static_cast<std::size_t>(s)].env.sender != sender_) {
      s = buf_->slots_[static_cast<std::size_t>(s)].next_rcv;
    }
  }
  next_ = s;
}

const Envelope& MessageBuffer::WindowIterator::operator*() const {
  return buf_->slots_[static_cast<std::size_t>(cur_)].env;
}

void MessageBuffer::WindowIterator::advance_to_nonempty_window() {
  const std::int64_t end =
      buf_->win_base_ + static_cast<std::int64_t>(buf_->win_count_);
  if (window_ < buf_->win_base_) window_ = buf_->win_base_ - 1;
  while (cur_ < 0 && ++window_ < end) {
    cur_ = buf_->win_list(window_).head;
    skip_lazy();  // a list of only-parked slots counts as empty
  }
}

void MessageBuffer::WindowIterator::skip_lazy() {
  while (cur_ >= 0 && buf_->slots_[static_cast<std::size_t>(cur_)].lazy) {
    cur_ = buf_->slots_[static_cast<std::size_t>(cur_)].next_win;
  }
}

void MessageBuffer::WindowIterator::prefetch() {
  std::int32_t s = cur_ < 0 ? kNoSlot
                            : buf_->slots_[static_cast<std::size_t>(cur_)]
                                  .next_win;
  while (s >= 0 && buf_->slots_[static_cast<std::size_t>(s)].lazy) {
    s = buf_->slots_[static_cast<std::size_t>(s)].next_win;
  }
  next_ = s;
}

MessageBuffer::Range<MessageBuffer::PendingIterator> MessageBuffer::pending_to(
    ProcId receiver) const {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "pending_to: bad receiver");
  return {PendingIterator(this, rcv_head_[static_cast<std::size_t>(receiver)],
                          -1),
          PendingIterator(this, kNoSlot, -1)};
}

MessageBuffer::Range<MessageBuffer::PendingIterator>
MessageBuffer::pending_from_to(ProcId sender, ProcId receiver) const {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "pending_from_to: bad receiver");
  AA_REQUIRE(sender >= 0 && sender < n_, "pending_from_to: bad sender");
  return {PendingIterator(this, rcv_head_[static_cast<std::size_t>(receiver)],
                          sender),
          PendingIterator(this, kNoSlot, sender)};
}

MessageBuffer::Range<MessageBuffer::WindowIterator>
MessageBuffer::pending_in_window(std::int64_t w) const {
  std::int32_t head = kNoSlot;
  if (w >= win_base_ && w < win_base_ + static_cast<std::int64_t>(win_count_)) {
    head = win_list(w).head;
  }
  return {WindowIterator(this, head, w, /*all_windows=*/false),
          WindowIterator(this, kNoSlot, w, /*all_windows=*/false)};
}

MessageBuffer::Range<MessageBuffer::WindowIterator> MessageBuffer::all_pending()
    const {
  return {WindowIterator(this, kNoSlot, win_base_ - 1, /*all_windows=*/true),
          WindowIterator(this, kNoSlot,
                         win_base_ + static_cast<std::int64_t>(win_count_),
                         /*all_windows=*/false)};
}

// ---- allocating conveniences ----------------------------------------------

std::vector<MsgId> MessageBuffer::pending_to_ids(ProcId receiver) const {
  std::vector<MsgId> out;
  for (const Envelope& e : pending_to(receiver)) out.push_back(e.id);
  return out;
}

std::vector<MsgId> MessageBuffer::pending_from_to_ids(ProcId sender,
                                                      ProcId receiver) const {
  std::vector<MsgId> out;
  for (const Envelope& e : pending_from_to(sender, receiver))
    out.push_back(e.id);
  return out;
}

std::vector<MsgId> MessageBuffer::pending_in_window_ids(std::int64_t w) const {
  std::vector<MsgId> out;
  for (const Envelope& e : pending_in_window(w)) out.push_back(e.id);
  return out;
}

std::vector<MsgId> MessageBuffer::all_pending_ids() const {
  std::vector<MsgId> out;
  out.reserve(pending_);
  for (const Envelope& e : all_pending()) out.push_back(e.id);
  return out;
}

}  // namespace aa::sim
