// MessageBuffer: the in-flight message store of §2, backed by a recycling
// slot arena.
//
// The adversary has full information: it can inspect every pending envelope.
// Delivery and drops are explicit engine events; a message is in exactly one
// of three states: pending, delivered, dropped. (Dropping models the
// acceptable-window semantics where messages from silenced senders are never
// delivered; the async crash model never drops except to crashed receivers.)
//
// Arena design (the O(live) rewrite, now SoA):
//   * MsgIds stay monotonically increasing — the adversary-visible identity
//     and all iteration orders are unchanged from the append-only store.
//   * Each live (pending) message occupies one reusable slot; delivered and
//     dropped messages release their slot immediately, so memory is
//     O(peak live messages), independent of execution length.
//   * Slot storage is struct-of-arrays: the intrusive list links (`links_`),
//     the 16-byte hot metadata the delivery walk filters on (`meta_`: id,
//     receiver, sender), and the full envelopes (`envs_`) live in three
//     lockstep arrays. The per-receiver delivery walk and the plan
//     validation scan touch one metadata cache line per four messages
//     instead of a full Envelope each.
//   * Ids resolve to slots in two tiers. Ids at or above `direct_base_`
//     — in the window regime, every id of the current window — resolve
//     through a dense direct-index array (one bounds-checked load, no
//     hashing). Older ids ("stragglers": async-regime messages that
//     outlive many window advances) live in an open-addressing table
//     (linear probing with backward-shift deletion). The window-edge sweep
//     retires the whole direct range in O(1) — see drop_pending_in_window —
//     so the acceptable-window hot path performs NO per-message hash
//     erases at all; the incremental erase path survives only for spilled
//     stragglers.
//   * Slots are threaded onto two intrusive doubly-linked lists — one per
//     receiver and one per send-window — kept in ascending-id (send) order.
//     pending_to / pending_from_to / pending_in_window / all_pending iterate
//     those lists in O(result), and drop_pending_in_window retires exactly
//     the window's own leftovers. Each window list additionally records its
//     member id range ([first_id, last_id], plus a contiguity flag), which
//     the bulk delivery run uses as a branch-free window test.
//
// Because slots recycle, envelope lookups are only valid for PENDING ids:
// querying a retired id throws (std::logic_error), and is_pending(id) is the
// only question that can be asked about the whole history.
//
// Envelope-view invalidation contract (batch API, SoA edition): references
// returned by get()/iteration and the views handed out by deliver_lazy /
// deliver_window_run_to point into the envelope array `envs_` and are
// invalidated by
//   (1) the next publication — a single add() OR any add_batch(), which may
//       grow the envelope array (SoA does not change this: all three arrays
//       grow together), and
//   (2) for delivered (parked) slots, the drop_pending_in_window sweep of
//       their send window, which recycles the slot; the parked id becomes
//       REUSABLE arena space at that sweep, not before.
// Range retirement does NOT add an invalidation point: rewinding the direct
// index (the O(1) window-edge id retirement, or an explicit
// spill_direct_index()) moves only id→slot bookkeeping and never touches
// envelope storage. Within one acceptable window the engine publishes first
// and delivers after, so views collected during the delivery phase stay
// valid until the window's end_window sweep; holders that outlive a
// publication (anything keeping a view across sending steps) must copy the
// envelope out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace aa::lens {
class WindowTrace;
}  // namespace aa::lens

namespace aa::sim {

namespace detail {

/// Open-addressing MsgId → slot-index map (linear probing, power-of-two
/// capacity, backward-shift deletion — no tombstones, so steady-state
/// insert/erase churn never degrades or reallocates). Holds only the
/// SPILLED tier of ids (below MessageBuffer's direct-index base); the
/// window-regime hot path never touches it.
class MsgIdMap {
 public:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  MsgIdMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::uint32_t find(MsgId key) const noexcept {
    if (cells_.empty()) return kAbsent;
    std::size_t i = home(key);
    while (cells_[i].key != kNoMsg) {
      if (cells_[i].key == key) return cells_[i].value;
      i = (i + 1) & mask_;
    }
    return kAbsent;
  }

  void insert(MsgId key, std::uint32_t value) {
    if ((size_ + 1) * 4 >= cells_.size() * 3) grow();
    insert_no_grow(key, value);
  }

  /// Empty the map, keeping its capacity (trial-reuse path).
  void clear() noexcept {
    for (Cell& c : cells_) c = Cell{};
    size_ = 0;
  }

  /// Grow once so that `extra` further insert_no_grow calls stay under the
  /// load factor — the bulk-insert half of spill_direct_index.
  void reserve_extra(std::size_t extra) {
    while ((size_ + extra + 1) * 4 >= cells_.size() * 3) grow();
  }

  /// Precondition: capacity ensured via reserve_extra (or insert's check).
  void insert_no_grow(MsgId key, std::uint32_t value) noexcept {
    std::size_t i = home(key);
    while (cells_[i].key != kNoMsg) i = (i + 1) & mask_;
    cells_[i] = Cell{key, value};
    ++size_;
  }

  /// Visit every (key, slot) entry, in table order. Audit-only: the table
  /// has no other iteration surface, and table order is not meaningful.
  template <typename F>
  void for_each(F&& f) const {
    for (const Cell& c : cells_) {
      if (c.key != kNoMsg) f(c.key, c.value);
    }
  }

  /// Precondition: key present. Outside MessageBuffer's own implementation
  /// this is never the right call — the window-edge range retirement is the
  /// sanctioned bulk-retire path (enforced by aa_lint's idmap-erase rule).
  void erase(MsgId key) noexcept {
    std::size_t i = home(key);
    while (cells_[i].key != key) i = (i + 1) & mask_;
    // Backward-shift deletion: close the probe chain over the vacated cell.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (cells_[j].key == kNoMsg) break;
      const std::size_t h = home(cells_[j].key);
      if (((j - h) & mask_) >= ((j - i) & mask_)) {
        cells_[i] = cells_[j];
        i = j;
      }
    }
    cells_[i].key = kNoMsg;
    --size_;
  }

 private:
  struct Cell {
    MsgId key = kNoMsg;
    std::uint32_t value = 0;
  };

  // Fibonacci (multiplicative) hashing. Identity hashing looks ideal for
  // monotonically assigned keys, but it packs a window's live ids into ONE
  // contiguous probe run — and backward-shift deletion of ascending ids
  // then rescans the whole remaining run per erase, an O(live²) pathology
  // per window. Mixing the key keeps probe runs O(1) for every access
  // pattern, erase included.
  [[nodiscard]] std::size_t home(MsgId key) const noexcept {
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >>
               shift_) &
           mask_;
  }

  void grow() {
    const std::size_t cap = cells_.empty() ? 64 : cells_.size() * 2;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(cap, Cell{});
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c /= 2) --shift_;
    size_ = 0;
    for (const Cell& c : old) {
      if (c.key != kNoMsg) insert(c.key, c.value);
    }
  }

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Test-only backdoor used by the auditor self-test to plant corruptions
/// (defined in tests/sim/test_audit.cpp; never part of the library).
struct AuditTestAccess;

class MessageBuffer {
 public:
  explicit MessageBuffer(int n);

  /// Restore the freshly-constructed state for `n` processors while
  /// KEEPING every capacity the previous run grew (slot arena, id-map
  /// table, direct index, receiver lists, window ring) — the campaign
  /// trial-reuse path: after the first trial warms a worker's buffer up,
  /// later same-shape trials allocate nothing. Observable behaviour is
  /// identical to a fresh MessageBuffer(n): ids restart at 0 and every
  /// list is empty.
  void reset(int n);

  /// Add a new in-flight message; returns its id.
  MsgId add(ProcId sender, ProcId receiver, const Message& payload,
            std::int64_t window, std::int64_t chain);

  /// Bulk publication: add `sender`'s staged run in staging order, exactly
  /// as items.size() consecutive add() calls would — ids are consecutive
  /// starting at the returned value, receiver lists stay ascending-id, and
  /// every iteration order is unchanged. One pass allocates the slot run,
  /// splices the whole run onto the window list in a single attach, and
  /// extends the dense direct index (no hash inserts at all).
  /// Returns the first id of the run (== total_sent() before the call,
  /// also for an empty run).
  MsgId add_batch(ProcId sender, std::span<const StagedMessage> items,
                  std::int64_t window, std::int64_t chain);

  /// Envelope lookup. Valid for PENDING ids only (retired slots recycle).
  [[nodiscard]] const Envelope& get(MsgId id) const;

  /// True iff `id` is live. Retired (delivered/dropped) ids return false;
  /// ids never issued throw.
  [[nodiscard]] bool is_pending(MsgId id) const;

  /// Transition pending → delivered and recycle the slot. Precondition:
  /// pending (a retired id throws std::logic_error).
  void mark_delivered(MsgId id);

  /// Single-lookup LAZY delivery for the acceptable-window hot path: if
  /// `id` is pending AND addressed to `receiver` (a mismatch throws
  /// std::logic_error BEFORE any state changes), mark it delivered
  /// (is_pending flips to false, the receiver list and id index are
  /// updated, counters advance) and return a view of its envelope; if
  /// already retired, return nullptr (ids never issued throw). Unlike
  /// mark_delivered, the slot is NOT recycled yet: it stays parked on its
  /// window list until drop_pending_in_window(its window) sweeps it onto
  /// the free list in one bulk walk — that is what makes the per-message
  /// cost low. The caller therefore MUST eventually drop the message's
  /// window (run_acceptable_window's end_window does); the returned view
  /// stays valid until then. Window iteration skips parked slots, so
  /// mid-window queries stay exact.
  const Envelope* deliver_lazy(MsgId id, ProcId receiver);

  /// Whole-list delivery run — the bulk counterpart of deliver_lazy for the
  /// window fast path. Walks `receiver`'s pending list once, in list (id)
  /// order, and delivers every message sent in window `w` whose sender is
  /// selected: all of them when `sender_stamp` is null, else exactly those
  /// with sender_stamp[sender] == epoch. The window test is the window
  /// list's recorded id range when its ids are contiguous (one metadata
  /// compare, no envelope touch), the envelope's window field otherwise.
  /// Delivered slots are parked lazily (same sweep obligation as
  /// deliver_lazy: the caller MUST eventually drop window w) and their ids
  /// leave the live index WITHOUT any hash work; unselected messages stay
  /// pending, relinked in one pass. Appends one envelope view per delivery
  /// to `out` (valid until the next publication or the window sweep) and
  /// returns the number delivered.
  int deliver_window_run_to(ProcId receiver, std::int64_t w,
                            const std::uint64_t* sender_stamp,
                            std::uint64_t epoch,
                            std::vector<const Envelope*>& out);

  /// Transition pending → dropped and recycle the slot. Precondition:
  /// pending.
  void mark_dropped(MsgId id);

  /// Drop every still-pending message sent during window `w` by walking
  /// only that window's own pending list. Returns the number dropped.
  /// Range retirement: when the sweep leaves NO pending message anywhere
  /// (the steady state of the acceptable-window regime, where every window
  /// ends empty), the whole direct index [direct_base_, next_id_) is
  /// retired in O(1) — direct_base_ jumps to next_id_ — replacing the
  /// per-id backward-shift hash erases the sweep used to pay for.
  std::size_t drop_pending_in_window(std::int64_t w);

  /// Migrate every live directly-indexed id into the straggler hash map and
  /// rewind the direct index to start at the current id watermark. Purely
  /// an id→slot bookkeeping move: no envelope storage is touched, no view
  /// is invalidated, and every query answers identically. Called by the
  /// engine when a window advances while messages stay pending (the async /
  /// keep-pending regimes, where no sweep will ever empty the window), and
  /// internally when the direct index outgrows its size bound.
  void spill_direct_index();

  /// Install (or clear, with nullptr) the accountability lens: every drop
  /// of a still-PENDING message — mark_dropped or the end-of-window sweep —
  /// reports (sender, receiver) to trace->on_suppress. Lazily-delivered
  /// slots recycled by the sweep are NOT suppressions. The trace outlives
  /// the buffer's run; Execution re-installs it on construction and reset.
  void set_trace(lens::WindowTrace* trace) noexcept { trace_ = trace; }

  // ---- allocation-free iteration (ascending-id order) --------------------
  //
  // Ranges yield `const Envelope&`. Iterators prefetch their successor, so
  // retiring the CURRENT element (mark_delivered / mark_dropped) while
  // iterating is safe; retiring any other element or adding messages
  // mid-iteration is not.

  class PendingIterator {
   public:
    PendingIterator(const MessageBuffer* buf, std::int32_t slot, ProcId sender)
        : buf_(buf), cur_(slot), sender_(sender) {
      skip_non_matching();
      prefetch();
    }
    const Envelope& operator*() const;
    PendingIterator& operator++() {
      cur_ = next_;
      prefetch();
      return *this;
    }
    bool operator!=(const PendingIterator& o) const { return cur_ != o.cur_; }
    bool operator==(const PendingIterator& o) const { return cur_ == o.cur_; }

   private:
    void skip_non_matching();
    void prefetch();

    const MessageBuffer* buf_;
    std::int32_t cur_;
    std::int32_t next_ = -1;
    ProcId sender_;  ///< -1: no sender filter
  };

  class WindowIterator {
   public:
    WindowIterator(const MessageBuffer* buf, std::int32_t slot,
                   std::int64_t window, bool all_windows)
        : buf_(buf), cur_(slot), window_(window), all_windows_(all_windows) {
      skip_lazy();
      if (all_windows_) advance_to_nonempty_window();
      prefetch();
    }
    const Envelope& operator*() const;
    WindowIterator& operator++() {
      cur_ = next_;
      if (all_windows_ && cur_ < 0) advance_to_nonempty_window();
      prefetch();
      return *this;
    }
    bool operator!=(const WindowIterator& o) const { return cur_ != o.cur_; }
    bool operator==(const WindowIterator& o) const { return cur_ == o.cur_; }

   private:
    void advance_to_nonempty_window();
    void skip_lazy();
    void prefetch();

    const MessageBuffer* buf_;
    std::int32_t cur_;
    std::int32_t next_ = -1;
    std::int64_t window_;  ///< window of cur_ (all_windows) or the filter
    bool all_windows_;
  };

  template <typename Iter>
  class Range {
   public:
    Range(Iter begin, Iter end) : begin_(begin), end_(end) {}
    [[nodiscard]] Iter begin() const { return begin_; }
    [[nodiscard]] Iter end() const { return end_; }
    [[nodiscard]] bool empty() const { return !(begin_ != end_); }

   private:
    Iter begin_;
    Iter end_;
  };

  /// All pending messages addressed to `receiver` (send order).
  [[nodiscard]] Range<PendingIterator> pending_to(ProcId receiver) const;

  /// Pending messages to `receiver` from `sender` (send order).
  [[nodiscard]] Range<PendingIterator> pending_from_to(ProcId sender,
                                                       ProcId receiver) const;

  /// All pending messages sent during window `w` (send order).
  [[nodiscard]] Range<WindowIterator> pending_in_window(std::int64_t w) const;

  /// Every pending message (send order).
  [[nodiscard]] Range<WindowIterator> all_pending() const;

  // ---- allocating conveniences (diagnostics / tests) ---------------------

  [[nodiscard]] std::vector<MsgId> pending_to_ids(ProcId receiver) const;
  [[nodiscard]] std::vector<MsgId> pending_from_to_ids(ProcId sender,
                                                       ProcId receiver) const;
  [[nodiscard]] std::vector<MsgId> pending_in_window_ids(std::int64_t w) const;
  [[nodiscard]] std::vector<MsgId> all_pending_ids() const;

  // ---- counters and arena introspection ----------------------------------

  [[nodiscard]] std::size_t total_sent() const noexcept {
    return static_cast<std::size_t>(next_id_);
  }
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_; }
  [[nodiscard]] std::size_t delivered_count() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::size_t dropped_count() const noexcept { return dropped_; }
  [[nodiscard]] int n() const noexcept { return n_; }

  /// Number of live (pending) messages — the arena's working set.
  [[nodiscard]] std::size_t live_count() const noexcept { return pending_; }
  /// Slots ever materialized — the arena's high-water mark. Stays flat once
  /// the peak live load is reached, no matter how long the run is.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return envs_.size();
  }
  /// Allocated arena slots — unlike slot_capacity(), this survives reset():
  /// the trial-reuse path rewinds the materialized span but keeps the
  /// allocation, so steady-state trials re-materialize allocation-free.
  [[nodiscard]] std::size_t slot_reserve() const noexcept {
    return envs_.capacity();
  }

  /// Opt-in invariant auditor: verify the full arena state — receiver and
  /// window lists (doubly-linked, acyclic, ascending-id, field-consistent,
  /// ids within the window list's recorded range), two-tier id resolution
  /// (every pending id at or above the direct base resolves through the
  /// direct index, every older one through the straggler map, and both
  /// structures hold nothing else), SoA lockstep (metadata id mirrors the
  /// envelope id on every live slot), lazy-parked slot accounting,
  /// free-list integrity, and that every slot is in exactly one of
  /// {pending, parked, free} with the lifecycle counters summing to
  /// total_sent(). Throws std::logic_error on the first violation.
  /// O(slots) with scratch allocation — meant for window boundaries under
  /// ExecutionConfig::audit, self-tests, and post-reset validation, not the
  /// hot path.
  void audit() const;

 private:
  friend class PendingIterator;
  friend class WindowIterator;
  friend struct AuditTestAccess;

  /// Intrusive list links, one entry per slot (SoA: kept apart from the
  /// metadata and envelope arrays so list surgery touches only this).
  struct Link {
    std::int32_t prev_rcv = -1;
    std::int32_t next_rcv = -1;  ///< doubles as the free-list link
    std::int32_t prev_win = -1;
    std::int32_t next_win = -1;
  };

  /// Hot 16-byte per-slot metadata: everything the delivery walk and the
  /// plan-validation scan filter on. `id == kNoMsg` means the slot is NOT
  /// pending — either parked (delivered, awaiting its window sweep; the
  /// envelope still carries the id) or free (envelope id is kNoMsg too).
  struct Meta {
    MsgId id = kNoMsg;
    ProcId receiver = -1;
    ProcId sender = -1;
  };

  /// One send-window's pending list plus its member id range. `first_id` /
  /// `last_id` bound every id ever linked onto the list; while
  /// `contiguous` holds (no other window's ids were interleaved between
  /// this window's batches — always true under the engine's
  /// one-window-at-a-time publication), membership in [first_id, last_id]
  /// is EXACT for pending slots, giving deliver_window_run_to a window
  /// test that never touches the envelope.
  struct WinList {
    std::int32_t head = -1;
    std::int32_t tail = -1;
    MsgId first_id = kNoMsg;
    MsgId last_id = kNoMsg;
    bool contiguous = true;
  };

  /// Direct index size bound: past this many entries add_batch spills the
  /// live ones into the straggler map (async regime, where no window sweep
  /// ever rewinds the index). 64Ki entries = 256 KiB — far above any
  /// window-regime working set, far below the horizon of a long async run.
  static constexpr std::size_t kDirectSpillLimit = std::size_t{1} << 16;

  /// Slot index for a live id; kAbsentSlot when retired. Throws on ids
  /// never issued. Two-tier: dense direct-index load for ids >=
  /// direct_base_, straggler hash map below it.
  [[nodiscard]] std::int32_t slot_of(MsgId id) const;
  /// Unlink from both lists, erase the id mapping, push onto the free list.
  void retire(std::int32_t slot);
  void unlink_receiver(std::int32_t slot);
  void unlink_window(std::int32_t slot);
  /// Pop leading empty window lists (the newest list always survives so a
  /// re-send into the current window can extend it).
  void trim_window_ring();

  [[nodiscard]] WinList& win_list(std::int64_t w) {
    return win_ring_[static_cast<std::size_t>(
        (win_begin_ + static_cast<std::size_t>(w - win_base_)) & win_mask_)];
  }
  [[nodiscard]] const WinList& win_list(std::int64_t w) const {
    return win_ring_[static_cast<std::size_t>(
        (win_begin_ + static_cast<std::size_t>(w - win_base_)) & win_mask_)];
  }
  /// Ensure the ring covers window w (extending with empty lists).
  void reserve_window(std::int64_t w);

  int n_;
  // SoA slot arena: three lockstep arrays (see Link / Meta above; envs_ is
  // the canonical envelope storage every view points into).
  std::vector<Link> links_;
  std::vector<Meta> meta_;
  std::vector<Envelope> envs_;
  std::int32_t free_head_ = -1;

  // Two-tier id → slot resolution. direct_slots_[id - direct_base_] is the
  // slot that id was assigned to, for every id in [direct_base_, next_id_)
  // (stale entries are disarmed by the meta_ id check — a recycled slot
  // carries a different id). id_map_ holds EXACTLY the pending ids below
  // direct_base_; ids at or above it are never in the map.
  detail::MsgIdMap id_map_;
  MsgId next_id_ = 0;
  MsgId direct_base_ = 0;
  std::vector<std::int32_t> direct_slots_;

  std::vector<std::int32_t> rcv_head_;
  std::vector<std::int32_t> rcv_tail_;

  // Circular buffer of per-window pending lists for windows
  // [win_base_, win_base_ + win_count_).
  std::vector<WinList> win_ring_;
  std::size_t win_begin_ = 0;
  std::size_t win_mask_ = 0;
  std::size_t win_count_ = 0;
  std::int64_t win_base_ = 0;

  std::size_t pending_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;

  /// Accountability lens (owned by the caller; null = lens off).
  lens::WindowTrace* trace_ = nullptr;
};

}  // namespace aa::sim
