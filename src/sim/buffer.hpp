// MessageBuffer: the in-flight message store of §2.
//
// The adversary has full information: it can inspect every pending envelope.
// Delivery and drops are explicit engine events; a message is in exactly one
// of three states: pending, delivered, dropped. (Dropping models the
// acceptable-window semantics where messages from silenced senders are never
// delivered; the async crash model never drops except to crashed receivers.)
#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.hpp"

namespace aa::sim {

class MessageBuffer {
 public:
  explicit MessageBuffer(int n);

  /// Add a new in-flight message; returns its id.
  MsgId add(ProcId sender, ProcId receiver, const Message& payload,
            std::int64_t window, std::int64_t chain);

  /// Envelope lookup (any state).
  [[nodiscard]] const Envelope& get(MsgId id) const;

  [[nodiscard]] bool is_pending(MsgId id) const;
  [[nodiscard]] bool is_delivered(MsgId id) const;
  [[nodiscard]] bool is_dropped(MsgId id) const;

  /// Transition pending → delivered. Precondition: pending.
  void mark_delivered(MsgId id);
  /// Transition pending → dropped. Precondition: pending.
  void mark_dropped(MsgId id);

  /// Ids of all pending messages addressed to `receiver` (send order).
  [[nodiscard]] std::vector<MsgId> pending_to(ProcId receiver) const;

  /// Ids of pending messages to `receiver` from `sender` (send order).
  [[nodiscard]] std::vector<MsgId> pending_from_to(ProcId sender,
                                                   ProcId receiver) const;

  /// Ids of all pending messages sent during window `w`.
  [[nodiscard]] std::vector<MsgId> pending_in_window(std::int64_t w) const;

  /// All pending ids (send order).
  [[nodiscard]] std::vector<MsgId> all_pending() const;

  [[nodiscard]] std::size_t total_sent() const noexcept { return all_.size(); }
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_; }
  [[nodiscard]] std::size_t delivered_count() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::size_t dropped_count() const noexcept { return dropped_; }
  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  enum class State : std::uint8_t { Pending, Delivered, Dropped };

  int n_;
  std::vector<Envelope> all_;
  std::vector<State> state_;
  // Per-receiver index of message ids (never shrinks; state checked on scan).
  std::vector<std::vector<MsgId>> by_receiver_;
  std::size_t pending_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace aa::sim
