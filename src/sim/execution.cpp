#include "sim/execution.hpp"

#include <algorithm>

#include "lens/trace.hpp"
#include "util/check.hpp"

namespace aa::sim {

Execution::Execution(std::vector<std::unique_ptr<Process>> procs,
                     std::uint64_t seed, ExecutionConfig cfg)
    : n_(static_cast<int>(procs.size())),
      cfg_(cfg),
      procs_(std::move(procs)),
      buffer_(n_),
      crashed_(static_cast<std::size_t>(n_), false),
      resets_(static_cast<std::size_t>(n_), 0),
      chain_(static_cast<std::size_t>(n_), 0) {
  AA_REQUIRE(n_ > 0, "Execution: need at least one processor");
  Rng root(seed);
  rngs_.reserve(static_cast<std::size_t>(n_));
  staged_.reserve(static_cast<std::size_t>(n_));
  for (ProcId p = 0; p < n_; ++p) {
    AA_REQUIRE(procs_[static_cast<std::size_t>(p)] != nullptr,
               "Execution: null process");
    rngs_.push_back(root.fork(static_cast<std::uint64_t>(p)));
    staged_.emplace_back(n_);
  }
  buffer_.set_trace(cfg_.lens);
  if (cfg_.lens != nullptr) cfg_.lens->begin_trial(n_);
  for (ProcId p = 0; p < n_; ++p) {
    procs_[static_cast<std::size_t>(p)]->on_start(
        staged_[static_cast<std::size_t>(p)]);
  }
}

void Execution::reset(std::vector<std::unique_ptr<Process>> procs,
                      std::uint64_t seed, ExecutionConfig cfg) {
  const int n = static_cast<int>(procs.size());
  AA_REQUIRE(n > 0, "Execution::reset: need at least one processor");
  const bool same_n = n == n_;
  n_ = n;
  cfg_ = cfg;
  procs_ = std::move(procs);
  buffer_.reset(n);
  Rng root(seed);
  rngs_.clear();
  rngs_.reserve(static_cast<std::size_t>(n));
  if (!same_n) {
    staged_.clear();
    staged_.reserve(static_cast<std::size_t>(n));
  }
  for (ProcId p = 0; p < n_; ++p) {
    AA_REQUIRE(procs_[static_cast<std::size_t>(p)] != nullptr,
               "Execution::reset: null process");
    rngs_.push_back(root.fork(static_cast<std::uint64_t>(p)));
    if (same_n) {
      staged_[static_cast<std::size_t>(p)].clear();
    } else {
      staged_.emplace_back(n);
    }
  }
  crashed_.assign(static_cast<std::size_t>(n), false);
  resets_.assign(static_cast<std::size_t>(n), 0);
  chain_.assign(static_cast<std::size_t>(n), 0);
  decisions_.clear();
  events_.clear();
  published_.clear();
  run_envs_.clear();
  // Scratch arrays keep their (epoch-stamped) contents; only the run-scoped
  // bookkeeping must forget the previous trial. collect_window = -1 disarms
  // batch collection (window_ restarts at 0), and clearing the planner
  // forces run_acceptable_window to re-prepare whatever adversary shows up.
  scratch_.collect_window = -1;
  scratch_.planner = nullptr;
  scratch_.planner_t = -1;
  scratch_.plan_validated = false;
  scratch_.plan_liveness_epoch = -1;
  window_ = 0;
  steps_ = 0;
  total_resets_ = 0;
  liveness_epoch_ = 0;
  crashed_count_ = 0;
  buffer_.set_trace(cfg_.lens);
  if (cfg_.lens != nullptr) cfg_.lens->begin_trial(n_);
  for (ProcId p = 0; p < n_; ++p) {
    procs_[static_cast<std::size_t>(p)]->on_start(
        staged_[static_cast<std::size_t>(p)]);
  }
}

SentBatch Execution::sending_step(ProcId p) {
  AA_REQUIRE(p >= 0 && p < n_, "sending_step: bad proc id");
  record(StepKind::Send, p);
  published_.clear();
  if (crashed_[static_cast<std::size_t>(p)]) return SentBatch(p, published_);
  Outbox& out = staged_[static_cast<std::size_t>(p)];
  // Complete-response semantics: an empty outbox means the step is a no-op.
  const auto& items = out.items();
  const std::size_t m = items.size();
  if (m == 0) return SentBatch(p, published_);
  const MsgId first = buffer_.add_batch(
      p, items, window_, chain_[static_cast<std::size_t>(p)] + 1);
  if (cfg_.lens != nullptr) cfg_.lens->on_publish(p, items, window_);
  published_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    published_[i] = first + static_cast<MsgId>(i);
  }
  if (scratch_.collect_window != window_) {
    out.clear();
    return SentBatch(p, published_);
  }

  // Window collection armed: fold this step's receiver grouping into the
  // incremental pair index. Ids are assigned in staging order, so the
  // stable grouping preserves per-pair send order — appending sender rows
  // in step order reproduces the old counting-sort layout exactly.
  WindowScratch& sc = scratch_;
  AA_CHECK(sc.row_stamp[static_cast<std::size_t>(p)] != sc.batch_epoch,
           "sending_step: one non-empty publication per sender per "
           "collected window");
  out.index_by_receiver(sc.sort_begin, sc.sort_order);
  sc.batch.insert(sc.batch.end(), published_.begin(), published_.end());
  const auto base = static_cast<std::int32_t>(sc.pair_ids.size());
  const std::size_t row =
      static_cast<std::size_t>(p) * (static_cast<std::size_t>(n_) + 1);
  for (std::size_t r = 0; r <= static_cast<std::size_t>(n_); ++r) {
    sc.pair_begin[row + r] = base + sc.sort_begin[r];
  }
  sc.pair_ids.resize(static_cast<std::size_t>(base) + m);
  for (std::size_t j = 0; j < m; ++j) {
    sc.pair_ids[static_cast<std::size_t>(base) + j] =
        first + static_cast<MsgId>(sc.sort_order[j]);
  }
  sc.row_stamp[static_cast<std::size_t>(p)] = sc.batch_epoch;
  for (std::size_t r = 0; r < static_cast<std::size_t>(n_); ++r) {
    const std::int32_t c = sc.sort_begin[r + 1] - sc.sort_begin[r];
    if (c == 0) continue;
    if (sc.rcv_stamp[r] == sc.batch_epoch) {
      sc.rcv_total[r] += c;
    } else {
      sc.rcv_stamp[r] = sc.batch_epoch;
      sc.rcv_total[r] = c;
    }
  }
  out.clear();
  return SentBatch(
      p, published_,
      std::span<const std::int32_t>(sc.pair_begin).subspan(
          row, static_cast<std::size_t>(n_) + 1),
      sc.pair_ids);
}

void Execution::begin_window_batch() {
  WindowScratch& sc = scratch_;
  const auto n = static_cast<std::size_t>(n_);
  if (sc.row_stamp.size() != n) {
    sc.row_stamp.assign(n, 0);
    sc.rcv_stamp.assign(n, 0);
    sc.rcv_total.assign(n, 0);
    sc.member_stamp.assign(n, 0);
    sc.pair_begin.assign(n * (n + 1), 0);
  }
  sc.batch.clear();
  sc.pair_ids.clear();
  ++sc.batch_epoch;
  sc.collect_window = window_;
}

WindowBatch Execution::window_batch() const {
  AA_CHECK(scratch_.collect_window == window_,
           "window_batch: no batch collected for the current window");
  return WindowBatch(&scratch_, n_);
}

void Execution::receiving_step(MsgId id) {
  AA_CHECK(buffer_.is_pending(id), "receiving_step: message not pending");
  // Copy: mark_delivered retires the arena slot this reference points into.
  const Envelope env = buffer_.get(id);
  const ProcId p = env.receiver;
  AA_CHECK(!crashed_[static_cast<std::size_t>(p)],
           "receiving_step: delivery to a crashed processor");
  record(StepKind::Receive, p, id);
  buffer_.mark_delivered(id);
  if (cfg_.lens != nullptr) cfg_.lens->on_deliver(env, window_, steps_);
  chain_[static_cast<std::size_t>(p)] =
      std::max(chain_[static_cast<std::size_t>(p)], env.chain);
  const int out_before = procs_[static_cast<std::size_t>(p)]->output();
  procs_[static_cast<std::size_t>(p)]->on_receive(
      env, rngs_[static_cast<std::size_t>(p)],
      staged_[static_cast<std::size_t>(p)]);
  check_output_write_once(p, out_before);
}

int Execution::deliver_run(ProcId receiver, std::span<const MsgId> ids) {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "deliver_run: bad receiver id");
  AA_CHECK(!crashed_[static_cast<std::size_t>(receiver)],
           "deliver_run: delivery to a crashed processor");
  // Deliver each id up front (lazily: the slots stay parked on their
  // window list until end_window sweeps them), collecting envelope views
  // that stay valid through on_receive_batch.
  run_envs_.clear();
  std::int64_t& chain = chain_[static_cast<std::size_t>(receiver)];
  for (const MsgId id : ids) {
    // deliver_lazy rejects a wrong-receiver id before touching any state.
    const Envelope* env = buffer_.deliver_lazy(id, receiver);
    if (env == nullptr) continue;  // already retired — nothing to deliver
    record(StepKind::Receive, receiver, id);
    if (cfg_.lens != nullptr) cfg_.lens->on_deliver(*env, window_, steps_);
    if (env->chain > chain) chain = env->chain;
    run_envs_.push_back(env);
  }
  if (run_envs_.empty()) return 0;
  const int out_before =
      procs_[static_cast<std::size_t>(receiver)]->output();
  procs_[static_cast<std::size_t>(receiver)]->on_receive_batch(
      run_envs_, rngs_[static_cast<std::size_t>(receiver)],
      staged_[static_cast<std::size_t>(receiver)]);
  check_output_write_once(receiver, out_before);
  return static_cast<int>(run_envs_.size());
}

int Execution::deliver_plan_row(ProcId receiver, std::span<const ProcId> row) {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "deliver_plan_row: bad receiver");
  AA_CHECK(!crashed_[static_cast<std::size_t>(receiver)],
           "deliver_plan_row: delivery to a crashed processor");
  WindowScratch& sc = scratch_;
  AA_CHECK(sc.collect_window == window_,
           "deliver_plan_row: no batch collected for the current window");
  const WindowBatch batch(&sc, n_);

  // Fast-path eligibility: list order (ascending id ⇒ ascending sender
  // within one window) must equal plan order, i.e. the row's
  // senders-with-messages must already be ascending. Senders that sent
  // nothing to this receiver are order-irrelevant no-ops.
  bool ascending = true;
  ProcId last = -1;
  std::int64_t covered = 0;
  const std::uint64_t member_epoch = ++sc.member_epoch;
  for (const ProcId s : row) {
    AA_REQUIRE(s >= 0 && s < n_, "deliver_plan_row: sender id out of range");
    sc.member_stamp[static_cast<std::size_t>(s)] = member_epoch;
    const std::int32_t c = batch.count(s, receiver);
    if (c == 0) continue;
    if (s < last) ascending = false;
    last = s;
    covered += c;
  }
  if (covered == 0) return 0;  // row senders published nothing to receiver

  if (ascending) {
    // Whole-list fast path: consume the receiver's pending list in one
    // splice. A full cover (row ⊇ every sender with messages) needs no
    // membership test at all; a partial cover filters by the stamped row.
    const bool full = covered == batch.count_to(receiver);
    run_envs_.clear();
    const int delivered = buffer_.deliver_window_run_to(
        receiver, window_, full ? nullptr : sc.member_stamp.data(),
        member_epoch, run_envs_);
    std::int64_t& chain = chain_[static_cast<std::size_t>(receiver)];
    for (const Envelope* env : run_envs_) {
      record(StepKind::Receive, receiver, env->id);
      if (cfg_.lens != nullptr) cfg_.lens->on_deliver(*env, window_, steps_);
      if (env->chain > chain) chain = env->chain;
    }
    if (delivered == 0) return 0;
    const int out_before =
        procs_[static_cast<std::size_t>(receiver)]->output();
    procs_[static_cast<std::size_t>(receiver)]->on_receive_batch(
        run_envs_, rngs_[static_cast<std::size_t>(receiver)],
        staged_[static_cast<std::size_t>(receiver)]);
    check_output_write_once(receiver, out_before);
    return delivered;
  }

  // Slow path (genuinely adversarial order): gather the run in plan order
  // from the pair index and deliver per id.
  sc.run_ids.clear();
  for (const ProcId s : row) {
    const std::span<const MsgId> seg = batch.from_to(s, receiver);
    sc.run_ids.insert(sc.run_ids.end(), seg.begin(), seg.end());
  }
  return deliver_run(receiver, sc.run_ids);
}

void Execution::resetting_step(ProcId p) {
  AA_REQUIRE(p >= 0 && p < n_, "resetting_step: bad proc id");
  AA_CHECK(!crashed_[static_cast<std::size_t>(p)],
           "resetting_step: cannot reset a crashed processor");
  record(StepKind::Reset, p);
  ++liveness_epoch_;
  const int out_before = procs_[static_cast<std::size_t>(p)]->output();
  procs_[static_cast<std::size_t>(p)]->on_reset();
  check_output_write_once(p, out_before);
  // Erased memory cannot send: staged-but-unsent messages are lost too.
  staged_[static_cast<std::size_t>(p)].clear();
  ++resets_[static_cast<std::size_t>(p)];
  ++total_resets_;
}

void Execution::crash(ProcId p) {
  AA_REQUIRE(p >= 0 && p < n_, "crash: bad proc id");
  if (crashed_[static_cast<std::size_t>(p)]) return;
  record(StepKind::Crash, p);
  ++liveness_epoch_;
  crashed_[static_cast<std::size_t>(p)] = true;
  staged_[static_cast<std::size_t>(p)].clear();
  ++crashed_count_;
}

void Execution::end_window() {
  if (audit_due()) audit();
  buffer_.drop_pending_in_window(window_);
  ++window_;
}

void Execution::advance_window_keep_pending() {
  if (audit_due()) audit();
  // The window advances with messages still pending, so no sweep will ever
  // range-retire their ids: migrate them to the straggler map now and keep
  // the direct index anchored at the current watermark. Pure id→slot
  // bookkeeping — no delivery order or envelope view changes.
  buffer_.spill_direct_index();
  ++window_;
}

bool Execution::audit_due() const {
  // Every-window auditing wins; otherwise sample the boundary of every
  // audit_every'th window. The predicate depends only on the config and
  // the window index, so sampled audits are deterministic per trial.
  if (cfg_.audit) return true;
  return cfg_.audit_every > 0 && window_ % cfg_.audit_every == 0;
}

void Execution::audit() const {
  buffer_.audit();

  // Liveness bookkeeping: the counters are denormalized views of the
  // per-processor arrays, and every crash/reset bumped the epoch exactly
  // once.
  int crashed = 0;
  std::int64_t resets = 0;
  for (ProcId p = 0; p < n_; ++p) {
    if (crashed_[static_cast<std::size_t>(p)]) ++crashed;
    const int r = resets_[static_cast<std::size_t>(p)];
    AA_CHECK(r >= 0, "audit: negative per-processor reset count");
    resets += r;
    AA_CHECK(chain_[static_cast<std::size_t>(p)] >= 0,
             "audit: negative chain depth");
    if (crashed_[static_cast<std::size_t>(p)]) {
      AA_CHECK(staged_[static_cast<std::size_t>(p)].empty(),
               "audit: crashed processor holds staged messages");
    }
  }
  AA_CHECK(crashed == crashed_count_,
           "audit: crashed_count disagrees with the crashed array");
  AA_CHECK(resets == total_resets_,
           "audit: total_resets disagrees with the per-processor counts");
  AA_CHECK(liveness_epoch_ == total_resets_ + crashed_count_,
           "audit: liveness epoch is not resets + crashes");

  // Write-once outputs: at most one decision per processor, each agreeing
  // with the live output bit and stamped inside the run so far; and every
  // written output has its decision record.
  std::vector<std::uint8_t> decided(static_cast<std::size_t>(n_), 0);
  for (const Decision& d : decisions_) {
    AA_CHECK(d.proc >= 0 && d.proc < n_, "audit: decision for a bad proc id");
    AA_CHECK(!decided[static_cast<std::size_t>(d.proc)],
             "audit: two decision records for one processor");
    decided[static_cast<std::size_t>(d.proc)] = 1;
    AA_CHECK(d.value == 0 || d.value == 1,
             "audit: decision value is not a bit");
    AA_CHECK(output(d.proc) == d.value,
             "audit: decision record disagrees with the output bit");
    AA_CHECK(d.window >= 0 && d.window <= window_,
             "audit: decision window outside the run");
    AA_CHECK(d.step >= 0 && d.step <= steps_,
             "audit: decision step outside the run");
  }
  for (ProcId p = 0; p < n_; ++p) {
    const int o = output(p);
    AA_CHECK(o == kBot || o == 0 || o == 1, "audit: output is not kBot/0/1");
    if (o != kBot) {
      AA_CHECK(decided[static_cast<std::size_t>(p)],
               "audit: written output without a decision record");
    }
  }

  // Epoch-stamp freshness: no scratch stamp may come from the future —
  // that is exactly the corruption the stamped-counter design would
  // silently misread as "valid this window".
  for (const std::uint64_t s : scratch_.row_stamp) {
    AA_CHECK(s <= scratch_.batch_epoch, "audit: row_stamp from the future");
  }
  for (const std::uint64_t s : scratch_.rcv_stamp) {
    AA_CHECK(s <= scratch_.batch_epoch, "audit: rcv_stamp from the future");
  }
  for (const std::uint64_t s : scratch_.member_stamp) {
    AA_CHECK(s <= scratch_.member_epoch,
             "audit: member_stamp from the future");
  }
  for (const std::uint64_t s : scratch_.stamp) {
    AA_CHECK(s <= scratch_.epoch, "audit: plan-validation stamp from the future");
  }
  AA_CHECK(scratch_.collect_window <= window_,
           "audit: batch collection armed for a future window");
}

const Process& Execution::process(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "process: bad proc id");
  return *procs_[static_cast<std::size_t>(p)];
}

bool Execution::crashed(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "crashed: bad proc id");
  return crashed_[static_cast<std::size_t>(p)];
}

int Execution::reset_count(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "reset_count: bad proc id");
  return resets_[static_cast<std::size_t>(p)];
}

std::int64_t Execution::chain_depth(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "chain_depth: bad proc id");
  return chain_[static_cast<std::size_t>(p)];
}

bool Execution::has_staged(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "has_staged: bad proc id");
  return !staged_[static_cast<std::size_t>(p)].empty();
}

int Execution::output(ProcId p) const { return process(p).output(); }

std::optional<Decision> Execution::first_decision() const {
  if (decisions_.empty()) return std::nullopt;
  return decisions_.front();
}

bool Execution::outputs_agree() const {
  int seen = kBot;
  for (ProcId p = 0; p < n_; ++p) {
    const int o = output(p);
    if (o == kBot) continue;
    if (seen == kBot) seen = o;
    else if (seen != o) return false;
  }
  return true;
}

bool Execution::all_live_decided() const {
  for (ProcId p = 0; p < n_; ++p) {
    if (!crashed_[static_cast<std::size_t>(p)] && output(p) == kBot)
      return false;
  }
  return true;
}

void Execution::record(StepKind k, ProcId p, MsgId m) {
  ++steps_;
  if (cfg_.record_events) events_.push_back(Event{k, p, m, window_});
}

void Execution::check_output_write_once(ProcId p, int before) {
  const int after = procs_[static_cast<std::size_t>(p)]->output();
  if (before == after) return;
  AA_CHECK(before == kBot, "output bit is write-once but was rewritten");
  AA_CHECK(after == 0 || after == 1, "output bit must be 0 or 1");
  decisions_.push_back(Decision{p, after, window_, steps_,
                                chain_[static_cast<std::size_t>(p)]});
  if (cfg_.lens != nullptr) cfg_.lens->on_decision(p, window_, steps_);
}

}  // namespace aa::sim
