#include "sim/execution.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aa::sim {

Execution::Execution(std::vector<std::unique_ptr<Process>> procs,
                     std::uint64_t seed, ExecutionConfig cfg)
    : n_(static_cast<int>(procs.size())),
      cfg_(cfg),
      procs_(std::move(procs)),
      buffer_(n_),
      crashed_(static_cast<std::size_t>(n_), false),
      resets_(static_cast<std::size_t>(n_), 0),
      chain_(static_cast<std::size_t>(n_), 0) {
  AA_REQUIRE(n_ > 0, "Execution: need at least one processor");
  Rng root(seed);
  rngs_.reserve(static_cast<std::size_t>(n_));
  staged_.reserve(static_cast<std::size_t>(n_));
  for (ProcId p = 0; p < n_; ++p) {
    AA_REQUIRE(procs_[static_cast<std::size_t>(p)] != nullptr,
               "Execution: null process");
    rngs_.push_back(root.fork(static_cast<std::uint64_t>(p)));
    staged_.emplace_back(n_);
  }
  for (ProcId p = 0; p < n_; ++p) {
    procs_[static_cast<std::size_t>(p)]->on_start(
        staged_[static_cast<std::size_t>(p)]);
  }
}

std::span<const MsgId> Execution::sending_step(ProcId p) {
  AA_REQUIRE(p >= 0 && p < n_, "sending_step: bad proc id");
  record(StepKind::Send, p);
  published_.clear();
  if (crashed_[static_cast<std::size_t>(p)]) return published_;
  Outbox& out = staged_[static_cast<std::size_t>(p)];
  // Complete-response semantics: an empty outbox means the step is a no-op.
  for (const Outbox::Item& item : out.items()) {
    published_.push_back(buffer_.add(p, item.to, item.msg, window_,
                                     chain_[static_cast<std::size_t>(p)] + 1));
  }
  out.clear();
  return published_;
}

void Execution::receiving_step(MsgId id) {
  AA_CHECK(buffer_.is_pending(id), "receiving_step: message not pending");
  // Copy: mark_delivered retires the arena slot this reference points into.
  const Envelope env = buffer_.get(id);
  const ProcId p = env.receiver;
  AA_CHECK(!crashed_[static_cast<std::size_t>(p)],
           "receiving_step: delivery to a crashed processor");
  record(StepKind::Receive, p, id);
  buffer_.mark_delivered(id);
  chain_[static_cast<std::size_t>(p)] =
      std::max(chain_[static_cast<std::size_t>(p)], env.chain);
  const int out_before = procs_[static_cast<std::size_t>(p)]->output();
  procs_[static_cast<std::size_t>(p)]->on_receive(
      env, rngs_[static_cast<std::size_t>(p)],
      staged_[static_cast<std::size_t>(p)]);
  check_output_write_once(p, out_before);
}

int Execution::deliver_run(ProcId receiver, std::span<const MsgId> ids) {
  AA_REQUIRE(receiver >= 0 && receiver < n_, "deliver_run: bad receiver id");
  AA_CHECK(!crashed_[static_cast<std::size_t>(receiver)],
           "deliver_run: delivery to a crashed processor");
  // Deliver each id up front (lazily: the slots stay parked on their
  // window list until end_window sweeps them), collecting envelope views
  // that stay valid through on_receive_batch.
  run_envs_.clear();
  std::int64_t& chain = chain_[static_cast<std::size_t>(receiver)];
  for (const MsgId id : ids) {
    // deliver_lazy rejects a wrong-receiver id before touching any state.
    const Envelope* env = buffer_.deliver_lazy(id, receiver);
    if (env == nullptr) continue;  // already retired — nothing to deliver
    record(StepKind::Receive, receiver, id);
    if (env->chain > chain) chain = env->chain;
    run_envs_.push_back(env);
  }
  if (run_envs_.empty()) return 0;
  const int out_before =
      procs_[static_cast<std::size_t>(receiver)]->output();
  procs_[static_cast<std::size_t>(receiver)]->on_receive_batch(
      run_envs_, rngs_[static_cast<std::size_t>(receiver)],
      staged_[static_cast<std::size_t>(receiver)]);
  check_output_write_once(receiver, out_before);
  return static_cast<int>(run_envs_.size());
}

void Execution::resetting_step(ProcId p) {
  AA_REQUIRE(p >= 0 && p < n_, "resetting_step: bad proc id");
  AA_CHECK(!crashed_[static_cast<std::size_t>(p)],
           "resetting_step: cannot reset a crashed processor");
  record(StepKind::Reset, p);
  ++liveness_epoch_;
  const int out_before = procs_[static_cast<std::size_t>(p)]->output();
  procs_[static_cast<std::size_t>(p)]->on_reset();
  check_output_write_once(p, out_before);
  // Erased memory cannot send: staged-but-unsent messages are lost too.
  staged_[static_cast<std::size_t>(p)].clear();
  ++resets_[static_cast<std::size_t>(p)];
  ++total_resets_;
}

void Execution::crash(ProcId p) {
  AA_REQUIRE(p >= 0 && p < n_, "crash: bad proc id");
  if (crashed_[static_cast<std::size_t>(p)]) return;
  record(StepKind::Crash, p);
  ++liveness_epoch_;
  crashed_[static_cast<std::size_t>(p)] = true;
  staged_[static_cast<std::size_t>(p)].clear();
  ++crashed_count_;
}

void Execution::end_window() {
  buffer_.drop_pending_in_window(window_);
  ++window_;
}

void Execution::advance_window_keep_pending() { ++window_; }

const Process& Execution::process(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "process: bad proc id");
  return *procs_[static_cast<std::size_t>(p)];
}

bool Execution::crashed(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "crashed: bad proc id");
  return crashed_[static_cast<std::size_t>(p)];
}

int Execution::reset_count(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "reset_count: bad proc id");
  return resets_[static_cast<std::size_t>(p)];
}

std::int64_t Execution::chain_depth(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "chain_depth: bad proc id");
  return chain_[static_cast<std::size_t>(p)];
}

bool Execution::has_staged(ProcId p) const {
  AA_REQUIRE(p >= 0 && p < n_, "has_staged: bad proc id");
  return !staged_[static_cast<std::size_t>(p)].empty();
}

int Execution::output(ProcId p) const { return process(p).output(); }

std::optional<Decision> Execution::first_decision() const {
  if (decisions_.empty()) return std::nullopt;
  return decisions_.front();
}

bool Execution::outputs_agree() const {
  int seen = kBot;
  for (ProcId p = 0; p < n_; ++p) {
    const int o = output(p);
    if (o == kBot) continue;
    if (seen == kBot) seen = o;
    else if (seen != o) return false;
  }
  return true;
}

bool Execution::all_live_decided() const {
  for (ProcId p = 0; p < n_; ++p) {
    if (!crashed_[static_cast<std::size_t>(p)] && output(p) == kBot)
      return false;
  }
  return true;
}

void Execution::record(StepKind k, ProcId p, MsgId m) {
  ++steps_;
  if (cfg_.record_events) events_.push_back(Event{k, p, m, window_});
}

void Execution::check_output_write_once(ProcId p, int before) {
  const int after = procs_[static_cast<std::size_t>(p)]->output();
  if (before == after) return;
  AA_CHECK(before == kBot, "output bit is write-once but was rewritten");
  AA_CHECK(after == 0 || after == 1, "output bit must be 0 or 1");
  decisions_.push_back(Decision{p, after, window_, steps_,
                                chain_[static_cast<std::size_t>(p)]});
}

}  // namespace aa::sim
