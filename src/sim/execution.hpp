// Execution: one run of an algorithm under adversarial control, expressed as
// the fine-grained step sequence of §2 (sending / receiving / resetting
// steps, plus crash for the §5 model).
//
// Engine-enforced model invariants:
//  * A sending step is a complete response to prior events: two consecutive
//    sending steps with no intervening receiving/resetting step make the
//    second a no-op (DESIGN.md decision D1).
//  * Receiving steps are the only randomized steps; each processor draws
//    from its own forked Rng stream (decision D3).
//  * The output bit is write-once: the engine snapshots it around every step
//    and faults if a protocol ever changes a written output.
//  * Resets erase staged (unsent) messages too — erased memory cannot send.
//  * Crashed processors take no further steps; crashing is permanent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/plan.hpp"
#include "sim/process.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace aa::lens {
class WindowTrace;
}  // namespace aa::lens

namespace aa::sim {

/// One recorded step (kept only when ExecutionConfig::record_events).
struct Event {
  StepKind kind;
  ProcId proc;
  MsgId msg = kNoMsg;       ///< delivered message (Receive only)
  std::int64_t window = 0;  ///< window counter at the time of the step
};

/// Record of a decision (output-bit write).
struct Decision {
  ProcId proc;
  int value;                ///< 0 or 1
  std::int64_t window;      ///< window index at decision time
  std::int64_t step;        ///< global step index at decision time
  std::int64_t chain;       ///< message-chain depth of the decider
};

struct ExecutionConfig {
  bool record_events = false;  ///< keep the full step log (memory-heavy)
  /// Run the invariant auditor (Execution::audit) at every window boundary
  /// (end_window / advance_window_keep_pending). Opt-in: O(slots) per
  /// window, meant for chaos runs, CI sanitizer jobs and debugging.
  bool audit = false;
  /// Sampled auditing: audit at every Nth window boundary (those where
  /// window_index % N == 0; 0 = off). Cheap enough to leave on in Release
  /// campaigns — the per-window cost amortizes to O(slots)/N. `audit`
  /// overrides this to every-window when both are set. Auditing only ever
  /// throws on corruption; it never changes a report.
  int audit_every = 0;
  /// Latency & accountability lens (lens/trace.hpp): when non-null, the
  /// engine streams publish/deliver/suppress/decision events into this
  /// trace. The trace is owned by the caller (typically a per-worker
  /// core::WorkerScratch) and must outlive the Execution; the engine calls
  /// begin_trial(n) on construction and reset. Null = every hook is one
  /// predictable pointer test — reports stay bit-identical.
  lens::WindowTrace* lens = nullptr;
};

class Execution {
 public:
  /// Takes ownership of the per-processor protocol instances (index = id).
  /// Calls each process's on_start to stage initial messages.
  Execution(std::vector<std::unique_ptr<Process>> procs, std::uint64_t seed,
            ExecutionConfig cfg = {});

  /// Rebuild this execution in place for a new trial: fresh processes,
  /// fresh per-processor Rng streams forked from `seed`, empty buffer and
  /// zeroed counters — observationally identical to constructing
  /// Execution(procs, seed, cfg) from scratch, but KEEPING every grown
  /// capacity (message-buffer arena + id map, window scratch, outboxes,
  /// per-processor vectors). This is the campaign engine's per-worker
  /// reuse path: one Execution per worker persists across trials and
  /// across checks, so steady-state trials allocate almost nothing beyond
  /// the process objects themselves.
  void reset(std::vector<std::unique_ptr<Process>> procs, std::uint64_t seed,
             ExecutionConfig cfg = {});

  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;
  Execution(Execution&&) = default;
  Execution& operator=(Execution&&) = default;

  [[nodiscard]] int n() const noexcept { return n_; }

  // ---- the three step kinds of §2 (+ crash for §5) ----

  /// Sending step: publish `p`'s staged messages into the buffer in one
  /// MessageBuffer::add_batch run. Returns a SentBatch view of the ids
  /// published (empty when the step is a no-op); while a window batch is
  /// being collected (begin_window_batch) the step also folds the sender's
  /// receiver grouping into the window pair index and the SentBatch
  /// exposes it via to(r). The view aliases reusable internal buffers — it
  /// is invalidated by the next sending step, so copy it out if it must
  /// outlive one step.
  SentBatch sending_step(ProcId p);

  /// Receiving step: deliver pending message `id` to its recipient and run
  /// the (randomized) local computation.
  void receiving_step(MsgId id);

  /// Batched receiving steps: deliver every still-pending id in `ids` (in
  /// order; all must be addressed to `receiver`) and run the local
  /// computation ONCE over the whole run via Process::on_receive_batch.
  /// The crash check and the output write-once snapshot happen once per
  /// run instead of once per message; each delivery still counts as one
  /// receiving step (step counter / event log). Returns the number of
  /// messages delivered. Used by run_acceptable_window; for protocols that
  /// honour the on_receive_batch contract this matches a receiving_step
  /// per id in every observable EXCEPT the Decision record's step/chain
  /// stamps, which carry end-of-run granularity (the decision's window and
  /// value are exact; which message within the run triggered the write is
  /// not reconstructed). Window-model consumers read windows, not steps —
  /// the async model, whose chain metric is load-bearing, delivers per id.
  int deliver_run(ProcId receiver, std::span<const MsgId> ids);

  // ---- bulk publication (the window driver's batch pipeline) ----

  /// Arm window-batch collection for the CURRENT window: clears the
  /// scratch batch and pair index and stamps a fresh batch epoch, so the
  /// following sending steps build the (sender, receiver) pair index
  /// incrementally instead of the driver re-walking the window list.
  /// Collection disarms automatically when the window counter advances.
  /// Precondition (checked): each sender takes at most one non-empty
  /// sending step per collected window — exactly what Definition 1's
  /// sending phase does.
  void begin_window_batch();

  /// View of the batch collected since begin_window_batch (ids + pair
  /// index). Precondition: collection is armed for the current window.
  [[nodiscard]] WindowBatch window_batch() const;

  /// Deliver one receiver's whole window run given its plan row (the
  /// ordered sender list, duplicate-free — validated plans are). Uses the
  /// collected pair index (precondition: begin_window_batch this window).
  /// When the row's senders-with-messages appear in ascending order, the
  /// delivery sequence equals the receiver's pending-list order and the
  /// run is consumed in one whole-list splice (bulk lazy delivery, a
  /// single on_receive_batch) — no per-message id-map lookups. A full
  /// cover of the receiver's window messages skips even the sender
  /// membership test. Rows in non-ascending (genuinely adversarial) order
  /// fall back to the per-id gather + deliver_run slow path, which is
  /// observationally identical. Returns the number delivered.
  int deliver_plan_row(ProcId receiver, std::span<const ProcId> row);

  /// Resetting step: erase `p`'s memory per §2 (input/output/id/reset
  /// counter survive; everything else, including staged messages, is lost).
  void resetting_step(ProcId p);

  /// Crash (only used by the §5 crash-model driver): `p` halts forever.
  void crash(ProcId p);

  // ---- window bookkeeping ----

  /// Current acceptable-window index (starts at 0).
  [[nodiscard]] std::int64_t window() const noexcept { return window_; }

  /// Close the current window: drop all still-pending messages that were
  /// sent in it (silenced senders' messages are never delivered under the
  /// acceptable-window regime) and advance the window counter.
  void end_window();

  /// Advance the window counter WITHOUT dropping (async/crash model, where
  /// every message must remain eligible for eventual delivery).
  void advance_window_keep_pending();

  // ---- full-information views ----

  [[nodiscard]] const Process& process(ProcId p) const;
  [[nodiscard]] const MessageBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] bool crashed(ProcId p) const;
  [[nodiscard]] int crashed_count() const noexcept { return crashed_count_; }
  [[nodiscard]] int reset_count(ProcId p) const;
  [[nodiscard]] std::int64_t total_resets() const noexcept {
    return total_resets_;
  }
  [[nodiscard]] std::int64_t step_count() const noexcept { return steps_; }
  [[nodiscard]] std::int64_t chain_depth(ProcId p) const;
  [[nodiscard]] bool has_staged(ProcId p) const;

  /// Monotone counter bumped by every crash and resetting step. The window
  /// driver re-validates a reused plan whenever this changed since the
  /// plan's last validation (the plan-reuse contract's defensive re-check).
  [[nodiscard]] std::int64_t liveness_epoch() const noexcept {
    return liveness_epoch_;
  }

  /// Output of processor p (kBot / 0 / 1).
  [[nodiscard]] int output(ProcId p) const;
  /// Number of processors with a written output bit.
  [[nodiscard]] int decided_count() const noexcept {
    return static_cast<int>(decisions_.size());
  }
  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }
  /// First decision, if any.
  [[nodiscard]] std::optional<Decision> first_decision() const;
  /// True iff every written output agrees (vacuously true with no outputs).
  [[nodiscard]] bool outputs_agree() const;
  /// True iff every non-crashed processor has decided.
  [[nodiscard]] bool all_live_decided() const;

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Reusable workspace for the window driver (engine-internal: used by
  /// run_acceptable_window so a steady-state window allocates nothing).
  [[nodiscard]] WindowScratch& window_scratch() noexcept { return scratch_; }

  /// Opt-in invariant auditor: MessageBuffer::audit() plus the
  /// execution-level consistency pass — liveness bookkeeping
  /// (crashed/reset counters vs. their per-processor arrays, the
  /// liveness-epoch identity), write-once decision records (one per
  /// processor, value ∈ {0,1}, agreeing with the live output bit, sane
  /// window/step stamps), crashed processors hold no staged messages, and
  /// scratch epoch-stamp freshness (no stamp from the future). Throws
  /// std::logic_error on the first violation. Runs automatically at window
  /// boundaries when ExecutionConfig::audit is set.
  void audit() const;

 private:
  friend struct AuditTestAccess;
  void record(StepKind k, ProcId p, MsgId m = kNoMsg);
  void check_output_write_once(ProcId p, int before);
  /// Whether this window boundary audits (cfg_.audit every window, or the
  /// cfg_.audit_every sampling period divides the window index).
  [[nodiscard]] bool audit_due() const;

  int n_;
  ExecutionConfig cfg_;
  std::vector<std::unique_ptr<Process>> procs_;
  MessageBuffer buffer_;
  std::vector<Rng> rngs_;
  std::vector<Outbox> staged_;
  std::vector<bool> crashed_;
  std::vector<int> resets_;
  std::vector<std::int64_t> chain_;
  std::vector<Decision> decisions_;
  std::vector<Event> events_;
  std::vector<MsgId> published_;            ///< reused by sending_step
  /// Reused by deliver_run; filled and consumed inside ONE run, never
  /// held across publication or a window sweep (buffer.hpp contract).
  // aa-lint: envelope-ok(transient deliver_run scratch, cleared per run)
  std::vector<const Envelope*> run_envs_;
  WindowScratch scratch_;
  std::int64_t window_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t total_resets_ = 0;
  std::int64_t liveness_epoch_ = 0;
  int crashed_count_ = 0;
};

}  // namespace aa::sim
