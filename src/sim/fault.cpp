#include "sim/fault.hpp"

#include "util/check.hpp"

namespace aa::sim {

void validate_fault_plan(const FaultPlan& plan) {
  const auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  AA_REQUIRE(prob_ok(plan.crash_prob), "FaultPlan: crash_prob not in [0, 1]");
  AA_REQUIRE(prob_ok(plan.reset_prob), "FaultPlan: reset_prob not in [0, 1]");
  AA_REQUIRE(prob_ok(plan.censor_prob),
             "FaultPlan: censor_prob not in [0, 1]");
  AA_REQUIRE(prob_ok(plan.duplicate_row_prob),
             "FaultPlan: duplicate_row_prob not in [0, 1]");
  AA_REQUIRE(prob_ok(plan.degenerate_prob),
             "FaultPlan: degenerate_prob not in [0, 1]");
  AA_REQUIRE(plan.crash_budget >= 0,
             "FaultPlan: crash_budget must be non-negative");
  AA_REQUIRE(plan.censor_target >= 0,
             "FaultPlan: censor_target must be non-negative");
}

}  // namespace aa::sim
