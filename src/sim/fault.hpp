// FaultPlan — the chaos-harness knob set for seed-deterministic engine
// fault injection.
//
// A FaultPlan does not act on its own: the adversary wrappers in
// adversary/chaos.hpp compose it with any existing WindowAdversary /
// AsyncAdversary, perturbing the inner adversary's choices while staying
// inside the model contracts (Definition 1 for windows, the crash budget t
// for the async model), so every checker verdict remains well defined under
// chaos. All perturbations draw from an Rng derived from (trial seed,
// chaos_seed) — the same trial replays bit-identically.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace aa::sim {

/// Per-run fault-injection knobs. All probabilities are per decision point
/// (window-model: per window or per plan row; async: per action). A
/// default-constructed plan injects nothing (enabled() == false), and the
/// chaos wrappers are only installed when a plan is enabled — a disabled
/// plan therefore causes ZERO report drift.
struct FaultPlan {
  /// Per-window probability of crashing one uniformly random live
  /// processor (applied by the driver at the window's end), up to
  /// crash_budget crashes per run. The async wrapper additionally honours
  /// the model budget t (run_async enforces crashed < t).
  double crash_prob = 0.0;
  int crash_budget = 0;

  /// Per-window probability of topping the plan's resets up to the full
  /// Definition-1 budget of t distinct targets.
  double reset_prob = 0.0;

  /// Per-row probability of censoring `censor_target`: the target sender is
  /// removed from a receiver's delivery set whenever the set has slack
  /// (|S_i| > n − t), so the plan stays acceptable.
  double censor_prob = 0.0;
  ProcId censor_target = 0;

  /// Per-window probability of copying one receiver's delivery row over
  /// another's (any acceptable row is acceptable for any receiver).
  double duplicate_row_prob = 0.0;

  /// Per-window probability of replacing the whole plan with the minimal
  /// degenerate window: every receiver hears exactly senders [0, n − t),
  /// no resets — maximal censorship Definition 1 permits.
  double degenerate_prob = 0.0;

  /// Mixed with the trial seed to derive the chaos Rng stream, so the same
  /// trial can be replayed under different chaos streams (and vice versa).
  std::uint64_t chaos_seed = 0;

  /// True iff any perturbation can fire.
  [[nodiscard]] bool enabled() const noexcept {
    return (crash_prob > 0.0 && crash_budget > 0) || reset_prob > 0.0 ||
           censor_prob > 0.0 || duplicate_row_prob > 0.0 ||
           degenerate_prob > 0.0;
  }
};

/// Throws std::invalid_argument unless every probability is in [0, 1] and
/// the crash budget and censor target are non-negative.
void validate_fault_plan(const FaultPlan& plan);

}  // namespace aa::sim
