// WindowPlan — the adversary's choice for one acceptable window — plus the
// bulk-publication types: WindowScratch (the reusable workspace that makes a
// steady-state window allocation-free, owned by Execution), SentBatch (the
// view one sending step returns), and WindowBatch (the incrementally built
// (sender, receiver) pair index the adversary and the delivery phase
// consume, replacing the per-window counting-sort rebuild).
//
// Id contract with the buffer: a window batch's ids are contiguous and
// ascending in publication order, so every pair_ids segment is ascending
// too. MessageBuffer::add_batch assigns that range against its dense
// direct index (no hash inserts), and drop_pending_in_window retires the
// whole range in one sweep once the window drains — callers must not
// cache ids across a window edge (see buffer.hpp's envelope-view
// invalidation contract).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace aa::sim {

/// The adversary's choice for one acceptable window.
/// `delivery_order[i]` is the ordered list of sender identities whose
/// just-sent messages are delivered to receiver i — its underlying SET must
/// have size ≥ n − t (Definition 1). Senders in the list that sent nothing
/// to i this window are permitted (delivering nothing is a no-op).
/// `resets` lists ≤ t distinct processors to reset at the window's end.
///
/// Plan-reuse contract: the driver hands the SAME plan object to the
/// adversary window after window without clearing it, so an adversary whose
/// plan is static can fill it once and answer kReusePrevious afterwards.
/// An adversary that answers kUpdated must fully overwrite the plan
/// (typically by calling reset(n) first) — stale rows and resets from the
/// previous window are otherwise still in it.
struct WindowPlan {
  std::vector<std::vector<ProcId>> delivery_order;
  std::vector<ProcId> resets;

  /// Empty the plan for reuse: n cleared delivery rows (capacity kept),
  /// no resets.
  void reset(int n) {
    delivery_order.resize(static_cast<std::size_t>(n));
    for (auto& order : delivery_order) order.clear();
    resets.clear();
  }
};

/// Per-execution scratch for the window driver. Every buffer is reused
/// window to window, so after warm-up a window performs no heap allocation.
///
/// Publication batch + fused pair index (filled by Execution::sending_step
/// while a window batch is being collected — see begin_window_batch):
///   batch        — ids published by this window's sending steps, in
///                  publication order
///   pair_begin   — n rows of n+1 absolute offsets into pair_ids; row s
///                  (entries s·(n+1) .. s·(n+1)+n) maps receiver r to the
///                  segment of sender s's window-batch ids addressed to r
///   pair_ids     — the batch grouped (sender-major, receiver-minor, id
///                  ascending within a pair) — the same layout the old
///                  per-window counting sort produced
///   row_stamp    — pair_begin row s is valid iff row_stamp[s] ==
///                  batch_epoch; stale rows mean "sender published
///                  nothing", so no counter array is ever reset (the old
///                  4 KiB per-window pair_count wipe is gone)
///   rcv_total    — per-receiver message totals this window (valid iff
///                  rcv_stamp[r] == batch_epoch), used by the whole-list
///                  delivery fast path's coverage check
///   sort_begin / sort_order — Outbox::index_by_receiver output scratch
///   member_stamp — per-sender plan-row membership marks for the filtered
///                  delivery fast path (epoch member_epoch)
///   batch_epoch  — bumped by every begin_window_batch
///   collect_window — the window index being collected, or -1 when the
///                  execution is not in a collected window (async drivers
///                  never arm this, so sending steps skip all indexing)
///
/// Plan bookkeeping (driven by run_acceptable_window):
///   plan         — the adversary's reusable WindowPlan
///   run_ids      — one receiver's delivery run, in plan order (slow path)
///   stamp, epoch — epoch-stamped duplicate detector for plan validation
///   planner, planner_t   — the (adversary, t) pairing prepare() last ran
///                          for on this execution; the driver re-prepares
///                          when either changes (validation bounds depend
///                          on t, so a plan reused under a different t
///                          must not skip re-validation)
///   plan_validated       — the current plan contents passed validation
///   plan_liveness_epoch  — Execution::liveness_epoch() at that validation;
///                          any crash/reset since forces re-validation even
///                          on reuse windows
struct WindowScratch {
  std::vector<MsgId> batch;
  std::vector<std::int32_t> pair_begin;
  std::vector<MsgId> pair_ids;
  std::vector<std::uint64_t> row_stamp;
  std::vector<std::int32_t> rcv_total;
  std::vector<std::uint64_t> rcv_stamp;
  std::vector<std::int32_t> sort_begin;
  std::vector<std::uint32_t> sort_order;
  std::vector<std::uint64_t> member_stamp;
  std::uint64_t member_epoch = 0;
  std::uint64_t batch_epoch = 0;
  std::int64_t collect_window = -1;
  WindowPlan plan;
  std::vector<MsgId> run_ids;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
  const void* planner = nullptr;
  int planner_t = -1;
  bool plan_validated = false;
  std::int64_t plan_liveness_epoch = -1;
};

/// View of the messages one sending step just published. `ids` is in
/// staging order (consecutive, ascending). While the execution is
/// collecting a window batch, the sender's pair-index row is additionally
/// exposed: to(r) is the slice of this step's ids addressed to receiver r.
/// All spans alias reusable Execution/WindowScratch storage and are
/// invalidated by the next sending step.
class SentBatch {
 public:
  SentBatch() = default;
  SentBatch(ProcId sender, std::span<const MsgId> ids)
      : sender_(sender), ids_(ids) {}
  SentBatch(ProcId sender, std::span<const MsgId> ids,
            std::span<const std::int32_t> row,
            std::span<const MsgId> pair_ids)
      : sender_(sender), ids_(ids), row_(row), pair_ids_(pair_ids) {}

  [[nodiscard]] ProcId sender() const noexcept { return sender_; }
  [[nodiscard]] std::span<const MsgId> ids() const noexcept { return ids_; }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] MsgId operator[](std::size_t i) const { return ids_[i]; }
  [[nodiscard]] auto begin() const noexcept { return ids_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ids_.end(); }

  /// True iff the per-receiver view below is populated (window collection
  /// was armed when the step ran and the step published something).
  [[nodiscard]] bool indexed() const noexcept { return !row_.empty(); }
  /// This step's ids addressed to receiver r (staging order). Empty view
  /// unless indexed().
  [[nodiscard]] std::span<const MsgId> to(ProcId r) const {
    if (row_.empty()) return {};
    const auto i = static_cast<std::size_t>(r);
    return pair_ids_.subspan(
        static_cast<std::size_t>(row_[i]),
        static_cast<std::size_t>(row_[i + 1] - row_[i]));
  }

 private:
  ProcId sender_ = -1;
  std::span<const MsgId> ids_;
  std::span<const std::int32_t> row_;  ///< n+1 offsets into pair_ids_
  std::span<const MsgId> pair_ids_;    ///< the whole window pair_ids array
};

/// Read-only view of one collected window's publication batch, indexed by
/// (sender, receiver). Built incrementally as sending steps publish —
/// handed to WindowAdversary::plan_window_into and consumed by the
/// delivery phase, so the driver never re-walks the window list to build
/// a counting sort. Aliases the execution's WindowScratch: valid only
/// until the window ends (or the next begin_window_batch).
class WindowBatch {
 public:
  WindowBatch(const WindowScratch* sc, int n) : sc_(sc), n_(n) {}

  [[nodiscard]] int n() const noexcept { return n_; }
  /// All ids published this window, publication order.
  [[nodiscard]] std::span<const MsgId> ids() const noexcept {
    return sc_->batch;
  }
  [[nodiscard]] std::size_t size() const noexcept { return sc_->batch.size(); }

  /// Number of messages sender s published to receiver r this window.
  [[nodiscard]] std::int32_t count(ProcId s, ProcId r) const {
    const std::size_t row = row_base(s);
    if (sc_->row_stamp[static_cast<std::size_t>(s)] != sc_->batch_epoch)
      return 0;
    return sc_->pair_begin[row + static_cast<std::size_t>(r) + 1] -
           sc_->pair_begin[row + static_cast<std::size_t>(r)];
  }

  /// The ids sender s published to receiver r this window (send order).
  [[nodiscard]] std::span<const MsgId> from_to(ProcId s, ProcId r) const {
    const std::size_t row = row_base(s);
    if (sc_->row_stamp[static_cast<std::size_t>(s)] != sc_->batch_epoch)
      return {};
    const auto b =
        static_cast<std::size_t>(sc_->pair_begin[row + static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(
        sc_->pair_begin[row + static_cast<std::size_t>(r) + 1]);
    return std::span<const MsgId>(sc_->pair_ids).subspan(b, e - b);
  }

  /// Total messages published to receiver r this window (all senders).
  [[nodiscard]] std::int32_t count_to(ProcId r) const {
    return sc_->rcv_stamp[static_cast<std::size_t>(r)] == sc_->batch_epoch
               ? sc_->rcv_total[static_cast<std::size_t>(r)]
               : 0;
  }

 private:
  [[nodiscard]] std::size_t row_base(ProcId s) const noexcept {
    return static_cast<std::size_t>(s) * (static_cast<std::size_t>(n_) + 1);
  }

  const WindowScratch* sc_;
  int n_;
};

}  // namespace aa::sim
