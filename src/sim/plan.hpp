// WindowPlan — the adversary's choice for one acceptable window — and
// WindowScratch — the reusable workspace that makes a steady-state window
// allocation-free (owned by Execution, threaded through
// run_acceptable_window / sending_step).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace aa::sim {

/// The adversary's choice for one acceptable window.
/// `delivery_order[i]` is the ordered list of sender identities whose
/// just-sent messages are delivered to receiver i — its underlying SET must
/// have size ≥ n − t (Definition 1). Senders in the list that sent nothing
/// to i this window are permitted (delivering nothing is a no-op).
/// `resets` lists ≤ t distinct processors to reset at the window's end.
///
/// Plan-reuse contract: the driver hands the SAME plan object to the
/// adversary window after window without clearing it, so an adversary whose
/// plan is static can fill it once and answer kReusePrevious afterwards.
/// An adversary that answers kUpdated must fully overwrite the plan
/// (typically by calling reset(n) first) — stale rows and resets from the
/// previous window are otherwise still in it.
struct WindowPlan {
  std::vector<std::vector<ProcId>> delivery_order;
  std::vector<ProcId> resets;

  /// Empty the plan for reuse: n cleared delivery rows (capacity kept),
  /// no resets.
  void reset(int n) {
    delivery_order.resize(static_cast<std::size_t>(n));
    for (auto& order : delivery_order) order.clear();
    resets.clear();
  }
};

/// Per-execution scratch for the window driver. Every buffer is reused
/// window to window, so after warm-up a window performs no heap allocation:
///   batch      — ids published by this window's sending steps
///   pair_count — n²-indexed (sender, receiver) counting-sort workspace
///   pair_begin — n²+1 offsets into pair_ids
///   pair_ids   — the batch grouped by (sender, receiver), send order kept
///   plan       — the adversary's reusable WindowPlan
///   run_ids    — one receiver's delivery run, in plan order
///   stamp      — epoch-stamped duplicate detector for plan validation
///
/// Plan-reuse bookkeeping (driven by run_acceptable_window):
///   planner, planner_t   — the (adversary, t) pairing prepare() last ran
///                          for on this execution; the driver re-prepares
///                          when either changes (validation bounds depend
///                          on t, so a plan reused under a different t
///                          must not skip re-validation)
///   plan_validated       — the current plan contents passed validation
///   plan_liveness_epoch  — Execution::liveness_epoch() at that validation;
///                          any crash/reset since forces re-validation even
///                          on reuse windows
struct WindowScratch {
  std::vector<MsgId> batch;
  std::vector<std::int32_t> pair_count;
  std::vector<std::int32_t> pair_begin;
  std::vector<MsgId> pair_ids;
  WindowPlan plan;
  std::vector<MsgId> run_ids;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
  const void* planner = nullptr;
  int planner_t = -1;
  bool plan_validated = false;
  std::int64_t plan_liveness_epoch = -1;
};

}  // namespace aa::sim
