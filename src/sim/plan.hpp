// WindowPlan — the adversary's choice for one acceptable window — and
// WindowScratch — the reusable workspace that makes a steady-state window
// allocation-free (owned by Execution, threaded through
// run_acceptable_window / sending_step).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace aa::sim {

/// The adversary's choice for one acceptable window.
/// `delivery_order[i]` is the ordered list of sender identities whose
/// just-sent messages are delivered to receiver i — its underlying SET must
/// have size ≥ n − t (Definition 1). Senders in the list that sent nothing
/// to i this window are permitted (delivering nothing is a no-op).
/// `resets` lists ≤ t distinct processors to reset at the window's end.
struct WindowPlan {
  std::vector<std::vector<ProcId>> delivery_order;
  std::vector<ProcId> resets;

  /// Empty the plan for reuse: n cleared delivery rows (capacity kept),
  /// no resets.
  void reset(int n) {
    delivery_order.resize(static_cast<std::size_t>(n));
    for (auto& order : delivery_order) order.clear();
    resets.clear();
  }
};

/// Per-execution scratch for the window driver. Every buffer is reused
/// window to window, so after warm-up a window performs no heap allocation:
///   batch      — ids published by this window's sending steps
///   pair_count — n²-indexed (sender, receiver) counting-sort workspace
///   pair_begin — n²+1 offsets into pair_ids
///   pair_ids   — the batch grouped by (sender, receiver), send order kept
///   plan       — the adversary's reusable WindowPlan
///   stamp      — epoch-stamped duplicate detector for plan validation
struct WindowScratch {
  std::vector<MsgId> batch;
  std::vector<std::int32_t> pair_count;
  std::vector<std::int32_t> pair_begin;
  std::vector<MsgId> pair_ids;
  WindowPlan plan;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
};

}  // namespace aa::sim
