// Process: the per-processor protocol interface.
//
// §2 of the paper defines an algorithm as a family of distributions on
// (new state, outgoing messages) parameterized by (current state, received
// message). We realize that as a virtual interface: `on_receive` is the only
// randomized entry point (matching the paper: "receiving steps ... will be
// the only kind of step that involves randomization"), and outgoing messages
// are *staged* with the engine and only placed into the buffer at the next
// sending step, preserving the paper's separation of sending and receiving
// steps (needed for the reset semantics).
#pragma once

#include <span>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace aa::sim {

/// Collector for messages a process wants to send. The engine stages these
/// and publishes them at the process's next sending step.
class Outbox {
 public:
  explicit Outbox(int n) : n_(n) {}

  /// Queue a message to one receiver.
  void send(ProcId to, const Message& m) { queued_.push_back({to, m}); }

  /// Queue the same message to every processor (including self; the paper
  /// notes self-delivery is redundant but harmless — our protocols rely on
  /// counting their own vote, so we keep it).
  void broadcast(const Message& m) {
    queued_.reserve(queued_.size() + static_cast<std::size_t>(n_));
    for (ProcId p = 0; p < n_; ++p) queued_.push_back({p, m});
  }

  struct Item {
    ProcId to;
    Message msg;
  };
  [[nodiscard]] const std::vector<Item>& items() const noexcept {
    return queued_;
  }
  [[nodiscard]] bool empty() const noexcept { return queued_.empty(); }
  void clear() noexcept { queued_.clear(); }
  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  int n_;
  std::vector<Item> queued_;
};

/// Protocol behaviour of one processor. Implementations live in
/// src/protocols/. The engine owns the Rng streams and the staged outboxes.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before the first sending step: stage initial messages
  /// (e.g. the round-1 vote).
  virtual void on_start(Outbox& out) = 0;

  /// A receiving step delivered `env`. Perform the local (possibly
  /// randomized) computation and stage any responses.
  virtual void on_receive(const Envelope& env, Rng& rng, Outbox& out) = 0;

  /// A run of receiving steps delivered `envs`, in order, all addressed to
  /// this processor (the engine batches one acceptable window's deliveries
  /// per receiver). MUST be observationally identical to calling on_receive
  /// once per envelope in order — the default does exactly that. Hot
  /// protocols override it to update their bounded tallies in a tight
  /// non-virtual loop, skipping the per-message virtual dispatch.
  virtual void on_receive_batch(std::span<const Envelope* const> envs,
                                Rng& rng, Outbox& out) {
    for (const Envelope* env : envs) on_receive(*env, rng, out);
  }

  /// A resetting step: erase all memory EXCEPT the input bit, the output
  /// bit, the identity, and the reset counter (which the engine maintains;
  /// resets are detectable per §2). Implementations must return to a state
  /// from which the protocol's reset-recovery path runs.
  virtual void on_reset() = 0;

  // --- full-information introspection (read by adversaries & checkers) ---

  /// Immutable input bit (0/1).
  [[nodiscard]] virtual int input() const = 0;
  /// Write-once output bit: kBot until decided, then 0/1 forever.
  [[nodiscard]] virtual int output() const = 0;
  /// Current round number r_p (protocols without rounds return 0; a freshly
  /// reset processor that has not yet rejoined returns kBot).
  [[nodiscard]] virtual int round() const = 0;
  /// Current estimate x_p (kBot if none, e.g. mid-rejoin).
  [[nodiscard]] virtual int estimate() const = 0;
  /// Short human-readable protocol name (diagnostics).
  [[nodiscard]] virtual const char* protocol_name() const = 0;
};

}  // namespace aa::sim
