// Process: the per-processor protocol interface.
//
// §2 of the paper defines an algorithm as a family of distributions on
// (new state, outgoing messages) parameterized by (current state, received
// message). We realize that as a virtual interface: `on_receive` is the only
// randomized entry point (matching the paper: "receiving steps ... will be
// the only kind of step that involves randomization"), and outgoing messages
// are *staged* with the engine and only placed into the buffer at the next
// sending step, preserving the paper's separation of sending and receiving
// steps (needed for the reset semantics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace aa::sim {

/// Collector for messages a process wants to send. The engine stages these
/// and publishes the whole run at the process's next sending step (one
/// MessageBuffer::add_batch call — ids are assigned in staging order).
class Outbox {
 public:
  explicit Outbox(int n) : n_(n) {}

  /// Queue a message to one receiver. Prefer broadcast for all-to-all
  /// sends; when looping send() over many receivers, reserve() first.
  void send(ProcId to, const Message& m) { queued_.push_back({to, m}); }

  /// Queue the same message to every processor (including self; the paper
  /// notes self-delivery is redundant but harmless — our protocols rely on
  /// counting their own vote, so we keep it).
  void broadcast(const Message& m) {
    queued_.reserve(queued_.size() + static_cast<std::size_t>(n_));
    for (ProcId p = 0; p < n_; ++p) queued_.push_back({p, m});
  }

  /// Pre-size the staging queue for `extra` more send() calls.
  void reserve(std::size_t extra) { queued_.reserve(queued_.size() + extra); }

  using Item = StagedMessage;
  [[nodiscard]] const std::vector<Item>& items() const noexcept {
    return queued_;
  }
  [[nodiscard]] bool empty() const noexcept { return queued_.empty(); }
  void clear() noexcept { queued_.clear(); }
  [[nodiscard]] int n() const noexcept { return n_; }

  /// Receiver-sorted drain hook for the bulk publication path: computes the
  /// stable receiver grouping of the staged items WITHOUT reordering the
  /// staging sequence itself (publication ids are assigned in staging
  /// order). On return, `order[begin[r] .. begin[r+1])` lists the indices
  /// into items() of the messages addressed to receiver r, in staging
  /// order; `begin` has n+1 entries. The outbox contents are untouched —
  /// the engine clears them after publishing. Steady-state allocation-free:
  /// the counting pass runs on epoch-stamped member counters, so no O(n)
  /// zeroing happens per call.
  void index_by_receiver(std::vector<std::int32_t>& begin,
                         std::vector<std::uint32_t>& order) {
    const std::size_t m = queued_.size();
    const std::size_t nn = static_cast<std::size_t>(n_);
    if (count_.size() != nn) {
      count_.assign(nn, 0);
      stamp_.assign(nn, 0);
    }
    const std::uint64_t e = ++epoch_;
    for (const Item& item : queued_) {
      const auto r = static_cast<std::size_t>(item.to);
      if (stamp_[r] != e) {
        stamp_[r] = e;
        count_[r] = 1;
      } else {
        ++count_[r];
      }
    }
    begin.resize(nn + 1);
    std::int32_t acc = 0;
    for (std::size_t r = 0; r < nn; ++r) {
      begin[r] = acc;
      if (stamp_[r] == e) {
        acc += count_[r];
        count_[r] = begin[r];  // becomes the scatter cursor
      }
    }
    begin[nn] = acc;
    order.resize(m);
    for (std::uint32_t j = 0; j < m; ++j) {
      order[static_cast<std::size_t>(
          count_[static_cast<std::size_t>(queued_[j].to)]++)] = j;
    }
  }

 private:
  int n_;
  std::vector<Item> queued_;
  // index_by_receiver scratch (epoch-stamped so it never needs clearing).
  std::vector<std::int32_t> count_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
};

/// Protocol behaviour of one processor. Implementations live in
/// src/protocols/. The engine owns the Rng streams and the staged outboxes.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before the first sending step: stage initial messages
  /// (e.g. the round-1 vote).
  virtual void on_start(Outbox& out) = 0;

  /// A receiving step delivered `env`. Perform the local (possibly
  /// randomized) computation and stage any responses.
  virtual void on_receive(const Envelope& env, Rng& rng, Outbox& out) = 0;

  /// A run of receiving steps delivered `envs`, in order, all addressed to
  /// this processor (the engine batches one acceptable window's deliveries
  /// per receiver). MUST be observationally identical to calling on_receive
  /// once per envelope in order — the default does exactly that. Hot
  /// protocols override it to update their bounded tallies in a tight
  /// non-virtual loop, skipping the per-message virtual dispatch.
  virtual void on_receive_batch(std::span<const Envelope* const> envs,
                                Rng& rng, Outbox& out) {
    for (const Envelope* env : envs) on_receive(*env, rng, out);
  }

  /// A resetting step: erase all memory EXCEPT the input bit, the output
  /// bit, the identity, and the reset counter (which the engine maintains;
  /// resets are detectable per §2). Implementations must return to a state
  /// from which the protocol's reset-recovery path runs.
  virtual void on_reset() = 0;

  // --- full-information introspection (read by adversaries & checkers) ---

  /// Immutable input bit (0/1).
  [[nodiscard]] virtual int input() const = 0;
  /// Write-once output bit: kBot until decided, then 0/1 forever.
  [[nodiscard]] virtual int output() const = 0;
  /// Current round number r_p (protocols without rounds return 0; a freshly
  /// reset processor that has not yet rejoined returns kBot).
  [[nodiscard]] virtual int round() const = 0;
  /// Current estimate x_p (kBot if none, e.g. mid-rejoin).
  [[nodiscard]] virtual int estimate() const = 0;
  /// Short human-readable protocol name (diagnostics).
  [[nodiscard]] virtual const char* protocol_name() const = 0;
};

}  // namespace aa::sim
