// Core model types for the asynchronous message-passing system of §2 of
// Lewko & Lewko (PODC 2013).
//
// The paper's model is a complete network of n processors with dedicated
// channels (the receiver always correctly identifies the sender), driven by
// an adversary through three kinds of fine-grained steps: sending steps,
// receiving steps, and resetting steps.
#pragma once

#include <cstdint>

namespace aa::sim {

/// Processor identity in [0, n).  (The paper uses [1, n]; we are 0-based.)
using ProcId = int;

/// Message identity within one execution's buffer.
using MsgId = std::int64_t;

/// Sentinel for "no message".
inline constexpr MsgId kNoMsg = -1;

/// Output/vote value domain: the paper's ⊥ is represented as -1; decided
/// values are 0 or 1.
inline constexpr int kBot = -1;

/// The three step kinds of §2 plus crash (used only in the §5 crash model).
enum class StepKind : std::uint8_t { Send, Receive, Reset, Crash };

/// Wire message. Every protocol in this library speaks a common small
/// message shape so that full-information adversaries can introspect votes
/// generically (DESIGN.md decision D2):
///
///   round — protocol round number r
///   kind  — protocol-specific discriminator (vote / report / proposal /
///           RBC-init / RBC-echo / RBC-ready / ...)
///   value — vote content: 0, 1, or kBot for ⊥ / '?'
///   aux   — protocol-specific extra (e.g. RBC originator, phase, decide flag)
struct Message {
  std::int32_t round = 0;
  std::int32_t kind = 0;
  std::int32_t value = kBot;
  std::int32_t aux = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// One staged (not yet published) message: receiver + payload. Processes
/// queue these in an Outbox; a sending step hands the whole run to
/// MessageBuffer::add_batch, which assigns ids in staging order.
struct StagedMessage {
  ProcId to;
  Message msg;
};

/// A message instance in flight: payload plus channel metadata maintained by
/// the engine. `window` is the acceptable-window index at which the sending
/// step occurred (or the async batch counter in the crash model). `chain` is
/// the message-chain depth (§2's running-time measure for the crash model):
/// 1 + the longest chain among messages its sender had received when it sent.
struct Envelope {
  MsgId id = kNoMsg;
  ProcId sender = -1;
  ProcId receiver = -1;
  Message payload;
  std::int64_t window = 0;
  std::int64_t chain = 1;
};

}  // namespace aa::sim
