#include "sim/window.hpp"

#include "util/check.hpp"

namespace aa::sim {

void validate_window_plan(const WindowPlan& plan, int n, int t,
                          WindowScratch& scratch) {
  AA_REQUIRE(static_cast<int>(plan.delivery_order.size()) == n,
             "window plan must provide a delivery order for every receiver");
  if (scratch.stamp.size() < static_cast<std::size_t>(n)) {
    scratch.stamp.assign(static_cast<std::size_t>(n), 0);
  }
  for (int i = 0; i < n; ++i) {
    const auto& order = plan.delivery_order[static_cast<std::size_t>(i)];
    const std::uint64_t epoch = ++scratch.epoch;
    int distinct = 0;
    for (ProcId s : order) {
      AA_REQUIRE(s >= 0 && s < n, "window plan: sender id out of range");
      AA_REQUIRE(scratch.stamp[static_cast<std::size_t>(s)] != epoch,
                 "window plan: duplicate sender in delivery order");
      scratch.stamp[static_cast<std::size_t>(s)] = epoch;
      ++distinct;
    }
    AA_REQUIRE(distinct >= n - t,
               "window plan: |S_i| must be >= n - t (Definition 1)");
  }
  const std::uint64_t epoch = ++scratch.epoch;
  int resets = 0;
  for (ProcId p : plan.resets) {
    AA_REQUIRE(p >= 0 && p < n, "window plan: reset id out of range");
    AA_REQUIRE(scratch.stamp[static_cast<std::size_t>(p)] != epoch,
               "window plan: duplicate reset target");
    scratch.stamp[static_cast<std::size_t>(p)] = epoch;
    ++resets;
  }
  AA_REQUIRE(resets <= t,
             "window plan: at most t resets per window (Definition 1)");
}

void validate_window_plan(const WindowPlan& plan, int n, int t) {
  WindowScratch scratch;
  validate_window_plan(plan, n, t, scratch);
}

int run_acceptable_window(Execution& exec, WindowAdversary& adv, int t) {
  const int n = exec.n();
  WindowScratch& sc = exec.window_scratch();

  // Once per (execution, adversary, t) pairing: lifecycle hook + a clean
  // plan. Swapping adversaries mid-execution re-prepares and invalidates
  // the cached plan, so a kReusePrevious from the new adversary can never
  // alias the old one's content; a changed t likewise re-prepares, because
  // the validation a reused plan skips was performed against the old t.
  if (sc.planner != static_cast<const void*>(&adv) || sc.planner_t != t) {
    adv.prepare(n, t);
    sc.planner = static_cast<const void*>(&adv);
    sc.planner_t = t;
    sc.plan.reset(n);
    sc.plan_validated = false;
  }

  // Phase 1: all n processors take sending steps under window-batch
  // collection — each step publishes its whole outbox in one add_batch and
  // folds its receiver grouping into the (sender, receiver) pair index, so
  // the index is ready the moment the last step returns (no extra walks
  // over the window list, no per-window counter reset).
  exec.begin_window_batch();
  for (ProcId p = 0; p < n; ++p) exec.sending_step(p);

  // Phase 2: adversary inspects the batch (full information) and plans.
  // Validation runs once per updated plan; a reused plan skips it unless a
  // crash/reset changed liveness since the last validation (defensive
  // re-check mandated by the plan-reuse contract).
  const PlanDecision decision =
      adv.plan_window_into(exec, exec.window_batch(), sc.plan);
  if (decision == PlanDecision::kUpdated || !sc.plan_validated ||
      sc.plan_liveness_epoch != exec.liveness_epoch()) {
    validate_window_plan(sc.plan, n, t, sc);
    sc.plan_validated = true;
    sc.plan_liveness_epoch = exec.liveness_epoch();
  }

  // Batched delivery: each live receiver's whole run in one call —
  // ascending plan rows are consumed straight off the receiver's pending
  // list (whole-list splice, no per-message id-map lookups), adversarially
  // ordered rows gather from the prebuilt pair index and fall back to the
  // per-id deliver_run path.
  int deliveries = 0;
  for (ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    deliveries += exec.deliver_plan_row(
        i, sc.plan.delivery_order[static_cast<std::size_t>(i)]);
  }

  // Phase 3: at most t resetting steps. A reset of a crashed processor is
  // a no-op (crashed processors take no further steps), so plans written
  // before a chaos crash landed stay runnable.
  for (ProcId p : sc.plan.resets) {
    if (!exec.crashed(p)) exec.resetting_step(p);
  }

  // Chaos hook: the adversary (normally a ChaosWindowAdversary wrapper) may
  // request crashes at the window boundary; crash() is idempotent.
  for (const ProcId p : adv.window_crashes()) exec.crash(p);

  // Window boundary: undelivered batch messages are dropped.
  exec.end_window();
  return deliveries;
}

std::int64_t run_until_first_decision(Execution& exec, WindowAdversary& adv,
                                      int t, std::int64_t max_windows) {
  std::int64_t w = 0;
  while (w < max_windows && exec.decided_count() == 0) {
    run_acceptable_window(exec, adv, t);
    ++w;
  }
  return w;
}

std::int64_t run_until_all_decided(Execution& exec, WindowAdversary& adv,
                                   int t, std::int64_t max_windows) {
  std::int64_t w = 0;
  while (w < max_windows && !exec.all_live_decided()) {
    run_acceptable_window(exec, adv, t);
    ++w;
  }
  return w;
}

}  // namespace aa::sim
