#include "sim/window.hpp"

#include <unordered_set>

#include "util/check.hpp"

namespace aa::sim {

void validate_window_plan(const WindowPlan& plan, int n, int t) {
  AA_REQUIRE(static_cast<int>(plan.delivery_order.size()) == n,
             "window plan must provide a delivery order for every receiver");
  for (int i = 0; i < n; ++i) {
    const auto& order = plan.delivery_order[static_cast<std::size_t>(i)];
    std::unordered_set<ProcId> seen;
    for (ProcId s : order) {
      AA_REQUIRE(s >= 0 && s < n, "window plan: sender id out of range");
      AA_REQUIRE(seen.insert(s).second,
                 "window plan: duplicate sender in delivery order");
    }
    AA_REQUIRE(static_cast<int>(seen.size()) >= n - t,
               "window plan: |S_i| must be >= n - t (Definition 1)");
  }
  std::unordered_set<ProcId> rs;
  for (ProcId p : plan.resets) {
    AA_REQUIRE(p >= 0 && p < n, "window plan: reset id out of range");
    AA_REQUIRE(rs.insert(p).second, "window plan: duplicate reset target");
  }
  AA_REQUIRE(static_cast<int>(rs.size()) <= t,
             "window plan: at most t resets per window (Definition 1)");
}

int run_acceptable_window(Execution& exec, WindowAdversary& adv, int t) {
  const int n = exec.n();
  // Phase 1: all n processors take sending steps.
  std::vector<MsgId> batch;
  for (ProcId p = 0; p < n; ++p) {
    for (MsgId id : exec.sending_step(p)) batch.push_back(id);
  }
  // Phase 2: adversary inspects the batch (full information) and plans.
  WindowPlan plan = adv.plan_window(exec, batch);
  validate_window_plan(plan, n, t);

  // Index the batch by (sender, receiver) for ordered delivery.
  // Protocols may send several messages to the same peer in one window
  // (e.g. Bracha's RBC echoes); preserve send order within a pair.
  std::vector<std::vector<std::vector<MsgId>>> by_pair(
      static_cast<std::size_t>(n),
      std::vector<std::vector<MsgId>>(static_cast<std::size_t>(n)));
  for (MsgId id : batch) {
    if (!exec.buffer().is_pending(id)) continue;
    const Envelope& env = exec.buffer().get(id);
    by_pair[static_cast<std::size_t>(env.sender)]
           [static_cast<std::size_t>(env.receiver)].push_back(id);
  }

  int deliveries = 0;
  for (ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    for (ProcId s : plan.delivery_order[static_cast<std::size_t>(i)]) {
      for (MsgId id : by_pair[static_cast<std::size_t>(s)]
                             [static_cast<std::size_t>(i)]) {
        if (!exec.buffer().is_pending(id)) continue;
        exec.receiving_step(id);
        ++deliveries;
      }
    }
  }

  // Phase 3: at most t resetting steps.
  for (ProcId p : plan.resets) exec.resetting_step(p);

  // Window boundary: undelivered batch messages are dropped.
  exec.end_window();
  return deliveries;
}

std::int64_t run_until_first_decision(Execution& exec, WindowAdversary& adv,
                                      int t, std::int64_t max_windows) {
  std::int64_t w = 0;
  while (w < max_windows && exec.decided_count() == 0) {
    run_acceptable_window(exec, adv, t);
    ++w;
  }
  return w;
}

std::int64_t run_until_all_decided(Execution& exec, WindowAdversary& adv,
                                   int t, std::int64_t max_windows) {
  std::int64_t w = 0;
  while (w < max_windows && !exec.all_live_decided()) {
    run_acceptable_window(exec, adv, t);
    ++w;
  }
  return w;
}

}  // namespace aa::sim
