#include "sim/window.hpp"

#include "util/check.hpp"

namespace aa::sim {

void validate_window_plan(const WindowPlan& plan, int n, int t,
                          WindowScratch& scratch) {
  AA_REQUIRE(static_cast<int>(plan.delivery_order.size()) == n,
             "window plan must provide a delivery order for every receiver");
  if (scratch.stamp.size() < static_cast<std::size_t>(n)) {
    scratch.stamp.assign(static_cast<std::size_t>(n), 0);
  }
  for (int i = 0; i < n; ++i) {
    const auto& order = plan.delivery_order[static_cast<std::size_t>(i)];
    const std::uint64_t epoch = ++scratch.epoch;
    int distinct = 0;
    for (ProcId s : order) {
      AA_REQUIRE(s >= 0 && s < n, "window plan: sender id out of range");
      AA_REQUIRE(scratch.stamp[static_cast<std::size_t>(s)] != epoch,
                 "window plan: duplicate sender in delivery order");
      scratch.stamp[static_cast<std::size_t>(s)] = epoch;
      ++distinct;
    }
    AA_REQUIRE(distinct >= n - t,
               "window plan: |S_i| must be >= n - t (Definition 1)");
  }
  const std::uint64_t epoch = ++scratch.epoch;
  int resets = 0;
  for (ProcId p : plan.resets) {
    AA_REQUIRE(p >= 0 && p < n, "window plan: reset id out of range");
    AA_REQUIRE(scratch.stamp[static_cast<std::size_t>(p)] != epoch,
               "window plan: duplicate reset target");
    scratch.stamp[static_cast<std::size_t>(p)] = epoch;
    ++resets;
  }
  AA_REQUIRE(resets <= t,
             "window plan: at most t resets per window (Definition 1)");
}

void validate_window_plan(const WindowPlan& plan, int n, int t) {
  WindowScratch scratch;
  validate_window_plan(plan, n, t, scratch);
}

int run_acceptable_window(Execution& exec, WindowAdversary& adv, int t) {
  const int n = exec.n();
  WindowScratch& sc = exec.window_scratch();

  // Once per (execution, adversary, t) pairing: lifecycle hook + a clean
  // plan. Swapping adversaries mid-execution re-prepares and invalidates
  // the cached plan, so a kReusePrevious from the new adversary can never
  // alias the old one's content; a changed t likewise re-prepares, because
  // the validation a reused plan skips was performed against the old t.
  if (sc.planner != static_cast<const void*>(&adv) || sc.planner_t != t) {
    adv.prepare(n, t);
    sc.planner = static_cast<const void*>(&adv);
    sc.planner_t = t;
    sc.plan.reset(n);
    sc.plan_validated = false;
  }

  // Phase 1: all n processors take sending steps.
  sc.batch.clear();
  for (ProcId p = 0; p < n; ++p) {
    const std::span<const MsgId> pub = exec.sending_step(p);
    sc.batch.insert(sc.batch.end(), pub.begin(), pub.end());
  }

  // Phase 2: adversary inspects the batch (full information) and plans.
  // Validation runs once per updated plan; a reused plan skips it unless a
  // crash/reset changed liveness since the last validation (defensive
  // re-check mandated by the plan-reuse contract).
  const PlanDecision decision = adv.plan_window_into(exec, sc.batch, sc.plan);
  if (decision == PlanDecision::kUpdated || !sc.plan_validated ||
      sc.plan_liveness_epoch != exec.liveness_epoch()) {
    validate_window_plan(sc.plan, n, t, sc);
    sc.plan_validated = true;
    sc.plan_liveness_epoch = exec.liveness_epoch();
  }

  // Index the batch by (sender, receiver) with a counting sort into the
  // reusable flat pair arrays. Protocols may send several messages to the
  // same peer in one window (e.g. Bracha's RBC echoes); send order within a
  // pair is preserved, so delivery order matches the append-only original.
  // At this point the current window's pending list IS the batch (nothing
  // has been delivered or dropped yet), so both passes walk the buffer's
  // intrusive list directly — no per-id hash lookups.
  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  sc.pair_count.assign(nn, 0);
  const MessageBuffer& buf = exec.buffer();
  for (const Envelope& env : buf.pending_in_window(exec.window())) {
    ++sc.pair_count[static_cast<std::size_t>(env.sender) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(env.receiver)];
  }
  sc.pair_begin.resize(nn + 1);
  std::int32_t acc = 0;
  for (std::size_t k = 0; k < nn; ++k) {
    sc.pair_begin[k] = acc;
    acc += sc.pair_count[k];
    sc.pair_count[k] = 0;  // becomes the scatter cursor
  }
  sc.pair_begin[nn] = acc;
  sc.pair_ids.resize(static_cast<std::size_t>(acc));
  for (const Envelope& env : buf.pending_in_window(exec.window())) {
    const std::size_t k = static_cast<std::size_t>(env.sender) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(env.receiver);
    sc.pair_ids[static_cast<std::size_t>(sc.pair_begin[k] +
                                         sc.pair_count[k]++)] = env.id;
  }

  // Batched delivery: collect each receiver's whole run in plan order, then
  // hand it to the engine in one call (crash/pending checks once per run,
  // one on_receive_batch instead of a virtual call per message).
  int deliveries = 0;
  for (ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    sc.run_ids.clear();
    for (ProcId s : sc.plan.delivery_order[static_cast<std::size_t>(i)]) {
      const std::size_t k = static_cast<std::size_t>(s) *
                                static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(i);
      for (std::int32_t j = sc.pair_begin[k]; j < sc.pair_begin[k + 1]; ++j) {
        sc.run_ids.push_back(sc.pair_ids[static_cast<std::size_t>(j)]);
      }
    }
    deliveries += exec.deliver_run(i, sc.run_ids);
  }

  // Phase 3: at most t resetting steps.
  for (ProcId p : sc.plan.resets) exec.resetting_step(p);

  // Window boundary: undelivered batch messages are dropped.
  exec.end_window();
  return deliveries;
}

std::int64_t run_until_first_decision(Execution& exec, WindowAdversary& adv,
                                      int t, std::int64_t max_windows) {
  std::int64_t w = 0;
  while (w < max_windows && exec.decided_count() == 0) {
    run_acceptable_window(exec, adv, t);
    ++w;
  }
  return w;
}

std::int64_t run_until_all_decided(Execution& exec, WindowAdversary& adv,
                                   int t, std::int64_t max_windows) {
  std::int64_t w = 0;
  while (w < max_windows && !exec.all_live_decided()) {
    run_acceptable_window(exec, adv, t);
    ++w;
  }
  return w;
}

}  // namespace aa::sim
