// Acceptable windows — Definition 1 of the paper.
//
//   "First, all n processors take sending steps. Then, for sets
//    S_1,...,S_n ⊆ [n] all of size ≥ n−t, a sequence of receiving steps
//    follows that delivers to each processor i the messages just sent to it
//    from processors in the set S_i. Finally, a sequence of at most t
//    resetting steps occurs."
//
// The strongly adaptive adversary chooses the S_i sets AFTER seeing the
// just-sent messages (full information), and additionally controls the
// per-receiver delivery ORDER — order matters because the §3 algorithm acts
// on the first T1 matching-round messages it receives.
//
// Hot-path contract: run_acceptable_window drives everything through the
// execution's WindowScratch (reusable batch / pair index / plan), so a
// steady-state window performs no heap allocation. The paper only requires
// the adversary to be ABLE to adapt — it does not force every adversary to
// behave adaptively — so the planning API lets an adversary declare that
// its previous plan still stands:
//
//   * prepare(n, t) runs once per (execution, adversary) pairing, before
//     the first window, so static adversaries can set up their plan shape.
//   * the sending phase runs under Execution::begin_window_batch: each
//     sending step publishes its whole outbox in one
//     MessageBuffer::add_batch and folds its receiver grouping into the
//     window's (sender, receiver) pair index as it goes — the driver never
//     re-walks the window list to build a counting sort.
//   * plan_window_into receives that prebuilt index as a WindowBatch view
//     and returns a PlanDecision. kUpdated means the plan was overwritten
//     (the driver re-validates it); kReusePrevious means the plan object
//     already holds exactly what the adversary wants, and the driver skips
//     both the n² plan fill and validate_window_plan — unless a
//     crash/reset changed liveness since the last validation, which forces
//     one defensive re-validation.
//   * deliveries run through Execution::deliver_plan_row: a plan row whose
//     senders-with-messages are in ascending order is consumed straight
//     off the receiver's pending list in one whole-list splice (bulk lazy
//     delivery, a single Process::on_receive_batch); adversarially ordered
//     rows fall back to the per-id gather + deliver_run path.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/execution.hpp"
#include "sim/plan.hpp"
#include "sim/types.hpp"

namespace aa::sim {

/// Throws AA_REQUIRE-style errors unless `plan` is an acceptable window for
/// (n, t): n receivers, every S_i a duplicate-free subset of [0,n) with
/// |S_i| ≥ n − t, and ≤ t distinct resets.
void validate_window_plan(const WindowPlan& plan, int n, int t);

/// Allocation-free variant used by the window driver: duplicate detection
/// runs on `scratch`'s epoch-stamp array.
void validate_window_plan(const WindowPlan& plan, int n, int t,
                          WindowScratch& scratch);

/// The adversary's verdict on the plan object it was handed.
enum class PlanDecision {
  kReusePrevious,  ///< plan already holds this window's choice — unchanged
  kUpdated,        ///< plan was overwritten and must be (re-)validated
};

/// A strongly adaptive (window) adversary: full information, chooses the
/// delivery sets/order and resets for each window.
class WindowAdversary {
 public:
  virtual ~WindowAdversary() = default;

  /// Lifecycle hook, called by the driver once per (execution, adversary)
  /// pairing before the first window. Static adversaries precompute here
  /// and invalidate any plan cached against a previous execution; dynamic
  /// adversaries may ignore it. Default: no-op.
  virtual void prepare(int n, int t) {
    (void)n;
    (void)t;
  }

  /// Plan the window into `plan` and say whether it changed. The plan
  /// object is owned by the execution and handed over UNCLEARED — whatever
  /// this adversary last wrote into it is still there, enabling
  /// kReusePrevious without any fill. Implementations that return kUpdated
  /// must fully overwrite the plan (call plan.reset(exec.n()) first, then
  /// append to plan.delivery_order[i] / plan.resets). `batch` is the
  /// window's publication batch with its prebuilt (sender, receiver) pair
  /// index — batch.ids() lists every id just published, batch.from_to(s,r)
  /// slices it per pair without any buffer lookups. Implementations may
  /// also inspect the whole execution (states, buffer contents) — the
  /// model is full-information.
  virtual PlanDecision plan_window_into(const Execution& exec,
                                        const WindowBatch& batch,
                                        WindowPlan& plan) = 0;

  /// Processors to crash after this window's resets (chaos/fault layer;
  /// Definition 1 has no crashes, so the default is none). Read by
  /// run_acceptable_window AFTER plan_window_into, before end_window; the
  /// view must stay valid until then. Crashing an already-crashed
  /// processor is a no-op.
  [[nodiscard]] virtual std::span<const ProcId> window_crashes() const {
    return {};
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Base for adversaries whose plan depends only on (n, t) — never on the
/// batch or the execution state. Subclasses implement fill_static (and
/// optionally prepare_static); the base fills the driver's plan once and
/// answers kReusePrevious for every later window against the same plan
/// object, which is bit-identical to re-planning because the fill is a
/// pure function of n.
class StaticWindowAdversary : public WindowAdversary {
 public:
  void prepare(int n, int t) final {
    cached_plan_ = nullptr;
    cached_n_ = -1;
    prepare_static(n, t);
  }

  PlanDecision plan_window_into(const Execution& exec,
                                const WindowBatch& /*batch*/,
                                WindowPlan& plan) final {
    const int n = exec.n();
    if (cached_plan_ == &plan && cached_n_ == n) {
      return PlanDecision::kReusePrevious;
    }
    plan.reset(n);
    fill_static(n, plan);
    cached_plan_ = &plan;
    cached_n_ = n;
    return PlanDecision::kUpdated;
  }

 protected:
  /// Precompute anything the fill needs (masks, id lists). Default: no-op.
  virtual void prepare_static(int n, int t) {
    (void)n;
    (void)t;
  }
  /// Write the static plan into `plan` (handed over empty via reset(n)).
  virtual void fill_static(int n, WindowPlan& plan) = 0;

 private:
  const WindowPlan* cached_plan_ = nullptr;
  int cached_n_ = -1;
};

/// Drive one acceptable window: sending steps for all n processors, the
/// adversary's deliveries (validated against Definition 1 with budget t),
/// then the adversary's resets, then end_window() (undelivered messages from
/// this window are dropped — silenced senders are never heard).
/// Returns the number of receiving steps taken.
int run_acceptable_window(Execution& exec, WindowAdversary& adv, int t);

/// Convenience: run windows until some processor decides or `max_windows`
/// elapse. Returns the number of windows run.
std::int64_t run_until_first_decision(Execution& exec, WindowAdversary& adv,
                                      int t, std::int64_t max_windows);

/// Run windows until ALL (non-crashed) processors decide or `max_windows`
/// elapse. Returns the number of windows run.
std::int64_t run_until_all_decided(Execution& exec, WindowAdversary& adv,
                                   int t, std::int64_t max_windows);

}  // namespace aa::sim
