// Acceptable windows — Definition 1 of the paper.
//
//   "First, all n processors take sending steps. Then, for sets
//    S_1,...,S_n ⊆ [n] all of size ≥ n−t, a sequence of receiving steps
//    follows that delivers to each processor i the messages just sent to it
//    from processors in the set S_i. Finally, a sequence of at most t
//    resetting steps occurs."
//
// The strongly adaptive adversary chooses the S_i sets AFTER seeing the
// just-sent messages (full information), and additionally controls the
// per-receiver delivery ORDER — order matters because the §3 algorithm acts
// on the first T1 matching-round messages it receives.
//
// Hot-path contract: run_acceptable_window drives everything through the
// execution's WindowScratch (reusable batch / pair index / plan), so a
// steady-state window performs no heap allocation. Adversaries implement
// plan_window_into and fill the reusable plan they are handed.
#pragma once

#include <string>
#include <vector>

#include "sim/execution.hpp"
#include "sim/plan.hpp"
#include "sim/types.hpp"

namespace aa::sim {

/// Throws AA_REQUIRE-style errors unless `plan` is an acceptable window for
/// (n, t): n receivers, every S_i a duplicate-free subset of [0,n) with
/// |S_i| ≥ n − t, and ≤ t distinct resets.
void validate_window_plan(const WindowPlan& plan, int n, int t);

/// Allocation-free variant used by the window driver: duplicate detection
/// runs on `scratch`'s epoch-stamp array.
void validate_window_plan(const WindowPlan& plan, int n, int t,
                          WindowScratch& scratch);

/// A strongly adaptive (window) adversary: full information, chooses the
/// delivery sets/order and resets for each window.
class WindowAdversary {
 public:
  virtual ~WindowAdversary() = default;

  /// Plan the window into `plan` (handed over empty via WindowPlan::reset;
  /// implementations append to plan.delivery_order[i] / plan.resets). The
  /// plan object is reused across windows, so steady-state planning does
  /// not allocate. `batch` holds the ids of all messages just published by
  /// the window's sending steps. Implementations may inspect the whole
  /// execution (states, buffer contents) — the model is full-information.
  virtual void plan_window_into(const Execution& exec,
                                const std::vector<MsgId>& batch,
                                WindowPlan& plan) = 0;

  /// Convenience (tests / exploration): plan into a fresh WindowPlan.
  [[nodiscard]] WindowPlan plan_window(const Execution& exec,
                                       const std::vector<MsgId>& batch) {
    WindowPlan plan;
    plan.reset(exec.n());
    plan_window_into(exec, batch, plan);
    return plan;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Drive one acceptable window: sending steps for all n processors, the
/// adversary's deliveries (validated against Definition 1 with budget t),
/// then the adversary's resets, then end_window() (undelivered messages from
/// this window are dropped — silenced senders are never heard).
/// Returns the number of receiving steps taken.
int run_acceptable_window(Execution& exec, WindowAdversary& adv, int t);

/// Convenience: run windows until some processor decides or `max_windows`
/// elapse. Returns the number of windows run.
std::int64_t run_until_first_decision(Execution& exec, WindowAdversary& adv,
                                      int t, std::int64_t max_windows);

/// Run windows until ALL (non-crashed) processors decide or `max_windows`
/// elapse. Returns the number of windows run.
std::int64_t run_until_all_decided(Execution& exec, WindowAdversary& adv,
                                   int t, std::int64_t max_windows);

}  // namespace aa::sim
