// Clang thread-safety annotations + annotated synchronization wrappers.
//
// The parallel engine's determinism story (util/thread_pool.hpp, file
// comment) depends on a small amount of lock discipline: pool queues,
// task-group completion counters, and the watchdog deadline are all
// mutex-guarded, and a missed lock there turns "bit-identical at any
// thread count" into a data race. Clang's -Wthread-safety analysis can
// prove the discipline at compile time — but only for lock types that
// carry capability attributes, which libstdc++'s std::mutex does not.
//
// This header therefore provides two things:
//
//   1. AA_* annotation macros — thin wrappers over clang's thread-safety
//      attributes that expand to nothing on other compilers, so annotated
//      code stays portable (gcc builds see plain classes).
//   2. Annotated synchronization types — Mutex (an AA_CAPABILITY over
//      std::mutex), MutexLock (an AA_SCOPED_CAPABILITY over
//      std::unique_lock with explicit unlock()), and CondVar (a
//      std::condition_variable that waits on a MutexLock). Code using
//      these gets the full analysis; the CI Werror job compiles the
//      library with clang and -Wthread-safety promoted to an error.
//
// Annotation cheat sheet (see the clang ThreadSafetyAnalysis docs):
//   AA_GUARDED_BY(mu)   — data member readable/writable only with mu held
//   AA_REQUIRES(mu)     — function callable only with mu already held
//   AA_ACQUIRE()/AA_RELEASE() — function acquires/releases the capability
//   AA_EXCLUDES(mu)     — function must NOT be called with mu held
//   AA_NO_THREAD_SAFETY_ANALYSIS — opt a definition out (last resort;
//                         every use should explain why in a comment)
//
// Wait-predicate idiom: clang analyzes lambda bodies as separate
// functions, so the usual `cv.wait(lock, [this]{ return guarded_; })`
// reads a guarded member from a context the analysis cannot see holds the
// lock. Annotated code writes the loop explicitly instead:
//
//   MutexLock lock(mu_);
//   while (!guarded_) cv_.wait(lock);   // reads checked against mu_
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define AA_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define AA_TS_ATTRIBUTE(x)  // no-op off clang
#endif

#define AA_CAPABILITY(x) AA_TS_ATTRIBUTE(capability(x))
#define AA_SCOPED_CAPABILITY AA_TS_ATTRIBUTE(scoped_lockable)
#define AA_GUARDED_BY(x) AA_TS_ATTRIBUTE(guarded_by(x))
#define AA_PT_GUARDED_BY(x) AA_TS_ATTRIBUTE(pt_guarded_by(x))
#define AA_ACQUIRED_BEFORE(...) AA_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define AA_ACQUIRED_AFTER(...) AA_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define AA_REQUIRES(...) AA_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define AA_REQUIRES_SHARED(...) \
  AA_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define AA_ACQUIRE(...) AA_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define AA_ACQUIRE_SHARED(...) \
  AA_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define AA_RELEASE(...) AA_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define AA_RELEASE_SHARED(...) \
  AA_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define AA_TRY_ACQUIRE(...) AA_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define AA_EXCLUDES(...) AA_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define AA_ASSERT_CAPABILITY(x) AA_TS_ATTRIBUTE(assert_capability(x))
#define AA_RETURN_CAPABILITY(x) AA_TS_ATTRIBUTE(lock_returned(x))
#define AA_NO_THREAD_SAFETY_ANALYSIS AA_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace aa {

/// std::mutex carrying clang capability attributes so AA_GUARDED_BY /
/// AA_REQUIRES declarations against it are enforced by -Wthread-safety.
class AA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AA_ACQUIRE() { m_.lock(); }
  void unlock() AA_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() AA_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for interop (CondVar waits through it).
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock over Mutex, understood by the analysis as a scoped
/// capability. Backed by std::unique_lock so CondVar can wait on it;
/// unlock() supports the early-release pattern (rethrow outside the lock).
class AA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AA_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() AA_RELEASE() = default;  // unique_lock unlocks if still held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before end of scope (the destructor then does nothing).
  void unlock() AA_RELEASE() { lock_.unlock(); }

  /// The wrapped unique_lock, for CondVar interop only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a MutexLock. Deliberately predicate-free:
/// callers write the wait loop themselves (see the file comment) so every
/// guarded-member read sits in a scope the analysis can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `lock`, wait, reacquire. From the analysis's view
  /// the capability is held across the call — which matches what the
  /// caller may assume before and after.
  void wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace aa
