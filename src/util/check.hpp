// Lightweight runtime-check macros used across the library.
//
// AA_CHECK(cond, msg)   — precondition / invariant check; throws std::logic_error.
// AA_REQUIRE(cond, msg) — argument validation; throws std::invalid_argument.
//
// Both are always on: this is a research library whose correctness claims are
// the point, so we never compile checks out.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aa {

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "AA_REQUIRE") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace aa

#define AA_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::aa::detail::throw_check_failure("AA_CHECK", #cond, __FILE__,         \
                                        __LINE__, (msg));                    \
  } while (0)

#define AA_REQUIRE(cond, msg)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::aa::detail::throw_check_failure("AA_REQUIRE", #cond, __FILE__,       \
                                        __LINE__, (msg));                    \
  } while (0)
