#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace aa {

Histogram::Histogram(double bucket_width, double origin)
    : width_(bucket_width), origin_(origin) {
  AA_REQUIRE(bucket_width > 0.0, "Histogram bucket width must be positive");
}

void Histogram::add(double x) {
  double idx_f = std::floor((x - origin_) / width_);
  const std::size_t idx =
      idx_f < 0 ? 0 : static_cast<std::size_t>(idx_f);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const noexcept {
  return origin_ + static_cast<double>(i) * width_;
}

std::string Histogram::render(std::size_t max_bar) const {
  std::ostringstream os;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = bucket_low(i);
    os << "[" << lo << ", " << lo + width_ << ")";
    os << "  " << counts_[i] << "  ";
    if (peak > 0) {
      const std::size_t bar = counts_[i] * max_bar / peak;
      for (std::size_t b = 0; b < bar; ++b) os << '#';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace aa
