// Fixed-width bucket histogram with ASCII rendering, used by benches to show
// distributions of windows-to-decision.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace aa {

class Histogram {
 public:
  /// Buckets of width `bucket_width` starting at `origin`. Values below the
  /// origin clamp into the first bucket; the bucket list grows on demand.
  explicit Histogram(double bucket_width, double origin = 0.0);

  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::size_t>& buckets() const noexcept {
    return counts_;
  }
  [[nodiscard]] double bucket_low(std::size_t i) const noexcept;

  /// Multi-line ASCII bar rendering, widest bar `max_bar` characters.
  [[nodiscard]] std::string render(std::size_t max_bar = 50) const;

 private:
  double width_;
  double origin_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace aa
