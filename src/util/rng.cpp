// rng.hpp is header-only; this translation unit exists so the library has a
// stable archive member for the module and to host any future out-of-line
// helpers.
#include "util/rng.hpp"

namespace aa {
// (intentionally empty)
}  // namespace aa
