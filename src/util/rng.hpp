// Deterministic, forkable pseudo-random number generation.
//
// All randomness in the library flows from a single root seed through
// explicitly forked streams (one per processor, per window, per replica),
// so every execution is exactly replayable (DESIGN.md decision D3).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
// Forking derives an independent stream by hashing (state, stream-id)
// through SplitMix64 — the standard recommended stream-splitting scheme.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace aa {

/// SplitMix64: tiny 64-bit generator used for seeding and stream derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value (also advances the state).
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256-bit state.
class Xoshiro256ss {
 public:
  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state()
      const noexcept {
    return s_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_;
};

/// Rng: the library-facing generator. Wraps xoshiro256** with convenience
/// sampling helpers and deterministic stream forking.
///
/// Satisfies UniformRandomBitGenerator, so it can drive <random>
/// distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept : gen_(seed), seed_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() noexcept { return gen_.next(); }

  /// Raw 64 bits.
  std::uint64_t next_u64() noexcept { return gen_.next(); }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Fair coin.
  bool next_bool() noexcept { return (gen_.next() >> 63) != 0; }

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Uniform integer in the inclusive range [lo, hi].
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    AA_REQUIRE(lo <= hi, "uniform_int: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(gen_.next());  // full range
    // Rejection sampling over the largest multiple of `span`.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = gen_.next();
    while (v >= limit) v = gen_.next();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform index in [0, n).
  std::size_t uniform_index(std::size_t n) {
    AA_REQUIRE(n > 0, "uniform_index: n must be positive");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Derive an independent child stream identified by `stream_id`.
  /// fork(i) on equal-state parents yields equal children; distinct ids or
  /// distinct parent states yield (statistically) independent children.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    // Mix in the current generator state so forks after different amounts of
    // consumption differ.
    std::uint64_t h = sm.next();
    for (std::uint64_t w : gen_.state()) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return Rng(h);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  Xoshiro256ss gen_;
  std::uint64_t seed_;
};

}  // namespace aa
