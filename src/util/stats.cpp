#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace aa {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> xs, double q) {
  AA_REQUIRE(!xs.empty(), "percentile of empty sample");
  AA_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must lie in [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

LinearFit least_squares(const std::vector<double>& x,
                        const std::vector<double>& y) {
  AA_REQUIRE(x.size() == y.size(), "least_squares: size mismatch");
  AA_REQUIRE(x.size() >= 2, "least_squares: need at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;  // vertical line; leave zeros
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace aa
