// Streaming statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace aa {

/// Welford online accumulator: mean / variance / min / max in one pass,
/// numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all samples.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the ~95% normal-approximation confidence interval on the
  /// mean (1.96 * stderr). Zero with fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merge another accumulator (parallel-merge formula).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics). `q` in [0,1]. Copies + sorts: intended for result vectors of
/// modest size, not streaming use.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Median shorthand.
[[nodiscard]] double median(std::vector<double> xs);

/// Ordinary least squares fit y ≈ a + b·x. Returns {a, b}.
/// Used to fit log(windows) vs n when measuring exponential growth (F1/F5).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};
[[nodiscard]] LinearFit least_squares(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace aa
