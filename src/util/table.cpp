#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace aa {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AA_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AA_REQUIRE(cells.size() == headers_.size(),
             "Table row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  AA_REQUIRE(i < rows_.size(), "Table row index out of range");
  return rows_[i];
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << r[c];
      if (c + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << quote(r[c]);
      if (c + 1 < r.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n" << render() << '\n';
}

}  // namespace aa
