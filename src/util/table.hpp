// Aligned ASCII table + CSV emission for benchmark harness output.
//
// Every bench binary prints one or more of these tables; the same rows can be
// dumped as CSV for downstream plotting.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace aa {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row (must match the header count).
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);
  static std::string fmt_sci(double v, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  /// Print `render()` to the stream with a title line.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aa
