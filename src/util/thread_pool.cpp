#include "util/thread_pool.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace aa {

int ParallelConfig::resolved_threads() const noexcept {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
  }
  return std::max(1, threads);
}

int chunk_count(std::int64_t total, const ParallelConfig& cfg) {
  if (total <= 0) return 0;
  const std::int64_t chunk = std::max(1, cfg.chunk_size);
  const std::int64_t count = (total + chunk - 1) / chunk;
  AA_REQUIRE(count <= std::numeric_limits<int>::max(),
             "chunk_count: too many chunks — use a larger chunk_size");
  return static_cast<int>(count);
}

ThreadPool::ThreadPool(int threads) {
  AA_REQUIRE(threads >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    AA_REQUIRE(!stopping_, "ThreadPool: submit after shutdown");
    jobs_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!jobs_.empty() || in_flight_ != 0) all_idle_.wait(lock);
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && jobs_.empty()) work_ready_.wait(lock);
      if (jobs_.empty()) return;  // stopping_ with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    try {
      job();
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

namespace {

/// Identity of the pool-worker thread this is, if any. Keyed per pool so
/// nested/multiple pools never alias each other's worker indices.
thread_local const WorkStealingPool* tl_pool = nullptr;
thread_local int tl_worker_index = -1;

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) {
  AA_REQUIRE(threads >= 1, "WorkStealingPool: need at least one worker");
  {
    // Workers start immediately; size the deques under the lock so the
    // analysis (and TSan) see the handoff explicitly.
    MutexLock lock(mu_);
    deques_.resize(static_cast<std::size_t>(threads));
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int WorkStealingPool::worker_index() const noexcept {
  return tl_pool == this ? tl_worker_index : -1;
}

void WorkStealingPool::TaskGroup::submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    ++outstanding_;
  }
  WorkStealingPool& p = pool_;
  {
    MutexLock lock(p.mu_);
    AA_REQUIRE(!p.stopping_, "WorkStealingPool: submit after shutdown");
    p.deques_[p.next_queue_].push_back(Job{std::move(job), this});
    p.next_queue_ = (p.next_queue_ + 1) % p.deques_.size();
    ++p.queued_;
  }
  p.work_ready_.notify_one();
}

void WorkStealingPool::TaskGroup::wait() {
  // Help execute this group's queued jobs; once none are queued the rest
  // are in flight on workers, so block until they finish.
  for (;;) {
    Job job;
    bool found = false;
    {
      MutexLock lock(pool_.mu_);
      for (std::deque<Job>& dq : pool_.deques_) {
        for (auto it = dq.begin(); it != dq.end(); ++it) {
          if (it->group == this) {
            job = std::move(*it);
            dq.erase(it);
            --pool_.queued_;
            found = true;
            break;
          }
        }
        if (found) break;
      }
    }
    if (found) {
      pool_.run_job(job);
      continue;
    }
    MutexLock lock(mu_);
    while (outstanding_ != 0) done_.wait(lock);
    if (first_error_) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
    return;
  }
}

WorkStealingPool::TaskGroup::~TaskGroup() {
  // The pool holds raw pointers to this group while jobs are in flight;
  // never let it dangle, even if the caller skipped wait().
  MutexLock lock(mu_);
  while (outstanding_ != 0) done_.wait(lock);
}

void WorkStealingPool::worker_loop(int index) {
  tl_pool = this;
  tl_worker_index = index;
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queued_ == 0) work_ready_.wait(lock);
      if (queued_ == 0) return;  // stopping_ with drained deques
      const bool popped = try_pop(index, job);
      AA_CHECK(popped, "WorkStealingPool: queued_ > 0 but no job found");
    }
    run_job(job);
  }
}

bool WorkStealingPool::try_pop(int home, Job& out) {
  // Caller holds mu_ (enforced: AA_REQUIRES). Own deque first (front:
  // oldest of our share), then steal from the back of the busiest sibling.
  const std::size_t w = deques_.size();
  auto& own = deques_[static_cast<std::size_t>(home)];
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    --queued_;
    return true;
  }
  std::size_t victim = w;
  std::size_t victim_load = 0;
  for (std::size_t i = 0; i < w; ++i) {
    if (deques_[i].size() > victim_load) {
      victim = i;
      victim_load = deques_[i].size();
    }
  }
  if (victim == w) return false;
  out = std::move(deques_[victim].back());
  deques_[victim].pop_back();
  --queued_;
  return true;
}

void WorkStealingPool::run_job(Job& job) {
  std::exception_ptr error;
  try {
    job.fn();
  } catch (...) {
    error = std::current_exception();
  }
  finish_job(job.group, std::move(error));
}

void WorkStealingPool::finish_job(TaskGroup* group,
                                  std::exception_ptr error) {
  bool last = false;
  {
    MutexLock lock(group->mu_);
    if (error && !group->first_error_) group->first_error_ = std::move(error);
    last = --group->outstanding_ == 0;
  }
  if (last) group->done_.notify_all();
}

Watchdog::~Watchdog() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    token_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::arm(CancelToken& token, std::chrono::milliseconds timeout) {
  {
    MutexLock lock(mu_);
    token_ = &token;
    // aa-lint: clock-ok(watchdog deadline — wall-clock by design; never
    // feeds a report)
    deadline_ = std::chrono::steady_clock::now() + timeout;
    ++generation_;
    if (!thread_.joinable()) thread_ = std::thread([this] { loop(); });
  }
  cv_.notify_all();
}

void Watchdog::disarm() {
  {
    MutexLock lock(mu_);
    token_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
}

void Watchdog::loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stopping_ && token_ == nullptr) cv_.wait(lock);
    if (stopping_) return;
    const std::uint64_t gen = generation_;
    const auto deadline = deadline_;
    // Sleep to the deadline; wake early on re-arm/disarm/shutdown (all
    // bump generation_ or raise stopping_).
    while (generation_ == gen && !stopping_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (stopping_) return;
    if (generation_ != gen) continue;  // superseded — nothing fired
    // aa-lint: clock-ok(watchdog expiry check — wall-clock by design)
    if (std::chrono::steady_clock::now() >= deadline && token_ != nullptr) {
      token_->cancel();
      token_ = nullptr;  // one shot per arm
      ++generation_;
    }
  }
}

void parallel_for_chunks(
    std::int64_t total, const ParallelConfig& cfg,
    const std::function<void(int, std::int64_t, std::int64_t)>& body,
    ThreadPool* pool) {
  const int chunks = chunk_count(total, cfg);
  if (chunks == 0) return;
  const std::int64_t chunk = std::max(1, cfg.chunk_size);
  const auto run_chunk = [&](int ci) {
    const std::int64_t begin = static_cast<std::int64_t>(ci) * chunk;
    const std::int64_t end = std::min(total, begin + chunk);
    body(ci, begin, end);
  };

  const int workers = std::min(cfg.resolved_threads(), chunks);
  if (workers <= 1) {
    for (int ci = 0; ci < chunks; ++ci) run_chunk(ci);
    return;
  }
  const auto dispatch = [&](ThreadPool& p) {
    for (int ci = 0; ci < chunks; ++ci) {
      p.submit([&run_chunk, ci] { run_chunk(ci); });
    }
    p.wait_idle();
  };
  if (pool) {
    dispatch(*pool);
  } else {
    ThreadPool local(workers);
    dispatch(local);
  }
}

void parallel_for_chunks(
    std::int64_t total, const ParallelConfig& cfg,
    const std::function<void(int, std::int64_t, std::int64_t)>& body,
    WorkStealingPool& pool) {
  const int chunks = chunk_count(total, cfg);
  if (chunks == 0) return;
  const std::int64_t chunk = std::max(1, cfg.chunk_size);
  const auto run_chunk = [&](int ci) {
    const std::int64_t begin = static_cast<std::int64_t>(ci) * chunk;
    const std::int64_t end = std::min(total, begin + chunk);
    body(ci, begin, end);
  };
  // Serial semantics when the config asks for one thread (or there is only
  // one chunk): run inline, no pool traffic at all.
  if (cfg.resolved_threads() <= 1 || chunks == 1) {
    for (int ci = 0; ci < chunks; ++ci) run_chunk(ci);
    return;
  }
  WorkStealingPool::TaskGroup group(pool);
  for (int ci = 0; ci < chunks; ++ci) {
    group.submit([&run_chunk, ci] { run_chunk(ci); });
  }
  group.wait();
}

}  // namespace aa
