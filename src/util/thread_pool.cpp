#include "util/thread_pool.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace aa {

int ParallelConfig::resolved_threads() const noexcept {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
  }
  return std::max(1, threads);
}

int chunk_count(std::int64_t total, const ParallelConfig& cfg) {
  if (total <= 0) return 0;
  const std::int64_t chunk = std::max(1, cfg.chunk_size);
  const std::int64_t count = (total + chunk - 1) / chunk;
  AA_REQUIRE(count <= std::numeric_limits<int>::max(),
             "chunk_count: too many chunks — use a larger chunk_size");
  return static_cast<int>(count);
}

ThreadPool::ThreadPool(int threads) {
  AA_REQUIRE(threads >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AA_REQUIRE(!stopping_, "ThreadPool: submit after shutdown");
    jobs_.push(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop();
      ++in_flight_;
    }
    try {
      job();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

void parallel_for_chunks(
    std::int64_t total, const ParallelConfig& cfg,
    const std::function<void(int, std::int64_t, std::int64_t)>& body,
    ThreadPool* pool) {
  const int chunks = chunk_count(total, cfg);
  if (chunks == 0) return;
  const std::int64_t chunk = std::max(1, cfg.chunk_size);
  const auto run_chunk = [&](int ci) {
    const std::int64_t begin = static_cast<std::int64_t>(ci) * chunk;
    const std::int64_t end = std::min(total, begin + chunk);
    body(ci, begin, end);
  };

  const int workers = std::min(cfg.resolved_threads(), chunks);
  if (workers <= 1) {
    for (int ci = 0; ci < chunks; ++ci) run_chunk(ci);
    return;
  }
  const auto dispatch = [&](ThreadPool& p) {
    for (int ci = 0; ci < chunks; ++ci) {
      p.submit([&run_chunk, ci] { run_chunk(ci); });
    }
    p.wait_idle();
  };
  if (pool) {
    dispatch(*pool);
  } else {
    ThreadPool local(workers);
    dispatch(local);
  }
}

}  // namespace aa
