// Worker-thread pool and deterministic work sharding for the trial engines.
//
// Parallel Monte-Carlo here rests on two invariants:
//
//  1. Per-trial independence — trial i draws every bit of randomness from
//     its own Rng(seed0 + i) stream (util/rng.hpp), so trials can run on
//     any thread in any order without perturbing each other.
//  2. Thread-count-independent merging — work is split into FIXED-SIZE
//     chunks whose boundaries depend only on (total, chunk_size), never on
//     the worker count, and per-chunk partial results are merged serially
//     in chunk order. The floating-point reduction tree is therefore
//     identical for 1, 2, or 64 threads, making reports bit-identical at
//     any thread count.
//
// Lock discipline is statically checked: every mutex-guarded member below
// carries AA_GUARDED_BY and internal helpers declare AA_REQUIRES
// (util/annotations.hpp), so a clang build with -Wthread-safety — the CI
// Werror job — proves at compile time that no access slips outside its
// lock. A TSan CI job (cmake -DAA_SANITIZE=thread) checks the same claims
// dynamically on the concurrency-heavy tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace aa {

/// Sharding knob threaded through the trial engines (checker, exhaustive,
/// benches).
struct ParallelConfig {
  /// Worker threads: 1 runs everything inline on the calling thread
  /// (serial semantics, no pool), 0 means one worker per hardware thread,
  /// n > 1 means exactly n workers.
  int threads = 1;
  /// Work items per chunk. Chunk boundaries — and therefore the merge
  /// order of partial results — are a function of (total, chunk_size)
  /// alone, which is what keeps results independent of `threads`.
  int chunk_size = 32;

  /// `threads` with 0 resolved to the hardware concurrency (≥ 1).
  [[nodiscard]] int resolved_threads() const noexcept;
};

/// Number of chunks parallel_for_chunks will produce for `total` items.
/// Throws if the count does not fit in int (raise chunk_size instead).
[[nodiscard]] int chunk_count(std::int64_t total, const ParallelConfig& cfg);

/// A plain FIFO thread pool: `submit` enqueues a job, `wait_idle` blocks
/// until the queue is drained and every worker is between jobs. The first
/// exception thrown by a job is captured and rethrown from wait_idle().
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);
  void wait_idle();

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop();

  Mutex mu_;
  CondVar work_ready_;
  CondVar all_idle_;
  std::deque<std::function<void()>> jobs_ AA_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  ///< written in the ctor only
  std::exception_ptr first_error_ AA_GUARDED_BY(mu_);
  std::size_t in_flight_ AA_GUARDED_BY(mu_) = 0;
  bool stopping_ AA_GUARDED_BY(mu_) = false;
};

/// Long-lived work-stealing pool for campaign-scale workloads: one pool is
/// created per campaign and shared across every check it runs, instead of a
/// spawn/join cycle per check (the overhead that flattened BENCH_t1/t2's
/// parallel speedup to ~1x).
///
/// Design:
///   * One mutex-protected deque per worker. submit() distributes jobs
///     round-robin across the deques; a worker drains its own deque first
///     and then STEALS from the others, so uneven job costs (trials that
///     decide in 3 windows next to trials that run 50k) never leave a
///     worker idle while another has a backlog.
///   * Completion is tracked per TaskGroup, not per pool: many callers can
///     share one pool (sequentially or concurrently) and each waits only
///     for its own jobs.
///   * TaskGroup::wait() has the calling thread help execute jobs instead
///     of blocking, so a campaign driver thread is a worker too.
///   * Determinism is unaffected: scheduling only decides WHERE a chunk
///     runs; parallel_for_chunks still merges per-chunk partials in chunk
///     order (see the file comment's invariant 2).
class WorkStealingPool {
 public:
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Index of the calling pool-worker thread in [0, size()), or -1 when the
  /// caller is not one of THIS pool's workers (e.g. the submitting thread).
  /// Per-worker scratch (core::CampaignContext) is keyed on this.
  [[nodiscard]] int worker_index() const noexcept;

  /// Tracks completion of one batch of jobs on a shared pool.
  class TaskGroup {
   public:
    explicit TaskGroup(WorkStealingPool& pool) : pool_(pool) {}
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueue a job onto the pool, accounted to this group.
    void submit(std::function<void()> job);

    /// Run pool jobs on the calling thread until every job submitted to
    /// THIS group has finished, then rethrow the first exception any of
    /// them raised.
    void wait();

   private:
    friend class WorkStealingPool;

    WorkStealingPool& pool_;
    Mutex mu_;
    CondVar done_;
    std::exception_ptr first_error_ AA_GUARDED_BY(mu_);
    std::size_t outstanding_ AA_GUARDED_BY(mu_) = 0;
  };

 private:
  struct Job {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void worker_loop(int index);
  /// Pop a job, preferring deque `home` and stealing otherwise. Returns
  /// false when every deque is empty.
  bool try_pop(int home, Job& out) AA_REQUIRES(mu_);
  void run_job(Job& job);
  static void finish_job(TaskGroup* group, std::exception_ptr error);

  std::vector<std::thread> workers_;  ///< written in the ctor only

  Mutex mu_;  ///< guards the deques (cheap: jobs are coarse chunks)
  CondVar work_ready_;
  std::vector<std::deque<Job>> deques_ AA_GUARDED_BY(mu_);
  std::size_t next_queue_ AA_GUARDED_BY(mu_) = 0;
  std::size_t queued_ AA_GUARDED_BY(mu_) = 0;
  bool stopping_ AA_GUARDED_BY(mu_) = false;
};

/// Cooperative cancellation flag shared between a watchdog (or any
/// controller thread) and workers. Workers poll cancelled() at safe points
/// (chunk boundaries) and skip remaining work; nothing is interrupted
/// mid-trial, so results produced before the flag rose stay deterministic.
/// Relaxed atomics suffice: the flag carries no data dependency — it only
/// makes workers stop early, and the controller detects the effect through
/// its own synchronization (TaskGroup::wait).
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Wall-clock watchdog: arm(token, timeout) cancels the token if disarm()
/// is not called within the timeout. One lazily started background thread
/// serves successive arms (a generation counter makes a stale deadline
/// harmless: it only ever cancels the token it was armed with, and only
/// while still the current generation). Used by the campaign runner's
/// per-cell timeout; a fire that races a cell's completion at worst cancels
/// an already-finished check, which the runner treats as a no-op because
/// the report is complete.
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Start (or re-target) the countdown: `token` is cancelled once
  /// `timeout` elapses unless disarm() intervenes. Re-arming supersedes
  /// any previous arm.
  void arm(CancelToken& token, std::chrono::milliseconds timeout);

  /// Stop the countdown. Idempotent; safe when never armed.
  void disarm();

 private:
  void loop();

  Mutex mu_;
  CondVar cv_;
  /// Started by the first arm() (under mu_), joined by the destructor
  /// after the loop observed stopping_. Not AA_GUARDED_BY(mu_): the
  /// destructor must read it outside the lock to join, which is safe —
  /// any arm() happens-before the destructor by the caller's contract
  /// (no concurrent arm/destroy on one Watchdog).
  std::thread thread_;
  CancelToken* token_ AA_GUARDED_BY(mu_) = nullptr;  ///< null = disarmed
  std::chrono::steady_clock::time_point deadline_ AA_GUARDED_BY(mu_){};
  std::uint64_t generation_ AA_GUARDED_BY(mu_) = 0;  ///< bumped per arm/disarm
  bool stopping_ AA_GUARDED_BY(mu_) = false;
};

/// Partition [0, total) into chunk_count(total, cfg) fixed chunks and call
/// `body(chunk_index, begin, end)` once per chunk — inline and in order
/// when cfg resolves to one thread, across a pool otherwise. Distinct
/// chunks run concurrently; `body` must not touch another chunk's state.
/// Rethrows the first exception any chunk raised.
///
/// Callers that invoke this in a loop should pass a long-lived `pool` to
/// avoid a thread spawn/join cycle per call; the pool must not be shared
/// with concurrent submitters (wait_idle waits for ALL of its jobs). With
/// no pool a temporary one is created when cfg warrants it.
void parallel_for_chunks(
    std::int64_t total, const ParallelConfig& cfg,
    const std::function<void(int, std::int64_t, std::int64_t)>& body,
    ThreadPool* pool = nullptr);

/// Same contract on a shared work-stealing pool: chunks are submitted as
/// one TaskGroup and the caller helps execute until they are done. Safe to
/// call from multiple threads on the same pool concurrently (each call
/// waits only for its own chunks).
void parallel_for_chunks(
    std::int64_t total, const ParallelConfig& cfg,
    const std::function<void(int, std::int64_t, std::int64_t)>& body,
    WorkStealingPool& pool);

}  // namespace aa
