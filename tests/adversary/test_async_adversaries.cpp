#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"

namespace aa::adversary {
namespace {

using protocols::ProtocolKind;
using sim::Execution;

TEST(RandomAsyncScheduler, StopsWhenNothingPending) {
  Execution e(protocols::make_processes(ProtocolKind::BenOr, 1,
                                        protocols::split_inputs(4, 0.5)),
              1);
  // No sending steps yet → nothing pending.
  RandomAsyncScheduler sched(Rng(1));
  const sim::AsyncAction a = sched.next(e);
  EXPECT_TRUE(std::holds_alternative<sim::StopAction>(a));
}

TEST(RandomAsyncScheduler, DeliversOnlyPendingToLive) {
  Execution e(protocols::make_processes(ProtocolKind::BenOr, 1,
                                        protocols::split_inputs(4, 0.5)),
              1);
  for (int p = 0; p < 4; ++p) e.sending_step(p);
  e.crash(2);
  RandomAsyncScheduler sched(Rng(2));
  for (int i = 0; i < 30; ++i) {
    const sim::AsyncAction a = sched.next(e);
    if (const auto* d = std::get_if<sim::DeliverAction>(&a)) {
      EXPECT_NE(e.buffer().get(d->id).receiver, 2);
      EXPECT_TRUE(e.buffer().is_pending(d->id));
    }
  }
}

TEST(FixedCrashScheduler, CrashesFirstThenDelivers) {
  Execution e(protocols::make_processes(ProtocolKind::BenOr, 2,
                                        protocols::split_inputs(6, 0.5)),
              1);
  for (int p = 0; p < 6; ++p) e.sending_step(p);
  FixedCrashScheduler sched({1, 4}, Rng(3));
  const auto a1 = sched.next(e);
  ASSERT_TRUE(std::holds_alternative<sim::CrashAction>(a1));
  EXPECT_EQ(std::get<sim::CrashAction>(a1).p, 1);
  e.crash(1);
  const auto a2 = sched.next(e);
  ASSERT_TRUE(std::holds_alternative<sim::CrashAction>(a2));
  EXPECT_EQ(std::get<sim::CrashAction>(a2).p, 4);
  e.crash(4);
  const auto a3 = sched.next(e);
  EXPECT_TRUE(std::holds_alternative<sim::DeliverAction>(a3));
}

TEST(AsyncSplitKeeper, DeliversCurrentRoundVotesFirst) {
  const int n = 16;
  const int t = 2;
  Execution e(
      protocols::make_processes(ProtocolKind::Forgetful, t,
                                protocols::split_inputs(n, 0.5)),
      1);
  for (int p = 0; p < n; ++p) e.sending_step(p);
  AsyncSplitKeeper keeper;
  const sim::AsyncAction a = keeper.next(e);
  ASSERT_TRUE(std::holds_alternative<sim::DeliverAction>(a));
  const auto& env = e.buffer().get(std::get<sim::DeliverAction>(a).id);
  EXPECT_EQ(env.payload.round, 1);
}

TEST(AsyncSplitKeeper, KeepsDeliveredPrefixBalanced) {
  const int n = 16;
  const int t = 2;
  Execution e(
      protocols::make_processes(ProtocolKind::Forgetful, t,
                                protocols::split_inputs(n, 0.5)),
      2);
  for (int p = 0; p < n; ++p) e.sending_step(p);
  AsyncSplitKeeper keeper;
  // Deliver the first 8 scheduled messages and check the per-receiver
  // value balance never exceeds 1 while both values remain available.
  std::vector<std::array<int, 2>> delivered(
      static_cast<std::size_t>(n), {0, 0});
  for (int step = 0; step < 8; ++step) {
    const sim::AsyncAction a = keeper.next(e);
    ASSERT_TRUE(std::holds_alternative<sim::DeliverAction>(a));
    const sim::MsgId id = std::get<sim::DeliverAction>(a).id;
    const auto& env = e.buffer().get(id);
    ASSERT_TRUE(env.payload.value == 0 || env.payload.value == 1);
    auto& d = delivered[static_cast<std::size_t>(env.receiver)];
    ++d[static_cast<std::size_t>(env.payload.value)];
    EXPECT_LE(std::abs(d[0] - d[1]), 1)
        << "receiver " << env.receiver << " unbalanced at step " << step;
    e.receiving_step(id);
    e.sending_step(env.receiver);
  }
}

TEST(AsyncSplitKeeper, StopsOnlyWhenTrulyEmpty) {
  Execution e(protocols::make_processes(ProtocolKind::Forgetful, 1,
                                        protocols::split_inputs(8, 0.5)),
              3);
  AsyncSplitKeeper keeper;
  // Nothing published yet.
  EXPECT_TRUE(std::holds_alternative<sim::StopAction>(keeper.next(e)));
  for (int p = 0; p < 8; ++p) e.sending_step(p);
  EXPECT_TRUE(std::holds_alternative<sim::DeliverAction>(keeper.next(e)));
}

TEST(AsyncSplitKeeper, EndToEndStallsSplitInputs) {
  const int n = 16;
  const int t = 2;
  Execution e(
      protocols::make_processes(ProtocolKind::Forgetful, t,
                                protocols::split_inputs(n, 0.5)),
      5);
  AsyncSplitKeeper keeper;
  const auto r = sim::run_async(e, keeper, t, 4 * n * n);
  // Either stalled (step limit) or, rarely, the coins aligned.
  if (r.hit_step_limit) EXPECT_EQ(e.decided_count(), 0);
  SUCCEED();
}

}  // namespace
}  // namespace aa::adversary
