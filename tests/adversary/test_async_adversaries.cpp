#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/async_adversaries.hpp"
#include "adversary/censor.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"
#include "util/rng.hpp"

namespace aa::adversary {
namespace {

using protocols::ProtocolKind;
using sim::Execution;

TEST(RandomAsyncScheduler, StopsWhenNothingPending) {
  Execution e(protocols::make_processes(ProtocolKind::BenOr, 1,
                                        protocols::split_inputs(4, 0.5)),
              1);
  // No sending steps yet → nothing pending.
  RandomAsyncScheduler sched(Rng(1));
  const sim::AsyncAction a = sched.next(e);
  EXPECT_TRUE(std::holds_alternative<sim::StopAction>(a));
}

TEST(RandomAsyncScheduler, DeliversOnlyPendingToLive) {
  Execution e(protocols::make_processes(ProtocolKind::BenOr, 1,
                                        protocols::split_inputs(4, 0.5)),
              1);
  for (int p = 0; p < 4; ++p) e.sending_step(p);
  e.crash(2);
  RandomAsyncScheduler sched(Rng(2));
  for (int i = 0; i < 30; ++i) {
    const sim::AsyncAction a = sched.next(e);
    if (const auto* d = std::get_if<sim::DeliverAction>(&a)) {
      EXPECT_NE(e.buffer().get(d->id).receiver, 2);
      EXPECT_TRUE(e.buffer().is_pending(d->id));
    }
  }
}

TEST(FixedCrashScheduler, CrashesFirstThenDelivers) {
  Execution e(protocols::make_processes(ProtocolKind::BenOr, 2,
                                        protocols::split_inputs(6, 0.5)),
              1);
  for (int p = 0; p < 6; ++p) e.sending_step(p);
  FixedCrashScheduler sched({1, 4}, Rng(3));
  const auto a1 = sched.next(e);
  ASSERT_TRUE(std::holds_alternative<sim::CrashAction>(a1));
  EXPECT_EQ(std::get<sim::CrashAction>(a1).p, 1);
  e.crash(1);
  const auto a2 = sched.next(e);
  ASSERT_TRUE(std::holds_alternative<sim::CrashAction>(a2));
  EXPECT_EQ(std::get<sim::CrashAction>(a2).p, 4);
  e.crash(4);
  const auto a3 = sched.next(e);
  EXPECT_TRUE(std::holds_alternative<sim::DeliverAction>(a3));
}

// The list DeliverableSet must equal after every sync: pending messages to
// live receivers, ascending id — exactly the fallback's full rescan.
std::vector<sim::MsgId> full_rescan(const Execution& e) {
  std::vector<sim::MsgId> out;
  for (const sim::Envelope& env : e.buffer().all_pending()) {
    if (!e.crashed(env.receiver)) out.push_back(env.id);
  }
  return out;
}

// Deliver `id` the way run_async does: receiving step, then publish the
// receiver's staged responses immediately (§5 atomic receive+send).
void apply_delivery(Execution& e, sim::MsgId id) {
  const sim::ProcId receiver = e.buffer().get(id).receiver;
  e.receiving_step(id);
  e.sending_step(receiver);
}

TEST(DeliverableSet, StackedWrapperChurnNeverDesyncsFromRescan) {
  // Regression test for the incremental cache under STACKED plan-mutating
  // wrappers: between two syncs the scheduler's pick may be (a) applied,
  // (b) ignored while a substitute is delivered instead, (c) applied AND a
  // second out-of-band delivery retired in the same gap (substitution +
  // out-of-band retirement between the same pair of syncs), or (d) ignored
  // while TWO out-of-band deliveries retire. Each delivery also publishes
  // fresh responses, and crashes land mid-stream. After every combination
  // the synced list must be byte-for-byte the full rescan — and no stale
  // retired id may linger in the cache, where the next crash purge's
  // buffer lookup would blow up on it.
  const int n = 8;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              11);
  for (int p = 0; p < n; ++p) e.sending_step(p);
  detail::DeliverableSet ds;
  ds.reset();
  Rng rng(99);
  int applied = 0;
  for (int iter = 0; iter < 400; ++iter) {
    ASSERT_NO_THROW(ds.sync(e)) << "iter " << iter;
    ASSERT_EQ(ds.ids(), full_rescan(e)) << "iter " << iter;
    if (ds.empty()) break;
    const sim::MsgId pick = ds.take(rng.uniform_index(ds.size()));
    // A non-pick pending id, when the wrapper needs a substitute.
    const auto substitute = [&]() -> sim::MsgId {
      for (const sim::MsgId id : full_rescan(e)) {
        if (id != pick) return id;
      }
      return sim::kNoMsg;
    };
    switch (iter % 4) {
      case 0: {  // pick passes through every wrapper
        apply_delivery(e, pick);
        ++applied;
        break;
      }
      case 1: {  // wrapper substitutes; pick stays pending
        const sim::MsgId sub = substitute();
        apply_delivery(e, sub == sim::kNoMsg ? pick : sub);
        break;
      }
      case 2: {  // substitution + the pick ALSO retired out-of-band
        const sim::MsgId sub = substitute();
        if (sub != sim::kNoMsg) apply_delivery(e, sub);
        if (e.buffer().is_pending(pick)) apply_delivery(e, pick);
        break;
      }
      case 3: {  // two out-of-band retirements, pick untouched
        for (int k = 0; k < 2; ++k) {
          const sim::MsgId sub = substitute();
          if (sub != sim::kNoMsg) apply_delivery(e, sub);
        }
        break;
      }
    }
    if (iter == 37 || iter == 149) {
      e.crash(static_cast<sim::ProcId>(iter % n));  // within the t budget
    }
  }
  EXPECT_GT(applied, 0);
}

TEST(DeliverableSet, StackedStarvingWrappersEndToEnd) {
  // Two StarvingAsyncSchedulers stacked on a RandomAsyncScheduler: both
  // layers substitute deliveries the inner cache never issued, in the same
  // run, with different targets. The run must complete without the cache
  // ever handing run_async a dead id (receiving_step would throw) and
  // without the crash purge tripping on a stale entry.
  const int n = 8;
  const int t = 1;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              7);
  auto inner = std::make_unique<RandomAsyncScheduler>(Rng(5));
  auto mid = std::make_unique<StarvingAsyncScheduler>(std::move(inner),
                                                      /*target=*/0,
                                                      /*fairness_bound=*/3);
  StarvingAsyncScheduler outer(std::move(mid), /*target=*/1,
                               /*fairness_bound=*/2);
  sim::AsyncRunResult r{};
  ASSERT_NO_THROW(r = sim::run_async(e, outer, t, 4000));
  EXPECT_GT(r.deliveries, 0);
}

TEST(AsyncSplitKeeper, DeliversCurrentRoundVotesFirst) {
  const int n = 16;
  const int t = 2;
  Execution e(
      protocols::make_processes(ProtocolKind::Forgetful, t,
                                protocols::split_inputs(n, 0.5)),
      1);
  for (int p = 0; p < n; ++p) e.sending_step(p);
  AsyncSplitKeeper keeper;
  const sim::AsyncAction a = keeper.next(e);
  ASSERT_TRUE(std::holds_alternative<sim::DeliverAction>(a));
  const auto& env = e.buffer().get(std::get<sim::DeliverAction>(a).id);
  EXPECT_EQ(env.payload.round, 1);
}

TEST(AsyncSplitKeeper, KeepsDeliveredPrefixBalanced) {
  const int n = 16;
  const int t = 2;
  Execution e(
      protocols::make_processes(ProtocolKind::Forgetful, t,
                                protocols::split_inputs(n, 0.5)),
      2);
  for (int p = 0; p < n; ++p) e.sending_step(p);
  AsyncSplitKeeper keeper;
  // Deliver the first 8 scheduled messages and check the per-receiver
  // value balance never exceeds 1 while both values remain available.
  std::vector<std::array<int, 2>> delivered(
      static_cast<std::size_t>(n), {0, 0});
  for (int step = 0; step < 8; ++step) {
    const sim::AsyncAction a = keeper.next(e);
    ASSERT_TRUE(std::holds_alternative<sim::DeliverAction>(a));
    const sim::MsgId id = std::get<sim::DeliverAction>(a).id;
    const auto& env = e.buffer().get(id);
    ASSERT_TRUE(env.payload.value == 0 || env.payload.value == 1);
    auto& d = delivered[static_cast<std::size_t>(env.receiver)];
    ++d[static_cast<std::size_t>(env.payload.value)];
    EXPECT_LE(std::abs(d[0] - d[1]), 1)
        << "receiver " << env.receiver << " unbalanced at step " << step;
    e.receiving_step(id);
    e.sending_step(env.receiver);
  }
}

TEST(AsyncSplitKeeper, StopsOnlyWhenTrulyEmpty) {
  Execution e(protocols::make_processes(ProtocolKind::Forgetful, 1,
                                        protocols::split_inputs(8, 0.5)),
              3);
  AsyncSplitKeeper keeper;
  // Nothing published yet.
  EXPECT_TRUE(std::holds_alternative<sim::StopAction>(keeper.next(e)));
  for (int p = 0; p < 8; ++p) e.sending_step(p);
  EXPECT_TRUE(std::holds_alternative<sim::DeliverAction>(keeper.next(e)));
}

TEST(AsyncSplitKeeper, EndToEndStallsSplitInputs) {
  const int n = 16;
  const int t = 2;
  Execution e(
      protocols::make_processes(ProtocolKind::Forgetful, t,
                                protocols::split_inputs(n, 0.5)),
      5);
  AsyncSplitKeeper keeper;
  const auto r = sim::run_async(e, keeper, t, 4 * n * n);
  // Either stalled (step limit) or, rarely, the coins aligned.
  if (r.hit_step_limit) EXPECT_EQ(e.decided_count(), 0);
  SUCCEED();
}

}  // namespace
}  // namespace aa::adversary
