#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "adversary/async_adversaries.hpp"
#include "adversary/chaos.hpp"
#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"
#include "sim/window.hpp"

namespace aa::adversary {
namespace {

using protocols::ProtocolKind;
using sim::Execution;

Execution make_exec(int n, int t, std::uint64_t seed,
                    sim::ExecutionConfig cfg = {}) {
  return Execution(protocols::make_processes(
                       ProtocolKind::Reset, t, protocols::split_inputs(n, 0.5)),
                   seed, cfg);
}

// Driver-like planning: prepare lifecycle, send phase with batch
// collection, then one plan_window_into against the collected batch.
sim::WindowPlan plan_once(sim::WindowAdversary& adv, Execution& e, int t) {
  adv.prepare(e.n(), t);
  e.begin_window_batch();
  for (int p = 0; p < e.n(); ++p) (void)e.sending_step(p);
  sim::WindowPlan plan;
  plan.reset(e.n());
  adv.plan_window_into(e, e.window_batch(), plan);
  return plan;
}

std::unique_ptr<sim::WindowAdversary> random_inner(std::uint64_t seed, int t) {
  return std::make_unique<RandomWindowAdversary>(t, 0.1, Rng(seed * 9 + 2));
}

// Fingerprint for bit-identity comparisons between two runs.
struct RunPrint {
  std::int64_t windows;
  std::int64_t steps;
  std::int64_t resets;
  int crashed;
  int decided;
  std::vector<int> outputs;

  friend bool operator==(const RunPrint&, const RunPrint&) = default;
};

RunPrint window_run(sim::WindowAdversary& adv, std::uint64_t seed, int n,
                    int t, sim::ExecutionConfig cfg = {}) {
  Execution e = make_exec(n, t, seed, cfg);
  RunPrint r;
  r.windows = sim::run_until_all_decided(e, adv, t, 200);
  r.steps = e.step_count();
  r.resets = e.total_resets();
  r.crashed = e.crashed_count();
  r.decided = e.decided_count();
  for (int p = 0; p < n; ++p) r.outputs.push_back(e.output(p));
  return r;
}

TEST(ChaosWindow, DisabledPlanIsExactPassthrough) {
  const int n = 10;
  const int t = 2;
  const sim::FaultPlan off;  // enabled() == false
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    auto plain = random_inner(seed, t);
    ChaosWindowAdversary chaotic(random_inner(seed, t), off, seed);
    EXPECT_EQ(window_run(*plain, seed, n, t), window_run(chaotic, seed, n, t))
        << "seed " << seed;
  }
}

TEST(ChaosWindow, SameSeedReplaysBitIdentically) {
  const int n = 12;
  const int t = 2;
  sim::FaultPlan fp;
  fp.crash_prob = 0.2;
  fp.crash_budget = 3;
  fp.reset_prob = 0.5;
  fp.censor_prob = 0.4;
  fp.censor_target = 1;
  fp.duplicate_row_prob = 0.3;
  fp.degenerate_prob = 0.1;
  fp.chaos_seed = 99;
  for (const std::uint64_t seed : {3ull, 11ull}) {
    ChaosWindowAdversary a(random_inner(seed, t), fp, seed);
    ChaosWindowAdversary b(random_inner(seed, t), fp, seed);
    EXPECT_EQ(window_run(a, seed, n, t), window_run(b, seed, n, t))
        << "seed " << seed;
  }
}

TEST(ChaosWindow, CrashBudgetRespectedAndAuditGreen) {
  const int n = 10;
  const int t = 2;
  sim::FaultPlan fp;
  fp.crash_prob = 1.0;
  fp.crash_budget = 2;
  sim::ExecutionConfig cfg;
  cfg.audit = true;  // every window boundary audits the whole engine state
  for (const std::uint64_t seed : {5ull, 17ull, 41ull}) {
    ChaosWindowAdversary chaos(random_inner(seed, t), fp, seed);
    Execution e = make_exec(n, t, seed, cfg);
    ASSERT_NO_THROW(sim::run_until_all_decided(e, chaos, t, 60));
    EXPECT_LE(e.crashed_count(), fp.crash_budget);
    EXPECT_NO_THROW(e.audit());
  }
}

TEST(ChaosWindow, CensorRemovesTargetWhereRowsHaveSlack) {
  const int n = 10;
  const int t = 2;
  sim::FaultPlan fp;
  fp.censor_prob = 1.0;
  fp.censor_target = 3;
  Execution e = make_exec(n, t, 4);
  // Fair delivers everyone (row size n > n − t), so every row has slack and
  // certain censorship must scrub the target from all of them.
  ChaosWindowAdversary chaos(std::make_unique<FairWindowAdversary>(), fp, 4);
  const sim::WindowPlan plan = plan_once(chaos, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  for (const auto& row : plan.delivery_order) {
    EXPECT_EQ(std::count(row.begin(), row.end(), 3), 0);
    EXPECT_GE(row.size(), static_cast<std::size_t>(n - t));
  }
}

TEST(ChaosWindow, DegenerateWindowIsMinimalAcceptable) {
  const int n = 19;
  const int t = 3;
  sim::FaultPlan fp;
  fp.degenerate_prob = 1.0;
  Execution e = make_exec(n, t, 6);
  ChaosWindowAdversary chaos(std::make_unique<FairWindowAdversary>(), fp, 6);
  const sim::WindowPlan plan = plan_once(chaos, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  EXPECT_TRUE(plan.resets.empty());
  std::vector<sim::ProcId> want;
  for (sim::ProcId p = 0; p < n - t; ++p) want.push_back(p);
  for (const auto& row : plan.delivery_order) EXPECT_EQ(row, want);
}

TEST(ChaosWindow, ResetTopUpReachesFullBudget) {
  const int n = 19;
  const int t = 3;
  sim::FaultPlan fp;
  fp.reset_prob = 1.0;
  Execution e = make_exec(n, t, 8);
  // Fair plans zero resets; certain top-up must fill all t distinct slots.
  ChaosWindowAdversary chaos(std::make_unique<FairWindowAdversary>(), fp, 8);
  const sim::WindowPlan plan = plan_once(chaos, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  EXPECT_EQ(plan.resets.size(), static_cast<std::size_t>(t));
}

TEST(ChaosWindow, DuplicatedRowsStayAcceptable) {
  const int n = 10;
  const int t = 2;
  sim::FaultPlan fp;
  fp.duplicate_row_prob = 1.0;
  Execution e = make_exec(n, t, 10);
  ChaosWindowAdversary chaos(
      std::make_unique<SilencerWindowAdversary>(std::vector<sim::ProcId>{0}),
      fp, 10);
  const sim::WindowPlan plan = plan_once(chaos, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
}

TEST(ChaosWindow, NameWrapsInner) {
  const sim::FaultPlan off;
  ChaosWindowAdversary chaos(std::make_unique<FairWindowAdversary>(), off, 1);
  EXPECT_EQ(chaos.name(), "chaos(" + FairWindowAdversary().name() + ")");
}

TEST(ChaosAsync, CrashInjectionHonoursBothBudgets) {
  const int n = 10;
  const int t = 2;
  sim::FaultPlan fp;
  fp.crash_prob = 1.0;
  fp.crash_budget = 5;  // wants more than the model allows
  for (const std::uint64_t seed : {2ull, 9ull}) {
    ChaosAsyncScheduler chaos(
        std::make_unique<RandomAsyncScheduler>(Rng(seed * 3 + 1)), fp, seed);
    Execution e = make_exec(n, t, seed);
    const sim::AsyncRunResult rr = sim::run_async(e, chaos, t, 4000, true);
    EXPECT_LE(rr.crashes, t);  // model budget binds before the fault budget
    EXPECT_EQ(e.crashed_count(), rr.crashes);
  }
}

TEST(ChaosAsync, SameSeedReplaysBitIdentically) {
  const int n = 10;
  const int t = 2;
  sim::FaultPlan fp;
  fp.crash_prob = 0.01;
  fp.crash_budget = 2;
  fp.chaos_seed = 5;
  for (const std::uint64_t seed : {4ull, 13ull}) {
    std::vector<std::int64_t> prints;
    for (int run = 0; run < 2; ++run) {
      ChaosAsyncScheduler chaos(
          std::make_unique<RandomAsyncScheduler>(Rng(seed * 3 + 1)), fp, seed);
      Execution e = make_exec(n, t, seed);
      const sim::AsyncRunResult rr = sim::run_async(e, chaos, t, 4000, true);
      prints.push_back(rr.deliveries);
      prints.push_back(rr.crashes);
      prints.push_back(e.step_count());
      prints.push_back(e.decided_count());
    }
    EXPECT_EQ(std::vector<std::int64_t>(prints.begin(), prints.begin() + 4),
              std::vector<std::int64_t>(prints.begin() + 4, prints.end()))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace aa::adversary
