#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"

namespace aa::adversary {
namespace {

using protocols::ProtocolKind;
using sim::Execution;

Execution make_exec(int n, int t, std::uint64_t seed) {
  return Execution(protocols::make_processes(
                       ProtocolKind::Reset, t, protocols::split_inputs(n, 0.5)),
                   seed);
}

// Test-side replacement for the removed WindowAdversary::plan_window
// convenience: owns a fresh plan, runs the prepare lifecycle like the
// driver would, plans against the execution's collected window batch, and
// returns the filled plan for inspection.
sim::WindowPlan plan_once(sim::WindowAdversary& adv, const Execution& e,
                          int t) {
  adv.prepare(e.n(), t);
  sim::WindowPlan plan;
  plan.reset(e.n());
  adv.plan_window_into(e, e.window_batch(), plan);
  return plan;
}

// Sending phase of one window, batch collection armed like the driver's.
void send_all(Execution& e) {
  e.begin_window_batch();
  for (int p = 0; p < e.n(); ++p) e.sending_step(p);
}

TEST(FairAdversary, PlansFullDelivery) {
  const int n = 8;
  const int t = 1;
  Execution e = make_exec(n, t, 1);
  send_all(e);
  FairWindowAdversary fair;
  const sim::WindowPlan plan = plan_once(fair, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  EXPECT_TRUE(plan.resets.empty());
  for (const auto& order : plan.delivery_order)
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n));
}

TEST(SilencerAdversary, NeverDeliversFromSilenced) {
  const int n = 13;
  const int t = 2;
  Execution e = make_exec(n, t, 2);
  send_all(e);
  SilencerWindowAdversary silencer({0, 5});
  const sim::WindowPlan plan = plan_once(silencer, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  for (const auto& order : plan.delivery_order) {
    EXPECT_EQ(std::count(order.begin(), order.end(), 0), 0);
    EXPECT_EQ(std::count(order.begin(), order.end(), 5), 0);
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n - 2));
  }
}

TEST(RandomAdversary, ProducesValidPlansAcrossWindows) {
  const int n = 10;
  const int t = 2;
  Execution e = make_exec(n, t, 3);
  RandomWindowAdversary rnd(t, 0.3, Rng(5));
  for (int w = 0; w < 20; ++w) {
    // Plans must be valid every window regardless of protocol state.
    e.begin_window_batch();
    const sim::WindowPlan plan = plan_once(rnd, e, t);
    EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
    EXPECT_LE(plan.resets.size(), static_cast<std::size_t>(t));
  }
}

TEST(ResetStormAdversary, ResetsExactlyTDistinct) {
  const int n = 19;
  const int t = 3;
  Execution e = make_exec(n, t, 4);
  ResetStormAdversary storm(t, Rng(7));
  send_all(e);
  const sim::WindowPlan plan = plan_once(storm, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  EXPECT_EQ(plan.resets.size(), static_cast<std::size_t>(t));
}

TEST(BalanceVotes, AlternatesWithinRound) {
  // 3 zeros (senders 0,1,2) + 3 ones (senders 3,4,5), one round.
  std::vector<std::tuple<sim::ProcId, int, int>> votes;
  for (int s = 0; s < 3; ++s) votes.emplace_back(s, 1, 0);
  for (int s = 3; s < 6; ++s) votes.emplace_back(s, 1, 1);
  const auto order = balance_votes(votes);
  ASSERT_EQ(order.size(), 6u);
  // Every prefix of length L carries at most ⌈L/2⌉ of either value.
  int c0 = 0;
  int c1 = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (order[i] < 3 ? c0 : c1)++;
    const int limit = static_cast<int>(i / 2 + 1);
    EXPECT_LE(c0, limit) << "prefix " << i;
    EXPECT_LE(c1, limit) << "prefix " << i;
  }
}

TEST(BalanceVotes, MajorityFirstWhenUneven) {
  // 4 zeros, 2 ones: prefix of any length L has ≤ ⌈L/2⌉ ones (the scarce
  // value is spread out), though zeros eventually pile up.
  std::vector<std::tuple<sim::ProcId, int, int>> votes;
  for (int s = 0; s < 4; ++s) votes.emplace_back(s, 1, 0);
  for (int s = 4; s < 6; ++s) votes.emplace_back(s, 1, 1);
  const auto order = balance_votes(votes);
  // First element must be the majority value (a zero-voter id < 4).
  EXPECT_LT(order.front(), 4);
}

TEST(BalanceVotes, RoundsAscend) {
  std::vector<std::tuple<sim::ProcId, int, int>> votes;
  votes.emplace_back(0, 2, 0);  // round 2
  votes.emplace_back(1, 1, 1);  // round 1
  votes.emplace_back(2, 1, 0);
  const auto order = balance_votes(votes);
  ASSERT_EQ(order.size(), 3u);
  // Round-1 senders (1, 2) come before the round-2 sender (0).
  EXPECT_EQ(order.back(), 0);
}

TEST(SplitKeeper, PlanIsValidAndDeliversEveryone) {
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 6);
  send_all(e);
  SplitKeeperAdversary keeper;
  const sim::WindowPlan plan = plan_once(keeper, e, t);
  EXPECT_NO_THROW(sim::validate_window_plan(plan, n, t));
  EXPECT_TRUE(plan.resets.empty());
  // S_i = [n]: only the order is adversarial.
  for (const auto& order : plan.delivery_order)
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n));
}

TEST(SplitKeeper, PreventsFirstWindowDecisionOnSplitInputs) {
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 8);
  SplitKeeperAdversary keeper;
  sim::run_acceptable_window(e, keeper, t);
  // A 6/6 split delivered in balanced order never reaches T3 = n − 3t = 6?
  // T3 = 6; balanced prefix of T1 = 8 gives exactly 4/4 → below T3 → no
  // decision, everyone flips a coin.
  EXPECT_EQ(e.decided_count(), 0);
}

TEST(SplitKeeper, SlowsDecisionRelativeToFair) {
  const int n = 16;
  const int t = 2;
  double fair_total = 0;
  double keeper_total = 0;
  const int trials = 10;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    {
      Execution e = make_exec(n, t, seed);
      FairWindowAdversary fair;
      fair_total += static_cast<double>(
          sim::run_until_first_decision(e, fair, t, 1000000));
    }
    {
      Execution e = make_exec(n, t, seed);
      SplitKeeperAdversary keeper;
      keeper_total += static_cast<double>(
          sim::run_until_first_decision(e, keeper, t, 1000000));
    }
  }
  EXPECT_GT(keeper_total, 2.0 * fair_total);
}

TEST(SplitKeeper, CannotBlockUnanimity) {
  const int n = 12;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::Reset, t,
                                        protocols::unanimous_inputs(n, 0)),
              9);
  SplitKeeperAdversary keeper;
  sim::run_acceptable_window(e, keeper, t);
  EXPECT_EQ(e.decided_count(), n);
}

TEST(AdversaryNames, AreDistinct) {
  FairWindowAdversary a;
  SilencerWindowAdversary b({0});
  RandomWindowAdversary c(1, 0.0, Rng(1));
  ResetStormAdversary d(1, Rng(1));
  SplitKeeperAdversary e;
  const std::vector<std::string> names{a.name(), b.name(), c.name(), d.name(),
                                       e.name()};
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  }
}

}  // namespace
}  // namespace aa::adversary
