#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/window_adversaries.hpp"
#include "core/campaign.hpp"
#include "core/checker.hpp"
#include "protocols/factory.hpp"
#include "util/rng.hpp"

namespace aa::core {
namespace {

// ---- config parsing --------------------------------------------------------

TEST(CampaignConfig, ParsesEveryKeyWithCommentsAndLists) {
  const std::string text = R"(# a comment line
name = sweep1
model = async   # trailing comment

n = 8, 12, 16
t = 1,2
protocols = reset, forgetful
thresholds = default, canonical
memory_k = 0, 4
adversaries = random-async, fixed-crash

split = 0.25
trials = 10
budget = 1234
seed = 99

threads = 4
chunk_size = 8
output_dir = out/sweep1
)";
  const CampaignConfig cfg = parse_campaign_config(text);
  EXPECT_EQ(cfg.name, "sweep1");
  EXPECT_EQ(cfg.model, CampaignModel::kAsync);
  EXPECT_EQ(cfg.n, (std::vector<int>{8, 12, 16}));
  EXPECT_EQ(cfg.t, (std::vector<int>{1, 2}));
  EXPECT_EQ(cfg.protocols, (std::vector<std::string>{"reset", "forgetful"}));
  EXPECT_EQ(cfg.thresholds,
            (std::vector<std::string>{"default", "canonical"}));
  EXPECT_EQ(cfg.memory_k, (std::vector<int>{0, 4}));
  EXPECT_EQ(cfg.adversaries,
            (std::vector<std::string>{"random-async", "fixed-crash"}));
  EXPECT_DOUBLE_EQ(cfg.split, 0.25);
  EXPECT_EQ(cfg.trials, 10);
  EXPECT_EQ(cfg.budget, 1234);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.threads, 4);
  EXPECT_EQ(cfg.chunk_size, 8);
  EXPECT_EQ(cfg.output_dir, "out/sweep1");
}

TEST(CampaignConfig, EmptyTextYieldsDefaults) {
  const CampaignConfig cfg = parse_campaign_config("");
  const CampaignConfig def;
  EXPECT_EQ(cfg.name, def.name);
  EXPECT_EQ(cfg.model, CampaignModel::kWindow);
  EXPECT_EQ(cfg.n, def.n);
  EXPECT_EQ(cfg.trials, def.trials);
}

TEST(CampaignConfig, ParsesRobustnessKeys) {
  const std::string text = R"(audit = true
audit_every = 16
resume = true
cell_timeout_ms = 250
chaos_crash_prob = 0.5
chaos_crash_budget = 2
chaos_reset_prob = 0.25
chaos_censor_prob = 1
chaos_censor_target = 3
chaos_duplicate_prob = 0.125
chaos_degenerate_prob = 0.0625
chaos_seed = 77
)";
  const CampaignConfig cfg = parse_campaign_config(text);
  EXPECT_TRUE(cfg.audit);
  EXPECT_EQ(cfg.audit_every, 16);
  EXPECT_TRUE(cfg.resume);
  EXPECT_EQ(cfg.cell_timeout_ms, 250);
  EXPECT_DOUBLE_EQ(cfg.chaos.crash_prob, 0.5);
  EXPECT_EQ(cfg.chaos.crash_budget, 2);
  EXPECT_DOUBLE_EQ(cfg.chaos.reset_prob, 0.25);
  EXPECT_DOUBLE_EQ(cfg.chaos.censor_prob, 1.0);
  EXPECT_EQ(cfg.chaos.censor_target, 3);
  EXPECT_DOUBLE_EQ(cfg.chaos.duplicate_row_prob, 0.125);
  EXPECT_DOUBLE_EQ(cfg.chaos.degenerate_prob, 0.0625);
  EXPECT_EQ(cfg.chaos.chaos_seed, 77u);
  EXPECT_TRUE(cfg.chaos.enabled());
  // Robustness knobs are all off by default — chaos never rides along
  // uninvited.
  const CampaignConfig def = parse_campaign_config("");
  EXPECT_FALSE(def.audit);
  EXPECT_EQ(def.audit_every, 0);
  EXPECT_FALSE(def.resume);
  EXPECT_EQ(def.cell_timeout_ms, 0);
  EXPECT_FALSE(def.chaos.enabled());
}

TEST(CampaignConfig, RejectsDuplicateKeysWithLineNumbers) {
  try {
    (void)parse_campaign_config("trials = 4\ntrials = 8\n");
    FAIL() << "duplicate key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trials"), std::string::npos) << msg;
  }
  // Comments and blank lines don't count as key occurrences.
  EXPECT_NO_THROW((void)parse_campaign_config("# trials = 4\n\ntrials = 8\n"));
}

TEST(CampaignConfig, RejectsMalformedInput) {
  EXPECT_THROW(parse_campaign_config("frobnicate = 3"),
               std::invalid_argument);  // unknown key
  EXPECT_THROW(parse_campaign_config("model = turbo"),
               std::invalid_argument);  // unknown model
  EXPECT_THROW(parse_campaign_config("trials = many"),
               std::invalid_argument);  // non-integer
  EXPECT_THROW(parse_campaign_config("n ="), std::invalid_argument);
  EXPECT_THROW(parse_campaign_config("just some words"),
               std::invalid_argument);  // no '='
  EXPECT_THROW(parse_campaign_config("chaos_crash_prob = 1.5"),
               std::invalid_argument);  // probability out of [0, 1]
  EXPECT_THROW(parse_campaign_config("audit = maybe"),
               std::invalid_argument);  // non-boolean
  EXPECT_THROW(parse_campaign_config("cell_timeout_ms = -5"),
               std::invalid_argument);  // negative timeout
  EXPECT_THROW(parse_campaign_config("audit_every = -3"),
               std::invalid_argument);  // negative sampling period
}

// ---- sweep structure -------------------------------------------------------

CampaignConfig tiny_config() {
  CampaignConfig cfg;
  cfg.name = "tiny";
  cfg.model = CampaignModel::kWindow;
  cfg.n = {8};
  cfg.t = {1};
  cfg.protocols = {"reset", "forgetful"};
  cfg.thresholds = {"default"};
  cfg.memory_k = {0, 3};
  cfg.adversaries = {"fair", "random"};
  cfg.trials = 8;
  cfg.budget = 300;
  cfg.seed = 5000;
  cfg.threads = 1;
  cfg.chunk_size = 4;
  return cfg;
}

TEST(Campaign, MemoryKAxisOnlySweepsForgetful) {
  const CampaignConfig cfg = tiny_config();
  const CampaignResult result = run_campaign(cfg);
  // reset runs memory_k={0} only; forgetful sweeps {0, 3}: (1+2)*2 advs.
  ASSERT_EQ(result.cells.size(), 6u);
  int forgetful_cells = 0;
  for (const CampaignCell& cell : result.cells) {
    EXPECT_EQ(cell.seed0,
              cfg.seed + static_cast<std::uint64_t>(cell.index) *
                             static_cast<std::uint64_t>(cfg.trials));
    EXPECT_EQ(cell.report.trials, cfg.trials);
    if (cell.protocol == "forgetful") ++forgetful_cells;
    else EXPECT_EQ(cell.memory_k, 0);
  }
  EXPECT_EQ(forgetful_cells, 4);
  EXPECT_EQ(result.summary.trials,
            cfg.trials * static_cast<int>(result.cells.size()));
}

TEST(Campaign, SummaryAndCellsByteIdenticalAcrossThreadCounts) {
  CampaignConfig cfg = tiny_config();
  const CampaignResult serial = run_campaign(cfg);
  const std::string serial_summary = campaign_summary_json(serial);
  for (const int threads : {2, 8}) {
    cfg.threads = threads;
    const CampaignResult par = run_campaign(cfg);
    EXPECT_EQ(campaign_summary_json(par), serial_summary)
        << "summary diverged at threads=" << threads;
    ASSERT_EQ(par.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < par.cells.size(); ++i) {
      EXPECT_EQ(campaign_cell_json(cfg, par.cells[i]),
                campaign_cell_json(cfg, serial.cells[i]))
          << "cell " << i << " diverged at threads=" << threads;
    }
  }
}

// ---- sampled auditing ------------------------------------------------------

TEST(Campaign, AuditEveryNeverChangesReports) {
  // The sampled auditor (audit_every = N) only THROWS on corruption; the
  // sampled boundaries are a function of the window index alone. Summary
  // and every cell must therefore stay byte-identical with it on.
  CampaignConfig cfg = tiny_config();
  const CampaignResult plain = run_campaign(cfg);
  cfg.audit_every = 3;
  const CampaignResult audited = run_campaign(cfg);
  // The config echoes differ (audit_every), so compare via the plain
  // config's serialization on both runs' cells.
  cfg.audit_every = 0;
  EXPECT_EQ(campaign_summary_json({cfg, audited.cells, audited.summary}),
            campaign_summary_json({cfg, plain.cells, plain.summary}));
  ASSERT_EQ(audited.cells.size(), plain.cells.size());
  for (std::size_t i = 0; i < plain.cells.size(); ++i) {
    EXPECT_EQ(campaign_cell_json(cfg, audited.cells[i]),
              campaign_cell_json(cfg, plain.cells[i]))
        << "cell " << i;
  }
}

// ---- per-cell timing (sidecar-only) ----------------------------------------

TEST(Campaign, TimingSidecarCoversEveryCellAndStaysOutOfReports) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "aa_campaign_timing";
  fs::remove_all(dir);

  CampaignConfig cfg = tiny_config();
  cfg.name = "timing";
  cfg.output_dir = dir.string();
  const CampaignResult result = run_campaign(cfg);

  // In-memory: every computed cell carries a positive wall clock and the
  // derived throughput.
  for (const CampaignCell& cell : result.cells) {
    EXPECT_GT(cell.wall_ms, 0.0) << "cell " << cell.index;
    EXPECT_GT(cell.trials_per_s, 0.0) << "cell " << cell.index;
  }

  // Sidecar document: one row per cell plus the total.
  const std::string timing = campaign_timing_json(result);
  for (const CampaignCell& cell : result.cells) {
    EXPECT_NE(timing.find("\"cell\": " + std::to_string(cell.index)),
              std::string::npos)
        << timing;
  }
  EXPECT_NE(timing.find("\"wall_ms_total\""), std::string::npos);
  EXPECT_NE(timing.find("\"trials_per_s\""), std::string::npos);

  // On disk: the sidecar exists; the byte-identity surface (summary +
  // cells) must NOT mention timing — it is nondeterministic and would
  // break the threads-1-vs-N and fresh-vs-resumed byte diffs.
  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  EXPECT_TRUE(fs::exists(dir / "timing_timing.json"));
  EXPECT_EQ(slurp(dir / "timing_timing.json"), timing);
  const std::string summary = slurp(dir / "timing_summary.json");
  EXPECT_FALSE(summary.empty());
  EXPECT_EQ(summary.find("wall_ms"), std::string::npos);
  EXPECT_EQ(summary.find("trials_per_s"), std::string::npos);
  const std::string cell0 = slurp(dir / "timing_cell_0.json");
  EXPECT_FALSE(cell0.empty());
  EXPECT_EQ(cell0.find("wall_ms"), std::string::npos);

  fs::remove_all(dir);
}

// ---- seed-block sharding through the checker -------------------------------

TEST(Campaign, SeedShardedCheckerAccumulatorsMergeToWholeRun) {
  // Split one cell's trial block into contiguous seed shards, run each
  // through the checker with its own accumulator, merge — the finalized
  // summary must be bit-identical to the single whole-block run's.
  Experiment spec;
  spec.kind = protocols::ProtocolKind::Reset;
  spec.inputs = protocols::split_inputs(9, 0.5);
  spec.t = 1;
  spec.budget = 300;
  const WindowAdversaryFactory factory = [](std::uint64_t seed) {
    return std::make_unique<adversary::RandomWindowAdversary>(1, 0.1,
                                                             Rng(seed * 9 + 2));
  };
  const int trials = 32;
  const std::uint64_t seed0 = 600;
  const ParallelConfig par{.threads = 1, .chunk_size = 4};

  CampaignContext whole_ctx(par);
  MeasureOneAccumulator whole;
  (void)check_measure_one_window(spec, factory, trials, seed0, whole_ctx,
                                 &whole);
  const MeasureOneReport whole_rep = whole.finalize();

  for (const int shards : {4, 16}) {
    CampaignContext ctx(par);
    MeasureOneAccumulator merged;
    const int per = trials / shards;
    for (int s = 0; s < shards; ++s) {
      MeasureOneAccumulator part;
      (void)check_measure_one_window(
          spec, factory, per,
          seed0 + static_cast<std::uint64_t>(s) *
                      static_cast<std::uint64_t>(per),
          ctx, &part);
      merged.merge(part);
    }
    const MeasureOneReport rep = merged.finalize();
    EXPECT_EQ(rep.trials, whole_rep.trials);
    EXPECT_EQ(rep.agreement_violations, whole_rep.agreement_violations);
    EXPECT_EQ(rep.validity_violations, whole_rep.validity_violations);
    EXPECT_EQ(rep.decided_runs, whole_rep.decided_runs);
    EXPECT_EQ(rep.all_decided_runs, whole_rep.all_decided_runs);
    EXPECT_EQ(rep.mean_windows_to_first, whole_rep.mean_windows_to_first);
    EXPECT_EQ(rep.violating_seeds, whole_rep.violating_seeds);
  }
}

}  // namespace
}  // namespace aa::core
