// Campaign-level tests for the latency & accountability lens: the new
// config keys (lens, censor_target, chaos_plan, parallel_cells), the lens
// artifacts, and the parallel-cells byte-identity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace aa::core {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("aa_lens_" + name);
  fs::remove_all(dir);
  return dir;
}

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.name = "lens";
  cfg.n = {6, 8};
  cfg.t = {1};
  cfg.protocols = {"reset"};
  cfg.adversaries = {"fair", "random"};
  cfg.trials = 8;
  cfg.budget = 300;
  cfg.seed = 500;
  cfg.chunk_size = 4;
  return cfg;
}

// ---- config parsing --------------------------------------------------------

TEST(CampaignLensConfig, ParsesTheNewKeys) {
  const CampaignConfig cfg = parse_campaign_config(R"(lens = true
censor_target = 3
chaos_plan = none, censor-heavy
parallel_cells = true
)");
  EXPECT_TRUE(cfg.lens);
  EXPECT_EQ(cfg.censor_target, 3);
  EXPECT_EQ(cfg.chaos_plan,
            (std::vector<std::string>{"none", "censor-heavy"}));
  EXPECT_TRUE(cfg.parallel_cells);
}

TEST(CampaignLensConfig, DefaultsAreOff) {
  const CampaignConfig cfg = parse_campaign_config("");
  EXPECT_FALSE(cfg.lens);
  EXPECT_EQ(cfg.censor_target, -1);
  EXPECT_EQ(cfg.chaos_plan, (std::vector<std::string>{"none"}));
  EXPECT_FALSE(cfg.parallel_cells);
}

TEST(CampaignLensConfig, RejectsUnknownChaosPreset) {
  EXPECT_THROW((void)parse_campaign_config("chaos_plan = tempest\n"),
               std::invalid_argument);
}

TEST(CampaignLensConfig, RejectsChaosPlanAxisWithChaosKnobs) {
  EXPECT_THROW((void)parse_campaign_config(R"(chaos_plan = censor-light
chaos_reset_prob = 0.5
)"),
               std::invalid_argument);
  // The default axis value composes with knobs fine.
  EXPECT_NO_THROW((void)parse_campaign_config(R"(chaos_plan = none
chaos_reset_prob = 0.5
)"));
}

TEST(CampaignLensConfig, RejectsParallelCellsWithCellTimeout) {
  EXPECT_THROW((void)parse_campaign_config(R"(parallel_cells = true
cell_timeout_ms = 100
)"),
               std::invalid_argument);
}

TEST(CampaignLensConfig, RejectsCensorTargetOutsideEverySweptN) {
  EXPECT_THROW((void)parse_campaign_config(R"(n = 6, 8
censor_target = 6
)"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)parse_campaign_config(R"(n = 6, 8
censor_target = 5
)"));
}

// ---- parallel cells: byte identity -----------------------------------------

TEST(CampaignParallelCells, ArtifactsByteIdenticalToSequential) {
  CampaignConfig cfg = small_config();
  cfg.lens = true;
  cfg.threads = 8;

  CampaignConfig seq = cfg;
  seq.parallel_cells = false;
  seq.output_dir = fresh_dir("seq").string();
  const CampaignResult rs = run_campaign(seq);

  CampaignConfig par = cfg;
  par.parallel_cells = true;
  par.output_dir = fresh_dir("par").string();
  const CampaignResult rp = run_campaign(par);

  ASSERT_EQ(rs.cells.size(), rp.cells.size());
  ASSERT_EQ(rs.cells.size(), 4u);  // 2 n × 2 adversaries
  // Summary normalizes the campaign identity fields, so compare the report
  // bodies through the serializer on a name-matched copy.
  CampaignResult rp_renamed = rp;
  rp_renamed.config.output_dir = seq.output_dir;
  rp_renamed.config.parallel_cells = false;
  EXPECT_EQ(campaign_summary_json(rs), campaign_summary_json(rp_renamed));

  for (const CampaignCell& cell : rs.cells) {
    const std::string cell_name =
        "lens_cell_" + std::to_string(cell.index) + ".json";
    EXPECT_EQ(slurp(fs::path(seq.output_dir) / cell_name),
              slurp(fs::path(par.output_dir) / cell_name))
        << cell_name;
    const std::string lens_name =
        "lens_cell_" + std::to_string(cell.index) + "_lens.json";
    EXPECT_EQ(slurp(fs::path(seq.output_dir) / lens_name),
              slurp(fs::path(par.output_dir) / lens_name))
        << lens_name;
  }
  fs::remove_all(seq.output_dir);
  fs::remove_all(par.output_dir);
}

// ---- chaos_plan axis + lens cross-validation --------------------------------

TEST(CampaignChaosPlan, CensorPresetRaisesTheTargetsCensorshipScore) {
  CampaignConfig cfg;
  cfg.name = "plans";
  cfg.n = {8};
  cfg.t = {1};
  cfg.protocols = {"reset"};
  cfg.adversaries = {"fair"};
  cfg.chaos_plan = {"none", "censor-heavy"};
  cfg.chaos.censor_target = 2;  // inherited by the presets
  cfg.trials = 8;
  cfg.budget = 300;
  cfg.lens = true;
  const CampaignResult result = run_campaign(cfg);
  ASSERT_EQ(result.cells.size(), 2u);
  ASSERT_EQ(result.cells[0].chaos_plan, "none");
  ASSERT_EQ(result.cells[1].chaos_plan, "censor-heavy");
  const lens::LatencyReport& clean = result.cells[0].lens_report;
  const lens::LatencyReport& censored = result.cells[1].lens_report;
  ASSERT_EQ(clean.n, 8);
  ASSERT_EQ(censored.n, 8);
  // Fair scheduling, no chaos: nobody scores. Under censor-heavy the
  // injected target (and only it) crosses the blame threshold — the lens
  // cross-validates the injected fault probabilities.
  EXPECT_TRUE(clean.blamed_censored.empty());
  EXPECT_EQ(clean.senders[2].censorship_score, 0.0);
  EXPECT_EQ(censored.blamed_censored, (std::vector<sim::ProcId>{2}));
  EXPECT_GT(censored.senders[2].censorship_score,
            clean.senders[2].censorship_score);
  // The summary only aggregates verdicts; chaos censorship must not break
  // agreement (it stays inside Definition 1).
  EXPECT_EQ(result.summary.agreement_violations, 0);
}

TEST(CampaignChaosPlan, PlanKeyAppearsOnlyWhenNonDefault) {
  CampaignConfig cfg = small_config();
  const CampaignCell def;
  CampaignCell cell = def;
  cell.protocol = "reset";
  cell.thresholds = "default";
  cell.adversary = "fair";
  EXPECT_EQ(campaign_cell_json(cfg, cell).find("chaos_plan"),
            std::string::npos);
  EXPECT_EQ(campaign_cell_json(cfg, cell).find("censor_target"),
            std::string::npos);
  cell.chaos_plan = "resets";
  cfg.censor_target = 1;
  const std::string json = campaign_cell_json(cfg, cell);
  EXPECT_NE(json.find("\"chaos_plan\": \"resets\""), std::string::npos);
  EXPECT_NE(json.find("\"censor_target\": 1"), std::string::npos);
}

// ---- censor_target end to end ----------------------------------------------

TEST(CampaignCensorTarget, BlamedInEveryCellLensReport) {
  CampaignConfig cfg;
  cfg.name = "censor";
  cfg.n = {8};
  cfg.t = {1};
  cfg.protocols = {"reset"};
  cfg.adversaries = {"fair"};
  cfg.censor_target = 4;
  cfg.lens = true;
  cfg.trials = 6;
  cfg.budget = 300;
  const CampaignResult result = run_campaign(cfg);
  ASSERT_EQ(result.cells.size(), 1u);
  const lens::LatencyReport& rep = result.cells[0].lens_report;
  EXPECT_EQ(rep.blamed_censored, (std::vector<sim::ProcId>{4}));
  EXPECT_TRUE(rep.blamed_equivocators.empty());
  // Censorship stays inside the acceptable-window contract: the checker
  // verdicts are clean even though the target was starved.
  EXPECT_EQ(result.summary.agreement_violations, 0);
  EXPECT_EQ(result.summary.validity_violations, 0);
}

// ---- lens artifacts + resume ------------------------------------------------

TEST(CampaignLens, ResumeKeepsSummaryBytesAndLensSidecars) {
  CampaignConfig cfg = small_config();
  cfg.lens = true;
  cfg.output_dir = fresh_dir("resume").string();
  const CampaignResult fresh = run_campaign(cfg);
  const std::string summary_path =
      (fs::path(cfg.output_dir) / "lens_summary.json").string();
  const std::string fresh_summary = slurp(summary_path);

  // Delete one cell artifact (but not its lens sidecar) and resume: the
  // missing cell recomputes, rewrites both files, and the summary bytes
  // are unchanged.
  fs::remove(fs::path(cfg.output_dir) / "lens_cell_1.json");
  CampaignConfig again = cfg;
  again.resume = true;
  const CampaignResult resumed = run_campaign(again);
  int recomputed = 0;
  for (const CampaignCell& cell : resumed.cells) {
    if (!cell.resumed) ++recomputed;
  }
  EXPECT_EQ(recomputed, 1);
  EXPECT_EQ(slurp(summary_path), fresh_summary);
  for (const CampaignCell& cell : fresh.cells) {
    EXPECT_TRUE(fs::exists(
        fs::path(cfg.output_dir) /
        ("lens_cell_" + std::to_string(cell.index) + "_lens.json")))
        << cell.index;
  }
  fs::remove_all(cfg.output_dir);
}

}  // namespace
}  // namespace aa::core
