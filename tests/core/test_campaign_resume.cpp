#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace aa::core {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> tmp_leftovers(const fs::path& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") out.push_back(entry.path().string());
  }
  return out;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("aa_campaign_" + name);
  fs::remove_all(dir);
  return dir;
}

CampaignConfig two_cell_config(const std::string& out_dir) {
  CampaignConfig cfg;
  cfg.name = "resume";
  cfg.model = CampaignModel::kWindow;
  cfg.n = {8};
  cfg.t = {1};
  cfg.protocols = {"reset"};
  cfg.thresholds = {"default"};
  cfg.memory_k = {0};
  cfg.adversaries = {"fair", "random"};
  cfg.trials = 6;
  cfg.budget = 300;
  cfg.seed = 4242;
  cfg.threads = 1;
  cfg.chunk_size = 2;
  cfg.output_dir = out_dir;
  return cfg;
}

TEST(CampaignResume, WritesArtifactsAtomicallyWithNoTmpLeftovers) {
  const fs::path dir = fresh_dir("atomic");
  const CampaignConfig cfg = two_cell_config(dir.string());
  const CampaignResult result = run_campaign(cfg);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const CampaignCell& cell : result.cells) {
    const fs::path p =
        dir / ("resume_cell_" + std::to_string(cell.index) + ".json");
    ASSERT_TRUE(fs::is_regular_file(p)) << p;
    EXPECT_EQ(read_file(p), campaign_cell_json(cfg, cell));
  }
  EXPECT_EQ(read_file(dir / "resume_summary.json"),
            campaign_summary_json(result));
  EXPECT_TRUE(tmp_leftovers(dir).empty());
  fs::remove_all(dir);
}

TEST(CampaignResume, ResumedSummaryByteIdenticalAfterPartialKill) {
  // Simulate a SIGKILL mid-sweep: keep cell 0's artifact, lose cell 1's and
  // the summary. The resumed run must restore cell 0 (no recompute) and
  // produce byte-identical cells and summary — at 1 and 8 threads.
  const fs::path dir = fresh_dir("kill");
  CampaignConfig cfg = two_cell_config(dir.string());
  const CampaignResult full = run_campaign(cfg);
  const std::string want_summary = read_file(dir / "resume_summary.json");
  const std::string want_cell0 = read_file(dir / "resume_cell_0.json");
  const std::string want_cell1 = read_file(dir / "resume_cell_1.json");

  for (const int threads : {1, 8}) {
    fs::remove(dir / "resume_cell_1.json");
    fs::remove(dir / "resume_summary.json");
    cfg.threads = threads;
    cfg.resume = true;
    const CampaignResult resumed = run_campaign(cfg);
    EXPECT_TRUE(resumed.cells[0].resumed) << "threads " << threads;
    EXPECT_FALSE(resumed.cells[1].resumed) << "threads " << threads;
    EXPECT_EQ(read_file(dir / "resume_summary.json"), want_summary)
        << "threads " << threads;
    EXPECT_EQ(read_file(dir / "resume_cell_0.json"), want_cell0);
    EXPECT_EQ(read_file(dir / "resume_cell_1.json"), want_cell1);
    EXPECT_EQ(campaign_summary_json(resumed), want_summary);
  }
  EXPECT_TRUE(tmp_leftovers(dir).empty());
  fs::remove_all(dir);
}

TEST(CampaignResume, CorruptOrTruncatedArtifactIsRecomputed) {
  const fs::path dir = fresh_dir("corrupt");
  CampaignConfig cfg = two_cell_config(dir.string());
  (void)run_campaign(cfg);
  const std::string want_summary = read_file(dir / "resume_summary.json");
  const std::string want_cell0 = read_file(dir / "resume_cell_0.json");

  // Truncate cell 0 mid-array and scribble over cell 1 entirely.
  {
    std::ofstream out(dir / "resume_cell_0.json", std::ios::binary);
    out << want_cell0.substr(0, want_cell0.find("\"decided_runs\""));
  }
  {
    std::ofstream out(dir / "resume_cell_1.json", std::ios::binary);
    out << "not json at all";
  }
  fs::remove(dir / "resume_summary.json");

  cfg.resume = true;
  const CampaignResult resumed = run_campaign(cfg);
  EXPECT_FALSE(resumed.cells[0].resumed);
  EXPECT_FALSE(resumed.cells[1].resumed);
  EXPECT_EQ(read_file(dir / "resume_summary.json"), want_summary);
  EXPECT_EQ(read_file(dir / "resume_cell_0.json"), want_cell0);
  fs::remove_all(dir);
}

TEST(CampaignResume, StaleArtifactFromOtherConfigIsRejected) {
  // A valid artifact computed under a DIFFERENT seed must not be resumed:
  // its identity fields no longer re-serialize to the same bytes.
  const fs::path dir = fresh_dir("stale");
  CampaignConfig cfg = two_cell_config(dir.string());
  (void)run_campaign(cfg);
  const std::string fresh_summary = read_file(dir / "resume_summary.json");

  cfg.seed = 777;  // artifacts on disk are for seed 4242
  cfg.resume = true;
  const CampaignResult resumed = run_campaign(cfg);
  EXPECT_FALSE(resumed.cells[0].resumed);
  EXPECT_FALSE(resumed.cells[1].resumed);
  EXPECT_NE(read_file(dir / "resume_summary.json"), fresh_summary);
  fs::remove_all(dir);
}

TEST(CampaignResume, LensSidecarValidatedOnResume) {
  // With the lens armed, a cell artifact that restores byte-identically is
  // NOT enough: the lens numbers live only in the <name>_cell_<i>_lens.json
  // sidecar and cannot be rebuilt from the cell tallies. A missing,
  // truncated, or stale sidecar must force a recompute (which rewrites the
  // sidecar), never a silent resume with wrong lens numbers.
  const fs::path dir = fresh_dir("lens");
  CampaignConfig cfg = two_cell_config(dir.string());
  cfg.lens = true;
  (void)run_campaign(cfg);
  const std::string want_summary = read_file(dir / "resume_summary.json");
  const std::string want_lens0 = read_file(dir / "resume_cell_0_lens.json");
  const std::string want_lens1 = read_file(dir / "resume_cell_1_lens.json");

  // Control: intact sidecars resume both cells, everything byte-identical.
  cfg.resume = true;
  {
    fs::remove(dir / "resume_summary.json");
    const CampaignResult resumed = run_campaign(cfg);
    EXPECT_TRUE(resumed.cells[0].resumed);
    EXPECT_TRUE(resumed.cells[1].resumed);
    EXPECT_EQ(read_file(dir / "resume_summary.json"), want_summary);
    EXPECT_EQ(read_file(dir / "resume_cell_0_lens.json"), want_lens0);
  }

  // Missing sidecar for cell 0, truncated sidecar for cell 1 (SIGKILL
  // between the two atomic writes / a torn copy): both recompute, both
  // sidecars come back byte-identical.
  {
    fs::remove(dir / "resume_cell_0_lens.json");
    std::ofstream out(dir / "resume_cell_1_lens.json", std::ios::binary);
    out << want_lens1.substr(0, want_lens1.find("\"senders\""));
  }
  {
    const CampaignResult resumed = run_campaign(cfg);
    EXPECT_FALSE(resumed.cells[0].resumed);
    EXPECT_FALSE(resumed.cells[1].resumed);
    EXPECT_EQ(read_file(dir / "resume_cell_0_lens.json"), want_lens0);
    EXPECT_EQ(read_file(dir / "resume_cell_1_lens.json"), want_lens1);
    EXPECT_EQ(read_file(dir / "resume_summary.json"), want_summary);
  }

  // Stale sidecar: structurally complete JSON from a foreign run whose
  // identity fields (n, trials) don't match this cell. Must recompute.
  {
    std::ofstream out(dir / "resume_cell_0_lens.json", std::ios::binary);
    out << "{\n  \"n\": 4,\n  \"t\": 1,\n  \"trials\": 99,\n"
           "  \"senders\": [\n  ]\n}\n";
  }
  {
    const CampaignResult resumed = run_campaign(cfg);
    EXPECT_FALSE(resumed.cells[0].resumed);
    EXPECT_TRUE(resumed.cells[1].resumed);
    EXPECT_EQ(read_file(dir / "resume_cell_0_lens.json"), want_lens0);
  }
  EXPECT_TRUE(tmp_leftovers(dir).empty());
  fs::remove_all(dir);
}

TEST(CampaignResume, LensOffResumeIgnoresSidecars) {
  // Without the lens there is no sidecar contract: resume must not demand
  // one (and must not be confused by a stray lens file from an older
  // lens-armed run of the same name).
  const fs::path dir = fresh_dir("lensoff");
  CampaignConfig cfg = two_cell_config(dir.string());
  (void)run_campaign(cfg);
  {
    std::ofstream out(dir / "resume_cell_0_lens.json", std::ios::binary);
    out << "stray";
  }
  fs::remove(dir / "resume_summary.json");
  cfg.resume = true;
  const CampaignResult resumed = run_campaign(cfg);
  EXPECT_TRUE(resumed.cells[0].resumed);
  EXPECT_TRUE(resumed.cells[1].resumed);
  fs::remove_all(dir);
}

TEST(CampaignResume, CellTimeoutMarksFailedAndSummarySkipsIt) {
  // One cell whose trials cannot finish inside the watchdog deadline:
  // split-keeper against split inputs keeps the run undecided, so every
  // trial burns the whole 5000-window budget — far beyond 1 ms.
  const fs::path dir = fresh_dir("timeout");
  CampaignConfig cfg;
  cfg.name = "slow";
  cfg.model = CampaignModel::kWindow;
  cfg.n = {16};
  cfg.t = {2};
  cfg.protocols = {"reset"};
  cfg.thresholds = {"default"};
  cfg.memory_k = {0};
  cfg.adversaries = {"split-keeper"};
  cfg.trials = 8;
  cfg.budget = 5000;
  cfg.seed = 1;
  cfg.threads = 1;
  cfg.chunk_size = 1;
  cfg.output_dir = dir.string();
  cfg.cell_timeout_ms = 1;

  const CampaignResult result = run_campaign(cfg);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].failed);
  EXPECT_EQ(result.summary.trials, 0);  // failed cell excluded from merge
  // No artifact for the failed cell; the summary lists it.
  EXPECT_FALSE(fs::exists(dir / "slow_cell_0.json"));
  const std::string summary = read_file(dir / "slow_summary.json");
  EXPECT_NE(summary.find("\"cells_failed\": [0]"), std::string::npos)
      << summary;
  EXPECT_TRUE(tmp_leftovers(dir).empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace aa::core
