#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

TEST(MeasureOneWindow, ResetAgreementCleanUnderRandomAdversary) {
  const int n = 13;
  const int t = 2;
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      [t](std::uint64_t seed) {
        return std::make_unique<adversary::RandomWindowAdversary>(t, 0.2,
                                                                  Rng(seed));
      },
      /*trials=*/30, /*max_windows=*/100000, /*seed0=*/1000);
  EXPECT_TRUE(rep.clean()) << rep.agreement_violations << " / "
                           << rep.validity_violations;
  EXPECT_EQ(rep.trials, 30);
  EXPECT_EQ(rep.all_decided_runs, 30);  // termination in every trial
  EXPECT_GT(rep.mean_windows_to_first, 0.0);
  // Window-model reports have no chain metric.
  EXPECT_EQ(rep.mean_chain_at_decision, 0.0);
}

TEST(MeasureOneWindow, ResetAgreementCleanUnderResetStorm) {
  const int n = 13;
  const int t = 2;
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      [t](std::uint64_t seed) {
        return std::make_unique<adversary::ResetStormAdversary>(t, Rng(seed));
      },
      20, 200000, 2000);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.all_decided_runs, 20);
}

TEST(MeasureOneWindow, ViolatingSeedsRecorded) {
  // Deliberately break the threshold contract (T2 too small ⇒ premature,
  // possibly conflicting decisions) and confirm the checker CATCHES it.
  // n=8, t=1: T1=6, T2=4, T3=4 violates 2*T3 > n and T2 >= T3 + t.
  const int n = 8;
  const int t = 1;
  const protocols::Thresholds broken{6, 4, 4};
  ASSERT_FALSE(protocols::thresholds_valid(n, t, broken));
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      [t](std::uint64_t seed) {
        return std::make_unique<adversary::RandomWindowAdversary>(t, 0.0,
                                                                  Rng(seed));
      },
      40, 2000, 3000, broken);
  // With T2 = T3 = 4 out of T1 = 6 and a 4/4 split, conflicting decisions
  // occur with substantial probability within 40 trials.
  EXPECT_GT(rep.agreement_violations, 0);
  EXPECT_EQ(rep.violating_seeds.size(),
            static_cast<std::size_t>(rep.agreement_violations +
                                     rep.validity_violations));
}

TEST(MeasureOneAsync, BenOrCleanUnderCrashes) {
  const int n = 9;
  const int t = 2;
  const MeasureOneReport rep = check_measure_one_async(
      ProtocolKind::BenOr, protocols::split_inputs(n, 0.5), t,
      [](std::uint64_t seed) {
        return std::make_unique<adversary::FixedCrashScheduler>(
            std::vector<sim::ProcId>{0, 1}, Rng(seed));
      },
      15, 5'000'000, 4000);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.decided_runs, 15);
  // The async decision metric is the message-chain length; the legacy
  // mean_windows_to_first mirrors it for compatibility.
  EXPECT_GT(rep.mean_chain_at_decision, 0.0);
  EXPECT_EQ(rep.mean_chain_at_decision, rep.mean_windows_to_first);
}

TEST(MeasureOneAsync, ForgetfulCleanUnderRandomScheduler) {
  const int n = 12;
  const int t = 1;
  const MeasureOneReport rep = check_measure_one_async(
      ProtocolKind::Forgetful, protocols::split_inputs(n, 0.5), t,
      [](std::uint64_t seed) {
        return std::make_unique<adversary::RandomAsyncScheduler>(Rng(seed));
      },
      15, 5'000'000, 5000);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.all_decided_runs, 15);
}

TEST(MeasureOneWindow, SeedsAreSequentialFromSeed0) {
  // Two identical invocations give identical reports (replayability).
  auto run = [] {
    return check_measure_one_window(
        ProtocolKind::Reset, protocols::split_inputs(13, 0.5), 2,
        [](std::uint64_t seed) {
          return std::make_unique<adversary::RandomWindowAdversary>(2, 0.1,
                                                                    Rng(seed));
        },
        10, 100000, 77);
  };
  const MeasureOneReport a = run();
  const MeasureOneReport b = run();
  EXPECT_EQ(a.mean_windows_to_first, b.mean_windows_to_first);
  EXPECT_EQ(a.decided_runs, b.decided_runs);
}

}  // namespace
}  // namespace aa::core
