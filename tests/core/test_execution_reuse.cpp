// Execution-reuse bit-identity: a WorkerScratch reused across trials,
// protocols, instance sizes, and models must produce results identical to
// a fresh Execution per run (the no-scratch Runner overloads). This is the
// contract that lets CampaignContext keep one Execution per worker alive
// across an entire campaign.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/experiment.hpp"
#include "protocols/factory.hpp"
#include "sim/execution.hpp"
#include "sim/window.hpp"
#include "util/rng.hpp"

namespace aa::core {
namespace {

void expect_same(const WindowRunResult& a, const WindowRunResult& b) {
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.windows_to_first, b.windows_to_first);
  EXPECT_EQ(a.windows_total, b.windows_total);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_resets, b.total_resets);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.validity, b.validity);
}

void expect_same(const AsyncRunOutcome& a, const AsyncRunOutcome& b) {
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.chain_at_decision, b.chain_at_decision);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.hit_limit, b.hit_limit);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.validity, b.validity);
}

Experiment window_spec(protocols::ProtocolKind kind, int n, int t) {
  Experiment spec;
  spec.kind = kind;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = t;
  spec.budget = 400;
  spec.stop = StopCondition::kAllDecided;
  return spec;
}

TEST(ExecutionReuse, WindowRunsMatchFreshAcrossProtocolsAndAdversaries) {
  // ONE scratch survives the whole matrix — different n, protocols, and
  // adversaries back to back, the worst case for stale-state leaks.
  WorkerScratch scratch;
  const protocols::ProtocolKind kinds[] = {
      protocols::ProtocolKind::Reset, protocols::ProtocolKind::Forgetful,
      protocols::ProtocolKind::BenOr, protocols::ProtocolKind::Bracha};
  for (const int n : {8, 13}) {
    for (const auto kind : kinds) {
      const Runner runner(window_spec(kind, n, 1));
      for (std::uint64_t trial = 0; trial < 6; ++trial) {
        const std::uint64_t seed = 900 + trial * 37;
        adversary::RandomWindowAdversary fresh_adv(1, 0.15, Rng(seed + 5));
        adversary::RandomWindowAdversary reuse_adv(1, 0.15, Rng(seed + 5));
        const WindowRunResult fresh = runner.run_window(fresh_adv, seed);
        const WindowRunResult reused =
            runner.run_window(reuse_adv, seed, scratch);
        expect_same(reused, fresh);
      }
    }
  }
  // The reset storm drives the reset/rejoin paths the random adversary
  // rarely reaches; run it through the SAME (already dirty) scratch.
  const Runner runner(window_spec(protocols::ProtocolKind::Reset, 13, 2));
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    adversary::ResetStormAdversary fresh_adv(2, Rng(seed));
    adversary::ResetStormAdversary reuse_adv(2, Rng(seed));
    expect_same(runner.run_window(reuse_adv, seed, scratch),
                runner.run_window(fresh_adv, seed));
  }
}

TEST(ExecutionReuse, AsyncRunsMatchFreshWithSharedScratch) {
  WorkerScratch scratch;
  for (const auto kind :
       {protocols::ProtocolKind::Forgetful, protocols::ProtocolKind::BenOr}) {
    Experiment spec;
    spec.kind = kind;
    spec.inputs = protocols::split_inputs(9, 0.5);
    spec.t = 1;
    spec.budget = 6000;
    spec.stop = StopCondition::kAllDecided;
    const Runner runner(std::move(spec));
    for (std::uint64_t trial = 0; trial < 6; ++trial) {
      const std::uint64_t seed = 40 + trial;
      adversary::RandomAsyncScheduler fresh_adv(Rng(seed * 3 + 1));
      adversary::RandomAsyncScheduler reuse_adv(Rng(seed * 3 + 1));
      const AsyncRunOutcome fresh = runner.run_async(fresh_adv, seed);
      const AsyncRunOutcome reused = runner.run_async(reuse_adv, seed, scratch);
      expect_same(reused, fresh);
    }
  }
}

TEST(ExecutionReuse, ScratchSurvivesModelSwitches) {
  // Window → async → window through one scratch: the reset must not
  // leave either model's bookkeeping behind.
  WorkerScratch scratch;
  const Runner wrunner(window_spec(protocols::ProtocolKind::Reset, 8, 1));
  Experiment aspec;
  aspec.kind = protocols::ProtocolKind::BenOr;
  aspec.inputs = protocols::split_inputs(8, 0.5);
  aspec.t = 1;
  aspec.budget = 5000;
  aspec.stop = StopCondition::kAllDecided;
  const Runner arunner(std::move(aspec));

  for (std::uint64_t seed : {7ULL, 8ULL}) {
    adversary::FairWindowAdversary wf1;
    adversary::FairWindowAdversary wf2;
    expect_same(wrunner.run_window(wf2, seed, scratch),
                wrunner.run_window(wf1, seed));
    adversary::RandomAsyncScheduler af1{Rng(seed)};
    adversary::RandomAsyncScheduler af2{Rng(seed)};
    expect_same(arunner.run_async(af2, seed, scratch),
                arunner.run_async(af1, seed));
  }
}

TEST(ExecutionReuse, ResetClearsHostileMidWindowStateAndKeepsCapacity) {
  // Abandon an Execution at the nastiest possible point — mid-window, with
  // pending messages to several receivers, lazy-parked slots from a bulk
  // delivery run, a partially-consumed receiver list, a crashed processor
  // and a reset one — then reset() for a new trial. The auditor must pass
  // on the rebuilt state, grown capacities must survive, and the rebuilt
  // execution must replay a trial bit-identically to a fresh one.
  const int n = 8;
  const int t = 1;
  auto procs = [&] {
    return protocols::make_processes(protocols::ProtocolKind::Reset, t,
                                     protocols::split_inputs(n, 0.5));
  };
  sim::Execution exec(procs(), 321);
  exec.begin_window_batch();
  for (sim::ProcId p = 0; p < n; ++p) (void)exec.sending_step(p);
  std::vector<sim::ProcId> row;
  for (sim::ProcId p = 0; p < n; ++p) row.push_back(p);
  ASSERT_GT(exec.deliver_plan_row(0, row), 0);  // parks lazy slots
  const auto to1 = exec.buffer().pending_to_ids(1);
  ASSERT_GE(to1.size(), 2u);
  exec.receiving_step(to1[0]);  // receiver 1's list partially consumed
  exec.crash(2);
  exec.resetting_step(3);
  ASSERT_GT(exec.buffer().pending_count(), 0u);  // and NO end_window sweep

  const std::size_t reserve = exec.buffer().slot_reserve();
  ASSERT_GT(reserve, 0u);
  exec.reset(procs(), 654);
  EXPECT_NO_THROW(exec.audit());
  EXPECT_EQ(exec.buffer().slot_reserve(), reserve);  // allocation retained
  EXPECT_EQ(exec.buffer().slot_capacity(), 0u);      // materialized span rewound
  EXPECT_EQ(exec.buffer().pending_count(), 0u);
  EXPECT_EQ(exec.window(), 0);
  EXPECT_EQ(exec.crashed_count(), 0);
  EXPECT_EQ(exec.total_resets(), 0);

  sim::Execution fresh(procs(), 654);
  adversary::RandomWindowAdversary reuse_adv(t, 0.15, Rng(9));
  adversary::RandomWindowAdversary fresh_adv(t, 0.15, Rng(9));
  EXPECT_EQ(sim::run_until_all_decided(exec, reuse_adv, t, 200),
            sim::run_until_all_decided(fresh, fresh_adv, t, 200));
  EXPECT_EQ(exec.step_count(), fresh.step_count());
  EXPECT_EQ(exec.total_resets(), fresh.total_resets());
  for (sim::ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(exec.output(p), fresh.output(p)) << "proc " << p;
  }
  EXPECT_NO_THROW(exec.audit());
}

}  // namespace
}  // namespace aa::core
