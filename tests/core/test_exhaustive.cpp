#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "protocols/factory.hpp"

namespace aa::core {
namespace {

using protocols::Thresholds;
using protocols::canonical_thresholds;

TEST(Exhaustive, UnanimousInputsCloseImmediately) {
  // All-ones at n = 7, t = 1: every window decides 1; the reachable set
  // closes after a couple of levels and no violation exists.
  const int n = 7;
  const int t = 1;
  const auto rep = exhaustive_check(t, canonical_thresholds(n, t),
                                    protocols::unanimous_inputs(n, 1),
                                    {.max_depth = 3, .max_configs = 100000});
  EXPECT_TRUE(rep.clean());
  EXPECT_FALSE(rep.budget_exhausted);
  EXPECT_GE(rep.depth_completed, 3);
  EXPECT_GT(rep.transitions, 0);
}

TEST(Exhaustive, SplitInputsSafeAtDepthTwo) {
  // EVERY execution of the §3 algorithm over 2 windows from a 4/3 split at
  // n = 7 keeps agreement and validity — exhaustively verified over all
  // S, R, and coin choices.
  const int n = 7;
  const int t = 1;
  const auto rep = exhaustive_check(t, canonical_thresholds(n, t),
                                    protocols::split_inputs(n, 4.0 / 7), t ==
                                    1 ? ExhaustiveOptions{.max_depth = 2,
                                                          .max_configs =
                                                              150000}
                                      : ExhaustiveOptions{});
  EXPECT_TRUE(rep.clean()) << "configs=" << rep.configs_explored;
  EXPECT_GE(rep.depth_completed, 2);
  EXPECT_GT(rep.configs_explored, 10);
}

TEST(Exhaustive, ValidityJudgedAgainstInputs) {
  // All-zero inputs: any reachable 1-output would be a validity violation;
  // exhaustively there is none.
  const int n = 7;
  const int t = 1;
  const auto rep = exhaustive_check(t, canonical_thresholds(n, t),
                                    protocols::unanimous_inputs(n, 0),
                                    {.max_depth = 3, .max_configs = 100000});
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_FALSE(rep.violation.has_value());
}

TEST(Exhaustive, DetectsAgreementViolationFromCraftedStart) {
  // Broken thresholds T2 = T3 (violating T2 >= T3 + t): start from a
  // configuration where one processor has already decided 0 but the votes
  // now favour 1. One window pushes others to decide 1 — the checker must
  // find the conflicting configuration.
  const int n = 7;
  const int t = 1;
  const Thresholds broken{5, 4, 4};  // valid 2*T3 > n, broken T2 >= T3 + t
  AbstractConfig start;
  start.x = {0, 1, 1, 1, 1, 1, 1};
  start.out = {0, -1, -1, -1, -1, -1, -1};
  const auto rep = exhaustive_check_from(t, broken, start, {true, true},
                                         {.max_depth = 1,
                                          .max_configs = 100000});
  EXPECT_FALSE(rep.agreement_ok);
  ASSERT_TRUE(rep.violation.has_value());
  bool has0 = false;
  bool has1 = false;
  for (int o : rep.violation->out) {
    if (o == 0) has0 = true;
    if (o == 1) has1 = true;
  }
  EXPECT_TRUE(has0 && has1);
}

TEST(Exhaustive, DetectsValidityViolationWithRestrictedValues) {
  // Same machinery, validity direction: declare 1 an invalid output and
  // start from an all-ones configuration — the first deciding window
  // violates.
  const int n = 7;
  const int t = 1;
  const auto th = canonical_thresholds(n, t);
  const auto rep = exhaustive_check_from(
      t, th, initial_config(protocols::unanimous_inputs(n, 1)),
      {true, false}, {.max_depth = 1, .max_configs = 10000});
  EXPECT_FALSE(rep.validity_ok);
  EXPECT_TRUE(rep.violation.has_value());
}

TEST(Exhaustive, BudgetCapReported) {
  const int n = 8;
  const int t = 1;
  const auto rep = exhaustive_check(t, canonical_thresholds(n, t),
                                    protocols::split_inputs(n, 0.5),
                                    {.max_depth = 4, .max_configs = 50});
  EXPECT_TRUE(rep.budget_exhausted);
  EXPECT_LE(rep.configs_explored, 51);
}

TEST(Exhaustive, CanonicalWindowFamilyCountsAreSane) {
  // n = 7, t = 1: |S| ∈ {6,7} → 8 delivery sets; |R| ≤ 1 → 8 reset sets.
  // From unanimity, window 1 is deterministic (no coins): transitions from
  // the root = 8 × 8 = 64.
  const int n = 7;
  const int t = 1;
  const auto rep = exhaustive_check(t, canonical_thresholds(n, t),
                                    protocols::unanimous_inputs(n, 0),
                                    {.max_depth = 1, .max_configs = 100000});
  EXPECT_EQ(rep.transitions, 64);
}

TEST(Exhaustive, RejectsNonBitInputs) {
  EXPECT_THROW((void)exhaustive_check(1, canonical_thresholds(7, 1),
                                      {0, 1, 2, 0, 1, 0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aa::core
