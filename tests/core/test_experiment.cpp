// core::Experiment + core::Runner — the declarative experiment API — and
// its equivalence with the legacy run_*_experiment wrappers.
#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/harness.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

Experiment window_spec(int n, std::int64_t budget,
                       StopCondition stop = StopCondition::kFirstDecision) {
  Experiment spec;
  spec.kind = ProtocolKind::Reset;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = 2;
  spec.budget = budget;
  spec.stop = stop;
  return spec;
}

TEST(Runner, WindowMatchesLegacyWrapper) {
  const Runner runner(window_spec(13, 100000, StopCondition::kAllDecided));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    adversary::FairWindowAdversary fair_a;
    adversary::FairWindowAdversary fair_b;
    const WindowRunResult a = runner.run_window(fair_a, seed);
    const WindowRunResult b = run_window_experiment(
        ProtocolKind::Reset, protocols::split_inputs(13, 0.5), 2, fair_b,
        100000, seed, std::nullopt, /*until_all_decided=*/true);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.all_decided, b.all_decided);
    EXPECT_EQ(a.decision, b.decision);
    EXPECT_EQ(a.windows_to_first, b.windows_to_first);
    EXPECT_EQ(a.windows_total, b.windows_total);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.agreement, b.agreement);
    EXPECT_EQ(a.validity, b.validity);
  }
}

TEST(Runner, AsyncMatchesLegacyWrapper) {
  Experiment spec;
  spec.kind = ProtocolKind::BenOr;
  spec.inputs = protocols::split_inputs(9, 0.5);
  spec.t = 2;
  spec.budget = 5'000'000;
  const Runner runner(std::move(spec));
  adversary::RandomAsyncScheduler sched_a(Rng(3));
  adversary::RandomAsyncScheduler sched_b(Rng(3));
  const AsyncRunOutcome a = runner.run_async(sched_a, 13);
  const AsyncRunOutcome b = run_async_experiment(
      ProtocolKind::BenOr, protocols::split_inputs(9, 0.5), 2, sched_b,
      5'000'000, 13);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.chain_at_decision, b.chain_at_decision);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.validity, b.validity);
}

TEST(Runner, ByzantineMatchesLegacyWrapper) {
  Experiment spec = window_spec(13, 100000);
  spec.byzantine = ByzantineSpec{2, protocols::ByzantineStrategy::Equivocate,
                                 {12}};
  const Runner runner(std::move(spec));
  adversary::FairWindowAdversary fair_a;
  adversary::FairWindowAdversary fair_b;
  const ByzantineRunResult a = runner.run_byzantine(fair_a, 7);
  const ByzantineRunResult b = run_byzantine_window_experiment(
      ProtocolKind::Reset, protocols::split_inputs(13, 0.5), 2, 2,
      protocols::ByzantineStrategy::Equivocate, fair_b, 100000, 7, {12});
  EXPECT_EQ(a.honest_decided, b.honest_decided);
  EXPECT_EQ(a.honest_all_decided, b.honest_all_decided);
  EXPECT_EQ(a.honest_agreement, b.honest_agreement);
  EXPECT_EQ(a.honest_validity, b.honest_validity);
  EXPECT_EQ(a.windows_total, b.windows_total);
}

TEST(Runner, StopConditionControlsRunLength) {
  const Runner first(window_spec(12, 100000, StopCondition::kFirstDecision));
  const Runner all(window_spec(12, 100000, StopCondition::kAllDecided));
  adversary::FairWindowAdversary fair_a;
  adversary::FairWindowAdversary fair_b;
  const WindowRunResult rf = first.run_window(fair_a, 7);
  const WindowRunResult ra = all.run_window(fair_b, 7);
  EXPECT_TRUE(rf.decided);
  EXPECT_TRUE(ra.all_decided);
  EXPECT_GE(ra.windows_total, rf.windows_total);
}

TEST(Runner, OneSpecManySeedsIsDeterministic) {
  const Runner runner(window_spec(12, 100000));
  auto run = [&](std::uint64_t seed) {
    adversary::FairWindowAdversary fair;
    return runner.run_window(fair, seed).windows_to_first;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(Runner, ValidatesSpec) {
  Experiment empty;  // no inputs
  EXPECT_THROW(Runner{empty}, std::invalid_argument);

  Experiment bad_t = window_spec(8, 10);
  bad_t.t = -1;
  EXPECT_THROW(Runner{bad_t}, std::invalid_argument);

  Experiment bad_byz = window_spec(8, 10);
  bad_byz.byzantine = ByzantineSpec{9, protocols::ByzantineStrategy::Silent,
                                    {}};
  EXPECT_THROW(Runner{bad_byz}, std::invalid_argument);
}

TEST(Runner, HonestPathsRejectByzantineSpec) {
  Experiment spec = window_spec(8, 10);
  spec.byzantine = ByzantineSpec{};
  const Runner runner(std::move(spec));
  adversary::FairWindowAdversary fair;
  EXPECT_THROW((void)runner.run_window(fair, 1), std::invalid_argument);
  adversary::RandomAsyncScheduler sched(Rng(1));
  EXPECT_THROW((void)runner.run_async(sched, 1), std::invalid_argument);
}

TEST(Runner, ByzantineHonoursThresholds) {
  // Custom thresholds must reach the Byzantine path's inner processes: a
  // count-0 Byzantine run with thresholds th is the same execution as an
  // honest all-decided run with thresholds th.
  const int n = 36;
  const int t = 2;
  const protocols::Thresholds th{n - 2 * t, n - 2 * t - 3,
                                 n - 2 * t - 3 - t};
  Experiment byz_spec;
  byz_spec.kind = ProtocolKind::Reset;
  byz_spec.inputs = protocols::split_inputs(n, 0.5);
  byz_spec.t = t;
  byz_spec.budget = 100000;
  byz_spec.thresholds = th;
  byz_spec.byzantine = ByzantineSpec{};
  adversary::FairWindowAdversary fair_a;
  const ByzantineRunResult b = Runner(byz_spec).run_byzantine(fair_a, 11);

  Experiment honest = byz_spec;
  honest.byzantine.reset();
  honest.stop = StopCondition::kAllDecided;
  adversary::FairWindowAdversary fair_b;
  const WindowRunResult w = Runner(honest).run_window(fair_b, 11);
  EXPECT_TRUE(b.honest_all_decided);
  EXPECT_EQ(b.windows_total, w.windows_total);
}

TEST(Runner, ByzantineWithDefaultSpecCountsEveryone) {
  // An unset byzantine spec means count = 0: the verdict quantifies over
  // all processors — the honest-world degenerate case.
  const Runner runner(window_spec(12, 100000));
  adversary::FairWindowAdversary fair;
  const ByzantineRunResult r = runner.run_byzantine(fair, 3);
  EXPECT_TRUE(r.honest_all_decided);
  EXPECT_EQ(r.honest_decided, 12);
  EXPECT_TRUE(r.honest_agreement);
}

}  // namespace
}  // namespace aa::core
