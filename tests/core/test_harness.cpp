#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/harness.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

TEST(WindowHarness, UnanimousFastPath) {
  adversary::FairWindowAdversary fair;
  const WindowRunResult r = run_window_experiment(
      ProtocolKind::Reset, protocols::unanimous_inputs(12, 1), 1, fair, 100,
      7);
  EXPECT_TRUE(r.decided);
  EXPECT_EQ(r.decision, 1);
  EXPECT_EQ(r.windows_to_first, 1);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(WindowHarness, UntilAllRunsLonger) {
  adversary::FairWindowAdversary fair1;
  adversary::FairWindowAdversary fair2;
  const auto inputs = protocols::split_inputs(12, 0.5);
  const WindowRunResult first = run_window_experiment(
      ProtocolKind::Reset, inputs, 1, fair1, 100000, 7, std::nullopt, false);
  const WindowRunResult all = run_window_experiment(
      ProtocolKind::Reset, inputs, 1, fair2, 100000, 7, std::nullopt, true);
  EXPECT_TRUE(first.decided);
  EXPECT_TRUE(all.all_decided);
  EXPECT_GE(all.windows_total, first.windows_total);
}

TEST(WindowHarness, RespectsMaxWindows) {
  adversary::SplitKeeperAdversary keeper;
  const WindowRunResult r = run_window_experiment(
      ProtocolKind::Reset, protocols::split_inputs(20, 0.5), 3, keeper, 2, 7);
  EXPECT_LE(r.windows_total, 2);
}

TEST(WindowHarness, DeterministicInSeed) {
  auto run = [](std::uint64_t seed) {
    adversary::FairWindowAdversary fair;
    return run_window_experiment(ProtocolKind::Reset,
                                 protocols::split_inputs(12, 0.5), 1, fair,
                                 100000, seed)
        .windows_to_first;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(WindowHarness, CustomThresholdsHonoured) {
  // Large slack (small t): a lower T2 must not break agreement.
  const int n = 36;
  const int t = 2;
  const protocols::Thresholds th{n - 2 * t, n - 2 * t - 3,
                                 n - 2 * t - 3 - t};
  adversary::FairWindowAdversary fair;
  const WindowRunResult r =
      run_window_experiment(ProtocolKind::Reset, protocols::split_inputs(n, 0.5),
                            t, fair, 100000, 11, th, true);
  EXPECT_TRUE(r.all_decided);
  EXPECT_TRUE(r.agreement);
}

TEST(AsyncHarness, BenOrRunsToDecision) {
  adversary::RandomAsyncScheduler sched(Rng(3));
  const AsyncRunOutcome r = run_async_experiment(
      ProtocolKind::BenOr, protocols::split_inputs(9, 0.5), 2, sched,
      5'000'000, 13);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_GT(r.chain_at_decision, 0);
}

TEST(AsyncHarness, ReportsStepLimit) {
  adversary::RandomAsyncScheduler sched(Rng(3));
  const AsyncRunOutcome r = run_async_experiment(
      ProtocolKind::BenOr, protocols::split_inputs(9, 0.5), 2, sched, 3, 13);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_FALSE(r.decided);
}

TEST(CheckValidity, FlagsOutputNotAmongInputs) {
  // check_validity is driven through the harness; unit-test the helper
  // against a crafted execution: every processor has input 0, then we fake
  // an output of 1 by running a unanimity-0 run (outputs must be 0) and
  // asserting validity against inputs "all ones" fails.
  adversary::FairWindowAdversary fair;
  sim::Execution exec(
      protocols::make_processes(ProtocolKind::Reset, 1,
                                protocols::unanimous_inputs(12, 0)),
      7);
  sim::run_until_all_decided(exec, fair, 1, 100);
  ASSERT_TRUE(exec.all_live_decided());
  EXPECT_TRUE(check_validity(exec, protocols::unanimous_inputs(12, 0)));
  // Against a hypothetical all-ones input vector, the 0 outputs are invalid.
  EXPECT_FALSE(check_validity(exec, protocols::unanimous_inputs(12, 1)));
}

TEST(ByzantineHarness, CrashedHonestProcessorDoesNotBlockAllDecided) {
  // Regression: the final verdict used to count a crashed honest
  // processor's kBot output as "not all decided" even though the run loop
  // (honest_done) deliberately exempts crashed processors. Crash one honest
  // processor up front; every live processor decides, so the verdict must
  // be honest_all_decided = true with n - 1 deciders.
  const int n = 13;
  const int t = 2;
  adversary::FairWindowAdversary fair;
  const ByzantineRunResult r = run_byzantine_window_experiment(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      /*byz_count=*/0, protocols::ByzantineStrategy::Silent, fair,
      /*max_windows=*/100000, /*seed=*/7, /*pre_crashed=*/{0});
  EXPECT_TRUE(r.honest_all_decided);
  EXPECT_EQ(r.honest_decided, n - 1);
  EXPECT_TRUE(r.honest_agreement);
  EXPECT_TRUE(r.honest_validity);
}

TEST(ByzantineHarness, NoPreCrashStillCountsEveryone) {
  // Companion to the regression above: with nobody crashed the verdict
  // quantifies over all n processors, same as before the fix.
  const int n = 13;
  const int t = 2;
  adversary::FairWindowAdversary fair;
  const ByzantineRunResult r = run_byzantine_window_experiment(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      /*byz_count=*/0, protocols::ByzantineStrategy::Silent, fair,
      /*max_windows=*/100000, /*seed=*/7);
  EXPECT_TRUE(r.honest_all_decided);
  EXPECT_EQ(r.honest_decided, n);
}

TEST(CheckAgreement, TrueOnAgreeingRun) {
  adversary::FairWindowAdversary fair;
  sim::Execution exec(
      protocols::make_processes(ProtocolKind::Reset, 1,
                                protocols::split_inputs(12, 0.5)),
      3);
  sim::run_until_all_decided(exec, fair, 1, 100000);
  EXPECT_TRUE(check_agreement(exec));
}

}  // namespace
}  // namespace aa::core
