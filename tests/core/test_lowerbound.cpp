#include <gtest/gtest.h>

#include <cmath>

#include "core/lowerbound.hpp"
#include "prob/talagrand.hpp"

namespace aa::core {
namespace {

TEST(Theorem5Constants, BasicShape) {
  const TheoremConstants tc = theorem5_constants(128, 1.0 / 7.0);
  EXPECT_EQ(tc.n, 128);
  EXPECT_EQ(tc.t, 18);
  EXPECT_NEAR(tc.alpha, (1.0 / 49.0) / 9.0, 1e-12);
  EXPECT_GT(tc.big_c, 0.0);
  EXPECT_GT(tc.e_windows, 0.0);
  EXPECT_GT(tc.tau, 0.0);
  EXPECT_LT(tc.tau, 1.0);
  EXPECT_GT(tc.eta, tc.tau);
}

TEST(Theorem5Constants, EGrowsExponentiallyInN) {
  const double c = 0.15;
  const TheoremConstants a = theorem5_constants(100, c);
  const TheoremConstants b = theorem5_constants(200, c);
  const TheoremConstants d = theorem5_constants(400, c);
  // log10 E is linear in n with slope α/ln(10).
  const double slope1 = b.log10_e - a.log10_e;
  const double slope2 = (d.log10_e - b.log10_e) / 2.0;
  EXPECT_NEAR(slope1 / 100.0, a.alpha / std::log(10.0), 1e-9);
  EXPECT_NEAR(slope2 / 100.0, a.alpha / std::log(10.0), 1e-9);
}

TEST(Theorem5Constants, Equation3Holds) {
  // C e^{αn} ≤ ¼ e^{(cn−1)²/8n} for every n we can check.
  const double c = 0.2;
  const TheoremConstants tc = theorem5_constants(64, c);
  for (int n = 1; n <= 2000; ++n) {
    const double lhs = std::log(tc.big_c) + tc.alpha * n;
    const double cn1 = c * n - 1.0;
    const double rhs = std::log(0.25) + cn1 * cn1 / (8.0 * n);
    EXPECT_LE(lhs, rhs + 1e-9) << "n=" << n;
  }
}

TEST(Theorem5Constants, SuccessProbabilityAtLeastHalfForLargeN) {
  // The paper's conclusion: with E = C e^{αn}, the adversary succeeds for
  // ≥ E windows with probability ≥ 1/2.
  for (double c : {0.1, 1.0 / 6.0, 0.25}) {
    const TheoremConstants tc = theorem5_constants(256, c);
    EXPECT_GE(tc.success_lb, 0.5) << "c=" << c;
  }
}

TEST(Theorem5Constants, ThresholdsMatchProbModule) {
  const TheoremConstants tc = theorem5_constants(96, 0.125);
  EXPECT_DOUBLE_EQ(tc.tau, prob::tau_threshold(tc.t, 96));
  EXPECT_DOUBLE_EQ(tc.eta, prob::eta_threshold(tc.t, 96));
}

TEST(Theorem5Constants, Validation) {
  EXPECT_THROW((void)theorem5_constants(0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)theorem5_constants(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)theorem5_constants(10, 1.0), std::invalid_argument);
}

TEST(Theorem5Constants, LargerCMeansFasterGrowth) {
  const TheoremConstants small = theorem5_constants(300, 0.05);
  const TheoremConstants large = theorem5_constants(300, 0.25);
  EXPECT_GT(large.alpha, small.alpha);
  EXPECT_GT(large.log10_e - std::log10(large.big_c),
            small.log10_e - std::log10(small.big_c));
}

}  // namespace
}  // namespace aa::core
