#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/report.hpp"
#include "util/rng.hpp"

namespace aa::core {
namespace {

/// Deterministic pseudo-verdict stream: a mix of violations, undecided
/// runs, and integer metrics, all a pure function of the trial index.
TrialVerdict verdict_for(std::uint64_t seed) {
  Rng rng(seed * 1315423911ULL + 13);
  TrialVerdict v;
  v.agreement = rng.next_double() > 0.03;
  v.validity = rng.next_double() > 0.02;
  v.decided = rng.next_double() > 0.2;
  v.all_decided = v.decided && rng.next_double() > 0.3;
  v.metric = static_cast<std::int64_t>(rng.next_u64() % 5000);
  return v;
}

void expect_reports_identical(const MeasureOneReport& a,
                              const MeasureOneReport& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_EQ(a.validity_violations, b.validity_violations);
  EXPECT_EQ(a.decided_runs, b.decided_runs);
  EXPECT_EQ(a.all_decided_runs, b.all_decided_runs);
  // Bitwise double equality is the point: the merge must be EXACT.
  EXPECT_EQ(a.mean_windows_to_first, b.mean_windows_to_first);
  EXPECT_EQ(a.mean_chain_at_decision, b.mean_chain_at_decision);
  EXPECT_EQ(a.violating_seeds, b.violating_seeds);
}

TEST(MeasureOneAccumulator, ShardedMergeMatchesSerialBitForBit) {
  const int trials = 960;
  const std::uint64_t seed0 = 7000;

  MeasureOneAccumulator serial;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    serial.add(seed, verdict_for(seed));
  }
  const MeasureOneReport serial_rep = serial.finalize();
  EXPECT_EQ(serial_rep.trials, trials);
  EXPECT_GT(serial_rep.agreement_violations + serial_rep.validity_violations,
            0)
      << "stream should contain violations or the seed-order check is vacuous";

  for (const int shards : {1, 4, 16}) {
    std::vector<MeasureOneAccumulator> parts(
        static_cast<std::size_t>(shards));
    for (int i = 0; i < trials; ++i) {
      const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
      parts[static_cast<std::size_t>(i % shards)].add(seed,
                                                      verdict_for(seed));
    }
    // Flat merge, in shard order.
    MeasureOneAccumulator flat;
    for (const auto& p : parts) flat.merge(p);
    expect_reports_identical(flat.finalize(), serial_rep);

    // Hierarchical merge (pairwise tree), and in REVERSE order: the
    // accumulator promises any merge tree over any partition.
    MeasureOneAccumulator tree;
    for (int i = shards - 1; i >= 0; --i) {
      tree.merge(parts[static_cast<std::size_t>(i)]);
    }
    expect_reports_identical(tree.finalize(), serial_rep);
  }
}

TEST(MeasureOneAccumulator, ViolatingSeedsSortedAtFinalize) {
  MeasureOneAccumulator acc;
  TrialVerdict bad;
  bad.agreement = false;
  // Out-of-order adds (as shard merges produce) must still finalize sorted.
  for (const std::uint64_t seed : {90ULL, 5ULL, 42ULL, 7ULL}) {
    acc.add(seed, bad);
  }
  const MeasureOneReport rep = acc.finalize();
  EXPECT_EQ(rep.violating_seeds,
            (std::vector<std::uint64_t>{5, 7, 42, 90}));
  EXPECT_EQ(rep.agreement_violations, 4);
}

TEST(MeasureOneAccumulator, FinalizeMeanIsExactIntegerDivision) {
  MeasureOneAccumulator acc;
  TrialVerdict v;
  v.decided = true;
  v.metric = 7;
  acc.add(1, v);
  v.metric = 10;
  acc.add(2, v);
  TrialVerdict undecided;
  undecided.decided = false;
  undecided.metric = 99999;  // must not be read
  acc.add(3, undecided);
  const MeasureOneReport rep = acc.finalize();
  EXPECT_EQ(rep.decided_runs, 2);
  EXPECT_EQ(rep.mean_windows_to_first, 17.0 / 2.0);
  EXPECT_EQ(rep.mean_chain_at_decision, 0.0);
  const MeasureOneReport async_rep = acc.finalize(/*async_metric=*/true);
  EXPECT_EQ(async_rep.mean_chain_at_decision, 17.0 / 2.0);
}

TEST(MeasureOneAccumulator, FinalizeDoesNotMutate) {
  MeasureOneAccumulator acc;
  TrialVerdict bad;
  bad.validity = false;
  acc.add(11, bad);
  const MeasureOneReport once = acc.finalize();
  const MeasureOneReport twice = acc.finalize();
  expect_reports_identical(once, twice);
}

}  // namespace
}  // namespace aa::core
