#include <gtest/gtest.h>

#include "adversary/window_adversaries.hpp"
#include "core/zsets.hpp"
#include "prob/talagrand.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"

namespace aa::core {
namespace {

using protocols::Thresholds;
using protocols::canonical_thresholds;

TEST(AbstractConfig, InitialFromInputs) {
  const AbstractConfig c = initial_config({0, 1, 1});
  EXPECT_EQ(c.n(), 3);
  EXPECT_EQ(c.x, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(c.out, (std::vector<int>{-1, -1, -1}));
  EXPECT_THROW((void)initial_config({0, 2}), std::invalid_argument);
}

TEST(EncodeConfig, AlphabetMapping) {
  AbstractConfig c;
  c.x = {0, 1, kXRejoining, 1, 0};
  c.out = {-1, -1, -1, 1, 0};
  const prob::Point p = encode_config(c);
  EXPECT_EQ(p, (prob::Point{0, 1, 2, 4, 3}));
}

TEST(ApplyAbstractWindow, UnanimousDecidesEveryone) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  const AbstractConfig c = initial_config(protocols::unanimous_inputs(n, 1));
  Rng rng(1);
  const std::vector<bool> no_r(n, false);
  const std::vector<bool> all_s(n, true);
  const AbstractConfig next = apply_abstract_window(c, no_r, all_s, th, t, rng);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(next.out[static_cast<std::size_t>(i)], 1);
    EXPECT_EQ(next.x[static_cast<std::size_t>(i)], 1);
  }
}

TEST(ApplyAbstractWindow, ResetsMarkRejoining) {
  const int n = 12;
  const int t = 2;
  const Thresholds th = canonical_thresholds(n, t);
  const AbstractConfig c = initial_config(protocols::unanimous_inputs(n, 0));
  Rng rng(1);
  std::vector<bool> in_r(n, false);
  in_r[0] = in_r[1] = true;
  const std::vector<bool> all_s(n, true);
  const AbstractConfig next = apply_abstract_window(c, in_r, all_s, th, t, rng);
  EXPECT_EQ(next.x[0], kXRejoining);
  EXPECT_EQ(next.x[1], kXRejoining);
  EXPECT_EQ(next.x[2], 0);
  // Output decided BEFORE the reset is preserved.
  EXPECT_EQ(next.out[0], 0);
}

TEST(ApplyAbstractWindow, TooFewSendersMeansNoProgress) {
  const int n = 12;
  const int t = 2;
  const Thresholds th = canonical_thresholds(n, t);  // T1 = 8
  AbstractConfig c = initial_config(protocols::unanimous_inputs(n, 1));
  // 5 processors are mid-rejoin: only 7 < T1 senders in S.
  for (int i = 0; i < 5; ++i) c.x[static_cast<std::size_t>(i)] = kXRejoining;
  Rng rng(1);
  std::vector<bool> in_s(n, false);
  for (int i = 0; i < n - t; ++i) in_s[static_cast<std::size_t>(i)] = true;
  const std::vector<bool> no_r(n, false);
  const AbstractConfig next = apply_abstract_window(c, no_r, in_s, th, t, rng);
  EXPECT_EQ(next, c);  // nothing changed
}

TEST(ApplyAbstractWindow, Validation) {
  const int n = 8;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  const AbstractConfig c = initial_config(protocols::unanimous_inputs(n, 0));
  Rng rng(1);
  std::vector<bool> small_s(n, false);  // |S| = 0
  const std::vector<bool> no_r(n, false);
  EXPECT_THROW(
      (void)apply_abstract_window(c, no_r, small_s, th, t, rng),
      std::invalid_argument);
  std::vector<bool> big_r(n, true);  // |R| = n > t
  const std::vector<bool> all_s(n, true);
  EXPECT_THROW((void)apply_abstract_window(c, big_r, all_s, th, t, rng),
               std::invalid_argument);
}

TEST(AbstractModel, MatchesRealEngineOnFairLockstep) {
  // Faithfulness cross-check (DESIGN): the abstract transition under
  // (R = ∅, S = [n]) must equal the engine's FairWindowAdversary window for
  // the deterministic unanimous case.
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  // Engine:
  sim::Execution e(protocols::make_processes(
                       protocols::ProtocolKind::Reset, t,
                       protocols::unanimous_inputs(n, 1), th),
                   5);
  adversary::FairWindowAdversary fair;
  sim::run_acceptable_window(e, fair, t);
  // Abstract:
  Rng rng(5);
  const std::vector<bool> no_r(n, false);
  const std::vector<bool> all_s(n, true);
  const AbstractConfig next = apply_abstract_window(
      initial_config(protocols::unanimous_inputs(n, 1)), no_r, all_s, th, t,
      rng);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(e.output(i), next.out[static_cast<std::size_t>(i)]);
    EXPECT_EQ(e.process(i).estimate(), next.x[static_cast<std::size_t>(i)]);
  }
}

TEST(CoinFlippers, DetectsRandomizingWindows) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);  // T1=10 T3=9
  const std::vector<bool> all_s(n, true);
  // Unanimous: deterministic, nobody flips.
  {
    const auto flips = coin_flippers(
        initial_config(protocols::unanimous_inputs(n, 1)), all_s, th);
    for (bool f : flips) EXPECT_FALSE(f);
  }
  // Even split: the first T1 votes are 6/4 — below T3, everyone flips.
  {
    const auto flips = coin_flippers(
        initial_config(protocols::split_inputs(n, 0.5)), all_s, th);
    for (bool f : flips) EXPECT_TRUE(f);
  }
  // Too few senders (everyone rejoining): no progress, no flips.
  {
    AbstractConfig c = initial_config(protocols::split_inputs(n, 0.5));
    for (int i = 0; i < n; ++i) c.x[static_cast<std::size_t>(i)] = kXRejoining;
    const auto flips = coin_flippers(c, all_s, th);
    for (bool f : flips) EXPECT_FALSE(f);
  }
}

TEST(ApplyAbstractWindowDet, CoinCallbackOnlyForFlippers) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  const std::vector<bool> all_s(n, true);
  const std::vector<bool> no_r(n, false);
  int calls = 0;
  const auto counting_coin = [&calls](int) {
    ++calls;
    return 1;
  };
  // Deterministic window: callback never invoked.
  (void)apply_abstract_window_det(
      initial_config(protocols::unanimous_inputs(n, 0)), no_r, all_s, th, t,
      counting_coin);
  EXPECT_EQ(calls, 0);
  // Randomizing window: once per processor.
  (void)apply_abstract_window_det(
      initial_config(protocols::split_inputs(n, 0.5)), no_r, all_s, th, t,
      counting_coin);
  EXPECT_EQ(calls, n);
}

TEST(ZSetEstimator, Z0MembershipExact) {
  const int n = 12;
  const int t = 1;
  const ZSetEstimator est(n, t, canonical_thresholds(n, t));
  AbstractConfig c = initial_config(protocols::split_inputs(n, 0.5));
  EXPECT_FALSE(est.in_z0(c, 0));
  EXPECT_FALSE(est.in_z0(c, 1));
  c.out[3] = 0;
  EXPECT_TRUE(est.in_z0(c, 0));
  EXPECT_FALSE(est.in_z0(c, 1));
}

TEST(ZSetEstimator, TauDefaultsToPaperValue) {
  const int n = 24;
  const int t = 3;
  const ZSetEstimator est(n, t, canonical_thresholds(n, t));
  EXPECT_DOUBLE_EQ(est.tau(), prob::tau_threshold(t, n));
}

TEST(ZSetEstimator, UnanimousConfigIsDeepInItsZk) {
  // All-ones undecided configuration: one canonical window decides 1 with
  // probability 1, so it belongs to Z^1_1 and (inductively) Z^k_1.
  const int n = 12;
  const int t = 1;
  const ZSetEstimator est(n, t, canonical_thresholds(n, t));
  const AbstractConfig c = initial_config(protocols::unanimous_inputs(n, 1));
  Rng rng(9);
  EXPECT_NEAR(est.prob_reach_z(c, 1, 1, 50, rng), 1.0, 1e-12);
  EXPECT_TRUE(est.in_zk(c, 1, 1, 50, rng));
  EXPECT_TRUE(est.in_zk(c, 1, 2, 20, rng));
  // And certainly not in Z^1_0.
  EXPECT_FALSE(est.in_zk(c, 0, 1, 50, rng));
}

TEST(SampleReachable, ProducesValidConfigs) {
  const int n = 10;
  const int t = 1;
  Rng rng(3);
  const auto configs =
      sample_reachable_configs(n, t, canonical_thresholds(n, t), 50, 6, rng);
  EXPECT_EQ(configs.size(), 50u);
  for (const AbstractConfig& c : configs) {
    ASSERT_EQ(c.n(), n);
    int conflicting = 0;
    bool saw0 = false;
    bool saw1 = false;
    for (int o : c.out) {
      if (o == 0) saw0 = true;
      if (o == 1) saw1 = true;
    }
    if (saw0 && saw1) ++conflicting;
    EXPECT_EQ(conflicting, 0) << "reachable config with conflicting outputs";
  }
}

TEST(Separation, Z0SeparationExceedsT) {
  // Lemma 11 empirically: reachable configs that decided 0 vs decided 1
  // are > t apart. (k = 0 uses exact membership.)
  const int n = 12;
  const int t = 1;
  Rng rng(11);
  const SeparationReport rep = measure_separation(
      n, t, canonical_thresholds(n, t), /*k=*/0, /*config_samples=*/400,
      /*mc_samples=*/1, rng);
  ASSERT_GT(rep.z0_count, 0);
  ASSERT_GT(rep.z1_count, 0);
  EXPECT_GT(rep.min_distance, t);
  EXPECT_TRUE(rep.satisfies_lemma);
}

TEST(Separation, Z1SeparationExceedsT) {
  const int n = 12;
  const int t = 1;
  Rng rng(13);
  const SeparationReport rep = measure_separation(
      n, t, canonical_thresholds(n, t), /*k=*/1, /*config_samples=*/150,
      /*mc_samples=*/40, rng);
  if (rep.z0_count > 0 && rep.z1_count > 0) {
    EXPECT_GT(rep.min_distance, t) << "z0=" << rep.z0_count
                                   << " z1=" << rep.z1_count;
  }
  EXPECT_TRUE(rep.satisfies_lemma);
}

}  // namespace
}  // namespace aa::core
