// Integration: cross-model and cross-protocol behaviours the paper calls
// out — the §1/§3 contrasts that the T2/F4 experiments tabulate.
#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/harness.hpp"
#include "protocols/committee.hpp"
#include "util/stats.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

TEST(CrossModel, ResetToleratesResetStormButBenOrMayNot) {
  // The §3 algorithm recovers from per-window resets; Ben-Or (restarting at
  // round 1 on reset) has no rejoin path — its reset runs should on average
  // take far longer or fail to finish within the horizon.
  const int n = 14;
  const int t = 2;
  const std::int64_t horizon = 4000;
  int reset_done = 0;
  int benor_done = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    {
      adversary::ResetStormAdversary storm(t, Rng(seed));
      const auto r = run_window_experiment(ProtocolKind::Reset,
                                           protocols::split_inputs(n, 0.5), t,
                                           storm, horizon, seed);
      if (r.decided) ++reset_done;
      EXPECT_TRUE(r.agreement);
    }
    {
      adversary::ResetStormAdversary storm(t, Rng(seed));
      const auto r = run_window_experiment(ProtocolKind::BenOr,
                                           protocols::split_inputs(n, 0.5), t,
                                           storm, horizon, seed);
      if (r.decided) ++benor_done;
      EXPECT_TRUE(r.agreement);  // safety can survive; liveness is the issue
    }
  }
  EXPECT_EQ(reset_done, 8);
  EXPECT_LT(benor_done, 8);  // at least one stall within the horizon
}

TEST(CrossModel, SplitKeeperIsLegalInBothModels) {
  // The §3 adversary needs no resets/crashes — the same strategy stalls the
  // window model (strongly adaptive) and the async model (t-crash, t=0!).
  // At n = 24 the per-round escape probability is ≈ 2·P[Bin(24) ≤ 3] ≈ 0.002,
  // so a 50-round horizon essentially never decides (seeds are fixed, so
  // this is a deterministic regression pin, not a flaky assertion).
  const int n = 24;
  const int t = 3;
  {
    adversary::SplitKeeperAdversary keeper;
    const auto r = run_window_experiment(ProtocolKind::Reset,
                                         protocols::split_inputs(n, 0.5), t,
                                         keeper, 50, 3);
    EXPECT_FALSE(r.decided);
  }
  {
    // Forgetful's T1 = n − t leaves the async split-keeper less slack per
    // round than the window model's T1 = n − 2t, so its per-round escape
    // probability is larger; pin a shorter horizon here (the exponential
    // scaling itself is measured in bench_f5_crash_lower_bound).
    adversary::AsyncSplitKeeper keeper;
    const auto r = run_async_experiment(ProtocolKind::Forgetful,
                                        protocols::split_inputs(n, 0.5), t,
                                        keeper, 8 * n * n, 3);
    EXPECT_FALSE(r.decided);
  }
}

TEST(CrossModel, ChainLengthTracksRoundsForForgetful) {
  // In the async model with full communication, each round extends every
  // chain by ~2 (the vote plus its trigger): chain length at decision must
  // grow with the number of rounds, giving Theorem 17 its metric.
  const int n = 12;
  const int t = 1;
  adversary::RandomAsyncScheduler sched(Rng(5));
  const auto r = run_async_experiment(ProtocolKind::Forgetful,
                                      protocols::split_inputs(n, 0.5), t,
                                      sched, 5'000'000, 7);
  ASSERT_TRUE(r.decided);
  EXPECT_GE(r.chain_at_decision, 1);
}

TEST(CrossModel, CommitteeFastButFallible_AdaptiveFatal) {
  // §1 contrast, both directions, in one test.
  Rng rng(11);
  const int n = 512;
  const int t = 128;
  protocols::CommitteeParams nonadaptive;
  nonadaptive.n = n;
  nonadaptive.t = t;
  nonadaptive.adaptive_adversary = false;
  protocols::CommitteeParams adaptive = nonadaptive;
  adaptive.adaptive_adversary = true;

  int na_success = 0;
  int a_success = 0;
  RunningStats na_rounds;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const auto na = protocols::run_committee_agreement(
        nonadaptive, protocols::split_inputs(n, 0.5), rng);
    if (na.success) {
      ++na_success;
      na_rounds.add(na.rounds);
    }
    const auto a = protocols::run_committee_agreement(
        adaptive, protocols::split_inputs(n, 0.5), rng);
    if (a.success) ++a_success;
  }
  EXPECT_GT(na_success, trials * 2 / 3);  // usually fine non-adaptively
  EXPECT_EQ(a_success, 0);                // always dead adaptively
  // Polylog rounds: for n = 512 expect tens, not hundreds.
  EXPECT_LT(na_rounds.mean(), 100.0);
}

TEST(CrossModel, WindowCountVsStepCountConsistency) {
  const int n = 10;
  const int t = 1;
  adversary::FairWindowAdversary fair;
  const auto r = run_window_experiment(ProtocolKind::Reset,
                                       protocols::split_inputs(n, 0.5), t,
                                       fair, 100000, 21, std::nullopt, true);
  ASSERT_TRUE(r.all_decided);
  // Each window costs n sends + up to n² receives (+ resets): steps are
  // bounded accordingly.
  EXPECT_GE(r.steps, r.windows_total * n);
  EXPECT_LE(r.steps, r.windows_total * (n + n * n + t) + n);
}

TEST(CrossModel, SameSeedSameOutcomeAcrossInvocations) {
  auto once = [] {
    adversary::SplitKeeperAdversary keeper;
    return run_window_experiment(ProtocolKind::Reset,
                                 protocols::split_inputs(14, 0.5), 2, keeper,
                                 1'000'000, 12345, std::nullopt, true);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.windows_total, b.windows_total);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace aa::core
