// Faithfulness cross-validation: the abstract lockstep model used by the
// Z-set machinery (core/zsets.hpp) must agree with the real engine running
// ResetProcess under the corresponding acceptable windows. We compare on
// DETERMINISTIC trajectories (no coin flips), where both sides are exactly
// computable, across a grid of configurations and window choices.
#include <gtest/gtest.h>

#include "adversary/window_adversaries.hpp"
#include "core/zsets.hpp"
#include "protocols/factory.hpp"
#include "protocols/reset_agreement.hpp"
#include "sim/window.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;
using protocols::Thresholds;

/// Engine-side: run `windows` acceptable windows with S = [n] \ silenced
/// (ascending-id delivery, matching the abstract model's ordering), no
/// resets.
std::pair<std::vector<int>, std::vector<int>> engine_run(
    int n, int t, const Thresholds& th, const std::vector<int>& inputs,
    const std::vector<sim::ProcId>& silenced, int windows) {
  sim::Execution e(
      protocols::make_processes(ProtocolKind::Reset, t, inputs, th), 7);
  adversary::SilencerWindowAdversary adv(silenced);
  for (int w = 0; w < windows; ++w) sim::run_acceptable_window(e, adv, t);
  std::vector<int> xs;
  std::vector<int> outs;
  for (int p = 0; p < n; ++p) {
    xs.push_back(e.process(p).estimate());
    outs.push_back(e.output(p));
  }
  return {xs, outs};
}

/// Abstract-side: same windows on the abstract configuration.
std::pair<std::vector<int>, std::vector<int>> abstract_run(
    int n, int t, const Thresholds& th, const std::vector<int>& inputs,
    const std::vector<sim::ProcId>& silenced, int windows) {
  std::vector<bool> in_s(static_cast<std::size_t>(n), true);
  for (sim::ProcId p : silenced) in_s[static_cast<std::size_t>(p)] = false;
  const std::vector<bool> no_r(static_cast<std::size_t>(n), false);
  AbstractConfig c = initial_config(inputs);
  const auto no_coin = [](int) -> int {
    ADD_FAILURE() << "trajectory was supposed to be deterministic";
    return 0;
  };
  for (int w = 0; w < windows; ++w) {
    c = apply_abstract_window_det(c, no_r, in_s, th, t, no_coin);
  }
  return {c.x, c.out};
}

struct EqCase {
  const char* label;
  int n;
  int t;
  double ones;           ///< input fraction (placed at high ids)
  std::vector<sim::ProcId> silenced;
  int windows;
};

class EquivalenceTest : public ::testing::TestWithParam<EqCase> {};

TEST_P(EquivalenceTest, EngineMatchesAbstractOnDeterministicPaths) {
  const EqCase& c = GetParam();
  const auto th = protocols::canonical_thresholds(c.n, c.t);
  const auto inputs = protocols::split_inputs(c.n, c.ones);
  // Precondition: the trajectory must be coin-free; verify via the
  // abstract model's flip indicator window by window.
  {
    std::vector<bool> in_s(static_cast<std::size_t>(c.n), true);
    for (sim::ProcId p : c.silenced) in_s[static_cast<std::size_t>(p)] = false;
    const std::vector<bool> no_r(static_cast<std::size_t>(c.n), false);
    AbstractConfig cfg = initial_config(inputs);
    for (int w = 0; w < c.windows; ++w) {
      const auto flips = coin_flippers(cfg, in_s, th);
      for (bool f : flips) ASSERT_FALSE(f) << "case is not deterministic";
      cfg = apply_abstract_window_det(cfg, no_r, in_s, th, c.t,
                                      [](int) { return 0; });
    }
  }
  const auto [ex, eo] =
      engine_run(c.n, c.t, th, inputs, c.silenced, c.windows);
  const auto [ax, ao] =
      abstract_run(c.n, c.t, th, inputs, c.silenced, c.windows);
  EXPECT_EQ(ex, ax) << c.label << ": estimates diverge";
  EXPECT_EQ(eo, ao) << c.label << ": outputs diverge";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EquivalenceTest,
    ::testing::Values(
        // Unanimous: decides in window 1 everywhere.
        EqCase{"unanimous0", 12, 1, 0.0, {}, 2},
        EqCase{"unanimous1", 12, 1, 1.0, {}, 2},
        EqCase{"unanimous_silenced", 12, 1, 1.0, {3}, 2},
        // Tiny minority: deterministically absorbed, then decided.
        EqCase{"near_unanimous", 13, 2, 1.0 / 13, {}, 3},
        EqCase{"near_unanimous_silenced", 13, 2, 1.0 / 13, {0, 1}, 3},
        // Larger instance, minority under T1 - T3.
        EqCase{"n19_small_minority", 19, 3, 2.0 / 19, {}, 3},
        EqCase{"n19_silenced", 19, 3, 2.0 / 19, {4, 9, 14}, 3}),
    [](const ::testing::TestParamInfo<EqCase>& info) {
      return info.param.label;
    });

TEST(Equivalence, ResetPathMatchesToo) {
  // One reset round-trip, deterministic inputs: engine resets processor 0
  // at the end of window 1 (scripted), abstract model applies R = {0}.
  const int n = 13;
  const int t = 2;
  const auto th = protocols::canonical_thresholds(n, t);
  const auto inputs = protocols::unanimous_inputs(n, 1);

  // Engine.
  class OneResetAdversary final : public sim::WindowAdversary {
   public:
    sim::PlanDecision plan_window_into(const sim::Execution& exec,
                                       const sim::WindowBatch&,
                                       sim::WindowPlan& plan) override {
      plan.reset(exec.n());
      std::vector<sim::ProcId> everyone;
      for (int i = 0; i < exec.n(); ++i) everyone.push_back(i);
      plan.delivery_order.assign(static_cast<std::size_t>(exec.n()),
                                 everyone);
      if (exec.window() == 0) plan.resets = {0};
      return sim::PlanDecision::kUpdated;
    }
    [[nodiscard]] std::string name() const override { return "one-reset"; }
  };
  sim::Execution e(
      protocols::make_processes(ProtocolKind::Reset, t, inputs, th), 3);
  OneResetAdversary adv;
  sim::run_acceptable_window(e, adv, t);  // window 0: all decide 1; reset 0
  sim::run_acceptable_window(e, adv, t);  // window 1: 0 rejoins

  // Abstract.
  AbstractConfig c = initial_config(inputs);
  std::vector<bool> in_s(static_cast<std::size_t>(n), true);
  std::vector<bool> r0(static_cast<std::size_t>(n), false);
  r0[0] = true;
  const std::vector<bool> no_r(static_cast<std::size_t>(n), false);
  const auto no_coin = [](int) { return 0; };
  c = apply_abstract_window_det(c, r0, in_s, th, t, no_coin);
  c = apply_abstract_window_det(c, no_r, in_s, th, t, no_coin);

  for (int p = 0; p < n; ++p) {
    EXPECT_EQ(e.output(p), c.out[static_cast<std::size_t>(p)]) << "proc " << p;
    EXPECT_EQ(e.process(p).estimate(), c.x[static_cast<std::size_t>(p)])
        << "proc " << p;
  }
}

}  // namespace
}  // namespace aa::core
