// Integration: measure-one correctness & termination (Definitions 2 & 3)
// for every protocol under its intended adversary class, Monte-Carlo over
// many seeds. These are the headline Theorem 4 checks.
#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

struct WindowCase {
  const char* label;
  int n;
  int t;
  double ones;
};

class ResetMeasureOneTest : public ::testing::TestWithParam<WindowCase> {};

TEST_P(ResetMeasureOneTest, CleanUnderRandomWindows) {
  const WindowCase wc = GetParam();
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Reset, protocols::split_inputs(wc.n, wc.ones), wc.t,
      [&wc](std::uint64_t seed) {
        return std::make_unique<adversary::RandomWindowAdversary>(wc.t, 0.25,
                                                                  Rng(seed));
      },
      /*trials=*/15, /*max_windows=*/300000, /*seed0=*/9000);
  EXPECT_TRUE(rep.clean()) << wc.label;
  EXPECT_EQ(rep.all_decided_runs, 15) << wc.label << ": termination failed";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResetMeasureOneTest,
    ::testing::Values(WindowCase{"n7_t1_split", 7, 1, 0.5},
                      WindowCase{"n13_t2_split", 13, 2, 0.5},
                      WindowCase{"n13_t2_skew", 13, 2, 0.25},
                      WindowCase{"n19_t3_split", 19, 3, 0.5},
                      WindowCase{"n19_t3_ones", 19, 3, 1.0},
                      WindowCase{"n25_t4_zeros", 25, 4, 0.0}),
    [](const ::testing::TestParamInfo<WindowCase>& info) {
      return info.param.label;
    });

TEST(MeasureOne, ResetSurvivesSplitKeeperEventually) {
  // Even the exponential-time adversary cannot prevent termination forever
  // (measure one termination); at n = 12 the wait is affordable.
  const int n = 12;
  const int t = 1;
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      [](std::uint64_t) {
        return std::make_unique<adversary::SplitKeeperAdversary>();
      },
      10, 1'000'000, 100);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.all_decided_runs, 10);
}

TEST(MeasureOne, ResetSurvivesSilencerForever) {
  // A fixed t-set silenced for the whole run: the classical crash schedule.
  const int n = 13;
  const int t = 2;
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
      [](std::uint64_t) {
        return std::make_unique<adversary::SilencerWindowAdversary>(
            std::vector<sim::ProcId>{0, 1});
      },
      15, 300000, 200);
  EXPECT_TRUE(rep.clean());
  // The SILENCED processors still hear everything and decide; all 13 finish.
  EXPECT_EQ(rep.all_decided_runs, 15);
}

TEST(MeasureOne, BrachaCleanUnderFairWindows) {
  const int n = 10;
  const int t = 3;
  const MeasureOneReport rep = check_measure_one_window(
      ProtocolKind::Bracha, protocols::split_inputs(n, 0.5), t,
      [](std::uint64_t) {
        return std::make_unique<adversary::FairWindowAdversary>();
      },
      10, 500000, 300);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.all_decided_runs, 10);
}

TEST(MeasureOne, BenOrCleanUnderCrashSchedules) {
  const int n = 11;
  const int t = 3;
  const MeasureOneReport rep = check_measure_one_async(
      ProtocolKind::BenOr, protocols::split_inputs(n, 0.5), t,
      [n, t](std::uint64_t seed) {
        // Crash a random t-subset at random times via seed-derived choices.
        Rng r(seed);
        std::vector<sim::ProcId> victims;
        while (static_cast<int>(victims.size()) < t) {
          const auto v = static_cast<sim::ProcId>(r.uniform_index(
              static_cast<std::size_t>(n)));
          bool dup = false;
          for (sim::ProcId u : victims) dup = dup || (u == v);
          if (!dup) victims.push_back(v);
        }
        return std::make_unique<adversary::FixedCrashScheduler>(victims,
                                                                Rng(seed));
      },
      12, 5'000'000, 400);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.all_decided_runs, 12);
}

TEST(MeasureOne, ForgetfulCleanUnderSplitKeeperShortHorizon) {
  // The split-keeper may stall decisions (that is its purpose) but must
  // never induce an agreement/validity violation.
  const int n = 16;
  const int t = 2;
  const MeasureOneReport rep = check_measure_one_async(
      ProtocolKind::Forgetful, protocols::split_inputs(n, 0.5), t,
      [](std::uint64_t) {
        return std::make_unique<adversary::AsyncSplitKeeper>();
      },
      10, 20000, 500);
  EXPECT_TRUE(rep.clean());
}

TEST(MeasureOne, ValidityUnderUnanimityForAllProtocols) {
  for (const ProtocolKind kind :
       {ProtocolKind::Reset, ProtocolKind::Bracha}) {
    for (int v = 0; v <= 1; ++v) {
      const int n = 10;
      const int t = kind == ProtocolKind::Reset ? 1 : 3;
      const MeasureOneReport rep = check_measure_one_window(
          kind, protocols::unanimous_inputs(n, v), t,
          [](std::uint64_t) {
            return std::make_unique<adversary::FairWindowAdversary>();
          },
          5, 100000, 600 + static_cast<std::uint64_t>(v));
      EXPECT_TRUE(rep.clean()) << protocols::protocol_kind_name(kind)
                               << " v=" << v;
      EXPECT_EQ(rep.all_decided_runs, 5);
    }
  }
}

}  // namespace
}  // namespace aa::core
