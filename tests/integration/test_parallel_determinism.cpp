// Satellite of the parallel-trial-engine PR: the same (seed0, trials) must
// produce a bit-identical MeasureOneReport — counts, exact floating-point
// means, and the violating_seeds vector — at every thread count, for both
// checkers and for the exhaustive explorer. This is the contract that makes
// parallel Monte-Carlo results replayable (DESIGN.md decision D3 extended
// to the merge tree: fixed chunking + in-order merge).
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"
#include "core/exhaustive.hpp"
#include "protocols/factory.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

void expect_identical(const MeasureOneReport& a, const MeasureOneReport& b,
                      int threads) {
  EXPECT_EQ(a.trials, b.trials) << "threads=" << threads;
  EXPECT_EQ(a.agreement_violations, b.agreement_violations)
      << "threads=" << threads;
  EXPECT_EQ(a.validity_violations, b.validity_violations)
      << "threads=" << threads;
  EXPECT_EQ(a.decided_runs, b.decided_runs) << "threads=" << threads;
  EXPECT_EQ(a.all_decided_runs, b.all_decided_runs) << "threads=" << threads;
  // Bit-identical, not approximately equal: the merge tree must not depend
  // on the thread count.
  EXPECT_EQ(a.mean_windows_to_first, b.mean_windows_to_first)
      << "threads=" << threads;
  EXPECT_EQ(a.mean_chain_at_decision, b.mean_chain_at_decision)
      << "threads=" << threads;
  EXPECT_EQ(a.violating_seeds, b.violating_seeds) << "threads=" << threads;
}

TEST(ParallelDeterminism, WindowCheckerBitIdenticalAcrossThreadCounts) {
  const int n = 13;
  const int t = 2;
  const auto run = [&](int threads) {
    return check_measure_one_window(
        ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
        [t](std::uint64_t seed) {
          return std::make_unique<adversary::RandomWindowAdversary>(t, 0.2,
                                                                    Rng(seed));
        },
        /*trials=*/24, /*max_windows=*/100000, /*seed0=*/1000, std::nullopt,
        ParallelConfig{.threads = threads, .chunk_size = 4});
  };
  const MeasureOneReport serial = run(1);
  EXPECT_EQ(serial.all_decided_runs, 24);
  for (const int threads : {2, 8}) {
    expect_identical(serial, run(threads), threads);
  }
}

TEST(ParallelDeterminism, WindowCheckerViolatingSeedsIdenticalAndSorted) {
  // Broken thresholds so violations actually occur (cf. test_checker's
  // ViolatingSeedsRecorded): the recorded seeds must match exactly and
  // arrive ascending at every thread count.
  const int n = 8;
  const int t = 1;
  const protocols::Thresholds broken{6, 4, 4};
  ASSERT_FALSE(protocols::thresholds_valid(n, t, broken));
  const auto run = [&](int threads) {
    return check_measure_one_window(
        ProtocolKind::Reset, protocols::split_inputs(n, 0.5), t,
        [t](std::uint64_t seed) {
          return std::make_unique<adversary::RandomWindowAdversary>(t, 0.0,
                                                                    Rng(seed));
        },
        /*trials=*/40, /*max_windows=*/2000, /*seed0=*/3000, broken,
        ParallelConfig{.threads = threads, .chunk_size = 8});
  };
  const MeasureOneReport serial = run(1);
  ASSERT_GT(serial.agreement_violations, 0);
  EXPECT_TRUE(std::is_sorted(serial.violating_seeds.begin(),
                             serial.violating_seeds.end()));
  for (const int threads : {2, 8}) {
    expect_identical(serial, run(threads), threads);
  }
}

TEST(ParallelDeterminism, AsyncCheckerBitIdenticalAcrossThreadCounts) {
  const int n = 9;
  const int t = 2;
  const auto run = [&](int threads) {
    return check_measure_one_async(
        ProtocolKind::BenOr, protocols::split_inputs(n, 0.5), t,
        [](std::uint64_t seed) {
          return std::make_unique<adversary::RandomAsyncScheduler>(Rng(seed));
        },
        /*trials=*/12, /*max_deliveries=*/5'000'000, /*seed0=*/4000,
        std::nullopt, ParallelConfig{.threads = threads, .chunk_size = 2});
  };
  const MeasureOneReport serial = run(1);
  EXPECT_EQ(serial.decided_runs, 12);
  EXPECT_GT(serial.mean_chain_at_decision, 0.0);
  // Compatibility: the async checker mirrors its chain metric into the
  // legacy field.
  EXPECT_EQ(serial.mean_chain_at_decision, serial.mean_windows_to_first);
  for (const int threads : {2, 8}) {
    expect_identical(serial, run(threads), threads);
  }
}

TEST(ParallelDeterminism, ExhaustiveReportIdenticalAcrossThreadCounts) {
  const int n = 7;
  const int t = 1;
  const auto run = [&](int threads) {
    return exhaustive_check(
        t, protocols::canonical_thresholds(n, t),
        protocols::split_inputs(n, 4.0 / 7),
        {.max_depth = 2,
         .max_configs = 150000,
         .parallel = ParallelConfig{.threads = threads}});
  };
  const ExhaustiveReport serial = run(1);
  EXPECT_TRUE(serial.clean());
  for (const int threads : {2, 8}) {
    const ExhaustiveReport par = run(threads);
    EXPECT_EQ(serial.configs_explored, par.configs_explored);
    EXPECT_EQ(serial.transitions, par.transitions);
    EXPECT_EQ(serial.depth_completed, par.depth_completed);
    EXPECT_EQ(serial.budget_exhausted, par.budget_exhausted);
    EXPECT_EQ(serial.agreement_ok, par.agreement_ok);
    EXPECT_EQ(serial.validity_ok, par.validity_ok);
  }
}

TEST(ParallelDeterminism, ExhaustiveViolationWitnessIdentical) {
  // A run that FINDS a violation must report the same first witness (the
  // same canonical-order candidate) at any thread count.
  const int n = 7;
  const int t = 1;
  const protocols::Thresholds broken{5, 4, 4};
  AbstractConfig start;
  start.x = {0, 1, 1, 1, 1, 1, 1};
  start.out = {0, -1, -1, -1, -1, -1, -1};
  const auto run = [&](int threads) {
    return exhaustive_check_from(
        t, broken, start, {true, true},
        {.max_depth = 1,
         .max_configs = 100000,
         .parallel = ParallelConfig{.threads = threads}});
  };
  const ExhaustiveReport serial = run(1);
  ASSERT_TRUE(serial.violation.has_value());
  for (const int threads : {2, 8}) {
    const ExhaustiveReport par = run(threads);
    EXPECT_EQ(serial.transitions, par.transitions);
    ASSERT_TRUE(par.violation.has_value());
    EXPECT_EQ(*serial.violation, *par.violation);
  }
}

}  // namespace
}  // namespace aa::core
