// Property-style integration sweeps (TEST_P) over protocol × adversary ×
// input grids: the invariants of Definition 2 must hold in EVERY cell.
#include <gtest/gtest.h>

#include "adversary/window_adversaries.hpp"
#include "core/harness.hpp"

namespace aa::core {
namespace {

using protocols::ProtocolKind;

enum class AdvKind { Fair, Silencer, Random, ResetStorm, SplitKeeper };

std::unique_ptr<sim::WindowAdversary> make_adversary(AdvKind kind, int t,
                                                     std::uint64_t seed) {
  switch (kind) {
    case AdvKind::Fair:
      return std::make_unique<adversary::FairWindowAdversary>();
    case AdvKind::Silencer: {
      std::vector<sim::ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(i);
      return std::make_unique<adversary::SilencerWindowAdversary>(silenced);
    }
    case AdvKind::Random:
      return std::make_unique<adversary::RandomWindowAdversary>(t, 0.2,
                                                                Rng(seed));
    case AdvKind::ResetStorm:
      return std::make_unique<adversary::ResetStormAdversary>(t, Rng(seed));
    case AdvKind::SplitKeeper:
      return std::make_unique<adversary::SplitKeeperAdversary>();
  }
  return nullptr;
}

const char* adv_name(AdvKind kind) {
  switch (kind) {
    case AdvKind::Fair: return "fair";
    case AdvKind::Silencer: return "silencer";
    case AdvKind::Random: return "random";
    case AdvKind::ResetStorm: return "resetstorm";
    case AdvKind::SplitKeeper: return "splitkeeper";
  }
  return "?";
}

struct GridCase {
  AdvKind adv;
  int n;
  int t;
  double ones;
  std::uint64_t seed;
};

std::string grid_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& g = info.param;
  return std::string(adv_name(g.adv)) + "_n" + std::to_string(g.n) + "_t" +
         std::to_string(g.t) + "_o" +
         std::to_string(static_cast<int>(g.ones * 100)) + "_s" +
         std::to_string(g.seed);
}

std::vector<GridCase> build_grid() {
  std::vector<GridCase> grid;
  const AdvKind advs[] = {AdvKind::Fair, AdvKind::Silencer, AdvKind::Random,
                          AdvKind::ResetStorm, AdvKind::SplitKeeper};
  const std::pair<int, int> sizes[] = {{7, 1}, {13, 2}, {19, 3}};
  const double fracs[] = {0.0, 0.5, 1.0};
  std::uint64_t seed = 1;
  for (AdvKind adv : advs) {
    for (auto [n, t] : sizes) {
      for (double ones : fracs) {
        grid.push_back(GridCase{adv, n, t, ones, seed++});
      }
    }
  }
  return grid;
}

class ResetGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ResetGridTest, InvariantsHoldForEveryCell) {
  const GridCase g = GetParam();
  auto adv = make_adversary(g.adv, g.t, g.seed);
  // Split-keeper on split inputs is intentionally slow: cap windows and do
  // not demand a decision there — only the safety invariants.
  const bool slow_cell = g.adv == AdvKind::SplitKeeper && g.ones == 0.5;
  const std::int64_t max_windows = slow_cell ? 3000 : 500000;
  const WindowRunResult r = run_window_experiment(
      ProtocolKind::Reset, protocols::split_inputs(g.n, g.ones), g.t, *adv,
      max_windows, g.seed, std::nullopt, /*until_all=*/true);

  EXPECT_TRUE(r.agreement) << "agreement violated";
  EXPECT_TRUE(r.validity) << "validity violated";
  if (g.ones == 0.0 && r.decided) EXPECT_EQ(r.decision, 0);
  if (g.ones == 1.0 && r.decided) EXPECT_EQ(r.decision, 1);
  if (!slow_cell) {
    EXPECT_TRUE(r.all_decided) << "termination failed within the horizon";
  }
  // Unanimity fast path: one window, no matter the adversary.
  if (g.ones == 0.0 || g.ones == 1.0) EXPECT_EQ(r.windows_to_first, 1);
}

INSTANTIATE_TEST_SUITE_P(Grid, ResetGridTest,
                         ::testing::ValuesIn(build_grid()), grid_name);

// Input-fraction sweep at fixed (n, t): validity must track the inputs and
// termination must hold everywhere under a fair adversary.
class InputFractionTest : public ::testing::TestWithParam<int> {};

TEST_P(InputFractionTest, DecidesSomeInputValue) {
  const int ones_count = GetParam();
  const int n = 12;
  const int t = 1;
  std::vector<int> inputs(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < ones_count; ++i) inputs[static_cast<std::size_t>(i)] = 1;
  adversary::FairWindowAdversary fair;
  const WindowRunResult r = run_window_experiment(
      ProtocolKind::Reset, inputs, t, fair, 500000,
      static_cast<std::uint64_t>(ones_count) + 50, std::nullopt, true);
  ASSERT_TRUE(r.all_decided);
  EXPECT_TRUE(r.validity);
  if (ones_count == 0) EXPECT_EQ(r.decision, 0);
  if (ones_count == n) EXPECT_EQ(r.decision, 1);
}

INSTANTIATE_TEST_SUITE_P(AllFractions, InputFractionTest,
                         ::testing::Range(0, 13));

}  // namespace
}  // namespace aa::core
