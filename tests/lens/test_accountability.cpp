#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"
#include "core/report.hpp"
#include "lens/accountability.hpp"
#include "lens/trace.hpp"
#include "protocols/factory.hpp"
#include "util/rng.hpp"

namespace aa::lens {
namespace {

constexpr int kN = 6;

/// Drive one synthetic trial into `trace` purely through the engine hooks,
/// as a deterministic function of `seed`: publishes (with occasional
/// same-key equivocation pairs), deliveries, suppressions, and decisions.
void synthetic_trial(WindowTrace& trace, std::uint64_t seed) {
  Rng rng(seed * 2654435761ULL + 7);
  trace.begin_trial(kN);
  for (std::int64_t w = 0; w < 4; ++w) {
    for (sim::ProcId s = 0; s < kN; ++s) {
      std::vector<sim::StagedMessage> items;
      for (sim::ProcId r = 0; r < kN; ++r) {
        sim::Message m;
        m.round = static_cast<std::int32_t>(w);
        m.kind = 1;
        m.value = static_cast<std::int32_t>(rng.next_u64() % 2);
        items.push_back({r, m});
      }
      if (rng.next_double() < 0.2) {
        // Force a same-key conflict (random bits often conflict already;
        // this makes at least one equivocation per such batch certain).
        items.back().msg.value = 1 - items.front().msg.value;
      }
      trace.on_publish(s, items, w);
      for (sim::ProcId r = 0; r < kN; ++r) {
        if (rng.next_double() < 0.8) {
          sim::Envelope env;
          env.id = w * 100 + s * 10 + r;
          env.sender = s;
          env.receiver = r;
          env.window = w;
          trace.on_deliver(env, w + static_cast<std::int64_t>(
                                        rng.next_u64() % 3),
                           w * 50 + r);
        } else {
          trace.on_suppress(s, r);
        }
      }
    }
  }
  for (sim::ProcId p = 0; p < kN; ++p) {
    if (rng.next_double() < 0.7) trace.on_decision(p, 4, 220 + p);
  }
}

std::string report_bytes(const LatencyAccumulator& acc) {
  return core::latency_report_json(acc.finalize(/*t=*/1));
}

TEST(LatencyAccumulator, ShardedMergeMatchesSerialBitForBit) {
  const int trials = 96;
  WindowTrace trace;

  LatencyAccumulator serial;
  for (int i = 0; i < trials; ++i) {
    synthetic_trial(trace, 9000 + static_cast<std::uint64_t>(i));
    serial.add(trace);
  }
  const std::string serial_bytes = report_bytes(serial);
  EXPECT_EQ(serial.trials(), trials);

  for (const int shards : {1, 4, 16}) {
    std::vector<LatencyAccumulator> parts(static_cast<std::size_t>(shards));
    for (int i = 0; i < trials; ++i) {
      synthetic_trial(trace, 9000 + static_cast<std::uint64_t>(i));
      parts[static_cast<std::size_t>(i % shards)].add(trace);
    }
    // Flat merge in shard order.
    LatencyAccumulator flat;
    for (const auto& p : parts) flat.merge(p);
    EXPECT_EQ(report_bytes(flat), serial_bytes) << shards << " shards, flat";

    // Reverse-order merge: the accumulator promises any merge tree over
    // any partition — byte-compared through the canonical JSON.
    LatencyAccumulator reverse;
    for (int i = shards - 1; i >= 0; --i) {
      reverse.merge(parts[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(report_bytes(reverse), serial_bytes)
        << shards << " shards, reversed";
  }
}

TEST(LatencyAccumulator, EmptyIsTheMergeIdentity) {
  WindowTrace trace;
  synthetic_trial(trace, 77);
  LatencyAccumulator acc;
  acc.add(trace);
  const std::string before = report_bytes(acc);
  const LatencyAccumulator empty;
  EXPECT_EQ(empty.n(), -1);
  acc.merge(empty);
  EXPECT_EQ(report_bytes(acc), before);

  LatencyAccumulator other;
  other.merge(acc);  // merging INTO empty adopts the shape and tallies
  EXPECT_EQ(report_bytes(other), before);

  const LatencyReport empty_rep = empty.finalize(0);
  EXPECT_EQ(empty_rep.n, 0);
  EXPECT_TRUE(empty_rep.senders.empty());
  EXPECT_TRUE(empty_rep.blamed_equivocators.empty());
  EXPECT_TRUE(empty_rep.blamed_censored.empty());
}

// ---- checker integration: thread-count bit-identity and zero drift ---------

core::Experiment checker_spec() {
  core::Experiment spec;
  spec.kind = protocols::ProtocolKind::Reset;
  spec.inputs = protocols::split_inputs(8, 0.5);
  spec.t = 1;
  spec.budget = 300;
  return spec;
}

core::WindowAdversaryFactory random_factory(int t) {
  return [t](std::uint64_t seed) {
    return std::make_unique<adversary::RandomWindowAdversary>(
        t, 0.1, Rng(seed * 9 + 2));
  };
}

void expect_measure_reports_identical(const core::MeasureOneReport& a,
                                      const core::MeasureOneReport& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_EQ(a.validity_violations, b.validity_violations);
  EXPECT_EQ(a.decided_runs, b.decided_runs);
  EXPECT_EQ(a.all_decided_runs, b.all_decided_runs);
  EXPECT_EQ(a.mean_windows_to_first, b.mean_windows_to_first);
  EXPECT_EQ(a.violating_seeds, b.violating_seeds);
}

TEST(LatencyAccumulator, CheckerLatencyReportBitIdenticalAcrossThreads) {
  const core::Experiment spec = checker_spec();
  const int trials = 64;
  std::string first_bytes;
  core::MeasureOneReport first_rep;
  for (const int threads : {1, 2, 8}) {
    ParallelConfig par;
    par.threads = threads;
    par.chunk_size = 8;
    core::CampaignContext ctx(par);
    LatencyAccumulator lat;
    const core::MeasureOneReport rep = core::check_measure_one_window(
        spec, random_factory(spec.t), trials, 4000, ctx, nullptr, &lat);
    ASSERT_EQ(lat.trials(), trials);
    const std::string bytes = core::latency_report_json(lat.finalize(spec.t));
    if (threads == 1) {
      first_bytes = bytes;
      first_rep = rep;
    } else {
      EXPECT_EQ(bytes, first_bytes) << "threads=" << threads;
      expect_measure_reports_identical(rep, first_rep);
    }
  }
}

TEST(LatencyAccumulator, LensNeverChangesTheMeasureOneReport) {
  const core::Experiment spec = checker_spec();
  const int trials = 48;
  for (const int threads : {1, 2, 8}) {
    ParallelConfig par;
    par.threads = threads;
    par.chunk_size = 8;
    core::CampaignContext ctx_off(par);
    const core::MeasureOneReport off = core::check_measure_one_window(
        spec, random_factory(spec.t), trials, 5000, ctx_off);
    core::CampaignContext ctx_on(par);
    LatencyAccumulator lat;
    const core::MeasureOneReport on = core::check_measure_one_window(
        spec, random_factory(spec.t), trials, 5000, ctx_on, nullptr, &lat);
    expect_measure_reports_identical(off, on);
  }
}

TEST(LatencyAccumulator, InlineTrialsProduceIdenticalBytes) {
  // The parallel-cells campaign path runs whole cells with inline trials;
  // chunk boundaries depend only on (trials, chunk_size), so the bytes
  // must match the pooled schedule exactly.
  const core::Experiment spec = checker_spec();
  const int trials = 64;
  ParallelConfig par;
  par.threads = 4;
  par.chunk_size = 8;
  core::CampaignContext pooled_ctx(par);
  LatencyAccumulator pooled_lat;
  const core::MeasureOneReport pooled = core::check_measure_one_window(
      spec, random_factory(spec.t), trials, 6000, pooled_ctx, nullptr,
      &pooled_lat);
  core::CampaignContext inline_ctx(par);
  LatencyAccumulator inline_lat;
  const core::MeasureOneReport inlined = core::check_measure_one_window(
      spec, random_factory(spec.t), trials, 6000, inline_ctx, nullptr,
      &inline_lat, /*inline_trials=*/true);
  expect_measure_reports_identical(pooled, inlined);
  EXPECT_EQ(core::latency_report_json(pooled_lat.finalize(spec.t)),
            core::latency_report_json(inline_lat.finalize(spec.t)));
}

}  // namespace
}  // namespace aa::lens
