#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/async_adversaries.hpp"
#include "adversary/censor.hpp"
#include "adversary/window_adversaries.hpp"
#include "core/experiment.hpp"
#include "lens/accountability.hpp"
#include "lens/trace.hpp"
#include "protocols/factory.hpp"
#include "sim/buffer.hpp"
#include "sim/window.hpp"
#include "util/rng.hpp"

namespace aa::lens {
namespace {

core::Experiment window_spec(int n, int t, bool lens = true) {
  core::Experiment spec;
  spec.kind = protocols::ProtocolKind::Reset;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = t;
  spec.budget = 400;
  spec.stop = core::StopCondition::kAllDecided;
  spec.lens = lens;
  return spec;
}

// ---- capture under a real engine run ---------------------------------------

TEST(WindowTrace, FairRunTalliesAreCleanAndComplete) {
  const int n = 8;
  const int t = 1;
  const core::Runner runner(window_spec(n, t));
  core::WorkerScratch scratch;
  adversary::FairWindowAdversary fair;
  const core::WindowRunResult r = runner.run_window(fair, 42, scratch);
  ASSERT_TRUE(r.all_decided);
  ASSERT_TRUE(scratch.trace.has_value());
  const WindowTrace& trace = *scratch.trace;

  EXPECT_EQ(trace.n(), n);
  EXPECT_EQ(trace.deciders(), n);
  for (sim::ProcId s = 0; s < n; ++s) {
    EXPECT_GT(trace.sent(s), 0) << "sender " << s;
    EXPECT_EQ(trace.equivocations(s), 0) << "sender " << s;
    // Fair delivery: nothing is ever swept away undelivered.
    EXPECT_EQ(trace.suppressed_total(s), 0) << "sender " << s;
    EXPECT_GT(trace.delivered_total(s), 0) << "sender " << s;
    // Every decider had heard every sender — full confirmation evidence.
    EXPECT_EQ(trace.confirm_count(s), n) << "sender " << s;
    EXPECT_GE(trace.decision_window(s), 0) << "proc " << s;
    for (sim::ProcId rcv = 0; rcv < n; ++rcv) {
      EXPECT_GE(trace.first_heard_window(s, rcv), 0);
      EXPECT_GE(trace.first_heard_step(s, rcv), 0);
    }
  }
}

TEST(WindowTrace, BeginTrialClearsPreviousTallies) {
  const core::Runner runner(window_spec(6, 1));
  core::WorkerScratch scratch;
  adversary::FairWindowAdversary fair;
  (void)runner.run_window(fair, 1, scratch);
  ASSERT_TRUE(scratch.trace.has_value());
  ASSERT_GT(scratch.trace->sent(0), 0);
  // Re-arming (what Runner::prepare does per trial) must zero everything.
  scratch.trace->begin_trial(6);
  for (sim::ProcId s = 0; s < 6; ++s) {
    EXPECT_EQ(scratch.trace->sent(s), 0);
    EXPECT_EQ(scratch.trace->delivered_total(s), 0);
    EXPECT_EQ(scratch.trace->suppressed_total(s), 0);
    EXPECT_EQ(scratch.trace->decision_window(s), -1);
  }
  EXPECT_EQ(scratch.trace->deciders(), 0);
}

TEST(WindowTrace, LensOffProducesIdenticalRunResult) {
  const int n = 8;
  const int t = 1;
  const core::Runner with(window_spec(n, t, /*lens=*/true));
  const core::Runner without(window_spec(n, t, /*lens=*/false));
  for (const std::uint64_t seed : {7ULL, 11ULL, 99ULL}) {
    core::WorkerScratch sa;
    core::WorkerScratch sb;
    adversary::SplitKeeperAdversary adv_a;
    adversary::SplitKeeperAdversary adv_b;
    const core::WindowRunResult a = with.run_window(adv_a, seed, sa);
    const core::WindowRunResult b = without.run_window(adv_b, seed, sb);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.all_decided, b.all_decided);
    EXPECT_EQ(a.decision, b.decision);
    EXPECT_EQ(a.windows_total, b.windows_total);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.windows_to_first, b.windows_to_first);
    EXPECT_FALSE(sb.trace.has_value());
  }
}

// ---- lens hooks vs the SoA arena (recycling + range retirement) ------------

TEST(WindowTrace, HookCountsExactUnderRecyclingAndRangeRetirement) {
  // 200 windows of n×n publication cycle through a handful of recycled
  // slots, and the O(1) id-range retirement fires at every window edge.
  // The lens must still account for every message exactly once: published
  // = delivered + suppressed, per sender and in total.
  const int n = 8;
  const int t = 1;
  WindowTrace trace;
  trace.begin_trial(n);
  sim::ExecutionConfig cfg;
  cfg.lens = &trace;
  sim::Execution e(
      protocols::make_processes(protocols::ProtocolKind::Reset, t,
                                protocols::split_inputs(n, 0.5)),
      9, cfg);
  adversary::SilencerWindowAdversary sil({0});  // sender 0 always swept
  for (int w = 0; w < 200; ++w) sim::run_acceptable_window(e, sil, t);
  ASSERT_EQ(e.buffer().pending_count(), 0u);
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t suppressed = 0;
  for (sim::ProcId s = 0; s < n; ++s) {
    sent += trace.sent(s);
    delivered += trace.delivered_total(s);
    suppressed += trace.suppressed_total(s);
    EXPECT_EQ(trace.sent(s),
              trace.delivered_total(s) + trace.suppressed_total(s))
        << "sender " << s;
  }
  EXPECT_EQ(static_cast<std::size_t>(sent), e.buffer().total_sent());
  EXPECT_EQ(static_cast<std::size_t>(delivered),
            e.buffer().delivered_count());
  EXPECT_EQ(static_cast<std::size_t>(suppressed),
            e.buffer().dropped_count());
  // The silenced sender's every message was a sweep-time suppression.
  EXPECT_EQ(trace.delivered_total(0), 0);
  EXPECT_EQ(trace.suppressed_total(0), trace.sent(0));
}

TEST(WindowTrace, SuppressHooksExactAcrossStraddlingRunsAndSpill) {
  // Buffer-level: batch runs that straddle the recycled free list, a
  // mid-window spill of the direct id index, and sweeps that retire ids
  // through BOTH tiers. on_suppress must fire exactly once per undelivered
  // message — parked (already delivered) slots swept in the same pass fire
  // nothing.
  const int n = 4;
  WindowTrace trace;
  trace.begin_trial(n);
  sim::MessageBuffer buf(n);
  buf.set_trace(&trace);
  sim::Message m;
  m.kind = 1;

  // Window 0: one run of 6; deliver 2 (parked), sweep the other 4 away.
  std::vector<sim::StagedMessage> items;
  for (int k = 0; k < 6; ++k) {
    items.push_back({static_cast<sim::ProcId>(k % n), m});
  }
  const sim::MsgId first0 = buf.add_batch(0, items, /*window=*/0, 1);
  ASSERT_NE(buf.deliver_lazy(first0, /*receiver=*/0), nullptr);
  ASSERT_NE(buf.deliver_lazy(first0 + 1, /*receiver=*/1), nullptr);
  EXPECT_EQ(buf.drop_pending_in_window(0), 4u);
  EXPECT_EQ(trace.suppressed_total(0), 4);

  // Window 1: a run of 9 straddles the 6 recycled slots + fresh growth;
  // spill the direct index mid-window so retirement goes through the
  // straggler map tier.
  items.clear();
  for (int k = 0; k < 9; ++k) {
    items.push_back({static_cast<sim::ProcId>(k % n), m});
  }
  const sim::MsgId first1 = buf.add_batch(1, items, /*window=*/1, 2);
  EXPECT_EQ(first1, 6);
  buf.spill_direct_index();
  // Parked via the straggler-map tier (the spill moved its id there).
  ASSERT_NE(buf.deliver_lazy(first1, /*receiver=*/0), nullptr);
  buf.mark_dropped(first1 + 2);                     // explicit suppression
  EXPECT_EQ(buf.drop_pending_in_window(1), 7u);
  EXPECT_EQ(buf.pending_count(), 0u);

  // Sender 0 published 6 in window 0 (2 delivered) and sender 1 published
  // 9 in window 1 (1 delivered): 4 + 8 suppressions, none double-counted
  // across the recycled slots or the two id tiers.
  EXPECT_EQ(trace.suppressed_total(0), 4);
  EXPECT_EQ(trace.suppressed_total(1), 8);
  std::int64_t suppressed = 0;
  for (sim::ProcId s = 0; s < n; ++s) suppressed += trace.suppressed_total(s);
  EXPECT_EQ(static_cast<std::size_t>(suppressed), buf.dropped_count());
}

// ---- targeted censorship ---------------------------------------------------

TEST(TargetedCensorAdversary, StaysAcceptableAndStarvesOnlyTheTarget) {
  const int n = 8;
  const int t = 1;
  const sim::ProcId target = 2;
  const core::Runner runner(window_spec(n, t));
  core::WorkerScratch scratch;
  adversary::TargetedCensorAdversary censor(
      std::make_unique<adversary::FairWindowAdversary>(), target);
  EXPECT_EQ(censor.target(), target);
  // The driver re-validates every kUpdated plan (the censor always answers
  // kUpdated), so a completed run IS the Definition-1 acceptance proof.
  const core::WindowRunResult r = runner.run_window(censor, 5, scratch);
  ASSERT_TRUE(r.decided);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  ASSERT_TRUE(scratch.trace.has_value());
  const WindowTrace& trace = *scratch.trace;
  // Fair rows have full slack, so the censor erased the target everywhere:
  // nothing from the target landed, everything else flowed untouched.
  EXPECT_EQ(trace.delivered_total(target), 0);
  EXPECT_GT(trace.suppressed_total(target), 0);
  for (sim::ProcId s = 0; s < n; ++s) {
    if (s == target) continue;
    EXPECT_GT(trace.delivered_total(s), 0) << "sender " << s;
    EXPECT_EQ(trace.suppressed_total(s), 0) << "sender " << s;
  }
}

TEST(TargetedCensorAdversary, RespectsTheFloorWhenRowsHaveNoSlack) {
  // Silencer already runs rows at the n − t floor: the censor must leave
  // such rows alone (erasing would break Definition 1), so the run still
  // validates and the target still gets through on floor rows.
  const int n = 16;  // canonical thresholds need 6t < n
  const int t = 2;
  const sim::ProcId target = 15;  // not among the silencer's silenced [0, t)
  std::vector<sim::ProcId> silenced;
  for (int i = 0; i < t; ++i) silenced.push_back(i);
  const core::Runner runner(window_spec(n, t));
  core::WorkerScratch scratch;
  adversary::TargetedCensorAdversary censor(
      std::make_unique<adversary::SilencerWindowAdversary>(silenced), target);
  const core::WindowRunResult r = runner.run_window(censor, 3, scratch);
  ASSERT_TRUE(r.decided);
  ASSERT_TRUE(scratch.trace.has_value());
  // Silencer rows are exactly the non-silenced n − t senders — no slack —
  // so the target is delivered, not suppressed.
  EXPECT_GT(scratch.trace->delivered_total(target), 0);
  EXPECT_EQ(scratch.trace->suppressed_total(target), 0);
}

// ---- blame report ground truth ---------------------------------------------

TEST(Accountability, BlamesTheInjectedCensorTarget) {
  const int n = 8;
  const int t = 1;
  const sim::ProcId target = 2;
  const core::Runner runner(window_spec(n, t));
  core::WorkerScratch scratch;
  LatencyAccumulator acc;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    adversary::TargetedCensorAdversary censor(
        std::make_unique<adversary::FairWindowAdversary>(), target);
    (void)runner.run_window(censor, seed, scratch);
    ASSERT_TRUE(scratch.trace.has_value());
    acc.add(*scratch.trace);
  }
  const LatencyReport rep = acc.finalize(t);
  ASSERT_EQ(rep.n, n);
  EXPECT_EQ(rep.blamed_censored, (std::vector<sim::ProcId>{target}));
  EXPECT_TRUE(rep.blamed_equivocators.empty());
  EXPECT_GT(rep.senders[static_cast<std::size_t>(target)].censorship_score,
            0.1);
}

TEST(Accountability, BlamesByzantineEquivocatorsExactly) {
  const int n = 16;  // canonical thresholds need 6t < n
  const int t = 2;
  const int byz = 2;  // make_byzantine_processes corrupts procs [0, byz)
  core::Experiment spec = window_spec(n, t);
  spec.byzantine = core::ByzantineSpec{
      byz, protocols::ByzantineStrategy::Equivocate, {}};
  const core::Runner runner(spec);
  core::WorkerScratch scratch;
  LatencyAccumulator acc;
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    adversary::FairWindowAdversary fair;
    (void)runner.run_byzantine(fair, seed, scratch);
    ASSERT_TRUE(scratch.trace.has_value());
    acc.add(*scratch.trace);
  }
  const LatencyReport rep = acc.finalize(t);
  EXPECT_EQ(rep.blamed_equivocators, (std::vector<sim::ProcId>{0, 1}));
  for (sim::ProcId s = byz; s < n; ++s) {
    EXPECT_EQ(rep.senders[static_cast<std::size_t>(s)].equivocations, 0)
        << "honest sender " << s;
  }
}

TEST(Accountability, FaultFreeFairRunsBlameNobody) {
  const int n = 8;
  const int t = 1;
  const core::Runner runner(window_spec(n, t));
  core::WorkerScratch scratch;
  LatencyAccumulator acc;
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    adversary::FairWindowAdversary fair;
    (void)runner.run_window(fair, seed, scratch);
    acc.add(*scratch.trace);
  }
  const LatencyReport rep = acc.finalize(t);
  EXPECT_TRUE(rep.blamed_equivocators.empty());
  EXPECT_TRUE(rep.blamed_censored.empty());
  for (const SenderLatency& row : rep.senders) {
    EXPECT_EQ(row.censorship_score, 0.0);
    EXPECT_EQ(row.delivered_share, 1.0);
    EXPECT_EQ(row.confirmed_share, 1.0);
    EXPECT_GT(row.confirm_count, 0);
  }
}

TEST(Accountability, AsyncStarvationShowsUpAsMissingConfirmations) {
  const int n = 8;
  const int t = 1;
  const sim::ProcId target = 3;
  core::Experiment spec;
  spec.kind = protocols::ProtocolKind::BenOr;
  spec.inputs = protocols::split_inputs(n, 0.5);
  spec.t = t;
  spec.budget = 4000;
  spec.stop = core::StopCondition::kAllDecided;
  spec.lens = true;
  const core::Runner runner(spec);
  core::WorkerScratch scratch;
  LatencyAccumulator acc;
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    // An effectively unbounded fairness bound: the target's messages are
    // deferred whenever ANY other delivery is pending. run_async never
    // drops messages, so the starvation evidence is confirmation shares
    // (deciders deciding before first hearing the target), not
    // suppression counts.
    adversary::StarvingAsyncScheduler starve(
        std::make_unique<adversary::RandomAsyncScheduler>(Rng(seed * 3 + 1)),
        target, /*fairness_bound=*/1 << 28);
    (void)runner.run_async(starve, seed, scratch);
    ASSERT_TRUE(scratch.trace.has_value());
    acc.add(*scratch.trace);
  }
  const LatencyReport rep = acc.finalize(t);
  ASSERT_GT(rep.deciders, 0);
  const SenderLatency& victim = rep.senders[static_cast<std::size_t>(target)];
  const SenderLatency& witness =
      rep.senders[static_cast<std::size_t>((target + 1) % n)];
  EXPECT_LT(victim.confirmed_share, witness.confirmed_share);
  EXPECT_GT(victim.censorship_score, 0.0);
  const auto& blamed = rep.blamed_censored;
  EXPECT_NE(std::find(blamed.begin(), blamed.end(), target), blamed.end())
      << "starved target should exceed the blame threshold";
}

}  // namespace
}  // namespace aa::lens
