// aa_lint self-test fixture: must produce ZERO findings.
//
// Each block below would trip a rule, but carries the rule's waiver with a
// reason — exactly the escape hatch real code uses (e.g. the Watchdog
// deadline, the atomic-write primitives). Also exercises the lexer: rule
// patterns inside comments and string literals must never fire.
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_set>

namespace fixture {

// Mentioning std::random_device or plan_window( in a comment is fine, as
// is a log string: "rand() is banned; so is std::ofstream".
inline const char* kDoc =
    "calls like time(nullptr) and fopen(path) in strings do not count";

inline long long waived_deadline() {
  // aa-lint: clock-ok(fixture: mirrors the Watchdog deadline waiver)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

struct WaivedSet {
  // aa-lint: ordered-ok(fixture: never iterated, membership checks only)
  std::unordered_set<int> members;
};

inline void waived_write(const std::string& tmp) {
  // aa-lint: write-ok(fixture: stands in for an atomic-write primitive)
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f != nullptr) std::fclose(f);
}

}  // namespace fixture
