// aa_lint self-test fixture: must trip EXACTLY the `banned-api` rule.
// plan_window( was superseded by plan_window_into( (scratch-reusing
// planning); a reintroduction must be caught.

namespace fixture {

struct Plan {};
struct Planner {
  Plan plan_window(int horizon);  // the finding: removed API resurfacing
};

}  // namespace fixture
