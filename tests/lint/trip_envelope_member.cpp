// aa_lint self-test fixture: must trip EXACTLY the `envelope-member` rule.
// Envelope views are invalidated by publication and window sweeps, so a
// raw Envelope* held in a member outlives its pointee.

namespace fixture {

struct Envelope {};

class Cache {
 private:
  Envelope* last_seen_ = nullptr;  // the finding: dangling-view member
};

}  // namespace fixture
