// aa_lint self-test fixture: must trip EXACTLY the `file-write` rule.
// Direct stream writes can be torn by a SIGKILL; artifacts must go
// through write_file_atomic / bench_json::write.
#include <fstream>
#include <string>

namespace fixture {

void dump(const std::string& path, const std::string& body) {
  std::ofstream out(path);  // the finding: non-atomic artifact write
  out << body;
}

}  // namespace fixture
