// aa_lint self-test fixture: must trip EXACTLY the `idmap-erase` rule.
// The straggler map holds only ids below the direct-index watermark; a raw
// erase outside sim/buffer.cpp cannot know direct_base_ and desyncs the
// two-tier id index.

namespace fixture {

struct MsgIdMap {
  void erase(long long id);
};

struct Leaky {
  void drop(long long id) {
    id_map_.erase(id);  // the finding: raw erase outside the buffer
  }
  MsgIdMap id_map_;
};

}  // namespace fixture
