// aa_lint self-test fixture: must trip EXACTLY the `nondeterminism` rule.
// Stands in for a src/ file that reaches for ambient randomness instead of
// the seeded util/rng streams.
#include <random>

namespace fixture {

unsigned ambient_seed() {
  std::random_device rd;  // the finding: nondeterministic seed source
  return rd();
}

}  // namespace fixture
