// aa_lint self-test fixture: must trip EXACTLY the `unordered-container`
// rule. Stands in for a src/core file whose hash-order iteration would
// leak into a report.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Tally {
  std::unordered_map<int, std::int64_t> counts;  // the finding
};

}  // namespace fixture
