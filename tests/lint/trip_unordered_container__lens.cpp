// aa_lint self-test fixture: must trip EXACTLY the `unordered-container`
// rule. Stands in for a src/lens file — the lens accumulators feed the
// byte-compared latency reports, so hash-order iteration is just as
// report-visible there as in src/core.
#include <cstdint>
#include <unordered_set>

namespace fixture {

struct TraceIndex {
  std::unordered_set<std::int64_t> seen_ids;  // the finding
};

}  // namespace fixture
