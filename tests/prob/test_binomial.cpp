#include <gtest/gtest.h>

#include <cmath>

#include "prob/binomial.hpp"

namespace aa::prob {
namespace {

TEST(LogChoose, SmallValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(log_choose(4, 0)), 1.0, 1e-12);
}

TEST(LogChoose, OutOfRangeIsMinusInfinity) {
  EXPECT_EQ(log_choose(3, 4), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(log_choose(3, -1), -std::numeric_limits<double>::infinity());
}

TEST(BinomPmf, FairCoinValues) {
  EXPECT_NEAR(binom_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binom_pmf(4, 0, 0.5), 1.0 / 16.0, 1e-12);
}

TEST(BinomPmf, SumsToOne) {
  for (double p : {0.1, 0.5, 0.93}) {
    double total = 0.0;
    for (int k = 0; k <= 20; ++k) total += binom_pmf(20, k, p);
    EXPECT_NEAR(total, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(BinomPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binom_pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binom_pmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binom_pmf(5, 5, 1.0), 1.0);
}

TEST(BinomCdf, Boundaries) {
  EXPECT_DOUBLE_EQ(binom_cdf(10, -1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binom_cdf(10, 10, 0.5), 1.0);
  EXPECT_NEAR(binom_cdf(4, 2, 0.5), (1 + 4 + 6) / 16.0, 1e-12);
}

TEST(BinomTail, ComplementsCdf) {
  for (int k = 0; k <= 12; ++k) {
    EXPECT_NEAR(binom_tail_ge(12, k, 0.3) + binom_cdf(12, k - 1, 0.3), 1.0,
                1e-9);
  }
}

TEST(BinomTail, HoeffdingDominatesExactTail) {
  const int n = 100;
  for (double eps : {0.05, 0.1, 0.2}) {
    const auto k = static_cast<std::int64_t>(std::ceil(n * (0.5 + eps)));
    EXPECT_LE(binom_tail_ge(n, k, 0.5), hoeffding_upper(n, eps) + 1e-12)
        << "eps=" << eps;
  }
}

TEST(StrongMajority, ExponentiallySmallInN) {
  // The §3 running-time mechanism: probability that n fair coins produce
  // ≥ k agreeing values, k ≈ (1/2 + c)n, decays exponentially.
  const double p16 = strong_majority_probability(16, 13);
  const double p32 = strong_majority_probability(32, 26);
  const double p64 = strong_majority_probability(64, 52);
  EXPECT_GT(p16, p32);
  EXPECT_GT(p32, p64);
  EXPECT_LT(p64, 1e-5);
  // Log-linear decay: the ratio of logs roughly doubles with n.
  EXPECT_GT(std::log(p32) / std::log(p16), 1.5);
}

TEST(StrongMajority, WeakThresholdIsCertain) {
  EXPECT_DOUBLE_EQ(strong_majority_probability(10, 5), 1.0);
}

TEST(StrongMajority, ExactSmallCase) {
  // n=3, k=2: P[#1 ≥ 2] = 4/8; doubling (either value) = 1.0.
  EXPECT_NEAR(strong_majority_probability(3, 2), 1.0, 1e-12);
  // n=3, k=3: 2 * (1/8) = 0.25.
  EXPECT_NEAR(strong_majority_probability(3, 3), 0.25, 1e-12);
}

TEST(ExpectedRounds, GeometricMean) {
  EXPECT_DOUBLE_EQ(expected_rounds_until(0.5), 2.0);
  EXPECT_DOUBLE_EQ(expected_rounds_until(1.0), 1.0);
  EXPECT_THROW((void)expected_rounds_until(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace aa::prob
