#include <gtest/gtest.h>

#include <vector>

#include "prob/dist.hpp"

namespace aa::prob {
namespace {

TEST(FiniteDist, ValidConstruction) {
  FiniteDist d({0.25, 0.75});
  EXPECT_EQ(d.alphabet_size(), 2);
  EXPECT_DOUBLE_EQ(d.p(0), 0.25);
  EXPECT_DOUBLE_EQ(d.p(1), 0.75);
}

TEST(FiniteDist, RenormalizesTinyError) {
  FiniteDist d({0.5, 0.5 - 1e-9});
  EXPECT_NEAR(d.p(0) + d.p(1), 1.0, 1e-15);
}

TEST(FiniteDist, RejectsBadInput) {
  EXPECT_THROW(FiniteDist({}), std::invalid_argument);
  EXPECT_THROW(FiniteDist({-0.1, 1.1}), std::invalid_argument);
  EXPECT_THROW(FiniteDist({0.4, 0.4}), std::invalid_argument);  // sums to 0.8
  EXPECT_THROW(FiniteDist({0.0, 0.0}), std::invalid_argument);
}

TEST(FiniteDist, PointMass) {
  const FiniteDist d = FiniteDist::point_mass(2, 4);
  EXPECT_DOUBLE_EQ(d.p(2), 1.0);
  EXPECT_DOUBLE_EQ(d.p(0), 0.0);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(d.sample(rng), 2);
}

TEST(FiniteDist, PointMassValidation) {
  EXPECT_THROW(FiniteDist::point_mass(4, 4), std::invalid_argument);
  EXPECT_THROW(FiniteDist::point_mass(-1, 4), std::invalid_argument);
}

TEST(FiniteDist, UniformIsUniform) {
  const FiniteDist d = FiniteDist::uniform(5);
  for (int s = 0; s < 5; ++s) EXPECT_DOUBLE_EQ(d.p(s), 0.2);
}

TEST(FiniteDist, BernoulliParameter) {
  const FiniteDist d = FiniteDist::bernoulli(0.3);
  EXPECT_DOUBLE_EQ(d.p(1), 0.3);
  EXPECT_DOUBLE_EQ(d.p(0), 0.7);
  EXPECT_THROW(FiniteDist::bernoulli(1.5), std::invalid_argument);
}

TEST(FiniteDist, SampleFrequenciesMatchProbabilities) {
  const FiniteDist d({0.1, 0.2, 0.7});
  Rng rng(77);
  std::vector<int> counts(3, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[static_cast<std::size_t>(d.sample(rng))];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.7, 0.01);
}

TEST(FiniteDist, SampleHandlesZeroMassSymbols) {
  const FiniteDist d({0.0, 1.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 1);
}

TEST(FiniteDist, RandomDistributionIsValid) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const FiniteDist d = FiniteDist::random(4, rng);
    double total = 0.0;
    for (int s = 0; s < 4; ++s) {
      EXPECT_GE(d.p(s), 0.0);
      total += d.p(s);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(FiniteDist, POutOfRangeThrows) {
  const FiniteDist d = FiniteDist::uniform(2);
  EXPECT_THROW((void)d.p(2), std::invalid_argument);
}

}  // namespace
}  // namespace aa::prob
