#include <gtest/gtest.h>

#include "prob/hamming.hpp"
#include "util/rng.hpp"

namespace aa::prob {
namespace {

TEST(Hamming, PointToPoint) {
  EXPECT_EQ(hamming({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(hamming({0, 1, 2}, {1, 1, 2}), 1);
  EXPECT_EQ(hamming({0, 0, 0}, {1, 1, 1}), 3);
}

TEST(Hamming, DimensionMismatchThrows) {
  EXPECT_THROW((void)hamming({0}, {0, 1}), std::invalid_argument);
}

TEST(Hamming, PointToSetTakesMinimum) {
  const std::vector<Point> A{{0, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(hamming_to_set({0, 0, 1}, A), 1);
  EXPECT_EQ(hamming_to_set({1, 1, 1}, A), 0);
  EXPECT_EQ(hamming_to_set({1, 1, 0}, A), 1);  // closer to the second point
}

TEST(Hamming, EmptySetThrows) {
  EXPECT_THROW((void)hamming_to_set({0}, {}), std::invalid_argument);
  EXPECT_THROW((void)hamming_between_sets({}, {{0}}), std::invalid_argument);
}

TEST(Hamming, SetToSetMinimum) {
  const std::vector<Point> A{{0, 0, 0, 0}};
  const std::vector<Point> B{{1, 1, 1, 1}, {0, 0, 1, 1}};
  EXPECT_EQ(hamming_between_sets(A, B), 2);
}

TEST(Hamming, SetToSetZeroOnOverlap) {
  const std::vector<Point> A{{0, 1}, {1, 0}};
  const std::vector<Point> B{{1, 0}};
  EXPECT_EQ(hamming_between_sets(A, B), 0);
}

TEST(Hamming, InBallMembership) {
  const std::vector<Point> A{{0, 0, 0, 0}};
  EXPECT_TRUE(in_ball({0, 0, 0, 0}, A, 0));
  EXPECT_TRUE(in_ball({1, 0, 0, 0}, A, 1));
  EXPECT_FALSE(in_ball({1, 1, 0, 0}, A, 1));
  EXPECT_TRUE(in_ball({1, 1, 1, 1}, A, 4));
}

TEST(Hamming, BallPredicateMatchesInBall) {
  const std::vector<Point> A{{0, 0}, {1, 1}};
  const SetPredicate pred = ball_predicate(A, 1);
  EXPECT_TRUE(pred({0, 1}));   // distance 1 from both
  EXPECT_TRUE(pred({0, 0}));   // in A
  const std::vector<Point> far{{2, 2}};
  EXPECT_EQ(hamming_to_set({2, 2}, A), 2);
  EXPECT_FALSE(pred({2, 2}));
}

// Property: triangle inequality ∆(x,z) ≤ ∆(x,y) + ∆(y,z) on random points.
TEST(Hamming, TriangleInequalityProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    Point x(8), y(8), z(8);
    for (int i = 0; i < 8; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform_int(0, 2));
      y[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform_int(0, 2));
      z[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform_int(0, 2));
    }
    EXPECT_LE(hamming(x, z), hamming(x, y) + hamming(y, z));
  }
}

// Property: ∆(A,B) ≤ ∆(a, B) for any a ∈ A.
TEST(Hamming, SetDistanceIsLowerBoundProperty) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point> A, B;
    for (int k = 0; k < 4; ++k) {
      Point a(6), b(6);
      for (int i = 0; i < 6; ++i) {
        a[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform_int(0, 1));
        b[static_cast<std::size_t>(i)] = static_cast<int>(rng.uniform_int(0, 1));
      }
      A.push_back(a);
      B.push_back(b);
    }
    const int d = hamming_between_sets(A, B);
    for (const Point& a : A) EXPECT_LE(d, hamming_to_set(a, B));
  }
}

}  // namespace
}  // namespace aa::prob
