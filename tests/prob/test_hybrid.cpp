#include <gtest/gtest.h>

#include "prob/hybrid.hpp"
#include "prob/talagrand.hpp"

namespace aa::prob {
namespace {

// Construct the textbook Lemma 14 scenario: Z0 = low-weight points,
// Z1 = high-weight points (Hamming-separated), π_n concentrated away from
// Z0, π_0 concentrated away from Z1.
struct Scenario {
  ProductSpace pi_n;
  ProductSpace pi_0;
  std::vector<Point> z0;
  std::vector<Point> z1;
};

Scenario make_scenario(int n, int z0_weight_max, int z1_weight_min) {
  // π_n: Bernoulli(0.9) per coordinate → mass on HIGH weight (avoids Z0).
  // π_0: Bernoulli(0.1) per coordinate → mass on LOW weight (avoids Z1).
  Scenario s{ProductSpace::iid(FiniteDist::bernoulli(0.9), n),
             ProductSpace::iid(FiniteDist::bernoulli(0.1), n),
             {},
             {}};
  s.pi_n.enumerate([&](const Point& x, double) {
    int w = 0;
    for (int xi : x) w += xi;
    if (w <= z0_weight_max) s.z0.push_back(x);
    if (w >= z1_weight_min) s.z1.push_back(x);
  });
  return s;
}

TEST(HybridExact, FindsEscapeDistribution) {
  const int n = 8;
  const Scenario s = make_scenario(n, 1, 7);  // separation ≥ 6 > t = 5
  const double eta = 0.25;
  const HybridResult r = find_hybrid_exact(s.pi_n, s.pi_0, s.z0, s.z1, eta);
  ASSERT_GE(r.j_star, 0);
  EXPECT_LE(r.p_z0, eta);
  EXPECT_LE(r.p_z1, eta + 1e-9);
  EXPECT_TRUE(r.lemma_satisfied);
  EXPECT_GE(r.escape, 1.0 - 2 * eta - 1e-9);
}

TEST(HybridExact, JStarIsMinimal) {
  const int n = 8;
  const Scenario s = make_scenario(n, 1, 7);
  const double eta = 0.25;
  const HybridResult r = find_hybrid_exact(s.pi_n, s.pi_0, s.z0, s.z1, eta);
  ASSERT_GT(r.j_star, 0);
  // j* − 1 must NOT satisfy the Z0 condition.
  const ProductSpace prev = ProductSpace::hybrid(s.pi_n, s.pi_0, r.j_star - 1);
  const double p_prev = prev.exact_probability([&](const Point& x) {
    return hamming_to_set(x, s.z0) == 0;
  });
  EXPECT_GT(p_prev, eta);
}

TEST(HybridExact, EndpointDistributionsBehave) {
  const int n = 8;
  const Scenario s = make_scenario(n, 1, 7);
  // π_0 = hybrid(·,·,0) avoids Z1; π_n = hybrid(·,·,n) avoids Z0.
  const double p0_z1 = s.pi_0.exact_probability(
      [&](const Point& x) { return hamming_to_set(x, s.z1) == 0; });
  const double pn_z0 = s.pi_n.exact_probability(
      [&](const Point& x) { return hamming_to_set(x, s.z0) == 0; });
  EXPECT_LT(p0_z1, 0.01);
  EXPECT_LT(pn_z0, 0.01);
}

TEST(HybridExact, JStarZeroWhenPiZeroAlreadyAvoidsBoth) {
  const int n = 6;
  // Z0 = all-ones only; π_0 (low weight) avoids it immediately.
  Scenario s = make_scenario(n, -1, 6);  // z0 empty via weight<=-1 — rebuild:
  s.z0 = {Point(static_cast<std::size_t>(n), 1)};
  s.z1 = {Point(static_cast<std::size_t>(n), 0)};
  // π_0 = Bern(0.1): P[all ones] tiny → j* = 0.
  const HybridResult r = find_hybrid_exact(s.pi_n, s.pi_0, s.z0, s.z1, 0.3);
  EXPECT_EQ(r.j_star, 0);
}

TEST(HybridMc, AgreesWithExact) {
  const int n = 8;
  const Scenario s = make_scenario(n, 1, 7);
  const double eta = 0.25;
  const HybridResult exact = find_hybrid_exact(s.pi_n, s.pi_0, s.z0, s.z1, eta);
  Rng rng(13);
  const HybridResult mc =
      find_hybrid_mc(s.pi_n, s.pi_0, s.z0, s.z1, eta, 40000, rng);
  EXPECT_NEAR(mc.p_z0, exact.p_z0, 0.02);
  EXPECT_NEAR(mc.p_z1, exact.p_z1, 0.02);
  // MC j* may differ by a step near the threshold; it must still escape.
  EXPECT_TRUE(mc.lemma_satisfied);
}

TEST(Hybrid, Validation) {
  const ProductSpace a = ProductSpace::iid(FiniteDist::uniform(2), 3);
  const ProductSpace b = ProductSpace::iid(FiniteDist::uniform(2), 4);
  const std::vector<Point> z{{0, 0, 0}};
  EXPECT_THROW((void)find_hybrid_exact(a, b, z, z, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)find_hybrid_exact(a, a, {}, z, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)find_hybrid_exact(a, a, z, z, 0.0),
               std::invalid_argument);
}

TEST(HybridPred, PredicateVariantMatchesPointListVariant) {
  const int n = 8;
  const Scenario s = make_scenario(n, 1, 7);
  const double eta = 0.25;
  const HybridResult from_lists =
      find_hybrid_exact(s.pi_n, s.pi_0, s.z0, s.z1, eta);
  const SetPredicate in_z0 = [](const Point& x) {
    int w = 0;
    for (int xi : x) w += xi;
    return w <= 1;
  };
  const SetPredicate in_z1 = [](const Point& x) {
    int w = 0;
    for (int xi : x) w += xi;
    return w >= 7;
  };
  const HybridResult from_preds =
      find_hybrid_exact_pred(s.pi_n, s.pi_0, in_z0, in_z1, eta);
  EXPECT_EQ(from_preds.j_star, from_lists.j_star);
  EXPECT_NEAR(from_preds.p_z0, from_lists.p_z0, 1e-12);
  EXPECT_NEAR(from_preds.p_z1, from_lists.p_z1, 1e-12);
}

TEST(HybridPred, McPredicateVariantWorks) {
  const int n = 8;
  const Scenario s = make_scenario(n, 1, 7);
  const SetPredicate in_z0 = [](const Point& x) {
    int w = 0;
    for (int xi : x) w += xi;
    return w <= 1;
  };
  const SetPredicate in_z1 = [](const Point& x) {
    int w = 0;
    for (int xi : x) w += xi;
    return w >= 7;
  };
  Rng rng(99);
  const HybridResult r =
      find_hybrid_mc_pred(s.pi_n, s.pi_0, in_z0, in_z1, 0.25, 30000, rng);
  EXPECT_GE(r.j_star, 0);
  EXPECT_TRUE(r.lemma_satisfied);
}

// Property: with Lemma 14's own η = e^{−(t−1)²/8n} and genuinely separated
// sets, the hybrid search always finds an escape distribution.
class HybridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HybridPropertyTest, AlwaysEscapesWithPaperEta) {
  const int n = 8;
  const int t = 5;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  // Random biased product endpoints.
  std::vector<FiniteDist> hi, lo;
  for (int i = 0; i < n; ++i) {
    hi.push_back(FiniteDist::bernoulli(0.8 + 0.15 * rng.next_double()));
    lo.push_back(FiniteDist::bernoulli(0.05 + 0.15 * rng.next_double()));
  }
  const ProductSpace pi_n{hi};
  const ProductSpace pi_0{lo};
  std::vector<Point> z0, z1;
  pi_n.enumerate([&](const Point& x, double) {
    int w = 0;
    for (int xi : x) w += xi;
    if (w <= 1) z0.push_back(x);
    if (w >= 7) z1.push_back(x);
  });
  const double eta = eta_threshold(t, n);
  // Precondition of the lemma: endpoints avoid their respective sets w.p.
  // ≥ 1 − τ. Verify, then run the search.
  const double tau = tau_threshold(t, n);
  const double pn_z0 = pi_n.exact_probability(
      [&](const Point& x) { return hamming_to_set(x, z0) == 0; });
  const double p0_z1 = pi_0.exact_probability(
      [&](const Point& x) { return hamming_to_set(x, z1) == 0; });
  if (pn_z0 > tau || p0_z1 > tau) return;  // precondition not met; skip
  const HybridResult r = find_hybrid_exact(pi_n, pi_0, z0, z1, eta);
  ASSERT_GE(r.j_star, 0);
  EXPECT_TRUE(r.lemma_satisfied) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, HybridPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace aa::prob
