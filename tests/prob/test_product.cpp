#include <gtest/gtest.h>

#include "prob/product.hpp"

namespace aa::prob {
namespace {

TEST(ProductSpace, IidConstruction) {
  const ProductSpace s = ProductSpace::iid(FiniteDist::uniform(2), 5);
  EXPECT_EQ(s.dimension(), 5);
  EXPECT_EQ(s.grid_size(), 32u);
}

TEST(ProductSpace, PointProbabilityIsProduct) {
  const ProductSpace s({FiniteDist::bernoulli(0.25), FiniteDist::bernoulli(0.5)});
  EXPECT_DOUBLE_EQ(s.point_probability({1, 1}), 0.25 * 0.5);
  EXPECT_DOUBLE_EQ(s.point_probability({0, 0}), 0.75 * 0.5);
}

TEST(ProductSpace, PointProbabilityDimensionMismatch) {
  const ProductSpace s = ProductSpace::iid(FiniteDist::uniform(2), 2);
  EXPECT_THROW((void)s.point_probability({0}), std::invalid_argument);
}

TEST(ProductSpace, EnumerateCoversWholeMass) {
  const ProductSpace s = ProductSpace::iid(FiniteDist::uniform(3), 4);
  double total = 0.0;
  std::size_t points = 0;
  s.enumerate([&](const Point&, double p) {
    total += p;
    ++points;
  });
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(points, 81u);
}

TEST(ProductSpace, EnumerateSkipsZeroMassPoints) {
  const ProductSpace s({FiniteDist::point_mass(1, 2), FiniteDist::uniform(2)});
  std::size_t points = 0;
  s.enumerate([&](const Point& x, double) {
    EXPECT_EQ(x[0], 1);
    ++points;
  });
  EXPECT_EQ(points, 2u);
}

TEST(ProductSpace, EnumerateTooLargeThrows) {
  const ProductSpace s = ProductSpace::iid(FiniteDist::uniform(2), 30);
  EXPECT_THROW(s.enumerate([](const Point&, double) {}, 1u << 10),
               std::invalid_argument);
}

TEST(ProductSpace, ExactProbabilityMatchesHandComputation) {
  // P[first coordinate == 1] over Bern(0.3) × Bern(0.9).
  const ProductSpace s({FiniteDist::bernoulli(0.3), FiniteDist::bernoulli(0.9)});
  const double p = s.exact_probability([](const Point& x) { return x[0] == 1; });
  EXPECT_NEAR(p, 0.3, 1e-12);
}

TEST(ProductSpace, McProbabilityConvergesToExact) {
  const ProductSpace s = ProductSpace::iid(FiniteDist::bernoulli(0.5), 10);
  const SetPredicate all_ones_prefix = [](const Point& x) {
    return x[0] == 1 && x[1] == 1;
  };
  const double exact = s.exact_probability(all_ones_prefix);
  Rng rng(5);
  const double mc = s.mc_probability(all_ones_prefix, 100000, rng);
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(ProductSpace, SampleRespectsSupport) {
  const ProductSpace s({FiniteDist::point_mass(0, 3), FiniteDist::point_mass(2, 3)});
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Point x = s.sample(rng);
    EXPECT_EQ(x[0], 0);
    EXPECT_EQ(x[1], 2);
  }
}

TEST(ProductSpace, HybridMixesCoordinates) {
  const ProductSpace pi_n = ProductSpace::iid(FiniteDist::point_mass(1, 2), 4);
  const ProductSpace pi_0 = ProductSpace::iid(FiniteDist::point_mass(0, 2), 4);
  const ProductSpace h = ProductSpace::hybrid(pi_n, pi_0, 2);
  // Coordinates 0,1 from pi_n (ones), 2,3 from pi_0 (zeros).
  EXPECT_DOUBLE_EQ(h.point_probability({1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(h.point_probability({1, 1, 1, 0}), 0.0);
}

TEST(ProductSpace, HybridEndpoints) {
  const ProductSpace pi_n = ProductSpace::iid(FiniteDist::bernoulli(0.9), 3);
  const ProductSpace pi_0 = ProductSpace::iid(FiniteDist::bernoulli(0.1), 3);
  const ProductSpace h0 = ProductSpace::hybrid(pi_n, pi_0, 0);
  const ProductSpace h3 = ProductSpace::hybrid(pi_n, pi_0, 3);
  EXPECT_DOUBLE_EQ(h0.coord(0).p(1), 0.1);
  EXPECT_DOUBLE_EQ(h3.coord(0).p(1), 0.9);
}

TEST(ProductSpace, HybridValidation) {
  const ProductSpace a = ProductSpace::iid(FiniteDist::uniform(2), 3);
  const ProductSpace b = ProductSpace::iid(FiniteDist::uniform(2), 4);
  EXPECT_THROW((void)ProductSpace::hybrid(a, b, 1), std::invalid_argument);
  EXPECT_THROW((void)ProductSpace::hybrid(a, a, 4), std::invalid_argument);
}

TEST(ProductSpace, GridSizeOverflowDetected) {
  // 256^9 = 2^72 does not fit in 64 bits: must throw rather than wrap.
  const ProductSpace s = ProductSpace::iid(FiniteDist::uniform(256), 9);
  EXPECT_THROW((void)s.grid_size(), std::invalid_argument);
}

TEST(ProductSpace, GridSizeLargeButRepresentable) {
  const ProductSpace s = ProductSpace::iid(FiniteDist::uniform(2), 60);
  EXPECT_EQ(s.grid_size(), 1ull << 60);
}

TEST(ProductSpace, SupportSizeIgnoresZeroMassSymbols) {
  // 20 point-mass coordinates + 3 coins: support is 2^3 even though the
  // alphabet grid is 5^23.
  std::vector<FiniteDist> coords;
  for (int i = 0; i < 20; ++i) coords.push_back(FiniteDist::point_mass(2, 5));
  for (int i = 0; i < 3; ++i)
    coords.push_back(FiniteDist({0.5, 0.5, 0.0, 0.0, 0.0}));
  const ProductSpace s{coords};
  EXPECT_EQ(s.support_size(), 8u);
}

TEST(ProductSpace, EnumerateVisitsOnlySupport) {
  // Point-mass-heavy spaces must enumerate quickly and exactly.
  std::vector<FiniteDist> coords;
  for (int i = 0; i < 30; ++i) coords.push_back(FiniteDist::point_mass(1, 4));
  coords.push_back(FiniteDist({0.25, 0.75}));
  const ProductSpace s{coords};
  std::size_t visits = 0;
  double total = 0.0;
  s.enumerate([&](const Point& x, double p) {
    ++visits;
    total += p;
    for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(x[i], 1);
  });
  EXPECT_EQ(visits, 2u);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace aa::prob
