#include <gtest/gtest.h>

#include <cmath>

#include "prob/talagrand.hpp"

namespace aa::prob {
namespace {

TEST(TalagrandBound, KnownValues) {
  EXPECT_DOUBLE_EQ(talagrand_bound(0, 10), 1.0);
  EXPECT_NEAR(talagrand_bound(10, 10), std::exp(-100.0 / 40.0), 1e-12);
}

TEST(TalagrandBound, MonotoneInD) {
  EXPECT_GT(talagrand_bound(1, 20), talagrand_bound(5, 20));
  EXPECT_GT(talagrand_bound(5, 20), talagrand_bound(10, 20));
}

TEST(TalagrandBound, Validation) {
  EXPECT_THROW((void)talagrand_bound(-1, 10), std::invalid_argument);
  EXPECT_THROW((void)talagrand_bound(1, 0), std::invalid_argument);
}

TEST(Thresholds, TauAndEta) {
  const int n = 64;
  const int t = 8;
  EXPECT_NEAR(tau_threshold(t, n), std::exp(-64.0 / 512.0), 1e-12);
  EXPECT_NEAR(eta_threshold(t, n), std::exp(-49.0 / 512.0), 1e-12);
  EXPECT_GT(eta_threshold(t, n), tau_threshold(t, n));  // η > τ always
}

TEST(SeparatedMassCeiling, MatchesFormula) {
  EXPECT_NEAR(separated_mass_ceiling(8, 64), std::exp(-64.0 / 512.0), 1e-12);
}

TEST(CheckExact, HalfCubeSatisfiesInequality) {
  // A = {x : x_0 = 0} over the uniform 6-cube.
  const int n = 6;
  const ProductSpace space = ProductSpace::iid(FiniteDist::uniform(2), n);
  std::vector<Point> A;
  space.enumerate([&](const Point& x, double) {
    if (x[0] == 0) A.push_back(x);
  });
  for (int d = 0; d <= n; ++d) {
    const TalagrandCheck c = check_exact(space, A, d);
    EXPECT_TRUE(c.holds) << "d=" << d << " lhs=" << c.lhs
                         << " bound=" << c.bound;
    EXPECT_NEAR(c.p_a, 0.5, 1e-12);
  }
}

TEST(CheckExact, SingletonSet) {
  const int n = 5;
  const ProductSpace space = ProductSpace::iid(FiniteDist::uniform(2), n);
  const std::vector<Point> A{{0, 0, 0, 0, 0}};
  const TalagrandCheck c0 = check_exact(space, A, 0);
  EXPECT_NEAR(c0.p_a, 1.0 / 32.0, 1e-12);
  EXPECT_NEAR(c0.p_ball, 1.0 / 32.0, 1e-12);
  const TalagrandCheck cn = check_exact(space, A, n);
  EXPECT_NEAR(cn.p_ball, 1.0, 1e-12);  // whole cube
  EXPECT_NEAR(cn.lhs, 0.0, 1e-12);
  EXPECT_TRUE(cn.holds);
}

TEST(CheckExact, BiasedCoordinatesStillHold) {
  // Talagrand holds for ANY product measure, not just uniform.
  const int n = 8;
  Rng rng(31);
  std::vector<FiniteDist> coords;
  for (int i = 0; i < n; ++i) coords.push_back(FiniteDist::random(2, rng));
  const ProductSpace space{coords};
  std::vector<Point> A;
  space.enumerate([&](const Point& x, double) {
    int weight = 0;
    for (int xi : x) weight += xi;
    if (weight <= 2) A.push_back(x);
  });
  ASSERT_FALSE(A.empty());
  for (int d = 0; d <= n; d += 2) {
    const TalagrandCheck c = check_exact(space, A, d);
    EXPECT_TRUE(c.holds) << "d=" << d;
  }
}

// Property sweep: random product spaces, random threshold sets, random d —
// the inequality must always hold (exact enumeration, n = 6).
class TalagrandPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TalagrandPropertyTest, RandomSpacesAndSets) {
  const int n = 6;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003);
  std::vector<FiniteDist> coords;
  for (int i = 0; i < n; ++i) coords.push_back(FiniteDist::random(3, rng));
  const ProductSpace space{coords};
  // Random set: include each point independently with probability 0.3.
  std::vector<Point> A;
  space.enumerate([&](const Point& x, double) {
    if (rng.bernoulli(0.3)) A.push_back(x);
  });
  if (A.empty()) return;  // vacuous
  const int d = static_cast<int>(rng.uniform_int(0, n));
  const TalagrandCheck c = check_exact(space, A, d);
  EXPECT_TRUE(c.holds) << "seed=" << GetParam() << " d=" << d
                       << " lhs=" << c.lhs << " bound=" << c.bound;
  EXPECT_GE(c.p_ball, c.p_a);  // the ball contains A
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, TalagrandPropertyTest,
                         ::testing::Range(0, 40));

TEST(CheckMc, AgreesWithExact) {
  const int n = 10;
  const ProductSpace space = ProductSpace::iid(FiniteDist::uniform(2), n);
  std::vector<Point> A;
  space.enumerate([&](const Point& x, double) {
    int weight = 0;
    for (int xi : x) weight += xi;
    if (weight == 0 || weight == 1) A.push_back(x);
  });
  const TalagrandCheck exact = check_exact(space, A, 3);
  Rng rng(41);
  const TalagrandCheck mc = check_mc(space, A, 3, 200000, rng);
  EXPECT_NEAR(mc.p_a, exact.p_a, 0.005);
  EXPECT_NEAR(mc.p_ball, exact.p_ball, 0.005);
  EXPECT_TRUE(mc.holds);
}

TEST(CheckExact, EmptySetThrows) {
  const ProductSpace space = ProductSpace::iid(FiniteDist::uniform(2), 3);
  EXPECT_THROW((void)check_exact(space, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace aa::prob
