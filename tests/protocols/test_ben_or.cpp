#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "protocols/ben_or.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"

namespace aa::protocols {
namespace {

using sim::Execution;
using sim::kBot;

TEST(BenOr, ConstructionValidation) {
  EXPECT_NO_THROW(BenOrProcess(0, 5, 2, 1));
  EXPECT_THROW(BenOrProcess(0, 4, 2, 1), std::invalid_argument);  // t >= n/2
  EXPECT_THROW(BenOrProcess(0, 5, 2, 7), std::invalid_argument);  // bad input
  EXPECT_THROW(BenOrProcess(9, 5, 2, 1), std::invalid_argument);  // bad id
}

TEST(BenOr, StartBroadcastsReport) {
  BenOrProcess p(0, 5, 1, 1);
  sim::Outbox out(5);
  p.on_start(out);
  ASSERT_EQ(out.items().size(), 5u);
  EXPECT_EQ(out.items()[0].msg.kind, kReportKind);
  EXPECT_EQ(out.items()[0].msg.round, 1);
  EXPECT_EQ(out.items()[0].msg.value, 1);
}

TEST(BenOr, Phase1MajorityProposesValue) {
  const int n = 7;
  const int t = 2;
  BenOrProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  // n - t = 5 reports: 4 ones (> n/2 = 3.5), 1 zero → proposal = 1.
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_report(1, s < 4 ? 1 : 0);
    p.on_receive(env, rng, out);
  }
  ASSERT_EQ(out.items().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(out.items()[0].msg.kind, kProposalKind);
  EXPECT_EQ(out.items()[0].msg.value, 1);
}

TEST(BenOr, Phase1NoMajorityProposesBot) {
  const int n = 7;
  const int t = 2;
  BenOrProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  // 3 ones + 2 zeros: neither exceeds n/2 = 3.5.
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_report(1, s < 3 ? 1 : 0);
    p.on_receive(env, rng, out);
  }
  ASSERT_FALSE(out.items().empty());
  EXPECT_EQ(out.items()[0].msg.value, kBot);
}

TEST(BenOr, Phase2TPlusOneProposalsDecide) {
  const int n = 7;
  const int t = 2;
  BenOrProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  // Drive through phase 1 first (any outcome).
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_report(1, 1);
    p.on_receive(env, rng, out);
  }
  out.clear();
  // Phase 2: t + 1 = 3 proposals for 1 among n - t = 5 → decide 1.
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_proposal(1, s < 3 ? 1 : kBot);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.output(), 1);
  EXPECT_EQ(p.round(), 2);  // decided processors keep going
  ASSERT_FALSE(out.items().empty());
  EXPECT_EQ(out.items()[0].msg.kind, kReportKind);
  EXPECT_EQ(out.items()[0].msg.round, 2);
}

TEST(BenOr, Phase2SingleProposalAdoptsWithoutDeciding) {
  const int n = 7;
  const int t = 2;
  BenOrProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_report(1, 0);
    p.on_receive(env, rng, out);
  }
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_proposal(1, s == 0 ? 1 : kBot);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.output(), kBot);
  EXPECT_EQ(p.estimate(), 1);
  EXPECT_EQ(p.round(), 2);
}

TEST(BenOr, Phase2AllBotFlipsCoin) {
  const int n = 7;
  const int t = 2;
  BenOrProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(3);
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_report(1, s % 2);
    p.on_receive(env, rng, out);
  }
  for (int s = 0; s < 5; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_proposal(1, kBot);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.output(), kBot);
  EXPECT_TRUE(p.estimate() == 0 || p.estimate() == 1);
  EXPECT_EQ(p.round(), 2);
}

TEST(BenOr, EndToEndRandomSchedulerAgrees) {
  const int n = 9;
  const int t = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Execution e(make_processes(ProtocolKind::BenOr, t, split_inputs(n, 0.5)),
                seed);
    adversary::RandomAsyncScheduler sched(Rng(seed * 31));
    sim::run_async(e, sched, t, 5'000'000, /*until_all=*/true);
    EXPECT_TRUE(e.all_live_decided()) << "seed=" << seed;
    EXPECT_TRUE(e.outputs_agree()) << "seed=" << seed;
  }
}

TEST(BenOr, ValidityUnderUnanimity) {
  const int n = 9;
  const int t = 2;
  for (int v = 0; v <= 1; ++v) {
    Execution e(make_processes(ProtocolKind::BenOr, t, unanimous_inputs(n, v)),
                static_cast<std::uint64_t>(v + 1));
    adversary::RandomAsyncScheduler sched(Rng(17));
    sim::run_async(e, sched, t, 5'000'000, /*until_all=*/true);
    for (int p = 0; p < n; ++p) EXPECT_EQ(e.output(p), v);
  }
}

TEST(BenOr, SurvivesMaxCrashes) {
  const int n = 9;
  const int t = 4;  // t < n/2
  Execution e(make_processes(ProtocolKind::BenOr, t, split_inputs(n, 0.5)), 3);
  adversary::FixedCrashScheduler sched({0, 1, 2, 3}, Rng(9));
  sim::run_async(e, sched, t, 5'000'000, /*until_all=*/true);
  EXPECT_TRUE(e.all_live_decided());
  EXPECT_TRUE(e.outputs_agree());
}

TEST(BenOr, IsForgetfulAndFullyCommunicativeShape) {
  // Structural check used by §5: after acting on n − t messages, it
  // broadcasts to all n (fully communicative trigger).
  const int n = 7;
  const int t = 2;
  BenOrProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 0; s < n - t; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_report(1, 0);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(out.items().size(), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace aa::protocols
