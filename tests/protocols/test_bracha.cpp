#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "protocols/bracha.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"
#include "sim/window.hpp"

namespace aa::protocols {
namespace {

using sim::Execution;

TEST(BrachaAux, PackUnpackRoundTrip) {
  for (int orig : {0, 1, 63, 1000}) {
    for (int step : {1, 2, 3}) {
      for (bool flag : {false, true}) {
        const auto aux = pack_bracha_aux(orig, step, flag);
        const BrachaAux a = unpack_bracha_aux(aux);
        EXPECT_EQ(a.originator, orig);
        EXPECT_EQ(a.step, step);
        EXPECT_EQ(a.decide_flag, flag);
      }
    }
  }
}

TEST(BrachaAux, Validation) {
  EXPECT_THROW((void)pack_bracha_aux(-1, 1, false), std::invalid_argument);
  EXPECT_THROW((void)pack_bracha_aux(0, 0, false), std::invalid_argument);
  EXPECT_THROW((void)pack_bracha_aux(0, 4, false), std::invalid_argument);
}

TEST(Bracha, ConstructionValidation) {
  EXPECT_NO_THROW(BrachaProcess(0, 7, 2, 1));
  EXPECT_THROW(BrachaProcess(0, 6, 2, 1), std::invalid_argument);  // t >= n/3
  EXPECT_THROW(BrachaProcess(0, 7, 2, 5), std::invalid_argument);
}

TEST(Bracha, StartBroadcastsInit) {
  BrachaProcess p(2, 7, 2, 1);
  sim::Outbox out(7);
  p.on_start(out);
  ASSERT_EQ(out.items().size(), 7u);
  EXPECT_EQ(out.items()[0].msg.kind, kRbcInitKind);
  const BrachaAux a = unpack_bracha_aux(out.items()[0].msg.aux);
  EXPECT_EQ(a.originator, 2);
  EXPECT_EQ(a.step, 1);
}

TEST(Bracha, EchoOnFirstInitOnly) {
  const int n = 7;
  const int t = 2;
  BrachaProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  sim::Envelope env;
  env.sender = 3;
  env.receiver = 0;
  env.payload.round = 1;
  env.payload.kind = kRbcInitKind;
  env.payload.value = 1;
  env.payload.aux = pack_bracha_aux(3, 1, false);
  p.on_receive(env, rng, out);
  EXPECT_EQ(out.items().size(), static_cast<std::size_t>(n));  // one echo burst
  EXPECT_EQ(out.items()[0].msg.kind, kRbcEchoKind);
  // Duplicate init: no second echo.
  p.on_receive(env, rng, out);
  EXPECT_EQ(out.items().size(), static_cast<std::size_t>(n));
}

TEST(Bracha, InitFromNonOriginatorIgnored) {
  const int n = 7;
  const int t = 2;
  BrachaProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  sim::Envelope env;
  env.sender = 5;  // claims originator 3 — forged relay, ignored
  env.receiver = 0;
  env.payload.round = 1;
  env.payload.kind = kRbcInitKind;
  env.payload.value = 1;
  env.payload.aux = pack_bracha_aux(3, 1, false);
  p.on_receive(env, rng, out);
  EXPECT_TRUE(out.empty());
}

TEST(Bracha, ReadyAfterEchoQuorum) {
  const int n = 7;
  const int t = 2;
  const int echo_quorum = (n + t) / 2 + 1;  // 5
  BrachaProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 0; s < echo_quorum; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload.round = 1;
    env.payload.kind = kRbcEchoKind;
    env.payload.value = 1;
    env.payload.aux = pack_bracha_aux(6, 1, false);
    out.clear();
    p.on_receive(env, rng, out);
  }
  // The quorum-completing echo triggers the READY burst.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.items()[0].msg.kind, kRbcReadyKind);
}

TEST(Bracha, ReadyAmplification) {
  // t + 1 readies (without echo quorum) also trigger READY.
  const int n = 7;
  const int t = 2;
  BrachaProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 0; s < t + 1; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload.round = 1;
    env.payload.kind = kRbcReadyKind;
    env.payload.value = 0;
    env.payload.aux = pack_bracha_aux(6, 1, false);
    out.clear();
    p.on_receive(env, rng, out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.items()[0].msg.kind, kRbcReadyKind);
}

TEST(Bracha, DuplicateEchoesFromSameSenderDontCount) {
  const int n = 7;
  const int t = 2;
  BrachaProcess p(0, n, t, 0);
  sim::Outbox out(n);
  Rng rng(1);
  sim::Envelope env;
  env.sender = 1;
  env.receiver = 0;
  env.payload.round = 1;
  env.payload.kind = kRbcEchoKind;
  env.payload.value = 1;
  env.payload.aux = pack_bracha_aux(6, 1, false);
  for (int i = 0; i < 10; ++i) p.on_receive(env, rng, out);
  // 10 copies of one sender's echo: no ready.
  for (const auto& item : out.items())
    EXPECT_NE(item.msg.kind, kRbcReadyKind);
}

TEST(Bracha, EndToEndFairWindowsDecideAndAgree) {
  const int n = 7;
  const int t = 2;
  Execution e(make_processes(ProtocolKind::Bracha, t, split_inputs(n, 0.5)),
              11);
  adversary::FairWindowAdversary fair;
  const auto windows = sim::run_until_all_decided(e, fair, t, 500000);
  EXPECT_LT(windows, 500000);
  EXPECT_TRUE(e.all_live_decided());
  EXPECT_TRUE(e.outputs_agree());
}

TEST(Bracha, UnanimousDecidesQuicklyUnderWindows) {
  const int n = 7;
  const int t = 2;
  for (int v = 0; v <= 1; ++v) {
    Execution e(make_processes(ProtocolKind::Bracha, t, unanimous_inputs(n, v)),
                static_cast<std::uint64_t>(v + 3));
    adversary::FairWindowAdversary fair;
    const auto windows = sim::run_until_all_decided(e, fair, t, 1000);
    EXPECT_LT(windows, 50);  // RBC costs a few windows per step; still fast
    for (int p = 0; p < n; ++p) EXPECT_EQ(e.output(p), v);
  }
}

TEST(Bracha, ToleratesSilencedMinority) {
  const int n = 10;
  const int t = 3;
  Execution e(make_processes(ProtocolKind::Bracha, t, split_inputs(n, 0.5)),
              13);
  adversary::SilencerWindowAdversary silencer({0, 1, 2});
  const auto windows = sim::run_until_all_decided(e, silencer, t, 500000);
  EXPECT_LT(windows, 500000);
  // The silenced processors still decide: they RECEIVE everything, they are
  // just never heard. Agreement must hold across all 10.
  EXPECT_TRUE(e.outputs_agree());
  int decided = 0;
  for (int p = 0; p < n; ++p) {
    if (e.output(p) != sim::kBot) ++decided;
  }
  EXPECT_GE(decided, n - t);
}

TEST(Bracha, AsyncRandomSchedulerAgrees) {
  const int n = 7;
  const int t = 2;
  Execution e(make_processes(ProtocolKind::Bracha, t, split_inputs(n, 0.5)),
              17);
  adversary::RandomAsyncScheduler sched(Rng(23));
  sim::run_async(e, sched, t, 10'000'000, /*until_all=*/true);
  EXPECT_TRUE(e.all_live_decided());
  EXPECT_TRUE(e.outputs_agree());
}

}  // namespace
}  // namespace aa::protocols
