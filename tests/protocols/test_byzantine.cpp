#include <gtest/gtest.h>

#include "adversary/window_adversaries.hpp"
#include "core/harness.hpp"
#include "protocols/byzantine.hpp"
#include "protocols/reset_agreement.hpp"

namespace aa::protocols {
namespace {

TEST(ByzantineProcess, SilentDropsEverything) {
  auto inner = std::make_unique<ResetProcess>(0, 12, 1,
                                              canonical_thresholds(12, 1));
  ByzantineProcess byz(std::move(inner), ByzantineStrategy::Silent, 1);
  sim::Outbox out(12);
  byz.on_start(out);
  EXPECT_TRUE(out.empty());
}

TEST(ByzantineProcess, FlipAllInvertsVotes) {
  auto inner = std::make_unique<ResetProcess>(0, 12, 1,
                                              canonical_thresholds(12, 1));
  ByzantineProcess byz(std::move(inner), ByzantineStrategy::FlipAll, 1);
  sim::Outbox out(12);
  byz.on_start(out);
  ASSERT_EQ(out.items().size(), 12u);
  // Inner input is 1; every broadcast vote must read 0.
  for (const auto& item : out.items()) EXPECT_EQ(item.msg.value, 0);
}

TEST(ByzantineProcess, EquivocateSplitsByReceiverId) {
  auto inner = std::make_unique<ResetProcess>(0, 12, 0,
                                              canonical_thresholds(12, 1));
  ByzantineProcess byz(std::move(inner), ByzantineStrategy::Equivocate, 1);
  sim::Outbox out(12);
  byz.on_start(out);
  ASSERT_EQ(out.items().size(), 12u);
  for (const auto& item : out.items()) {
    EXPECT_EQ(item.msg.value, item.to < 6 ? 0 : 1) << "receiver " << item.to;
  }
}

TEST(ByzantineProcess, RandomLieIsDeterministicInSeed) {
  auto values_for = [](std::uint64_t seed) {
    auto inner = std::make_unique<ResetProcess>(0, 12, 0,
                                                canonical_thresholds(12, 1));
    ByzantineProcess byz(std::move(inner), ByzantineStrategy::RandomLie,
                         seed);
    sim::Outbox out(12);
    byz.on_start(out);
    std::vector<int> vs;
    for (const auto& item : out.items()) vs.push_back(item.msg.value);
    return vs;
  };
  EXPECT_EQ(values_for(7), values_for(7));
  EXPECT_NE(values_for(7), values_for(8));
}

TEST(ByzantineProcess, IntrospectionPassesThrough) {
  auto inner = std::make_unique<ResetProcess>(3, 12, 1,
                                              canonical_thresholds(12, 1));
  ByzantineProcess byz(std::move(inner), ByzantineStrategy::FlipAll, 1);
  EXPECT_EQ(byz.input(), 1);
  EXPECT_EQ(byz.output(), sim::kBot);
  EXPECT_EQ(byz.round(), 1);
}

TEST(ByzantineProcess, BotValuesPassUncorrupted) {
  // Only bit-valued fields are lies; '?' proposals pass through.
  class BotSender final : public sim::Process {
   public:
    void on_start(sim::Outbox& out) override {
      sim::Message m;
      m.kind = 3;
      m.value = sim::kBot;
      out.broadcast(m);
    }
    void on_receive(const sim::Envelope&, Rng&, sim::Outbox&) override {}
    void on_reset() override {}
    [[nodiscard]] int input() const override { return 0; }
    [[nodiscard]] int output() const override { return sim::kBot; }
    [[nodiscard]] int round() const override { return 0; }
    [[nodiscard]] int estimate() const override { return 0; }
    [[nodiscard]] const char* protocol_name() const override { return "bot"; }
  };
  ByzantineProcess byz(std::make_unique<BotSender>(),
                       ByzantineStrategy::FlipAll, 1);
  sim::Outbox out(4);
  byz.on_start(out);
  for (const auto& item : out.items()) EXPECT_EQ(item.msg.value, sim::kBot);
}

TEST(MakeByzantineProcesses, WrapsPrefix) {
  const auto procs = make_byzantine_processes(
      ProtocolKind::Bracha, 3, split_inputs(10, 0.5), 2,
      ByzantineStrategy::Equivocate, 99);
  ASSERT_EQ(procs.size(), 10u);
  EXPECT_STREQ(procs[0]->protocol_name(), "byzantine-wrapper");
  EXPECT_STREQ(procs[1]->protocol_name(), "byzantine-wrapper");
  EXPECT_STREQ(procs[2]->protocol_name(), "bracha");
}

TEST(ByzantineRun, BrachaSurvivesEquivocators) {
  // t < n/3 Byzantine design point: per-payload RBC quorums stop lies.
  const int n = 10;
  const int t = 3;
  for (int f = 1; f <= t; ++f) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      adversary::FairWindowAdversary fair;
      const auto r = core::run_byzantine_window_experiment(
          ProtocolKind::Bracha, split_inputs(n, 0.5), t, f,
          ByzantineStrategy::Equivocate, fair, 300000, seed);
      EXPECT_TRUE(r.honest_agreement) << "f=" << f << " seed=" << seed;
      EXPECT_TRUE(r.honest_validity) << "f=" << f << " seed=" << seed;
      EXPECT_TRUE(r.honest_all_decided) << "f=" << f << " seed=" << seed;
    }
  }
}

TEST(ByzantineRun, BrachaSurvivesSilenceAndRandomLies) {
  const int n = 10;
  const int t = 3;
  for (const auto strategy :
       {ByzantineStrategy::RandomLie, ByzantineStrategy::Silent}) {
    adversary::FairWindowAdversary fair;
    const auto r = core::run_byzantine_window_experiment(
        ProtocolKind::Bracha, split_inputs(n, 0.5), t, t, strategy, fair,
        300000, 5);
    EXPECT_TRUE(r.honest_agreement) << byzantine_strategy_name(strategy);
    EXPECT_TRUE(r.honest_all_decided) << byzantine_strategy_name(strategy);
  }
}

TEST(ByzantineRun, BrachaFlipAllKeepsSafetyButStallsWithoutValidation) {
  // Systematic contrarians poison every first-(n−t) delivery prefix, so the
  // 2t+1 flagged quorum never completes: liveness stalls. This is exactly
  // the gap Bracha's (unimplemented) validation layer closes — safety is
  // untouched either way. See DESIGN.md's substitution note.
  const int n = 10;
  const int t = 3;
  adversary::FairWindowAdversary fair;
  const auto r = core::run_byzantine_window_experiment(
      ProtocolKind::Bracha, split_inputs(n, 0.5), t, t,
      ByzantineStrategy::FlipAll, fair, 2000, 5);
  EXPECT_TRUE(r.honest_agreement);
  EXPECT_TRUE(r.honest_validity);
  EXPECT_FALSE(r.honest_all_decided);
}

TEST(ByzantineRun, ResetAgreementVulnerableToLying) {
  // §2 incomparability: the reset-tolerant algorithm is NOT Byzantine-
  // tolerant. f = t equivocators keep every honest processor's vote tally
  // split forever: honest liveness dies (safety happens to survive at
  // these sizes — the thresholds still prevent conflicting writes).
  const int n = 13;
  const int t = 2;
  int clean = 0;
  const int trials = 6;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    adversary::FairWindowAdversary fair;
    const auto r = core::run_byzantine_window_experiment(
        ProtocolKind::Reset, split_inputs(n, 0.5), t, t,
        ByzantineStrategy::Equivocate, fair, 2000, seed);
    if (r.honest_agreement && r.honest_validity && r.honest_all_decided)
      ++clean;
  }
  EXPECT_EQ(clean, 0);
}

}  // namespace
}  // namespace aa::protocols
