#include <gtest/gtest.h>

#include "protocols/committee.hpp"
#include "protocols/factory.hpp"

namespace aa::protocols {
namespace {

CommitteeParams params(int n, int t, bool adaptive) {
  CommitteeParams p;
  p.n = n;
  p.t = t;
  p.adaptive_adversary = adaptive;
  return p;
}

TEST(Committee, Validation) {
  Rng rng(1);
  const auto inputs = split_inputs(16, 0.5);
  EXPECT_THROW((void)run_committee_agreement(params(0, 0, false), {}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      (void)run_committee_agreement(params(16, 16, false), inputs, rng),
      std::invalid_argument);
  EXPECT_THROW(
      (void)run_committee_agreement(params(8, 1, false), inputs, rng),
      std::invalid_argument);  // inputs size mismatch
}

TEST(Committee, NoFaultsAlwaysSucceeds) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto out =
        run_committee_agreement(params(64, 0, false), split_inputs(64, 0.5),
                                rng);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(out.decision == 0 || out.decision == 1);
    EXPECT_EQ(out.final_corrupted, 0);
  }
}

TEST(Committee, RoundsGrowLogarithmically) {
  Rng rng(3);
  const auto small =
      run_committee_agreement(params(64, 0, false), split_inputs(64, 0.5), rng);
  const auto big = run_committee_agreement(params(4096, 0, false),
                                           split_inputs(4096, 0.5), rng);
  EXPECT_GT(big.rounds, small.rounds);
  // 64× more processors but only ~2× more rounds: the polylog shape.
  EXPECT_LT(big.rounds, 3 * small.rounds);
}

TEST(Committee, AdaptiveAdversaryKillsTheFinalCommittee) {
  // The §1 observation: wait for the final committee, then corrupt it.
  Rng rng(4);
  int failures = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out = run_committee_agreement(params(256, 64, true),
                                             split_inputs(256, 0.5), rng);
    if (!out.success) ++failures;
    EXPECT_EQ(out.final_corrupted,
              out.final_committee_size);  // budget 64 >> committee size
  }
  EXPECT_EQ(failures, trials);
}

TEST(Committee, NonAdaptiveUsuallySucceedsWithQuarterCorruption) {
  Rng rng(5);
  int successes = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out = run_committee_agreement(params(256, 64, false),
                                             split_inputs(256, 0.5), rng);
    if (out.success) ++successes;
  }
  // Corruption fraction 1/4 < 1/3: most final committees are fine, but the
  // failure probability is intrinsically nonzero.
  EXPECT_GT(successes, trials / 2);
  EXPECT_LT(successes, trials);  // and some failures occur at these sizes
}

TEST(Committee, ValidityOfDecision) {
  Rng rng(6);
  // All-ones inputs: any successful decision must be 1.
  for (int trial = 0; trial < 20; ++trial) {
    const auto out = run_committee_agreement(params(128, 16, false),
                                             unanimous_inputs(128, 1), rng);
    if (out.success) EXPECT_EQ(out.decision, 1);
  }
}

TEST(Committee, FinalCommitteeSizeHonoursOverride) {
  Rng rng(7);
  CommitteeParams p = params(512, 0, false);
  p.final_committee_size = 9;
  const auto out = run_committee_agreement(p, split_inputs(512, 0.5), rng);
  EXPECT_LE(out.final_committee_size, 9 * 2);  // last halving may overshoot
  EXPECT_GE(out.final_committee_size, 5);
}

TEST(CorruptionTail, MatchesHypergeometricEdgeCases) {
  EXPECT_DOUBLE_EQ(committee_corruption_tail(10, 5, 3, 0), 1.0);
  EXPECT_DOUBLE_EQ(committee_corruption_tail(10, 2, 3, 3), 0.0);
  // All corrupted: committee of any size is fully corrupted.
  EXPECT_NEAR(committee_corruption_tail(10, 10, 3, 3), 1.0, 1e-12);
  // n=4, c=2, s=2, k=2: P[both corrupted] = C(2,2)/C(4,2) = 1/6.
  EXPECT_NEAR(committee_corruption_tail(4, 2, 2, 2), 1.0 / 6.0, 1e-9);
}

TEST(CorruptionTail, MonotoneInCorruption) {
  const double lo = committee_corruption_tail(300, 30, 15, 5);
  const double hi = committee_corruption_tail(300, 100, 15, 5);
  EXPECT_LT(lo, hi);
}

TEST(CorruptionTail, AgreesWithMonteCarloCommitteeDraws) {
  // The analytic tail should predict the empirical corrupted-committee rate.
  Rng rng(8);
  const int n = 120;
  const int c = 40;
  const int s = 9;
  const int k = 3;  // ≥ 1/3 corrupted
  const double analytic = committee_corruption_tail(n, c, s, k);
  int hits = 0;
  const int trials = 4000;
  for (int trial = 0; trial < trials; ++trial) {
    // Draw a random committee, count corrupted (first c ids are corrupted).
    std::vector<int> ids(n);
    for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
    int corrupted = 0;
    for (int i = 0; i < s; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          rng.uniform_index(ids.size() - static_cast<std::size_t>(i));
      std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
      if (ids[static_cast<std::size_t>(i)] < c) ++corrupted;
    }
    if (corrupted >= k) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), analytic, 0.03);
}

}  // namespace
}  // namespace aa::protocols
