#include <gtest/gtest.h>

#include "protocols/factory.hpp"

namespace aa::protocols {
namespace {

TEST(Factory, KindNamesAreDistinct) {
  const ProtocolKind kinds[] = {ProtocolKind::Reset, ProtocolKind::BenOr,
                                ProtocolKind::Bracha, ProtocolKind::Forgetful};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(protocol_kind_name(kinds[i]), protocol_kind_name(kinds[j]));
    }
  }
}

TEST(Factory, BuildsOneProcessPerInput) {
  for (const ProtocolKind kind : {ProtocolKind::Reset, ProtocolKind::BenOr,
                                  ProtocolKind::Bracha,
                                  ProtocolKind::Forgetful}) {
    const auto procs = make_processes(kind, 1, split_inputs(9, 0.5));
    ASSERT_EQ(procs.size(), 9u);
    for (int i = 0; i < 9; ++i) {
      EXPECT_EQ(procs[static_cast<std::size_t>(i)]->input(),
                split_inputs(9, 0.5)[static_cast<std::size_t>(i)]);
      EXPECT_EQ(procs[static_cast<std::size_t>(i)]->output(), sim::kBot);
    }
  }
}

TEST(Factory, ProtocolNamesMatchKind) {
  const auto reset = make_processes(ProtocolKind::Reset, 1,
                                    unanimous_inputs(8, 0));
  EXPECT_STREQ(reset[0]->protocol_name(), "reset-agreement");
  const auto benor = make_processes(ProtocolKind::BenOr, 1,
                                    unanimous_inputs(8, 0));
  EXPECT_STREQ(benor[0]->protocol_name(), "ben-or");
}

TEST(Factory, CustomThresholdsReachResetProcess) {
  const protocols::Thresholds th{5, 5, 4};
  const auto procs = make_processes(ProtocolKind::Reset, 1,
                                    unanimous_inputs(8, 0), th);
  EXPECT_EQ(procs.size(), 8u);
  // Indirect check: invalid thresholds throw from the ResetProcess ctor.
  const protocols::Thresholds bad{5, 4, 5};
  EXPECT_THROW(
      (void)make_processes(ProtocolKind::Reset, 1, unanimous_inputs(8, 0),
                           bad),
      std::invalid_argument);
  SUCCEED();
}

TEST(Factory, EmptyInputsRejected) {
  EXPECT_THROW((void)make_processes(ProtocolKind::Reset, 1, {}),
               std::invalid_argument);
}

TEST(SplitInputs, CountsAndPlacement) {
  const auto inputs = split_inputs(10, 0.3);
  int ones = 0;
  for (int b : inputs) ones += b;
  EXPECT_EQ(ones, 3);
  // Ones at the high ids.
  EXPECT_EQ(inputs[9], 1);
  EXPECT_EQ(inputs[0], 0);
}

TEST(SplitInputs, Extremes) {
  EXPECT_EQ(split_inputs(5, 0.0), unanimous_inputs(5, 0));
  EXPECT_EQ(split_inputs(5, 1.0), unanimous_inputs(5, 1));
  EXPECT_THROW((void)split_inputs(5, 1.5), std::invalid_argument);
  EXPECT_THROW((void)split_inputs(0, 0.5), std::invalid_argument);
}

TEST(UnanimousInputs, Validation) {
  EXPECT_THROW((void)unanimous_inputs(5, 2), std::invalid_argument);
  EXPECT_THROW((void)unanimous_inputs(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace aa::protocols
