#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "protocols/forgetful.hpp"
#include "protocols/reset_agreement.hpp"
#include "sim/async.hpp"
#include "sim/window.hpp"

namespace aa::protocols {
namespace {

using sim::Execution;
using sim::kBot;

TEST(ForgetfulThresholds, DefaultsSatisfyShape) {
  for (int n : {9, 16, 25, 33}) {
    for (int t = 0; 4 * t + 4 <= n; ++t) {
      const Thresholds th = forgetful_thresholds(n, t);
      EXPECT_EQ(th.t1, n - t);
      EXPECT_GT(2 * th.t3, n);
      EXPECT_GE(th.t2, th.t3 + t);
      EXPECT_LE(th.t2, th.t1) << "n=" << n << " t=" << t;
    }
  }
}

TEST(ForgetfulThresholds, CanonicalShapeForSmallT) {
  const Thresholds th = forgetful_thresholds(20, 2);
  EXPECT_EQ(th.t1, 18);
  EXPECT_EQ(th.t2, 16);
  EXPECT_EQ(th.t3, 14);
}

TEST(Forgetful, ConstructionValidation) {
  EXPECT_NO_THROW(ForgetfulProcess(0, 16, 1, forgetful_thresholds(16, 2)));
  // 2*T3 <= n rejected.
  EXPECT_THROW(ForgetfulProcess(0, 16, 1, Thresholds{14, 10, 8}),
               std::invalid_argument);
  EXPECT_THROW(ForgetfulProcess(0, 16, 2, forgetful_thresholds(16, 2)),
               std::invalid_argument);  // input must be a bit
}

TEST(Forgetful, StaleRoundVotesAreInvisible) {
  // Forgetfulness: messages from rounds before the current one are ignored.
  const int n = 16;
  const int t = 2;
  const Thresholds th = forgetful_thresholds(n, t);
  ForgetfulProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  // Advance to round 2 with T1 unanimous round-1 votes.
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_vote(1, 0);
    p.on_receive(env, rng, out);
  }
  ASSERT_EQ(p.round(), 2);
  out.clear();
  // Now shower it with round-1 votes: nothing may happen.
  for (int s = 0; s < n; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_vote(1, 1);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.round(), 2);
  EXPECT_TRUE(out.empty());
}

TEST(Forgetful, FullyCommunicative) {
  // Definition 16: upon hearing n − t, send to ALL n.
  const int n = 16;
  const int t = 2;
  const Thresholds th = forgetful_thresholds(n, t);
  ForgetfulProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 0; s < n - t; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_vote(1, s % 2);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(out.items().size(), static_cast<std::size_t>(n));
}

TEST(Forgetful, DecidesAtT2) {
  const int n = 16;
  const int t = 2;
  const Thresholds th = forgetful_thresholds(n, t);  // T1=14 T2=12 T3=10
  ForgetfulProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_vote(1, s < th.t2 ? 1 : 0);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.output(), 1);
}

TEST(Forgetful, AdoptsAtT3WithoutDeciding) {
  const int n = 16;
  const int t = 2;
  const Thresholds th = forgetful_thresholds(n, t);
  ForgetfulProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  // Exactly T3 ones, rest zeros (zeros = T1 − T3 = 5 < T3): adopt 1.
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = s;
    env.receiver = 0;
    env.payload = make_vote(1, s < th.t3 ? 1 : 0);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.output(), kBot);
  EXPECT_EQ(p.estimate(), 1);
}

TEST(Forgetful, EndToEndAsyncRandomSchedulerAgrees) {
  const int n = 16;
  const int t = 2;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Execution e(
        make_processes(ProtocolKind::Forgetful, t, split_inputs(n, 0.5)),
        seed);
    adversary::RandomAsyncScheduler sched(Rng(seed * 131));
    sim::run_async(e, sched, t, 5'000'000, /*until_all=*/true);
    EXPECT_TRUE(e.all_live_decided()) << "seed=" << seed;
    EXPECT_TRUE(e.outputs_agree()) << "seed=" << seed;
  }
}

TEST(Forgetful, SurvivesCrashes) {
  const int n = 16;
  const int t = 2;
  Execution e(make_processes(ProtocolKind::Forgetful, t, split_inputs(n, 0.5)),
              5);
  adversary::FixedCrashScheduler sched({3, 8}, Rng(7));
  sim::run_async(e, sched, t, 5'000'000, /*until_all=*/true);
  EXPECT_TRUE(e.all_live_decided());
  EXPECT_TRUE(e.outputs_agree());
}

TEST(Forgetful, SplitKeeperStallsProgress) {
  // Theorem 17's mechanism: the balanced scheduler forces coin flips.
  // Over a short horizon, a split input under the split-keeper should
  // almost never decide (whereas a fair random scheduler often does).
  const int n = 20;
  const int t = 2;
  int keeper_decided = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Execution e(
        make_processes(ProtocolKind::Forgetful, t, split_inputs(n, 0.5)),
        seed);
    adversary::AsyncSplitKeeper keeper;
    // Horizon: 6 full rounds' worth of deliveries.
    sim::run_async(e, keeper, t, 6 * n * n);
    if (e.decided_count() > 0) ++keeper_decided;
  }
  EXPECT_LE(keeper_decided, 2);  // mostly stalled
}

TEST(Forgetful, UnanimousDecidesDespiteSplitKeeper) {
  const int n = 16;
  const int t = 2;
  Execution e(
      make_processes(ProtocolKind::Forgetful, t, unanimous_inputs(n, 1)), 3);
  adversary::AsyncSplitKeeper keeper;
  sim::run_async(e, keeper, t, 4 * n * n);
  EXPECT_GT(e.decided_count(), 0);
  EXPECT_EQ(e.first_decision()->value, 1);
}

TEST(Forgetful, WorksUnderWindowModelToo) {
  // The forgetful protocol with T1 = n − t also runs under acceptable
  // windows (it is a §3-style algorithm without reset handling).
  const int n = 16;
  const int t = 2;
  Execution e(make_processes(ProtocolKind::Forgetful, t, split_inputs(n, 0.5)),
              9);
  adversary::FairWindowAdversary fair;
  const auto windows = sim::run_until_all_decided(e, fair, t, 100000);
  EXPECT_LT(windows, 100000);
  EXPECT_TRUE(e.outputs_agree());
}

}  // namespace
}  // namespace aa::protocols
