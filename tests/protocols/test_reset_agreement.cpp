#include <gtest/gtest.h>

#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "protocols/reset_agreement.hpp"
#include "sim/window.hpp"

namespace aa::protocols {
namespace {

using sim::Execution;
using sim::kBot;

Execution make_exec(int n, int t, const std::vector<int>& inputs,
                    std::uint64_t seed) {
  return Execution(make_processes(ProtocolKind::Reset, t, inputs), seed);
}

TEST(ResetProcess, ConstructionValidation) {
  EXPECT_THROW(ResetProcess(0, 4, 2, {3, 3, 2}), std::invalid_argument);
  EXPECT_THROW(ResetProcess(4, 4, 1, {3, 3, 2}), std::invalid_argument);
  EXPECT_THROW(ResetProcess(0, 4, 1, {3, 2, 3}), std::invalid_argument);
  // 2*T3 <= T1 is ambiguous.
  EXPECT_THROW(ResetProcess(0, 8, 1, {6, 4, 3}), std::invalid_argument);
}

TEST(ResetProcess, InitialStateMatchesPaper) {
  ResetProcess p(2, 12, 1, canonical_thresholds(12, 1));
  EXPECT_EQ(p.input(), 1);
  EXPECT_EQ(p.output(), kBot);
  EXPECT_EQ(p.round(), 1);
  EXPECT_EQ(p.estimate(), 1);
  EXPECT_FALSE(p.rejoining());
}

TEST(ResetProcess, StartBroadcastsRoundOneVote) {
  ResetProcess p(0, 4, 1, {2, 2, 2});  // legal standalone thresholds
  sim::Outbox out(4);
  p.on_start(out);
  ASSERT_EQ(out.items().size(), 4u);
  for (const auto& item : out.items()) {
    EXPECT_EQ(item.msg.kind, kVoteKind);
    EXPECT_EQ(item.msg.round, 1);
    EXPECT_EQ(item.msg.value, 1);
  }
}

TEST(ResetProcess, UnanimousDecidesFirstWindow) {
  const int n = 12;
  const int t = 1;
  for (int v = 0; v <= 1; ++v) {
    Execution e = make_exec(n, t, unanimous_inputs(n, v), 1);
    adversary::FairWindowAdversary fair;
    sim::run_acceptable_window(e, fair, t);
    EXPECT_EQ(e.decided_count(), n);
    for (int p = 0; p < n; ++p) EXPECT_EQ(e.output(p), v);
  }
}

TEST(ResetProcess, IgnoresNonVoteAndMalformedMessages) {
  const int n = 12;
  const int t = 1;
  Execution e = make_exec(n, t, unanimous_inputs(n, 1), 1);
  // Inject garbage through a custom adversary? Simpler: direct unit probe.
  ResetProcess p(0, n, 1, canonical_thresholds(n, t));
  sim::Outbox out(n);
  Rng rng(1);
  sim::Envelope env;
  env.sender = 1;
  env.receiver = 0;
  env.payload.kind = 99;  // unknown kind
  p.on_receive(env, rng, out);
  env.payload.kind = kVoteKind;
  env.payload.value = 7;  // not a bit
  p.on_receive(env, rng, out);
  EXPECT_EQ(p.round(), 1);  // unmoved
  EXPECT_TRUE(out.empty());
}

TEST(ResetProcess, AdvancesRoundAfterT1Votes) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);  // T1 = 10
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  for (int s = 1; s <= th.t1; ++s) {
    sim::Envelope env;
    env.sender = s % n;
    env.receiver = 0;
    env.payload = make_vote(1, 0);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.round(), 2);
  EXPECT_EQ(p.output(), 0);  // T2 = 10 unanimous zeros → decide 0
  EXPECT_EQ(p.estimate(), 0);
  // Staged the round-2 broadcast.
  EXPECT_EQ(out.items().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(out.items().front().msg.round, 2);
}

TEST(ResetProcess, T3MetWithoutT2AdoptsWithoutDeciding) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);  // T1=T2=10, T3=9
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  // 9 ones + 1 zero: T3=9 ones met, T2=10 not met.
  for (int s = 0; s < 9; ++s) {
    sim::Envelope env;
    env.sender = s + 1;
    env.receiver = 0;
    env.payload = make_vote(1, 1);
    p.on_receive(env, rng, out);
  }
  sim::Envelope env;
  env.sender = 11;
  env.receiver = 0;
  env.payload = make_vote(1, 0);
  p.on_receive(env, rng, out);
  EXPECT_EQ(p.output(), kBot);
  EXPECT_EQ(p.estimate(), 1);
  EXPECT_EQ(p.round(), 2);
}

TEST(ResetProcess, BelowT3FlipsCoin) {
  // With a balanced T1 batch neither value reaches T3: x is re-randomized.
  // Determinism of the engine lets us just assert the round advanced and
  // the estimate is a bit.
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(7);
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = (s + 1) % n;
    env.receiver = 0;
    env.payload = make_vote(1, s % 2);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.round(), 2);
  EXPECT_EQ(p.output(), kBot);
  EXPECT_TRUE(p.estimate() == 0 || p.estimate() == 1);
}

TEST(ResetProcess, ExtraVotesBeyondT1Ignored) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  // T1 zeros then 5 ones (late arrivals for the same round).
  for (int s = 0; s < th.t1 + 5; ++s) {
    sim::Envelope env;
    env.sender = s % n;
    env.receiver = 0;
    env.payload = make_vote(1, s < th.t1 ? 0 : 1);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.output(), 0);   // decided on the first T1 (all zeros)
  EXPECT_EQ(p.round(), 2);    // advanced exactly once
}

TEST(ResetProcess, FutureRoundVotesBufferedAndConsumed) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  // Deliver T1 round-2 votes FIRST (p is still in round 1), then T1 round-1.
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = s % n;
    env.receiver = 0;
    env.payload = make_vote(2, 1);
    p.on_receive(env, rng, out);
  }
  EXPECT_EQ(p.round(), 1);  // cannot act on round 2 yet
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = s % n;
    env.receiver = 0;
    env.payload = make_vote(1, 1);
    p.on_receive(env, rng, out);
  }
  // Round 1 consumed, then buffered round 2 votes consumed in cascade.
  EXPECT_EQ(p.round(), 3);
  EXPECT_EQ(p.output(), 1);
}

TEST(ResetProcess, ResetErasesEverythingButIdentityInputOutput) {
  const int n = 12;
  ResetProcess p(3, n, 1, canonical_thresholds(n, 1));
  p.on_reset();
  EXPECT_TRUE(p.rejoining());
  EXPECT_EQ(p.round(), kBot);
  EXPECT_EQ(p.estimate(), kBot);
  EXPECT_EQ(p.input(), 1);    // survives
  EXPECT_EQ(p.output(), kBot);  // unwritten, survives as ⊥
}

TEST(ResetProcess, RejoinAdoptsCommonRoundAndResumes) {
  const int n = 12;
  const int t = 1;
  const Thresholds th = canonical_thresholds(n, t);
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  p.on_reset();
  ASSERT_TRUE(p.rejoining());
  // T1 votes with common round 5 arrive.
  for (int s = 0; s < th.t1; ++s) {
    sim::Envelope env;
    env.sender = (s + 1) % n;
    env.receiver = 0;
    env.payload = make_vote(5, 1);
    p.on_receive(env, rng, out);
  }
  EXPECT_FALSE(p.rejoining());
  EXPECT_EQ(p.round(), 6);      // adopted 5, did step 3, advanced
  EXPECT_EQ(p.estimate(), 1);   // unanimous ones → adopt 1
  EXPECT_EQ(p.output(), 1);     // T2 met
  EXPECT_FALSE(out.empty());    // resumed sending
}

TEST(ResetProcess, RejoiningProcessorStaysSilentUntilRejoin) {
  const int n = 12;
  const Thresholds th = canonical_thresholds(n, 1);
  ResetProcess p(0, n, 0, th);
  sim::Outbox out(n);
  Rng rng(1);
  p.on_reset();
  // Fewer than T1 votes: still rejoining, still silent.
  for (int s = 0; s < th.t1 - 1; ++s) {
    sim::Envelope env;
    env.sender = (s + 1) % n;
    env.receiver = 0;
    env.payload = make_vote(4, 0);
    p.on_receive(env, rng, out);
  }
  EXPECT_TRUE(p.rejoining());
  EXPECT_TRUE(out.empty());
}

TEST(ResetProcess, DecidedProcessorKeepsParticipating) {
  // After deciding, the processor still votes (peers rely on its messages).
  const int n = 12;
  const int t = 1;
  Execution e = make_exec(n, t, unanimous_inputs(n, 1), 1);
  adversary::FairWindowAdversary fair;
  sim::run_acceptable_window(e, fair, t);
  ASSERT_EQ(e.decided_count(), n);
  // All processors staged round-2 votes after deciding.
  for (int p = 0; p < n; ++p) EXPECT_TRUE(e.has_staged(p));
}

TEST(ResetProcess, EndToEndWithResetStormTerminatesAndAgrees) {
  const int n = 14;
  const int t = 2;
  Execution e = make_exec(n, t, split_inputs(n, 0.5), 99);
  adversary::ResetStormAdversary storm(t, Rng(5));
  const auto windows = sim::run_until_all_decided(e, storm, t, 200000);
  EXPECT_LT(windows, 200000);
  EXPECT_TRUE(e.all_live_decided());
  EXPECT_TRUE(e.outputs_agree());
  EXPECT_GT(e.total_resets(), 0);
}

// Parameterized sweep: unanimity fast path must hold for every adversary
// and both values across a range of n.
struct FastPathParam {
  int n;
  int t;
  int value;
};

class ResetFastPathTest : public ::testing::TestWithParam<FastPathParam> {};

TEST_P(ResetFastPathTest, UnanimousDecidesInWindowOne) {
  const auto [n, t, v] = GetParam();
  Execution e = make_exec(n, t, unanimous_inputs(n, v), 7);
  adversary::SplitKeeperAdversary keeper;  // even adversarial ordering
  sim::run_acceptable_window(e, keeper, t);
  EXPECT_EQ(e.decided_count(), n);
  for (int p = 0; p < n; ++p) EXPECT_EQ(e.output(p), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResetFastPathTest,
    ::testing::Values(FastPathParam{7, 1, 0}, FastPathParam{7, 1, 1},
                      FastPathParam{13, 2, 0}, FastPathParam{13, 2, 1},
                      FastPathParam{19, 3, 0}, FastPathParam{19, 3, 1},
                      FastPathParam{25, 4, 1}, FastPathParam{31, 5, 0}));

}  // namespace
}  // namespace aa::protocols
