#include <gtest/gtest.h>

#include "protocols/thresholds.hpp"

namespace aa::protocols {
namespace {

TEST(Thresholds, CanonicalValues) {
  const Thresholds th = canonical_thresholds(24, 3);
  EXPECT_EQ(th.t1, 18);
  EXPECT_EQ(th.t2, 18);
  EXPECT_EQ(th.t3, 15);
}

TEST(Thresholds, CanonicalSatisfiesTheorem4ForSmallT) {
  // Theorem 4: for every t < n/6 the canonical setting is valid.
  for (int n : {7, 13, 24, 31, 48, 97}) {
    for (int t = 1; 6 * t < n; ++t) {
      const Thresholds th = canonical_thresholds(n, t);
      EXPECT_TRUE(thresholds_valid(n, t, th))
          << "n=" << n << " t=" << t << ": " << threshold_violation(n, t, th);
    }
  }
}

TEST(Thresholds, ViolationMessagesNameTheConstraint) {
  // T1 too large.
  EXPECT_NE(threshold_violation(12, 2, {9, 8, 7}).find("n - 2t >= T1"),
            std::string::npos);
  // T1 < T2.
  EXPECT_NE(threshold_violation(12, 1, {8, 9, 7}).find("T1 >= T2"),
            std::string::npos);
  // T2 < T3 + t.
  EXPECT_NE(threshold_violation(12, 2, {8, 8, 7}).find("T2 >= T3 + t"),
            std::string::npos);
  // 2*T3 <= n.
  EXPECT_NE(threshold_violation(12, 1, {10, 8, 6}).find("2*T3 > n"),
            std::string::npos);
  // Non-positive.
  EXPECT_NE(threshold_violation(12, 1, {0, 0, 0}).find("positive"),
            std::string::npos);
}

TEST(Thresholds, ValidSettingsHaveEmptyViolation) {
  EXPECT_TRUE(threshold_violation(24, 3, canonical_thresholds(24, 3)).empty());
}

TEST(Thresholds, SmallerT2IsLegalWhenTIsSmall) {
  // With slack (t well below n/6), T2 can sit below T1.
  const int n = 36;
  const int t = 2;
  const Thresholds th{n - 2 * t, n - 2 * t - 3, n - 2 * t - 3 - t};
  EXPECT_TRUE(thresholds_valid(n, t, th)) << threshold_violation(n, t, th);
}

TEST(Thresholds, MaxSupportedTMatchesTheorem) {
  // t must stay under n/6; check the reported ceiling is valid and maximal.
  for (int n : {13, 24, 48, 100}) {
    const int tmax = max_supported_t(n);
    EXPECT_GT(tmax, 0);
    EXPECT_LT(6 * tmax, n);
    EXPECT_TRUE(thresholds_valid(n, tmax, canonical_thresholds(n, tmax)));
    // t = tmax + 1 must fail (either ≥ n/6 or constraints break).
    const int tnext = tmax + 1;
    EXPECT_TRUE(6 * tnext >= n ||
                !thresholds_valid(n, tnext, canonical_thresholds(n, tnext)));
  }
}

TEST(Thresholds, TinyNHasNoSupportedT) {
  EXPECT_EQ(max_supported_t(6), 0);
  EXPECT_EQ(max_supported_t(1), 0);
}

TEST(Thresholds, ArgumentValidation) {
  EXPECT_THROW((void)canonical_thresholds(0, 0), std::invalid_argument);
  EXPECT_THROW((void)canonical_thresholds(10, -1), std::invalid_argument);
  EXPECT_THROW((void)max_supported_t(0), std::invalid_argument);
}

}  // namespace
}  // namespace aa::protocols
