#!/usr/bin/env python3
"""Unit tests for scripts/bench_diff.py — the CI perf-regression gate.

The gate's failure modes matter as much as its happy path: a missing
previous run, an artifact a SIGKILLed bench truncated, or a bench that
predates a tracked metric must all pass (warn-and-skip), while a genuine
regression beyond tolerance must fail. Run directly or via CTest
(scripts_test_bench_diff); stdlib unittest only.
"""

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import bench_diff  # noqa: E402


def run_diff(argv):
    """bench_diff.main() under argv, returning (exit_code, stdout+stderr)."""
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = ["bench_diff.py"] + argv
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            code = bench_diff.main()
    finally:
        sys.argv = old_argv
    return code, out.getvalue()


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.root = pathlib.Path(self._tmp.name)
        self.current = self.root / "current"
        self.previous = self.root / "previous"
        self.current.mkdir()
        self.previous.mkdir()

    def write_artifact(self, directory, name, speedup):
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps({"parallel_speedup": speedup}) + "\n")
        return path

    def diff(self, tolerance=0.15, previous=True):
        argv = ["--current", str(self.current), "--tolerance", str(tolerance)]
        if previous:
            argv += ["--previous", str(self.previous)]
        return run_diff(argv)

    # ---- regression detection ----

    def test_regression_beyond_tolerance_fails(self):
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 3.0)  # -25% at 15% tolerance
        code, out = self.diff()
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_within_tolerance_passes(self):
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 3.6)  # -10%
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("within tolerance", out)

    def test_improvement_passes(self):
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 5.0)
        code, _ = self.diff()
        self.assertEqual(code, 0)

    def test_tolerance_is_configurable(self):
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 3.6)  # -10%
        code, _ = self.diff(tolerance=0.05)
        self.assertEqual(code, 1)

    # ---- missing-artifact tolerance ----

    def test_no_previous_dir_passes(self):
        self.write_artifact(self.current, "pool", 4.0)
        code, out = self.diff(previous=False)
        self.assertEqual(code, 0)
        self.assertIn("nothing to compare", out)

    def test_previous_dir_path_missing_passes(self):
        self.write_artifact(self.current, "pool", 4.0)
        code, _ = run_diff(["--current", str(self.current),
                            "--previous", str(self.root / "nonexistent")])
        self.assertEqual(code, 0)

    def test_missing_previous_artifact_skipped(self):
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 3.0)  # would regress...
        self.write_artifact(self.current, "fresh_bench", 1.0)  # ...new bench ok
        code, out = self.diff()
        self.assertEqual(code, 1)  # pool still gates
        self.assertIn("BENCH_fresh_bench.json: no previous artifact", out)

    def test_empty_current_dir_fails(self):
        # No artifacts at all means the bench step itself broke — that must
        # NOT silently pass.
        code, _ = self.diff()
        self.assertEqual(code, 1)

    def test_metric_absent_previously_skipped(self):
        (self.previous / "BENCH_pool.json").write_text('{"other": 1}\n')
        self.write_artifact(self.current, "pool", 3.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("absent previously", out)

    # ---- corrupt-JSON handling ----

    def test_truncated_previous_json_warns_and_passes(self):
        (self.previous / "BENCH_pool.json").write_text('{"parallel_spee')
        self.write_artifact(self.current, "pool", 3.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("skipping unreadable", out)

    def test_truncated_current_json_warns_and_passes(self):
        self.write_artifact(self.previous, "pool", 4.0)
        (self.current / "BENCH_pool.json").write_text("")
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("skipping unreadable", out)

    def test_non_object_json_warns_and_passes(self):
        (self.previous / "BENCH_pool.json").write_text("[1, 2, 3]\n")
        self.write_artifact(self.current, "pool", 3.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("not an object", out)

    def test_non_numeric_metric_skipped(self):
        (self.current / "BENCH_pool.json").write_text(
            '{"parallel_speedup": "fast"}\n')
        self.write_artifact(self.previous, "pool", 4.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("no tracked metrics", out)

    def test_zero_previous_value_unusable(self):
        self.write_artifact(self.previous, "pool", 0.0)
        self.write_artifact(self.current, "pool", 3.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("unusable", out)

    # ---- the lens-off throughput gate ----

    def write_lens_artifact(self, directory, windows_per_sec):
        path = directory / "BENCH_l1_latency_lens.json"
        path.write_text(json.dumps(
            {"lens_off_windows_per_sec": windows_per_sec}) + "\n")
        return path

    def test_lens_off_throughput_is_tracked(self):
        self.assertIn("lens_off_windows_per_sec", bench_diff.TRACKED_METRICS)
        self.write_lens_artifact(self.previous, 50000.0)
        self.write_lens_artifact(self.current, 40000.0)  # -20% at 15% tol
        code, out = self.diff()
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("lens_off_windows_per_sec", out)

    def test_lens_off_throughput_within_tolerance_passes(self):
        self.write_lens_artifact(self.previous, 50000.0)
        self.write_lens_artifact(self.current, 45000.0)  # -10%
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("within tolerance", out)

    # ---- orphaned-gate warnings (rename/removal must not be silent) ----

    def test_removed_metric_warns_loudly(self):
        # The previous artifact tracked a metric the current one lost: a
        # bench rename in disguise. Must warn (listing the key) but exit 0.
        self.write_artifact(self.previous, "pool", 4.0)
        (self.current / "BENCH_pool.json").write_text('{"other": 1}\n')
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("WARNING", out)
        self.assertIn("orphaned", out)
        self.assertIn("parallel_speedup", out)
        self.assertIn("metric removed", out)

    def test_removed_artifact_warns_loudly(self):
        # A whole artifact vanished between runs: every tracked metric it
        # carried is now ungated.
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.previous, "gone_bench", 2.0)
        self.write_artifact(self.current, "pool", 4.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("WARNING", out)
        self.assertIn("BENCH_gone_bench.json", out)
        self.assertIn("artifact removed", out)
        self.assertIn("parallel_speedup", out)

    def test_orphan_warning_lists_every_lost_key(self):
        (self.previous / "BENCH_pool.json").write_text(json.dumps(
            {"parallel_speedup": 4.0,
             "lens_off_windows_per_sec": 50000.0}) + "\n")
        (self.current / "BENCH_pool.json").write_text('{"other": 1}\n')
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertIn("lens_off_windows_per_sec", out)
        self.assertIn("parallel_speedup", out)

    def test_orphan_warning_does_not_mask_regressions(self):
        # Orphans warn, regressions still gate: exit code must stay 1.
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 3.0)  # -25%
        self.write_artifact(self.previous, "gone_bench", 2.0)
        code, out = self.diff()
        self.assertEqual(code, 1)
        self.assertIn("WARNING", out)
        self.assertIn("REGRESSION", out)

    def test_no_orphans_no_warning(self):
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 4.1)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertNotIn("WARNING", out)

    def test_untracked_keys_in_removed_artifact_do_not_warn(self):
        # A vanished artifact that never carried tracked metrics orphans
        # nothing — no warning noise.
        self.write_artifact(self.previous, "pool", 4.0)
        (self.previous / "BENCH_scratch.json").write_text('{"other": 1}\n')
        self.write_artifact(self.current, "pool", 4.0)
        code, out = self.diff()
        self.assertEqual(code, 0)
        self.assertNotIn("WARNING", out)

    def test_both_metrics_gate_independently(self):
        # One artifact can regress parallel_speedup while another regresses
        # the lens-off rate; both must be reported.
        self.write_artifact(self.previous, "pool", 4.0)
        self.write_artifact(self.current, "pool", 3.0)
        self.write_lens_artifact(self.previous, 50000.0)
        self.write_lens_artifact(self.current, 40000.0)
        code, out = self.diff()
        self.assertEqual(code, 1)
        self.assertIn("2 metric(s) regressed", out)


if __name__ == "__main__":
    unittest.main()
