// Arena regression tests: the recycling MessageBuffer must keep live memory
// bounded over long horizons and preserve the append-only store's
// ascending-id iteration order exactly (checker reports depend on it).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"
#include "util/rng.hpp"

namespace aa::sim {
namespace {

using protocols::ProtocolKind;

TEST(Arena, LiveSlotsStayBoundedAcross5kWindows) {
  const int n = 16;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::Reset, t,
                                        protocols::split_inputs(n, 0.5)),
              7);
  adversary::SplitKeeperAdversary keeper;
  std::size_t capacity_after_warmup = 0;
  for (int w = 0; w < 5000; ++w) {
    run_acceptable_window(e, keeper, t);
    if (w == 99) capacity_after_warmup = e.buffer().slot_capacity();
  }
  // Every window ends empty (all of its messages delivered or dropped)...
  EXPECT_EQ(e.buffer().pending_count(), 0u);
  // ...so the arena's high-water mark is one window's n² burst, reached in
  // the first windows and never exceeded again — memory is independent of
  // the horizon even though 5000 · n² messages flowed through.
  EXPECT_EQ(e.buffer().slot_capacity(), capacity_after_warmup);
  EXPECT_LE(e.buffer().slot_capacity(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  EXPECT_EQ(e.buffer().total_sent(),
            5000u * static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
}

/// Reference model: the seed's append-only semantics, kept naive on purpose.
struct NaiveModel {
  struct Entry {
    MsgId id;
    ProcId sender;
    ProcId receiver;
    std::int64_t window;
    bool pending = true;
  };
  std::vector<Entry> all;

  void add(MsgId id, ProcId s, ProcId r, std::int64_t w) {
    all.push_back(Entry{id, s, r, w, true});
  }
  void retire(MsgId id) {
    for (Entry& e : all) {
      if (e.id == id) e.pending = false;
    }
  }
  [[nodiscard]] std::vector<MsgId> pending_to(ProcId r) const {
    std::vector<MsgId> out;
    for (const Entry& e : all) {
      if (e.pending && e.receiver == r) out.push_back(e.id);
    }
    return out;
  }
  [[nodiscard]] std::vector<MsgId> pending_from_to(ProcId s, ProcId r) const {
    std::vector<MsgId> out;
    for (const Entry& e : all) {
      if (e.pending && e.sender == s && e.receiver == r) out.push_back(e.id);
    }
    return out;
  }
  [[nodiscard]] std::vector<MsgId> pending_in_window(std::int64_t w) const {
    std::vector<MsgId> out;
    for (const Entry& e : all) {
      if (e.pending && e.window == w) out.push_back(e.id);
    }
    return out;
  }
  [[nodiscard]] std::vector<MsgId> all_pending() const {
    std::vector<MsgId> out;
    for (const Entry& e : all) {
      if (e.pending) out.push_back(e.id);
    }
    return out;
  }
};

TEST(Arena, IterationOrderMatchesSeedIdOrderUnderChurn) {
  // Random interleaving of sends, deliveries, drops and window advances,
  // with long-lived stragglers (messages that stay pending for many
  // windows, async-style). After every mutation batch, every query must
  // agree with the naive ascending-id model — order included.
  const int n = 6;
  MessageBuffer buf(n);
  NaiveModel model;
  Rng rng(123);
  Message m;
  m.kind = 1;

  std::int64_t window = 0;
  for (int step = 0; step < 400; ++step) {
    // Send a few messages in the current window.
    const int sends = 1 + static_cast<int>(rng.uniform_index(5));
    for (int k = 0; k < sends; ++k) {
      const auto s = static_cast<ProcId>(rng.uniform_index(n));
      const auto r = static_cast<ProcId>(rng.uniform_index(n));
      const MsgId id = buf.add(s, r, m, window, 1);
      model.add(id, s, r, window);
    }
    // Deliver a random subset of what's pending (leaves stragglers behind).
    const auto pending = buf.all_pending_ids();
    for (MsgId id : pending) {
      if (rng.uniform_index(3) == 0) {
        buf.mark_delivered(id);
        model.retire(id);
      }
    }
    // Occasionally close the window seed-style (drop its leftovers) or
    // advance keeping everything pending.
    if (rng.uniform_index(4) == 0) {
      for (MsgId id : buf.pending_in_window_ids(window)) model.retire(id);
      buf.drop_pending_in_window(window);
      ++window;
    } else if (rng.uniform_index(4) == 0) {
      ++window;
    }

    EXPECT_EQ(buf.all_pending_ids(), model.all_pending());
    for (ProcId r = 0; r < n; ++r) {
      EXPECT_EQ(buf.pending_to_ids(r), model.pending_to(r));
      for (ProcId s = 0; s < n; ++s) {
        EXPECT_EQ(buf.pending_from_to_ids(s, r), model.pending_from_to(s, r));
      }
    }
    for (std::int64_t w = window > 8 ? window - 8 : 0; w <= window; ++w) {
      EXPECT_EQ(buf.pending_in_window_ids(w), model.pending_in_window(w));
    }
    EXPECT_EQ(buf.pending_count(), model.all_pending().size());
  }
  EXPECT_GT(buf.total_sent(), 400u);
}

TEST(Arena, RecycledSlotsKeepIdsDistinct) {
  // A slot reused by a later message must answer queries for the NEW id
  // only; the old id stays retired forever.
  MessageBuffer buf(2);
  Message m;
  m.kind = 1;
  const MsgId a = buf.add(0, 1, m, 0, 1);
  buf.mark_delivered(a);
  const MsgId b = buf.add(1, 0, m, 0, 1);  // reuses a's slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(buf.is_pending(a));
  EXPECT_TRUE(buf.is_pending(b));
  EXPECT_THROW((void)buf.get(a), std::logic_error);
  EXPECT_EQ(buf.get(b).sender, 1);
  EXPECT_EQ(buf.slot_capacity(), 1u);
}

}  // namespace
}  // namespace aa::sim
