#include <gtest/gtest.h>

#include "adversary/async_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/async.hpp"

namespace aa::sim {
namespace {

using protocols::ProtocolKind;

TEST(RunAsync, BenOrDecidesUnderRandomScheduler) {
  const int n = 8;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              42);
  adversary::RandomAsyncScheduler sched(Rng(7));
  const AsyncRunResult r = run_async(e, sched, t, 2'000'000);
  EXPECT_FALSE(r.hit_step_limit);
  EXPECT_GT(e.decided_count(), 0);
  EXPECT_TRUE(e.outputs_agree());
}

TEST(RunAsync, UnanimousInputsAlwaysDecideInput) {
  const int n = 8;
  const int t = 2;
  for (int v = 0; v <= 1; ++v) {
    Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                          protocols::unanimous_inputs(n, v)),
                static_cast<std::uint64_t>(10 + v));
    adversary::RandomAsyncScheduler sched(Rng(7));
    run_async(e, sched, t, 2'000'000, /*until_all=*/true);
    ASSERT_GT(e.decided_count(), 0);
    EXPECT_EQ(e.first_decision()->value, v);
  }
}

TEST(RunAsync, CrashBudgetEnforced) {
  const int n = 6;
  const int t = 1;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              1);
  adversary::FixedCrashScheduler sched({0, 1}, Rng(3));  // wants 2 > t = 1
  EXPECT_THROW(run_async(e, sched, t, 100000), std::invalid_argument);
}

TEST(RunAsync, SurvivesTCrashes) {
  const int n = 9;
  const int t = 3;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              11);
  adversary::FixedCrashScheduler sched({0, 1, 2}, Rng(5));
  const AsyncRunResult r = run_async(e, sched, t, 2'000'000);
  EXPECT_EQ(r.crashes, 3);
  EXPECT_GT(e.decided_count(), 0);
  EXPECT_TRUE(e.outputs_agree());
}

TEST(RunAsync, StopActionEndsRun) {
  class StopperAdversary final : public AsyncAdversary {
   public:
    AsyncAction next(const Execution&) override { return StopAction{}; }
    [[nodiscard]] std::string name() const override { return "stopper"; }
  };
  const int t = 1;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(6, 0.5)),
              1);
  StopperAdversary stop;
  const AsyncRunResult r = run_async(e, stop, t, 1000);
  EXPECT_TRUE(r.stopped_by_adversary);
  EXPECT_EQ(r.deliveries, 0);
}

TEST(RunAsync, StepLimitReported) {
  const int n = 8;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              42);
  adversary::RandomAsyncScheduler sched(Rng(7));
  const AsyncRunResult r = run_async(e, sched, t, 5);  // far too few
  EXPECT_TRUE(r.hit_step_limit);
  EXPECT_EQ(r.deliveries, 5);
}

TEST(RunAsync, DeterministicGivenSeeds) {
  auto run = [](std::uint64_t seed) {
    const int t = 2;
    Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                          protocols::split_inputs(8, 0.5)),
                seed);
    adversary::RandomAsyncScheduler sched(Rng(99));
    run_async(e, sched, t, 2'000'000);
    return e.first_decision()->value;
  };
  EXPECT_EQ(run(1234), run(1234));
}

TEST(RunAsync, ChainDepthGrowsWithDeliveries) {
  const int n = 8;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::BenOr, t,
                                        protocols::split_inputs(n, 0.5)),
              42);
  adversary::RandomAsyncScheduler sched(Rng(7));
  run_async(e, sched, t, 2'000'000);
  ASSERT_GT(e.decided_count(), 0);
  EXPECT_GT(e.first_decision()->chain, 1);
}

}  // namespace
}  // namespace aa::sim
