#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "adversary/window_adversaries.hpp"
#include "sim/buffer.hpp"
#include "sim/execution.hpp"
#include "sim/window.hpp"

namespace aa::sim {

// The auditor's test backdoor (declared a friend in buffer.hpp /
// execution.hpp): plants targeted corruptions in otherwise-unreachable
// private state, so the self-test can prove the auditor actually detects
// each invariant violation rather than vacuously passing.
struct AuditTestAccess {
  // ---- MessageBuffer state ----
  static std::int32_t slot_of(MessageBuffer& b, MsgId id) {
    return b.slot_of(id);
  }
  static std::int32_t rcv_head(MessageBuffer& b, ProcId r) {
    return b.rcv_head_[static_cast<std::size_t>(r)];
  }
  static void set_next_rcv(MessageBuffer& b, std::int32_t s, std::int32_t v) {
    b.links_[static_cast<std::size_t>(s)].next_rcv = v;
  }
  /// Forge the parked state on a slot (clear / restore the metadata id the
  /// SoA arena uses as its pending marker) — the analogue of the old
  /// lazy-flag tamper.
  static void set_parked(MessageBuffer& b, std::int32_t s, bool v) {
    b.meta_[static_cast<std::size_t>(s)].id =
        v ? kNoMsg : b.envs_[static_cast<std::size_t>(s)].id;
  }
  static Envelope& env(MessageBuffer& b, std::int32_t s) {
    return b.envs_[static_cast<std::size_t>(s)];
  }
  /// Break a pending id's resolution in whichever tier owns it: point the
  /// direct-index entry at the wrong slot, or erase the straggler-map
  /// entry.
  static void unresolve_id(MessageBuffer& b, MsgId id) {
    if (id >= b.direct_base_) {
      std::int32_t& entry =
          b.direct_slots_[static_cast<std::size_t>(id - b.direct_base_)];
      entry = entry == 0 ? 1 : 0;  // any other slot index
    } else {
      // aa-lint: erase-ok(audit self-test plants the corruption it detects)
      b.id_map_.erase(id);
    }
  }
  static void spill(MessageBuffer& b) { b.spill_direct_index(); }
  static void bump_pending(MessageBuffer& b) { ++b.pending_; }
  static void set_free_head(MessageBuffer& b, std::int32_t s) {
    b.free_head_ = s;
  }
  // ---- Execution state ----
  static MessageBuffer& buffer(Execution& e) { return e.buffer_; }
  static void push_decision(Execution& e, const Decision& d) {
    e.decisions_.push_back(d);
  }
  static void set_crashed_count(Execution& e, int v) { e.crashed_count_ = v; }
  static void bump_total_resets(Execution& e) { ++e.total_resets_; }
  static void stage_message(Execution& e, ProcId p) {
    e.staged_[static_cast<std::size_t>(p)].send(0, Message{});
  }
};

namespace {

// A buffer exercising every slot state the auditor distinguishes: pending
// (receiver + window lists), lazy-parked (window list only, id unmapped),
// and free (retired via mark_delivered / mark_dropped).
MessageBuffer busy_buffer() {
  MessageBuffer buf(4);
  for (ProcId s = 0; s < 4; ++s) {
    for (ProcId r = 0; r < 4; ++r) {
      buf.add(s, r, Message{}, /*window=*/0, /*chain=*/1);
    }
  }
  for (const MsgId id : buf.pending_to_ids(0)) {
    EXPECT_NE(buf.deliver_lazy(id, 0), nullptr) << "id " << id;
  }
  const std::vector<MsgId> to1 = buf.pending_to_ids(1);
  buf.mark_dropped(to1[0]);
  buf.mark_delivered(to1[1]);
  return buf;
}

// One live (pending) message id addressed to receiver 2 — a slot on both
// the receiver and the window list, the richest corruption target.
MsgId live_id(MessageBuffer& buf) {
  const std::vector<MsgId> ids = buf.pending_to_ids(2);
  EXPECT_FALSE(ids.empty());
  return ids[1];
}

TEST(BufferAudit, CleanBufferPasses) {
  MessageBuffer buf = busy_buffer();
  EXPECT_NO_THROW(buf.audit());
  // And stays clean across the window sweep that recycles parked slots.
  buf.drop_pending_in_window(0);
  EXPECT_NO_THROW(buf.audit());
}

TEST(BufferAudit, DetectsReceiverListCycle) {
  MessageBuffer buf = busy_buffer();
  const std::int32_t head = AuditTestAccess::rcv_head(buf, 2);
  ASSERT_GE(head, 0);
  AuditTestAccess::set_next_rcv(buf, head, head);
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsDirectIndexEntryBroken) {
  // Fresh ids live in the direct tier: break its entry for a pending id.
  MessageBuffer buf = busy_buffer();
  AuditTestAccess::unresolve_id(buf, live_id(buf));
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsIdMapEntryMissingAfterSpill) {
  // After a spill every live id resolves through the straggler map; the
  // same corruption must be caught on that tier too.
  MessageBuffer buf = busy_buffer();
  AuditTestAccess::spill(buf);
  EXPECT_NO_THROW(buf.audit());  // the spill itself is invariant-preserving
  AuditTestAccess::unresolve_id(buf, live_id(buf));
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsParkedStateOnLinkedSlot) {
  MessageBuffer buf = busy_buffer();
  AuditTestAccess::set_parked(buf, AuditTestAccess::slot_of(buf, live_id(buf)),
                              true);
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsLifecycleCounterDrift) {
  MessageBuffer buf = busy_buffer();
  AuditTestAccess::bump_pending(buf);
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsWindowFieldTamper) {
  MessageBuffer buf = busy_buffer();
  const std::int32_t slot = AuditTestAccess::slot_of(buf, live_id(buf));
  AuditTestAccess::env(buf, slot).window += 7;
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsIdFieldTamper) {
  MessageBuffer buf = busy_buffer();
  const std::int32_t slot = AuditTestAccess::slot_of(buf, live_id(buf));
  AuditTestAccess::env(buf, slot).id = 9999;  // beyond every issued id
  EXPECT_THROW(buf.audit(), std::logic_error);
}

TEST(BufferAudit, DetectsFreeListPointingAtLiveSlot) {
  MessageBuffer buf = busy_buffer();
  AuditTestAccess::set_free_head(buf,
                                 AuditTestAccess::slot_of(buf, live_id(buf)));
  EXPECT_THROW(buf.audit(), std::logic_error);
}

// ---- Execution-level auditor ----------------------------------------------

class PingProcess final : public Process {
 public:
  explicit PingProcess(int input) : input_(input) {}
  void on_start(Outbox& out) override {
    Message m;
    m.round = 1;
    m.value = input_;
    out.broadcast(m);
  }
  void on_receive(const Envelope& env, Rng&, Outbox& out) override {
    if (env.payload.round >= 4 && output_ == kBot) output_ = input_;
    Message m = env.payload;
    m.round += 1;
    out.send(env.sender, m);
  }
  void on_reset() override {}
  [[nodiscard]] int input() const override { return input_; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override { return 0; }
  [[nodiscard]] int estimate() const override { return input_; }
  [[nodiscard]] const char* protocol_name() const override { return "ping"; }

 private:
  int input_;
  int output_ = kBot;
};

std::vector<std::unique_ptr<Process>> ping_procs(int n) {
  std::vector<std::unique_ptr<Process>> ps;
  for (int i = 0; i < n; ++i) {
    ps.push_back(std::make_unique<PingProcess>(i % 2));
  }
  return ps;
}

TEST(ExecutionAudit, CleanRunPassesAndAuditConfigRunsEveryWindow) {
  ExecutionConfig cfg;
  cfg.audit = true;  // end_window audits before every sweep from here on
  Execution exec(ping_procs(6), 42, cfg);
  adversary::FairWindowAdversary fair;
  for (int w = 0; w < 6; ++w) {
    ASSERT_NO_THROW(run_acceptable_window(exec, fair, /*t=*/1));
  }
  EXPECT_NO_THROW(exec.audit());
}

TEST(ExecutionAudit, DetectsBogusDecisionRecord) {
  Execution exec(ping_procs(4), 7);
  AuditTestAccess::push_decision(
      exec, Decision{/*proc=*/0, /*value=*/2, /*window=*/0, /*step=*/0,
                     /*chain=*/0});
  EXPECT_THROW(exec.audit(), std::logic_error);
}

TEST(ExecutionAudit, DetectsCrashedCountTamper) {
  Execution exec(ping_procs(4), 7);
  AuditTestAccess::set_crashed_count(exec, 2);
  EXPECT_THROW(exec.audit(), std::logic_error);
}

TEST(ExecutionAudit, DetectsResetCounterTamper) {
  Execution exec(ping_procs(4), 7);
  AuditTestAccess::bump_total_resets(exec);
  EXPECT_THROW(exec.audit(), std::logic_error);
}

TEST(ExecutionAudit, DetectsStagedMessagesOnCrashedProcessor) {
  Execution exec(ping_procs(4), 7);
  exec.crash(1);
  EXPECT_NO_THROW(exec.audit());  // crash alone is consistent
  AuditTestAccess::stage_message(exec, 1);
  EXPECT_THROW(exec.audit(), std::logic_error);
}

TEST(ExecutionAudit, BufferCorruptionSurfacesThroughExecutionAudit) {
  Execution exec(ping_procs(4), 7);
  for (ProcId p = 0; p < 4; ++p) (void)exec.sending_step(p);
  MessageBuffer& buf = AuditTestAccess::buffer(exec);
  ASSERT_GT(buf.pending_count(), 0u);
  AuditTestAccess::bump_pending(buf);
  EXPECT_THROW(exec.audit(), std::logic_error);
}

}  // namespace
}  // namespace aa::sim
