// Batched delivery (Execution::deliver_run + Process::on_receive_batch):
//  * the default on_receive_batch (loop of on_receive) is observationally
//    identical to the protocols' devirtualized overrides, for every
//    protocol kind — checked by running the same seeded executions with
//    the overrides masked behind a forwarding wrapper;
//  * deliver_run itself matches a receiving_step-per-id loop (up to the
//    documented end-of-run granularity of Decision step/chain stamps);
//  * deliver_run edge cases (empty run, retired ids, wrong receiver).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"

namespace aa::sim {
namespace {

using protocols::ProtocolKind;

/// Forwards everything to the wrapped process EXCEPT on_receive_batch,
/// which falls back to the Process default (per-envelope virtual loop) —
/// masking any batch override the inner protocol has.
class PerEnvelopeOnly final : public Process {
 public:
  explicit PerEnvelopeOnly(std::unique_ptr<Process> inner)
      : inner_(std::move(inner)) {}

  void on_start(Outbox& out) override { inner_->on_start(out); }
  void on_receive(const Envelope& env, Rng& rng, Outbox& out) override {
    inner_->on_receive(env, rng, out);
  }
  // on_receive_batch deliberately NOT overridden.
  void on_reset() override { inner_->on_reset(); }
  [[nodiscard]] int input() const override { return inner_->input(); }
  [[nodiscard]] int output() const override { return inner_->output(); }
  [[nodiscard]] int round() const override { return inner_->round(); }
  [[nodiscard]] int estimate() const override { return inner_->estimate(); }
  [[nodiscard]] const char* protocol_name() const override {
    return inner_->protocol_name();
  }

 private:
  std::unique_ptr<Process> inner_;
};

Execution make_exec(ProtocolKind kind, int n, int t, std::uint64_t seed,
                    bool mask_batch_override) {
  auto procs = protocols::make_processes(kind, t,
                                         protocols::split_inputs(n, 0.5));
  if (mask_batch_override) {
    for (auto& p : procs) {
      p = std::make_unique<PerEnvelopeOnly>(std::move(p));
    }
  }
  return Execution(std::move(procs), seed);
}

void expect_same_state(const Execution& a, const Execution& b) {
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.step_count(), b.step_count());
  EXPECT_EQ(a.decided_count(), b.decided_count());
  EXPECT_EQ(a.buffer().delivered_count(), b.buffer().delivered_count());
  for (ProcId p = 0; p < a.n(); ++p) {
    EXPECT_EQ(a.output(p), b.output(p)) << "proc " << p;
    EXPECT_EQ(a.process(p).round(), b.process(p).round()) << "proc " << p;
    EXPECT_EQ(a.process(p).estimate(), b.process(p).estimate())
        << "proc " << p;
  }
}

TEST(BatchDelivery, OverridesMatchDefaultLoopForAllKinds) {
  const int n = 10;
  const int t = 1;
  for (const ProtocolKind kind :
       {ProtocolKind::Reset, ProtocolKind::BenOr, ProtocolKind::Bracha,
        ProtocolKind::Forgetful}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Execution with_override = make_exec(kind, n, t, seed, false);
      Execution default_loop = make_exec(kind, n, t, seed, true);
      adversary::FairWindowAdversary fair_a;
      adversary::FairWindowAdversary fair_b;
      run_until_all_decided(with_override, fair_a, t, 5000);
      run_until_all_decided(default_loop, fair_b, t, 5000);
      expect_same_state(with_override, default_loop);
    }
  }
}

TEST(BatchDelivery, OverridesMatchUnderAdversarialOrderAndResets) {
  const int n = 12;
  const int t = 2;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Execution with_override =
        make_exec(ProtocolKind::Reset, n, t, seed, false);
    Execution default_loop = make_exec(ProtocolKind::Reset, n, t, seed, true);
    {
      adversary::SplitKeeperAdversary keeper;
      for (int w = 0; w < 8; ++w)
        run_acceptable_window(with_override, keeper, t);
    }
    {
      adversary::SplitKeeperAdversary keeper;
      for (int w = 0; w < 8; ++w)
        run_acceptable_window(default_loop, keeper, t);
    }
    expect_same_state(with_override, default_loop);

    adversary::RandomWindowAdversary rnd_a(t, 0.3, Rng(seed));
    adversary::RandomWindowAdversary rnd_b(t, 0.3, Rng(seed));
    for (int w = 0; w < 8; ++w)
      run_acceptable_window(with_override, rnd_a, t);
    for (int w = 0; w < 8; ++w)
      run_acceptable_window(default_loop, rnd_b, t);
    expect_same_state(with_override, default_loop);
  }
}

TEST(BatchDelivery, DeliverRunMatchesPerIdReceivingSteps) {
  const int n = 8;
  const int t = 1;
  Execution batched = make_exec(ProtocolKind::Reset, n, t, 7, false);
  Execution per_id = make_exec(ProtocolKind::Reset, n, t, 7, false);

  auto send_all = [](Execution& e) {
    std::vector<MsgId> ids;
    for (ProcId p = 0; p < e.n(); ++p) {
      for (MsgId id : e.sending_step(p)) ids.push_back(id);
    }
    return ids;
  };
  const std::vector<MsgId> ids_a = send_all(batched);
  const std::vector<MsgId> ids_b = send_all(per_id);
  ASSERT_EQ(ids_a, ids_b);

  // Deliver receiver 3's messages: one deliver_run vs one receiving_step
  // per id, same order.
  std::vector<MsgId> to3;
  for (MsgId id : ids_a) {
    if (batched.buffer().get(id).receiver == 3) to3.push_back(id);
  }
  ASSERT_FALSE(to3.empty());
  const int delivered = batched.deliver_run(3, to3);
  EXPECT_EQ(delivered, static_cast<int>(to3.size()));
  for (MsgId id : to3) per_id.receiving_step(id);
  expect_same_state(batched, per_id);

  // Every id in the run is now retired: a second run is a no-op.
  EXPECT_EQ(batched.deliver_run(3, to3), 0);
}

TEST(BatchDelivery, DeliverRunEdgeCases) {
  const int n = 8;
  const int t = 1;
  Execution e = make_exec(ProtocolKind::Reset, n, t, 9, false);
  std::vector<MsgId> batch;
  for (ProcId p = 0; p < n; ++p) {
    for (MsgId id : e.sending_step(p)) batch.push_back(id);
  }
  // Empty run: no-op.
  EXPECT_EQ(e.deliver_run(2, {}), 0);
  // A run containing another receiver's message is a driver bug, and the
  // rejection happens BEFORE the message is consumed.
  std::vector<MsgId> to0{batch[0]};  // proc 0's first message goes to 0
  ASSERT_EQ(e.buffer().get(batch[0]).receiver, 0);
  EXPECT_THROW(e.deliver_run(1, to0), std::logic_error);
  EXPECT_TRUE(e.buffer().is_pending(batch[0]));
  // Delivery to a crashed receiver is a driver bug.
  e.crash(0);
  EXPECT_THROW(e.deliver_run(0, to0), std::logic_error);
}

}  // namespace
}  // namespace aa::sim
