#include <gtest/gtest.h>

#include "sim/buffer.hpp"

namespace aa::sim {
namespace {

Message msg(int round, int value) {
  Message m;
  m.round = round;
  m.kind = 1;
  m.value = value;
  return m;
}

TEST(MessageBuffer, AddAssignsSequentialIds) {
  MessageBuffer b(3);
  EXPECT_EQ(b.add(0, 1, msg(1, 0), 0, 1), 0);
  EXPECT_EQ(b.add(1, 2, msg(1, 1), 0, 1), 1);
  EXPECT_EQ(b.total_sent(), 2u);
  EXPECT_EQ(b.pending_count(), 2u);
}

TEST(MessageBuffer, GetReturnsEnvelope) {
  MessageBuffer b(3);
  const MsgId id = b.add(2, 0, msg(5, 1), 7, 3);
  const Envelope& e = b.get(id);
  EXPECT_EQ(e.sender, 2);
  EXPECT_EQ(e.receiver, 0);
  EXPECT_EQ(e.payload.round, 5);
  EXPECT_EQ(e.payload.value, 1);
  EXPECT_EQ(e.window, 7);
  EXPECT_EQ(e.chain, 3);
}

TEST(MessageBuffer, DeliverTransitions) {
  MessageBuffer b(2);
  const MsgId id = b.add(0, 1, msg(1, 0), 0, 1);
  EXPECT_TRUE(b.is_pending(id));
  b.mark_delivered(id);
  EXPECT_FALSE(b.is_pending(id));
  EXPECT_EQ(b.delivered_count(), 1u);
  EXPECT_EQ(b.pending_count(), 0u);
}

TEST(MessageBuffer, DropTransitions) {
  MessageBuffer b(2);
  const MsgId id = b.add(0, 1, msg(1, 0), 0, 1);
  b.mark_dropped(id);
  EXPECT_FALSE(b.is_pending(id));
  EXPECT_EQ(b.dropped_count(), 1u);
}

TEST(MessageBuffer, DoubleDeliverThrows) {
  MessageBuffer b(2);
  const MsgId id = b.add(0, 1, msg(1, 0), 0, 1);
  b.mark_delivered(id);
  EXPECT_THROW(b.mark_delivered(id), std::logic_error);
  EXPECT_THROW(b.mark_dropped(id), std::logic_error);
}

TEST(MessageBuffer, RetiredIdLookupThrows) {
  MessageBuffer b(2);
  const MsgId id = b.add(0, 1, msg(1, 0), 0, 1);
  b.mark_delivered(id);
  // The slot recycled; the envelope is gone but the id stays recognizably
  // retired (not "never issued").
  EXPECT_THROW((void)b.get(id), std::logic_error);
  EXPECT_FALSE(b.is_pending(id));
}

TEST(MessageBuffer, PendingToFiltersByReceiverInSendOrder) {
  MessageBuffer b(3);
  const MsgId a = b.add(0, 2, msg(1, 0), 0, 1);
  b.add(0, 1, msg(1, 0), 0, 1);
  const MsgId c = b.add(1, 2, msg(1, 1), 0, 1);
  const auto ids = b.pending_to_ids(2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], c);
}

TEST(MessageBuffer, PendingFromToFiltersBySender) {
  MessageBuffer b(3);
  b.add(0, 2, msg(1, 0), 0, 1);
  const MsgId c = b.add(1, 2, msg(1, 1), 0, 1);
  const auto ids = b.pending_from_to_ids(1, 2);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], c);
}

TEST(MessageBuffer, PendingInWindow) {
  MessageBuffer b(2);
  b.add(0, 1, msg(1, 0), 0, 1);
  const MsgId w1 = b.add(0, 1, msg(2, 0), 1, 1);
  const auto ids = b.pending_in_window_ids(1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], w1);
}

TEST(MessageBuffer, DeliveredExcludedFromQueries) {
  MessageBuffer b(2);
  const MsgId id = b.add(0, 1, msg(1, 0), 0, 1);
  b.mark_delivered(id);
  EXPECT_TRUE(b.pending_to_ids(1).empty());
  EXPECT_TRUE(b.all_pending_ids().empty());
  EXPECT_TRUE(b.pending_in_window_ids(0).empty());
}

TEST(MessageBuffer, RangesYieldEnvelopesInSendOrder) {
  MessageBuffer b(3);
  b.add(0, 2, msg(1, 0), 0, 1);
  b.add(1, 2, msg(1, 1), 0, 1);
  b.add(2, 0, msg(1, 0), 0, 1);
  MsgId prev = kNoMsg;
  int seen = 0;
  for (const Envelope& e : b.all_pending()) {
    EXPECT_GT(e.id, prev);
    prev = e.id;
    ++seen;
  }
  EXPECT_EQ(seen, 3);
  seen = 0;
  for (const Envelope& e : b.pending_to(2)) {
    EXPECT_EQ(e.receiver, 2);
    ++seen;
  }
  EXPECT_EQ(seen, 2);
}

TEST(MessageBuffer, DeliveringCurrentElementDuringIterationIsSafe) {
  MessageBuffer b(2);
  for (int k = 0; k < 5; ++k) b.add(0, 1, msg(1, k % 2), 0, 1);
  std::size_t delivered = 0;
  for (const Envelope& e : b.pending_to(1)) {
    b.mark_delivered(e.id);
    ++delivered;
  }
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(b.pending_count(), 0u);
}

TEST(MessageBuffer, DropPendingInWindowDropsOnlyThatWindow) {
  MessageBuffer b(2);
  b.add(0, 1, msg(1, 0), 0, 1);
  b.add(1, 0, msg(1, 0), 0, 1);
  const MsgId keep = b.add(0, 1, msg(2, 0), 1, 1);
  EXPECT_EQ(b.drop_pending_in_window(0), 2u);
  EXPECT_EQ(b.dropped_count(), 2u);
  EXPECT_EQ(b.pending_count(), 1u);
  EXPECT_TRUE(b.is_pending(keep));
  // Already-empty / unknown windows are no-ops.
  EXPECT_EQ(b.drop_pending_in_window(0), 0u);
  EXPECT_EQ(b.drop_pending_in_window(57), 0u);
}

TEST(MessageBuffer, SlotsRecycleAcrossWindows) {
  MessageBuffer b(4);
  for (std::int64_t w = 0; w < 200; ++w) {
    for (int s = 0; s < 4; ++s) {
      for (int r = 0; r < 4; ++r) b.add(s, r, msg(1, 0), w, 1);
    }
    // Deliver half, drop the rest at the window edge.
    for (int r = 0; r < 4; ++r) {
      int k = 0;
      for (const Envelope& e : b.pending_to(r)) {
        if (k++ % 2 == 0) b.mark_delivered(e.id);
      }
    }
    b.drop_pending_in_window(w);
  }
  EXPECT_EQ(b.pending_count(), 0u);
  EXPECT_EQ(b.total_sent(), 200u * 16u);
  // The arena never needed more slots than one window's live load.
  EXPECT_LE(b.slot_capacity(), 16u);
}

TEST(MessageBuffer, BadArgumentsThrow) {
  MessageBuffer b(2);
  EXPECT_THROW(b.add(-1, 0, msg(1, 0), 0, 1), std::invalid_argument);
  EXPECT_THROW(b.add(0, 2, msg(1, 0), 0, 1), std::invalid_argument);
  EXPECT_THROW((void)b.get(0), std::invalid_argument);
  EXPECT_THROW((void)b.pending_to(5), std::invalid_argument);
  EXPECT_THROW(MessageBuffer(0), std::invalid_argument);
}

}  // namespace
}  // namespace aa::sim
