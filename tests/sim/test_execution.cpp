#include <gtest/gtest.h>

#include <memory>

#include "sim/execution.hpp"

namespace aa::sim {
namespace {

// Minimal protocol for engine tests: broadcasts its input at start, echoes
// every received message's round + 1 back to the sender, decides its input
// upon receiving a message with round >= 3, and remembers reset counts.
class EchoProcess final : public Process {
 public:
  EchoProcess(int id, int n, int input) : id_(id), n_(n), input_(input) {}

  void on_start(Outbox& out) override {
    Message m;
    m.round = 1;
    m.kind = 1;
    m.value = input_;
    out.broadcast(m);
  }

  void on_receive(const Envelope& env, Rng& rng, Outbox& out) override {
    (void)rng;
    ++received_;
    if (env.payload.round >= 3 && output_ == kBot) output_ = input_;
    Message m = env.payload;
    m.round += 1;
    out.send(env.sender, m);
  }

  void on_reset() override {
    received_ = 0;
    was_reset_ = true;
  }

  [[nodiscard]] int input() const override { return input_; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override { return 0; }
  [[nodiscard]] int estimate() const override { return input_; }
  [[nodiscard]] const char* protocol_name() const override { return "echo"; }

  int received_ = 0;
  bool was_reset_ = false;

 private:
  int id_;
  int n_;
  int input_;
  int output_ = kBot;
};

// Broken protocol that rewrites its output, to test the write-once guard.
class RewriterProcess final : public Process {
 public:
  void on_start(Outbox& out) override {
    Message m;
    m.kind = 1;
    out.broadcast(m);
  }
  void on_receive(const Envelope&, Rng&, Outbox&) override {
    output_ = flips_ % 2;
    ++flips_;
  }
  void on_reset() override {}
  [[nodiscard]] int input() const override { return 0; }
  [[nodiscard]] int output() const override { return output_; }
  [[nodiscard]] int round() const override { return 0; }
  [[nodiscard]] int estimate() const override { return 0; }
  [[nodiscard]] const char* protocol_name() const override { return "rw"; }

 private:
  int output_ = kBot;
  int flips_ = 0;
};

std::vector<std::unique_ptr<Process>> echo_procs(int n) {
  std::vector<std::unique_ptr<Process>> ps;
  for (int i = 0; i < n; ++i)
    ps.push_back(std::make_unique<EchoProcess>(i, n, i % 2));
  return ps;
}

TEST(Execution, StartStagesButDoesNotPublish) {
  Execution e(echo_procs(3), 1);
  EXPECT_EQ(e.buffer().total_sent(), 0u);
  EXPECT_TRUE(e.has_staged(0));
}

TEST(Execution, SendingStepPublishesBroadcast) {
  Execution e(echo_procs(3), 1);
  const auto ids = e.sending_step(0);
  EXPECT_EQ(ids.size(), 3u);  // broadcast to all incl. self
  EXPECT_EQ(e.buffer().pending_count(), 3u);
  EXPECT_FALSE(e.has_staged(0));
}

TEST(Execution, SecondSendingStepIsNoOp) {
  // D1: a sending step is a complete response; with no intervening
  // receive/reset, the next sending step publishes nothing.
  Execution e(echo_procs(3), 1);
  EXPECT_EQ(e.sending_step(0).size(), 3u);
  EXPECT_EQ(e.sending_step(0).size(), 0u);
}

TEST(Execution, ReceivingStepDeliversAndStagesResponse) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);
  const auto pending = e.buffer().pending_to_ids(1);
  ASSERT_FALSE(pending.empty());
  e.receiving_step(pending[0]);
  EXPECT_FALSE(e.buffer().is_pending(pending[0]));
  EXPECT_EQ(e.buffer().delivered_count(), 1u);
  EXPECT_TRUE(e.has_staged(1));  // echo reply staged, not yet published
}

TEST(Execution, ReceivingNonPendingThrows) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);
  const auto pending = e.buffer().pending_to_ids(1);
  e.receiving_step(pending[0]);
  EXPECT_THROW(e.receiving_step(pending[0]), std::logic_error);
}

TEST(Execution, ResettingStepClearsStagedMessages) {
  // Erased memory cannot send: staged messages are destroyed by a reset.
  Execution e(echo_procs(2), 1);
  EXPECT_TRUE(e.has_staged(0));
  e.resetting_step(0);
  EXPECT_FALSE(e.has_staged(0));
  EXPECT_EQ(e.reset_count(0), 1);
  EXPECT_EQ(e.total_resets(), 1);
}

TEST(Execution, ResetInvokesProcessHook) {
  auto procs = echo_procs(2);
  auto* raw = static_cast<EchoProcess*>(procs[0].get());
  Execution e(std::move(procs), 1);
  e.resetting_step(0);
  EXPECT_TRUE(raw->was_reset_);
}

TEST(Execution, CrashStopsDeliveries) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);
  e.crash(1);
  EXPECT_TRUE(e.crashed(1));
  EXPECT_EQ(e.crashed_count(), 1);
  const auto pending = e.buffer().pending_to_ids(1);
  ASSERT_FALSE(pending.empty());
  EXPECT_THROW(e.receiving_step(pending[0]), std::logic_error);
}

TEST(Execution, CrashedSenderPublishesNothing) {
  Execution e(echo_procs(2), 1);
  e.crash(0);
  EXPECT_TRUE(e.sending_step(0).empty());
}

TEST(Execution, CrashIsIdempotent) {
  Execution e(echo_procs(2), 1);
  e.crash(0);
  e.crash(0);
  EXPECT_EQ(e.crashed_count(), 1);
}

TEST(Execution, ResettingCrashedProcessorThrows) {
  Execution e(echo_procs(2), 1);
  e.crash(0);
  EXPECT_THROW(e.resetting_step(0), std::logic_error);
}

TEST(Execution, EndWindowDropsPendingOfThatWindow) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);  // 2 messages in window 0
  EXPECT_EQ(e.window(), 0);
  e.end_window();
  EXPECT_EQ(e.window(), 1);
  EXPECT_EQ(e.buffer().pending_count(), 0u);
  EXPECT_EQ(e.buffer().dropped_count(), 2u);
}

TEST(Execution, AdvanceWindowKeepsPending) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);
  e.advance_window_keep_pending();
  EXPECT_EQ(e.window(), 1);
  EXPECT_EQ(e.buffer().pending_count(), 2u);
}

TEST(Execution, ChainDepthPropagates) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);  // chain 1 messages
  const auto to1 = e.buffer().pending_to_ids(1);
  e.receiving_step(to1[0]);
  EXPECT_EQ(e.chain_depth(1), 1);
  const auto reply = e.sending_step(1);  // reply has chain 2
  ASSERT_FALSE(reply.empty());
  const MsgId reply0 = reply[0];
  EXPECT_EQ(e.buffer().get(reply0).chain, 2);
  e.receiving_step(reply0);
  EXPECT_EQ(e.chain_depth(0), 2);
}

TEST(Execution, DecisionRecorded) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);
  // Bounce messages until round >= 3 triggers a decision at proc 1.
  for (int hop = 0; hop < 6 && e.decided_count() == 0; ++hop) {
    for (ProcId p = 0; p < 2; ++p) {
      for (const Envelope& env : e.buffer().pending_to(p))
        e.receiving_step(env.id);
      e.sending_step(p);
    }
  }
  ASSERT_GT(e.decided_count(), 0);
  const auto d = e.first_decision();
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->value == 0 || d->value == 1);
  EXPECT_GT(d->chain, 0);
}

TEST(Execution, OutputsAgreeVacuouslyTrue) {
  Execution e(echo_procs(4), 1);
  EXPECT_TRUE(e.outputs_agree());
  EXPECT_FALSE(e.all_live_decided());
}

TEST(Execution, WriteOnceOutputEnforced) {
  std::vector<std::unique_ptr<Process>> ps;
  ps.push_back(std::make_unique<RewriterProcess>());
  ps.push_back(std::make_unique<RewriterProcess>());
  Execution e(std::move(ps), 1);
  e.sending_step(0);
  e.sending_step(1);
  // Both broadcasts pend at receiver 1 (one from 0, one from itself).
  const auto to1 = e.buffer().pending_to_ids(1);
  ASSERT_GE(to1.size(), 2u);
  e.receiving_step(to1[0]);  // first write: ⊥ → 0, fine
  // Rewriter flips 0 → 1 on the next receive: engine must fault.
  EXPECT_THROW(e.receiving_step(to1[1]), std::logic_error);
}

TEST(Execution, EventLogWhenEnabled) {
  ExecutionConfig cfg;
  cfg.record_events = true;
  Execution e(echo_procs(2), 1, cfg);
  e.sending_step(0);
  const auto pending = e.buffer().pending_to_ids(1);
  e.receiving_step(pending[0]);
  e.resetting_step(0);
  ASSERT_EQ(e.events().size(), 3u);
  EXPECT_EQ(e.events()[0].kind, StepKind::Send);
  EXPECT_EQ(e.events()[1].kind, StepKind::Receive);
  EXPECT_EQ(e.events()[2].kind, StepKind::Reset);
}

TEST(Execution, EventLogOffByDefault) {
  Execution e(echo_procs(2), 1);
  e.sending_step(0);
  EXPECT_TRUE(e.events().empty());
  EXPECT_GT(e.step_count(), 0);
}

TEST(Execution, DeterministicAcrossSameSeed) {
  auto run = [](std::uint64_t seed) {
    Execution e(echo_procs(4), seed);
    for (ProcId p = 0; p < 4; ++p) e.sending_step(p);
    std::size_t delivered = 0;
    for (ProcId p = 0; p < 4; ++p) {
      for (const Envelope& env : e.buffer().pending_to(p)) {
        e.receiving_step(env.id);
        ++delivered;
      }
    }
    return delivered;
  };
  EXPECT_EQ(run(99), run(99));
}

}  // namespace
}  // namespace aa::sim
