// Plan-reuse contract of the redesigned adversary API:
//  * static adversaries answer kReusePrevious and the driver skips the n²
//    fill AND validate_window_plan on those windows;
//  * any crash/reset (liveness change) forces one re-validation of a
//    reused plan;
//  * reusing is observationally bit-identical to re-planning every window
//    for fair/silencer, serially and across checker thread counts 1/2/8.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/window_adversaries.hpp"
#include "core/checker.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"

namespace aa::sim {
namespace {

using protocols::ProtocolKind;

Execution make_exec(int n, int t, std::uint64_t seed) {
  return Execution(protocols::make_processes(
                       ProtocolKind::Reset, t, protocols::split_inputs(n, 0.5)),
                   seed);
}

TEST(PlanReuse, SkipsValidationOnReuseWindows) {
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 3);
  adversary::FairWindowAdversary fair;
  run_acceptable_window(e, fair, t);
  run_acceptable_window(e, fair, t);

  // Corrupt the cached plan behind the adversary's back: |S_0| = 0 is
  // illegal, but on a reuse window validation is skipped, so the window
  // must run (delivering nothing to receiver 0) instead of throwing.
  e.window_scratch().plan.delivery_order[0].clear();
  EXPECT_NO_THROW(run_acceptable_window(e, fair, t));
}

TEST(PlanReuse, RevalidatesAfterCrash) {
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 3);
  adversary::FairWindowAdversary fair;
  run_acceptable_window(e, fair, t);

  e.window_scratch().plan.delivery_order[0].clear();
  run_acceptable_window(e, fair, t);  // reuse window: skip tolerated
  e.crash(5);                         // liveness changed…
  // …so the next reuse window must re-validate and catch the bad plan.
  EXPECT_THROW(run_acceptable_window(e, fair, t), std::invalid_argument);
}

TEST(PlanReuse, RevalidatesAfterReset) {
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 4);
  adversary::FairWindowAdversary fair;
  run_acceptable_window(e, fair, t);

  e.window_scratch().plan.delivery_order[3].resize(5);  // |S_3| < n − t
  run_acceptable_window(e, fair, t);  // reuse window: skip tolerated
  e.resetting_step(7);                // liveness changed…
  EXPECT_THROW(run_acceptable_window(e, fair, t), std::invalid_argument);
}

TEST(PlanReuse, RevalidatesWhenBudgetTChanges) {
  // A plan validated under t = 5 must not be silently accepted when the
  // same adversary is driven with t = 2: the (adversary, t) pairing key
  // forces a re-prepare, refill, and re-validation.
  const int n = 36;  // t = 5 < n/6, so the protocol thresholds are legal
  Execution e = make_exec(n, 5, 8);
  adversary::SilencerWindowAdversary silencer({0, 1, 2, 3, 4});
  run_acceptable_window(e, silencer, 5);  // |S_i| = 31 ≥ n − 5: legal
  // Under t = 2 the same plan has |S_i| = 31 < n − 2 = 34: must throw.
  EXPECT_THROW(run_acceptable_window(e, silencer, 2), std::invalid_argument);
}

TEST(PlanReuse, CrashWithValidCachedPlanStaysClean) {
  // The defensive re-validation must PASS for an intact static plan — a
  // crash alone never invalidates fair/silencer plans.
  const int n = 12;
  const int t = 2;
  Execution e = make_exec(n, t, 5);
  adversary::SilencerWindowAdversary silencer({1, 4});
  run_acceptable_window(e, silencer, t);
  e.crash(9);
  EXPECT_NO_THROW(run_acceptable_window(e, silencer, t));
  e.resetting_step(2);
  EXPECT_NO_THROW(run_acceptable_window(e, silencer, t));
}

TEST(PlanReuse, AdversarySwapMidExecutionRefills) {
  // Swapping adversaries re-runs prepare and invalidates the cached plan,
  // so the silencer's plan replaces fair's instead of aliasing it.
  const int n = 10;
  const int t = 1;
  Execution e = make_exec(n, t, 6);
  adversary::FairWindowAdversary fair;
  adversary::SilencerWindowAdversary silencer({0});
  run_acceptable_window(e, fair, t);
  run_acceptable_window(e, silencer, t);
  for (const auto& order : e.window_scratch().plan.delivery_order) {
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n - 1));
  }
  run_acceptable_window(e, fair, t);
  for (const auto& order : e.window_scratch().plan.delivery_order) {
    EXPECT_EQ(order.size(), static_cast<std::size_t>(n));
  }
}

void expect_same_run(sim::WindowAdversary& reusing,
                     sim::WindowAdversary& replanning, int n, int t,
                     std::uint64_t seed) {
  Execution a = make_exec(n, t, seed);
  Execution b = make_exec(n, t, seed);
  const auto wa = run_until_all_decided(a, reusing, t, 200000);
  const auto wb = run_until_all_decided(b, replanning, t, 200000);
  EXPECT_EQ(wa, wb);
  EXPECT_EQ(a.step_count(), b.step_count());
  EXPECT_EQ(a.total_resets(), b.total_resets());
  EXPECT_EQ(a.decided_count(), b.decided_count());
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(a.output(p), b.output(p)) << "proc " << p;
    EXPECT_EQ(a.process(p).round(), b.process(p).round()) << "proc " << p;
    EXPECT_EQ(a.process(p).estimate(), b.process(p).estimate())
        << "proc " << p;
  }
}

TEST(PlanReuse, FairBitIdenticalToReplanningEveryWindow) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    adversary::FairWindowAdversary fair;
    adversary::ReplanEveryWindow replan(
        std::make_unique<adversary::FairWindowAdversary>());
    expect_same_run(fair, replan, 13, 2, seed);
  }
}

TEST(PlanReuse, SilencerBitIdenticalToReplanningEveryWindow) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    adversary::SilencerWindowAdversary silencer({0, 6});
    adversary::ReplanEveryWindow replan(
        std::make_unique<adversary::SilencerWindowAdversary>(
            std::vector<ProcId>{0, 6}));
    expect_same_run(silencer, replan, 13, 2, seed);
  }
}

void expect_same_report(const core::MeasureOneReport& a,
                        const core::MeasureOneReport& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.agreement_violations, b.agreement_violations);
  EXPECT_EQ(a.validity_violations, b.validity_violations);
  EXPECT_EQ(a.decided_runs, b.decided_runs);
  EXPECT_EQ(a.all_decided_runs, b.all_decided_runs);
  EXPECT_EQ(a.mean_windows_to_first, b.mean_windows_to_first);  // bit-exact
  EXPECT_EQ(a.violating_seeds, b.violating_seeds);
}

TEST(PlanReuse, CheckerReportsBitIdenticalAcrossThreadsAndModes) {
  // fair (reusing) vs replan-every-window (dynamic) at thread counts
  // 1/2/8: all six reports must be byte-for-byte the same story.
  const auto inputs = protocols::split_inputs(12, 0.5);
  const auto run = [&](bool reuse, int threads) {
    core::WindowAdversaryFactory factory =
        [&](std::uint64_t) -> std::unique_ptr<WindowAdversary> {
      if (reuse) return std::make_unique<adversary::FairWindowAdversary>();
      return std::make_unique<adversary::ReplanEveryWindow>(
          std::make_unique<adversary::FairWindowAdversary>());
    };
    ParallelConfig par;
    par.threads = threads;
    return core::check_measure_one_window(ProtocolKind::Reset, inputs, 1,
                                          factory, /*trials=*/48,
                                          /*max_windows=*/100000,
                                          /*seed0=*/500, std::nullopt, par);
  };
  const core::MeasureOneReport base = run(/*reuse=*/true, 1);
  EXPECT_GT(base.all_decided_runs, 0);
  for (const int threads : {1, 2, 8}) {
    expect_same_report(base, run(/*reuse=*/true, threads));
    expect_same_report(base, run(/*reuse=*/false, threads));
  }
}

}  // namespace
}  // namespace aa::sim
