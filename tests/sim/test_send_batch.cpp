// Bulk publication pipeline (MessageBuffer::add_batch + the incremental
// window pair index + Execution::deliver_plan_row):
//  * add_batch is observationally identical to a loop of add() — ids,
//    receiver/window list order, id-map state — including slot runs that
//    straddle arena recycling boundaries (fragmented free list + growth);
//  * the epoch-stamped pair counters never leak counts across windows
//    (stale rows read as empty without any per-window reset);
//  * deliver_plan_row's whole-list fast path produces bit-identical
//    decisions and tallies to the per-message receiving_step path for
//    Fair / Silencer / SplitKeeper at n = 32;
//  * a crash mid-window and adversarially (non-ascending) ordered rows
//    force the slow path, whose delivery ORDER is the plan order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/window_adversaries.hpp"
#include "protocols/factory.hpp"
#include "sim/window.hpp"
#include "util/rng.hpp"

namespace aa::sim {
namespace {

using protocols::ProtocolKind;

// ---------------------------------------------------------------------------
// add_batch vs a loop of add()
// ---------------------------------------------------------------------------

std::vector<StagedMessage> make_items(Rng& rng, int n, int count) {
  std::vector<StagedMessage> items;
  Message m;
  m.kind = 1;
  for (int k = 0; k < count; ++k) {
    m.value = static_cast<std::int32_t>(rng.uniform_index(2));
    items.push_back({static_cast<ProcId>(rng.uniform_index(
                         static_cast<std::size_t>(n))),
                     m});
  }
  return items;
}

void expect_same_buffers(const MessageBuffer& a, const MessageBuffer& b) {
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.total_sent(), b.total_sent());
  EXPECT_EQ(a.pending_count(), b.pending_count());
  EXPECT_EQ(a.delivered_count(), b.delivered_count());
  EXPECT_EQ(a.dropped_count(), b.dropped_count());
  EXPECT_EQ(a.all_pending_ids(), b.all_pending_ids());
  for (ProcId r = 0; r < a.n(); ++r) {
    EXPECT_EQ(a.pending_to_ids(r), b.pending_to_ids(r)) << "receiver " << r;
    for (ProcId s = 0; s < a.n(); ++s) {
      EXPECT_EQ(a.pending_from_to_ids(s, r), b.pending_from_to_ids(s, r));
    }
  }
}

TEST(AddBatch, MatchesPerItemAddUnderChurn) {
  // Interleave batched and per-item publication with random retirements and
  // window drops; after every step both buffers must agree on everything.
  const int n = 6;
  MessageBuffer batched(n);
  MessageBuffer per_item(n);
  Rng rng(99);
  std::int64_t window = 0;
  for (int step = 0; step < 200; ++step) {
    const auto sender =
        static_cast<ProcId>(rng.uniform_index(static_cast<std::size_t>(n)));
    const auto items =
        make_items(rng, n, 1 + static_cast<int>(rng.uniform_index(9)));
    const MsgId first = batched.add_batch(sender, items, window, step + 1);
    EXPECT_EQ(first, static_cast<MsgId>(per_item.total_sent()));
    for (const StagedMessage& item : items) {
      per_item.add(sender, item.to, item.msg, window, step + 1);
    }
    // The run's ids are consecutive from `first`, in staging order.
    for (std::size_t i = 0; i < items.size(); ++i) {
      const Envelope& env = batched.get(first + static_cast<MsgId>(i));
      EXPECT_EQ(env.receiver, items[i].to);
      EXPECT_EQ(env.sender, sender);
    }
    // Random retirements fragment the free list so later batch runs span
    // recycled slots and fresh growth.
    for (MsgId id : batched.all_pending_ids()) {
      if (rng.uniform_index(3) == 0) {
        batched.mark_delivered(id);
        per_item.mark_delivered(id);
      }
    }
    if (rng.uniform_index(4) == 0) {
      batched.drop_pending_in_window(window);
      per_item.drop_pending_in_window(window);
      ++window;
    }
    expect_same_buffers(batched, per_item);
    EXPECT_EQ(batched.slot_capacity(), per_item.slot_capacity());
  }
}

TEST(AddBatch, SlotRunStraddlesRecyclingBoundary) {
  // Arena with exactly 3 recycled holes; a 5-message run must consume the
  // whole free list, then grow — and every query must still be exact.
  const int n = 4;
  MessageBuffer buf(n);
  Message m;
  m.kind = 1;
  std::vector<MsgId> seed_ids;
  for (int k = 0; k < 3; ++k) seed_ids.push_back(buf.add(0, 1, m, 0, 1));
  for (MsgId id : seed_ids) buf.mark_delivered(id);
  ASSERT_EQ(buf.slot_capacity(), 3u);

  std::vector<StagedMessage> items;
  for (int k = 0; k < 5; ++k) {
    items.push_back({static_cast<ProcId>(k % n), m});
  }
  const MsgId first = buf.add_batch(2, items, 1, 7);
  EXPECT_EQ(first, 3);
  EXPECT_EQ(buf.slot_capacity(), 5u);  // 3 recycled + 2 fresh
  EXPECT_EQ(buf.pending_count(), 5u);
  const std::vector<MsgId> expect_ids{3, 4, 5, 6, 7};
  EXPECT_EQ(buf.all_pending_ids(), expect_ids);
  EXPECT_EQ(buf.pending_in_window_ids(1), expect_ids);
  for (int k = 0; k < 5; ++k) {
    const Envelope& env = buf.get(first + k);
    EXPECT_EQ(env.window, 1);
    EXPECT_EQ(env.chain, 7);
    EXPECT_EQ(env.receiver, static_cast<ProcId>(k % n));
  }
  // Old ids stay retired even though their slots were reused.
  for (MsgId id : seed_ids) EXPECT_FALSE(buf.is_pending(id));
}

TEST(AddBatch, EmptyRunAndBadReceiverAreAtomic) {
  MessageBuffer buf(3);
  Message m;
  EXPECT_EQ(buf.add_batch(0, {}, 0, 1), 0);
  EXPECT_EQ(buf.total_sent(), 0u);
  // A bad receiver anywhere in the run is rejected before ANY item lands.
  std::vector<StagedMessage> items{{0, m}, {7, m}};
  EXPECT_THROW(buf.add_batch(0, items, 0, 1), std::invalid_argument);
  EXPECT_EQ(buf.total_sent(), 0u);
  EXPECT_EQ(buf.pending_count(), 0u);
}

TEST(AddBatch, LiveSlotsStayBoundedAcross5kBatchedWindows) {
  // The arena bounded-slots regression, driven through the batched
  // pipeline end to end: add_batch publication + whole-list fast-path
  // delivery (fair ⇒ every receiver takes the splice) + lazy-parked slots
  // recycled by the window sweep. Memory must stay one window's burst.
  const int n = 16;
  const int t = 2;
  Execution e(protocols::make_processes(ProtocolKind::Reset, t,
                                        protocols::split_inputs(n, 0.5)),
              7);
  adversary::FairWindowAdversary fair;
  std::size_t capacity_after_warmup = 0;
  for (int w = 0; w < 5000; ++w) {
    run_acceptable_window(e, fair, t);
    if (w == 99) capacity_after_warmup = e.buffer().slot_capacity();
  }
  EXPECT_EQ(e.buffer().pending_count(), 0u);
  EXPECT_EQ(e.buffer().slot_capacity(), capacity_after_warmup);
  EXPECT_LE(e.buffer().slot_capacity(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  EXPECT_EQ(e.buffer().total_sent(),
            5000u * static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------------------
// Epoch-stamped pair counters
// ---------------------------------------------------------------------------

TEST(WindowBatchIndex, CountersDoNotLeakAcrossWindows) {
  const int n = 8;
  const int t = 1;
  Execution e(protocols::make_processes(ProtocolKind::Reset, t,
                                        protocols::split_inputs(n, 0.5)),
              5);
  // Window 0: everyone broadcasts its round-1 vote (n messages each).
  e.begin_window_batch();
  for (ProcId p = 0; p < n; ++p) e.sending_step(p);
  {
    const WindowBatch batch = e.window_batch();
    EXPECT_EQ(batch.size(), static_cast<std::size_t>(n) * n);
    for (ProcId s = 0; s < n; ++s) {
      for (ProcId r = 0; r < n; ++r) {
        EXPECT_EQ(batch.count(s, r), 1);
        ASSERT_EQ(batch.from_to(s, r).size(), 1u);
        EXPECT_EQ(e.buffer().get(batch.from_to(s, r)[0]).sender, s);
      }
      EXPECT_EQ(batch.count_to(s), n);
    }
  }
  e.end_window();

  // Window 1: nothing was delivered, so nobody has anything staged — every
  // row of the fresh index must read empty WITHOUT any reset having run.
  e.begin_window_batch();
  for (ProcId p = 0; p < n; ++p) e.sending_step(p);
  {
    const WindowBatch batch = e.window_batch();
    EXPECT_EQ(batch.size(), 0u);
    for (ProcId s = 0; s < n; ++s) {
      for (ProcId r = 0; r < n; ++r) {
        EXPECT_EQ(batch.count(s, r), 0);
        EXPECT_TRUE(batch.from_to(s, r).empty());
      }
      EXPECT_EQ(batch.count_to(s), 0);
    }
  }
  e.end_window();

  // Window 2 after a real delivery round: counts reflect ONLY the new
  // batch (stale window-0 rows must not shine through).
  adversary::FairWindowAdversary fair;
  const int deliveries = run_acceptable_window(e, fair, t);
  EXPECT_EQ(deliveries, 0);  // window 2's batch was empty
  e.begin_window_batch();
  for (ProcId p = 0; p < n; ++p) e.sending_step(p);
  const WindowBatch batch = e.window_batch();
  EXPECT_EQ(batch.size(), 0u);
  for (ProcId s = 0; s < n; ++s) EXPECT_EQ(batch.count_to(s), 0);
}

// ---------------------------------------------------------------------------
// deliver_plan_row fast path vs the per-message reference driver
// ---------------------------------------------------------------------------

/// Reference window driver: identical phases, but every delivery is one
/// receiving_step (per-id buffer lookups, one virtual on_receive each) —
/// the per-message path the fast path must reproduce bit for bit.
int run_reference_window(Execution& exec, WindowAdversary& adv, int t,
                         WindowPlan& plan) {
  const int n = exec.n();
  exec.begin_window_batch();
  for (ProcId p = 0; p < n; ++p) exec.sending_step(p);
  adv.prepare(n, t);
  plan.reset(n);
  adv.plan_window_into(exec, exec.window_batch(), plan);
  validate_window_plan(plan, n, t);
  const WindowBatch batch = exec.window_batch();
  int deliveries = 0;
  for (ProcId i = 0; i < n; ++i) {
    if (exec.crashed(i)) continue;
    for (ProcId s : plan.delivery_order[static_cast<std::size_t>(i)]) {
      for (MsgId id : batch.from_to(s, i)) {
        exec.receiving_step(id);
        ++deliveries;
      }
    }
  }
  for (ProcId p : plan.resets) exec.resetting_step(p);
  exec.end_window();
  return deliveries;
}

void expect_same_outcome(const Execution& a, const Execution& b) {
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.step_count(), b.step_count());
  EXPECT_EQ(a.decided_count(), b.decided_count());
  EXPECT_EQ(a.buffer().delivered_count(), b.buffer().delivered_count());
  EXPECT_EQ(a.buffer().dropped_count(), b.buffer().dropped_count());
  EXPECT_EQ(a.total_resets(), b.total_resets());
  for (ProcId p = 0; p < a.n(); ++p) {
    EXPECT_EQ(a.output(p), b.output(p)) << "proc " << p;
    EXPECT_EQ(a.process(p).round(), b.process(p).round()) << "proc " << p;
    EXPECT_EQ(a.process(p).estimate(), b.process(p).estimate())
        << "proc " << p;
    EXPECT_EQ(a.chain_depth(p), b.chain_depth(p)) << "proc " << p;
  }
  // Decisions agree in (proc, value, window); the documented batch-path
  // divergence is only the step/chain stamp granularity inside a run.
  ASSERT_EQ(a.decisions().size(), b.decisions().size());
  for (std::size_t i = 0; i < a.decisions().size(); ++i) {
    EXPECT_EQ(a.decisions()[i].proc, b.decisions()[i].proc);
    EXPECT_EQ(a.decisions()[i].value, b.decisions()[i].value);
    EXPECT_EQ(a.decisions()[i].window, b.decisions()[i].window);
  }
}

Execution make_exec(ProtocolKind kind, int n, int t, std::uint64_t seed) {
  return Execution(
      protocols::make_processes(kind, t, protocols::split_inputs(n, 0.5)),
      seed);
}

TEST(DeliverPlanRow, FastPathMatchesPerMessagePathAtN32) {
  const int n = 32;
  const int t = 5;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    // Fair: every row ascending + full cover → whole-list splice.
    {
      Execution fast = make_exec(ProtocolKind::Reset, n, t, seed);
      Execution ref = make_exec(ProtocolKind::Reset, n, t, seed);
      adversary::FairWindowAdversary fair_a;
      adversary::FairWindowAdversary fair_b;
      WindowPlan plan;
      for (int w = 0; w < 40; ++w) {
        run_acceptable_window(fast, fair_a, t);
        run_reference_window(ref, fair_b, t, plan);
      }
      expect_same_outcome(fast, ref);
    }
    // Silencer: ascending partial cover → filtered whole-list walk.
    {
      std::vector<ProcId> silenced;
      for (int i = 0; i < t; ++i) silenced.push_back(2 * i);
      Execution fast = make_exec(ProtocolKind::Forgetful, n, t, seed);
      Execution ref = make_exec(ProtocolKind::Forgetful, n, t, seed);
      adversary::SilencerWindowAdversary sil_a(silenced);
      adversary::SilencerWindowAdversary sil_b(silenced);
      WindowPlan plan;
      for (int w = 0; w < 40; ++w) {
        run_acceptable_window(fast, sil_a, t);
        run_reference_window(ref, sil_b, t, plan);
      }
      expect_same_outcome(fast, ref);
    }
    // SplitKeeper: alternating vote order → slow path (gather + deliver_run).
    {
      Execution fast = make_exec(ProtocolKind::Reset, n, t, seed);
      Execution ref = make_exec(ProtocolKind::Reset, n, t, seed);
      adversary::SplitKeeperAdversary keep_a;
      adversary::SplitKeeperAdversary keep_b;
      WindowPlan plan;
      for (int w = 0; w < 40; ++w) {
        run_acceptable_window(fast, keep_a, t);
        run_reference_window(ref, keep_b, t, plan);
      }
      expect_same_outcome(fast, ref);
    }
  }
}

TEST(DeliverPlanRow, NonAscendingRowDeliversInPlanOrder) {
  // A descending row cannot take the whole-list path (list order would
  // invert the plan order); the slow path must deliver exactly in plan
  // order — observable through the recorded event sequence.
  const int n = 6;
  const int t = 1;
  Execution e(protocols::make_processes(ProtocolKind::Reset, t,
                                        protocols::split_inputs(n, 0.5)),
              3, ExecutionConfig{/*record_events=*/true});
  e.begin_window_batch();
  for (ProcId p = 0; p < n; ++p) e.sending_step(p);
  const WindowBatch batch = e.window_batch();
  std::vector<ProcId> descending;
  for (ProcId s = n - 1; s >= 0; --s) descending.push_back(s);
  std::vector<MsgId> expected;
  for (ProcId s : descending) {
    for (MsgId id : batch.from_to(s, /*r=*/2)) expected.push_back(id);
  }
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(n));
  const int delivered = e.deliver_plan_row(2, descending);
  EXPECT_EQ(delivered, n);
  std::vector<MsgId> seen;
  for (const Event& ev : e.events()) {
    if (ev.kind == StepKind::Receive) seen.push_back(ev.msg);
  }
  EXPECT_EQ(seen, expected);  // descending sender blocks, not id order
}

TEST(DeliverPlanRow, CrashMidWindowForcesSlowPathAndStaysExact) {
  // Crash a processor BETWEEN the sending phase and delivery: its
  // published messages stay deliverable, it takes no receiving steps, and
  // a non-ascending row over the remaining senders must still deliver in
  // plan order. Mirrored against the per-message reference.
  const int n = 12;
  const int t = 2;
  const ProcId crashed = 3;
  Execution fast = make_exec(ProtocolKind::Reset, n, t, 11);
  Execution ref = make_exec(ProtocolKind::Reset, n, t, 11);

  auto drive = [&](Execution& e, bool batched) {
    e.begin_window_batch();
    for (ProcId p = 0; p < n; ++p) e.sending_step(p);
    e.crash(crashed);  // mid-window: after publication, before delivery
    const WindowBatch batch = e.window_batch();
    // Rows: receiver parity picks ascending (fast-eligible) or descending
    // (slow) so both paths see the crash.
    for (ProcId i = 0; i < n; ++i) {
      if (e.crashed(i)) continue;
      std::vector<ProcId> row;
      if (i % 2 == 0) {
        for (ProcId s = 0; s < n; ++s) row.push_back(s);
      } else {
        for (ProcId s = n - 1; s >= 0; --s) row.push_back(s);
      }
      if (batched) {
        e.deliver_plan_row(i, row);
      } else {
        for (ProcId s : row) {
          for (MsgId id : batch.from_to(s, i)) e.receiving_step(id);
        }
      }
    }
    e.end_window();
  };
  drive(fast, /*batched=*/true);
  drive(ref, /*batched=*/false);
  expect_same_outcome(fast, ref);
  // The crashed processor's inbox was dropped at the window edge, not
  // delivered.
  EXPECT_GT(fast.buffer().dropped_count(), 0u);
  EXPECT_EQ(fast.buffer().pending_count(), 0u);
}

}  // namespace
}  // namespace aa::sim
